/**
 * @file
 * The hardware monitoring pipeline, end to end, through the facade.
 *
 * Everything the paper's Fig. 7 wires in hardware — a CombinedUMon
 * (64-way sampled utility monitor plus the 1:16-sampled second
 * monitor for 4x coverage) measuring the miss curve while the program
 * runs, convex hulls of the *monitored* curve, the allocator, and the
 * shadow-partition controller — lives inside TalusCache. This example
 * runs the self-managed loop on omnetpp at a mid-cliff size, then
 * pulls the facade's monitored curve out and prints it against exact
 * (Mattson) ground truth, plus the shadow configuration the loop
 * converged to.
 *
 * Build & run:  ./build/examples/monitoring_pipeline
 */

#include <cstdio>

#include "api/talus.h"
#include "sim/single_app_sim.h"
#include "util/table.h"

int
main()
{
    using namespace talus;

    const Scale scale(256);
    const AppSpec& app = findApp("omnetpp"); // Cliff at 2MB.
    const uint64_t llc = scale.lines(1.5);   // Mid-cliff LLC.

    // --- One object owns monitors, hulls, allocator, controller. ---
    TalusCache::Config cfg;
    cfg.llcLines = llc;
    cfg.scheme = SchemeKind::Vantage;
    cfg.policyName = "LRU";
    cfg.umonCoverage = 4; // Sees up to 6MB: past the 2MB cliff.
    cfg.allocatorName = "HillClimb";
    cfg.allocateOnHulls = true;
    cfg.reconfigInterval = 100'000;
    cfg.seed = 7;
    TalusCache talus(cfg);

    auto stream = app.buildStream(scale.linesPerMb(), 0, 7);
    for (int i = 0; i < 1'500'000; ++i)
        talus.access(stream->next());

    // --- The facade's monitored curve vs exact ground truth. ---
    const MissCurve monitored = talus.curve(0);
    auto exact_stream = app.buildStream(scale.linesPerMb(), 0, 7);
    const MissCurve exact =
        measureLruCurve(*exact_stream, 1'500'000, llc * 4, llc / 8);

    Table curve_table("Monitored vs exact LRU miss ratio",
                      {"size_mb", "UMON", "exact"});
    for (uint64_t s = llc / 2; s <= llc * 4; s += llc / 2) {
        curve_table.addRow({scale.mb(s),
                            monitored.at(static_cast<double>(s)),
                            exact.at(static_cast<double>(s))});
    }
    curve_table.print();

    // --- The configuration the self-managed loop converged to. ---
    const TalusCache::PartStats s = talus.stats(0);
    std::printf("after %llu reconfigurations at %.2fMB: alpha=%.2fMB "
                "beta=%.2fMB rho=%.3f\n",
                static_cast<unsigned long long>(
                    talus.reconfigurations()),
                scale.mb(llc),
                scale.mb(static_cast<uint64_t>(s.shadow.alpha)),
                scale.mb(static_cast<uint64_t>(s.shadow.beta)),
                s.rho);

    // --- Steady-state performance vs plain LRU. ---
    talus.resetStats();
    for (int i = 0; i < 400'000; ++i)
        talus.access(stream->next());

    std::printf("at %.2fMB: LRU %.3f, Talus promise %.3f, Talus "
                "measured %.3f miss ratio\n",
                scale.mb(llc), exact.at(static_cast<double>(llc)),
                ConvexHull(monitored).at(static_cast<double>(llc) *
                                         0.9),
                talus.stats(0).missRatio());
    return 0;
}
