/**
 * @file
 * The full hardware monitoring pipeline, end to end.
 *
 * Everything the other examples do with exact (Mattson) curves, this
 * one does the way the paper's hardware would (Fig. 7): a CombinedUMon
 * — a 64-way sampled utility monitor plus the 1:16-sampled second
 * monitor for 4x coverage — measures the miss curve while the program
 * runs; the convex hull is computed from the *monitored* curve; and
 * the TalusController is configured from it. Prints the monitored
 * curve against ground truth and the resulting Talus performance.
 *
 * Build & run:  ./build/examples/monitoring_pipeline
 */

#include <cstdio>

#include "core/convex_hull.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "sim/scale.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

int
main()
{
    using namespace talus;

    const Scale scale(256);
    const AppSpec& app = findApp("omnetpp"); // Cliff at 2MB.
    const uint64_t llc = scale.lines(1.5);   // Mid-cliff LLC.

    // --- Phase 1: the monitor watches the access stream. ---
    CombinedUMon::Config mc;
    mc.llcLines = llc;
    mc.coverage = 4; // Sees up to 6MB: past the 2MB cliff.
    CombinedUMon monitor(mc);

    auto mon_stream = app.buildStream(scale.linesPerMb(), 0, 7);
    for (int i = 0; i < 1500000; ++i)
        monitor.access(mon_stream->next());
    const MissCurve monitored = monitor.curve();

    // Ground truth for comparison.
    auto exact_stream = app.buildStream(scale.linesPerMb(), 0, 7);
    const MissCurve exact =
        measureLruCurve(*exact_stream, 1500000, llc * 4, llc / 8);

    Table curve_table("Monitored vs exact LRU miss ratio",
                      {"size_mb", "UMON", "exact"});
    for (uint64_t s = llc / 2; s <= llc * 4; s += llc / 2) {
        curve_table.addRow({scale.mb(s),
                            monitored.at(static_cast<double>(s)),
                            exact.at(static_cast<double>(s))});
    }
    curve_table.print();

    // --- Phase 2: configure Talus from the monitored curve. ---
    auto phys =
        makePartitionedCache(SchemeKind::Vantage, llc, 32, "LRU", 2);
    TalusController::Config tc;
    tc.numLogicalParts = 1;
    tc.usableFraction = schemeUsableFraction(SchemeKind::Vantage);
    TalusController talus(std::move(phys), tc);
    talus.configure({monitored}, {llc});

    const TalusConfig& cfg = talus.configOf(0);
    std::printf("shadow configuration at %.2fMB: alpha=%.2fMB "
                "beta=%.2fMB rho=%.3f\n",
                scale.mb(llc), scale.mb(static_cast<uint64_t>(cfg.alpha)),
                scale.mb(static_cast<uint64_t>(cfg.beta)), cfg.rho);

    // --- Phase 3: run and compare against plain LRU. ---
    auto run_stream = app.buildStream(scale.linesPerMb(), 0, 7);
    for (uint64_t i = 0; i < 2 * llc + 65536; ++i)
        talus.access(run_stream->next(), 0);
    talus.cache().stats().reset();
    for (int i = 0; i < 400000; ++i)
        talus.access(run_stream->next(), 0);
    const double measured =
        static_cast<double>(talus.logicalMisses(0)) /
        static_cast<double>(talus.logicalAccesses(0));

    std::printf("at %.2fMB: LRU %.3f, Talus promise %.3f, Talus "
                "measured %.3f miss ratio\n",
                scale.mb(llc), exact.at(static_cast<double>(llc)),
                ConvexHull(monitored).at(static_cast<double>(llc) *
                                         0.9),
                measured);
    return 0;
}
