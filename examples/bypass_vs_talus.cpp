/**
 * @file
 * Why Talus beats bypassing (Sec. V-C of the paper).
 *
 * Bypassing a fraction of accesses makes the rest behave like a
 * larger cache (Theorem 4) — but the bypassed fraction always misses,
 * so the best any bypass scheme can do is a chord of the miss curve.
 * Talus traces the convex hull, which is at or below every chord
 * (Corollary 8). This example prints both, then configures a real
 * TalusCache at one mid-cliff size and compares its shadow-partition
 * plan against the optimal bypass decomposition (Fig. 5).
 *
 * Build & run:  ./build/examples/bypass_vs_talus
 */

#include <cstdio>

#include "api/talus.h"
#include "core/bypass_analysis.h"
#include "util/table.h"

int
main()
{
    using namespace talus;

    const MissCurve lru({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                         {5, 3}, {6, 3}, {8, 3}, {10, 3}});
    const ConvexHull hull(lru);

    Table table("MPKI vs cache size (Fig. 6)",
                {"size_mb", "LRU", "OptBypass", "Talus"});
    for (double mb = 0; mb <= 10; mb += 0.5) {
        table.addRow({mb, lru.at(mb), optimalBypass(lru, mb).misses,
                      hull.at(mb)});
    }
    table.print();

    const BypassChoice at4 = optimalBypass(lru, 4.0);
    std::printf("Optimal bypassing at 4MB (Fig. 5):\n");
    std::printf("  accept rho=%.3g of accesses -> they behave like a "
                "%.3gMB cache: %.3g MPKI\n",
                at4.rho, at4.emulated, at4.keptPart);
    std::printf("  bypass %.3g of accesses -> always miss: %.3g MPKI\n",
                1 - at4.rho, at4.bypassPart);

    // Talus's plan at the same size, through the facade: build a
    // 4MB cache (64 lines/MB demo scale) and hand it the measured
    // curve; its shadow configuration is the hull's answer.
    const Scale scale(64);
    TalusCache::Config cfg;
    cfg.llcLines = scale.lines(4.0);
    cfg.scheme = SchemeKind::Ideal;
    cfg.margin = 0.0;            // Exact math for the comparison.
    cfg.allocatorName = "";      // The curve is supplied below.
    TalusCache talus(cfg);
    talus.applyCurves(
        {lru.scaled(static_cast<double>(scale.linesPerMb()), 1.0)},
        {talus.capacityLines()});

    const TalusConfig& tc = talus.stats(0).shadow;
    std::printf("Talus at 4MB (TalusCache plan):\n");
    std::printf("  route rho=%.3g of accesses to a %.3gMB shadow "
                "partition (emulates %.3gMB)\n",
                tc.rho, scale.mb(static_cast<uint64_t>(tc.s1)),
                scale.mb(static_cast<uint64_t>(tc.alpha)));
    std::printf("  route %.3g to a %.3gMB shadow partition (emulates "
                "%.3gMB) -> nothing always-misses\n",
                1 - tc.rho, scale.mb(static_cast<uint64_t>(tc.s2)),
                scale.mb(static_cast<uint64_t>(tc.beta)));
    std::printf("  total %.3g MPKI (bypass %.3g, LRU %.3g)\n",
                hull.at(4.0), at4.misses, lru.at(4.0));
    return 0;
}
