/**
 * @file
 * Why Talus beats bypassing (Sec. V-C of the paper).
 *
 * Bypassing a fraction of accesses makes the rest behave like a
 * larger cache (Theorem 4) — but the bypassed fraction always misses,
 * so the best any bypass scheme can do is a chord of the miss curve.
 * Talus traces the convex hull, which is at or below every chord
 * (Corollary 8). This example prints both, plus the decomposition of
 * the optimal bypass at one size (Fig. 5).
 *
 * Build & run:  ./build/examples/bypass_vs_talus
 */

#include <cstdio>

#include "core/bypass_analysis.h"
#include "core/convex_hull.h"
#include "util/table.h"

int
main()
{
    using namespace talus;

    const MissCurve lru({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                         {5, 3}, {6, 3}, {8, 3}, {10, 3}});
    const ConvexHull hull(lru);

    Table table("MPKI vs cache size (Fig. 6)",
                {"size_mb", "LRU", "OptBypass", "Talus"});
    for (double mb = 0; mb <= 10; mb += 0.5) {
        table.addRow({mb, lru.at(mb), optimalBypass(lru, mb).misses,
                      hull.at(mb)});
    }
    table.print();

    const BypassChoice at4 = optimalBypass(lru, 4.0);
    std::printf("Optimal bypassing at 4MB (Fig. 5):\n");
    std::printf("  accept rho=%.3g of accesses -> they behave like a "
                "%.3gMB cache: %.3g MPKI\n",
                at4.rho, at4.emulated, at4.keptPart);
    std::printf("  bypass %.3g of accesses -> always miss: %.3g MPKI\n",
                1 - at4.rho, at4.bypassPart);
    std::printf("  total %.3g MPKI vs Talus %.3g MPKI (LRU: %.3g)\n",
                at4.misses, hull.at(4.0), lru.at(4.0));
    return 0;
}
