/**
 * @file
 * End-to-end cliff removal on a libquantum-like scanning workload.
 *
 * Measures the real LRU miss curve with Mattson's stack algorithm,
 * then drives a trace through Talus wrapped around idealized and
 * Vantage partitioning at several cache sizes (one single-partition
 * TalusCache facade per size, via sweepTalusCurve), printing measured
 * MPKI against the convex-hull promise — a miniature of the paper's
 * Fig. 1/Fig. 8.
 *
 * Build & run:  ./build/examples/smooth_scan
 */

#include <cstdio>

#include "core/convex_hull.h"
#include "sim/experiment_util.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

int
main()
{
    using namespace talus;

    const Scale scale(64); // 1 paper-MB = 64 lines: fast demo scale.
    const AppSpec& app = findApp("libquantum");
    std::printf("workload: %s (%.0fMB scan, %.0f APKI)\n\n",
                app.name.c_str(), app.footprintMb(), app.apki);

    // Step 1: measure LRU's miss curve once (stack algorithm).
    auto curve_stream = app.buildStream(scale.linesPerMb(), 0, 1);
    const uint64_t max_lines = scale.lines(40);
    const MissCurve lru = measureLruCurve(*curve_stream, 400000,
                                          max_lines, max_lines / 64);
    const ConvexHull hull(lru);

    // Step 2: sweep Talus across sizes, trace-driven.
    const auto sizes = sizeGridLines(scale, 40.0, 4.0);

    auto talus_stream = app.buildStream(scale.linesPerMb(), 0, 1);
    TalusSweepOptions ideal_opts;
    ideal_opts.scheme = SchemeKind::Ideal;
    ideal_opts.measureAccesses = 200000;
    const MissCurve talus_ideal =
        sweepTalusCurve(*talus_stream, lru, sizes, ideal_opts);

    auto vantage_stream = app.buildStream(scale.linesPerMb(), 0, 1);
    TalusSweepOptions vantage_opts = ideal_opts;
    vantage_opts.scheme = SchemeKind::Vantage;
    const MissCurve talus_vantage =
        sweepTalusCurve(*vantage_stream, lru, sizes, vantage_opts);

    Table table("libquantum MPKI vs cache size",
                {"size_mb", "LRU", "Talus promise", "Talus+I/LRU",
                 "Talus+V/LRU"});
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({scale.mb(s), app.apki * lru.at(fs),
                      app.apki * hull.at(fs),
                      app.apki * talus_ideal.at(fs),
                      app.apki * talus_vantage.at(fs)});
    }
    table.print();
    std::printf("LRU is flat until the 32MB cliff; Talus traces the "
                "diagonal hull.\n");
    return 0;
}
