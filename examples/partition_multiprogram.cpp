/**
 * @file
 * Shared-cache management with Talus: four applications on one LLC.
 *
 * Runs the same 4-app mix under (i) unpartitioned shared LRU,
 * (ii) partitioned LRU with the expensive Lookahead algorithm, and
 * (iii) Talus with trivial hill climbing — demonstrating the paper's
 * systems claim: once curves are convex, the simple algorithm matches
 * or beats the complex one (Sec. VII-D). All three stacks are one
 * TalusCache facade each (inside runMultiProg); the configs below
 * only flip facade knobs.
 *
 * Build & run:  ./build/examples/partition_multiprogram
 */

#include <cstdio>

#include "sim/metrics.h"
#include "sim/multi_prog_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

int
main()
{
    using namespace talus;

    const Scale scale(64);
    const std::vector<std::string> names{"omnetpp", "astar", "milc",
                                         "xalancbmk"};
    std::vector<const AppSpec*> apps;
    for (const auto& name : names)
        apps.push_back(&findApp(name));

    MultiProgConfig base;
    base.llcLines = scale.lines(8.0); // 8MB shared LLC (2MB/core).
    base.instrPerApp = 2'000'000;
    base.reconfigCycles = 500'000;
    base.scheme = SchemeKind::Unpartitioned;
    base.allocatorName = "";

    std::printf("mix: omnetpp + astar + milc + xalancbmk on a shared "
                "8MB LLC\n\n");
    const auto shared_lru = runMultiProg(apps, base, scale);

    MultiProgConfig lookahead_cfg = base;
    lookahead_cfg.scheme = SchemeKind::Vantage;
    lookahead_cfg.allocatorName = "Lookahead";
    const auto lookahead = runMultiProg(apps, lookahead_cfg, scale);

    MultiProgConfig talus_cfg = base;
    talus_cfg.scheme = SchemeKind::Vantage;
    talus_cfg.useTalus = true;
    talus_cfg.allocateOnHulls = true;
    talus_cfg.allocatorName = "HillClimb";
    const auto talus = runMultiProg(apps, talus_cfg, scale);

    Table table("Per-app IPC", {"app", "shared LRU", "LRU+Lookahead",
                                "Talus+HillClimb"});
    for (size_t i = 0; i < apps.size(); ++i) {
        table.addRow({names[i], fmtDouble(shared_lru.apps[i].ipc),
                      fmtDouble(lookahead.apps[i].ipc),
                      fmtDouble(talus.apps[i].ipc)});
    }
    table.print();

    const auto base_ipc = shared_lru.ipcVector();
    std::printf("weighted speedup vs shared LRU:  Lookahead %.3f   "
                "Talus+Hill %.3f\n",
                weightedSpeedup(lookahead.ipcVector(), base_ipc),
                weightedSpeedup(talus.ipcVector(), base_ipc));
    std::printf("harmonic speedup vs shared LRU:  Lookahead %.3f   "
                "Talus+Hill %.3f\n",
                harmonicSpeedup(lookahead.ipcVector(), base_ipc),
                harmonicSpeedup(talus.ipcVector(), base_ipc));
    return 0;
}
