/**
 * @file
 * Serving bench: the latency-percentile harness driving the sharded
 * engine with closed- and open-loop load.
 *
 * Two sections, the way production cache load tools (Traffic
 * Server's jtest / http_load) report results:
 *
 *  1. Closed loop — back-to-back batches, one outstanding request —
 *     swept over shard and thread counts: peak throughput plus
 *     p50/p95/p99 per-batch service latency. This is the scaling
 *     curve the ROADMAP's "make threaded sharding actually scale"
 *     item is pinned by.
 *
 *  2. Open loop — batches arrive on a fixed schedule at a fraction
 *     of the measured closed-loop capacity — showing how the tail
 *     (sojourn time = queueing + service) inflates as offered load
 *     approaches saturation, which aggregate throughput alone never
 *     shows.
 *
 * Build & run:  ./build/examples/serving_bench
 *               [--shards=N] [--threads=N] [--accesses=N]
 *               [--reconfig=N] [--pipeline=0|1]
 *               [--monitor-sample=N] [--csv] [--metrics=PATH]
 *
 * Serving defaults to sampled monitoring (period
 * kServingMonitorSamplePeriod = 8): throughput is the product here,
 * and period-8 curves are statistically plenty for the control
 * plane. Pass --monitor-sample=1 to restore exact (figure-grade)
 * monitoring. --pipeline=0 disables the double-buffered scatter for
 * A/B runs.
 *
 * With --metrics=PATH (or TALUS_METRICS), the engine and harness
 * publish into the global metric registry — per-shard hit/miss
 * counters, worker ring depths, control-plane staleness, serving
 * latency histograms — and a snapshot is dumped to PATH at exit.
 */

#include <cstdio>
#include <vector>

#include "api/talus.h"
#include "sim/experiment_util.h"
#include "sim/serving_harness.h"
#include "util/table.h"
#include "workload/zipf_stream.h"

int
main(int argc, char** argv)
{
    using namespace talus;

    const BenchEnv env = BenchEnv::init(argc, argv);

    ShardedTalusCache::Config cfg;
    cfg.shard.llcLines = 4096;
    cfg.shard.ways = 16;
    cfg.shard.allocatorName = "HillClimb";
    cfg.shard.reconfigInterval =
        env.reconfig > 0 ? env.reconfig : 50'000;
    cfg.shard.seed = env.seed;
    cfg.shard.metricsEnabled = env.metricsWanted();
    cfg.shard.monitorSamplePeriod =
        env.monitorSampleOr(kServingMonitorSamplePeriod);
    cfg.pipelineDispatch = env.pipeline;

    ServingOptions serve;
    serve.accesses = env.measureAccesses * 4;
    serve.batchSize = 8192;
    serve.warmupBatches = 16;
    if (env.metricsWanted())
        serve.metrics = &globalMetricRegistry();

    const uint64_t universe = 1 << 16; // Zipf-skewed key space.

    const std::vector<uint32_t> shard_counts =
        env.shards > 0 ? std::vector<uint32_t>{env.shards}
                       : std::vector<uint32_t>{1, 2, 4, 8};
    const std::vector<uint32_t> thread_counts{
        0, env.threads > 0 ? env.threads : 2};

    std::printf("serving bench: %llu accesses/run (+%llu warmup "
                "batches), zipf(0.9) over %llu keys, %llu-line "
                "shards, batch %llu, monitor period %u, pipeline "
                "%s\n\n",
                static_cast<unsigned long long>(serve.accesses),
                static_cast<unsigned long long>(serve.warmupBatches),
                static_cast<unsigned long long>(universe),
                static_cast<unsigned long long>(cfg.shard.llcLines),
                static_cast<unsigned long long>(serve.batchSize),
                cfg.shard.monitorSamplePeriod,
                cfg.pipelineDispatch ? "on" : "off");

    // --- Closed loop: peak throughput + service-latency percentiles.
    Table closed("Closed-loop serving (one outstanding batch)",
                 {"shards", "threads", "Macc_per_s", "p50_us",
                  "p95_us", "p99_us"});
    double peak_rate = 0.0;
    for (uint32_t shards : shard_counts) {
        for (uint32_t threads : thread_counts) {
            cfg.numShards = shards;
            cfg.threads = threads;
            ShardedTalusCache cache(cfg);
            ZipfStream stream(universe, 0.9, 0, env.seed + 7);
            const ServingResult r =
                runClosedLoop(cache, stream, serve);
            if (r.accessesPerSecond() > peak_rate)
                peak_rate = r.accessesPerSecond();
            closed.addRow({static_cast<double>(shards),
                           static_cast<double>(threads),
                           r.accessesPerSecond() / 1e6,
                           r.latency.p50 * 1e6, r.latency.p95 * 1e6,
                           r.latency.p99 * 1e6});
        }
    }
    closed.print(env.csv);

    // --- Open loop: tail latency vs offered load. ------------------
    // Fixed-arrival-rate batches against the largest swept engine, at
    // fractions of the peak closed-loop rate measured above.
    cfg.numShards = shard_counts.back();
    cfg.threads = env.threads > 0 ? env.threads : 2;
    std::printf("\n");
    Table open("Open-loop serving (fixed arrival rate, sojourn "
               "latency)",
               {"offered_frac", "offered_Macc_s", "achieved_Macc_s",
                "late_batches", "p50_us", "p95_us", "p99_us"});
    bool tails_ordered = true;
    double prev_p99 = 0.0;
    for (double frac : {0.25, 0.5, 0.75, 0.9}) {
        ShardedTalusCache cache(cfg);
        ZipfStream stream(universe, 0.9, 0, env.seed + 7);
        ServingOptions open_opts = serve;
        open_opts.offeredRate = peak_rate * frac;
        const ServingResult r = runOpenLoop(cache, stream, open_opts);
        open.addRow({frac, open_opts.offeredRate / 1e6,
                     r.accessesPerSecond() / 1e6,
                     static_cast<double>(r.lateBatches),
                     r.latency.p50 * 1e6, r.latency.p95 * 1e6,
                     r.latency.p99 * 1e6});
        // Tails should not *shrink* as load grows (a sanity signal,
        // not a hard guarantee on noisy hosts).
        tails_ordered &= r.latency.p99 + 1e-9 >= prev_p99 * 0.5;
        prev_p99 = r.latency.p99;
    }
    open.print(env.csv);

    std::printf("\npeak closed-loop rate: %.2f Macc/s; open-loop "
                "tail ordering %s\n", peak_rate / 1e6,
                tails_ordered ? "plausible" : "NOISY (timing-bound "
                                              "host?)");
    return 0;
}
