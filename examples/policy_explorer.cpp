/**
 * @file
 * Compare replacement policies on any app of the synthetic suite.
 *
 * Usage:  ./build/examples/policy_explorer [app] [max_mb]
 *         (defaults: omnetpp 8)
 *
 * Prints MPKI for LRU, DIP, SRRIP, DRRIP, and PDP across cache
 * sizes, next to the Talus promise (LRU's convex hull) and what a
 * TalusCache wrapped around LRU actually measures at each size — a
 * build-your-own Fig. 10.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/talus.h"
#include "sim/experiment_util.h"
#include "sim/single_app_sim.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    using namespace talus;

    const std::string app_name = argc > 1 ? argv[1] : "omnetpp";
    const double max_mb = argc > 2 ? std::atof(argv[2]) : 8.0;

    const Scale scale(64);
    const AppSpec& app = findApp(app_name);
    std::printf("app: %s (APKI %.1f, footprint %.1fMB)\n\n",
                app.name.c_str(), app.apki, app.footprintMb());

    const auto sizes = sizeGridLines(scale, max_mb, max_mb / 8);

    // Exact LRU curve (one pass) + hull = the Talus promise.
    auto lru_stream = app.buildStream(scale.linesPerMb(), 0, 3);
    const uint64_t max_lines = scale.lines(max_mb);
    const MissCurve lru = measureLruCurve(
        *lru_stream, 300000, max_lines,
        std::max<uint64_t>(1, max_lines / 64));
    const ConvexHull hull(lru);

    // Trace-driven sweeps for the high-performance policies.
    const std::vector<std::string> policies{"DIP", "SRRIP", "DRRIP",
                                            "PDP"};
    std::vector<MissCurve> curves;
    for (const auto& policy : policies) {
        auto stream = app.buildStream(scale.linesPerMb(), 0, 3);
        SweepOptions opts;
        opts.policyName = policy;
        opts.measureAccesses = 150000;
        curves.push_back(sweepPolicyCurve(*stream, sizes, opts));
    }

    // And the promise made real: TalusCache (facade) around LRU,
    // one fresh self-contained cache per size.
    auto talus_stream = app.buildStream(scale.linesPerMb(), 0, 3);
    TalusSweepOptions topts;
    topts.scheme = SchemeKind::Vantage;
    topts.measureAccesses = 150000;
    const MissCurve talus =
        sweepTalusCurve(*talus_stream, lru, sizes, topts);

    Table table("MPKI vs cache size",
                {"size_mb", "LRU", "DIP", "SRRIP", "DRRIP", "PDP",
                 "Talus+V/LRU", "Talus promise"});
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        std::vector<double> row{scale.mb(s), app.apki * lru.at(fs)};
        for (const auto& curve : curves)
            row.push_back(app.apki * curve.at(fs));
        row.push_back(app.apki * talus.at(fs));
        row.push_back(app.apki * hull.at(fs));
        table.addRow(row);
    }
    table.print();
    return 0;
}
