/**
 * @file
 * Quickstart: the whole Talus mechanism through one object.
 *
 * TalusCache is the library's public entry point: one validated
 * Config builds the partitioned cache, the utility monitors, the
 * convex-hull pre-processing, the allocator, and the shadow-partition
 * controller (Fig. 7 of the paper), and the object reconfigures
 * itself every `reconfigInterval` accesses. This example points it at
 * the paper's canonical cliff — a scanning workload on a mid-cliff
 * cache — and watches the self-managed loop trace the convex hull.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "api/talus.h"
#include "util/table.h"

int
main()
{
    using namespace talus;

    const Scale scale(64); // 1 paper-MB = 64 lines: fast demo scale.
    const AppSpec& app = findApp("libquantum"); // 32MB scan: cliff.

    // --- 1. Configure. Invalid configs throw with a clear message. --
    TalusCache::Config cfg;
    cfg.llcLines = scale.lines(16.0);   // Mid-cliff LLC.
    cfg.scheme = SchemeKind::Ideal;     // Idealized partitioning.
    cfg.policyName = "LRU";
    cfg.allocatorName = "HillClimb";    // Naive climber is enough...
    cfg.allocateOnHulls = true;         // ...once curves are convex.
    cfg.reconfigInterval = 50'000;      // Self-reconfigure cadence.
    cfg.seed = 1;

    TalusCache cache(cfg); // Throws ConfigError if cfg is invalid.

    // (What rejection looks like:)
    try {
        TalusCache::Config bad = cfg;
        bad.margin = 2.0;
        TalusCache oops(bad);
    } catch (const ConfigError& e) {
        std::printf("config validation demo: %s\n\n", e.what());
    }

    // --- 2. Run. The cache monitors, hulls, allocates, and ---
    // --- reconfigures itself; callers only call access().  ---
    auto stream = app.buildStream(scale.linesPerMb(), 0, 1);
    for (int i = 0; i < 400'000; ++i)
        cache.access(stream->next());

    cache.resetStats(); // Measure steady state only.
    for (int i = 0; i < 400'000; ++i)
        cache.access(stream->next());

    // --- 3. Inspect. ---
    const TalusCache::PartStats s = cache.stats(0);
    std::printf("workload:        %s (%.0f paper-MB scan)\n",
                app.name.c_str(), app.footprintMb());
    std::printf("LLC size:        %.0f paper-MB (%llu lines)\n",
                scale.mb(cache.capacityLines()),
                static_cast<unsigned long long>(cache.capacityLines()));
    std::printf("reconfigs run:   %llu (every %llu accesses)\n",
                static_cast<unsigned long long>(
                    cache.reconfigurations()),
                static_cast<unsigned long long>(cfg.reconfigInterval));
    std::printf("shadow config:   alpha=%.1fMB beta=%.1fMB rho=%.3f "
                "(s1=%.1fMB s2=%.1fMB)\n",
                scale.mb(static_cast<uint64_t>(s.shadow.alpha)),
                scale.mb(static_cast<uint64_t>(s.shadow.beta)), s.rho,
                scale.mb(static_cast<uint64_t>(s.shadow.s1)),
                scale.mb(static_cast<uint64_t>(s.shadow.s2)));

    // The monitored curve vs its hull: the cliff Talus removes.
    const MissCurve monitored = cache.curve(0);
    const ConvexHull hull(monitored);
    Table table("Monitored LRU miss ratio vs the Talus promise",
                {"size_mb", "monitored", "hull"});
    for (double mb = 8; mb <= 40; mb += 8) {
        const double lines = static_cast<double>(scale.lines(mb));
        table.addRow({mb, monitored.at(lines), hull.at(lines)});
    }
    table.print();

    std::printf("measured miss ratio at %.0fMB: %.3f  (plain LRU "
                "mid-cliff: ~%.3f, hull: %.3f)\n",
                scale.mb(cache.capacityLines()), s.missRatio(),
                monitored.at(static_cast<double>(cache.capacityLines())),
                hull.at(static_cast<double>(cache.capacityLines())));
    return 0;
}
