/**
 * @file
 * Quickstart: the Talus math on a miss curve with a cliff.
 *
 * This is the paper's Sec. III worked example, in ~40 lines of API:
 * take a measured miss curve, compute its convex hull, and ask Talus
 * how to configure the shadow partitions at a size in the middle of
 * the cliff. No simulation involved — Talus needs only the curve.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/bypass_analysis.h"
#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "util/table.h"

int
main()
{
    using namespace talus;

    // An application that accesses 2MB at random plus 3MB
    // sequentially: LRU is flat at 12 MPKI from 2MB until everything
    // fits at 5MB (the paper's Fig. 3).
    const MissCurve lru({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                         {5, 3}, {6, 3}, {8, 3}, {10, 3}});

    // Pre-processing: the convex hull is what Talus promises.
    const ConvexHull hull(lru);

    Table curve_table("Miss curves (MPKI vs cache MB)",
                      {"size_mb", "LRU", "Talus", "OptBypass"});
    for (double mb = 0; mb <= 10; mb += 1) {
        curve_table.addRow({mb, lru.at(mb), hull.at(mb),
                            optimalBypass(lru, mb).misses});
    }
    curve_table.print();

    // Post-processing: shadow partition configuration at 4MB.
    const TalusConfig cfg = computeTalusConfig(hull, 4.0, /*margin=*/0.0);
    std::printf("Talus at 4MB:\n");
    std::printf("  hull segment:     alpha=%.2gMB  beta=%.2gMB\n",
                cfg.alpha, cfg.beta);
    std::printf("  sampling rate:    rho=%.4g  (fraction of accesses "
                "routed to the alpha shadow partition)\n",
                cfg.rho);
    std::printf("  shadow sizes:     s1=%.4gMB  s2=%.4gMB\n", cfg.s1,
                cfg.s2);
    std::printf("  emulated caches:  s1/rho=%.4gMB  s2/(1-rho)=%.4gMB\n",
                cfg.s1 / cfg.rho, cfg.s2 / (1 - cfg.rho));
    std::printf("  predicted MPKI:   %.4g (LRU at 4MB: %.4g)\n",
                cfg.predictedMisses(lru), lru.at(4.0));
    return 0;
}
