/**
 * @file
 * Scenario zoo: Talus vs plain LRU through the traffic transitions
 * where cliffs actually bite.
 *
 * Every figure bench reproduces a static workload; this example runs
 * the phase-change generators (workload/scenarios.h) — flash crowd,
 * scan storm, diurnal shift, tenant churn — through the sharded
 * serving engine and prints a *windowed* miss-ratio timeline for two
 * configurations of the same cache:
 *
 *  - LRU:   ShardedTalusCache with talus=false (plain partitioned
 *           cache, no shadow partitions — exactly the paper's
 *           baseline).
 *  - Talus: the same geometry with Talus smoothing on, driven by the
 *           epoch-deferred control plane (reconfigureAllAtEpoch), so
 *           runs are bit-exact for any thread count.
 *
 * During a scan storm or a flash crowd the instantaneous miss curve
 * grows a cliff and plain LRU falls off it; Talus traces the convex
 * hull and holds the windowed miss ratio near the smooth diagonal.
 * The final table summarizes each scenario's worst transition window.
 *
 * With --trace=PATH (or TALUS_TRACE) the synthetic scenarios are
 * replaced by a recorded trace (binary or CSV — see
 * tools/trace_convert), demonstrating that a production access log
 * drives the identical machinery unchanged.
 *
 * The windowed timelines are derived from the observability layer:
 * each engine publishes cumulative counters into a MetricRegistry
 * (labeled engine="lru"/"talus" and shard=), and per-window miss
 * ratios are metricsDelta() of consecutive snapshots — no stats
 * resets, no hand-kept per-series state. With --metrics=PATH the
 * engines publish into the global registry, so the exit dump carries
 * the whole run.
 *
 * Build & run:  ./build/examples/scenario_zoo
 *               [--shards=N] [--threads=N] [--accesses=N] [--csv]
 *               [--trace=PATH] [--seed=N] [--metrics=PATH]
 */

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/talus.h"
#include "sim/experiment_util.h"
#include "sim/sharded_replay.h"
#include "sim/serving_harness.h"
#include "util/table.h"

namespace {

using namespace talus;

/** One scenario's replay configuration. */
struct Scenario
{
    std::string name;
    std::unique_ptr<PhaseStream> stream;
    uint64_t cacheLines; //!< Total capacity across shards.
};

/** Windowed miss-ratio timeline of one engine over one stream. */
struct Timeline
{
    std::vector<double> missRatio; //!< Per measurement window.
    std::vector<uint32_t> phase;   //!< Phase index of each window.
};

/**
 * Replays @p windows windows of @p window_accesses each, reading the
 * per-window miss ratio as a registry snapshot delta: the engine
 * publishes cumulative talus_cache_accesses_total /
 * misses_total counters (labeled engine= and shard=), and
 * metricsDelta of consecutive snapshots yields each window's rates —
 * the production pattern for deriving windowed figures from
 * monotone counters, with no stats reset and no hand-kept "last
 * value" state per series. Talus engines get an explicit
 * epoch-deferred control sweep every window (epoch = one replay
 * block), keeping the run deterministic for any thread count.
 */
Timeline
runTimeline(ShardedTalusCache& cache, MetricRegistry& reg,
            const std::string& engine_filter, PhaseStream& stream,
            uint64_t windows, uint64_t window_accesses, bool control)
{
    ShardedReplayOptions opts;
    opts.accesses = window_accesses;
    opts.blockSize = 8192;
    // The replay driver counts blocks per call, so the sweep period
    // must divide the blocks in one window or control never runs.
    if (control) {
        opts.reconfigEveryBlocks = 2;
        opts.applyEpochLen = opts.blockSize;
    }
    Timeline t;
    uint64_t pos = 0;
    MetricsSnapshot before = reg.snapshot();
    for (uint64_t w = 0; w < windows; ++w) {
        t.phase.push_back(stream.phaseAt(pos));
        runShardedReplay(cache, stream, opts);
        pos += window_accesses;
        const MetricsSnapshot after = reg.snapshot();
        const MetricsSnapshot d = metricsDelta(before, after);
        // Cross-shard rollup of this engine's series only: the
        // registry is shared, so the engine label is the selector.
        const uint64_t da =
            d.counterTotal("talus_cache_accesses_total", engine_filter);
        const uint64_t dm =
            d.counterTotal("talus_cache_misses_total", engine_filter);
        t.missRatio.push_back(
            da > 0 ? static_cast<double>(dm) / static_cast<double>(da)
                   : 0.0);
        before = after;
    }
    return t;
}

/**
 * Builds the engine: shared geometry, Talus on or off. Metrics are
 * always on here (the timeline machinery reads them); @p engine
 * becomes an engine="..." label so both engines can share @p reg.
 */
ShardedTalusCache
buildEngine(uint64_t total_lines, uint32_t shards, uint32_t threads,
            uint64_t seed, bool talus_on, MetricRegistry& reg,
            const std::string& engine)
{
    ShardedTalusCache::Config cfg;
    cfg.numShards = shards;
    cfg.threads = threads;
    cfg.shard.llcLines = total_lines / shards;
    cfg.shard.ways = 16;
    cfg.shard.numParts = 1;
    cfg.shard.talus = talus_on;
    cfg.shard.seed = seed;
    cfg.shard.metricsEnabled = true;
    cfg.shard.metrics = &reg;
    cfg.shard.metricsScope = labelPair("engine", engine);
    if (talus_on) {
        cfg.shard.allocatorName = "HillClimb";
        cfg.shard.reconfigInterval = 0; // Control is explicit here.
    } else {
        // Plain LRU baseline: no monitors, no allocator, no control.
        cfg.shard.monitoring = false;
        cfg.shard.allocatorName = "";
        cfg.shard.reconfigInterval = 0;
    }
    return ShardedTalusCache(cfg);
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    const uint32_t shards = env.shards > 0 ? env.shards : 4;
    const uint32_t threads = env.threads;
    const uint64_t seed = env.seed;

    // The timelines are registry-snapshot deltas, so metrics are
    // always on; publishing into the global registry when --metrics=
    // asked for a dump makes the exit snapshot carry the full run.
    MetricRegistry local_registry;
    MetricRegistry& reg = env.metricsWanted() ? globalMetricRegistry()
                                              : local_registry;

    // --- Recorded-trace mode: a production log drives the engine. --
    if (!env.tracePath.empty()) {
        TraceStream trace(env.tracePath);
        ShardedTalusCache cache = buildEngine(
            1 << 14, shards, threads, seed, true, reg, "talus");
        ServingOptions opts;
        if (env.metricsWanted())
            opts.metrics = &reg;
        opts.accesses =
            env.measureAccesses > 0 ? env.measureAccesses : 1'000'000;
        opts.batchSize = 8192;
        opts.warmupBatches = 8;
        const ServingResult r = runClosedLoop(cache, trace, opts);
        std::printf("trace replay: %s (%llu accesses, %llu wraps)\n",
                    env.tracePath.c_str(),
                    static_cast<unsigned long long>(r.accesses),
                    static_cast<unsigned long long>(trace.wraps()));
        std::printf("  miss ratio %.4f, %.2f Macc/s, batch p50 %.1fus "
                    "p99 %.1fus\n",
                    r.missRatio(), r.accessesPerSecond() / 1e6,
                    r.latency.p50 * 1e6, r.latency.p99 * 1e6);
        return 0;
    }

    // --- Synthetic scenarios. --------------------------------------
    // Working sets are sized so each scenario's transition moves the
    // miss curve across the cache capacity: comfortable in the calm
    // phase, cliffed in the transition.
    const uint64_t phase = 200'000;
    std::vector<Scenario> scenarios;
    {
        ScanStormSpec s;
        s.baseLines = 3 << 10;  // Fits: calm traffic is happy.
        s.scanLines = 1 << 13;  // Storm sweeps 2x the cache.
        s.scanFraction = 0.85;  // Scan-dominated: the Fig. 1 cliff.
        s.calmAccesses = phase;
        s.stormAccesses = phase;
        s.seed = seed;
        scenarios.push_back(
            {"scan-storm", makeScanStormStream(s), 1 << 12});
    }
    {
        FlashCrowdSpec f;
        f.baseLines = 1 << 13;  // 2x the cache: convex pressure.
        f.crowdLines = 1 << 7;
        f.quietAccesses = phase;
        f.crowdAccesses = phase;
        f.seed = seed;
        scenarios.push_back(
            {"flash-crowd", makeFlashCrowdStream(f), 1 << 12});
    }
    {
        TenantChurnSpec t;
        t.tenantLines = 1 << 12; // Each tenant ~1x the cache.
        t.phaseAccesses = phase;
        t.seed = seed;
        scenarios.push_back(
            {"tenant-churn", makeTenantChurnStream(t), 1 << 12});
    }
    {
        DiurnalSpec d;
        d.dayLines = 1 << 13;   // Day overflows the cache 2x.
        d.nightLines = 1 << 10; // Night fits 4x over.
        d.phaseAccesses = phase;
        d.seed = seed;
        scenarios.push_back(
            {"diurnal", makeDiurnalStream(d), 1 << 12});
    }

    const uint64_t window = phase / 4;
    std::printf("scenario zoo: %u shards, %u threads, %llu-access "
                "windows\n\n",
                shards, threads,
                static_cast<unsigned long long>(window));

    Table summary("Worst transition window (miss ratio)",
                  {"scenario", "LRU", "Talus", "improvement"});
    bool all_deterministic = true;

    for (Scenario& sc : scenarios) {
        const uint64_t windows = std::max<uint64_t>(
            1, sc.stream->scheduleAccesses() / window);

        ShardedTalusCache lru = buildEngine(
            sc.cacheLines, shards, threads, seed, false, reg, "lru");
        ShardedTalusCache talus = buildEngine(
            sc.cacheLines, shards, threads, seed, true, reg, "talus");
        auto lru_stream = sc.stream->clone();
        const Timeline lt = runTimeline(
            lru, reg, labelPair("engine", "lru"),
            static_cast<PhaseStream&>(*lru_stream), windows, window,
            false);
        auto talus_stream = sc.stream->clone();
        const Timeline tt = runTimeline(
            talus, reg, labelPair("engine", "talus"),
            static_cast<PhaseStream&>(*talus_stream), windows, window,
            true);

        Table timeline(sc.name + ": windowed miss ratio",
                       {"window", "phase", "LRU", "Talus"});
        double worst_lru = 0, talus_at_worst = 0;
        for (uint64_t w = 0; w < windows; ++w) {
            timeline.addRow(
                {std::to_string(w),
                 sc.stream->phaseLabel(lt.phase[w]),
                 fmtDouble(lt.missRatio[w], 4),
                 fmtDouble(tt.missRatio[w], 4)});
            if (lt.missRatio[w] > worst_lru) {
                worst_lru = lt.missRatio[w];
                talus_at_worst = tt.missRatio[w];
            }
        }
        timeline.print(env.csv);
        std::printf("\n");

        summary.addRow(
            {sc.name, fmtDouble(worst_lru, 4),
             fmtDouble(talus_at_worst, 4),
             fmtDouble(worst_lru - talus_at_worst, 4)});

        // Determinism spot check (first scenario only, to keep the
        // demo quick): 0-thread vs 4-thread Talus runs must agree
        // bit-exactly — epoch-deferred control keeps it so.
        if (&sc == &scenarios.front()) {
            // Fresh registries: same engine label, separate series.
            MetricRegistry ra, rb;
            ShardedTalusCache a = buildEngine(
                sc.cacheLines, shards, 0, seed, true, ra, "talus");
            ShardedTalusCache b = buildEngine(
                sc.cacheLines, shards, 4, seed, true, rb, "talus");
            auto sa = sc.stream->clone();
            auto sb = sc.stream->clone();
            runTimeline(a, ra, labelPair("engine", "talus"),
                        static_cast<PhaseStream&>(*sa), windows,
                        window, true);
            runTimeline(b, rb, labelPair("engine", "talus"),
                        static_cast<PhaseStream&>(*sb), windows,
                        window, true);
            for (uint32_t s = 0; s < shards; ++s) {
                const auto x = a.shardStats(s, 0);
                const auto y = b.shardStats(s, 0);
                all_deterministic &=
                    x.accesses == y.accesses && x.misses == y.misses;
            }
            std::printf("determinism check (%s, 0 vs 4 threads): "
                        "per-shard stats %s\n\n",
                        sc.name.c_str(),
                        all_deterministic ? "bit-exact" : "DIVERGED");
        }
    }

    summary.print(env.csv);
    std::printf("\nLRU's worst window is the transition cliff; Talus "
                "holds the hull through it.\n");
    return all_deterministic ? 0 : 1;
}
