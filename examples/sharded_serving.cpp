/**
 * @file
 * Sharded serving: scaling one self-managing TalusCache into a
 * multi-shard, multi-threaded engine.
 *
 * ShardedTalusCache hash-partitions the address space (seeded H3,
 * shard/shard_router.h) across N fully independent TalusCache shards
 * and executes batches scatter-dispatch-gather on a fixed worker
 * pool. Because shards share no state, every shard's hit/miss
 * sequence is bit-exact for any thread count — threads buy
 * wall-clock, never different answers. This example sweeps shard and
 * thread counts over one Zipf-skewed workload, prints the measured
 * replay throughput, and checks the determinism guarantee on the fly.
 *
 * The control plane rides along: --reconfig=N sets how often each
 * shard's monitor -> hull -> allocate -> configure loop runs (in
 * accesses), and the final section demonstrates the epoch-deferred
 * mode — reconfigureAllAtEpoch() computes every shard's control step
 * concurrently but applies each shard's new configuration at a fixed
 * access-count boundary, so the result stays bit-exact for any
 * thread count.
 *
 * Build & run:  ./build/examples/sharded_serving
 *               [--shards=N] [--threads=N] [--accesses=N]
 *               [--reconfig=N] [--pipeline=0|1] [--csv]
 */

#include <cstdio>
#include <vector>

#include "api/talus.h"
#include "sim/experiment_util.h"
#include "sim/sharded_replay.h"
#include "util/table.h"
#include "workload/zipf_stream.h"

int
main(int argc, char** argv)
{
    using namespace talus;

    const BenchEnv env = BenchEnv::init(argc, argv);

    // Per-shard cache: self-managing, reconfiguring itself — the
    // quickstart cache, one per shard.
    ShardedTalusCache::Config cfg;
    cfg.shard.llcLines = 4096;
    cfg.shard.ways = 16;
    cfg.shard.allocatorName = "HillClimb";
    cfg.shard.reconfigInterval =
        env.reconfig > 0 ? env.reconfig : 50'000;
    cfg.shard.seed = env.seed;
    cfg.pipelineDispatch = env.pipeline;

    ShardedReplayOptions replay;
    replay.accesses = env.measureAccesses * 4;
    replay.blockSize = 8192;

    const uint64_t universe = 1 << 16; // Zipf-skewed key space.

    // --shards pins the sweep to one shard count. The sweep always
    // measures inline dispatch (threads = 0) plus one threaded
    // count: 2 by default, --threads=N to choose it.
    const std::vector<uint32_t> shard_counts =
        env.shards > 0 ? std::vector<uint32_t>{env.shards}
                       : std::vector<uint32_t>{1, 2, 4, 8};
    const std::vector<uint32_t> thread_counts{
        0, env.threads > 0 ? env.threads : 2};

    std::printf("sharded serving demo: %llu accesses, zipf(0.9) over "
                "%llu keys, %llu-line shards\n\n",
                static_cast<unsigned long long>(replay.accesses),
                static_cast<unsigned long long>(universe),
                static_cast<unsigned long long>(cfg.shard.llcLines));

    // --- Shard/thread scaling sweep. -------------------------------
    Table table("Sharded replay throughput (scatter-dispatch-gather)",
                {"shards", "threads", "miss_ratio", "Macc_per_s"});
    for (uint32_t shards : shard_counts) {
        for (uint32_t threads : thread_counts) {
            cfg.numShards = shards;
            cfg.threads = threads;
            ShardedTalusCache cache(cfg);
            ZipfStream stream(universe, 0.9, 0, env.seed + 7);
            const ShardedReplayResult r =
                runShardedReplay(cache, stream, replay);
            table.addRow({static_cast<double>(shards),
                          static_cast<double>(threads), r.missRatio(),
                          r.accessesPerSecond() / 1e6});
        }
    }
    table.print(env.csv);

    // --- The determinism guarantee, demonstrated. ------------------
    // Same workload, same shards, 0 vs 4 worker threads: every
    // shard's stats must be bit-exact.
    cfg.numShards = shard_counts.back();
    bool deterministic = true;
    {
        cfg.threads = 0;
        ShardedTalusCache inline_cache(cfg);
        cfg.threads = 4;
        ShardedTalusCache threaded_cache(cfg);
        ZipfStream inline_stream(universe, 0.9, 0, env.seed + 7);
        ZipfStream threaded_stream(universe, 0.9, 0, env.seed + 7);
        runShardedReplay(inline_cache, inline_stream, replay);
        runShardedReplay(threaded_cache, threaded_stream, replay);
        for (uint32_t s = 0; s < cfg.numShards; ++s) {
            const auto a = inline_cache.shardStats(s, 0);
            const auto b = threaded_cache.shardStats(s, 0);
            deterministic &=
                a.accesses == b.accesses && a.misses == b.misses;
        }
    }
    std::printf("\ndeterminism check (%u shards, 0 vs 4 threads): "
                "per-shard stats %s\n",
                cfg.numShards,
                deterministic ? "bit-exact" : "DIVERGED");

    // --- The epoch-deferred control plane, demonstrated. -----------
    // reconfigureAllAtEpoch() ends every shard's monitoring interval
    // and computes the new configurations concurrently, but each
    // shard applies its result only when its own access count crosses
    // the next multiple of the epoch length — a fixed access count,
    // so 0-thread and 4-thread runs still agree bit-exactly.
    ShardedReplayOptions deferred = replay;
    deferred.reconfigEveryBlocks = 8;
    deferred.applyEpochLen = 10'000;
    bool deferred_deterministic = true;
    uint64_t applied = 0;
    {
        cfg.shard.reconfigInterval = 0; // Control is explicit here.
        cfg.threads = 0;
        ShardedTalusCache inline_cache(cfg);
        cfg.threads = 4;
        ShardedTalusCache threaded_cache(cfg);
        ZipfStream inline_stream(universe, 0.9, 0, env.seed + 7);
        ZipfStream threaded_stream(universe, 0.9, 0, env.seed + 7);
        runShardedReplay(inline_cache, inline_stream, deferred);
        runShardedReplay(threaded_cache, threaded_stream, deferred);
        for (uint32_t s = 0; s < cfg.numShards; ++s) {
            const auto a = inline_cache.shardStats(s, 0);
            const auto b = threaded_cache.shardStats(s, 0);
            deferred_deterministic &=
                a.accesses == b.accesses && a.misses == b.misses;
        }
        deferred_deterministic &= inline_cache.reconfigurations() ==
                                  threaded_cache.reconfigurations();
        applied = inline_cache.reconfigurations();
    }
    std::printf("epoch-deferred control plane (every %llu blocks, "
                "epoch %llu accesses): %llu applied "
                "reconfigurations, 0 vs 4 threads %s\n",
                static_cast<unsigned long long>(
                    deferred.reconfigEveryBlocks),
                static_cast<unsigned long long>(deferred.applyEpochLen),
                static_cast<unsigned long long>(applied),
                deferred_deterministic ? "bit-exact" : "DIVERGED");
    return (deterministic && deferred_deterministic) ? 0 : 1;
}
