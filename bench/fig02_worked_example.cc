/**
 * @file
 * Figure 2 / Sec. III: the worked example.
 *
 * Paper: on the Fig. 3 curve, a 4MB Talus cache is configured as a
 * 2/3MB alpha partition receiving rho = 1/3 of accesses (emulating
 * 2MB) plus a 10/3MB beta partition (emulating 5MB), for 6 MPKI
 * instead of LRU's 12. We reproduce both the analytic numbers and a
 * trace-driven run of the example application (2MB random + 3MB
 * sequential) under set partitioning — the scheme the figure uses.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/app_spec.h"

using namespace talus;

namespace {

/** The Sec. III example app: 2MB random + 3MB sequential, 24 APKI. */
AppSpec
exampleApp()
{
    using Kind = AppSpec::Component::Kind;
    return {"fig3-example", 24, 0.8, 2.0,
            {{Kind::Random, 2.0, 0.5, 0.0}, {Kind::Scan, 3.0, 0.5, 0.0}}};
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 2: worked example at 4MB",
                  "alpha=2MB, beta=5MB, rho=1/3, s1=2/3MB, s2=10/3MB, "
                  "12 -> 6 MPKI",
                  env);

    // --- Analytic part: exactly the paper's idealized curve. ---
    const MissCurve idealized({{0, 24}, {1, 18}, {2, 12}, {3, 12},
                               {4, 12}, {5, 3}, {6, 3}, {8, 3}, {10, 3}});
    const ConvexHull ideal_hull(idealized);
    const TalusConfig analytic =
        computeTalusConfig(ideal_hull, 4.0, /*margin=*/0.0);

    Table analytic_table("Analytic configuration (paper values)",
                         {"quantity", "paper", "computed"});
    analytic_table.addRow(std::vector<std::string>{
        "alpha (MB)", "2", fmtDouble(analytic.alpha, 3)});
    analytic_table.addRow(std::vector<std::string>{
        "beta (MB)", "5", fmtDouble(analytic.beta, 3)});
    analytic_table.addRow(std::vector<std::string>{
        "rho", "0.333", fmtDouble(analytic.rho, 3)});
    analytic_table.addRow(std::vector<std::string>{
        "s1 (MB)", "0.667", fmtDouble(analytic.s1, 3)});
    analytic_table.addRow(std::vector<std::string>{
        "s2 (MB)", "3.333", fmtDouble(analytic.s2, 3)});
    analytic_table.addRow(std::vector<std::string>{
        "MPKI at 4MB", "6", fmtDouble(analytic.predictedMisses(idealized),
                                      3)});
    analytic_table.print(env.csv);
    bench::verdict(
        std::abs(analytic.predictedMisses(idealized) - 6.0) < 1e-9,
        "analytic shadow configuration reproduces 6 MPKI at 4MB");

    // --- Trace-driven part: simulate the example app. ---
    const AppSpec app = exampleApp();
    auto curve_stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const uint64_t max_lines = env.scale.lines(10.0);
    const MissCurve measured = measureLruCurve(
        *curve_stream, env.measureAccesses * 2, max_lines,
        max_lines / 80);

    auto run = [&](SchemeKind scheme) {
        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions opts;
        opts.scheme = scheme;
        opts.measureAccesses = env.measureAccesses;
        opts.seed = env.seed;
        return sweepTalusCurve(*stream, measured,
                               {env.scale.lines(4.0)}, opts);
    };
    const MissCurve talus_set = run(SchemeKind::Set);
    const MissCurve talus_ideal = run(SchemeKind::Ideal);

    const double four_mb = static_cast<double>(env.scale.lines(4.0));
    Table sim_table("Trace-driven example app at 4MB (MPKI)",
                    {"config", "MPKI"});
    sim_table.addRow(std::vector<std::string>{
        "LRU", fmtDouble(app.apki * measured.at(four_mb), 2)});
    sim_table.addRow(std::vector<std::string>{
        "Talus promise (hull)",
        fmtDouble(app.apki * ConvexHull(measured).at(four_mb), 2)});
    sim_table.addRow(std::vector<std::string>{
        "Talus+Set/LRU (Fig. 2c)",
        fmtDouble(app.apki * talus_set.at(four_mb), 2)});
    sim_table.addRow(std::vector<std::string>{
        "Talus+Ideal/LRU",
        fmtDouble(app.apki * talus_ideal.at(four_mb), 2)});
    sim_table.print(env.csv);

    bench::verdict(talus_set.at(four_mb) <
                       0.75 * measured.at(four_mb),
                   "set-partitioned Talus removes most of the plateau "
                   "waste at 4MB");
    return 0;
}
