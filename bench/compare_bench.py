#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and gate on regressions.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--benchmarks name1,name2,...]

Exits non-zero if any tracked benchmark's throughput (items_per_second,
falling back to 1/real_time) dropped by more than --threshold relative
to the baseline, or if a tracked benchmark is missing from the current
run (a silently deleted/renamed hot-path bench must not pass the
gate). Tracked benchmarks missing from the *baseline* only warn, so a
new bench can land before the baseline is refreshed.

Also enforces the no-negative-scaling invariant on the CURRENT run
alone (no baseline needed): threaded sharded dispatch must not be
slower than inline dispatch of the same configuration — the
regression that motivated the persistent shard-pinned workers.
Skipped with a warning on hosts with too few CPUs to make the
threaded row meaningful; --skip-scaling-check disables it explicitly.

The checked-in baseline (bench/BENCH_baseline.json) was recorded on one
reference machine; absolute numbers vary across hosts, which is why the
CI perf job is opt-in (workflow_dispatch) rather than part of every PR.
Refresh the baseline alongside any intentional perf-relevant change:

    ./build/bench/perf_micro --benchmark_format=json \
        --benchmark_min_time=0.5 > bench/BENCH_baseline.json
"""

import argparse
import json
import os
import sys

# Hot-path benchmarks the gate tracks by default; must stay in sync
# with the optimized paths listed in README "Performance".
DEFAULT_TRACKED = [
    "BM_H3Hash",
    "BM_ShadowRouterRoute",
    "BM_FullyAssocLru",
    "BM_UmonAccess",
    "BM_CombinedUMonAccess",
    "BM_TalusFacadeAccess",
    "BM_TalusBatchedAccess",
    "BM_TalusMonitorOffAccess",
    "BM_TalusRoutedAccess",
    # Sharded serving engine (inline dispatch: deterministic and
    # meaningful on any core count; threaded variants are reported
    # but not tracked). The sweep uses UseRealTime — work runs on
    # pool threads — which suffixes the names.
    "BM_ShardedBatchedAccess/shards:1/threads:0/real_time",
    "BM_ShardedBatchedAccess/shards:4/threads:0/real_time",
    # Single-worker dispatch (PR 10): the smallest threaded
    # configuration, tracked so ring-dispatch overhead regressions
    # show up without needing a many-core host.
    "BM_ShardedBatchedAccess/shards:4/threads:1/real_time",
    # Double-buffered pipelined dispatch (PR 10): multi-block batches
    # with pipelining off (serial reference) and on. Both rows are
    # tracked against the baseline; the pipeline:1 >= pipeline:0
    # expectation is a SCALING_INVARIANTS entry, gated on >= 2 CPUs
    # (on one core the producer and worker just time-slice).
    "BM_ShardedPipelinedAccess/pipeline:0/real_time",
    "BM_ShardedPipelinedAccess/pipeline:1/real_time",
    # Control plane (PR 5): the pure compute stage and the all-shard
    # reconfiguration sweep. As above, only the inline-dispatch row of
    # the sweep is tracked; the threaded rows depend on core count.
    "BM_ControlPlaneStep",
    "BM_ShardedReconfigure/shards:8/threads:0/real_time",
    # Serving harness (PR 6): the closed-loop driver end to end
    # (scatter, ring dispatch, gather, latency bookkeeping). Inline
    # row only, as above. BM_ServingOpenLoop is deliberately NOT
    # tracked: its wall time is dominated by the fixed arrival
    # schedule, so items/s reflects the offered rate, not the code.
    "BM_ServingClosedLoop/shards:4/threads:0/real_time",
    # Observability layer (PR 9): the batched facade with metrics
    # publishing on. Tracked against the baseline like any hot path,
    # and additionally held to the metrics-off row by
    # OVERHEAD_INVARIANTS below.
    "BM_MetricsOverhead/metrics:0",
    "BM_MetricsOverhead/metrics:1",
]

# No-negative-scaling invariants, checked on the current run alone:
# each (inline, threaded, min_cpus) row pair must satisfy
# throughput(threaded) >= throughput(inline). min_cpus is the fewest
# host CPUs at which expecting the threaded row to win is fair (the
# caller thread mostly yields during a batch, so workers == cores is
# enough). The pairs pin the fix for the ROADMAP's negative-scaling
# bug: per-batch pool dispatch used to make threads:4 ~20% SLOWER
# than threads:0.
SCALING_INVARIANTS = [
    ("BM_ShardedBatchedAccess/shards:4/threads:0/real_time",
     "BM_ShardedBatchedAccess/shards:4/threads:4/real_time", 4),
    ("BM_ServingClosedLoop/shards:4/threads:0/real_time",
     "BM_ServingClosedLoop/shards:4/threads:4/real_time", 4),
    # Pipelined dispatch (PR 10): overlapping the caller's scatter of
    # block k+1 with the worker's drain of block k must not lose to
    # serial dispatch. Needs two CPUs — producer and worker time-slice
    # on one core, making the comparison noise.
    ("BM_ShardedPipelinedAccess/pipeline:0/real_time",
     "BM_ShardedPipelinedAccess/pipeline:1/real_time", 2),
]

# Bounded-overhead invariants, checked on the current run alone: each
# (off, on, max_overhead) pair must satisfy
# throughput(on) >= throughput(off) * (1 - max_overhead). Pins the
# observability layer's advertised <= 2% cost on the batched facade
# path; the margin above 2% absorbs run-to-run noise on shared CI
# hosts (single runs swing a few percent either way — the budget
# claim itself comes from repetition medians).
OVERHEAD_INVARIANTS = [
    ("BM_MetricsOverhead/metrics:0", "BM_MetricsOverhead/metrics:1",
     0.05),
]


def throughput(entry):
    """Items/sec of one benchmark entry (1/real_time fallback)."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"])
    real_time = float(entry["real_time"])
    # google-benchmark reports per-iteration time in time_unit.
    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}
    return scale[entry.get("time_unit", "ns")] / real_time


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for entry in data.get("benchmarks", []):
        if entry.get("run_type") == "aggregate":
            continue
        out[entry["name"]] = throughput(entry)
    return out


def check_scaling(curr, skip):
    """No-negative-scaling: threaded rows must beat inline rows.

    Returns the list of violated (inline, threaded, ratio) tuples.
    Pairs whose rows are absent from the current run are ignored here
    (the tracked-benchmark missing check already covers deletions of
    the inline rows)."""
    failures = []
    cpus = os.cpu_count() or 1
    for inline_name, threaded_name, min_cpus in SCALING_INVARIANTS:
        if inline_name not in curr or threaded_name not in curr:
            continue
        if skip:
            print(f"scaling check SKIPPED (--skip-scaling-check): "
                  f"{threaded_name}")
            continue
        if cpus < min_cpus:
            print(f"scaling check SKIPPED (host has {cpus} CPUs, "
                  f"needs >= {min_cpus}): {threaded_name}")
            continue
        ratio = curr[threaded_name] / curr[inline_name]
        flag = "" if ratio >= 1.0 else "  << NEGATIVE SCALING"
        print(f"scaling {threaded_name}: {ratio:.2f}x of inline{flag}")
        if ratio < 1.0:
            failures.append((inline_name, threaded_name, ratio))
    return failures


def check_overhead(curr):
    """Bounded overhead: instrumented rows must stay near the
    uninstrumented rows. Returns violated (off, on, ratio, budget)
    tuples; pairs with absent rows are ignored (the tracked-benchmark
    missing check covers deletions)."""
    failures = []
    for off_name, on_name, budget in OVERHEAD_INVARIANTS:
        if off_name not in curr or on_name not in curr:
            continue
        ratio = curr[on_name] / curr[off_name]
        flag = "" if ratio >= 1.0 - budget else "  << OVER BUDGET"
        print(f"overhead {on_name}: {ratio:.3f}x of {off_name} "
              f"(budget {budget:.0%}){flag}")
        if ratio < 1.0 - budget:
            failures.append((off_name, on_name, ratio, budget))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max allowed fractional drop (default 0.15)")
    parser.add_argument("--benchmarks", default=",".join(DEFAULT_TRACKED),
                        help="comma-separated tracked benchmark names")
    parser.add_argument("--skip-scaling-check", action="store_true",
                        help="skip the no-negative-scaling invariant")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)
    tracked = [b for b in args.benchmarks.split(",") if b]

    failures = []
    missing = []
    print(f"{'benchmark':<54} {'baseline':>14} {'current':>14} "
          f"{'ratio':>7}")
    for name in tracked:
        if name not in curr:
            # A tracked bench that did not run is a gate failure: a
            # rename/delete must not silently drop perf coverage.
            missing.append(name)
            print(f"{name:<54} {'—':>14} {'—':>14} {'—':>7}  "
                  f"<< MISSING from current run")
            continue
        if name not in base:
            print(f"{name:<54} {'—':>14} {curr[name]:>12.3e}/s "
                  f"{'—':>7}  (missing from baseline; warned only)")
            continue
        ratio = curr[name] / base[name]
        flag = ""
        if ratio < 1.0 - args.threshold:
            failures.append((name, ratio))
            flag = "  << REGRESSION"
        print(f"{name:<54} {base[name]:>12.3e}/s {curr[name]:>12.3e}/s "
              f"{ratio:>6.2f}x{flag}")

    print()
    scaling_failures = check_scaling(curr, args.skip_scaling_check)
    overhead_failures = check_overhead(curr)

    if failures or missing or scaling_failures or overhead_failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more "
              f"than {args.threshold:.0%}, {len(missing)} tracked "
              f"benchmark(s) missing from the current run, "
              f"{len(scaling_failures)} scaling invariant(s) "
              f"violated, {len(overhead_failures)} overhead "
              f"invariant(s) violated:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x of baseline")
        for name in missing:
            print(f"  {name}: missing from current run")
        for inline_name, threaded_name, ratio in scaling_failures:
            print(f"  {threaded_name}: {ratio:.2f}x of {inline_name} "
                  f"(threaded dispatch must not lose to inline)")
        for off_name, on_name, ratio, budget in overhead_failures:
            print(f"  {on_name}: {ratio:.3f}x of {off_name} "
                  f"(instrumentation budget {budget:.0%})")
        return 1
    print(f"\nOK: no tracked benchmark regressed more than "
          f"{args.threshold:.0%}; scaling and overhead invariants "
          f"hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
