/**
 * @file
 * Microbenchmarks (google-benchmark): throughput of the hot paths —
 * cache accesses under each policy, Talus routing overhead, monitor
 * updates, and the reconfiguration-time math (hull + configuration).
 *
 * These verify the library is fast enough for the trace volumes the
 * figure benches need, and quantify the paper's claim that Talus's
 * software overheads are "a few thousand cycles per reconfiguration".
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <utility>
#include <vector>

#include "alloc/allocator_factory.h"
#include "api/talus_cache.h"
#include "cache/fully_assoc_lru.h"
#include "control/control_plane.h"
#include "control/control_step.h"
#include "core/convex_hull.h"
#include "core/shadow_router.h"
#include "core/talus_config.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "obs/registry.h"
#include "monitor/mattson_curve.h"
#include "monitor/stack_distance.h"
#include "policy/policy_factory.h"
#include "shard/sharded_cache.h"
#include "sim/serving_harness.h"
#include "util/h3_hash.h"
#include "util/rng.h"
#include "workload/access_stream.h"
#include "workload/zipf_stream.h"

using namespace talus;

namespace {

void
BM_H3Hash(benchmark::State& state)
{
    H3Hash hash(8, 1);
    Addr addr = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(hash.hash(addr++));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_H3Hash);

void
BM_ShadowRouterRoute(benchmark::State& state)
{
    ShadowRouter router(8, 0x70C4);
    router.setRho(0.37);
    Addr addr = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(router.toAlpha(addr++));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowRouterRoute);

void
BM_FullyAssocLru(benchmark::State& state)
{
    FullyAssocLru lru(8192);
    Rng rng(17);
    for (auto _ : state)
        benchmark::DoNotOptimize(lru.access(rng.below(16384)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullyAssocLru);

void
BM_StackDistanceCounter(benchmark::State& state)
{
    StackDistanceCounter counter;
    Rng rng(19);
    for (auto _ : state)
        benchmark::DoNotOptimize(counter.access(rng.below(1 << 14)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StackDistanceCounter);

void
BM_CacheAccess(benchmark::State& state, const std::string& policy)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 1024;
    cfg.numWays = 16;
    SetAssocCache cache(cfg, makePolicy(policy, 7));
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.below(32768)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CacheAccess, lru, std::string("LRU"));
BENCHMARK_CAPTURE(BM_CacheAccess, srrip, std::string("SRRIP"));
BENCHMARK_CAPTURE(BM_CacheAccess, drrip, std::string("DRRIP"));
BENCHMARK_CAPTURE(BM_CacheAccess, dip, std::string("DIP"));
BENCHMARK_CAPTURE(BM_CacheAccess, pdp, std::string("PDP"));

void
BM_TalusRoutedAccess(benchmark::State& state)
{
    auto phys =
        makePartitionedCache(SchemeKind::Vantage, 16384, 16, "LRU", 2, 9);
    TalusController::Config tc;
    tc.numLogicalParts = 1;
    TalusController ctl(std::move(phys), tc);
    const MissCurve cliff({{0, 1.0}, {8192, 0.9}, {12288, 0.1},
                           {16384, 0.1}});
    ctl.configure({cliff}, {10000});
    Rng rng(5);
    for (auto _ : state)
        benchmark::DoNotOptimize(ctl.access(rng.below(32768), 0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TalusRoutedAccess);

void
BM_UmonAccess(benchmark::State& state)
{
    CombinedUMon::Config cfg;
    cfg.llcLines = 1 << 17;
    CombinedUMon mon(cfg);
    Rng rng(7);
    for (auto _ : state)
        mon.access(rng.below(1 << 20));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UmonAccess);

/** Block-hashed monitor feed: both UMons through accessBlock. */
void
BM_CombinedUMonAccess(benchmark::State& state)
{
    constexpr size_t kBlock = 4096;
    CombinedUMon::Config cfg;
    cfg.llcLines = 1 << 17;
    CombinedUMon mon(cfg);
    Rng rng(7);
    std::vector<Addr> addrs(kBlock);
    for (Addr& a : addrs)
        a = rng.below(1 << 20);
    for (auto _ : state)
        mon.accessBlock(Span<const Addr>(addrs.data(), addrs.size()));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBlock));
}
BENCHMARK(BM_CombinedUMonAccess);

TalusCache::Config
facadeBenchConfig()
{
    TalusCache::Config cc;
    cc.llcLines = 16384;
    cc.ways = 16;
    cc.numParts = 1;
    cc.allocatorName = "";
    cc.seed = 21;
    return cc;
}

std::vector<Addr>
facadeBenchAddrs()
{
    Rng rng(23);
    std::vector<Addr> addrs(1 << 16);
    for (Addr& a : addrs)
        a = rng.below(32768);
    return addrs;
}

/** Serial facade access: monitors + routed cache, one call per addr. */
void
BM_TalusFacadeAccess(benchmark::State& state)
{
    TalusCache cache(facadeBenchConfig());
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i], 0));
        i = (i + 1) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TalusFacadeAccess);

/** Same facade and address stream, driven through accessBatch. */
void
BM_TalusBatchedAccess(benchmark::State& state)
{
    constexpr size_t kBlock = 4096;
    TalusCache cache(facadeBenchConfig());
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.accessBatch(
            Span<const Addr>(addrs.data() + off, kBlock), 0));
        off = (off + kBlock) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBlock));
}
BENCHMARK(BM_TalusBatchedAccess);

/**
 * The metricsEnabled toll on the batched facade path: the same load
 * as BM_TalusBatchedAccess with metrics off (arg 0) and on (arg 1,
 * publishing into a fresh local registry). compare_bench.py checks
 * metrics:1 stays within 2% of metrics:0 — the observability layer's
 * advertised overhead budget.
 */
void
BM_MetricsOverhead(benchmark::State& state)
{
    constexpr size_t kBlock = 4096;
    MetricRegistry registry;
    TalusCache::Config cc = facadeBenchConfig();
    if (state.range(0) != 0) {
        cc.metricsEnabled = true;
        cc.metrics = &registry;
    }
    TalusCache cache(cc);
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.accessBatch(
            Span<const Addr>(addrs.data() + off, kBlock), 0));
        off = (off + kBlock) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBlock));
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1)->ArgName("metrics");

/** The facade with monitoring off: isolates router + cache cost. */
void
BM_TalusMonitorOffAccess(benchmark::State& state)
{
    TalusCache::Config cc = facadeBenchConfig();
    cc.monitoring = false;
    TalusCache cache(cc);
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i], 0));
        i = (i + 1) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TalusMonitorOffAccess);

/**
 * Scatter-dispatch-gather through the sharded serving engine, with a
 * shard-count scaling sweep. Total capacity is held constant (the
 * facade bench cache split across shards) so the sweep isolates the
 * shard layer's routing + dispatch cost. The threads:0 rows are the
 * deterministic, host-independent ones the regression gate tracks;
 * the threads:2/threads:4 rows of the same sweep measure worker-pool
 * dispatch and depend on core count (hence UseRealTime: with work on
 * pool threads, the main thread's cpu_time would be meaningless).
 */
void
BM_ShardedBatchedAccess(benchmark::State& state)
{
    constexpr size_t kBlock = 4096;
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    const uint32_t threads = static_cast<uint32_t>(state.range(1));
    ShardedTalusCache::Config cfg;
    cfg.shard = facadeBenchConfig();
    cfg.shard.llcLines = 16384 / shards;
    cfg.numShards = shards;
    cfg.threads = threads;
    ShardedTalusCache cache(cfg);
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.accessBatch(
            Span<const Addr>(addrs.data() + off, kBlock), 0));
        off = (off + kBlock) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBlock));
}
BENCHMARK(BM_ShardedBatchedAccess)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->UseRealTime();

/**
 * Pipelined vs serial dispatch on batches spanning several
 * kPipelineBlock blocks (the only shape where the double-buffered
 * scatter can engage): one worker thread, so the overlap measured is
 * precisely "caller scatters block k+1 while the worker drains block
 * k". pipeline:0 is the serial scatter-then-wait reference of the
 * same configuration. On single-core hosts the two rows converge (the
 * caller and worker time-slice); compare_bench.py only enforces
 * pipeline:1 >= pipeline:0 on hosts with >= 2 CPUs.
 */
void
BM_ShardedPipelinedAccess(benchmark::State& state)
{
    const size_t kBatch = 4 * ShardedTalusCache::kPipelineBlock;
    ShardedTalusCache::Config cfg;
    cfg.shard = facadeBenchConfig();
    cfg.shard.llcLines = 16384 / 4;
    cfg.numShards = 4;
    cfg.threads = 1;
    cfg.pipelineDispatch = state.range(0) != 0;
    ShardedTalusCache cache(cfg);
    const std::vector<Addr> addrs = facadeBenchAddrs();
    size_t off = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.accessBatch(
            Span<const Addr>(addrs.data() + off, kBatch), 0));
        off = (off + kBatch) & (addrs.size() - 1);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kBatch));
}
BENCHMARK(BM_ShardedPipelinedAccess)
    ->ArgName("pipeline")
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime();

/**
 * Replays a prebuilt power-of-two address buffer, cycling forever —
 * generation is an indexed copy, so the serving benches measure the
 * serving path, not workload math.
 */
class ReplayStream final : public AccessStream
{
  public:
    explicit ReplayStream(std::vector<Addr> addrs)
        : addrs_(std::move(addrs)), mask_(addrs_.size() - 1)
    {
    }

    Addr next() override
    {
        const Addr a = addrs_[i_];
        i_ = (i_ + 1) & mask_;
        return a;
    }

    void nextBlock(Addr* out, uint64_t n) override
    {
        for (uint64_t k = 0; k < n; ++k) {
            out[k] = addrs_[i_];
            i_ = (i_ + 1) & mask_;
        }
    }

    void reset() override { i_ = 0; }

    std::unique_ptr<AccessStream> clone() const override
    {
        return std::make_unique<ReplayStream>(addrs_);
    }

    const char* kind() const override { return "replay"; }

  private:
    std::vector<Addr> addrs_;
    size_t mask_;
    size_t i_ = 0;
};

/**
 * The serving harness's closed-loop driver over the sharded engine:
 * back-to-back batches with per-batch latency sampling — the
 * end-to-end serving hot path (scatter, ring dispatch, gather,
 * percentile bookkeeping). The threads:0 row is the deterministic
 * tracked one; the threads:4 row of the same sweep is what the
 * no-negative-scaling invariant in compare_bench.py checks against
 * BM_ShardedBatchedAccess. UseRealTime as in the other sharded
 * sweeps: work runs on pinned worker threads.
 */
void
BM_ServingClosedLoop(benchmark::State& state)
{
    constexpr uint64_t kAccessesPerRun = 1 << 15;
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    const uint32_t threads = static_cast<uint32_t>(state.range(1));
    ShardedTalusCache::Config cfg;
    cfg.shard = facadeBenchConfig();
    cfg.shard.llcLines = 16384 / shards;
    cfg.numShards = shards;
    cfg.threads = threads;
    ShardedTalusCache cache(cfg);
    ReplayStream stream(facadeBenchAddrs());
    ServingOptions serve;
    serve.accesses = kAccessesPerRun;
    serve.batchSize = 4096;
    double p99_us = 0.0;
    for (auto _ : state) {
        const ServingResult r = runClosedLoop(cache, stream, serve);
        benchmark::DoNotOptimize(r.hits);
        p99_us = r.latency.p99 * 1e6;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kAccessesPerRun));
    state.counters["p99_us"] = p99_us;
}
BENCHMARK(BM_ServingClosedLoop)
    ->ArgNames({"shards", "threads"})
    ->Args({4, 0})
    ->Args({4, 4})
    ->UseRealTime();

/**
 * The open-loop driver at a fixed offered rate well below any host's
 * capacity: wall time is schedule-dominated (items/s ~= offered
 * rate by construction), so the bench is NOT throughput-tracked —
 * it exists to exercise the arrival scheduler and report the sojourn
 * p99 as a counter.
 */
void
BM_ServingOpenLoop(benchmark::State& state)
{
    constexpr uint64_t kAccessesPerRun = 1 << 15;
    ShardedTalusCache::Config cfg;
    cfg.shard = facadeBenchConfig();
    cfg.shard.llcLines = 16384 / 4;
    cfg.numShards = 4;
    cfg.threads = static_cast<uint32_t>(state.range(0));
    ShardedTalusCache cache(cfg);
    ReplayStream stream(facadeBenchAddrs());
    ServingOptions serve;
    serve.accesses = kAccessesPerRun;
    serve.batchSize = 4096;
    serve.offeredRate = 2e6; // Accesses/s, far under capacity.
    double p99_us = 0.0;
    uint64_t late = 0;
    for (auto _ : state) {
        const ServingResult r = runOpenLoop(cache, stream, serve);
        benchmark::DoNotOptimize(r.hits);
        p99_us = r.latency.p99 * 1e6;
        late += r.lateBatches;
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(kAccessesPerRun));
    state.counters["p99_us"] = p99_us;
    state.counters["late_batches"] =
        static_cast<double>(late) /
        static_cast<double>(state.iterations());
}
BENCHMARK(BM_ServingOpenLoop)
    ->ArgName("threads")
    ->Arg(0)
    ->Arg(2)
    ->UseRealTime();

void
BM_MattsonAccess(benchmark::State& state)
{
    MattsonCurve mattson(1 << 16);
    Rng rng(9);
    for (auto _ : state)
        mattson.access(rng.below(1 << 15));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MattsonAccess);

void
BM_ZipfNext(benchmark::State& state)
{
    ZipfStream zipf(1 << 16, 0.8, 0, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

/**
 * One full control-plane compute stage: curve weighting, convex
 * hulls, and the allocator, double-buffered through a ControlPlane —
 * the entire off-hot-path cost of one reconfiguration decision for a
 * two-partition cache with 64-point monitored curves.
 */
void
BM_ControlPlaneStep(benchmark::State& state)
{
    ControlInput in;
    in.numParts = 2;
    in.llcLines = 1 << 17;
    in.capacityLines = 1 << 17;
    in.granule = (1 << 17) / 64;
    Rng rng(29);
    for (uint32_t part = 0; part < in.numParts; ++part) {
        std::vector<CurvePoint> pts;
        double value = 1.0;
        for (int i = 0; i <= 64; ++i) {
            pts.push_back({static_cast<double>(i * 2048), value});
            value = std::max(0.0, value - rng.unit() * 0.05);
        }
        in.curves.push_back(MissCurve(std::move(pts)));
        in.intervalAccesses.push_back(50'000 * (part + 1));
    }
    ControlPlane plane(makeAllocator("HillClimb"));
    for (auto _ : state) {
        plane.compute(in);
        benchmark::DoNotOptimize(plane.commit().alloc.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ControlPlaneStep);

/**
 * A full reconfiguration sweep across all shards of a sharded engine
 * (snapshot + pure control step + apply per shard), dispatched via
 * reconfigureAll(). The threads:0 row is the deterministic tracked
 * one; threads:2/4 of the same sweep show that per-shard control
 * steps no longer serialize — on multi-core hosts they overlap on
 * the worker pool (UseRealTime: the work runs on pool threads).
 */
void
BM_ShardedReconfigure(benchmark::State& state)
{
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    const uint32_t threads = static_cast<uint32_t>(state.range(1));
    ShardedTalusCache::Config cfg;
    cfg.shard = facadeBenchConfig();
    cfg.shard.llcLines = 16384 / shards;
    cfg.shard.allocatorName = "HillClimb";
    cfg.numShards = shards;
    cfg.threads = threads;
    ShardedTalusCache cache(cfg);
    // Warm the monitors so every control step sees real curves.
    const std::vector<Addr> addrs = facadeBenchAddrs();
    cache.accessBatch(Span<const Addr>(addrs), 0);
    for (auto _ : state) {
        cache.reconfigureAll();
        benchmark::DoNotOptimize(cache.reconfigurations());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(shards));
}
BENCHMARK(BM_ShardedReconfigure)
    ->ArgNames({"shards", "threads"})
    ->Args({8, 0})
    ->Args({8, 2})
    ->Args({8, 4})
    ->UseRealTime();

/** The per-reconfiguration software work: hull + configuration. */
void
BM_ReconfigurationMath(benchmark::State& state)
{
    // A 64-point monitored curve, as UMONs produce.
    std::vector<CurvePoint> pts;
    Rng rng(13);
    double value = 1.0;
    for (int i = 0; i <= 64; ++i) {
        pts.push_back({static_cast<double>(i * 2048), value});
        value = std::max(0.0, value - rng.unit() * 0.05);
    }
    const MissCurve curve(pts);
    for (auto _ : state) {
        const ConvexHull hull(curve);
        benchmark::DoNotOptimize(
            computeTalusConfig(hull, 77777.0, 0.05));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReconfigurationMath);

} // namespace

BENCHMARK_MAIN();
