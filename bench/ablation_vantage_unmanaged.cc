/**
 * @file
 * Ablation: Vantage's unmanaged region (Sec. VI-B, "Talus on
 * Vantage").
 *
 * Paper: Vantage gives no capacity guarantees for ~10% of the cache,
 * so Talus-on-Vantage assumes only 0.9s is usable and its curve sits
 * slightly above the hull (visible in Fig. 8a). This ablation sweeps
 * the assumed usable fraction to show that cost, and what an
 * (unsafe) assumption of full capacity would do.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "core/talus_controller.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: Vantage usable-capacity fraction",
                  "Talus assumes 0.9s under Vantage; the unmanaged "
                  "region costs a little MPKI",
                  env);

    const AppSpec& app = findApp("libquantum");
    const uint64_t max_lines = env.scale.lines(40.0);
    auto curve_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve lru = measureLruCurve(
        *curve_stream, env.measureAccesses * 3, max_lines,
        max_lines / 80);
    const ConvexHull hull(lru);

    const uint64_t size = env.scale.lines(16.0);
    Table table("Talus+V/LRU at 16MB by assumed usable fraction",
                {"usable_frac", "measured MPKI", "hull promise MPKI"});

    for (double frac : {1.0, 0.95, 0.9, 0.8, 0.7}) {
        auto phys = makePartitionedCache(SchemeKind::Vantage, size, 32,
                                         "LRU", 2, env.seed);
        TalusController::Config tc;
        tc.numLogicalParts = 1;
        tc.usableFraction = frac;
        tc.seed = env.seed;
        TalusController ctl(std::move(phys), tc);
        ctl.configure({lru}, {size});

        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        for (uint64_t i = 0; i < 2 * size + 65536; ++i)
            ctl.access(stream->next(), 0);
        ctl.cache().stats().reset();
        for (uint64_t i = 0; i < env.measureAccesses; ++i)
            ctl.access(stream->next(), 0);
        const double ratio =
            static_cast<double>(ctl.logicalMisses(0)) /
            static_cast<double>(ctl.logicalAccesses(0));
        table.addRow(
            {frac, app.apki * ratio,
             app.apki * hull.at(static_cast<double>(size) * frac)});
    }
    table.print(env.csv);
    std::printf("The 0.9 entry is the paper's configuration; smaller "
                "fractions waste capacity, 1.0 overcommits the "
                "unmanaged region.\n");
    return 0;
}
