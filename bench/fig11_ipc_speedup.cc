/**
 * @file
 * Figure 11: IPC improvement over LRU at 1MB and 8MB LLCs, for all
 * suite apps plus the geometric mean.
 *
 * Paper: at 1MB Talus+V/LRU is comparable to PDP/SRRIP and trails
 * DRRIP slightly; at 8MB it leads on average. Crucially, Talus never
 * causes large degradations, while every other policy hurts some
 * benchmark at 8MB.
 *
 * IPC comes from the analytic core model applied to measured miss
 * ratios (see DESIGN.md §1 for the substitution rationale).
 */

#include <algorithm>

#include "bench/bench_util.h"
#include "sim/core_model.h"
#include "sim/single_app_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

void
runSize(const BenchEnv& env, double size_mb)
{
    const uint64_t size = env.scale.lines(size_mb);
    const std::vector<std::string> policies{"PDP", "DRRIP", "SRRIP"};

    Table table("Fig. 11 IPC over LRU (%) at " +
                    fmtDouble(size_mb, size_mb < 1 ? 3 : 0) + "MB",
                {"app", "Talus+V/LRU", "PDP", "DRRIP", "SRRIP"});

    std::vector<std::vector<double>> ratios(4);
    double worst_talus = 1e9;
    for (const AppSpec& app : specSuite()) {
        if (app.apki < 0.5)
            continue; // povray/tonto-class apps: IPC insensitive.
        const CoreModel model(app);

        auto lru_stream =
            app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        SweepOptions lopts;
        lopts.measureAccesses = env.measureAccesses / 2;
        lopts.seed = env.seed;
        const MissCurve lru =
            sweepPolicyCurve(*lru_stream, {size}, lopts);
        const double lru_ipc =
            model.ipcAt(lru.at(static_cast<double>(size)));

        std::vector<double> row_ratios;

        // Talus from an exact LRU curve over 4x the size — the
        // coverage the paper's sampled second monitor provides
        // (Sec. VI-C), so cliffs beyond the LLC are visible.
        auto curve_stream =
            app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        const MissCurve lru_curve = measureLruCurve(
            *curve_stream, env.measureAccesses, size * 4,
            std::max<uint64_t>(1, size / 16));
        auto talus_stream =
            app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions topts;
        topts.scheme = SchemeKind::Vantage;
        topts.measureAccesses = env.measureAccesses / 2;
        topts.seed = env.seed;
        const MissCurve talus =
            sweepTalusCurve(*talus_stream, lru_curve, {size}, topts);
        row_ratios.push_back(
            model.ipcAt(talus.at(static_cast<double>(size))) / lru_ipc);

        for (const auto& policy : policies) {
            auto stream =
                app.buildStream(env.scale.linesPerMb(), 0, env.seed);
            SweepOptions opts;
            opts.policyName = policy;
            opts.measureAccesses = env.measureAccesses / 2;
            opts.seed = env.seed;
            const MissCurve curve =
                sweepPolicyCurve(*stream, {size}, opts);
            row_ratios.push_back(
                model.ipcAt(curve.at(static_cast<double>(size))) /
                lru_ipc);
        }

        worst_talus = std::min(worst_talus, row_ratios[0]);
        const bool interesting =
            std::any_of(row_ratios.begin(), row_ratios.end(),
                        [](double r) { return std::abs(r - 1) > 0.01; });
        if (interesting) {
            table.addRow({app.name,
                          fmtDouble(100 * (row_ratios[0] - 1), 2),
                          fmtDouble(100 * (row_ratios[1] - 1), 2),
                          fmtDouble(100 * (row_ratios[2] - 1), 2),
                          fmtDouble(100 * (row_ratios[3] - 1), 2)});
        }
        for (size_t i = 0; i < 4; ++i)
            ratios[i].push_back(row_ratios[i]);
    }
    table.addRow({"gmean", fmtDouble(100 * (geomean(ratios[0]) - 1), 2),
                  fmtDouble(100 * (geomean(ratios[1]) - 1), 2),
                  fmtDouble(100 * (geomean(ratios[2]) - 1), 2),
                  fmtDouble(100 * (geomean(ratios[3]) - 1), 2)});
    table.print(env.csv);

    bench::verdict(geomean(ratios[0]) >= 1.0,
                   "Talus+V/LRU improves gmean IPC over LRU");
    bench::verdict(worst_talus > 0.93,
                   "Talus never causes a large degradation");
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 11: IPC over LRU at 1MB and 8MB",
                  "Talus competitive with high-performance policies, "
                  "no big losses",
                  env);
    runSize(env, 1.0);
    runSize(env, 8.0);
    return 0;
}
