/**
 * @file
 * Figure 1: libquantum MPKI vs LLC size, 0-40MB.
 *
 * Paper: LRU is flat (~33 MPKI) until the 32MB working set suddenly
 * fits; Talus removes the cliff, tracing the convex hull (a straight
 * diagonal to 32MB).
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 1: libquantum, LRU vs Talus (0-40MB)",
                  "LRU cliff at 32MB; Talus yields a convex diagonal",
                  env);

    const AppSpec& app = findApp("libquantum");
    const uint64_t max_lines = env.scale.lines(40.0);

    // Exact LRU curve in one Mattson pass.
    auto lru_stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve lru = measureLruCurve(
        *lru_stream, env.measureAccesses * 4, max_lines, max_lines / 80);
    const ConvexHull hull(lru);

    // Trace-driven Talus on idealized partitioning at 11 sizes.
    const auto sizes = sizeGridLines(env.scale, 40.0, 4.0);
    auto talus_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = env.measureAccesses;
    opts.seed = env.seed;
    const MissCurve talus =
        sweepTalusCurve(*talus_stream, lru, sizes, opts);

    Table table("Fig. 1 series: MPKI vs LLC size (MB)",
                {"size_mb", "LRU", "Talus (measured)", "Talus (promise)"});
    table.addRow({0.0, app.apki * lru.at(0), app.apki * lru.at(0),
                  app.apki * hull.at(0)});
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({env.scale.mb(s), app.apki * lru.at(fs),
                      app.apki * talus.at(fs), app.apki * hull.at(fs)});
    }
    table.print(env.csv);

    // Claim checks.
    const double cliff_edge = static_cast<double>(env.scale.lines(30.0));
    const double past_cliff = static_cast<double>(env.scale.lines(33.0));
    const double mid = static_cast<double>(env.scale.lines(16.0));
    bench::verdict(lru.at(cliff_edge) > 0.85 && lru.at(past_cliff) < 0.1,
                   "LRU has a hard cliff at 32MB");
    bench::verdict(talus.at(mid) < 0.65 * lru.at(mid),
                   "Talus at 16MB achieves roughly half of LRU's MPKI");
    bench::verdict(talus.isConvex(0.08),
                   "measured Talus curve is convex (within noise)");
    return 0;
}
