/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 */

#ifndef TALUS_BENCH_BENCH_UTIL_H
#define TALUS_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "sim/experiment_util.h"

namespace talus::bench {

/** Prints a standard header naming the reproduced artifact. */
inline void
header(const char* artifact, const char* claim, const BenchEnv& env)
{
    std::printf("### %s\n", artifact);
    std::printf("paper claim: %s\n", claim);
    std::printf("scale: %llu lines per paper-MB%s\n\n",
                static_cast<unsigned long long>(env.scale.linesPerMb()),
                env.scale.linesPerMb() == Scale::kFullLinesPerMb
                    ? " (paper-true)"
                    : "");
}

/** Prints a PASS/NOTE verdict line for a reproduced claim. */
inline void
verdict(bool ok, const std::string& text)
{
    std::printf("[%s] %s\n", ok ? "REPRODUCED" : "DEVIATION",
                text.c_str());
}

} // namespace talus::bench

#endif // TALUS_BENCH_BENCH_UTIL_H
