/**
 * @file
 * Figure 13: fairness case studies — 8 copies of one benchmark on the
 * 8-core system, LLC swept 8-72MB.
 *
 * Paper: with cliffy apps (libquantum, omnetpp, xalancbmk), fair
 * partitioning on LRU is useless (every copy sits on the plateau),
 * Lookahead helps but is grossly unfair (all-or-nothing allocations;
 * CoV of per-core IPC up to 85%), TA-DRRIP also trades fairness for
 * throughput. Talus with naive equal allocations gets steady speedups
 * at near-zero CoV.
 */

#include "bench/bench_util.h"
#include "sim/metrics.h"
#include "sim/multi_prog_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

struct CaseResult
{
    double exec_time; //!< Relative to the smallest-LLC LRU baseline.
    double cov;       //!< Coefficient of variation of per-core IPC.
};

/**
 * Fig. 13 needs each copy to make many passes over working sets up to
 * 32 paper-MB within its fixed work, so it runs at a reduced spatial
 * scale (or the paper's full scale needs TALUS_INSTR in the billions,
 * like the paper's 1B-instruction runs).
 */
Scale
figScale(const BenchEnv& env)
{
    return Scale(std::min<uint64_t>(env.scale.linesPerMb(), 256));
}

CaseResult
run(const BenchEnv& env, const AppSpec& app, uint64_t llc_lines,
    const std::string& which, double base_cycles)
{
    std::vector<const AppSpec*> apps(8, &app);
    MultiProgConfig cfg;
    cfg.llcLines = llc_lines;
    cfg.instrPerApp = env.instrPerApp;
    cfg.reconfigCycles = static_cast<double>(cfg.instrPerApp) / 8.0;
    cfg.seed = env.seed;
    cfg.monitorSamplePeriod = env.monitorSample;
    if (which == "LRU") {
        cfg.scheme = SchemeKind::Unpartitioned;
        cfg.allocatorName = "";
    } else if (which == "TA-DRRIP") {
        cfg.scheme = SchemeKind::Unpartitioned;
        cfg.policyName = "TA-DRRIP";
        cfg.allocatorName = "";
    } else if (which == "Fair LRU") {
        cfg.scheme = SchemeKind::Vantage;
        cfg.allocatorName = "Fair";
    } else if (which == "Lookahead") {
        cfg.scheme = SchemeKind::Vantage;
        cfg.allocatorName = "Lookahead";
    } else { // "Talus Fair"
        cfg.scheme = SchemeKind::Vantage;
        cfg.useTalus = true;
        cfg.allocateOnHulls = true;
        cfg.allocatorName = "Fair";
    }
    const auto result = runMultiProg(apps, cfg, figScale(env));

    // Mean completion time of the fixed work across copies; with
    // all-or-nothing allocations the favoured copies finish early,
    // which this metric (like the paper's plots) credits while the
    // CoV exposes the unfairness.
    double sum_cycles = 0;
    for (const auto& a : result.apps)
        sum_cycles += a.cycles;
    const double mean_cycles =
        sum_cycles / static_cast<double>(result.apps.size());
    return {base_cycles > 0 ? mean_cycles / base_cycles : 1.0,
            ipcCoV(result.ipcVector())};
}

void
runCase(const BenchEnv& env, const std::string& app_name)
{
    const AppSpec& app = findApp(app_name);
    const std::vector<double> sizes_mb{8, 16, 32, 48, 64, 72};
    const std::vector<std::string> schemes{"Talus Fair", "Fair LRU",
                                           "Lookahead", "TA-DRRIP"};

    // Baseline: unpartitioned LRU at the smallest size.
    std::vector<const AppSpec*> apps(8, &app);
    MultiProgConfig base_cfg;
    base_cfg.llcLines = figScale(env).lines(sizes_mb.front());
    base_cfg.instrPerApp = env.instrPerApp;
    base_cfg.scheme = SchemeKind::Unpartitioned;
    base_cfg.allocatorName = "";
    base_cfg.seed = env.seed;
    const auto base = runMultiProg(apps, base_cfg, figScale(env));
    double base_cycles = 0;
    for (const auto& a : base.apps)
        base_cycles += a.cycles;
    base_cycles /= static_cast<double>(base.apps.size());

    Table time_table("Fig. 13 " + app_name +
                         ": execution time vs LRU@8MB (lower=better)",
                     {"size_mb", "Talus Fair", "Fair LRU", "Lookahead",
                      "TA-DRRIP"});
    Table cov_table("Fig. 13 " + app_name +
                        ": CoV of per-core IPC (lower=fairer)",
                    {"size_mb", "Talus Fair", "Fair LRU", "Lookahead",
                     "TA-DRRIP"});

    double talus_worst_excess_cov = 0, lookahead_worst_cov = 0;
    double talus_final_time = 1, fair_final_time = 1;
    for (double mb : sizes_mb) {
        const uint64_t lines = figScale(env).lines(mb);
        std::vector<double> times, covs;
        for (const auto& scheme : schemes) {
            const CaseResult r =
                run(env, app, lines, scheme, base_cycles);
            times.push_back(r.exec_time);
            covs.push_back(r.cov);
        }
        // Around the cliff even *fair LRU* turns unfair (the paper's
        // "vicious cycle", Sec. VII-D), so judge Talus against the
        // larger of 10% and fair LRU's own CoV at that size.
        talus_worst_excess_cov =
            std::max(talus_worst_excess_cov,
                     covs[0] - std::max(0.1, covs[1]));
        lookahead_worst_cov = std::max(lookahead_worst_cov, covs[2]);
        if (mb == sizes_mb.back()) {
            talus_final_time = times[0];
            fair_final_time = times[1];
        }
        time_table.addRow({mb, times[0], times[1], times[2], times[3]});
        cov_table.addRow({mb, covs[0], covs[1], covs[2], covs[3]});
    }
    time_table.print(env.csv);
    cov_table.print(env.csv);

    bench::verdict(talus_worst_excess_cov <= 0.0,
                   app_name + ": Talus Fair stays fair (CoV < 10%, or "
                              "below fair LRU's own vicious-cycle CoV)");
    bench::verdict(talus_final_time <= fair_final_time + 0.02,
                   app_name + ": Talus Fair at 72MB at least matches "
                              "fair LRU");
    std::printf("note: Lookahead worst CoV here: %.0f%%\n\n",
                100 * lookahead_worst_cov);
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 13: fairness case studies (8 copies)",
                  "Talus + equal allocations: steady gains, near-zero "
                  "CoV; Lookahead/TA-DRRIP unfair",
                  env);
    runCase(env, "libquantum");
    runCase(env, "omnetpp");
    runCase(env, "xalancbmk");
    return 0;
}
