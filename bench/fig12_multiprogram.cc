/**
 * @file
 * Figure 12: weighted and harmonic speedups over unpartitioned LRU
 * for random 8-app mixes of the memory-intensive suite.
 *
 * Paper (gmean weighted speedups): hill climbing on Talus+V/LRU 12.5%
 * > Lookahead on LRU 10.2% > TA-DRRIP 6.3% > hill climbing on LRU
 * 3.8%. The qualitative claims this bench checks:
 *   - naive hill climbing on Talus matches/beats expensive Lookahead;
 *   - hill climbing on raw (cliffy) LRU curves is far behind;
 *   - Talus also wins on the fairness-emphasizing harmonic speedup.
 *
 * Every scheme here is one TalusCache facade configuration (inside
 * runMultiProg): Talus+V/LRU flips Config::talus on, the baselines
 * flip it off and vary the allocator/policy.
 */

#include "bench/bench_util.h"
#include "sim/metrics.h"
#include "sim/multi_prog_sim.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

struct SchemeResult
{
    std::string name;
    std::vector<double> weighted;
    std::vector<double> harmonic;
};

MultiProgConfig
schemeConfig(const std::string& which, const BenchEnv& env)
{
    MultiProgConfig cfg;
    cfg.llcLines = env.scale.lines(8.0); // 8 cores x 1MB (Table I).
    cfg.instrPerApp = env.instrPerApp;
    cfg.reconfigCycles =
        static_cast<double>(env.instrPerApp) / 4.0;
    cfg.seed = env.seed;
    cfg.monitorSamplePeriod = env.monitorSample;
    if (which == "LRU") {
        cfg.scheme = SchemeKind::Unpartitioned;
        cfg.allocatorName = "";
    } else if (which == "TA-DRRIP") {
        cfg.scheme = SchemeKind::Unpartitioned;
        cfg.policyName = "TA-DRRIP";
        cfg.allocatorName = "";
    } else if (which == "Hill LRU") {
        cfg.scheme = SchemeKind::Vantage;
        cfg.allocatorName = "HillClimb";
    } else if (which == "Lookahead") {
        cfg.scheme = SchemeKind::Vantage;
        cfg.allocatorName = "Lookahead";
    } else { // Talus+V/LRU (Hill)
        cfg.scheme = SchemeKind::Vantage;
        cfg.useTalus = true;
        cfg.allocateOnHulls = true;
        cfg.allocatorName = "HillClimb";
    }
    return cfg;
}

void
quantileRow(Table& table, const std::string& name,
            const std::vector<double>& xs)
{
    table.addRow({name, fmtDouble(quantile(xs, 0.0), 3),
                  fmtDouble(quantile(xs, 0.25), 3),
                  fmtDouble(quantile(xs, 0.5), 3),
                  fmtDouble(quantile(xs, 0.75), 3),
                  fmtDouble(quantile(xs, 1.0), 3),
                  fmtDouble(geomean(xs), 3)});
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header(
        "Figure 12: 8-app mixes, speedup over unpartitioned LRU",
        "Talus+Hill >= Lookahead > TA-DRRIP > Hill-on-LRU (gmean "
        "weighted)",
        env);
    std::printf("mixes: %u, fixed work: %llu instr/app\n\n", env.mixes,
                static_cast<unsigned long long>(env.instrPerApp));

    const auto mixes = sampleMixes(env.mixes, 8, env.seed);
    const std::vector<std::string> schemes{
        "Talus+V/LRU (Hill)", "Lookahead", "TA-DRRIP", "Hill LRU"};
    std::vector<SchemeResult> results;
    for (const auto& s : schemes)
        results.push_back({s, {}, {}});

    const Scale& scale = env.scale;
    for (const auto& mix_names : mixes) {
        std::vector<const AppSpec*> apps;
        for (const auto& name : mix_names)
            apps.push_back(&findApp(name));

        const auto base =
            runMultiProg(apps, schemeConfig("LRU", env), scale);
        const auto base_ipc = base.ipcVector();

        for (size_t i = 0; i < schemes.size(); ++i) {
            const auto res =
                runMultiProg(apps, schemeConfig(schemes[i], env), scale);
            results[i].weighted.push_back(
                weightedSpeedup(res.ipcVector(), base_ipc));
            results[i].harmonic.push_back(
                harmonicSpeedup(res.ipcVector(), base_ipc));
        }
    }

    Table wtable("Weighted speedup over LRU (quantiles over mixes)",
                 {"scheme", "min", "p25", "median", "p75", "max",
                  "gmean"});
    for (const auto& r : results)
        quantileRow(wtable, r.name, r.weighted);
    wtable.print(env.csv);

    Table htable("Harmonic speedup over LRU (quantiles over mixes)",
                 {"scheme", "min", "p25", "median", "p75", "max",
                  "gmean"});
    for (const auto& r : results)
        quantileRow(htable, r.name, r.harmonic);
    htable.print(env.csv);

    const double talus_w = geomean(results[0].weighted);
    const double look_w = geomean(results[1].weighted);
    const double tad_w = geomean(results[2].weighted);
    const double hill_w = geomean(results[3].weighted);
    bench::verdict(talus_w >= look_w - 0.01,
                   "Talus+Hill matches or beats Lookahead (weighted)");
    bench::verdict(talus_w > hill_w,
                   "Talus+Hill beats hill climbing on raw LRU curves");
    bench::verdict(look_w > hill_w,
                   "Lookahead beats hill climbing on raw LRU curves");
    bench::verdict(geomean(results[0].harmonic) >=
                       geomean(results[2].harmonic),
                   "Talus+Hill >= TA-DRRIP on harmonic speedup");
    (void)tad_w;
    return 0;
}
