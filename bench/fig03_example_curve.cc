/**
 * @file
 * Figure 3: the example miss curve with a cliff at 5MB.
 *
 * Paper: an app accessing 2MB at random plus 3MB sequentially has a
 * plateau at 12 MPKI from 2MB to 5MB under LRU; Talus's curve is the
 * convex hull bridging the plateau.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/app_spec.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 3: example app miss curve (0-10MB)",
                  "LRU plateau 2-5MB at 12 MPKI, cliff to 3 MPKI; "
                  "Talus = convex hull",
                  env);

    using Kind = AppSpec::Component::Kind;
    const AppSpec app{"fig3-example", 24, 0.8, 2.0,
                      {{Kind::Random, 2.0, 0.5, 0.0},
                       {Kind::Scan, 3.0, 0.5, 0.0}}};

    auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const uint64_t max_lines = env.scale.lines(10.0);
    const MissCurve lru = measureLruCurve(
        *stream, env.measureAccesses * 2, max_lines, max_lines / 100);
    const ConvexHull hull(lru);

    Table table("Fig. 3 series: MPKI vs size (MB)",
                {"size_mb", "Original (LRU)", "Talus (hull)"});
    for (double mb = 0.0; mb <= 10.0; mb += 0.5) {
        const double s = mb * static_cast<double>(env.scale.linesPerMb());
        table.addRow({mb, app.apki * lru.at(s), app.apki * hull.at(s)});
    }
    table.print(env.csv);

    const auto at = [&](double mb) {
        return app.apki *
               lru.at(mb * static_cast<double>(env.scale.linesPerMb()));
    };
    // The paper's Fig. 3 idealizes the 2-5MB region as perfectly flat;
    // a real interleaved stream gives a shallow knee instead. The
    // shape claim that matters for Talus: the pre-cliff slope is much
    // smaller than the cliff's, i.e. a non-convex knee at ~5MB.
    const double knee_slope = (at(2.5) - at(4.5)) / 2.0;
    const double cliff_slope = at(4.5) - at(5.5);
    bench::verdict(cliff_slope > 3.0 * std::max(knee_slope, 0.0),
                   "shallow knee 2-5MB, then a steep cliff at ~5MB");
    bench::verdict(at(3.0) - at(6.5) > 5.0,
                   "cliff: large MPKI drop once everything fits");
    bench::verdict(!lru.isConvex(1e-3) && hull.hull().isConvex(1e-9),
                   "original is non-convex; Talus hull is convex");
    return 0;
}
