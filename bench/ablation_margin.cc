/**
 * @file
 * Ablation: the safety margin on rho (Sec. VI-B).
 *
 * Paper: deviations from Assumptions 1-3 can "push beta up the
 * performance cliff"; bumping the routed rho by 5% (shrinking the
 * effective alpha, growing the effective beta) restores convexity
 * with little performance loss. This ablation sweeps the margin and
 * reports measured MPKI and convexity violations across a size sweep
 * on libquantum.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: Talus safety margin (0-10%)",
                  "5% margin keeps beta past the cliff with little "
                  "loss",
                  env);

    const AppSpec& app = findApp("libquantum");
    const uint64_t max_lines = env.scale.lines(40.0);
    auto curve_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve lru = measureLruCurve(
        *curve_stream, env.measureAccesses * 3, max_lines,
        max_lines / 80);
    const ConvexHull hull(lru);

    const auto sizes = sizeGridLines(env.scale, 36.0, 6.0);
    Table table("Measured Talus+V/LRU MPKI by margin",
                {"margin_%", "mpki@12MB", "mpki@24MB", "mean off-hull",
                 "max off-hull"});

    double best_excess_5 = 0, best_excess_0 = 0;
    for (double margin : {0.0, 0.01, 0.02, 0.05, 0.08, 0.10}) {
        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions opts;
        opts.scheme = SchemeKind::Vantage;
        opts.margin = margin;
        opts.measureAccesses = env.measureAccesses;
        opts.seed = env.seed;
        const MissCurve talus =
            sweepTalusCurve(*stream, lru, sizes, opts);

        double mean_excess = 0, max_excess = 0;
        for (uint64_t s : sizes) {
            const double fs = static_cast<double>(s);
            const double excess =
                std::max(0.0, talus.at(fs) - hull.at(fs));
            mean_excess += excess;
            max_excess = std::max(max_excess, excess);
        }
        mean_excess /= static_cast<double>(sizes.size());
        if (margin == 0.0)
            best_excess_0 = max_excess;
        if (margin == 0.05)
            best_excess_5 = max_excess;

        const double twelve =
            static_cast<double>(env.scale.lines(12.0));
        const double twenty_four =
            static_cast<double>(env.scale.lines(24.0));
        table.addRow({100 * margin, app.apki * talus.at(twelve),
                      app.apki * talus.at(twenty_four),
                      app.apki * mean_excess, app.apki * max_excess});
    }
    table.print(env.csv);

    bench::verdict(best_excess_5 < best_excess_0 + 0.05,
                   "5% margin does not inflate the off-hull error");
    std::printf("(The margin matters most for noisy monitored curves; "
                "with exact curves margins mainly trade a small MPKI "
                "increase for robustness.)\n");
    return 0;
}
