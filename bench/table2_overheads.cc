/**
 * @file
 * Sec. VI-D: Talus's hardware overhead accounting.
 *
 * Paper: on the 8-core, 8MB system, Talus's extra state totals
 * 24.2KB — 0.3% of LLC capacity. Monitoring costs 5KB/core of which
 * only 1KB is Talus-specific. The impractical alternative (per-point
 * monitors for SRRIP) needs 256KB/core, which is the paper's argument
 * for predictable policies.
 */

#include "bench/bench_util.h"
#include "core/hardware_cost.h"
#include "monitor/policy_monitor.h"
#include "util/table.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Sec. VI-D: hardware overhead analysis",
                  "24.2KB extra state on 8-core/8MB = 0.3% of LLC",
                  env);

    HardwareCostParams params; // Paper defaults: 8 cores, 8MB LLC.
    const HardwareCost cost = computeHardwareCost(params);

    Table table("Talus extra state (8-core, 8MB LLC)",
                {"component", "bytes"});
    table.addRow(std::vector<std::string>{
        "partition-id tag extension (+1 bit/line)",
        fmtDouble(static_cast<double>(cost.tagExtensionBytes), 0)});
    table.addRow(std::vector<std::string>{
        "Vantage state for shadow partitions (256b each)",
        fmtDouble(static_cast<double>(cost.vantageStateBytes), 0)});
    table.addRow(std::vector<std::string>{
        "sampling functions (8b H3 + 8b limit per partition)",
        fmtDouble(static_cast<double>(cost.samplerBytes), 0)});
    table.addRow(std::vector<std::string>{
        "Talus-specific monitors (1KB/core sampled UMON)",
        fmtDouble(static_cast<double>(cost.talusMonitorBytes), 0)});
    table.addRow(std::vector<std::string>{
        "TOTAL Talus-specific",
        fmtDouble(static_cast<double>(cost.talusTotalBytes), 0)});
    table.addRow(std::vector<std::string>{
        "(baseline UMONs, charged to partitioning)",
        fmtDouble(static_cast<double>(cost.baseMonitorBytes), 0)});
    table.print(env.csv);

    std::printf("LLC overhead: %.2f%% (paper: 0.3%%)\n",
                100 * cost.llcOverheadFraction);
    bench::verdict(cost.talusTotalBytes > 20 * 1024 &&
                       cost.talusTotalBytes < 30 * 1024 &&
                       cost.llcOverheadFraction < 0.005,
                   "total within the paper's ~24.2KB / 0.3% envelope");

    // The impractical alternative for non-stack policies (Sec. VI-C).
    PolicyMonitorArray::Config mc;
    for (int i = 1; i <= 64; ++i)
        mc.modeledSizes.push_back(2048ull * i);
    mc.monitorLines = 1024;
    mc.policyName = "SRRIP";
    PolicyMonitorArray mon(mc);
    std::printf("\n64-point SRRIP monitor array: %llu KB per core "
                "(paper: 256KB, 'too large to be practical')\n",
                static_cast<unsigned long long>(mon.stateBytes() / 1024));
    bench::verdict(mon.stateBytes() >= 200 * 1024,
                   "per-point monitoring for SRRIP is impractically "
                   "large");
    return 0;
}
