/**
 * @file
 * Table I: configuration of the simulated systems, and what this
 * reproduction substitutes for each component (DESIGN.md §1).
 */

#include "bench/bench_util.h"
#include "util/table.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Table I: simulated system configuration",
                  "Silvermont-like OOO cores, 1MB/core shared LLC, "
                  "Vantage or way partitioning",
                  env);

    Table table("System configuration: paper vs this reproduction",
                {"component", "paper", "here"});
    table.addRow(std::vector<std::string>{
        "Cores", "1 (ST) / 8 (MP) OOO, 2.4GHz",
        "analytic core model: per-app base CPI + MLP-discounted "
        "access latency"});
    table.addRow(std::vector<std::string>{
        "L1/L2", "32KB L1, 128KB private L2",
        "folded into per-app APKI (LLC accesses per kilo-instr)"});
    table.addRow(std::vector<std::string>{
        "L3", "shared, non-inclusive, 20-cycle, 32-way / Vantage",
        "SetAssocCache 32-way, 20-cycle; Vantage/way/set/ideal "
        "partitioning"});
    table.addRow(std::vector<std::string>{
        "L3 capacity", "1MB/core (8MB MP)",
        "scaled: " + fmtDouble(static_cast<double>(
                        env.scale.linesPerMb()), 0) +
            " lines per paper-MB (TALUS_FULL=1 for 16384)"});
    table.addRow(std::vector<std::string>{
        "Main memory", "200 cycles",
        "200 cycles, divided by per-app MLP"});
    table.addRow(std::vector<std::string>{
        "Workloads", "SPEC CPU2006, 10B-instr samples",
        "synthetic stand-ins with matched miss-curve shapes "
        "(DESIGN.md §5)"});
    table.addRow(std::vector<std::string>{
        "Monitors", "64-way 1K-line UMONs + 1:16-sampled monitor",
        "identical construction (monitor/umon.h)"});
    table.addRow(std::vector<std::string>{
        "Reconfiguration", "every 10ms",
        "every reconfigCycles modeled cycles (scaled)"});
    table.print(env.csv);
    return 0;
}
