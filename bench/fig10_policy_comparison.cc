/**
 * @file
 * Figure 10: MPKI curves of Talus+V/LRU vs high-performance
 * replacement policies (PDP, DRRIP, SRRIP) and LRU, 128KB-16MB, on
 * the six benchmarks the paper plots.
 *
 * Paper: Talus+V/LRU tracks or beats the high-performance policies on
 * apps with cliffs (perlbench, libquantum, lbm, xalancbmk), while
 * policies that exploit reuse classification (RRIP on mcf/cactusADM)
 * can beat it — Talus is bounded by the policy it convexifies.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 10: policy comparison, 128KB-16MB",
                  "Talus+V/LRU competitive with PDP/DRRIP/SRRIP, never "
                  "below LRU",
                  env);

    const std::vector<std::string> apps{"perlbench", "mcf", "cactusADM",
                                        "libquantum", "lbm", "xalancbmk"};
    const std::vector<std::string> policies{"PDP", "DRRIP", "SRRIP"};

    // 128KB to 16MB, doubling.
    std::vector<uint64_t> sizes;
    for (double mb = 0.125; mb <= 16.0; mb *= 2)
        sizes.push_back(env.scale.lines(mb));

    int talus_never_worse = 0;
    for (const auto& name : apps) {
        const AppSpec& app = findApp(name);
        const uint64_t max_lines = env.scale.lines(16.0);

        auto lru_stream =
            app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        const MissCurve lru = measureLruCurve(
            *lru_stream, env.measureAccesses * 3, max_lines,
            std::max<uint64_t>(1, max_lines / 128));

        std::vector<MissCurve> curves;
        for (const auto& policy : policies) {
            auto stream =
                app.buildStream(env.scale.linesPerMb(), 0, env.seed);
            SweepOptions opts;
            opts.policyName = policy;
            opts.measureAccesses = env.measureAccesses / 2;
            opts.seed = env.seed;
            curves.push_back(sweepPolicyCurve(*stream, sizes, opts));
        }

        auto talus_stream =
            app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions topts;
        topts.scheme = SchemeKind::Vantage;
        topts.measureAccesses = env.measureAccesses / 2;
        topts.seed = env.seed;
        const MissCurve talus =
            sweepTalusCurve(*talus_stream, lru, sizes, topts);

        Table table("Fig. 10 " + name + ": MPKI vs size (MB)",
                    {"size_mb", "Talus+V/LRU", "PDP", "DRRIP", "SRRIP",
                     "LRU"});
        bool never_worse = true;
        for (uint64_t s : sizes) {
            const double fs = static_cast<double>(s);
            table.addRow({env.scale.mb(s), app.apki * talus.at(fs),
                          app.apki * curves[0].at(fs),
                          app.apki * curves[1].at(fs),
                          app.apki * curves[2].at(fs),
                          app.apki * lru.at(fs)});
            never_worse &= talus.at(fs) <= lru.at(fs) + 0.05;
        }
        table.print(env.csv);
        talus_never_worse += never_worse;
        bench::verdict(never_worse,
                       name + ": Talus never significantly above LRU");
    }
    bench::verdict(talus_never_worse >= 5,
                   "Talus avoids degradations across the Fig. 10 apps");
    return 0;
}
