/**
 * @file
 * Ablation: Talus is agnostic to prefetching (Sec. VII-B).
 *
 * Paper: "Prefetching changes miss curves somewhat, but does not
 * affect any of the assumptions that Talus relies on." We wrap the
 * workloads in an adaptive stream prefetcher, measure the changed
 * LRU curves, and check Talus still traces their hulls.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/prefetched_stream.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

void
runApp(const BenchEnv& env, const std::string& name, double max_mb)
{
    const AppSpec& app = findApp(name);
    const uint64_t max_lines = env.scale.lines(max_mb);
    const uint64_t step = std::max<uint64_t>(1, max_lines / 64);

    // LRU curves with and without prefetching.
    auto plain_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve plain = measureLruCurve(
        *plain_stream, env.measureAccesses * 2, max_lines, step);

    PrefetchedStream pf_curve_stream(
        app.buildStream(env.scale.linesPerMb(), 0, env.seed), {});
    const MissCurve prefetched = measureLruCurve(
        pf_curve_stream, env.measureAccesses * 2, max_lines, step);
    const ConvexHull hull(prefetched);

    // Talus on the prefetched stream, configured from its curve.
    const auto sizes = sizeGridLines(env.scale, max_mb * 0.8,
                                     max_mb / 5);
    PrefetchedStream pf_run_stream(
        app.buildStream(env.scale.linesPerMb(), 0, env.seed), {});
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Vantage;
    opts.measureAccesses = env.measureAccesses;
    opts.seed = env.seed;
    const MissCurve talus =
        sweepTalusCurve(pf_run_stream, prefetched, sizes, opts);

    Table table("Prefetching ablation, " + name +
                    " (miss ratio vs size MB)",
                {"size_mb", "LRU", "LRU+prefetch", "Talus+prefetch",
                 "hull(prefetch)"});
    double worst_excess = 0;
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({env.scale.mb(s), plain.at(fs), prefetched.at(fs),
                      talus.at(fs), hull.at(fs)});
        worst_excess =
            std::max(worst_excess, talus.at(fs) - hull.at(fs));
    }
    table.print(env.csv);
    bench::verdict(worst_excess < 0.12,
                   name + ": Talus tracks the prefetched curve's hull "
                          "(prefetching breaks no assumption)");
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: prefetching agnosticism (Sec. VII-B)",
                  "prefetching reshapes miss curves; Talus still "
                  "convexifies them",
                  env);
    runApp(env, "libquantum", 40.0);
    runApp(env, "mcf", 16.0);
    return 0;
}
