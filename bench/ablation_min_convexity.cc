/**
 * @file
 * Ablation: optimal replacement is convex (Corollary 7).
 *
 * Paper: Theorem 6 yields a one-paragraph proof that MIN's miss curve
 * is convex — cliffs are an artifact of practical policies, not of
 * caching itself. We simulate Belady's MIN on the cliffiest workload
 * (a pure scan) and on the Fig. 3 example app, verify convexity, and
 * show how much of the LRU-to-MIN gap Talus closes for free.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "policy/belady.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/app_spec.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

void
runCase(const BenchEnv& env, const std::string& label,
        const AppSpec& app, double max_mb)
{
    // MIN needs a materialized trace; keep it moderate.
    auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    std::vector<Addr> trace;
    trace.reserve(env.measureAccesses);
    for (uint64_t i = 0; i < env.measureAccesses; ++i)
        trace.push_back(stream->next());

    auto lru_stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const uint64_t max_lines = env.scale.lines(max_mb);
    const MissCurve lru = measureLruCurve(
        *lru_stream, env.measureAccesses, max_lines, max_lines / 64);
    const ConvexHull hull(lru);

    Table table(label + ": MPKI, LRU vs Talus vs MIN",
                {"size_mb", "LRU", "Talus (hull)", "MIN"});
    std::vector<CurvePoint> min_points;
    const int steps = 8;
    for (int i = 0; i <= steps; ++i) {
        const uint64_t s = max_lines * i / steps;
        const double min_ratio =
            static_cast<double>(minMisses(trace, s)) /
            static_cast<double>(trace.size());
        min_points.push_back({static_cast<double>(s), min_ratio});
        table.addRow({env.scale.mb(s),
                      app.apki * lru.at(static_cast<double>(s)),
                      app.apki * hull.at(static_cast<double>(s)),
                      app.apki * min_ratio});
    }
    table.print(env.csv);

    const MissCurve min_curve(min_points);
    bench::verdict(min_curve.isConvex(0.02),
                   label + ": simulated MIN is convex (Corollary 7)");
    // Talus never promises better than MIN (it cannot).
    bool sound = true;
    for (const CurvePoint& p : min_points)
        sound &= hull.at(p.size) >= p.misses - 0.03;
    bench::verdict(sound, label + ": Talus promise stays above MIN");
}

} // namespace

int
main(int argc, char** argv)
{
    BenchEnv env = BenchEnv::init(argc, argv);
    // MIN simulation is O(n log n) per size; cap the trace length.
    env.measureAccesses = std::min<uint64_t>(env.measureAccesses, 500000);
    bench::header("Ablation: MIN convexity (Corollary 7)",
                  "optimal replacement has no cliffs; Talus closes part "
                  "of the LRU-MIN gap",
                  env);

    runCase(env, "libquantum", findApp("libquantum"), 40.0);

    using Kind = AppSpec::Component::Kind;
    const AppSpec example{"fig3-example", 24, 0.8, 2.0,
                          {{Kind::Random, 2.0, 0.5, 0.0},
                           {Kind::Scan, 3.0, 0.5, 0.0}}};
    runCase(env, "fig3-example", example, 10.0);
    return 0;
}
