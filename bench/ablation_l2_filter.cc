/**
 * @file
 * Ablation: private-cache filtering (Assumption 3's foundation).
 *
 * Paper (Sec. IV-A): "lower-level caches filter temporal locality",
 * which is why pseudo-random sampling of LLC accesses yields
 * statistically self-similar streams. This ablation puts a private
 * L2 model in front of the LLC stream and verifies both halves of
 * the claim: hot lines vanish from the LLC stream, and Talus still
 * traces the filtered curve's hull.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/filtered_stream.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: private L2 filtering (Assumption 3)",
                  "filtering removes hot lines; Talus works on the "
                  "filtered stream",
                  env);

    // An app with L2-grade temporal locality: a hot 0.1MB kernel
    // (fits the private L2 and gets filtered) plus a 4MB scan that
    // blows through it (and keeps the LLC cliff). The stock suite
    // bakes L2 filtering into its APKI, so its apps deliberately lack
    // this hot-kernel structure.
    using Kind = AppSpec::Component::Kind;
    const AppSpec app{"hotkernel+scan", 30, 0.8, 2.0,
                      {{Kind::Zipf, 0.1, 0.5, 1.1},
                       {Kind::Scan, 4.0, 0.5, 0.0}}};
    const uint64_t l2_lines = env.scale.lines(0.125); // 128KB L2.
    const uint64_t max_lines = env.scale.lines(16.0);

    // Curves with and without the L2 in front.
    auto raw_stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve raw = measureLruCurve(
        *raw_stream, env.measureAccesses * 2, max_lines, max_lines / 64);

    FilteredStream f_curve(
        app.buildStream(env.scale.linesPerMb(), 0, env.seed), l2_lines);
    const MissCurve filtered = measureLruCurve(
        f_curve, env.measureAccesses * 2, max_lines, max_lines / 64);
    const ConvexHull hull(filtered);

    Table table("omnetpp miss ratio, raw vs L2-filtered LLC stream",
                {"size_mb", "raw", "filtered", "hull(filtered)"});
    for (double mb = 1.0; mb <= 16.0; mb *= 2) {
        const double s = mb * static_cast<double>(env.scale.linesPerMb());
        table.addRow({mb, raw.at(s), filtered.at(s), hull.at(s)});
    }
    table.print(env.csv);
    std::printf("L2 pass ratio: %.2f (the L2 absorbed the rest)\n",
                f_curve.passRatio());

    // Talus on the filtered stream at mid-cliff.
    FilteredStream f_run(
        app.buildStream(env.scale.linesPerMb(), 0, env.seed), l2_lines);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Vantage;
    opts.measureAccesses = env.measureAccesses;
    opts.seed = env.seed;
    const uint64_t size = env.scale.lines(2.0);
    const MissCurve talus = sweepTalusCurve(f_run, filtered, {size}, opts);
    const double fs = static_cast<double>(size);
    std::printf("Talus+V at 2MB on the filtered stream: %.3f "
                "(filtered LRU %.3f, hull %.3f)\n",
                talus.at(fs), filtered.at(fs), hull.at(fs));
    bench::verdict(f_curve.passRatio() < 0.9,
                   "the private L2 filters a meaningful share of "
                   "accesses");
    bench::verdict(talus.at(fs) <= filtered.at(fs) + 0.02,
                   "Talus does not degrade on the filtered stream");
    return 0;
}
