/**
 * @file
 * Figure 6: Talus (convex hull) vs optimal bypassing across sizes.
 *
 * Paper: the optimal-bypassing curve lies on or above the hull
 * everywhere, with the gap largest in the middle of the plateau. We
 * reproduce it on the analytic Fig. 3 curve and on a measured
 * libquantum curve.
 */

#include "bench/bench_util.h"
#include "core/bypass_analysis.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 6: Talus vs optimal bypassing",
                  "bypassing never beats the hull; the gap peaks "
                  "mid-plateau",
                  env);

    // Analytic curve.
    const MissCurve example({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                             {5, 3}, {6, 3}, {8, 3}, {10, 3}});
    const ConvexHull example_hull(example);
    Table t1("Example curve (MPKI vs MB)",
             {"size_mb", "Original", "Talus", "Bypassing"});
    bool bypass_above_hull = true;
    for (double mb = 0; mb <= 10; mb += 0.5) {
        const double bypass = optimalBypass(example, mb).misses;
        bypass_above_hull &= bypass >= example_hull.at(mb) - 1e-9;
        t1.addRow({mb, example.at(mb), example_hull.at(mb), bypass});
    }
    t1.print(env.csv);
    bench::verdict(bypass_above_hull,
                   "bypassing >= hull at every size (example curve)");

    // Measured libquantum curve.
    const AppSpec& app = findApp("libquantum");
    auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const uint64_t max_lines = env.scale.lines(40.0);
    const MissCurve lib = measureLruCurve(
        *stream, env.measureAccesses * 2, max_lines, max_lines / 80);
    const ConvexHull lib_hull(lib);

    Table t2("libquantum (MPKI vs MB)",
             {"size_mb", "Original", "Talus", "Bypassing"});
    bool lib_ok = true;
    for (double mb = 0; mb <= 40; mb += 4) {
        const double s = mb * static_cast<double>(env.scale.linesPerMb());
        const double bypass = optimalBypass(lib, s).misses;
        lib_ok &= bypass >= lib_hull.at(s) - 1e-9;
        t2.addRow({mb, app.apki * lib.at(s), app.apki * lib_hull.at(s),
                   app.apki * bypass});
    }
    t2.print(env.csv);
    bench::verdict(lib_ok,
                   "bypassing >= hull at every size (libquantum)");
    return 0;
}
