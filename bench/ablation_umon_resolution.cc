/**
 * @file
 * Ablation: monitor resolution and coverage (Sec. VI-C).
 *
 * Two questions the paper's design raises:
 *  - how accurate is a sampled 64-way UMON against the exact curve?
 *  - what breaks without the extra 1:16 monitor (coverage beyond the
 *    LLC size)?
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "monitor/combined_umon.h"
#include "monitor/umon.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: UMON resolution and 4x coverage",
                  "64-way sampled UMONs track the exact curve; without "
                  "coverage Talus cannot see the 32MB cliff from an "
                  "8MB LLC",
                  env);

    const uint64_t llc = env.scale.lines(8.0);

    // Monitor accuracy by way count, on an app with a rich curve
    // inside the monitored range (mcf: convex + step within 8MB).
    const AppSpec& acc_app = findApp("mcf");
    auto exact_stream =
        acc_app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve exact = measureLruCurve(
        *exact_stream, env.measureAccesses * 4, llc, llc / 64);

    Table acc_table("UMON accuracy on mcf (miss-ratio error, 1-8MB)",
                    {"ways", "mean_abs_err", "max_abs_err"});
    for (uint32_t ways : {8u, 16u, 32u, 64u}) {
        UMon::Config mc;
        mc.ways = ways;
        mc.sets = 16;
        mc.modeledLines = llc;
        mc.seed = env.seed;
        UMon umon(mc);
        auto stream =
            acc_app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        for (uint64_t i = 0; i < env.measureAccesses * 4; ++i)
            umon.access(stream->next());
        const MissCurve curve = umon.curve();
        double mean_err = 0, max_err = 0;
        uint32_t points = 0;
        for (uint64_t s = llc / 8; s <= llc; s += llc / 8) {
            const double err = std::abs(
                curve.at(static_cast<double>(s)) -
                exact.at(static_cast<double>(s)));
            mean_err += err;
            max_err = std::max(max_err, err);
            points++;
        }
        acc_table.addRow({static_cast<double>(ways), mean_err / points,
                          max_err});
    }
    acc_table.print(env.csv);

    // Coverage uses libquantum: its cliff sits at 4x an 8MB LLC.
    const AppSpec& app = findApp("libquantum");

    // Coverage: what Talus promises at the full LLC allocation with
    // and without the sampled second monitor.
    Table cov_table("Talus promise at 8MB with/without 4x coverage",
                    {"coverage", "promised miss ratio @8MB",
                     "hull beta (MB)"});
    for (uint32_t coverage : {1u, 4u}) {
        CombinedUMon::Config cc;
        cc.llcLines = llc;
        cc.coverage = coverage;
        cc.seed = env.seed;
        CombinedUMon mon(cc);
        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        for (uint64_t i = 0; i < env.measureAccesses * 4; ++i)
            mon.access(stream->next());
        const ConvexHull hull(mon.curve());
        const auto seg = hull.segmentFor(static_cast<double>(llc) - 1);
        cov_table.addRow({static_cast<double>(coverage),
                          hull.at(static_cast<double>(llc)),
                          env.scale.mb(static_cast<uint64_t>(
                              seg.beta.size))});
    }
    cov_table.print(env.csv);
    std::printf("Without coverage the hull ends at the LLC size and "
                "the promise stays ~1.0: the 32MB cliff is invisible, "
                "so Talus cannot interpolate toward it (Sec. VI-C).\n");
    return 0;
}
