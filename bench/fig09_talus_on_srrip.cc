/**
 * @file
 * Figure 9: Talus is agnostic to the replacement policy.
 *
 * Paper: SRRIP does not obey the stack property, so its miss curve
 * needs one sampled monitor per curve point (impractically large in
 * hardware — which is the paper's point, Sec. VI-C). Feeding that
 * monitored curve to Talus over way partitioning removes SRRIP's
 * cliffs on libquantum and mcf just as it does LRU's.
 *
 * The Talus sweep runs through the TalusCache facade (scheme=Way,
 * policy=SRRIP), fed the monitor array's curve via applyCurves.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "monitor/policy_monitor.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

void
runApp(const BenchEnv& env, const std::string& name, double max_mb,
       double step_mb)
{
    const AppSpec& app = findApp(name);
    const auto sizes = sizeGridLines(env.scale, max_mb, step_mb);

    // SRRIP's miss curve via the 64-point monitor array.
    PolicyMonitorArray::Config mc;
    mc.policyName = "SRRIP";
    mc.monitorLines = 1024;
    mc.ways = 16;
    mc.seed = env.seed;
    for (int i = 1; i <= 64; ++i)
        mc.modeledSizes.push_back(
            std::max<uint64_t>(16, env.scale.lines(max_mb) * i / 64));
    PolicyMonitorArray monitor(mc);

    auto mon_stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    for (uint64_t i = 0; i < env.measureAccesses * 4; ++i)
        monitor.access(mon_stream->next());
    const MissCurve srrip_curve = monitor.curve();

    // Direct SRRIP sweep (ground truth) and Talus+W/SRRIP.
    auto srrip_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    SweepOptions sopts;
    sopts.policyName = "SRRIP";
    sopts.measureAccesses = env.measureAccesses;
    sopts.seed = env.seed;
    const MissCurve srrip_direct =
        sweepPolicyCurve(*srrip_stream, sizes, sopts);

    auto talus_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    TalusSweepOptions topts;
    topts.policyName = "SRRIP";
    topts.scheme = SchemeKind::Way;
    topts.measureAccesses = env.measureAccesses;
    topts.seed = env.seed;
    const MissCurve talus =
        sweepTalusCurve(*talus_stream, srrip_curve, sizes, topts);

    Table table("Fig. 9 " + name + ": MPKI vs LLC size (MB)",
                {"size_mb", "SRRIP", "Talus+W/SRRIP", "SRRIP hull"});
    const ConvexHull hull(srrip_direct);
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({env.scale.mb(s), app.apki * srrip_direct.at(fs),
                      app.apki * talus.at(fs), app.apki * hull.at(fs)});
    }
    table.print(env.csv);

    // Claim: wherever SRRIP has a big plateau-to-cliff gap, Talus
    // fills it in (measured at the size with the largest hull gap).
    double worst_gap = 0, worst_size = 0;
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        if (srrip_direct.at(fs) - hull.at(fs) > worst_gap) {
            worst_gap = srrip_direct.at(fs) - hull.at(fs);
            worst_size = fs;
        }
    }
    if (worst_gap > 0.1) {
        bench::verdict(talus.at(worst_size) <
                           srrip_direct.at(worst_size) - 0.3 * worst_gap,
                       name + ": Talus closes a meaningful part of "
                              "SRRIP's worst cliff");
    } else {
        bench::verdict(true, name + ": SRRIP already near-convex here "
                             "(matches paper for non-cliff apps)");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 9: Talus on SRRIP (way partitioning)",
                  "Talus smooths SRRIP's cliffs using 64-point monitor "
                  "arrays",
                  env);
    runApp(env, "libquantum", 40.0, 4.0);
    runApp(env, "mcf", 16.0, 2.0);
    return 0;
}
