/**
 * @file
 * Ablation: allocation-algorithm cost vs quality (Sec. VII-D's
 * complexity argument, quantified).
 *
 * Paper: hill climbing is a trivial linear loop; Lookahead is
 * quadratic; linear-time equivalents exist but are complex ([2],
 * implemented here as Peekahead). With Talus's convex hulls, the
 * trivial algorithm is optimal — so the entire cost ladder above
 * hill climbing becomes unnecessary. This bench measures both the
 * wall-clock of each allocator and the quality gap with and without
 * convexification.
 */

#include <chrono>

#include "bench/bench_util.h"
#include "alloc/allocator_factory.h"
#include "core/convex_hull.h"
#include "core/talus_controller.h"
#include "util/rng.h"
#include "util/table.h"

using namespace talus;

namespace {

std::vector<MissCurve>
randomCliffyCurves(uint32_t n, uint32_t points, uint64_t seed)
{
    Rng rng(seed);
    std::vector<MissCurve> curves;
    for (uint32_t i = 0; i < n; ++i) {
        std::vector<CurvePoint> pts;
        double value = 100 + static_cast<double>(rng.below(100));
        for (uint32_t x = 0; x <= points; ++x) {
            pts.push_back({static_cast<double>(x * 1024), value});
            if (rng.chance(0.4))
                value -= static_cast<double>(rng.below(25));
            if (value < 0)
                value = 0;
        }
        curves.push_back(MissCurve(pts));
    }
    return curves;
}

double
timeMs(Allocator& alloc, const std::vector<MissCurve>& curves,
       uint64_t total, uint64_t granule, int reps)
{
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r)
        alloc.allocate(curves, total, granule);
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(end - start)
               .count() /
           reps;
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: allocator cost vs quality",
                  "convex hulls make the trivial allocator optimal; "
                  "Lookahead-quality otherwise needs quadratic or "
                  "complex-linear algorithms",
                  env);

    const uint32_t parts = 8;
    const uint32_t points = 64;
    // A quarter of the aggregate demand: capacity must be scarce or
    // every allocator trivially satisfies everyone.
    const uint64_t total = 64ull * 1024 * parts / 4;
    const uint64_t granule = 1024;
    const auto raw = randomCliffyCurves(parts, points, env.seed);
    const auto hulls = TalusController::convexHulls(raw);

    auto dp = makeAllocator("DP-Optimal");
    const double best_raw =
        allocationCost(raw, dp->allocate(raw, total, granule));
    // Evaluate hull allocations against the raw curves: with Talus
    // the hull *is* achievable, so cost-on-hull is what the cache
    // would deliver.
    const double best_hull =
        allocationCost(hulls, dp->allocate(hulls, total, granule));

    Table table("8 partitions, 64-point cliffy curves",
                {"allocator", "ms/alloc", "cost on raw", "gap_raw_%",
                 "cost on hulls (Talus)", "gap_hull_%"});
    for (const std::string name :
         {"HillClimb", "Lookahead", "Peekahead", "DP-Optimal"}) {
        auto alloc = makeAllocator(name);
        const int reps = name == "DP-Optimal" ? 3 : 20;
        const double ms = timeMs(*alloc, raw, total, granule, reps);
        const double raw_cost =
            allocationCost(raw, alloc->allocate(raw, total, granule));
        const double hull_cost = allocationCost(
            hulls, alloc->allocate(hulls, total, granule));
        table.addRow(
            {name, fmtDouble(ms, 3), fmtDouble(raw_cost, 1),
             fmtDouble(100 * (raw_cost / best_raw - 1), 1),
             fmtDouble(hull_cost, 1),
             fmtDouble(100 * (hull_cost / best_hull - 1), 1)});
    }
    table.print(env.csv);

    auto hill = makeAllocator("HillClimb");
    auto lookahead = makeAllocator("Lookahead");
    auto peekahead = makeAllocator("Peekahead");
    const double hill_hull = allocationCost(
        hulls, hill->allocate(hulls, total, granule));
    const double look_raw = allocationCost(
        raw, lookahead->allocate(raw, total, granule));
    const double peek_raw = allocationCost(
        raw, peekahead->allocate(raw, total, granule));
    bench::verdict(hill_hull <= best_hull * 1.001,
                   "on convex hulls, trivial hill climbing is optimal");
    bench::verdict(std::abs(peek_raw - look_raw) <=
                       0.001 * look_raw + 1e-9,
                   "Peekahead reproduces Lookahead's quality in "
                   "near-linear time");
    return 0;
}
