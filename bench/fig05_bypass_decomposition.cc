/**
 * @file
 * Figure 5: optimal bypassing at 4MB, decomposed.
 *
 * Paper: on the Fig. 3 curve, optimal bypassing at 4MB keeps ~80% of
 * accesses (which then behave like a 5MB cache, the dotted line) and
 * bypasses ~20% (which always miss, the dashed line), netting ~8 MPKI
 * — better than LRU's 12, worse than Talus's 6.
 */

#include "bench/bench_util.h"
#include "core/bypass_analysis.h"
#include "core/convex_hull.h"
#include "util/table.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 5: optimal bypassing at 4MB",
                  "keep 80% at 5MB + bypass 20%: ~8 MPKI (12 LRU, 6 "
                  "Talus)",
                  env);

    const MissCurve lru({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                         {5, 3}, {6, 3}, {8, 3}, {10, 3}});
    const BypassChoice choice = optimalBypass(lru, 4.0);

    Table table("Optimal bypass decomposition at 4MB",
                {"component", "value"});
    table.addRow(std::vector<std::string>{"acceptance rate rho",
                                          fmtDouble(choice.rho, 3)});
    table.addRow(std::vector<std::string>{
        "emulated size (MB)", fmtDouble(choice.emulated, 3)});
    table.addRow(std::vector<std::string>{
        "non-bypassed MPKI (dotted)", fmtDouble(choice.keptPart, 3)});
    table.addRow(std::vector<std::string>{
        "bypassed MPKI (dashed)", fmtDouble(choice.bypassPart, 3)});
    table.addRow(std::vector<std::string>{"total MPKI",
                                          fmtDouble(choice.misses, 3)});
    table.addRow(std::vector<std::string>{
        "LRU MPKI", fmtDouble(lru.at(4.0), 3)});
    table.addRow(std::vector<std::string>{
        "Talus MPKI", fmtDouble(ConvexHull(lru).at(4.0), 3)});
    table.print(env.csv);

    bench::verdict(std::abs(choice.rho - 0.8) < 1e-9 &&
                       std::abs(choice.emulated - 5.0) < 1e-9,
                   "optimal bypass keeps 80% of accesses at 5MB");
    bench::verdict(choice.misses < lru.at(4.0) &&
                       choice.misses > ConvexHull(lru).at(4.0),
                   "bypassing beats LRU but loses to Talus "
                   "(Corollary 8)");
    return 0;
}
