/**
 * @file
 * Ablation: Talus on Futility Scaling vs on Vantage.
 *
 * Sec. VI-B: Vantage's unmanaged region forces Talus to assume only
 * 0.9s of usable capacity; the paper notes "Using Talus with Futility
 * Scaling would avoid this complication." We implement Futility
 * Scaling (partition/futility_scaling.h) and measure the difference
 * the paper predicted.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Ablation: Talus+Futility vs Talus+Vantage",
                  "Futility Scaling has no unmanaged region, so Talus "
                  "uses the full allocation (paper Sec. VI-B)",
                  env);

    const AppSpec& app = findApp("libquantum");
    const uint64_t max_lines = env.scale.lines(40.0);
    auto curve_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve lru = measureLruCurve(
        *curve_stream, env.measureAccesses * 3, max_lines,
        max_lines / 80);
    const ConvexHull hull(lru);

    const auto sizes = sizeGridLines(env.scale, 32.0, 4.0);
    auto sweep = [&](SchemeKind scheme) {
        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions opts;
        opts.scheme = scheme;
        opts.ways = 64; // Both papers' schemes assume many candidates.
        opts.measureAccesses = env.measureAccesses;
        opts.seed = env.seed;
        return sweepTalusCurve(*stream, lru, sizes, opts);
    };
    const MissCurve vantage = sweep(SchemeKind::Vantage);
    const MissCurve futility = sweep(SchemeKind::Futility);

    Table table("libquantum MPKI: Talus on Vantage vs Futility",
                {"size_mb", "Talus+V/LRU", "Talus+F/LRU", "hull"});
    double v_stable = 0, f_stable = 0; // Sizes up to half the cliff.
    uint32_t stable_points = 0;
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({env.scale.mb(s), app.apki * vantage.at(fs),
                      app.apki * futility.at(fs),
                      app.apki * hull.at(fs)});
        if (env.scale.mb(s) <= 16.0) {
            v_stable += vantage.at(fs);
            f_stable += futility.at(fs);
            stable_points++;
        }
    }
    table.print(env.csv);

    std::printf("mean miss ratio up to 16MB: Vantage %.4f, Futility "
                "%.4f (hull promise differs: V can only use 0.9s)\n",
                v_stable / stable_points, f_stable / stable_points);
    bench::verdict(f_stable <= v_stable + 1e-3,
                   "Talus+Futility beats Talus+Vantage where "
                   "enforcement is stable: no 10% capacity discount");
    std::printf("note: near the cliff edge both schemes are limited "
                "by per-set candidate scarcity (the papers use 52-"
                "candidate zcaches); see EXPERIMENTS.md.\n");
    return 0;
}
