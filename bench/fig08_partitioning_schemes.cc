/**
 * @file
 * Figure 8: Talus is agnostic to the partitioning scheme.
 *
 * Paper: Talus on LRU with Vantage (V), way partitioning (W), and
 * idealized partitioning (I) all closely trace LRU's convex hull on
 * libquantum and gobmk; Talus+V sits slightly above the hull because
 * Vantage manages only 90% of capacity.
 *
 * Each Talus point runs through the TalusCache facade (one
 * single-partition cache per size, via sweepTalusCurve); only the
 * Config::scheme knob differs between the three sweeps.
 */

#include "bench/bench_util.h"
#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "util/table.h"
#include "workload/spec_suite.h"

using namespace talus;

namespace {

void
runApp(const BenchEnv& env, const std::string& name, double max_mb,
       double step_mb)
{
    const AppSpec& app = findApp(name);
    const uint64_t max_lines = env.scale.lines(max_mb);

    auto curve_stream =
        app.buildStream(env.scale.linesPerMb(), 0, env.seed);
    const MissCurve lru = measureLruCurve(
        *curve_stream, env.measureAccesses * 4, max_lines,
        std::max<uint64_t>(1, max_lines / 80));
    const ConvexHull hull(lru);

    const auto sizes = sizeGridLines(env.scale, max_mb, step_mb);

    auto sweep = [&](SchemeKind scheme) {
        auto stream = app.buildStream(env.scale.linesPerMb(), 0, env.seed);
        TalusSweepOptions opts;
        opts.scheme = scheme;
        opts.measureAccesses = env.measureAccesses;
        opts.seed = env.seed;
        return sweepTalusCurve(*stream, lru, sizes, opts);
    };
    const MissCurve v = sweep(SchemeKind::Vantage);
    const MissCurve w = sweep(SchemeKind::Way);
    const MissCurve i = sweep(SchemeKind::Ideal);

    Table table("Fig. 8 " + name + ": MPKI vs LLC size (MB)",
                {"size_mb", "LRU", "Talus+V/LRU", "Talus+W/LRU",
                 "Talus+I/LRU", "hull"});
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        table.addRow({env.scale.mb(s), app.apki * lru.at(fs),
                      app.apki * v.at(fs), app.apki * w.at(fs),
                      app.apki * i.at(fs), app.apki * hull.at(fs)});
    }
    table.print(env.csv);

    // Claim: every scheme's Talus beats raw LRU mid-cliff, and the
    // ideal scheme hugs the hull.
    double worst_excess_ideal = 0;
    double mean_gain = 0;
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        worst_excess_ideal =
            std::max(worst_excess_ideal, i.at(fs) - hull.at(fs));
        mean_gain += (lru.at(fs) - v.at(fs));
    }
    mean_gain /= static_cast<double>(sizes.size());
    bench::verdict(worst_excess_ideal < 0.1,
                   name + ": Talus+I within 0.1 miss-ratio of the hull "
                          "everywhere");
    bench::verdict(mean_gain > -0.02,
                   name + ": Talus+V does not degrade LRU on average");
}

} // namespace

int
main(int argc, char** argv)
{
    const BenchEnv env = BenchEnv::init(argc, argv);
    bench::header("Figure 8: Talus across partitioning schemes",
                  "V, W, and I all trace LRU's hull; V slightly above "
                  "(unmanaged region)",
                  env);
    runApp(env, "libquantum", 40.0, 4.0);
    runApp(env, "gobmk", 8.0, 1.0);
    return 0;
}
