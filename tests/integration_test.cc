/**
 * @file
 * End-to-end integration tests reproducing the paper's headline
 * claims in miniature: Fig. 1 (Talus removes libquantum's cliff),
 * Theorem 4 (sampled streams emulate larger caches), and the
 * monitor->hull->configure->measure pipeline using hardware-model
 * UMONs rather than exact curves.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc_lru.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "sim/experiment_util.h"
#include "sim/single_app_sim.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/spec_suite.h"
#include "workload/uniform_random.h"

namespace talus {
namespace {

TEST(Integration, Theorem4SampledStreamEmulatesLargerCache)
{
    // Sample a fraction rho of a random stream into a cache of size
    // s'; its miss ratio must match a full-stream cache of s'/rho.
    const uint64_t w = 2048;
    const double rho = 0.25;
    const uint64_t s_small = 256;
    const uint64_t s_large = static_cast<uint64_t>(s_small / rho);

    H3Hash sampler(16, 77);
    UniformRandom stream(w, 0, 3);
    FullyAssocLru small(s_small), large(s_large);
    uint64_t small_hits = 0, small_accs = 0;
    for (int i = 0; i < 400000; ++i) {
        const Addr a = stream.next();
        large.access(a);
        if (sampler.hashUnit(a) < rho) {
            small_accs++;
            small_hits += small.access(a);
        }
    }
    const double small_ratio =
        1.0 - static_cast<double>(small_hits) / small_accs;
    const double large_ratio =
        1.0 -
        static_cast<double>(large.hits()) / large.accesses();
    EXPECT_NEAR(small_ratio, large_ratio, 0.03);
}

TEST(Integration, Fig1LibquantumCliffRemoved)
{
    // Miniature Fig. 1: LRU's miss curve on libquantum is flat until
    // the working set fits; Talus+Ideal/LRU traces the diagonal hull.
    const Scale scale(32); // 32MB -> 1024 lines.
    const AppSpec& app = findApp("libquantum");

    auto curve_stream = app.buildStream(scale.linesPerMb(), 0, 5);
    const MissCurve lru =
        measureLruCurve(*curve_stream, 200000, 2048, 64);

    // LRU: cliff shape.
    EXPECT_GT(lru.at(512), 0.9);
    EXPECT_LT(lru.at(1536), 0.1);

    // Talus at half the working set: halves the miss ratio.
    auto run_stream = app.buildStream(scale.linesPerMb(), 0, 5);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = 120000;
    const MissCurve talus =
        sweepTalusCurve(*run_stream, lru, {512}, opts);
    EXPECT_LT(talus.at(512), 0.62);
    EXPECT_GT(talus.at(512), 0.3);
}

TEST(Integration, UmonDrivenPipelineMatchesPromise)
{
    // Full hardware-path pipeline: CombinedUMon measures the curve,
    // the controller configures from it, and the measured miss ratio
    // must come out near the hull promise (within monitor noise).
    const uint64_t w = 1024; // Scan working set.
    const uint64_t llc = 512;

    CombinedUMon::Config mc;
    mc.llcLines = llc;
    mc.coverage = 4;
    CombinedUMon monitor(mc);

    CyclicScan warm_stream(w);
    for (uint64_t i = 0; i < w * 100; ++i)
        monitor.access(warm_stream.next());
    const MissCurve measured = monitor.curve();

    // The monitor must see the cliff beyond the LLC size.
    EXPECT_GT(measured.at(llc), 0.85);
    EXPECT_LT(measured.at(2 * w), 0.25);

    auto phys =
        makePartitionedCache(SchemeKind::Ideal, llc, 16, "LRU", 2, 19);
    TalusController::Config tc;
    tc.numLogicalParts = 1;
    TalusController ctl(std::move(phys), tc);
    ctl.configure({measured}, {llc});

    CyclicScan run(w);
    for (uint64_t i = 0; i < w * 20; ++i)
        ctl.access(run.next(), 0);
    ctl.cache().stats().reset();
    for (uint64_t i = 0; i < w * 40; ++i)
        ctl.access(run.next(), 0);

    const double measured_ratio =
        static_cast<double>(ctl.logicalMisses(0)) /
        static_cast<double>(ctl.logicalAccesses(0));
    const double promised = ConvexHull(measured).at(llc);
    EXPECT_NEAR(measured_ratio, promised, 0.12);
    EXPECT_LT(measured_ratio, 0.75); // Far better than LRU's ~1.0.
}

TEST(Integration, TalusNeverWorseThanLruAcrossSuite)
{
    // Talus's "never degrades over LRU" claim (Sec. VII-C), checked
    // at one mid-range size for several apps. The scale must keep the
    // caches at a few hundred lines: Talus's statistical assumptions
    // (Assumption 3) need enough lines per shadow partition.
    const Scale scale(128);
    for (const char* name : {"omnetpp", "xalancbmk", "gcc", "lbm"}) {
        const AppSpec& app = findApp(name);
        const uint64_t footprint =
            scale.lines(app.footprintMb());
        const uint64_t size = footprint / 2;

        auto curve_stream = app.buildStream(scale.linesPerMb(), 0, 7);
        const MissCurve lru = measureLruCurve(
            *curve_stream, 150000, footprint * 2,
            std::max<uint64_t>(1, footprint / 32));

        auto talus_stream = app.buildStream(scale.linesPerMb(), 0, 7);
        TalusSweepOptions topts;
        topts.scheme = SchemeKind::Ideal;
        topts.measureAccesses = 80000;
        const MissCurve talus =
            sweepTalusCurve(*talus_stream, lru, {size}, topts);

        auto lru_stream = app.buildStream(scale.linesPerMb(), 0, 7);
        SweepOptions lopts;
        lopts.measureAccesses = 80000;
        const MissCurve lru_direct =
            sweepPolicyCurve(*lru_stream, {size}, lopts);

        EXPECT_LT(talus.at(static_cast<double>(size)),
                  lru_direct.at(static_cast<double>(size)) + 0.05)
            << name;
    }
}

} // namespace
} // namespace talus
