/**
 * @file
 * util/span.h: construction from every supported container shape
 * (including the const-element views the shard scatter path uses),
 * element access, iteration, and subspan.
 */

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "util/span.h"
#include "util/types.h"

namespace talus {
namespace {

TEST(Span, DefaultConstructedIsEmpty)
{
    const Span<int> span;
    EXPECT_TRUE(span.empty());
    EXPECT_EQ(span.size(), 0u);
    EXPECT_EQ(span.data(), nullptr);
    EXPECT_EQ(span.begin(), span.end());
}

TEST(Span, PointerAndLength)
{
    const int raw[] = {10, 20, 30, 40};
    const Span<int> span(raw, 3);
    EXPECT_FALSE(span.empty());
    EXPECT_EQ(span.size(), 3u);
    EXPECT_EQ(span.data(), raw);
    EXPECT_EQ(span[0], 10);
    EXPECT_EQ(span[2], 30);
}

TEST(Span, FromVector)
{
    const std::vector<int> v{1, 2, 3, 4, 5};
    const Span<int> span(v);
    EXPECT_EQ(span.size(), v.size());
    EXPECT_EQ(span.data(), v.data());
    EXPECT_EQ(span[4], 5);
}

TEST(Span, FromArray)
{
    const std::array<int, 3> a{{7, 8, 9}};
    const Span<int> span(a);
    EXPECT_EQ(span.size(), 3u);
    EXPECT_EQ(span[1], 8);
}

TEST(Span, FromCArray)
{
    const int a[] = {4, 5, 6};
    const Span<int> span(a);
    EXPECT_EQ(span.size(), 3u);
    EXPECT_EQ(span[2], 6);
}

TEST(Span, ConstElementViewOverMutableContainers)
{
    // The shard scatter path views std::vector<Addr> buffers through
    // Span<const Addr>; all converting constructors must accept the
    // non-const element type.
    std::vector<Addr> v{1, 2, 3};
    const Span<const Addr> from_vector(v);
    EXPECT_EQ(from_vector.size(), 3u);
    EXPECT_EQ(from_vector[1], 2u);

    std::array<Addr, 2> a{{8, 9}};
    const Span<const Addr> from_array(a);
    EXPECT_EQ(from_array[0], 8u);

    Addr raw[] = {5, 6};
    const Span<const Addr> from_c_array(raw);
    EXPECT_EQ(from_c_array[1], 6u);
}

TEST(Span, BeginEndSupportRangeFor)
{
    const std::vector<int> v{1, 2, 3, 4};
    const Span<int> span(v);
    int sum = 0;
    for (int x : span)
        sum += x;
    EXPECT_EQ(sum, 10);
    EXPECT_EQ(std::accumulate(span.begin(), span.end(), 0), 10);
    EXPECT_EQ(span.end() - span.begin(),
              static_cast<ptrdiff_t>(span.size()));
}

TEST(Span, Subspan)
{
    const std::vector<int> v{0, 1, 2, 3, 4, 5};
    const Span<int> span(v);
    const Span<int> mid = span.subspan(2, 3);
    EXPECT_EQ(mid.size(), 3u);
    EXPECT_EQ(mid[0], 2);
    EXPECT_EQ(mid[2], 4);
    EXPECT_TRUE(span.subspan(6, 0).empty());
}

} // namespace
} // namespace talus
