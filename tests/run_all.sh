#!/usr/bin/env bash
# Convenience wrapper around the tier-1 verify: configure, build, and
# run the GoogleTest suite through ctest.
#
# Usage:
#   tests/run_all.sh                 # full suite, Release
#   tests/run_all.sh -L unit         # fast suites only
#   tests/run_all.sh -L integration  # slow end-to-end suites
#   tests/run_all.sh -L property     # property/invariant suites
#   BUILD_TYPE=Debug tests/run_all.sh
#   BUILD_DIR=build-asan tests/run_all.sh
#
# Extra arguments are forwarded to ctest verbatim (e.g. -R lru, -V).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" "$@"
