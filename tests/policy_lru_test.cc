/**
 * @file
 * Tests for LRU, NRU, and Random replacement, including LRU's stack
 * (inclusion) property — the foundation of UMON monitoring and hence
 * of Talus's predictability.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc_lru.h"
#include "cache/set_assoc_cache.h"
#include "policy/lru.h"
#include "policy/nru.h"
#include "policy/policy_factory.h"
#include "policy/random_repl.h"
#include "tests/test_util.h"

namespace talus {
namespace {

SetAssocCache::Config
oneSet(uint32_t ways)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 1;
    cfg.numWays = ways;
    cfg.hashSetIndex = false;
    return cfg;
}

TEST(Lru, SingleSetMatchesFullyAssociative)
{
    // A 1-set, W-way LRU cache must behave exactly like a W-line
    // fully-associative LRU.
    for (uint32_t ways : {2u, 4u, 8u, 16u}) {
        SetAssocCache cache(oneSet(ways), std::make_unique<LruPolicy>());
        FullyAssocLru ref(ways);
        auto trace = test::randomTrace(20000, ways * 3, ways);
        for (Addr a : trace) {
            const bool hit = cache.access(a);
            const bool ref_hit = ref.access(a);
            ASSERT_EQ(hit, ref_hit) << "ways=" << ways;
        }
    }
}

TEST(Lru, StackPropertySingleSet)
{
    // Inclusion: anything resident in a k-way LRU cache is also
    // resident in a (k+m)-way LRU cache after any common trace.
    auto trace = test::randomTrace(10000, 48, 99);
    FullyAssocLru small(16), big(32);
    for (Addr a : trace) {
        const bool small_hit = small.access(a);
        const bool big_hit = big.access(a);
        // Inclusion implies: a hit in the small cache must also hit
        // in the big one.
        if (small_hit) {
            ASSERT_TRUE(big_hit);
        }
    }
    EXPECT_GE(big.hits(), small.hits());
}

TEST(Lru, MissCurveMonotoneInSize)
{
    auto trace = test::randomTrace(30000, 256, 5);
    uint64_t prev_hits = 0;
    for (uint64_t cap : {16u, 32u, 64u, 128u, 256u}) {
        FullyAssocLru cache(cap);
        for (Addr a : trace)
            cache.access(a);
        EXPECT_GE(cache.hits(), prev_hits) << "cap=" << cap;
        prev_hits = cache.hits();
    }
}

TEST(Lru, VictimIsOldest)
{
    LruPolicy lru;
    lru.init(1, 4);
    for (uint32_t line = 0; line < 4; ++line)
        lru.onInsert(line, line, 0);
    lru.onHit(0, 0, 0); // 0 becomes MRU; 1 is oldest.
    const uint32_t cands[] = {0, 1, 2, 3};
    EXPECT_EQ(lru.victim(cands, 4), 1u);
}

TEST(Lru, VictimRespectsCandidateSubset)
{
    LruPolicy lru;
    lru.init(1, 4);
    for (uint32_t line = 0; line < 4; ++line)
        lru.onInsert(line, line, 0);
    // Oldest overall is 0, but restrict candidates to {2, 3}.
    const uint32_t cands[] = {2, 3};
    EXPECT_EQ(lru.victim(cands, 2), 2u);
}

TEST(Nru, PrefersUnreferenced)
{
    NruPolicy nru;
    nru.init(1, 3);
    nru.onInsert(0, 0, 0);
    nru.onInsert(1, 1, 0);
    nru.onInsert(2, 2, 0);
    const uint32_t cands[] = {0, 1, 2};
    // All referenced: clears bits and evicts the first.
    EXPECT_EQ(nru.victim(cands, 3), 0u);
    // Now all unreferenced; hit 0 -> victim among {0,1,2} must not
    // be... 1 (first unreferenced in order).
    nru.onHit(0, 0, 0);
    EXPECT_EQ(nru.victim(cands, 3), 1u);
}

TEST(Random, VictimAlwaysACandidate)
{
    RandomPolicy random(1);
    random.init(1, 8);
    const uint32_t cands[] = {3, 5, 7};
    for (int i = 0; i < 200; ++i) {
        const uint32_t v = random.victim(cands, 3);
        EXPECT_TRUE(v == 3 || v == 5 || v == 7);
    }
}

TEST(Random, CoversAllCandidates)
{
    RandomPolicy random(2);
    random.init(1, 4);
    const uint32_t cands[] = {0, 1, 2, 3};
    std::vector<int> counts(4, 0);
    for (int i = 0; i < 4000; ++i)
        counts[random.victim(cands, 4)]++;
    for (int c : counts)
        EXPECT_GT(c, 700);
}

TEST(PolicyFactory, CreatesAllKnownPolicies)
{
    for (const std::string& name : knownPolicies()) {
        auto policy = makePolicy(name, 7);
        ASSERT_NE(policy, nullptr) << name;
        // Must be usable in a cache immediately.
        SetAssocCache cache(oneSet(4), std::move(policy));
        for (Addr a = 0; a < 100; ++a)
            cache.access(a % 8);
        EXPECT_EQ(cache.stats().totalAccesses(), 100u) << name;
    }
}

TEST(PolicyFactory, NamesMatch)
{
    EXPECT_STREQ(makePolicy("LRU")->name(), "LRU");
    EXPECT_STREQ(makePolicy("SRRIP")->name(), "SRRIP");
    EXPECT_STREQ(makePolicy("TA-DRRIP")->name(), "TA-DRRIP");
    EXPECT_STREQ(makePolicy("PDP")->name(), "PDP");
}

// Parameterized: every policy must behave sanely on a mixed trace in
// a realistic multi-set cache (no crashes, miss counts bounded).
class AllPoliciesTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllPoliciesTest, HandlesMixedTraceInMultiSetCache)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 8;
    SetAssocCache cache(cfg, makePolicy(GetParam(), 3));
    auto scan = test::scanTrace(30000, 700);
    auto rnd = test::randomTrace(30000, 300, 17);
    for (size_t i = 0; i < scan.size(); ++i) {
        cache.access(scan[i], 0);
        cache.access(rnd[i] + 100000, 1);
    }
    const auto& stats = cache.stats();
    EXPECT_EQ(stats.totalAccesses(), 60000u);
    // Some hits must occur (rnd working set fits comfortably) and
    // some misses must occur (cold + scan).
    EXPECT_GT(stats.totalHits(), 1000u);
    EXPECT_GT(stats.totalMisses() + stats.bypasses(), 700u);
}

INSTANTIATE_TEST_SUITE_P(Policies, AllPoliciesTest,
                         ::testing::Values("LRU", "NRU", "Random", "SRRIP",
                                           "BRRIP", "DRRIP", "TA-DRRIP",
                                           "DIP", "TA-DIP", "PDP"));

} // namespace
} // namespace talus
