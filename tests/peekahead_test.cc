/**
 * @file
 * Tests for the Peekahead allocator: it must produce allocations of
 * the same quality as quadratic Lookahead (the Jigsaw equivalence the
 * Talus paper cites) at a fraction of the cost.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "alloc/dp_optimal.h"
#include "alloc/hill_climb.h"
#include "alloc/lookahead.h"
#include "alloc/peekahead.h"
#include "util/rng.h"

namespace talus {
namespace {

MissCurve
randomCliffyCurve(Rng& rng, int points, double step)
{
    std::vector<CurvePoint> pts;
    double value = 30 + static_cast<double>(rng.below(60));
    for (int x = 0; x <= points; ++x) {
        pts.push_back({x * step, value});
        if (rng.chance(0.5))
            value -= static_cast<double>(rng.below(12));
        if (value < 0)
            value = 0;
    }
    return MissCurve(pts);
}

TEST(Peekahead, MatchesLookaheadCostOnRandomCurves)
{
    Rng rng(73);
    LookaheadAllocator lookahead;
    PeekaheadAllocator peekahead;
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<MissCurve> curves;
        const int n = 2 + static_cast<int>(rng.below(5));
        for (int i = 0; i < n; ++i)
            curves.push_back(randomCliffyCurve(rng, 12, 10));

        const auto la = lookahead.allocate(curves, 120, 10);
        const auto pa = peekahead.allocate(curves, 120, 10);
        // Tie-breaking may differ; the achieved cost must not.
        EXPECT_NEAR(allocationCost(curves, pa),
                    allocationCost(curves, la), 1e-9)
            << "trial " << trial;
    }
}

TEST(Peekahead, CrossesPlateausLikeLookahead)
{
    // The all-or-nothing cliff case from the Lookahead tests.
    const MissCurve cliff({{0, 10}, {99.999999, 10}, {100, 1},
                           {200, 1}});
    const std::vector<MissCurve> curves{cliff, cliff};
    PeekaheadAllocator peekahead;
    const auto alloc = peekahead.allocate(curves, 100, 10);
    const uint64_t hi = std::max(alloc[0], alloc[1]);
    const uint64_t lo = std::min(alloc[0], alloc[1]);
    EXPECT_GE(hi, 100u);
    EXPECT_EQ(lo, 0u);
}

TEST(Peekahead, SpreadsWhenNothingHelps)
{
    const MissCurve flat({{0, 5}, {200, 5}});
    PeekaheadAllocator peekahead;
    const auto alloc = peekahead.allocate({flat, flat}, 100, 10);
    EXPECT_EQ(alloc[0] + alloc[1], 100u);
}

TEST(Peekahead, RespectsBudgetWindowAtEnd)
{
    // A curve whose next hull vertex lies beyond the budget: the
    // windowed fallback must still allocate sensibly.
    const MissCurve far_cliff({{0, 10}, {500, 10}, {501, 0},
                               {600, 0}});
    const MissCurve near_gain({{0, 10}, {50, 4}, {100, 3}, {600, 3}});
    PeekaheadAllocator peekahead;
    const auto alloc =
        peekahead.allocate({far_cliff, near_gain}, 100, 10);
    // The far cliff is unreachable; everything useful goes to the
    // second partition.
    EXPECT_GE(alloc[1], 50u);
    EXPECT_EQ(alloc[0] + alloc[1], 100u);
}

TEST(Peekahead, MatchesDpOnConvexCurves)
{
    Rng rng(79);
    PeekaheadAllocator peekahead;
    DpOptimalAllocator dp;
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<MissCurve> curves;
        const int n = 2 + static_cast<int>(rng.below(3));
        for (int i = 0; i < n; ++i) {
            std::vector<CurvePoint> pts;
            double value = 60 + static_cast<double>(rng.below(40));
            double slope = 8 + rng.unit() * 8;
            for (int x = 0; x <= 14; ++x) {
                pts.push_back({static_cast<double>(x * 10), value});
                value = std::max(0.0, value - slope);
                slope *= 0.65 + rng.unit() * 0.25;
            }
            curves.push_back(MissCurve(pts));
        }
        EXPECT_NEAR(
            allocationCost(curves, peekahead.allocate(curves, 120, 10)),
            allocationCost(curves, dp.allocate(curves, 120, 10)), 1e-6)
            << "trial " << trial;
    }
}

} // namespace
} // namespace talus
