/**
 * @file
 * Tests for src/util: RNG, H3 hashing, Fenwick trees, statistics,
 * tables, and env parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/bits.h"
#include "util/env.h"
#include "util/fenwick.h"
#include "util/h3_hash.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace talus {
namespace {

// ---------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[rng.below(10)]++;
    for (int c : counts) {
        EXPECT_GT(c, n / 10 * 0.9);
        EXPECT_LT(c, n / 10 * 1.1);
    }
}

TEST(Rng, UnitInHalfOpenInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.unit();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ChanceEdgeCases)
{
    Rng rng(19);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, SeedRestartsSequence)
{
    Rng rng(23);
    const uint64_t first = rng.next64();
    rng.next64();
    rng.seed(23);
    EXPECT_EQ(rng.next64(), first);
}

// ------------------------------------------------------------- H3Hash

TEST(H3Hash, Deterministic)
{
    H3Hash h(8, 42);
    H3Hash h2(8, 42);
    for (Addr a = 0; a < 1000; ++a)
        EXPECT_EQ(h.hash(a), h2.hash(a));
}

TEST(H3Hash, RangeRespectsBits)
{
    for (uint32_t bits : {1u, 4u, 8u, 16u}) {
        H3Hash h(bits, 9);
        EXPECT_EQ(h.range(), 1u << bits);
        for (Addr a = 0; a < 2000; ++a)
            EXPECT_LT(h.hash(a), h.range());
    }
}

TEST(H3Hash, UniformOverSequentialAddresses)
{
    // Sequential addresses (scans!) must spread evenly — this is what
    // Assumption 3 requires of the sampling function.
    H3Hash h(4, 77);
    std::vector<int> counts(16, 0);
    const int n = 64000;
    for (Addr a = 0; a < n; ++a)
        counts[h.hash(a)]++;
    for (int c : counts) {
        EXPECT_GT(c, n / 16 * 0.85);
        EXPECT_LT(c, n / 16 * 1.15);
    }
}

TEST(H3Hash, HashUnitMatchesHash)
{
    H3Hash h(8, 5);
    for (Addr a = 0; a < 500; ++a)
        EXPECT_DOUBLE_EQ(h.hashUnit(a), h.hash(a) / 256.0);
}

TEST(H3Hash, DifferentSeedsGiveDifferentFunctions)
{
    H3Hash a(8, 1), b(8, 2);
    int same = 0;
    for (Addr x = 0; x < 1000; ++x)
        same += (a.hash(x) == b.hash(x));
    // Random agreement is ~1/256.
    EXPECT_LT(same, 30);
}

// ------------------------------------------------------------ Fenwick

TEST(Fenwick, MatchesNaivePrefixSums)
{
    Fenwick fw(64);
    std::vector<int64_t> naive(64, 0);
    Rng rng(3);
    for (int step = 0; step < 500; ++step) {
        const size_t i = rng.below(64);
        const int64_t delta = static_cast<int64_t>(rng.below(19)) - 9;
        fw.add(i, delta);
        naive[i] += delta;
        const size_t q = rng.below(65);
        int64_t expect = 0;
        for (size_t k = 0; k < q; ++k)
            expect += naive[k];
        EXPECT_EQ(fw.prefixSum(q), expect);
    }
}

TEST(Fenwick, RangeSum)
{
    Fenwick fw(10);
    for (size_t i = 0; i < 10; ++i)
        fw.add(i, static_cast<int64_t>(i));
    EXPECT_EQ(fw.rangeSum(0, 10), 45);
    EXPECT_EQ(fw.rangeSum(3, 7), 3 + 4 + 5 + 6);
    EXPECT_EQ(fw.rangeSum(5, 5), 0);
}

TEST(Fenwick, EmptyTree)
{
    Fenwick fw;
    EXPECT_EQ(fw.size(), 0u);
    EXPECT_EQ(fw.prefixSum(0), 0);
    EXPECT_EQ(fw.rangeSum(0, 0), 0);
    // An empty tree must grow into a usable one.
    fw.resize(4);
    EXPECT_EQ(fw.size(), 4u);
    fw.add(2, 7);
    EXPECT_EQ(fw.prefixSum(4), 7);
}

TEST(Fenwick, SingleElement)
{
    Fenwick fw(1);
    EXPECT_EQ(fw.size(), 1u);
    EXPECT_EQ(fw.prefixSum(0), 0);
    EXPECT_EQ(fw.prefixSum(1), 0);
    fw.add(0, -3);
    EXPECT_EQ(fw.prefixSum(1), -3);
    fw.add(0, 5);
    EXPECT_EQ(fw.prefixSum(1), 2);
    EXPECT_EQ(fw.rangeSum(0, 1), 2);
}

TEST(Fenwick, ResizeToSmallerOrEqualIsNoOp)
{
    Fenwick fw(8);
    fw.add(7, 9);
    fw.resize(4);
    EXPECT_EQ(fw.size(), 8u);
    EXPECT_EQ(fw.prefixSum(8), 9);
    fw.resize(8);
    EXPECT_EQ(fw.size(), 8u);
    EXPECT_EQ(fw.prefixSum(8), 9);
}

TEST(Fenwick, ResizePreservesContents)
{
    Fenwick fw(8);
    for (size_t i = 0; i < 8; ++i)
        fw.add(i, 1);
    fw.resize(32);
    EXPECT_EQ(fw.prefixSum(8), 8);
    fw.add(20, 5);
    EXPECT_EQ(fw.prefixSum(32), 13);
}

// -------------------------------------------------------------- stats

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1, 100}), 10.0, 1e-9);
    EXPECT_NEAR(geomean({2, 2, 2}), 2.0, 1e-12);
}

TEST(Stats, StddevAndCoV)
{
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
    EXPECT_NEAR(stddev({1, 3}), 1.0, 1e-12);
    EXPECT_NEAR(coeffOfVariation({1, 3}), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(coeffOfVariation({0, 0}), 0.0);
}

TEST(Stats, Quantile)
{
    std::vector<double> xs{4, 1, 3, 2};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, Sum)
{
    EXPECT_DOUBLE_EQ(sum({1.5, 2.5}), 4.0);
    EXPECT_DOUBLE_EQ(sum({}), 0.0);
}

// -------------------------------------------------------------- Table

TEST(Table, AlignedOutputContainsCells)
{
    Table t("demo", {"a", "bb"});
    t.addRow(std::vector<std::string>{"1", "2"});
    t.addRow(std::vector<double>{3.14159, 2.71828}, 2);
    const std::string s = t.toString();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvFormat)
{
    Table t("x", {"c1", "c2"});
    t.addRow(std::vector<std::string>{"v1", "v2"});
    EXPECT_EQ(t.toCsv(), "c1,c2\nv1,v2\n");
}

TEST(Table, FmtDouble)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

// ---------------------------------------------------------------- env

TEST(Env, IntAndDoubleAndFlag)
{
    ::setenv("TALUS_TEST_INT", "42", 1);
    ::setenv("TALUS_TEST_DBL", "2.5", 1);
    ::setenv("TALUS_TEST_FLAG", "1", 1);
    ::setenv("TALUS_TEST_ZERO", "0", 1);
    EXPECT_EQ(envInt("TALUS_TEST_INT", 7), 42);
    EXPECT_EQ(envInt("TALUS_TEST_MISSING", 7), 7);
    EXPECT_DOUBLE_EQ(envDouble("TALUS_TEST_DBL", 1.0), 2.5);
    EXPECT_TRUE(envFlag("TALUS_TEST_FLAG"));
    EXPECT_FALSE(envFlag("TALUS_TEST_ZERO"));
    EXPECT_FALSE(envFlag("TALUS_TEST_MISSING"));
}

TEST(Env, MalformedFallsBack)
{
    ::setenv("TALUS_TEST_BAD", "xyz", 1);
    EXPECT_EQ(envInt("TALUS_TEST_BAD", 5), 5);
    EXPECT_DOUBLE_EQ(envDouble("TALUS_TEST_BAD", 1.5), 1.5);
}

// --------------------------------------------------------------- bits

TEST(Bits, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(42), mix64(42));
    std::set<uint64_t> lows;
    for (uint64_t x = 0; x < 1024; ++x)
        lows.insert(mix64(x) & 0xFF);
    // Sequential inputs should cover most of the low byte space.
    EXPECT_GT(lows.size(), 200u);
}

TEST(Bits, Popcount64Edges)
{
    EXPECT_EQ(popcount64(0), 0u);
    EXPECT_EQ(popcount64(1), 1u);
    EXPECT_EQ(popcount64(~0ull), 64u);
    EXPECT_EQ(popcount64(1ull << 63), 1u);
    EXPECT_EQ(popcount64(0xAAAAAAAAAAAAAAAAull), 32u);
}

TEST(Bits, MaskLowWrapAround)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(1), 1u);
    EXPECT_EQ(maskLow(8), 0xFFull);
    EXPECT_EQ(maskLow(63), ~0ull >> 1);
    // n == 64 would shift out of range in a naive (1 << n) - 1; the
    // helper must saturate to all-ones instead of wrapping to zero.
    EXPECT_EQ(maskLow(64), ~0ull);
    EXPECT_EQ(maskLow(65), ~0ull);
}

} // namespace
} // namespace talus
