/**
 * @file
 * Tests for the RRIP family (SRRIP/BRRIP/DRRIP/TA-DRRIP) and the
 * set-dueling mechanism.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.h"
#include "policy/policy_factory.h"
#include "policy/rrip.h"
#include "policy/set_dueling.h"
#include "tests/test_util.h"

namespace talus {
namespace {

SetAssocCache::Config
plainConfig(uint32_t sets, uint32_t ways)
{
    SetAssocCache::Config cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.hashSetIndex = false;
    return cfg;
}

TEST(Srrip, InsertsAtLongReference)
{
    RripPolicy srrip(RripVariant::Srrip, 2);
    srrip.init(1, 4);
    srrip.onInsert(0, 0, 0);
    EXPECT_EQ(srrip.rrpv(0), 2); // max-1 with M=2 (max=3).
}

TEST(Srrip, PromotesToZeroOnHit)
{
    RripPolicy srrip(RripVariant::Srrip, 2);
    srrip.init(1, 4);
    srrip.onInsert(0, 0, 0);
    srrip.onHit(0, 0, 0);
    EXPECT_EQ(srrip.rrpv(0), 0);
}

TEST(Srrip, VictimIsDistantLine)
{
    RripPolicy srrip(RripVariant::Srrip, 2);
    srrip.init(1, 4);
    for (uint32_t line = 0; line < 4; ++line)
        srrip.onInsert(line, line, 0);
    srrip.onHit(1, 1, 0); // rrpv(1) = 0; others at 2.
    const uint32_t cands[] = {0, 1, 2, 3};
    const uint32_t victim = srrip.victim(cands, 4);
    EXPECT_NE(victim, 1u); // The promoted line survives aging longest.
    // After aging, some line reached rrpv 3 and was chosen.
    EXPECT_EQ(srrip.rrpv(victim), 3);
}

TEST(Srrip, AgingTerminates)
{
    RripPolicy srrip(RripVariant::Srrip, 2);
    srrip.init(1, 8);
    for (uint32_t line = 0; line < 8; ++line) {
        srrip.onInsert(line, line, 0);
        srrip.onHit(line, line, 0); // All at rrpv 0.
    }
    const uint32_t cands[] = {0, 1, 2, 3, 4, 5, 6, 7};
    // Must age everyone up to 3 and return a victim, not loop.
    const uint32_t victim = srrip.victim(cands, 8);
    EXPECT_LT(victim, 8u);
}

TEST(Brrip, MostInsertionsAreDistant)
{
    RripPolicy brrip(RripVariant::Brrip, 2, 1.0 / 32.0, 16, 1234);
    brrip.init(1, 1);
    int distant = 0;
    const int n = 3200;
    for (int i = 0; i < n; ++i) {
        brrip.onInsert(0, 0, 0);
        distant += (brrip.rrpv(0) == 3);
    }
    // ~31/32 distant.
    EXPECT_GT(distant, n * 29 / 32);
    EXPECT_LT(distant, n);
}

TEST(Srrip, ScanResistantVsLru)
{
    // Mixed reused-set + long scan: SRRIP should hit more than LRU
    // because reused lines are protected by promotion.
    auto build_trace = [] {
        std::vector<Addr> trace;
        Rng rng(5);
        for (int i = 0; i < 60000; ++i) {
            if (i % 2 == 0)
                trace.push_back(rng.below(64)); // Hot set.
            else
                trace.push_back(1000 + (i % 4096)); // Scan.
        }
        return trace;
    };

    auto run = [&](const std::string& policy) {
        SetAssocCache cache(plainConfig(16, 8), makePolicy(policy, 3));
        for (Addr a : build_trace())
            cache.access(a);
        return cache.stats().totalHits();
    };
    EXPECT_GT(run("SRRIP"), run("LRU"));
}

TEST(Drrip, BeatsSrriOnPureThrashing)
{
    // Cyclic scan slightly larger than the cache: SRRIP thrashes
    // (zero steady-state hits), BRRIP/DRRIP keep a fraction resident.
    const uint32_t sets = 16, ways = 8; // 128-line cache.
    auto trace = test::scanTrace(120000, 192);

    auto run = [&](RripVariant v) {
        SetAssocCache cache(plainConfig(sets, ways),
                            std::make_unique<RripPolicy>(v, 2, 1.0 / 32.0,
                                                         16, 7));
        for (Addr a : trace)
            cache.access(a);
        return cache.stats().totalHits();
    };

    const uint64_t srrip_hits = run(RripVariant::Srrip);
    const uint64_t drrip_hits = run(RripVariant::Drrip);
    EXPECT_GT(drrip_hits, srrip_hits + 10000);
}

TEST(TaDrrip, PerThreadInsertionDiffers)
{
    // Thread 0 thrashes (wants BRRIP); thread 1 has a small reused
    // set (SRRIP fine). TA-DRRIP must not collapse both to one PSEL:
    // both threads should get a reasonable hit rate.
    SetAssocCache cache(plainConfig(32, 8),
                        std::make_unique<RripPolicy>(RripVariant::TaDrrip,
                                                     2, 1.0 / 32.0, 16, 7));
    Rng rng(9);
    uint64_t t1_hits = 0, t1_accesses = 0;
    for (int i = 0; i < 200000; ++i) {
        cache.access(1 << 20 | (i % 512), 0); // Thrashing scan.
        const Addr a = rng.below(32);
        t1_accesses++;
        t1_hits += cache.access(a, 1);
    }
    EXPECT_GT(static_cast<double>(t1_hits) / t1_accesses, 0.8);
}

// -------------------------------------------------------- SetDueling

TEST(SetDueling, RolesAreStable)
{
    SetDueling duel;
    duel.init(1024, 1);
    for (uint32_t set = 0; set < 1024; ++set)
        EXPECT_EQ(duel.role(set, 0), duel.role(set, 0));
}

TEST(SetDueling, HasBothLeaderKindsAndFollowers)
{
    SetDueling duel;
    duel.init(1024, 1);
    int a = 0, b = 0, f = 0;
    for (uint32_t set = 0; set < 1024; ++set) {
        switch (duel.role(set, 0)) {
          case SetDueling::Role::LeaderA: a++; break;
          case SetDueling::Role::LeaderB: b++; break;
          case SetDueling::Role::Follower: f++; break;
        }
    }
    EXPECT_GT(a, 10);
    EXPECT_GT(b, 10);
    EXPECT_GT(f, 800);
}

TEST(SetDueling, PselConvergesTowardWinner)
{
    SetDueling duel;
    duel.init(1024, 1);
    // Simulate: A-leaders miss a lot, B-leaders rarely.
    for (uint32_t round = 0; round < 40; ++round) {
        for (uint32_t set = 0; set < 1024; ++set) {
            if (duel.role(set, 0) == SetDueling::Role::LeaderA)
                duel.onMiss(set, 0);
        }
    }
    EXPECT_TRUE(duel.preferB(0));
}

TEST(SetDueling, LeadersIgnorePsel)
{
    SetDueling duel;
    duel.init(256, 1);
    uint32_t leader_a = 0, leader_b = 0;
    for (uint32_t set = 0; set < 256; ++set) {
        if (duel.role(set, 0) == SetDueling::Role::LeaderA)
            leader_a = set;
        if (duel.role(set, 0) == SetDueling::Role::LeaderB)
            leader_b = set;
    }
    EXPECT_FALSE(duel.useB(leader_a, 0));
    EXPECT_TRUE(duel.useB(leader_b, 0));
}

TEST(SetDueling, ThreadsHaveIndependentPsels)
{
    SetDueling duel;
    duel.init(1024, 2);
    for (uint32_t round = 0; round < 40; ++round) {
        for (uint32_t set = 0; set < 1024; ++set) {
            if (duel.role(set, 0) == SetDueling::Role::LeaderA)
                duel.onMiss(set, 0);
            if (duel.role(set, 1) == SetDueling::Role::LeaderB)
                duel.onMiss(set, 1);
        }
    }
    EXPECT_TRUE(duel.preferB(0));
    EXPECT_FALSE(duel.preferB(1));
}

} // namespace
} // namespace talus
