/**
 * @file
 * Integration tests for TalusController: shadow routing, configure()
 * post-processing, way-partitioning coarsening, and the headline
 * end-to-end property — Talus on idealized partitioning lands on the
 * convex hull in the middle of a cliff (Lemma 5 made real).
 */

#include <gtest/gtest.h>

#include "core/talus_controller.h"
#include "monitor/mattson_curve.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"

namespace talus {
namespace {

std::unique_ptr<TalusController>
makeIdealTalus(uint64_t capacity, uint32_t logical_parts,
               double margin = 0.05)
{
    auto phys = makePartitionedCache(SchemeKind::Ideal, capacity, 16, "LRU",
                                     2 * logical_parts, 11);
    TalusController::Config cfg;
    cfg.numLogicalParts = logical_parts;
    cfg.margin = margin;
    cfg.routerBits = 16; // Fine quantization for exact math checks.
    TalusController::Config c = cfg;
    return std::make_unique<TalusController>(std::move(phys), c);
}

/** Exact LRU miss-ratio curve of a scan over `w` lines. */
MissCurve
scanCurve(uint64_t w, uint64_t max_lines)
{
    MattsonCurve mattson(max_lines);
    CyclicScan scan(w);
    for (uint64_t i = 0; i < w * 60; ++i)
        mattson.access(scan.next());
    return mattson.curve(std::max<uint64_t>(1, w / 32));
}

TEST(TalusController, RequiresDoubledPartitions)
{
    auto phys = makePartitionedCache(SchemeKind::Ideal, 128, 8, "LRU", 2, 1);
    TalusController::Config cfg;
    cfg.numLogicalParts = 1;
    TalusController ctl(std::move(phys), cfg); // 2 phys / 1 logical: OK.
    EXPECT_EQ(ctl.numLogicalParts(), 1u);
}

TEST(TalusController, DegenerateConfigOnHullVertex)
{
    auto ctl = makeIdealTalus(512, 1);
    // Allocation exactly on a hull vertex: no split needed.
    const MissCurve convex({{0, 1.0}, {256, 0.5}, {512, 0.25}});
    ctl->configure({convex}, {256});
    EXPECT_TRUE(ctl->configOf(0).degenerate);
    EXPECT_DOUBLE_EQ(ctl->routedRho(0), 1.0);
    // All capacity in the alpha shadow partition.
    EXPECT_EQ(ctl->cache().targetOf(0), 256u);
    EXPECT_EQ(ctl->cache().targetOf(1), 0u);
}

TEST(TalusController, ConvexCurveSplitStillMatchesCurve)
{
    // Between vertices of an already-convex curve Talus still splits,
    // but the interpolation equals the curve itself — no change in
    // promised performance (hull == curve).
    auto ctl = makeIdealTalus(512, 1);
    const MissCurve convex({{0, 1.0}, {256, 0.5}, {512, 0.25}});
    ctl->configure({convex}, {300});
    const TalusConfig& cfg = ctl->configOf(0);
    EXPECT_FALSE(cfg.degenerate);
    EXPECT_NEAR(cfg.predictedMisses(convex), convex.at(300), 1e-9);
}

TEST(TalusController, SplitsAcrossCliff)
{
    auto ctl = makeIdealTalus(512, 1, 0.0);
    // Cliff at 400 lines.
    const MissCurve cliff(
        {{0, 1.0}, {100, 0.9}, {200, 0.9}, {300, 0.9}, {400, 0.1},
         {512, 0.1}});
    ctl->configure({cliff}, {300});
    const TalusConfig& cfg = ctl->configOf(0);
    EXPECT_FALSE(cfg.degenerate);
    EXPECT_DOUBLE_EQ(cfg.alpha, 0.0);
    EXPECT_DOUBLE_EQ(cfg.beta, 400.0);
    // rho = (400-300)/400 = 0.25; s1 = 0, s2 = 300.
    EXPECT_NEAR(cfg.rho, 0.25, 1e-9);
    EXPECT_EQ(ctl->cache().targetOf(0), 0u);
    EXPECT_EQ(ctl->cache().targetOf(1), 300u);
}

TEST(TalusController, EndToEndScanLandsOnHull)
{
    // The flagship check: a cyclic scan of W=1024 lines under LRU has
    // a hard cliff at W. At s = W/2 plain LRU gets ~0 hits; Talus
    // must land near the hull: miss ratio ~ 1 - s/W (+ margin).
    const uint64_t w = 1024;
    const MissCurve curve = scanCurve(w, 2048);

    auto ctl = makeIdealTalus(/*capacity=*/512, 1, 0.05);
    ctl->configure({curve}, {512});

    CyclicScan scan(w);
    // Warmup.
    for (uint64_t i = 0; i < w * 20; ++i)
        ctl->access(scan.next(), 0);
    ctl->cache().stats().reset();
    // Measure.
    for (uint64_t i = 0; i < w * 40; ++i)
        ctl->access(scan.next(), 0);

    const double measured =
        static_cast<double>(ctl->logicalMisses(0)) /
        static_cast<double>(ctl->logicalAccesses(0));
    const double promised = ConvexHull(curve).at(512);
    // Within a few points of the hull (margin costs a little).
    EXPECT_NEAR(measured, promised, 0.08);
    // And dramatically better than plain LRU (miss ratio ~1).
    EXPECT_LT(measured, 0.65);
}

TEST(TalusController, EndToEndInterpolationAcrossSizes)
{
    // Sweep several sizes along the cliff; measured miss ratios must
    // decrease roughly linearly (the hull is the diagonal).
    const uint64_t w = 512;
    const MissCurve curve = scanCurve(w, 1024);

    double prev = 1.1;
    for (uint64_t s : {128u, 256u, 384u}) {
        auto ctl = makeIdealTalus(s, 1, 0.05);
        ctl->configure({curve}, {s});
        CyclicScan scan(w);
        for (uint64_t i = 0; i < w * 15; ++i)
            ctl->access(scan.next(), 0);
        ctl->cache().stats().reset();
        for (uint64_t i = 0; i < w * 30; ++i)
            ctl->access(scan.next(), 0);
        const double measured =
            static_cast<double>(ctl->logicalMisses(0)) /
            static_cast<double>(ctl->logicalAccesses(0));
        const double promised = ConvexHull(curve).at(
            static_cast<double>(s));
        EXPECT_NEAR(measured, promised, 0.1) << "s=" << s;
        EXPECT_LT(measured, prev);
        prev = measured;
    }
}

TEST(TalusController, TwoLogicalPartitionsIsolated)
{
    auto ctl = makeIdealTalus(1024, 2);
    const MissCurve convex({{0, 1.0}, {512, 0.3}, {1024, 0.1}});
    ctl->configure({convex, convex}, {512, 512});

    Rng rng(3);
    for (int i = 0; i < 50000; ++i) {
        ctl->access(rng.below(600), 0);
        ctl->access((1ull << 30) + rng.below(600), 1);
    }
    EXPECT_GT(ctl->logicalAccesses(0), 0u);
    EXPECT_GT(ctl->logicalAccesses(1), 0u);
    // Both partitions behave the same (same curve, same allocation).
    const double mr0 = static_cast<double>(ctl->logicalMisses(0)) /
                       static_cast<double>(ctl->logicalAccesses(0));
    const double mr1 = static_cast<double>(ctl->logicalMisses(1)) /
                       static_cast<double>(ctl->logicalAccesses(1));
    EXPECT_NEAR(mr0, mr1, 0.05);
}

TEST(TalusController, WayCoarseningRecomputesRho)
{
    // Way partitioning rounds shadow sizes to whole ways; the routed
    // rho must be recomputed as s1_coarse / alpha (Sec. VI-B).
    auto phys = makePartitionedCache(SchemeKind::Way, 1024, 16, "LRU", 2,
                                     13);
    TalusController::Config cfg;
    cfg.numLogicalParts = 1;
    cfg.margin = 0.0;
    cfg.recomputeFromCoarsened = true;
    TalusController ctl(std::move(phys), cfg);

    // A convex knee at 128 lines followed by a cliff at 768 so that
    // alpha > 0 (with alpha = 0 the recompute is undefined and Talus
    // keeps the analytic rho).
    const MissCurve cliff({{0, 1.0}, {128, 0.5}, {256, 0.45},
                           {512, 0.44}, {768, 0.1}, {1024, 0.09}});
    ctl.configure({cliff}, {600});
    const TalusConfig& tc = ctl.configOf(0);
    ASSERT_FALSE(tc.degenerate);
    EXPECT_DOUBLE_EQ(tc.alpha, 128.0);
    EXPECT_DOUBLE_EQ(tc.beta, 768.0);
    // Coarsened s1 is a multiple of 64 lines (1024/16 ways).
    EXPECT_EQ(ctl.cache().targetOf(0) % 64, 0u);
    EXPECT_GT(ctl.cache().targetOf(0), 0u);
    // rho recomputed from the achieved way-granular size (margin 0).
    EXPECT_NEAR(tc.rho,
                static_cast<double>(ctl.cache().targetOf(0)) / tc.alpha,
                1e-9);
}

TEST(TalusController, LogicalStatsSumShadows)
{
    auto ctl = makeIdealTalus(256, 1);
    const MissCurve cliff({{0, 1.0}, {128, 0.9}, {200, 0.1}, {256, 0.1}});
    ctl->configure({cliff}, {160});
    for (Addr a = 0; a < 5000; ++a)
        ctl->access(a % 300, 0);
    const CacheStats& stats = ctl->cache().stats();
    EXPECT_EQ(ctl->logicalAccesses(0),
              stats.accesses(0) + stats.accesses(1));
    EXPECT_EQ(ctl->logicalAccesses(0), 5000u);
}

TEST(TalusControllerDeathTest, ConfigureRejectsWrongAllocationCount)
{
    auto ctl = makeIdealTalus(512, 2);
    const MissCurve convex({{0, 1.0}, {256, 0.5}, {512, 0.25}});
    // Two logical partitions need two allocations.
    EXPECT_DEATH(ctl->configure({convex, convex}, {256}),
                 "allocations");
}

TEST(TalusControllerDeathTest, ConfigureRejectsOverCommittedSum)
{
    auto ctl = makeIdealTalus(512, 2);
    const MissCurve convex({{0, 1.0}, {256, 0.5}, {512, 0.25}});
    // 300 + 300 = 600 > 512 lines of capacity.
    EXPECT_DEATH(ctl->configure({convex, convex}, {300, 300}),
                 "exceed capacity");
}

TEST(TalusController, ConvexHullsHelper)
{
    const MissCurve cliff({{0, 10}, {1, 9}, {2, 9}, {3, 1}, {4, 1}});
    const auto hulls = TalusController::convexHulls({cliff, cliff});
    ASSERT_EQ(hulls.size(), 2u);
    EXPECT_TRUE(hulls[0].isConvex(1e-9));
    EXPECT_TRUE(hulls[1].isConvex(1e-9));
}

} // namespace
} // namespace talus
