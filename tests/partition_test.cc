/**
 * @file
 * Tests for partitioning schemes: way, set, Vantage, ideal, and the
 * PartitionedCacheBase factory. The key property throughout is
 * Assumption 2: a partition's miss rate must be governed by its size,
 * which requires schemes to actually enforce sizes and isolate
 * partitions.
 */

#include <gtest/gtest.h>

#include "partition/ideal_partition.h"
#include "partition/partitioned_cache.h"
#include "partition/set_partition.h"
#include "partition/vantage.h"
#include "partition/way_partition.h"
#include "policy/lru.h"
#include "policy/policy_factory.h"
#include "tests/test_util.h"

namespace talus {
namespace {

// --------------------------------------------------------------- Way

TEST(WayPartition, CoarsensToWholeWays)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16;
    auto scheme = std::make_unique<WayPartition>(2);
    WayPartition* way = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));

    // 25% / 75% split in lines -> 4 / 12 ways.
    cache.setTargets({256, 768});
    EXPECT_EQ(way->ways(0), 4u);
    EXPECT_EQ(way->ways(1), 12u);
    EXPECT_EQ(way->target(0), 4u * 64);
    EXPECT_EQ(way->target(1), 12u * 64);
}

TEST(WayPartition, UnevenTargetsRoundSensibly)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16;
    auto scheme = std::make_unique<WayPartition>(3);
    WayPartition* way = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({300, 300, 424});
    EXPECT_EQ(way->ways(0) + way->ways(1) + way->ways(2), 16u);
    EXPECT_GE(way->ways(0), 4u);
    EXPECT_GE(way->ways(2), 6u);
}

TEST(WayPartition, IsolatesPartitions)
{
    // Partition 1's thrashing scan must not evict partition 0's hot
    // working set: part 0's hit ratio with the thrasher present must
    // match its hit ratio running alone.
    auto hot = test::randomTrace(20000, 100, 1);

    auto part0_hit_ratio = [&](bool with_thrasher) {
        SetAssocCache::Config cfg;
        cfg.numSets = 32;
        cfg.numWays = 8;
        SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                            std::make_unique<WayPartition>(2));
        cache.setTargets({128, 128}); // 4 ways each.
        for (Addr a : hot)
            cache.access(a, 0);
        if (with_thrasher) {
            for (Addr a : test::scanTrace(50000, 4096))
                cache.access(a + (1ull << 30), 1);
        }
        cache.stats().reset();
        for (Addr a : hot)
            cache.access(a, 0);
        return static_cast<double>(cache.stats().totalHits()) /
               static_cast<double>(cache.stats().totalAccesses());
    };

    const double solo = part0_hit_ratio(false);
    const double contended = part0_hit_ratio(true);
    EXPECT_GT(solo, 0.7); // Sanity: the hot set mostly fits.
    EXPECT_NEAR(contended, solo, 0.02);
}

TEST(WayPartition, ZeroWaysBypasses)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 8;
    cfg.numWays = 4;
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::make_unique<WayPartition>(2));
    cache.setTargets({0, 32});
    for (Addr a = 0; a < 100; ++a)
        cache.access(a, 0);
    EXPECT_EQ(cache.stats().totalHits(), 0u);
    EXPECT_GT(cache.stats().bypasses(), 0u);
    EXPECT_EQ(cache.countLines(0), 0u);
}

TEST(WayPartition, OccupancyTracksInsertions)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 16;
    cfg.numWays = 8;
    auto scheme = std::make_unique<WayPartition>(2);
    WayPartition* way = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({64, 64});
    for (Addr a = 0; a < 1000; ++a)
        cache.access(a, a % 2);
    EXPECT_EQ(way->occupancy(0), cache.countLines(0));
    EXPECT_EQ(way->occupancy(1), cache.countLines(1));
    EXPECT_LE(way->occupancy(0), way->target(0));
}

// --------------------------------------------------------------- Set

TEST(SetPartition, SetIndexStaysInRange)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 4;
    auto scheme = std::make_unique<SetPartition>(2);
    SetPartition* sp = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({64, 192}); // 16 / 48 sets.
    EXPECT_EQ(sp->sets(0), 16u);
    EXPECT_EQ(sp->sets(1), 48u);
    for (Addr a = 0; a < 5000; ++a) {
        EXPECT_LT(sp->setIndex(a, 0), 16u);
        const uint32_t s1 = sp->setIndex(a, 1);
        EXPECT_GE(s1, 16u);
        EXPECT_LT(s1, 64u);
    }
}

TEST(SetPartition, IsolatesPartitions)
{
    auto hot = test::randomTrace(20000, 100, 2);

    auto part0_hit_ratio = [&](bool with_thrasher) {
        SetAssocCache::Config cfg;
        cfg.numSets = 64;
        cfg.numWays = 4;
        SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                            std::make_unique<SetPartition>(2));
        cache.setTargets({128, 128});
        for (Addr a : hot)
            cache.access(a, 0);
        if (with_thrasher) {
            for (Addr a : test::scanTrace(50000, 4096))
                cache.access(a + (1ull << 30), 1);
        }
        cache.stats().reset();
        for (Addr a : hot)
            cache.access(a, 0);
        return static_cast<double>(cache.stats().totalHits()) /
               static_cast<double>(cache.stats().totalAccesses());
    };

    const double solo = part0_hit_ratio(false);
    const double contended = part0_hit_ratio(true);
    EXPECT_GT(solo, 0.7);
    EXPECT_NEAR(contended, solo, 0.02);
}

TEST(SetPartition, WorkedExampleRatioFromPaper)
{
    // Fig. 2: Talus splits a 4MB cache by sets at a 1:2 ratio
    // (2/3MB : 10/3MB scaled). Check the apportionment math at the
    // same ratio: 1/6 and 5/6 of capacity.
    SetAssocCache::Config cfg;
    cfg.numSets = 96;
    cfg.numWays = 4;
    auto scheme = std::make_unique<SetPartition>(2);
    SetPartition* sp = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({64, 320}); // 1/6 and 5/6 of 384 lines.
    EXPECT_EQ(sp->sets(0), 16u);
    EXPECT_EQ(sp->sets(1), 80u);
}

// ----------------------------------------------------------- Vantage

TEST(Vantage, TracksOccupancyNearTargets)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16; // 1024 lines.
    auto scheme = std::make_unique<VantageScheme>(2);
    VantageScheme* v = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    // 90% managed: 614 / 307 lines.
    cache.setTargets({614, 307});

    Rng rng(3);
    for (int i = 0; i < 200000; ++i) {
        cache.access(rng.below(4096), 0);
        cache.access((1ull << 30) + rng.below(4096), 1);
    }
    // Managed partitions should sit near their targets (within 15%).
    EXPECT_NEAR(static_cast<double>(v->occupancy(0)), 614.0, 614 * 0.15);
    EXPECT_NEAR(static_cast<double>(v->occupancy(1)), 307.0, 307 * 0.15);
    // The unmanaged region absorbs the rest.
    EXPECT_GT(v->unmanagedLines(), 0u);
}

TEST(Vantage, AsymmetricSizesGiveAsymmetricHitRates)
{
    // Two identical random streams; the bigger partition must hit
    // more (Assumption 2: size determines miss rate).
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16;
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::make_unique<VantageScheme>(2));
    cache.setTargets({768, 153});

    Rng rng(7);
    for (int i = 0; i < 300000; ++i) {
        cache.access(rng.below(1024), 0);
        cache.access((1ull << 30) + rng.below(1024), 1);
    }
    const auto& stats = cache.stats();
    const double hr0 = static_cast<double>(stats.hits(0)) /
                       static_cast<double>(stats.accesses(0));
    const double hr1 = static_cast<double>(stats.hits(1)) /
                       static_cast<double>(stats.accesses(1));
    EXPECT_GT(hr0, hr1 + 0.1);
}

TEST(Vantage, PromotionRecoversUnmanagedLines)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 16;
    cfg.numWays = 8;
    auto scheme = std::make_unique<VantageScheme>(1);
    VantageScheme* v = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({64}); // Half the cache managed.
    // Touch a working set bigger than the target so demotions happen,
    // then re-touch: promotions must occur without inflating
    // occupancy beyond bounds.
    for (int round = 0; round < 50; ++round) {
        for (Addr a = 0; a < 96; ++a)
            cache.access(a, 0);
    }
    EXPECT_LE(v->occupancy(0), 64u + cfg.numWays);
    EXPECT_EQ(v->occupancy(0), cache.countLines(0));
}

// ------------------------------------------------------------- Ideal

TEST(Ideal, ExactCapacities)
{
    IdealPartitionedCache cache(1000, 2);
    cache.setTargets({100, 900});
    EXPECT_EQ(cache.targetOf(0), 100u);
    EXPECT_EQ(cache.targetOf(1), 900u);
    for (Addr a = 0; a < 5000; ++a) {
        cache.access(a % 150, 0);
        cache.access((1ull << 20) + a % 150, 1);
    }
    EXPECT_EQ(cache.occupancy(0), 100u);
    EXPECT_EQ(cache.occupancy(1), 150u);
    // Partition 1 fits its working set entirely; partition 0 does not.
    EXPECT_GT(cache.stats().hits(1), cache.stats().hits(0));
}

TEST(Ideal, RetargetingMovesCapacity)
{
    IdealPartitionedCache cache(100, 2);
    cache.setTargets({90, 10});
    for (Addr a = 0; a < 90; ++a)
        cache.access(a, 0);
    EXPECT_EQ(cache.occupancy(0), 90u);
    cache.setTargets({10, 90});
    EXPECT_EQ(cache.occupancy(0), 10u); // Shrink evicts immediately.
}

// ----------------------------------------------------------- Factory

TEST(Factory, ParsesSchemeNames)
{
    EXPECT_EQ(parseSchemeKind("Way"), SchemeKind::Way);
    EXPECT_EQ(parseSchemeKind("Set"), SchemeKind::Set);
    EXPECT_EQ(parseSchemeKind("Vantage"), SchemeKind::Vantage);
    EXPECT_EQ(parseSchemeKind("Ideal"), SchemeKind::Ideal);
    EXPECT_EQ(parseSchemeKind("Unpartitioned"),
              SchemeKind::Unpartitioned);
}

class FactorySchemeTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(FactorySchemeTest, BuildsWorkingCache)
{
    auto cache = makePartitionedCache(GetParam(), 1024, 16, "LRU", 2, 9);
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->numPartitions(), 2u);
    EXPECT_EQ(cache->capacityLines(), 1024u);
    cache->setTargets({512, 256});
    for (Addr a = 0; a < 10000; ++a)
        cache->access(a % 400, a % 2);
    EXPECT_EQ(cache->stats().totalAccesses(), 10000u);
    EXPECT_GT(cache->stats().totalHits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FactorySchemeTest,
                         ::testing::Values(SchemeKind::Unpartitioned,
                                           SchemeKind::Way, SchemeKind::Set,
                                           SchemeKind::Vantage,
                                           SchemeKind::Ideal));

TEST(Factory, SchemeNamesExposed)
{
    EXPECT_STREQ(makePartitionedCache(SchemeKind::Way, 256, 8, "LRU", 2)
                     ->schemeName(),
                 "Way");
    EXPECT_STREQ(makePartitionedCache(SchemeKind::Ideal, 256, 8, "LRU", 2)
                     ->schemeName(),
                 "Ideal");
}

} // namespace
} // namespace talus
