/**
 * @file
 * Robustness and failure-injection tests: multiprogram runs across
 * every scheme/allocator combination, the paper's low-memory-
 * intensity caveat (Sec. VII-B), and the library's fatal/panic
 * contracts on malformed inputs.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/allocator_factory.h"
#include "policy/policy_factory.h"
#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "core/talus_controller.h"
#include "monitor/mattson_curve.h"
#include "sim/metrics.h"
#include "sim/multi_prog_sim.h"
#include "workload/spec_suite.h"

namespace talus {
namespace {

std::vector<const AppSpec*>
mix(const std::vector<std::string>& names)
{
    std::vector<const AppSpec*> apps;
    for (const auto& name : names)
        apps.push_back(&findApp(name));
    return apps;
}

// ------------------------------------------ multiprog configuration grid

struct GridCase
{
    SchemeKind scheme;
    bool talus;
    const char* allocator;
};

class MultiProgGridTest : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(MultiProgGridTest, RunsToCompletionWithSaneResults)
{
    const GridCase& c = GetParam();
    const Scale scale(64);
    MultiProgConfig cfg;
    cfg.llcLines = 512;
    cfg.instrPerApp = 400'000;
    cfg.reconfigCycles = 150'000;
    cfg.scheme = c.scheme;
    cfg.useTalus = c.talus;
    cfg.allocateOnHulls = c.talus;
    cfg.allocatorName = c.allocator;
    const auto result =
        runMultiProg(mix({"astar", "gcc", "milc"}), cfg, scale);
    ASSERT_EQ(result.apps.size(), 3u);
    for (const auto& app : result.apps) {
        EXPECT_GT(app.ipc, 0.01);
        EXPECT_LT(app.ipc, 3.0);
        EXPECT_GE(app.missRatio, 0.0);
        EXPECT_LE(app.missRatio, 1.0);
    }
    if (std::string(c.allocator) != "") {
        EXPECT_GT(result.reconfigurations, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiProgGridTest,
    ::testing::Values(
        GridCase{SchemeKind::Vantage, true, "HillClimb"},
        GridCase{SchemeKind::Vantage, true, "Peekahead"},
        GridCase{SchemeKind::Vantage, true, "Fair"},
        GridCase{SchemeKind::Vantage, false, "Lookahead"},
        GridCase{SchemeKind::Vantage, false, "Peekahead"},
        GridCase{SchemeKind::Futility, true, "HillClimb"},
        GridCase{SchemeKind::Futility, false, "Lookahead"},
        GridCase{SchemeKind::Way, true, "HillClimb"},
        GridCase{SchemeKind::Way, false, "Lookahead"},
        GridCase{SchemeKind::Set, false, "Lookahead"},
        GridCase{SchemeKind::Unpartitioned, false, ""}));

// --------------------------------------------- low-intensity caveat

TEST(LowIntensity, PovrayClassAppsAreHarmless)
{
    // Sec. VII-B: apps with <0.1 APKI violate the statistical
    // assumptions (too few accesses for uniformity) but are
    // inconsequential — their IPC barely depends on the cache at all.
    const AppSpec& povray = findApp("povray");
    const CoreModel model(povray);
    // Even a 100% miss rate costs under ~4% IPC vs a perfect cache.
    EXPECT_GT(model.ipcAt(1.0) / model.ipcAt(0.0), 0.96);
}

TEST(LowIntensity, MixWithLowIntensityAppCompletes)
{
    const Scale scale(64);
    MultiProgConfig cfg;
    cfg.llcLines = 512;
    cfg.instrPerApp = 200'000;
    cfg.reconfigCycles = 100'000;
    cfg.scheme = SchemeKind::Vantage;
    cfg.useTalus = true;
    cfg.allocateOnHulls = true;
    cfg.allocatorName = "HillClimb";
    const auto result =
        runMultiProg(mix({"povray", "omnetpp"}), cfg, scale);
    EXPECT_GT(result.apps[0].ipc, 0.5); // povray barely touches LLC.
    EXPECT_GT(result.apps[1].ipc, 0.05);
}

// ------------------------------------------------- failure injection

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, EmptyMissCurveRejected)
{
    EXPECT_DEATH(MissCurve(std::vector<CurvePoint>{}), "at least one");
}

TEST(RobustnessDeathTest, NegativeSizeRejected)
{
    EXPECT_DEATH(MissCurve({{-1.0, 5.0}}), "negative");
}

TEST(RobustnessDeathTest, NonFiniteMissesRejected)
{
    EXPECT_DEATH(MissCurve({{0.0, std::nan("")}}), "finite");
}

TEST(RobustnessDeathTest, OverCommittedTalusConfigureRejected)
{
    auto phys =
        makePartitionedCache(SchemeKind::Ideal, 128, 8, "LRU", 2, 1);
    TalusController::Config cfg;
    cfg.numLogicalParts = 1;
    TalusController ctl(std::move(phys), cfg);
    const MissCurve curve({{0, 1.0}, {128, 0.1}});
    EXPECT_DEATH(ctl.configure({curve}, {999}), "exceed capacity");
}

TEST(RobustnessDeathTest, WrongCurveCountRejected)
{
    auto phys =
        makePartitionedCache(SchemeKind::Ideal, 128, 8, "LRU", 4, 1);
    TalusController::Config cfg;
    cfg.numLogicalParts = 2;
    TalusController ctl(std::move(phys), cfg);
    const MissCurve curve({{0, 1.0}, {128, 0.1}});
    EXPECT_DEATH(ctl.configure({curve}, {64, 64}), "curves");
}

TEST(RobustnessDeathTest, MismatchedShadowPartitionCountRejected)
{
    auto phys =
        makePartitionedCache(SchemeKind::Ideal, 128, 8, "LRU", 3, 1);
    TalusController::Config cfg;
    cfg.numLogicalParts = 2; // Needs 4 physical partitions, not 3.
    EXPECT_DEATH(TalusController(std::move(phys), cfg), "2x");
}

TEST(RobustnessDeathTest, UnknownNamesAreFatal)
{
    EXPECT_DEATH((void)makePolicy("NotAPolicy"), "unknown");
    EXPECT_DEATH((void)makeAllocator("NotAnAllocator"), "unknown");
    EXPECT_DEATH((void)parseSchemeKind("NotAScheme"), "unknown");
}

// --------------------------------------------- monitored-curve hygiene

TEST(Robustness, HullOfNoisyMonitoredCurveIsUsable)
{
    // Even a deliberately noisy (non-monotone) curve must produce a
    // valid convex hull and a safe Talus configuration.
    const MissCurve noisy({{0, 1.0}, {64, 0.7}, {128, 0.75},
                           {192, 0.3}, {256, 0.35}, {320, 0.1}});
    const ConvexHull hull(noisy);
    EXPECT_TRUE(hull.hull().isConvex(1e-9));
    for (double s = 0; s <= 320; s += 16) {
        const TalusConfig cfg = computeTalusConfig(hull, s);
        EXPECT_GE(cfg.rho, 0.0);
        EXPECT_LE(cfg.rho, 1.0);
        EXPECT_NEAR(cfg.s1 + cfg.s2, s, 1e-9);
    }
}

TEST(Robustness, MetricsRejectMismatchedSizes)
{
    EXPECT_DEATH((void)weightedSpeedup({1.0}, {1.0, 2.0}), "mismatch");
}

} // namespace
} // namespace talus
