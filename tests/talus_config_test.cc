/**
 * @file
 * Tests for the Talus shadow-partition math (Theorems 4-6, Lemma 5),
 * anchored on the paper's worked example of Sec. III / Fig. 2.
 */

#include <gtest/gtest.h>

#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "util/rng.h"

namespace talus {
namespace {

MissCurve
exampleCurve()
{
    return MissCurve({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                      {5, 3}, {6, 3}, {8, 3}, {10, 3}});
}

TEST(TalusConfig, WorkedExampleFromSectionIII)
{
    // 4MB cache on the Fig. 3 curve: alpha=2MB, beta=5MB, rho=1/3,
    // s1=2/3MB, s2=10/3MB, predicted 6 MPKI.
    const ConvexHull hull(exampleCurve());
    const TalusConfig cfg = computeTalusConfig(hull, 4.0, /*margin=*/0.0);

    EXPECT_FALSE(cfg.degenerate);
    EXPECT_DOUBLE_EQ(cfg.alpha, 2.0);
    EXPECT_DOUBLE_EQ(cfg.beta, 5.0);
    EXPECT_NEAR(cfg.rho, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(cfg.s1, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(cfg.s2, 10.0 / 3.0, 1e-12);
    EXPECT_NEAR(cfg.predictedMisses(exampleCurve()), 6.0, 1e-9);

    // The beta shadow partition emulates beta: s2 / (1-rho) = 5MB.
    EXPECT_NEAR(cfg.s2 / (1.0 - cfg.rho), 5.0, 1e-9);
    // The alpha shadow partition emulates alpha: s1 / rho = 2MB.
    EXPECT_NEAR(cfg.s1 / cfg.rho, 2.0, 1e-9);
}

TEST(TalusConfig, MarginBumpsRhoOnly)
{
    const ConvexHull hull(exampleCurve());
    const TalusConfig plain = computeTalusConfig(hull, 4.0, 0.0);
    const TalusConfig safe = computeTalusConfig(hull, 4.0, 0.05);
    EXPECT_NEAR(safe.rho, plain.rho * 1.05, 1e-12);
    EXPECT_DOUBLE_EQ(safe.s1, plain.s1);
    EXPECT_DOUBLE_EQ(safe.s2, plain.s2);
    // Effective alpha shrinks, effective beta grows (Sec. VI-B).
    EXPECT_LT(safe.s1 / safe.rho, plain.alpha);
    EXPECT_GT(safe.s2 / (1 - safe.rho), plain.beta);
}

TEST(TalusConfig, DegenerateOnHullVertex)
{
    const ConvexHull hull(exampleCurve());
    const TalusConfig cfg = computeTalusConfig(hull, 5.0);
    EXPECT_TRUE(cfg.degenerate);
    EXPECT_DOUBLE_EQ(cfg.rho, 1.0);
    EXPECT_DOUBLE_EQ(cfg.s1, 5.0);
    EXPECT_DOUBLE_EQ(cfg.s2, 0.0);
}

TEST(TalusConfig, DegenerateBeyondCurve)
{
    const ConvexHull hull(exampleCurve());
    const TalusConfig cfg = computeTalusConfig(hull, 64.0);
    EXPECT_TRUE(cfg.degenerate);
    EXPECT_DOUBLE_EQ(cfg.s1, 64.0);
}

TEST(TalusConfig, DegenerateAtZero)
{
    const ConvexHull hull(exampleCurve());
    const TalusConfig cfg = computeTalusConfig(hull, 0.0);
    EXPECT_TRUE(cfg.degenerate);
}

TEST(TalusConfig, InterpolatedMissesMatchesHull)
{
    const ConvexHull hull(exampleCurve());
    for (double s = 0.0; s <= 10.0; s += 0.25)
        EXPECT_NEAR(interpolatedMisses(hull, s), hull.at(s), 1e-9)
            << "s=" << s;
}

TEST(TalusConfig, RandomCurvesSatisfyLemma5)
{
    // Property test: on random non-convex curves, the configuration
    // always satisfies s1 + s2 = s, rho in [0,1], the emulation
    // identities, and Eq. 5 equals the hull.
    Rng rng(47);
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<CurvePoint> pts;
        double value = 50.0 + static_cast<double>(rng.below(50));
        const int n = 4 + static_cast<int>(rng.below(20));
        for (int i = 0; i < n; ++i) {
            pts.push_back({static_cast<double>(i * 3), value});
            // Mix plateaus and drops to create cliffs.
            if (rng.chance(0.5))
                value -= static_cast<double>(rng.below(25));
            if (value < 0)
                value = 0;
        }
        const MissCurve curve(pts);
        const ConvexHull hull(curve);
        const double max_s = curve.maxSize();

        for (int k = 0; k < 10; ++k) {
            const double s = rng.unit() * max_s;
            const TalusConfig cfg = computeTalusConfig(hull, s, 0.0);
            EXPECT_NEAR(cfg.s1 + cfg.s2, s, 1e-9);
            EXPECT_GE(cfg.rho, 0.0);
            EXPECT_LE(cfg.rho, 1.0);
            if (!cfg.degenerate) {
                EXPECT_NEAR(cfg.s1 / cfg.rho, cfg.alpha, 1e-6);
                EXPECT_NEAR(cfg.s2 / (1.0 - cfg.rho), cfg.beta, 1e-6);
                EXPECT_NEAR(cfg.predictedMisses(curve), hull.at(s),
                            1e-6);
                // Talus never promises worse than the raw curve.
                EXPECT_LE(hull.at(s), curve.at(s) + 1e-9);
            }
        }
    }
}

TEST(TalusConfig, PredictedMissesDegenerateUsesRawCurve)
{
    const ConvexHull hull(exampleCurve());
    const TalusConfig cfg = computeTalusConfig(hull, 5.0);
    EXPECT_NEAR(cfg.predictedMisses(exampleCurve()), 3.0, 1e-9);
}

} // namespace
} // namespace talus
