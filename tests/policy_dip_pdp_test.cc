/**
 * @file
 * Tests for DIP (bimodal insertion + dueling) and PDP (protecting
 * distances + bypass).
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.h"
#include "policy/dip.h"
#include "policy/pdp.h"
#include "policy/policy_factory.h"
#include "tests/test_util.h"

namespace talus {
namespace {

SetAssocCache::Config
plainConfig(uint32_t sets, uint32_t ways)
{
    SetAssocCache::Config cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.hashSetIndex = false;
    return cfg;
}

TEST(Dip, ThrashResistantOnCyclicScan)
{
    // Scan 1.5x the cache size: LRU gets 0 steady-state hits, DIP
    // (via BIP) retains a resident fraction.
    auto trace = test::scanTrace(150000, 192);

    auto run = [&](const std::string& policy) {
        SetAssocCache cache(plainConfig(16, 8), makePolicy(policy, 3));
        for (Addr a : trace)
            cache.access(a);
        return cache.stats().totalHits();
    };
    const uint64_t lru = run("LRU");
    const uint64_t dip = run("DIP");
    EXPECT_LT(lru, 1000u);        // LRU thrashes.
    EXPECT_GT(dip, lru + 20000u); // DIP keeps a big resident set.
}

TEST(Dip, MatchesLruOnLruFriendlyWorkload)
{
    // Small reused working set: DIP should follow LRU insertion and
    // match LRU hits closely.
    auto trace = test::randomTrace(60000, 64, 3);

    auto run = [&](const std::string& policy) {
        SetAssocCache cache(plainConfig(16, 8), makePolicy(policy, 3));
        for (Addr a : trace)
            cache.access(a);
        return cache.stats().totalHits();
    };
    const double lru = static_cast<double>(run("LRU"));
    const double dip = static_cast<double>(run("DIP"));
    EXPECT_GT(dip, lru * 0.95);
}

TEST(Pdp, ProtectsAndBypasses)
{
    PdpPolicy pdp;
    pdp.init(1, 4);
    // Fill the set; all lines freshly protected.
    for (uint32_t line = 0; line < 4; ++line)
        pdp.onInsert(line, line, 0);
    const uint32_t cands[] = {0, 1, 2, 3};
    // With dp = ways = 4 and no set accesses since insertion, all
    // lines are protected: PDP bypasses.
    EXPECT_EQ(pdp.victim(cands, 4), kBypassLine);
}

TEST(Pdp, EvictsOnceProtectionExpires)
{
    PdpPolicy pdp;
    pdp.init(1, 2);
    pdp.onInsert(0, 100, 0);
    pdp.onInsert(1, 101, 0);
    // Age the set well past dp (= ways = 2 until recompute).
    for (int i = 0; i < 10; ++i)
        pdp.onMiss(200 + i, 0, 0);
    const uint32_t cands[] = {0, 1};
    EXPECT_NE(pdp.victim(cands, 2), kBypassLine);
}

TEST(Pdp, BypassCountsReportedByCache)
{
    // 1 set x 4 ways with dp pinned above the hot lines' reuse
    // distance: the three cycling hot lines stay protected, the
    // fourth way's cold line stays protected for 16 set-accesses, so
    // most cold insertions find every candidate protected and bypass.
    PdpPolicy::Config cfg;
    cfg.recomputeEvery = ~0ull; // Never recompute.
    cfg.initialDp = 16;
    SetAssocCache cache(plainConfig(1, 4),
                        std::make_unique<PdpPolicy>(cfg));
    Addr cold = 1000;
    for (int round = 0; round < 2000; ++round) {
        cache.access(1);
        cache.access(2);
        cache.access(3);
        if (round % 4 == 3)
            cache.access(cold++);
    }
    EXPECT_GT(cache.stats().bypasses(), 100u);
    // The hot lines keep hitting.
    EXPECT_GT(cache.stats().totalHits(), 5000u);
}

TEST(Pdp, ThrashResistantOnCyclicScan)
{
    // Like DIP, PDP must beat LRU on a thrashing scan by holding a
    // protected fraction in place.
    auto trace = test::scanTrace(200000, 256);

    auto run = [&](const std::string& policy) {
        SetAssocCache cache(plainConfig(16, 8), makePolicy(policy, 3));
        for (Addr a : trace)
            cache.access(a);
        return cache.stats().totalHits();
    };
    const uint64_t lru = run("LRU");
    const uint64_t pdp = run("PDP");
    EXPECT_GT(pdp, lru + 10000u);
}

TEST(Pdp, RecomputeAdjustsDp)
{
    PdpPolicy::Config cfg;
    cfg.recomputeEvery = 4096;
    cfg.sampleMod = 1; // Sample everything for a fast test.
    PdpPolicy pdp(cfg);
    pdp.init(4, 4);
    const uint32_t initial_dp = pdp.protectingDistance();

    // Drive a tight reuse loop: reuse distance (set-local) is small,
    // so the optimal dp should be small and stable.
    for (int i = 0; i < 200000; ++i) {
        const Addr a = i % 8; // 8 hot lines over 4 sets.
        const uint32_t set = a % 4;
        pdp.onMiss(a, set, 0); // Tick + observe via miss path.
    }
    EXPECT_GE(pdp.protectingDistance(), 1u);
    EXPECT_LE(pdp.protectingDistance(), 256u);
    (void)initial_dp;
}

TEST(Pdp, NextIntervalForcesRecomputeWithoutCrash)
{
    PdpPolicy pdp;
    pdp.init(2, 2);
    pdp.nextInterval(); // No samples yet: must not crash or change dp.
    EXPECT_EQ(pdp.protectingDistance(), 2u);
}

} // namespace
} // namespace talus
