/**
 * @file
 * Observability layer: metric primitives, registry snapshot/delta
 * semantics, exporters, and the engine instrumentation contracts —
 * including the two guarantees the layer is sold on: quantile
 * estimates within the documented 1/32 bound of the exact-sort
 * oracle, and metricsEnabled=false leaving the engine's hit/miss
 * stream bit-identical. The `shard` label puts the concurrency tests
 * (multi-threaded recording, snapshots under a live sharded engine)
 * under the ThreadSanitizer CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/talus.h"
#include "sim/serving_harness.h"
#include "util/rng.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

// ---------------------------------------------------------------------
// Primitives.

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastValueWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-1.25);
    EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BucketGeometryRoundTrips)
{
    // Every value must land in a bucket whose inclusive upper bound
    // covers it, and (above the exact region) whose width is at most
    // 1/32 of its lower bound — the basis of the quantile bound.
    const std::vector<uint64_t> probes = {
        0,  1,  31, 32, 33, 63, 64, 65, 100, 1000, 4096, 4097,
        (1ull << 20) - 1, 1ull << 20, 123456789ull,
        1ull << 40, (1ull << 63), ~0ull};
    for (uint64_t v : probes) {
        const uint32_t i = Histogram::bucketIndex(v);
        ASSERT_LT(i, Histogram::kBuckets) << "value " << v;
        EXPECT_GE(Histogram::bucketUpperBound(i), v) << "value " << v;
        if (i > 0) {
            // The previous bucket must NOT cover v (buckets ascend).
            EXPECT_LT(Histogram::bucketUpperBound(i - 1), v)
                << "value " << v;
        }
        if (v < Histogram::kSubBuckets) {
            EXPECT_EQ(Histogram::bucketUpperBound(i), v);
        } else {
            const uint64_t lb = Histogram::bucketUpperBound(i - 1) + 1;
            const uint64_t width = Histogram::bucketUpperBound(i) - lb;
            EXPECT_LE(width * Histogram::kSubBuckets, lb)
                << "value " << v;
        }
    }
}

TEST(HistogramTest, ExactBelowSubBucketRegion)
{
    Histogram h;
    for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), Histogram::kSubBuckets);
    // With 32 samples 0..31, the nearest-rank q quantile is sample
    // ceil(32q)-1, and the exact region reports it exactly.
    EXPECT_EQ(h.quantile(0.5), 15.0);
    EXPECT_EQ(h.quantile(1.0), 31.0);
    EXPECT_EQ(h.max(), 31u);
}

TEST(HistogramTest, QuantilesWithinBoundOfExactSortOracle)
{
    // Lognormal-ish latencies in nanoseconds; compare the histogram's
    // p50/p95/p99 against summarizeLatencies (the exact sort) — the
    // estimate must be >= the true sample and within the 1/32 bound.
    Rng rng(123);
    Histogram h;
    std::vector<double> seconds;
    for (int i = 0; i < 20'000; ++i) {
        const double x = static_cast<double>(rng.below(1'000'000)) /
                         1'000'000.0;
        const uint64_t ns =
            static_cast<uint64_t>(std::exp(8.0 + 6.0 * x));
        h.record(ns);
        seconds.push_back(static_cast<double>(ns) * 1e-9);
    }
    const LatencyStats exact = summarizeLatencies(seconds);
    const HistogramData d = h.snapshot(1e-9);
    const double bound =
        1.0 + 1.0 / Histogram::kSubBuckets + 1e-9;
    for (const auto& [q, truth] :
         {std::pair{0.50, exact.p50}, {0.95, exact.p95},
          {0.99, exact.p99}}) {
        const double est = d.quantile(q);
        EXPECT_GE(est, truth * (1.0 - 1e-12)) << "q=" << q;
        EXPECT_LE(est, truth * bound) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(d.maxValue(), exact.max);
    EXPECT_NEAR(d.mean(), exact.mean, exact.mean * 1e-9);
}

TEST(HistogramTest, ConcurrentRecordTotalsExact)
{
    // 4 writers x 50k records; after joining, count/sum/bucket totals
    // must be exact — relaxed atomics lose no updates. TSan covers
    // the snapshot-under-recording path below.
    Histogram h;
    constexpr int kThreads = 4;
    constexpr uint64_t kPer = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&h, t] {
            for (uint64_t i = 0; i < kPer; ++i)
                h.record((i % 1000) + static_cast<uint64_t>(t));
        });
    // Snapshot while writers run: values are per-bucket valid and
    // count never exceeds what was recorded.
    const HistogramData mid = h.snapshot();
    EXPECT_LE(mid.count, kThreads * kPer);
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(h.count(), kThreads * kPer);
    const HistogramData d = h.snapshot();
    uint64_t bucket_total = 0;
    for (const auto& [idx, n] : d.buckets)
        bucket_total += n;
    EXPECT_EQ(bucket_total, kThreads * kPer);
}

TEST(CounterTest, ConcurrentIncTotalsExact)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr uint64_t kPer = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (uint64_t i = 0; i < kPer; ++i)
                c.inc();
        });
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(c.value(), kThreads * kPer);
}

// ---------------------------------------------------------------------
// Registry.

TEST(RegistryTest, GetOrCreateReturnsStableIdentity)
{
    MetricRegistry reg;
    Counter& a = reg.counter("talus_test_total", "part=\"0\"");
    Counter& b = reg.counter("talus_test_total", "part=\"0\"");
    Counter& c = reg.counter("talus_test_total", "part=\"1\"");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryDeathTest, KindMismatchIsFatal)
{
    MetricRegistry reg;
    reg.counter("talus_test_total");
    EXPECT_EXIT(reg.gauge("talus_test_total"),
                ::testing::ExitedWithCode(1),
                "already registered as counter");
}

TEST(RegistryTest, LabelHelpers)
{
    EXPECT_EQ(labelPair("shard", 3), "shard=\"3\"");
    EXPECT_EQ(labelPair("engine", "talus"), "engine=\"talus\"");
    EXPECT_EQ(joinLabels("", "a=\"1\""), "a=\"1\"");
    EXPECT_EQ(joinLabels("a=\"1\"", ""), "a=\"1\"");
    EXPECT_EQ(joinLabels("a=\"1\"", "b=\"2\""), "a=\"1\",b=\"2\"");
}

TEST(RegistryTest, SnapshotFindAndCounterTotal)
{
    MetricRegistry reg;
    reg.counter("talus_hits_total", "engine=\"a\",shard=\"0\"").inc(3);
    reg.counter("talus_hits_total", "engine=\"a\",shard=\"1\"").inc(4);
    reg.counter("talus_hits_total", "engine=\"b\",shard=\"0\"").inc(9);
    reg.gauge("talus_rho", "engine=\"a\"").set(0.5);
    const MetricsSnapshot s = reg.snapshot();
    const MetricValue* m =
        s.find("talus_hits_total", "engine=\"a\",shard=\"1\"");
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->counter, 4u);
    EXPECT_EQ(s.counterTotal("talus_hits_total"), 16u);
    EXPECT_EQ(s.counterTotal("talus_hits_total", "engine=\"a\""), 7u);
    EXPECT_EQ(s.counterTotal("talus_hits_total", "engine=\"b\""), 9u);
    EXPECT_EQ(s.counterTotal("talus_absent_total"), 0u);
}

TEST(RegistryTest, DeltaSubtractsCountersKeepsGauges)
{
    MetricRegistry reg;
    Counter& c = reg.counter("talus_x_total");
    Gauge& g = reg.gauge("talus_g");
    Histogram& h = reg.histogram("talus_h", "", 1.0);
    c.inc(10);
    g.set(1.0);
    h.record(5);
    const MetricsSnapshot s1 = reg.snapshot();
    c.inc(7);
    g.set(2.5);
    h.record(100);
    h.record(5);
    // A series registered between snapshots counts from zero.
    reg.counter("talus_late_total").inc(3);
    const MetricsSnapshot s2 = reg.snapshot();
    const MetricsSnapshot d = metricsDelta(s1, s2);
    EXPECT_GT(s2.epoch, s1.epoch);
    EXPECT_EQ(d.find("talus_x_total")->counter, 7u);
    EXPECT_EQ(d.find("talus_late_total")->counter, 3u);
    EXPECT_EQ(d.find("talus_g")->gauge, 2.5);
    const HistogramData& hd = d.find("talus_h")->histogram;
    EXPECT_EQ(hd.count, 2u);
    EXPECT_EQ(hd.sum, 105u);
    uint64_t five = 0, hundred = 0;
    for (const auto& [idx, n] : hd.buckets) {
        if (idx == Histogram::bucketIndex(5))
            five = n;
        if (idx == Histogram::bucketIndex(100))
            hundred = n;
    }
    EXPECT_EQ(five, 1u);
    EXPECT_EQ(hundred, 1u);
}

// ---------------------------------------------------------------------
// Exporters.

TEST(ExporterTest, PrometheusTextShape)
{
    MetricRegistry reg;
    reg.counter("talus_hits_total", "shard=\"1\"").inc(5);
    reg.counter("talus_hits_total", "shard=\"0\"").inc(2);
    reg.gauge("talus_rho").set(0.75);
    Histogram& h = reg.histogram("talus_lat_seconds", "", 1e-9);
    h.record(10);
    h.record(1000);
    const std::string text = toPrometheusText(reg.snapshot());

    // One TYPE line per family; series sorted so families group.
    EXPECT_EQ(text.find("# TYPE talus_hits_total counter"),
              text.rfind("# TYPE talus_hits_total counter"));
    EXPECT_NE(text.find("talus_hits_total{shard=\"0\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("talus_hits_total{shard=\"1\"} 5\n"),
              std::string::npos);
    EXPECT_LT(text.find("shard=\"0\""), text.find("shard=\"1\""));
    EXPECT_NE(text.find("# TYPE talus_rho gauge"), std::string::npos);
    EXPECT_NE(text.find("# TYPE talus_lat_seconds histogram"),
              std::string::npos);
    // Cumulative buckets end at +Inf == _count.
    EXPECT_NE(text.find("talus_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("talus_lat_seconds_count 2\n"),
              std::string::npos);
}

TEST(ExporterTest, JsonLinesOneObjectPerMetric)
{
    MetricRegistry reg;
    reg.counter("talus_a_total").inc(1);
    reg.gauge("talus_b").set(2.0);
    const std::string text = toJsonLines(reg.snapshot());
    size_t lines = 0;
    for (char ch : text)
        lines += ch == '\n';
    EXPECT_EQ(lines, 2u);
    EXPECT_NE(text.find("\"name\":\"talus_a_total\""),
              std::string::npos);
    EXPECT_NE(text.find("\"kind\":\"gauge\""), std::string::npos);
}

TEST(ExporterTest, WriteMetricsFilePicksFormatByExtension)
{
    MetricRegistry reg;
    reg.counter("talus_a_total").inc(1);
    const MetricsSnapshot s = reg.snapshot();

    const std::string prom =
        ::testing::TempDir() + "/obs_test_metrics.prom";
    ASSERT_EQ(writeMetricsFile(s, prom), "");
    std::FILE* f = std::fopen(prom.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[16] = {};
    ASSERT_GT(std::fread(buf, 1, sizeof buf - 1, f), 0u);
    std::fclose(f);
    EXPECT_EQ(std::string(buf, 6), "# TYPE");

    const std::string jsonl =
        ::testing::TempDir() + "/obs_test_metrics.jsonl";
    ASSERT_EQ(writeMetricsFile(s, jsonl), "");
    f = std::fopen(jsonl.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char jbuf[2] = {};
    ASSERT_EQ(std::fread(jbuf, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(jbuf[0], '{');

    EXPECT_NE(writeMetricsFile(s, "/nonexistent-dir/x.prom"), "");
}

// ---------------------------------------------------------------------
// Engine instrumentation.

TalusCache::Config
cacheConfig(MetricRegistry* reg)
{
    TalusCache::Config cfg;
    cfg.llcLines = 2048;
    cfg.ways = 16;
    cfg.numParts = 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 5'000;
    cfg.seed = 99;
    if (reg != nullptr) {
        cfg.metricsEnabled = true;
        cfg.metrics = reg;
    }
    return cfg;
}

std::vector<Addr>
zipfTrace(uint64_t n, uint64_t seed)
{
    ZipfStream stream(1 << 13, 0.9, 0, seed);
    std::vector<Addr> addrs(n);
    stream.nextBlock(addrs.data(), n);
    return addrs;
}

TEST(CacheObsTest, CountersMatchEngineStats)
{
    MetricRegistry reg;
    TalusCache cache(cacheConfig(&reg));
    const std::vector<Addr> addrs = zipfTrace(30'000, 7);
    uint64_t hits = 0;
    for (size_t off = 0; off < addrs.size(); off += 1000)
        hits += cache.accessBatch(
            Span<const Addr>(addrs.data() + off, 1000), off % 2);
    const MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counterTotal("talus_cache_accesses_total"),
              addrs.size());
    EXPECT_EQ(s.counterTotal("talus_cache_hits_total"), hits);
    EXPECT_EQ(s.counterTotal("talus_cache_misses_total"),
              addrs.size() - hits);
    for (PartId p = 0; p < 2; ++p) {
        const TalusCache::PartStats st = cache.stats(p);
        const MetricValue* m = s.find("talus_cache_accesses_total",
                                      labelPair("part", p));
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->counter, st.accesses);
        const MetricValue* miss = s.find("talus_cache_misses_total",
                                         labelPair("part", p));
        ASSERT_NE(miss, nullptr);
        EXPECT_EQ(miss->counter, st.misses);
    }
    // The automatic control plane ran: reconfigurations counted, the
    // compute-duration histogram recorded one entry per step.
    const MetricValue* rc =
        s.find("talus_control_reconfigurations_total");
    ASSERT_NE(rc, nullptr);
    EXPECT_EQ(rc->counter, cache.reconfigurations());
    EXPECT_GT(rc->counter, 0u);
    const MetricValue* cs = s.find("talus_control_compute_seconds");
    ASSERT_NE(cs, nullptr);
    EXPECT_EQ(cs->histogram.count, cache.reconfigurations());
    // Serial path bumps the same series.
    const uint64_t before =
        s.counterTotal("talus_cache_accesses_total");
    cache.access(addrs[0], 0);
    EXPECT_EQ(reg.snapshot().counterTotal("talus_cache_accesses_total"),
              before + 1);
}

TEST(CacheObsTest, MetricsOffIsBitIdentical)
{
    // Same seed, same trace: the metrics=off engine must produce the
    // identical hit sequence (and off must register nothing).
    MetricRegistry reg;
    TalusCache on(cacheConfig(&reg));
    TalusCache off(cacheConfig(nullptr));
    const std::vector<Addr> addrs = zipfTrace(20'000, 11);
    for (size_t offi = 0; offi < addrs.size(); offi += 777) {
        const size_t n = std::min<size_t>(777, addrs.size() - offi);
        const Span<const Addr> span(addrs.data() + offi, n);
        ASSERT_EQ(on.accessBatch(span, 0), off.accessBatch(span, 0));
    }
    EXPECT_GT(reg.size(), 0u);
}

TEST(CacheObsTest, StalenessAndApplyAgeTrackEpochDeferral)
{
    // Manual control: prepare at access A, apply deferred to the next
    // epoch boundary B. The gauges must pin applyAge = B - A and
    // staleness = now - A exactly (chunks split at the boundary, so
    // the accounting is access-precise).
    MetricRegistry reg;
    TalusCache::Config cfg = cacheConfig(&reg);
    cfg.reconfigInterval = 0; // Control is explicit here.
    TalusCache cache(cfg);
    const std::vector<Addr> addrs = zipfTrace(4'096, 13);
    const Span<const Addr> kilo(addrs.data(), 1000);

    const auto gauge = [&reg](const char* name) {
        const MetricValue* m = reg.snapshot().find(name);
        return m != nullptr ? m->gauge : -1.0;
    };

    // Before any prepare, the active config is the constructor's fair
    // split: as old as the cache itself.
    cache.accessBatch(kilo, 0);
    EXPECT_EQ(gauge("talus_control_config_staleness_accesses"),
              1000.0);

    cache.prepareReconfigure();       // A = 1000.
    cache.applyReconfigureAtEpoch(512); // B = next multiple = 1024.
    cache.accessBatch(kilo, 0);       // Crosses the boundary.
    EXPECT_EQ(cache.reconfigurations(), 1u);
    EXPECT_EQ(gauge("talus_control_apply_age_accesses"), 24.0);
    // accessCount = 2000, active snapshot taken at 1000.
    EXPECT_EQ(gauge("talus_control_config_staleness_accesses"),
              1000.0);
    cache.accessBatch(kilo, 0);
    EXPECT_EQ(gauge("talus_control_config_staleness_accesses"),
              2000.0);

    // A synchronous reconfigure() applies immediately: age 0, and the
    // staleness clock restarts from the prepare point.
    cache.reconfigure(); // Prepare and apply both at 3000.
    EXPECT_EQ(gauge("talus_control_apply_age_accesses"), 0.0);
    cache.accessBatch(kilo, 0);
    EXPECT_EQ(gauge("talus_control_config_staleness_accesses"),
              1000.0);
}

TEST(ShardObsTest, SnapshotsUnderConcurrentBatchesStayMonotone)
{
    // A live sharded engine with pinned workers publishing into the
    // registry while a reader thread snapshots continuously: every
    // counter must be monotone snapshot-over-snapshot, and the final
    // totals (at quiescence) must match the engine's own stats. This
    // is the TSan-checked reader/writer path.
    MetricRegistry reg;
    ShardedTalusCache::Config cfg;
    cfg.numShards = 4;
    cfg.threads = 2;
    cfg.shard.llcLines = 1024;
    cfg.shard.ways = 16;
    cfg.shard.numParts = 1;
    cfg.shard.allocatorName = "HillClimb";
    cfg.shard.reconfigInterval = 0;
    cfg.shard.seed = 5;
    cfg.shard.metricsEnabled = true;
    cfg.shard.metrics = &reg;
    ShardedTalusCache cache(cfg);

    std::atomic<bool> stop{false};
    std::atomic<bool> monotone{true};
    std::thread reader([&] {
        MetricsSnapshot prev = reg.snapshot();
        while (!stop.load(std::memory_order_relaxed)) {
            const MetricsSnapshot cur = reg.snapshot();
            for (const MetricValue& m : cur.metrics) {
                if (m.kind != MetricKind::Counter)
                    continue;
                const MetricValue* p = prev.find(m.name, m.labels);
                if (p != nullptr && m.counter < p->counter)
                    monotone.store(false, std::memory_order_relaxed);
            }
            prev = cur;
        }
    });

    const std::vector<Addr> addrs = zipfTrace(40'000, 3);
    uint64_t hits = 0;
    for (size_t off = 0; off < addrs.size(); off += 4096) {
        const size_t n = std::min<size_t>(4096, addrs.size() - off);
        hits += cache.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
        if (off % 8192 == 0)
            cache.reconfigureAllAtEpoch(1024);
    }
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_TRUE(monotone.load());

    const MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counterTotal("talus_cache_accesses_total"),
              addrs.size());
    EXPECT_EQ(s.counterTotal("talus_cache_hits_total"), hits);
    // Per-shard series exist and roll up.
    uint64_t per_shard = 0;
    for (uint32_t sh = 0; sh < cfg.numShards; ++sh)
        per_shard += s.counterTotal("talus_cache_accesses_total",
                                    labelPair("shard", sh));
    EXPECT_EQ(per_shard, addrs.size());
    // Worker ring-depth high-water marks were published (every push
    // raises the HWM to at least 1; park/wake counts can legitimately
    // stay 0 on a fast run where the spin phase absorbs everything).
    const MetricValue* hwm = s.find("talus_worker_ring_depth_hwm",
                                    labelPair("worker", 0));
    ASSERT_NE(hwm, nullptr);
    EXPECT_GE(hwm->gauge, 1.0);
}

} // namespace
} // namespace talus
