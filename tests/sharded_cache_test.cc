/**
 * @file
 * The sharded serving engine's determinism anchor: because shards are
 * fully independent, ShardedTalusCache with N shards must produce
 * per-shard hit/miss sequences and stats identical to N hand-built
 * serial TalusCache instances fed the router's per-shard sub-streams
 * — for any thread count. Thread counts {0, 1, 4} cover inline
 * execution, a single worker, and more workers than most CI cores;
 * the TSan CI job race-checks the same tests.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/talus.h"
#include "util/rng.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

ShardedTalusCache::Config
engineConfig(uint32_t num_shards, uint32_t threads)
{
    ShardedTalusCache::Config cfg;
    cfg.shard.llcLines = 2048;
    cfg.shard.ways = 16;
    cfg.shard.numParts = 1;
    cfg.shard.allocatorName = "HillClimb";
    cfg.shard.reconfigInterval = 5'000;
    cfg.shard.seed = 77;
    cfg.numShards = num_shards;
    cfg.threads = threads;
    return cfg;
}

std::vector<Addr>
mixedTrace(uint64_t n, uint64_t seed)
{
    // Half uniform, half zipf-skewed, interleaved: exercises both the
    // balanced and the hot-shard scatter shapes.
    Rng rng(seed);
    ZipfStream zipf(1 << 14, 0.9, 0, seed + 1);
    std::vector<Addr> addrs(n);
    for (uint64_t i = 0; i < n; ++i)
        addrs[i] = (i & 1) ? rng.below(1 << 14) : zipf.next();
    return addrs;
}

/** Per-shard, per-block hit counts: the hit/miss sequence at block
 *  granularity, plus final stats and monitor curves. */
struct ShardTrace
{
    std::vector<std::vector<uint64_t>> blockMisses; //!< [shard][block]
    std::vector<TalusCache::PartStats> finalStats;  //!< [shard]
    std::vector<MissCurve> finalCurves;             //!< [shard]
    std::vector<uint64_t> reconfigs;                //!< [shard]
    uint64_t totalHits = 0;
};

/** Drives the sharded engine over @p addrs in blocks. */
ShardTrace
runSharded(const ShardedTalusCache::Config& cfg,
           const std::vector<Addr>& addrs, size_t block_size)
{
    ShardedTalusCache cache(cfg);
    ShardTrace trace;
    trace.blockMisses.resize(cfg.numShards);
    std::vector<uint64_t> last_misses(cfg.numShards, 0);
    for (size_t off = 0; off < addrs.size(); off += block_size) {
        const size_t n = std::min(block_size, addrs.size() - off);
        trace.totalHits += cache.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
        for (uint32_t s = 0; s < cfg.numShards; ++s) {
            const uint64_t misses = cache.shardStats(s, 0).misses;
            trace.blockMisses[s].push_back(misses - last_misses[s]);
            last_misses[s] = misses;
        }
    }
    for (uint32_t s = 0; s < cfg.numShards; ++s) {
        trace.finalStats.push_back(cache.shardStats(s, 0));
        trace.finalCurves.push_back(cache.shardCurve(s, 0));
        trace.reconfigs.push_back(cache.shard(s).reconfigurations());
    }
    return trace;
}

/**
 * The hand-built reference: N stand-alone serial TalusCache
 * instances, each fed the router's sub-stream through the scalar
 * access() path, one address at a time.
 */
ShardTrace
runHandBuilt(const ShardedTalusCache::Config& cfg,
             const std::vector<Addr>& addrs, size_t block_size)
{
    // The router the engine would build, reproduced via the public
    // surface of a throwaway engine (seed derivation is internal).
    ShardedTalusCache probe(cfg);
    const ShardRouter& router = probe.router();

    std::vector<std::unique_ptr<TalusCache>> serial;
    for (uint32_t s = 0; s < cfg.numShards; ++s)
        serial.push_back(std::make_unique<TalusCache>(
            ShardedTalusCache::shardConfig(cfg, s)));

    ShardTrace trace;
    trace.blockMisses.resize(cfg.numShards);
    std::vector<uint64_t> last_misses(cfg.numShards, 0);
    std::vector<std::vector<Addr>> per_shard;
    for (size_t off = 0; off < addrs.size(); off += block_size) {
        const size_t n = std::min(block_size, addrs.size() - off);
        router.scatter(Span<const Addr>(addrs.data() + off, n),
                       per_shard);
        for (uint32_t s = 0; s < cfg.numShards; ++s)
            for (Addr a : per_shard[s])
                trace.totalHits += serial[s]->access(a, 0);
        for (uint32_t s = 0; s < cfg.numShards; ++s) {
            const uint64_t misses = serial[s]->stats(0).misses;
            trace.blockMisses[s].push_back(misses - last_misses[s]);
            last_misses[s] = misses;
        }
    }
    for (uint32_t s = 0; s < cfg.numShards; ++s) {
        trace.finalStats.push_back(serial[s]->stats(0));
        trace.finalCurves.push_back(serial[s]->curve(0));
        trace.reconfigs.push_back(serial[s]->reconfigurations());
    }
    return trace;
}

void
expectTracesEqual(const ShardTrace& got, const ShardTrace& want)
{
    EXPECT_EQ(got.totalHits, want.totalHits);
    ASSERT_EQ(got.blockMisses.size(), want.blockMisses.size());
    for (size_t s = 0; s < want.blockMisses.size(); ++s) {
        EXPECT_EQ(got.blockMisses[s], want.blockMisses[s])
            << "hit/miss sequence diverged on shard " << s;
        EXPECT_EQ(got.finalStats[s].accesses,
                  want.finalStats[s].accesses);
        EXPECT_EQ(got.finalStats[s].misses, want.finalStats[s].misses);
        EXPECT_EQ(got.finalStats[s].targetLines,
                  want.finalStats[s].targetLines);
        EXPECT_DOUBLE_EQ(got.finalStats[s].rho, want.finalStats[s].rho);
        EXPECT_EQ(got.reconfigs[s], want.reconfigs[s]);

        const auto& gc = got.finalCurves[s].points();
        const auto& wc = want.finalCurves[s].points();
        ASSERT_EQ(gc.size(), wc.size());
        for (size_t i = 0; i < wc.size(); ++i) {
            EXPECT_DOUBLE_EQ(gc[i].size, wc[i].size);
            EXPECT_DOUBLE_EQ(gc[i].misses, wc[i].misses);
        }
    }
}

class ShardedCacheDeterminism
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ShardedCacheDeterminism, MatchesHandBuiltSerialShards)
{
    const uint32_t threads = GetParam();
    const ShardedTalusCache::Config cfg = engineConfig(4, threads);
    const std::vector<Addr> addrs = mixedTrace(60'000, 101);
    // Block size deliberately not a divisor of the trace length or
    // the reconfiguration interval.
    const ShardTrace sharded = runSharded(cfg, addrs, 1009);
    const ShardTrace reference = runHandBuilt(cfg, addrs, 1009);
    expectTracesEqual(sharded, reference);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ShardedCacheDeterminism,
                         ::testing::Values(0u, 1u, 4u));

TEST(ShardedCache, MoreShardsThanThreadsMatchesHandBuilt)
{
    // 7 shards on 3 workers: every worker owns 2–3 shards (shard %
    // threads pinning), so per-worker FIFO order across multiple
    // owned shards is what keeps this bit-exact.
    const ShardedTalusCache::Config cfg = engineConfig(7, 3);
    const std::vector<Addr> addrs = mixedTrace(50'000, 1103);
    const ShardTrace sharded = runSharded(cfg, addrs, 997);
    const ShardTrace reference = runHandBuilt(cfg, addrs, 997);
    expectTracesEqual(sharded, reference);
}

TEST(ShardedCache, MoreThreadsThanShardsMatchesHandBuilt)
{
    // 2 shards on 5 workers: three workers own nothing and must park
    // without ever being woken; the dispatch path may only notify the
    // owners of touched shards.
    const ShardedTalusCache::Config cfg = engineConfig(2, 5);
    const std::vector<Addr> addrs = mixedTrace(40'000, 1201);
    const ShardTrace sharded = runSharded(cfg, addrs, 1013);
    const ShardTrace reference = runHandBuilt(cfg, addrs, 1013);
    expectTracesEqual(sharded, reference);
}

TEST(ShardedCache, TinyBatchesLeavingShardsEmptyStayExact)
{
    // Batches of 3 addresses over 8 shards: most shards are empty in
    // every batch, so the skip-empty-shard fast path and the hit-slot
    // zeroing for skipped shards are both on trial. Covers inline,
    // fewer-workers-than-shards, and more-workers-than-shards.
    const std::vector<Addr> addrs = mixedTrace(3'000, 1301);
    const ShardTrace reference =
        runHandBuilt(engineConfig(8, 0), addrs, 3);
    for (uint32_t threads : {0u, 3u, 12u}) {
        const ShardTrace sharded =
            runSharded(engineConfig(8, threads), addrs, 3);
        expectTracesEqual(sharded, reference);
    }
}

TEST(ShardedCache, ThreadCountsAgreeWithEachOther)
{
    const std::vector<Addr> addrs = mixedTrace(40'000, 211);
    const ShardTrace inline_run =
        runSharded(engineConfig(3, 0), addrs, 777);
    const ShardTrace one_thread =
        runSharded(engineConfig(3, 1), addrs, 777);
    const ShardTrace four_threads =
        runSharded(engineConfig(3, 4), addrs, 777);
    expectTracesEqual(one_thread, inline_run);
    expectTracesEqual(four_threads, inline_run);
}

TEST(ShardedCache, ScalarAccessMatchesBatch)
{
    const ShardedTalusCache::Config cfg = engineConfig(4, 0);
    const std::vector<Addr> addrs = mixedTrace(20'000, 307);

    ShardedTalusCache scalar(cfg);
    ShardedTalusCache batched(cfg);
    uint64_t scalar_hits = 0;
    for (Addr a : addrs)
        scalar_hits += scalar.access(a, 0);
    const uint64_t batched_hits =
        batched.accessBatch(Span<const Addr>(addrs), 0);

    EXPECT_EQ(batched_hits, scalar_hits);
    for (uint32_t s = 0; s < cfg.numShards; ++s) {
        EXPECT_EQ(batched.shardStats(s, 0).accesses,
                  scalar.shardStats(s, 0).accesses);
        EXPECT_EQ(batched.shardStats(s, 0).misses,
                  scalar.shardStats(s, 0).misses);
    }
}

TEST(ShardedCache, AggregateStatsSumShards)
{
    const ShardedTalusCache::Config cfg = engineConfig(4, 2);
    ShardedTalusCache cache(cfg);
    const std::vector<Addr> addrs = mixedTrace(30'000, 401);
    const uint64_t hits =
        cache.accessBatch(Span<const Addr>(addrs), 0);

    const TalusCache::PartStats agg = cache.stats(0);
    uint64_t accesses = 0, misses = 0, target = 0;
    for (uint32_t s = 0; s < cfg.numShards; ++s) {
        accesses += cache.shardStats(s, 0).accesses;
        misses += cache.shardStats(s, 0).misses;
        target += cache.shardStats(s, 0).targetLines;
    }
    EXPECT_EQ(agg.accesses, accesses);
    EXPECT_EQ(agg.misses, misses);
    EXPECT_EQ(agg.targetLines, target);
    EXPECT_EQ(accesses, addrs.size());
    EXPECT_EQ(misses, addrs.size() - hits);
    EXPECT_NEAR(cache.missRatio(),
                static_cast<double>(misses) /
                    static_cast<double>(accesses),
                1e-12);
    EXPECT_EQ(cache.capacityLines(),
              cfg.numShards * cache.shard(0).capacityLines());
}

TEST(ShardedCache, SingleShardMatchesPlainTalusCache)
{
    // One shard routes everything to shard 0, which must behave
    // exactly like a stand-alone TalusCache with the derived config.
    ShardedTalusCache::Config cfg = engineConfig(1, 2);
    const std::vector<Addr> addrs = mixedTrace(25'000, 503);

    ShardedTalusCache sharded(cfg);
    TalusCache plain(ShardedTalusCache::shardConfig(cfg, 0));
    const uint64_t sharded_hits =
        sharded.accessBatch(Span<const Addr>(addrs), 0);
    const uint64_t plain_hits =
        plain.accessBatch(Span<const Addr>(addrs), 0);

    EXPECT_EQ(sharded_hits, plain_hits);
    EXPECT_EQ(sharded.shardStats(0, 0).misses, plain.stats(0).misses);
    EXPECT_EQ(sharded.reconfigurations(), plain.reconfigurations());
}

TEST(ShardedCache, EmptyBatchAndResetAreSafe)
{
    ShardedTalusCache cache(engineConfig(2, 1));
    EXPECT_EQ(cache.accessBatch(Span<const Addr>(), 0), 0u);
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);

    const std::vector<Addr> addrs = mixedTrace(5'000, 601);
    cache.accessBatch(Span<const Addr>(addrs), 0);
    EXPECT_GT(cache.missRatio(), 0.0);
    cache.resetStats();
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);
}

TEST(ShardedCache, InvalidConfigsThrowActionableErrors)
{
    ShardedTalusCache::Config cfg = engineConfig(4, 0);
    cfg.numShards = 0;
    EXPECT_THROW(ShardedTalusCache{cfg}, ConfigError);

    // Absurd shard counts must fail validation, not OOM.
    cfg = engineConfig(4, 0);
    cfg.numShards = ShardedTalusCache::kMaxShards + 1;
    EXPECT_THROW(ShardedTalusCache{cfg}, ConfigError);

    cfg = engineConfig(4, 0);
    cfg.threads = 4096;
    EXPECT_THROW(ShardedTalusCache{cfg}, ConfigError);

    // Per-shard config errors surface through the shard layer.
    cfg = engineConfig(4, 0);
    cfg.shard.margin = 2.0;
    try {
        ShardedTalusCache cache(cfg);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError& e) {
        EXPECT_NE(std::string(e.what()).find("per-shard config"),
                  std::string::npos);
    }
}

TEST(ShardedCache, ShardSeedsDiffer)
{
    const ShardedTalusCache::Config cfg = engineConfig(4, 0);
    for (uint32_t a = 0; a < cfg.numShards; ++a)
        for (uint32_t b = a + 1; b < cfg.numShards; ++b)
            EXPECT_NE(ShardedTalusCache::shardConfig(cfg, a).seed,
                      ShardedTalusCache::shardConfig(cfg, b).seed);
}

// --- Control-plane dispatch (PR 5). -----------------------------------

/** Compares two engines' per-shard stats and reconfiguration counts. */
void
expectShardStatesEqual(const ShardedTalusCache& got,
                       const ShardedTalusCache& want)
{
    ASSERT_EQ(got.numShards(), want.numShards());
    for (uint32_t s = 0; s < want.numShards(); ++s) {
        const auto g = got.shardStats(s, 0);
        const auto w = want.shardStats(s, 0);
        EXPECT_EQ(g.accesses, w.accesses) << "shard " << s;
        EXPECT_EQ(g.misses, w.misses) << "shard " << s;
        EXPECT_EQ(g.targetLines, w.targetLines) << "shard " << s;
        EXPECT_DOUBLE_EQ(g.rho, w.rho) << "shard " << s;
        EXPECT_EQ(got.shard(s).reconfigurations(),
                  want.shard(s).reconfigurations())
            << "shard " << s;
    }
}

/**
 * Mid-batch automatic reconfiguration under sharding: blocks several
 * times larger than reconfigInterval make every shard's interval fire
 * inside accessBatch — on a worker thread when threads > 0. The
 * per-shard control steps must be bit-exact across thread counts.
 */
class ShardedMidBatchReconfig : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ShardedMidBatchReconfig, BitExactAcrossThreadCounts)
{
    const std::vector<Addr> addrs = mixedTrace(50'000, 701);
    // Blocks of 12'000 against a 5'000-access reconfigInterval:
    // two-plus automatic control steps fire inside every batch.
    const ShardTrace inline_run =
        runSharded(engineConfig(4, 0), addrs, 12'000);
    const ShardTrace threaded =
        runSharded(engineConfig(4, GetParam()), addrs, 12'000);
    expectTracesEqual(threaded, inline_run);
    // The interval really did fire mid-batch on every shard.
    for (uint32_t s = 0; s < 4; ++s)
        EXPECT_GE(inline_run.reconfigs[s], 1u) << "shard " << s;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ShardedMidBatchReconfig,
                         ::testing::Values(1u, 4u));

TEST(ShardedCache, PoolDispatchedControlStepsMatchInlineSteps)
{
    // Explicit reconfigureAll() on a threaded engine (control steps
    // claimed by pool workers) vs reconfiguring every shard inline on
    // the caller's thread: shards share no state, so the dispatch
    // mechanism must not change any result.
    ShardedTalusCache::Config cfg = engineConfig(4, 0);
    cfg.shard.reconfigInterval = 0; // Control is explicit here.
    const std::vector<Addr> addrs = mixedTrace(40'000, 811);

    ShardedTalusCache pooled_cfg_engine = [&] {
        ShardedTalusCache::Config c = cfg;
        c.threads = 4;
        return ShardedTalusCache(c);
    }();
    ShardedTalusCache inline_engine(cfg);

    for (size_t off = 0; off < addrs.size(); off += 8'000) {
        const size_t n = std::min<size_t>(8'000, addrs.size() - off);
        pooled_cfg_engine.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
        inline_engine.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
        pooled_cfg_engine.reconfigureAll(); // WorkerPool dispatch.
        for (uint32_t s = 0; s < cfg.numShards; ++s)
            inline_engine.shard(s).reconfigure(); // Inline steps.
    }
    expectShardStatesEqual(pooled_cfg_engine, inline_engine);
    EXPECT_EQ(pooled_cfg_engine.reconfigurations(),
              inline_engine.reconfigurations());
}

TEST(ShardedCache, EpochDeferredReconfigureIsThreadCountInvariant)
{
    // Deferred mode: compute concurrently, apply at each shard's next
    // fixed access-count boundary. Thread counts {0, 1, 4} must agree
    // bit-exactly, and the applications must actually happen.
    ShardedTalusCache::Config base = engineConfig(3, 0);
    base.shard.reconfigInterval = 0;
    const std::vector<Addr> addrs = mixedTrace(45'000, 907);

    auto run = [&](uint32_t threads) {
        ShardedTalusCache::Config cfg = base;
        cfg.threads = threads;
        ShardedTalusCache engine(cfg);
        for (size_t off = 0; off < addrs.size(); off += 9'000) {
            const size_t n =
                std::min<size_t>(9'000, addrs.size() - off);
            engine.accessBatch(Span<const Addr>(addrs.data() + off, n),
                               0);
            engine.reconfigureAllAtEpoch(4'000);
        }
        return engine.reconfigurations();
    };

    ShardedTalusCache::Config cfg0 = base;
    ShardedTalusCache inline_engine(cfg0);
    cfg0.threads = 4;
    ShardedTalusCache threaded_engine(cfg0);
    for (size_t off = 0; off < addrs.size(); off += 9'000) {
        const size_t n = std::min<size_t>(9'000, addrs.size() - off);
        inline_engine.accessBatch(Span<const Addr>(addrs.data() + off, n),
                                  0);
        threaded_engine.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
        inline_engine.reconfigureAllAtEpoch(4'000);
        threaded_engine.reconfigureAllAtEpoch(4'000);
    }
    expectShardStatesEqual(threaded_engine, inline_engine);
    EXPECT_GT(inline_engine.reconfigurations(), 0u);
    EXPECT_EQ(run(1), inline_engine.reconfigurations());
}

// --- Pipelined dispatch (PR 10). --------------------------------------

ShardedTalusCache::Config
pipelineConfig(uint32_t shards, uint32_t threads, bool pipeline)
{
    ShardedTalusCache::Config cfg = engineConfig(shards, threads);
    cfg.pipelineDispatch = pipeline;
    return cfg;
}

/**
 * Double-buffered dispatch vs serial dispatch, thread counts
 * {0, 1, 4}: multi-block ragged batches (block > 2 * kPipelineBlock,
 * not a multiple of it) with the 5'000-access reconfigInterval firing
 * automatic control steps inside every batch. The pipelined path must
 * be bit-exact with the serial scatter-then-wait path AND with the
 * hand-built serial reference.
 */
class ShardedPipelineDeterminism
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(ShardedPipelineDeterminism, PipelinedMatchesSerialDispatch)
{
    const uint32_t threads = GetParam();
    const std::vector<Addr> addrs = mixedTrace(60'000, 1511);
    const size_t block =
        2 * ShardedTalusCache::kPipelineBlock + 1237;
    const ShardTrace pipelined =
        runSharded(pipelineConfig(4, threads, true), addrs, block);
    const ShardTrace serial =
        runSharded(pipelineConfig(4, threads, false), addrs, block);
    expectTracesEqual(pipelined, serial);
    const ShardTrace reference =
        runHandBuilt(pipelineConfig(4, threads, true), addrs, block);
    expectTracesEqual(pipelined, reference);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ShardedPipelineDeterminism,
                         ::testing::Values(0u, 1u, 4u));

TEST(ShardedCache, PipelinedRaggedAndEmptyBatchesStayExact)
{
    // Batch lengths straddling the kPipelineBlock boundary — empty,
    // a single address, exactly one block (unpipelined by design),
    // one block plus one (the smallest pipelined batch), whole
    // multiples, and ragged multi-block sizes — driven in sequence
    // through a pipelined threaded engine and a serial inline one.
    const std::vector<Addr> addrs = mixedTrace(45'000, 1607);
    const uint64_t kB = ShardedTalusCache::kPipelineBlock;
    const std::vector<uint64_t> lens = {0,      1,           kB,
                                        kB + 1, 3 * kB,      5,
                                        2 * kB + 777, 4 * kB};
    for (uint32_t threads : {1u, 4u}) {
        ShardedTalusCache on(pipelineConfig(4, threads, true));
        ShardedTalusCache off(pipelineConfig(4, 0, false));
        size_t pos = 0;
        for (uint64_t len : lens) {
            len = std::min<uint64_t>(len, addrs.size() - pos);
            const Span<const Addr> batch(addrs.data() + pos, len);
            EXPECT_EQ(on.accessBatch(batch, 0),
                      off.accessBatch(batch, 0))
                << "batch of " << len << " at " << pos << ", threads "
                << threads;
            pos += len;
        }
        expectShardStatesEqual(on, off);
    }
}

TEST(ShardedCache, PipelinedSingleHotShardLeavesOthersEmpty)
{
    // Every address routes to one shard, so 7 of 8 shards get no task
    // in any pipeline block: the skip-empty-shard task building and
    // the gather-only-touched-slots accounting are both on trial
    // across block boundaries.
    ShardedTalusCache probe(pipelineConfig(8, 0, true));
    const ShardRouter& router = probe.router();
    Rng rng(1709);
    std::vector<Addr> hot;
    while (hot.size() < 20'000) {
        const Addr a = rng.below(1 << 14);
        if (router.route(a) == 3)
            hot.push_back(a);
    }
    const ShardTrace pipelined =
        runSharded(pipelineConfig(8, 3, true), hot, 9419);
    const ShardTrace reference =
        runHandBuilt(pipelineConfig(8, 3, true), hot, 9419);
    expectTracesEqual(pipelined, reference);
}

TEST(ShardedCache, PipelinedEpochDeferredReconfigStaysExact)
{
    // Epoch-deferred control steps computed between multi-block
    // pipelined batches but applied mid-stream at fixed per-shard
    // access counts — so applications land inside later pipeline
    // blocks. Pipeline on/off and thread counts must all agree.
    ShardedTalusCache::Config base = pipelineConfig(4, 0, false);
    base.shard.reconfigInterval = 0;
    const std::vector<Addr> addrs = mixedTrace(45'000, 1801);

    auto run = [&](uint32_t threads, bool pipeline) {
        ShardedTalusCache::Config cfg = base;
        cfg.threads = threads;
        cfg.pipelineDispatch = pipeline;
        ShardedTalusCache engine(cfg);
        for (size_t off = 0; off < addrs.size(); off += 13'000) {
            const size_t n =
                std::min<size_t>(13'000, addrs.size() - off);
            engine.accessBatch(Span<const Addr>(addrs.data() + off, n),
                               0);
            engine.reconfigureAllAtEpoch(6'000);
        }
        std::vector<uint64_t> fingerprint;
        for (uint32_t s = 0; s < engine.numShards(); ++s) {
            fingerprint.push_back(engine.shardStats(s, 0).accesses);
            fingerprint.push_back(engine.shardStats(s, 0).misses);
            fingerprint.push_back(engine.shard(s).reconfigurations());
        }
        return fingerprint;
    };

    const std::vector<uint64_t> reference = run(0, false);
    EXPECT_EQ(run(0, true), reference);
    EXPECT_EQ(run(1, true), reference);
    EXPECT_EQ(run(4, true), reference);
    EXPECT_EQ(run(4, false), reference);
}

TEST(ShardedCache, MissRatioAndStatsShareResetWindows)
{
    // missRatio() aggregates the same PartStats snapshots stats()
    // serves, so both describe the post-resetStats() window — pinned
    // here because the two used to read different accounting paths.
    ShardedTalusCache cache(engineConfig(4, 2));
    const std::vector<Addr> addrs = mixedTrace(30'000, 1009);

    cache.accessBatch(
        Span<const Addr>(addrs.data(), 20'000), 0);
    cache.resetStats();
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);
    EXPECT_EQ(cache.stats(0).accesses, 0u);

    const uint64_t hits = cache.accessBatch(
        Span<const Addr>(addrs.data() + 20'000, 10'000), 0);
    const TalusCache::PartStats agg = cache.stats(0);
    EXPECT_EQ(agg.accesses, 10'000u);
    EXPECT_EQ(agg.misses, 10'000u - hits);
    EXPECT_DOUBLE_EQ(cache.missRatio(),
                     static_cast<double>(agg.misses) /
                         static_cast<double>(agg.accesses));
}

} // namespace
} // namespace talus
