/**
 * @file
 * Tests for the opt-in monitor sampling knob
 * (TalusCache::Config::monitorSamplePeriod).
 *
 * The knob's contract has two halves, and each gets pinned here:
 *
 *  - Period 1 (the default) is today's behavior: the monitors observe
 *    every access, bit-identical to feeding a standalone CombinedUMon
 *    the full stream. The figure verdicts ride on this.
 *  - Period N > 1 is a systematic 1-in-N time decimation. It never
 *    touches the data path (hits/misses are bit-identical to period
 *    1), its phase counter is chunk-invariant (batch and serial
 *    drives observe the same sub-stream), and on stationary IRM
 *    streams the sampled curve still agrees with the analytical LRU
 *    oracle (model/analytical_lru.h) within the documented tolerance
 *    — only the per-interval sample count shrinks.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/talus_cache.h"
#include "model/analytical_lru.h"
#include "monitor/combined_umon.h"
#include "util/rng.h"
#include "workload/access_stream.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

/** The documented model-vs-UMON agreement bound (README). */
constexpr double kOracleTolerance = 0.05;

/** A small single-partition Talus facade with monitoring on and no
 *  allocator, so the monitors are the only consumer of the knob. */
TalusCache::Config
baseConfig()
{
    TalusCache::Config cfg;
    cfg.llcLines = 2048;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "";
    cfg.reconfigInterval = 0;
    cfg.seed = 42;
    return cfg;
}

std::vector<Addr>
randomAddrs(uint64_t n, uint64_t space, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs(n);
    for (auto& a : addrs)
        a = rng.below(space);
    return addrs;
}

void
expectCurvesBitIdentical(const MissCurve& a, const MissCurve& b)
{
    const auto& pa = a.points();
    const auto& pb = b.points();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].size, pb[i].size) << "point " << i;
        EXPECT_EQ(pa[i].misses, pb[i].misses) << "point " << i;
    }
}

TEST(MonitorSampling, DefaultPeriodFeedsMonitorsEveryAccess)
{
    // With the default period (1), the facade's monitor must land in
    // exactly the state of a standalone CombinedUMon fed the full
    // stream — the "bit-exact with pre-knob builds" guarantee.
    const TalusCache::Config cfg = baseConfig();
    ASSERT_EQ(cfg.monitorSamplePeriod, 1u);
    TalusCache cache(cfg);

    CombinedUMon::Config mc;
    mc.llcLines = cfg.llcLines;
    mc.coverage = cfg.umonCoverage;
    mc.seed = cfg.seed ^ 0x1111ull; // Partition 0's derived seed.
    CombinedUMon reference(mc);

    const auto addrs = randomAddrs(200'000, 1u << 20, 0x5A11);
    cache.accessBatch(Span<const Addr>(addrs.data(), addrs.size()), 0);
    reference.accessBlock(Span<const Addr>(addrs.data(), addrs.size()));

    expectCurvesBitIdentical(cache.curve(0), reference.curve());
}

TEST(MonitorSampling, DecimationPhaseIsChunkInvariant)
{
    // The per-partition phase counter picks every Nth access of the
    // partition's stream regardless of how callers chunk it, so a
    // batched drive and a serial drive observe the identical
    // sub-stream.
    TalusCache::Config cfg = baseConfig();
    cfg.monitorSamplePeriod = 4;
    TalusCache batched(cfg);
    TalusCache serial(cfg);

    const auto addrs = randomAddrs(50'000, 1u << 18, 0xC0FFEE);
    uint64_t batched_hits = 0;
    // Ragged chunks, including sizes not divisible by the period.
    const Addr* p = addrs.data();
    uint64_t left = addrs.size();
    uint64_t chunk = 1;
    while (left > 0) {
        const uint64_t n = std::min<uint64_t>(chunk, left);
        batched_hits += batched.accessBatch(Span<const Addr>(p, n), 0);
        p += n;
        left -= n;
        chunk = chunk % 7 + 3; // 3..9, never a multiple pattern.
    }
    uint64_t serial_hits = 0;
    for (const Addr a : addrs)
        serial_hits += serial.access(a, 0) ? 1 : 0;

    EXPECT_EQ(batched_hits, serial_hits);
    expectCurvesBitIdentical(batched.curve(0), serial.curve(0));
}

TEST(MonitorSampling, SamplingNeverTouchesTheDataPath)
{
    // Without an allocator the monitors feed nothing back, so any
    // period must leave hits, misses, and the final curve-independent
    // state bit-identical: the knob trades monitor fidelity only.
    TalusCache::Config exact_cfg = baseConfig();
    TalusCache::Config sampled_cfg = baseConfig();
    sampled_cfg.monitorSamplePeriod = 8;
    TalusCache exact(exact_cfg);
    TalusCache sampled(sampled_cfg);

    const auto addrs = randomAddrs(100'000, 1u << 18, 0xDA7A);
    const uint64_t exact_hits = exact.accessBatch(
        Span<const Addr>(addrs.data(), addrs.size()), 0);
    const uint64_t sampled_hits = sampled.accessBatch(
        Span<const Addr>(addrs.data(), addrs.size()), 0);

    EXPECT_EQ(exact_hits, sampled_hits);
    EXPECT_EQ(exact.stats(0).misses, sampled.stats(0).misses);
    EXPECT_DOUBLE_EQ(exact.missRatio(), sampled.missRatio());
}

/** Drives @p stream through a period-@p period facade and checks the
 *  monitored curve against the analytical oracle. */
void
expectSampledCurveMatchesOracle(AccessStream& stream,
                                const std::vector<double>& probs,
                                uint32_t period)
{
    TalusCache::Config cfg = baseConfig();
    cfg.monitorSamplePeriod = period;
    TalusCache cache(cfg);

    constexpr uint64_t kBlock = 4096;
    std::vector<Addr> buf(kBlock);
    for (uint64_t fed = 0; fed < 2'000'000; fed += kBlock) {
        for (auto& a : buf)
            a = stream.next();
        cache.accessBatch(Span<const Addr>(buf.data(), kBlock), 0);
    }

    std::vector<uint64_t> sizes;
    for (uint64_t s = 0; s <= cfg.llcLines; s += 64)
        sizes.push_back(s);
    const MissCurve model = analyticalLruMissCurve(probs, sizes);
    const double dev = maxAbsDeviation(cache.curve(0), model, 0,
                                       static_cast<double>(cfg.llcLines));
    EXPECT_LE(dev, kOracleTolerance) << "period=" << period;
}

TEST(MonitorSampling, SampledUniformCurveWithinOracleTolerance)
{
    // 2M accesses at period 8 still sample 250k monitor inputs; the
    // decimated curve must stay within the same oracle bound the
    // unsampled scenario-zoo tests use.
    const uint64_t W = 4096;
    UniformRandom stream(W, 0, 0x11AD);
    expectSampledCurveMatchesOracle(stream, uniformPopularity(W), 8);
}

TEST(MonitorSampling, SampledZipfCurveWithinOracleTolerance)
{
    const uint64_t W = 1 << 14;
    const double alpha = 0.9;
    ZipfStream stream(W, alpha, 0, 0x21AD);
    expectSampledCurveMatchesOracle(stream, zipfPopularity(W, alpha), 8);
}

} // namespace
} // namespace talus
