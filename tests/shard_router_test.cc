/**
 * @file
 * ShardRouter: seeded determinism, range, scatter order preservation,
 * buffer reuse, and rough balance of the H3-based mapping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "shard/shard_router.h"
#include "util/rng.h"

namespace talus {
namespace {

std::vector<Addr>
uniformAddrs(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs(n);
    for (Addr& a : addrs)
        a = rng.below(1ull << 40);
    return addrs;
}

TEST(ShardRouter, RoutesInRangeAndDeterministically)
{
    const ShardRouter router(5, 0xABCD);
    const ShardRouter twin(5, 0xABCD);
    for (Addr a : uniformAddrs(10'000, 1)) {
        const uint32_t shard = router.route(a);
        EXPECT_LT(shard, 5u);
        EXPECT_EQ(twin.route(a), shard);
    }
}

TEST(ShardRouter, SeedChangesTheMapping)
{
    const ShardRouter a(8, 1);
    const ShardRouter b(8, 2);
    uint32_t differing = 0;
    for (Addr addr : uniformAddrs(1'000, 3))
        differing += a.route(addr) != b.route(addr);
    // Two independent H3 functions agree on ~1/8 of addresses.
    EXPECT_GT(differing, 500u);
}

TEST(ShardRouter, SingleShardRoutesEverythingToZero)
{
    const ShardRouter router(1, 99);
    for (Addr a : uniformAddrs(1'000, 5))
        EXPECT_EQ(router.route(a), 0u);
}

TEST(ShardRouter, ScatterPartitionsAndPreservesOrder)
{
    const ShardRouter router(4, 0x50C4);
    const std::vector<Addr> addrs = uniformAddrs(20'000, 7);
    std::vector<std::vector<Addr>> per_shard;
    router.scatter(Span<const Addr>(addrs), per_shard);

    ASSERT_EQ(per_shard.size(), 4u);
    uint64_t total = 0;
    for (uint32_t s = 0; s < 4; ++s) {
        total += per_shard[s].size();
        for (Addr a : per_shard[s])
            EXPECT_EQ(router.route(a), s);
    }
    EXPECT_EQ(total, addrs.size());

    // Replaying the original stream and popping each address from the
    // front of its shard's bucket must consume every bucket in order.
    std::vector<size_t> next(4, 0);
    for (Addr a : addrs) {
        const uint32_t s = router.route(a);
        ASSERT_LT(next[s], per_shard[s].size());
        EXPECT_EQ(per_shard[s][next[s]], a);
        next[s]++;
    }
}

TEST(ShardRouter, ScatterReusesBuffersWithoutAccumulating)
{
    const ShardRouter router(3, 11);
    const std::vector<Addr> first = uniformAddrs(900, 13);
    const std::vector<Addr> second = uniformAddrs(300, 17);

    std::vector<std::vector<Addr>> buckets;
    router.scatter(Span<const Addr>(first), buckets);
    router.scatter(Span<const Addr>(second), buckets);
    uint64_t total = 0;
    for (const auto& bucket : buckets)
        total += bucket.size();
    EXPECT_EQ(total, second.size());
}

TEST(ShardRouter, RoughlyBalancesUniformTraffic)
{
    const uint32_t shards = 8;
    const uint64_t n = 100'000;
    const ShardRouter router(shards, 0xBA1A);
    std::vector<uint64_t> counts(shards, 0);
    for (Addr a : uniformAddrs(n, 19))
        counts[router.route(a)]++;
    const double mean = static_cast<double>(n) / shards;
    for (uint32_t s = 0; s < shards; ++s) {
        EXPECT_GT(counts[s], mean * 0.9) << "shard " << s;
        EXPECT_LT(counts[s], mean * 1.1) << "shard " << s;
    }
}

} // namespace
} // namespace talus
