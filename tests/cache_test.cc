/**
 * @file
 * Tests for src/cache: SetAssocCache mechanics, FullyAssocLru, and
 * CacheStats accounting.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc_lru.h"
#include "cache/set_assoc_cache.h"
#include "policy/lru.h"
#include "tests/test_util.h"

namespace talus {
namespace {

SetAssocCache::Config
smallConfig(uint32_t sets, uint32_t ways, bool hashed = false)
{
    SetAssocCache::Config cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    cfg.hashSetIndex = hashed;
    return cfg;
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(smallConfig(4, 2),
                        std::make_unique<LruPolicy>());
    EXPECT_FALSE(cache.access(100));
    EXPECT_TRUE(cache.access(100));
    EXPECT_EQ(cache.stats().totalAccesses(), 2u);
    EXPECT_EQ(cache.stats().totalMisses(), 1u);
}

TEST(SetAssocCache, EvictsWithinSet)
{
    // 1 set x 2 ways, identity indexing: three conflicting lines.
    SetAssocCache cache(smallConfig(1, 2),
                        std::make_unique<LruPolicy>());
    cache.access(1);
    cache.access(2);
    cache.access(3); // Evicts 1 (LRU).
    EXPECT_TRUE(cache.access(2));
    EXPECT_TRUE(cache.access(3));
    EXPECT_FALSE(cache.access(1));
    EXPECT_EQ(cache.stats().evictions(), 2u);
}

TEST(SetAssocCache, ProbeHasNoSideEffects)
{
    SetAssocCache cache(smallConfig(2, 2),
                        std::make_unique<LruPolicy>());
    cache.access(5);
    const auto before = cache.stats().totalAccesses();
    EXPECT_GE(cache.probe(5), 0);
    EXPECT_EQ(cache.probe(999), -1);
    EXPECT_EQ(cache.stats().totalAccesses(), before);
}

TEST(SetAssocCache, PerPartitionStats)
{
    SetAssocCache cache(smallConfig(8, 4),
                        std::make_unique<LruPolicy>());
    cache.access(1, 0);
    cache.access(2, 1);
    cache.access(2, 1);
    EXPECT_EQ(cache.stats().accesses(0), 1u);
    EXPECT_EQ(cache.stats().accesses(1), 2u);
    EXPECT_EQ(cache.stats().hits(1), 1u);
    EXPECT_EQ(cache.stats().misses(0), 1u);
}

TEST(SetAssocCache, CountLinesTracksOwnership)
{
    SetAssocCache cache(smallConfig(8, 4),
                        std::make_unique<LruPolicy>());
    for (Addr a = 0; a < 10; ++a)
        cache.access(a, a % 2);
    EXPECT_EQ(cache.countLines(0) + cache.countLines(1), 10u);
}

TEST(SetAssocCache, InvalidateLine)
{
    SetAssocCache cache(smallConfig(1, 2),
                        std::make_unique<LruPolicy>());
    cache.access(1);
    const int64_t line = cache.probe(1);
    ASSERT_GE(line, 0);
    cache.invalidateLine(static_cast<uint32_t>(line));
    EXPECT_EQ(cache.probe(1), -1);
    EXPECT_FALSE(cache.lineValid(static_cast<uint32_t>(line)));
}

TEST(SetAssocCache, InvalidateAllEmptiesCache)
{
    SetAssocCache cache(smallConfig(4, 4),
                        std::make_unique<LruPolicy>());
    for (Addr a = 0; a < 16; ++a)
        cache.access(a);
    cache.invalidateAll();
    for (Addr a = 0; a < 16; ++a)
        EXPECT_EQ(cache.probe(a), -1);
}

TEST(SetAssocCache, HashedIndexSpreadsScans)
{
    // With hashing, a sequential scan should touch all sets about
    // evenly rather than walking them in order.
    SetAssocCache cache(smallConfig(16, 1, true),
                        std::make_unique<LruPolicy>());
    std::vector<int> seen(16, 0);
    for (Addr a = 0; a < 16000; ++a)
        seen[cache.defaultSetIndex(a)]++;
    for (int c : seen) {
        EXPECT_GT(c, 700);
        EXPECT_LT(c, 1300);
    }
}

TEST(SetAssocCache, NonPowerOfTwoSets)
{
    SetAssocCache cache(smallConfig(12, 2, true),
                        std::make_unique<LruPolicy>());
    for (Addr a = 0; a < 100; ++a)
        EXPECT_LT(cache.defaultSetIndex(a), 12u);
    // Still functions as a cache.
    cache.access(7);
    EXPECT_TRUE(cache.access(7));
}

// ------------------------------------------------------ FullyAssocLru

TEST(SetAssocCache, SingleSetSingleWayHoldsOneLine)
{
    // Degenerate 1x1 geometry: a one-line cache.
    SetAssocCache cache(smallConfig(1, 1),
                        std::make_unique<LruPolicy>());
    EXPECT_FALSE(cache.access(1));
    EXPECT_TRUE(cache.access(1));
    EXPECT_FALSE(cache.access(2)); // Evicts 1.
    EXPECT_FALSE(cache.access(1)); // Evicts 2.
    EXPECT_EQ(cache.stats().evictions(), 2u);
}

TEST(FullyAssocLru, BasicHitMiss)
{
    FullyAssocLru cache(2);
    EXPECT_FALSE(cache.access(1));
    EXPECT_TRUE(cache.access(1));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.accesses(), 2u);
}

TEST(FullyAssocLru, EvictsLeastRecentlyUsed)
{
    FullyAssocLru cache(2);
    cache.access(1);
    cache.access(2);
    cache.access(1); // 2 is now LRU.
    cache.access(3); // Evicts 2.
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
}

TEST(FullyAssocLru, ZeroCapacityAlwaysMisses)
{
    FullyAssocLru cache(0);
    EXPECT_FALSE(cache.access(1));
    EXPECT_FALSE(cache.access(1));
    EXPECT_EQ(cache.size(), 0u);
}

TEST(FullyAssocLru, ShrinkEvictsFromLruEnd)
{
    FullyAssocLru cache(4);
    for (Addr a = 1; a <= 4; ++a)
        cache.access(a);
    cache.access(1); // Order (MRU->LRU): 1,4,3,2.
    cache.setCapacity(2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(4));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_FALSE(cache.contains(3));
}

TEST(FullyAssocLru, GrowKeepsContents)
{
    FullyAssocLru cache(2);
    cache.access(1);
    cache.access(2);
    cache.setCapacity(8);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
}

TEST(FullyAssocLru, ClearAndResetStats)
{
    FullyAssocLru cache(2);
    cache.access(1);
    cache.access(1);
    cache.resetStats();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.accesses(), 0u);
    EXPECT_TRUE(cache.contains(1));
    cache.clear();
    EXPECT_FALSE(cache.contains(1));
}

TEST(FullyAssocLru, HitRateOnScanMatchesTheory)
{
    // Scan of W lines in a cache of C >= W: all hits after warmup.
    FullyAssocLru cache(64);
    auto trace = test::scanTrace(64 * 10, 64);
    for (Addr a : trace)
        cache.access(a);
    // First 64 are cold; the rest hit.
    EXPECT_EQ(cache.hits(), trace.size() - 64);
}

TEST(FullyAssocLru, ScanThrashesWhenTooSmall)
{
    // Scan of W lines in a cache of C < W under LRU: zero hits.
    FullyAssocLru cache(63);
    auto trace = test::scanTrace(64 * 10, 64);
    for (Addr a : trace)
        cache.access(a);
    EXPECT_EQ(cache.hits(), 0u);
}

// --------------------------------------------------------- CacheStats

TEST(CacheStats, Accumulates)
{
    CacheStats stats;
    stats.record(0, true);
    stats.record(0, false);
    stats.record(3, false);
    EXPECT_EQ(stats.totalAccesses(), 3u);
    EXPECT_EQ(stats.totalHits(), 1u);
    EXPECT_EQ(stats.totalMisses(), 2u);
    EXPECT_EQ(stats.accesses(3), 1u);
    EXPECT_EQ(stats.accesses(2), 0u);
    EXPECT_EQ(stats.numParts(), 4u);
}

TEST(CacheStats, ResetZeroes)
{
    CacheStats stats;
    stats.record(1, true);
    stats.recordBypass();
    stats.recordEviction();
    stats.reset();
    EXPECT_EQ(stats.totalAccesses(), 0u);
    EXPECT_EQ(stats.bypasses(), 0u);
    EXPECT_EQ(stats.evictions(), 0u);
}

} // namespace
} // namespace talus
