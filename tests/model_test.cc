/**
 * @file
 * Tests for the analytical LRU miss-curve oracle (model/).
 *
 * The Che characteristic-time model is exact for uniform popularity
 * (miss = 1 - c/W) and a tight approximation for Zipf, so the tests
 * pin it three ways: against closed forms, against structural
 * properties (monotonicity, range), and — the scenario-zoo contract —
 * against CombinedUMon snapshots measured on the matching generator,
 * within the tolerance the README documents (0.05 miss ratio).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/analytical_lru.h"
#include "monitor/combined_umon.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

/** The documented model-vs-UMON agreement bound (README). */
constexpr double kOracleTolerance = 0.05;

std::vector<uint64_t>
sizeGrid(uint64_t max, uint64_t step)
{
    std::vector<uint64_t> sizes;
    for (uint64_t s = 0; s <= max; s += step)
        sizes.push_back(s);
    return sizes;
}

// -------------------------------------------------------- closed forms

TEST(AnalyticalLru, PopularityVectorsAreNormalized)
{
    for (const auto& p :
         {zipfPopularity(1000, 0.9), uniformPopularity(1000),
          zipfPopularity(64, 0.0)}) {
        ASSERT_EQ(p.size(), p.size());
        double sum = 0;
        for (double x : p) {
            EXPECT_GT(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
    // Zipf with alpha=0 degenerates to uniform.
    const auto z0 = zipfPopularity(100, 0.0);
    const auto u = uniformPopularity(100);
    for (size_t i = 0; i < 100; ++i)
        EXPECT_NEAR(z0[i], u[i], 1e-12);
}

TEST(AnalyticalLru, UniformCurveIsTheExactLinearRamp)
{
    // Under uniform IRM, LRU's miss ratio is exactly 1 - c/W.
    const uint64_t W = 4096;
    const auto probs = uniformPopularity(W);
    for (uint64_t c : {256u, 1024u, 2048u, 3072u, 4000u}) {
        const double miss =
            1.0 - analyticalLruHitRatio(probs, static_cast<double>(c));
        EXPECT_NEAR(miss, 1.0 - static_cast<double>(c) / W, 0.02)
            << "c=" << c;
    }
}

TEST(AnalyticalLru, BoundaryBehavior)
{
    const auto probs = zipfPopularity(1024, 0.9);
    EXPECT_DOUBLE_EQ(analyticalLruHitRatio(probs, 0), 0.0);
    EXPECT_DOUBLE_EQ(analyticalLruHitRatio(probs, 1024), 1.0);
    EXPECT_DOUBLE_EQ(analyticalLruHitRatio(probs, 5000), 1.0);
}

TEST(AnalyticalLru, CharacteristicTimeSolvesTheOccupancyEquation)
{
    const auto probs = zipfPopularity(2048, 0.8);
    for (double c : {64.0, 512.0, 1500.0}) {
        const double T = cheCharacteristicTime(probs, c);
        double occupancy = 0;
        for (double p : probs)
            occupancy += 1.0 - std::exp(-p * T);
        EXPECT_NEAR(occupancy, c, 1e-6 * c) << "c=" << c;
    }
}

TEST(AnalyticalLru, CurveIsMonotoneNonIncreasingInRange)
{
    const auto probs = zipfPopularity(4096, 0.9);
    const MissCurve curve =
        analyticalLruMissCurve(probs, sizeGrid(4096, 64));
    EXPECT_TRUE(curve.isNonIncreasing(1e-9));
    EXPECT_DOUBLE_EQ(curve.at(0), 1.0);
    EXPECT_NEAR(curve.at(4096), 0.0, 1e-9);
}

TEST(AnalyticalLru, MaxAbsDeviationMeasuresTheGap)
{
    const auto probs = uniformPopularity(1024);
    const MissCurve a =
        analyticalLruMissCurve(probs, sizeGrid(1024, 32));
    EXPECT_NEAR(maxAbsDeviation(a, a, 0, 1024), 0.0, 1e-12);

    // A curve shifted by a constant deviates by exactly that much.
    const MissCurve b = a.scaled(1.0, 0.5);
    EXPECT_NEAR(maxAbsDeviation(a, b, 64, 1024), a.at(64) * 0.5, 1e-9);
}

// ---------------------------------------- cross-validation vs the UMON

/**
 * Measures a CombinedUMon snapshot over @p stream and checks it
 * against the analytical curve within kOracleTolerance across the
 * monitor's primary range.
 */
void
expectUmonMatchesModel(AccessStream& stream,
                       const std::vector<double>& probs,
                       uint64_t llc_lines)
{
    CombinedUMon::Config cfg;
    cfg.llcLines = llc_lines;
    CombinedUMon mon(cfg);
    for (int i = 0; i < 2'000'000; ++i)
        mon.access(stream.next());
    const MissCurve measured = mon.snapshot();

    const MissCurve model =
        analyticalLruMissCurve(probs, sizeGrid(llc_lines, 64));
    const double dev =
        maxAbsDeviation(measured, model, 0, llc_lines);
    EXPECT_LE(dev, kOracleTolerance);
}

TEST(AnalyticalLruVsUmon, UniformWithinTolerance)
{
    const uint64_t W = 4096, llc = 2048;
    UniformRandom stream(W, 0, 0x11AD);
    expectUmonMatchesModel(stream, uniformPopularity(W), llc);
}

TEST(AnalyticalLruVsUmon, ZipfWithinTolerance)
{
    const uint64_t W = 1 << 14, llc = 2048;
    const double alpha = 0.9;
    ZipfStream stream(W, alpha, 0, 0x21AD);
    expectUmonMatchesModel(stream, zipfPopularity(W, alpha), llc);
}

TEST(AnalyticalLruVsUmon, FlatterZipfWithinTolerance)
{
    const uint64_t W = 8192, llc = 2048;
    const double alpha = 0.6;
    ZipfStream stream(W, alpha, 0, 0x31AD);
    expectUmonMatchesModel(stream, zipfPopularity(W, alpha), llc);
}

} // namespace
} // namespace talus
