/**
 * @file
 * Tests for Belady's MIN: correctness of next-use preprocessing, the
 * optimality lower bound against every online policy, and convexity
 * (Corollary 7 of the paper).
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.h"
#include "core/miss_curve.h"
#include "policy/belady.h"
#include "policy/policy_factory.h"
#include "tests/test_util.h"

namespace talus {
namespace {

TEST(Belady, NextUseIndices)
{
    const std::vector<Addr> trace{1, 2, 1, 3, 2, 1};
    const auto next = nextUseIndices(trace);
    ASSERT_EQ(next.size(), 6u);
    EXPECT_EQ(next[0], 2u); // 1 reused at index 2.
    EXPECT_EQ(next[1], 4u); // 2 reused at index 4.
    EXPECT_EQ(next[2], 5u); // 1 reused at index 5.
    EXPECT_EQ(next[3], 6u); // 3 never reused.
    EXPECT_EQ(next[4], 6u);
    EXPECT_EQ(next[5], 6u);
}

TEST(Belady, ScanGetsPartialHitsUnlikeLru)
{
    // Cyclic scan of W lines, cache C < W: LRU gets zero hits but MIN
    // keeps C-1 lines pinned, hitting on them every pass. Over many
    // passes hit ratio -> (C-1)/W.
    const uint64_t w = 64, c = 32;
    auto trace = test::scanTrace(w * 200, w);
    const uint64_t misses = minMisses(trace, c);
    const double hit_ratio =
        1.0 - static_cast<double>(misses) / trace.size();
    EXPECT_NEAR(hit_ratio, static_cast<double>(c - 1) / w, 0.02);
}

TEST(Belady, ZeroCapacityMissesEverything)
{
    auto trace = test::randomTrace(100, 10, 1);
    EXPECT_EQ(minMisses(trace, 0), 100u);
}

TEST(Belady, FullCapacityOnlyColdMisses)
{
    auto trace = test::randomTrace(10000, 64, 2);
    EXPECT_EQ(minMisses(trace, 64), 64u);
}

TEST(Belady, CurveMatchesPointQueries)
{
    auto trace = test::randomTrace(5000, 128, 3);
    const std::vector<uint64_t> caps{8, 16, 32, 64, 128};
    const auto curve = minMissCurve(trace, caps);
    ASSERT_EQ(curve.size(), caps.size());
    for (size_t i = 0; i < caps.size(); ++i)
        EXPECT_EQ(curve[i], minMisses(trace, caps[i]));
}

TEST(Belady, MonotoneInCapacity)
{
    auto trace = test::randomTrace(20000, 256, 4);
    uint64_t prev = ~0ull;
    for (uint64_t cap : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
        const uint64_t m = minMisses(trace, cap);
        EXPECT_LE(m, prev);
        prev = m;
    }
}

TEST(Belady, ConvexOnScanTrace)
{
    // Corollary 7: MIN's miss curve is convex — even on the cyclic
    // scan that gives LRU a hard cliff.
    auto trace = test::scanTrace(64 * 300, 64);
    std::vector<CurvePoint> pts;
    for (uint64_t cap = 0; cap <= 72; cap += 4) {
        pts.push_back({static_cast<double>(cap),
                       static_cast<double>(minMisses(trace, cap))});
    }
    const MissCurve curve(std::move(pts));
    EXPECT_TRUE(curve.isNonIncreasing(1.0));
    // Tolerance: cold misses and end effects wobble a little.
    EXPECT_TRUE(curve.isConvex(trace.size() * 0.01));
}

TEST(Belady, SetAssocAtLeastFullyAssoc)
{
    // Placement constraints can only hurt: SA-MIN >= FA-MIN misses.
    auto trace = test::randomTrace(20000, 300, 6);
    const uint64_t fa = minMisses(trace, 128);
    const uint64_t sa = minMissesSetAssoc(trace, 16, 8);
    EXPECT_GE(sa, fa);
}

// MIN lower-bounds every online policy at equal capacity. This is the
// strongest cross-validation of both the policies and MIN itself.
class MinLowerBoundTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MinLowerBoundTest, PolicyNeverBeatsMin)
{
    const uint32_t sets = 16, ways = 8;
    // Mixed trace: scan + hot set + random tail.
    std::vector<Addr> trace;
    Rng rng(11);
    for (int i = 0; i < 40000; ++i) {
        switch (i % 3) {
          case 0: trace.push_back(i % 200); break;
          case 1: trace.push_back(1000 + rng.below(40)); break;
          default: trace.push_back(2000 + rng.below(600)); break;
        }
    }

    SetAssocCache::Config cfg;
    cfg.numSets = sets;
    cfg.numWays = ways;
    SetAssocCache cache(cfg, makePolicy(GetParam(), 5));
    for (Addr a : trace)
        cache.access(a);

    // Note: PDP may bypass, which still counts as a miss.
    const uint64_t policy_misses = cache.stats().totalMisses();
    const uint64_t min_misses_fa =
        minMisses(trace, static_cast<uint64_t>(sets) * ways);
    EXPECT_GE(policy_misses, min_misses_fa) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Policies, MinLowerBoundTest,
                         ::testing::Values("LRU", "NRU", "Random", "SRRIP",
                                           "BRRIP", "DRRIP", "DIP", "PDP"));

} // namespace
} // namespace talus
