/**
 * @file
 * Tests for the trace layer: binary/CSV round trips (byte-exact,
 * including empty and single-record files), open-time validation,
 * TraceStream's AccessStream contract (determinism, reset, clone,
 * nextBlock-vs-next bit-exactness, wrapping), and bit-exact replay
 * through the sharded engine for inline and threaded dispatch.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "shard/sharded_cache.h"
#include "sim/sharded_replay.h"
#include "tests/test_util.h"
#include "trace/trace_file.h"
#include "trace/trace_stream.h"
#include "util/rng.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

std::string
tmpPath(const std::string& name)
{
    return ::testing::TempDir() + name;
}

/** Whole file as raw bytes, for byte-exactness checks. */
std::string
fileBytes(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

/** Writes @p addrs as a binary trace and returns the path. */
std::string
writeBinary(const std::string& name, const std::vector<Addr>& addrs)
{
    const std::string path = tmpPath(name);
    TraceWriter writer(path);
    writer.append(addrs.data(), addrs.size());
    writer.close();
    return path;
}

/** Drains a TraceSource completely. */
std::vector<Addr>
drain(TraceSource& source)
{
    std::vector<Addr> out;
    Addr buf[256];
    while (const uint64_t n = source.read(buf, 256))
        out.insert(out.end(), buf, buf + n);
    return out;
}

// ------------------------------------------------------- file formats

TEST(TraceFile, BinaryWriteReadRoundTrip)
{
    const std::vector<Addr> addrs = {0, 1, 64, 0xFFFF'FFFF'FFFF'FFFFull,
                                     42, 42, 1ull << 40};
    const std::string path = writeBinary("rt.trace", addrs);

    EXPECT_TRUE(isBinaryTraceFile(path));
    EXPECT_EQ(validateTraceFile(path), "");

    TraceReader reader(path);
    EXPECT_EQ(reader.numRecords(), addrs.size());
    EXPECT_EQ(drain(reader), addrs);

    // rewind() restarts at the first record.
    reader.rewind();
    EXPECT_EQ(drain(reader), addrs);
}

TEST(TraceFile, BinaryToCsvToBinaryIsByteExact)
{
    const std::vector<Addr> addrs =
        test::randomTrace(5000, 1ull << 48, 0xBEEF);
    const std::string bin1 = writeBinary("b1.trace", addrs);
    const std::string csv = tmpPath("b1.csv");
    const std::string bin2 = tmpPath("b2.trace");

    EXPECT_EQ(convertBinaryToCsv(bin1, csv), addrs.size());
    EXPECT_EQ(convertCsvToBinary(csv, bin2), addrs.size());
    EXPECT_EQ(fileBytes(bin1), fileBytes(bin2));
}

TEST(TraceFile, CsvToBinaryToCsvIsByteExactForCanonicalCsv)
{
    const std::vector<Addr> addrs =
        test::randomTrace(3000, 1ull << 40, 0xCAFE);
    const std::string csv1 = tmpPath("c1.csv");
    {
        CsvTraceWriter writer(csv1);
        writer.append(addrs.data(), addrs.size());
        writer.close();
    }
    EXPECT_FALSE(isBinaryTraceFile(csv1));
    EXPECT_EQ(validateTraceFile(csv1), "");

    const std::string bin = tmpPath("c1.trace");
    const std::string csv2 = tmpPath("c2.csv");
    EXPECT_EQ(convertCsvToBinary(csv1, bin), addrs.size());
    EXPECT_EQ(convertBinaryToCsv(bin, csv2), addrs.size());
    EXPECT_EQ(fileBytes(csv1), fileBytes(csv2));
}

TEST(TraceFile, EmptyTraceRoundTripsInBothDirections)
{
    const std::string bin1 = writeBinary("empty.trace", {});
    EXPECT_EQ(validateTraceFile(bin1), "");
    {
        TraceReader reader(bin1);
        EXPECT_EQ(reader.numRecords(), 0u);
        Addr a;
        EXPECT_EQ(reader.read(&a, 1), 0u);
    }

    const std::string csv = tmpPath("empty.csv");
    const std::string bin2 = tmpPath("empty2.trace");
    EXPECT_EQ(convertBinaryToCsv(bin1, csv), 0u);
    EXPECT_EQ(fileBytes(csv), "");
    EXPECT_EQ(validateTraceFile(csv), "");
    EXPECT_EQ(convertCsvToBinary(csv, bin2), 0u);
    EXPECT_EQ(fileBytes(bin1), fileBytes(bin2));
}

TEST(TraceFile, SingleRecordRoundTrip)
{
    const std::string bin1 = writeBinary("one.trace", {7});
    const std::string csv = tmpPath("one.csv");
    const std::string bin2 = tmpPath("one2.trace");
    EXPECT_EQ(convertBinaryToCsv(bin1, csv), 1u);
    EXPECT_EQ(fileBytes(csv), "7\n");
    EXPECT_EQ(convertCsvToBinary(csv, bin2), 1u);
    EXPECT_EQ(fileBytes(bin1), fileBytes(bin2));
}

TEST(TraceFile, RandomizedRoundTripProperty)
{
    // Many random lengths and address widths: the conversion pipeline
    // must be lossless and byte-exact for all of them.
    Rng rng(0x7EA7);
    for (int trial = 0; trial < 8; ++trial) {
        const uint64_t len = rng.below(2000);
        std::vector<Addr> addrs;
        addrs.reserve(len);
        for (uint64_t i = 0; i < len; ++i)
            addrs.push_back(rng.next64() >> rng.below(64));
        const std::string tag = std::to_string(trial);
        const std::string bin1 =
            writeBinary("prop" + tag + ".trace", addrs);
        const std::string csv = tmpPath("prop" + tag + ".csv");
        const std::string bin2 = tmpPath("prop" + tag + "b.trace");
        ASSERT_EQ(convertBinaryToCsv(bin1, csv), len);
        ASSERT_EQ(convertCsvToBinary(csv, bin2), len);
        ASSERT_EQ(fileBytes(bin1), fileBytes(bin2)) << "trial " << trial;

        TraceReader reader(bin2);
        ASSERT_EQ(drain(reader), addrs) << "trial " << trial;
    }
}

TEST(TraceFile, OpenTraceSourceSniffsTheFormat)
{
    const std::vector<Addr> addrs = {3, 1, 4, 1, 5, 9, 2, 6};
    const std::string bin = writeBinary("sniff.trace", addrs);
    const std::string csv = tmpPath("sniff.csv");
    convertBinaryToCsv(bin, csv);

    EXPECT_EQ(drain(*openTraceSource(bin)), addrs);
    EXPECT_EQ(drain(*openTraceSource(csv)), addrs);
}

// -------------------------------------------------------- validation

TEST(TraceFile, ValidateRejectsMissingFile)
{
    const std::string err = validateTraceFile("/nonexistent/x.trace");
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("/nonexistent/x.trace"), std::string::npos);
}

TEST(TraceFile, ValidateRejectsTruncatedBinary)
{
    const std::string path =
        writeBinary("trunc.trace", {1, 2, 3, 4, 5, 6, 7, 8});
    // Chop off the last record: size no longer matches the header.
    ASSERT_EQ(::truncate(path.c_str(),
                         static_cast<off_t>(kTraceHeaderBytes + 7 * 8)),
              0);
    EXPECT_NE(validateTraceFile(path), "");
    EXPECT_DEATH(TraceReader reader(path), "");
}

TEST(TraceFile, ValidateRejectsMalformedCsv)
{
    const std::string path = tmpPath("bad.csv");
    {
        std::ofstream out(path);
        out << "123\n-5\n99\n";
    }
    const std::string err = validateTraceFile(path);
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("line 2"), std::string::npos);

    // Overflow past uint64 is malformed too, not silently wrapped.
    {
        std::ofstream out(path);
        out << "99999999999999999999999\n";
    }
    EXPECT_NE(validateTraceFile(path), "");
}

// -------------------------------------------------------- TraceStream

TEST(TraceStream, DeterministicResettableAndCloneable)
{
    const std::string path = writeBinary(
        "stream.trace", test::randomTrace(4000, 1 << 20, 0x51EA));
    TraceStream s(path);
    EXPECT_STREQ(s.kind(), "trace");

    const auto first = test::collect(s, 1000);
    s.reset();
    const auto second = test::collect(s, 1000);
    EXPECT_EQ(first, second);

    auto cloned = s.clone();
    const auto third = test::collect(*cloned, 1000);
    EXPECT_EQ(first, third);
}

TEST(TraceStream, NextBlockMatchesNext)
{
    const std::string path = writeBinary(
        "block.trace", test::randomTrace(1000, 1 << 16, 0xB10C));
    TraceStream s(path, /*buffer_records=*/128); // Force refills.

    auto serial = s.clone();
    std::vector<Addr> expect;
    for (int i = 0; i < 3000; ++i)
        expect.push_back(serial->next());

    // Uneven block sizes so block and buffer boundaries interleave.
    std::vector<Addr> got(3000);
    uint64_t off = 0;
    for (uint64_t n : {1ull, 7ull, 256ull, 1000ull, 1736ull}) {
        s.nextBlock(got.data() + off, n);
        off += n;
    }
    EXPECT_EQ(got, expect);
}

TEST(TraceStream, WrapsAtEndOfTraceAndCountsLaps)
{
    const std::vector<Addr> addrs = test::randomTrace(100, 1000, 0x3A9);
    const std::string path = writeBinary("wrap.trace", addrs);
    TraceStream s(path, /*buffer_records=*/32);

    const auto seen = test::collect(s, 250);
    for (int i = 0; i < 250; ++i)
        EXPECT_EQ(seen[i], addrs[i % 100]) << "access " << i;
    EXPECT_EQ(s.wraps(), 2u);

    s.reset();
    EXPECT_EQ(s.wraps(), 0u);
    EXPECT_EQ(test::collect(s, 100), addrs);
}

TEST(TraceStreamDeathTest, EmptyTraceIsFatalAtConstruction)
{
    const std::string path = writeBinary("noaddrs.trace", {});
    EXPECT_DEATH(TraceStream stream(path), "");
}

// ------------------------------------------- replay through the engine

TEST(TraceReplay, BitExactThroughShardedEngineAcrossThreadCounts)
{
    // A recorded trace replayed through the sharded engine must give
    // identical per-shard stats for inline and threaded dispatch —
    // the engine's determinism guarantee extended to trace inputs.
    const std::string path = tmpPath("engine.trace");
    {
        ZipfStream zipf(1 << 12, 0.9, 0, 0x7A1);
        std::vector<Addr> block(20'000);
        zipf.nextBlock(block.data(), block.size());
        TraceWriter writer(path);
        writer.append(block.data(), block.size());
        writer.close();
    }

    ShardedTalusCache::Config cfg;
    cfg.numShards = 4;
    cfg.shard.llcLines = 512;
    cfg.shard.ways = 16;
    cfg.shard.allocatorName = "HillClimb";
    cfg.shard.seed = 0xD15C;

    ShardedReplayOptions opts;
    opts.accesses = 50'000; // Wraps the 20k-record trace twice.
    opts.blockSize = 4096;
    opts.reconfigEveryBlocks = 2;
    opts.applyEpochLen = 4096;

    std::vector<std::vector<TalusCache::PartStats>> stats;
    for (uint32_t threads : {0u, 1u, 4u}) {
        cfg.threads = threads;
        ShardedTalusCache cache(cfg);
        TraceStream stream(path);
        runShardedReplay(cache, stream, opts);
        std::vector<TalusCache::PartStats> per_shard;
        for (uint32_t s = 0; s < cfg.numShards; ++s)
            per_shard.push_back(cache.shardStats(s, 0));
        stats.push_back(std::move(per_shard));
    }
    for (size_t t = 1; t < stats.size(); ++t) {
        for (uint32_t s = 0; s < cfg.numShards; ++s) {
            EXPECT_EQ(stats[t][s].accesses, stats[0][s].accesses)
                << "threads variant " << t << " shard " << s;
            EXPECT_EQ(stats[t][s].misses, stats[0][s].misses)
                << "threads variant " << t << " shard " << s;
        }
    }
}

} // namespace
} // namespace talus
