/**
 * @file
 * Tests for the allocation algorithms, centred on the paper's core
 * systems claim: hill climbing is optimal on convex curves (and only
 * there), Lookahead crosses plateaus, and fair allocation is what it
 * says.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "alloc/allocator_factory.h"
#include "alloc/dp_optimal.h"
#include "alloc/fair_alloc.h"
#include "alloc/hill_climb.h"
#include "alloc/lookahead.h"
#include "core/convex_hull.h"
#include "util/rng.h"

namespace talus {
namespace {

MissCurve
cliffCurve(double plateau_until, double drop_at, double high, double low,
           double max_size)
{
    // Flat at `high` until drop_at, then `low`.
    std::vector<CurvePoint> pts;
    pts.push_back({0, high});
    pts.push_back({plateau_until, high});
    pts.push_back({drop_at - 1e-6, high});
    pts.push_back({drop_at, low});
    pts.push_back({max_size, low});
    return MissCurve(pts);
}

uint64_t
total(const std::vector<uint64_t>& v)
{
    return std::accumulate(v.begin(), v.end(), uint64_t{0});
}

TEST(Fair, EqualSplit)
{
    FairAllocator fair;
    const std::vector<MissCurve> curves(4, MissCurve({{0, 1}, {100, 0}}));
    const auto alloc = fair.allocate(curves, 400, 10);
    for (uint64_t a : alloc)
        EXPECT_EQ(a, 100u);
}

TEST(Fair, RemainderRoundRobin)
{
    FairAllocator fair;
    const std::vector<MissCurve> curves(3, MissCurve({{0, 1}, {100, 0}}));
    const auto alloc = fair.allocate(curves, 100, 10);
    EXPECT_EQ(total(alloc), 100u);
    EXPECT_EQ(alloc[0], 40u);
    EXPECT_EQ(alloc[1], 30u);
    EXPECT_EQ(alloc[2], 30u);
}

TEST(HillClimb, GreedyOnConvexMatchesDp)
{
    // Property: on convex curves hill climbing is optimal == DP.
    Rng rng(61);
    HillClimbAllocator hill;
    DpOptimalAllocator dp;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<MissCurve> curves;
        const int n = 2 + static_cast<int>(rng.below(4));
        for (int i = 0; i < n; ++i) {
            // Random convex decreasing curve: decreasing increments.
            std::vector<CurvePoint> pts;
            double value = 50 + static_cast<double>(rng.below(100));
            double slope = 5 + rng.unit() * 10;
            for (int x = 0; x <= 16; ++x) {
                pts.push_back({static_cast<double>(x * 8), value});
                value -= slope;
                slope *= 0.6 + rng.unit() * 0.3; // Shrinking slope.
                if (value < 0)
                    value = 0;
            }
            curves.push_back(MissCurve(pts));
        }
        const auto hill_alloc = hill.allocate(curves, 128, 8);
        const auto dp_alloc = dp.allocate(curves, 128, 8);
        EXPECT_NEAR(allocationCost(curves, hill_alloc),
                    allocationCost(curves, dp_alloc), 1e-6)
            << "trial " << trial;
    }
}

TEST(HillClimb, StuckOnPlateau)
{
    // Two identical cliff curves: plateau to 90, cliff at 100. With
    // budget 100, the optimum gives everything to one app; greedy
    // hill climbing sees zero marginal gain anywhere on the plateau
    // and splits the budget, capturing no cliff.
    const MissCurve cliff = cliffCurve(0, 100, 10, 1, 200);
    const std::vector<MissCurve> curves{cliff, cliff};
    HillClimbAllocator hill;
    DpOptimalAllocator dp;
    const auto hill_alloc = hill.allocate(curves, 100, 10);
    const auto dp_alloc = dp.allocate(curves, 100, 10);
    EXPECT_GT(allocationCost(curves, hill_alloc),
              allocationCost(curves, dp_alloc) + 5.0);
}

TEST(HillClimb, OptimalAfterConvexification)
{
    // The same situation after Talus pre-processing (convex hulls):
    // hill climbing matches DP. This is the paper's central claim
    // about simplifying cache management.
    const MissCurve cliff = cliffCurve(0, 100, 10, 1, 200);
    const MissCurve hull = ConvexHull(cliff).hull();
    const std::vector<MissCurve> curves{hull, hull};
    HillClimbAllocator hill;
    DpOptimalAllocator dp;
    const auto hill_alloc = hill.allocate(curves, 100, 10);
    const auto dp_alloc = dp.allocate(curves, 100, 10);
    EXPECT_NEAR(allocationCost(curves, hill_alloc),
                allocationCost(curves, dp_alloc), 1e-6);
}

TEST(Lookahead, CrossesPlateaus)
{
    // Lookahead sees across the plateau and gives one app the whole
    // cliff (the "all-or-nothing" behaviour of Sec. VII-D).
    const MissCurve cliff = cliffCurve(0, 100, 10, 1, 200);
    const std::vector<MissCurve> curves{cliff, cliff};
    LookaheadAllocator lookahead;
    const auto alloc = lookahead.allocate(curves, 100, 10);
    // One app gets (at least) the cliff, the other ~nothing.
    const uint64_t hi = std::max(alloc[0], alloc[1]);
    const uint64_t lo = std::min(alloc[0], alloc[1]);
    EXPECT_GE(hi, 100u);
    EXPECT_EQ(lo, 0u);
}

TEST(Lookahead, MatchesDpOnCliffPair)
{
    const MissCurve cliff = cliffCurve(0, 100, 10, 1, 200);
    const std::vector<MissCurve> curves{cliff, cliff};
    LookaheadAllocator lookahead;
    DpOptimalAllocator dp;
    EXPECT_NEAR(
        allocationCost(curves, lookahead.allocate(curves, 100, 10)),
        allocationCost(curves, dp.allocate(curves, 100, 10)), 1e-6);
}

TEST(Lookahead, SpreadsWhenNothingHelps)
{
    // All-flat curves: no extension helps; capacity is still fully
    // handed out.
    const MissCurve flat({{0, 5}, {200, 5}});
    LookaheadAllocator lookahead;
    const auto alloc = lookahead.allocate({flat, flat}, 100, 10);
    EXPECT_EQ(total(alloc), 100u);
}

TEST(DpOptimal, BeatsOrMatchesEveryOtherAllocator)
{
    Rng rng(67);
    DpOptimalAllocator dp;
    HillClimbAllocator hill;
    LookaheadAllocator lookahead;
    FairAllocator fair;
    for (int trial = 0; trial < 30; ++trial) {
        // Random curves with random plateaus: adversarial for greedy.
        std::vector<MissCurve> curves;
        const int n = 2 + static_cast<int>(rng.below(3));
        for (int i = 0; i < n; ++i) {
            std::vector<CurvePoint> pts;
            double value = 30 + static_cast<double>(rng.below(50));
            for (int x = 0; x <= 12; ++x) {
                pts.push_back({static_cast<double>(x * 10), value});
                if (rng.chance(0.5))
                    value -= static_cast<double>(rng.below(12));
                if (value < 0)
                    value = 0;
            }
            curves.push_back(MissCurve(pts));
        }
        const double dp_cost =
            allocationCost(curves, dp.allocate(curves, 120, 10));
        for (Allocator* other :
             {static_cast<Allocator*>(&hill),
              static_cast<Allocator*>(&lookahead),
              static_cast<Allocator*>(&fair)}) {
            EXPECT_LE(dp_cost,
                      allocationCost(curves,
                                     other->allocate(curves, 120, 10)) +
                          1e-6)
                << other->name() << " trial " << trial;
        }
    }
}

TEST(Allocators, RespectBudget)
{
    Rng rng(71);
    const MissCurve curve({{0, 10}, {50, 5}, {100, 1}, {200, 0.5}});
    const std::vector<MissCurve> curves{curve, curve, curve};
    for (const std::string& name : knownAllocators()) {
        auto alloc = makeAllocator(name);
        const auto result = alloc->allocate(curves, 150, 10);
        EXPECT_EQ(result.size(), 3u);
        EXPECT_LE(total(result), 150u) << name;
        // Non-wasteful: allocators hand out all whole granules.
        EXPECT_GE(total(result), 150u - 3 * 10) << name;
    }
}

TEST(Allocators, SinglePartitionGetsWholeBudget)
{
    const std::vector<MissCurve> curves{
        MissCurve({{0, 10}, {50, 5}, {100, 1}})};
    for (const auto& name : knownAllocators()) {
        auto alloc = makeAllocator(name);
        const auto out = alloc->allocate(curves, 100, 10);
        ASSERT_EQ(out.size(), 1u) << name;
        EXPECT_EQ(out[0], 100u) << name;
    }
}

TEST(AllocatorFactory, KnownNames)
{
    for (const std::string& name : knownAllocators())
        EXPECT_STREQ(makeAllocator(name)->name(), name.c_str());
}

} // namespace
} // namespace talus
