/**
 * @file
 * Suite-wide property tests: every synthetic application must satisfy
 * the invariants Talus relies on — a sane LRU miss curve (bounded,
 * non-increasing, saturating by its documented footprint), a valid
 * convex hull below it, and well-formed Talus configurations at every
 * size. This pins the whole workload suite against regressions.
 */

#include <gtest/gtest.h>

#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "sim/single_app_sim.h"
#include "workload/spec_suite.h"

namespace talus {
namespace {

constexpr uint64_t kLinesPerMb = 32; // Tiny scale: fast, still shaped.

class SuitePropertyTest : public ::testing::TestWithParam<std::string>
{
  protected:
    MissCurve
    measuredCurve(const AppSpec& app) const
    {
        auto stream = app.buildStream(kLinesPerMb, 0, 2026);
        const uint64_t max_lines = std::max<uint64_t>(
            64, static_cast<uint64_t>(app.footprintMb() * 2 *
                                      kLinesPerMb));
        return measureLruCurve(*stream, 150000, max_lines,
                               std::max<uint64_t>(1, max_lines / 64));
    }
};

TEST_P(SuitePropertyTest, LruCurveIsSane)
{
    const AppSpec& app = findApp(GetParam());
    const MissCurve curve = measuredCurve(app);
    // Bounded miss ratios, anchored at 1.0 for size 0.
    EXPECT_DOUBLE_EQ(curve.at(0), 1.0);
    for (const CurvePoint& p : curve.points()) {
        EXPECT_GE(p.misses, 0.0) << app.name;
        EXPECT_LE(p.misses, 1.0) << app.name;
    }
    // Mattson curves are non-increasing by construction; verify.
    EXPECT_TRUE(curve.isNonIncreasing(1e-9)) << app.name;
}

TEST_P(SuitePropertyTest, CurveSaturatesByFootprint)
{
    const AppSpec& app = findApp(GetParam());
    const MissCurve curve = measuredCurve(app);
    // Past 2x the documented footprint only compulsory misses remain.
    // (2x covers the stack-distance inflation of mixed components.)
    const double beyond = app.footprintMb() * 2 * kLinesPerMb;
    EXPECT_LT(curve.at(beyond), 0.2) << app.name;
}

TEST_P(SuitePropertyTest, HullIsConvexAndBelowCurve)
{
    const AppSpec& app = findApp(GetParam());
    const MissCurve curve = measuredCurve(app);
    const ConvexHull hull(curve);
    EXPECT_TRUE(hull.hull().isConvex(1e-7)) << app.name;
    for (const CurvePoint& p : curve.points())
        EXPECT_LE(hull.at(p.size), p.misses + 1e-9) << app.name;
}

TEST_P(SuitePropertyTest, TalusConfigValidAtEverySize)
{
    const AppSpec& app = findApp(GetParam());
    const MissCurve curve = measuredCurve(app);
    const ConvexHull hull(curve);
    const double max_size = curve.maxSize();
    for (int i = 0; i <= 20; ++i) {
        const double s = max_size * i / 20.0;
        const TalusConfig cfg = computeTalusConfig(hull, s);
        EXPECT_GE(cfg.rho, 0.0) << app.name;
        EXPECT_LE(cfg.rho, 1.0) << app.name;
        EXPECT_GE(cfg.s1, 0.0) << app.name;
        EXPECT_GE(cfg.s2, 0.0) << app.name;
        EXPECT_NEAR(cfg.s1 + cfg.s2, s, 1e-6) << app.name;
        if (!cfg.degenerate) {
            // The promise never exceeds the raw curve.
            EXPECT_LE(cfg.predictedMisses(curve), curve.at(s) + 1e-9)
                << app.name << " at " << s;
        }
    }
}

TEST_P(SuitePropertyTest, StreamsAreDeterministic)
{
    const AppSpec& app = findApp(GetParam());
    auto a = app.buildStream(kLinesPerMb, 3, 77);
    auto b = app.buildStream(kLinesPerMb, 3, 77);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a->next(), b->next()) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SuitePropertyTest,
    ::testing::ValuesIn(allAppNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
        return info.param;
    });

} // namespace
} // namespace talus
