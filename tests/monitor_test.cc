/**
 * @file
 * Tests for the monitoring stack: exact stack distances, Mattson
 * curves, UMON hardware models (against the exact curves), combined
 * 4x-coverage monitors, and policy monitor arrays.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc_lru.h"
#include "monitor/combined_umon.h"
#include "monitor/mattson_curve.h"
#include "monitor/policy_monitor.h"
#include "monitor/stack_distance.h"
#include "monitor/umon.h"
#include "sim/single_app_sim.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/uniform_random.h"

namespace talus {
namespace {

// ------------------------------------------------ StackDistanceCounter

/** Brute-force stack distance: position in an explicit LRU stack. */
class BruteStack
{
  public:
    uint64_t
    access(Addr addr)
    {
        for (size_t i = 0; i < stack_.size(); ++i) {
            if (stack_[i] == addr) {
                stack_.erase(stack_.begin() +
                             static_cast<std::ptrdiff_t>(i));
                stack_.insert(stack_.begin(), addr);
                return i;
            }
        }
        stack_.insert(stack_.begin(), addr);
        return StackDistanceCounter::kCold;
    }

  private:
    std::vector<Addr> stack_;
};

TEST(StackDistance, MatchesBruteForceOnRandomTrace)
{
    StackDistanceCounter fast;
    BruteStack slow;
    auto trace = test::randomTrace(20000, 300, 42);
    for (Addr a : trace)
        ASSERT_EQ(fast.access(a), slow.access(a));
}

TEST(StackDistance, MatchesBruteForceOnScan)
{
    StackDistanceCounter fast;
    BruteStack slow;
    auto trace = test::scanTrace(5000, 128);
    for (Addr a : trace)
        ASSERT_EQ(fast.access(a), slow.access(a));
}

TEST(StackDistance, SurvivesCompaction)
{
    // Enough accesses to force several internal compactions.
    StackDistanceCounter fast;
    BruteStack slow;
    auto trace = test::randomTrace(100000, 100, 7);
    for (Addr a : trace)
        ASSERT_EQ(fast.access(a), slow.access(a));
    EXPECT_EQ(fast.distinctAddrs(), 100u);
}

TEST(StackDistance, ImmediateReuseIsZero)
{
    StackDistanceCounter counter;
    EXPECT_EQ(counter.access(5), StackDistanceCounter::kCold);
    EXPECT_EQ(counter.access(5), 0u);
    counter.access(6);
    EXPECT_EQ(counter.access(5), 1u);
}

// ------------------------------------------------------- MattsonCurve

TEST(Mattson, MatchesDirectLruSimulationAtEverySize)
{
    // The stack property in action: one Mattson pass must equal an
    // independent LRU simulation at each size.
    auto trace = test::randomTrace(30000, 400, 9);
    MattsonCurve mattson(512);
    for (Addr a : trace)
        mattson.access(a);

    for (uint64_t size : {16u, 64u, 128u, 256u, 512u}) {
        FullyAssocLru ref(size);
        for (Addr a : trace)
            ref.access(a);
        EXPECT_EQ(mattson.missesAt(size),
                  ref.accesses() - ref.hits())
            << "size=" << size;
    }
}

TEST(Mattson, ScanCliffShape)
{
    // Cyclic scan of W: miss ratio 1.0 below W, ~0 at W.
    const uint64_t w = 256;
    MattsonCurve mattson(512);
    for (Addr a : test::scanTrace(w * 100, w))
        mattson.access(a);
    const MissCurve curve = mattson.curve(64);
    EXPECT_GT(curve.at(static_cast<double>(w - 64)), 0.95);
    EXPECT_LT(curve.at(static_cast<double>(w)), 0.05);
}

TEST(Mattson, CurveIsNonIncreasingAndBounded)
{
    MattsonCurve mattson(256);
    for (Addr a : test::randomTrace(20000, 300, 10))
        mattson.access(a);
    const MissCurve curve = mattson.curve(16);
    EXPECT_TRUE(curve.isNonIncreasing());
    EXPECT_DOUBLE_EQ(curve.at(0), 1.0);
    EXPECT_GE(curve.at(256), 0.0);
}

TEST(Mattson, ResetClears)
{
    MattsonCurve mattson(64);
    mattson.access(1);
    mattson.reset();
    EXPECT_EQ(mattson.accesses(), 0u);
}

// --------------------------------------------------------------- UMon

TEST(UMon, UnsampledMatchesMattsonClosely)
{
    // Monitor as big as the modeled cache: no sampling, so the UMON
    // way-hit counters must reproduce the exact curve (up to set-
    // mapping noise).
    const uint64_t modeled = 1024;
    UMon::Config cfg;
    cfg.ways = 64;
    cfg.sets = 16; // 1024 monitor lines == modeled size.
    cfg.modeledLines = modeled;
    UMon umon(cfg);
    MattsonCurve mattson(modeled);

    auto trace = test::randomTrace(200000, 1200, 11);
    for (Addr a : trace) {
        umon.access(a);
        mattson.access(a);
    }
    const MissCurve approx = umon.curve();
    const MissCurve exact = mattson.curve(64);
    for (uint64_t s = 128; s <= modeled; s += 128) {
        EXPECT_NEAR(approx.at(static_cast<double>(s)),
                    exact.at(static_cast<double>(s)), 0.06)
            << "size=" << s;
    }
}

TEST(UMon, SampledApproximatesLargerCache)
{
    // Theorem 4 / Assumption 3: a 1K-line monitor sampling 1:4 models
    // a 4K-line cache.
    const uint64_t modeled = 4096;
    UMon::Config cfg;
    cfg.ways = 64;
    cfg.sets = 16;
    cfg.modeledLines = modeled;
    UMon umon(cfg);
    MattsonCurve mattson(modeled);

    auto trace = test::randomTrace(400000, 5000, 13);
    for (Addr a : trace) {
        umon.access(a);
        mattson.access(a);
    }
    EXPECT_GT(umon.sampledAccesses(), 50000u);
    const MissCurve approx = umon.curve();
    const MissCurve exact = mattson.curve(256);
    for (uint64_t s = 1024; s <= modeled; s += 1024) {
        EXPECT_NEAR(approx.at(static_cast<double>(s)),
                    exact.at(static_cast<double>(s)), 0.08)
            << "size=" << s;
    }
}

TEST(UMon, ScanCliffVisible)
{
    const uint64_t modeled = 2048;
    UMon::Config cfg;
    cfg.modeledLines = modeled;
    UMon umon(cfg);
    for (Addr a : test::scanTrace(600000, 1024))
        umon.access(a);
    const MissCurve curve = umon.curve();
    EXPECT_GT(curve.at(512), 0.9);
    EXPECT_LT(curve.at(2000), 0.15);
}

TEST(UMon, DecayHalvesCounters)
{
    UMon::Config cfg;
    cfg.modeledLines = 1024;
    UMon umon(cfg);
    for (Addr a : test::randomTrace(10000, 100, 15))
        umon.access(a);
    const uint64_t before = umon.sampledAccesses();
    umon.decay();
    EXPECT_EQ(umon.sampledAccesses(), before / 2);
}

// ------------------------------------------------------- CombinedUMon

TEST(UMon, ResetClearsSampledState)
{
    UMon::Config cfg;
    cfg.ways = 8;
    cfg.sets = 4;
    cfg.modeledLines = 1 << 12;
    UMon umon(cfg);
    for (Addr a = 0; a < 4096; ++a)
        umon.access(a);
    EXPECT_GT(umon.sampledAccesses(), 0u);

    umon.reset();
    EXPECT_EQ(umon.sampledAccesses(), 0u);
    // A reset monitor still yields a well-formed (anchored) curve.
    const MissCurve curve = umon.curve();
    EXPECT_EQ(curve.numPoints(), cfg.ways + 1u);
    EXPECT_DOUBLE_EQ(curve.point(0).misses, 1.0);
}

TEST(CombinedUMon, CoversFourTimesLlc)
{
    CombinedUMon::Config cfg;
    cfg.llcLines = 1024;
    CombinedUMon mon(cfg);
    EXPECT_EQ(mon.coveredLines(), 4096u);
    for (Addr a : test::randomTrace(100000, 2000, 17))
        mon.access(a);
    const MissCurve curve = mon.curve();
    EXPECT_GE(curve.maxSize(), 4096.0);
    EXPECT_TRUE(curve.isNonIncreasing(1e-9));
}

TEST(CombinedUMon, SeesCliffBeyondLlc)
{
    // The whole point of the second monitor (Sec. VI-C): a cliff at
    // 2x LLC must be visible so Talus can trace the hull toward it.
    CombinedUMon::Config cfg;
    cfg.llcLines = 1024;
    CombinedUMon mon(cfg);
    for (Addr a : test::scanTrace(2000000, 2048))
        mon.access(a);
    const MissCurve curve = mon.curve();
    EXPECT_GT(curve.at(1024), 0.9); // Still missing at LLC size.
    EXPECT_LT(curve.at(3500), 0.3); // Fits beyond the cliff.
}

// -------------------------------------------------- PolicyMonitorArray

TEST(PolicyMonitor, ApproximatesDirectSrripSweep)
{
    PolicyMonitorArray::Config cfg;
    cfg.modeledSizes = {256, 512, 1024};
    cfg.monitorLines = 512;
    cfg.ways = 16;
    cfg.policyName = "SRRIP";
    PolicyMonitorArray mon(cfg);

    UniformRandom stream(1024, 0, 19);
    for (int i = 0; i < 400000; ++i)
        mon.access(stream.next());

    // Direct SRRIP sweep at the same sizes.
    UniformRandom direct_stream(1024, 0, 19);
    SweepOptions opts;
    opts.policyName = "SRRIP";
    opts.ways = 16;
    opts.measureAccesses = 200000;
    const MissCurve direct =
        sweepPolicyCurve(direct_stream, {256, 512, 1024}, opts);

    const MissCurve approx = mon.curve();
    for (uint64_t s : {256u, 512u, 1024u}) {
        EXPECT_NEAR(approx.at(static_cast<double>(s)),
                    direct.at(static_cast<double>(s)), 0.1)
            << "size=" << s;
    }
}

TEST(PolicyMonitor, ReportsImpracticalStateSize)
{
    // 64 monitors x 1K lines x 4B tags = 256KB (Sec. VI-C's point).
    PolicyMonitorArray::Config cfg;
    cfg.modeledSizes.assign(64, 1024);
    for (size_t i = 0; i < cfg.modeledSizes.size(); ++i)
        cfg.modeledSizes[i] = 1024 * (i + 1);
    cfg.monitorLines = 1024;
    PolicyMonitorArray mon(cfg);
    EXPECT_EQ(mon.stateBytes(), 64u * 1024 * 4);
}

TEST(PolicyMonitor, CurveMonotoneAndAnchored)
{
    PolicyMonitorArray::Config cfg;
    cfg.modeledSizes = {128, 256, 512};
    PolicyMonitorArray mon(cfg);
    for (Addr a : test::randomTrace(100000, 600, 21))
        mon.access(a);
    const MissCurve curve = mon.curve();
    EXPECT_DOUBLE_EQ(curve.at(0), 1.0);
    EXPECT_TRUE(curve.isNonIncreasing(1e-9));
}

} // namespace
} // namespace talus
