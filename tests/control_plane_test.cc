/**
 * @file
 * The control-plane extraction's anchors:
 *
 *  - runControlStep is pure: it reads only its input (which it never
 *    mutates) and is deterministic, so per-shard steps can run
 *    concurrently.
 *  - ControlPlane double-buffers outputs with monotonic epoch tags;
 *    the latest computed decision wins, commit() flips buffers.
 *  - TalusCache::reconfigure() is exactly prepareReconfigure() +
 *    applyReconfigure() — the staged path is bit-exact with the
 *    synchronous wrapper.
 *  - Epoch-deferred application fires at the scheduled fixed access
 *    count and at no other point, independent of batch block sizes.
 *  - missRatio() and stats() describe the same resetStats() window.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc/allocator_factory.h"
#include "api/talus.h"
#include "control/control_plane.h"
#include "control/control_step.h"
#include "util/rng.h"

namespace talus {
namespace {

/** A cliffy two-partition input with fixed knobs. */
ControlInput
sampleInput()
{
    ControlInput in;
    in.numParts = 2;
    in.llcLines = 4096;
    in.capacityLines = 4096;
    in.granule = 64;
    in.allocateOnHulls = true;
    in.curves = {
        MissCurve({{0.0, 1.0}, {2048.0, 0.95}, {3072.0, 0.1},
                   {4096.0, 0.1}}),
        MissCurve({{0.0, 1.0}, {1024.0, 0.4}, {4096.0, 0.2}}),
    };
    in.intervalAccesses = {10'000, 30'000};
    return in;
}

TalusCache::Config
cacheConfig(uint64_t reconfig_interval = 0)
{
    TalusCache::Config cfg;
    cfg.llcLines = 2048;
    cfg.ways = 16;
    cfg.numParts = 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = reconfig_interval;
    cfg.seed = 99;
    return cfg;
}

std::vector<Addr>
trace(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs(n);
    for (Addr& a : addrs)
        a = rng.below(1 << 13);
    return addrs;
}

void
expectSameState(const TalusCache& got, const TalusCache& want)
{
    ASSERT_EQ(got.numParts(), want.numParts());
    EXPECT_EQ(got.reconfigurations(), want.reconfigurations());
    EXPECT_EQ(got.accessCount(), want.accessCount());
    for (uint32_t p = 0; p < want.numParts(); ++p) {
        const auto g = got.stats(p);
        const auto w = want.stats(p);
        EXPECT_EQ(g.accesses, w.accesses) << "part " << p;
        EXPECT_EQ(g.misses, w.misses) << "part " << p;
        EXPECT_EQ(g.targetLines, w.targetLines) << "part " << p;
        EXPECT_DOUBLE_EQ(g.rho, w.rho) << "part " << p;
    }
}

// --- The pure step. ---------------------------------------------------

TEST(ControlStep, IsDeterministicAndLeavesInputUntouched)
{
    const ControlInput in = sampleInput();
    const ControlInput copy = in;
    auto allocator_a = makeAllocator("HillClimb");
    auto allocator_b = makeAllocator("HillClimb");

    ControlOutput a, b;
    runControlStep(in, *allocator_a, a);
    runControlStep(in, *allocator_b, b);

    EXPECT_EQ(a.alloc, b.alloc);
    ASSERT_EQ(a.curves.size(), b.curves.size());

    // The input is immutable: same curve points and volumes after.
    ASSERT_EQ(in.curves.size(), copy.curves.size());
    EXPECT_EQ(in.intervalAccesses, copy.intervalAccesses);
    for (size_t p = 0; p < copy.curves.size(); ++p) {
        const auto& gp = in.curves[p].points();
        const auto& wp = copy.curves[p].points();
        ASSERT_EQ(gp.size(), wp.size());
        for (size_t i = 0; i < wp.size(); ++i) {
            EXPECT_DOUBLE_EQ(gp[i].size, wp[i].size);
            EXPECT_DOUBLE_EQ(gp[i].misses, wp[i].misses);
        }
    }
}

TEST(ControlStep, AllocatesWithinUsableCapacityAndEchoesCurves)
{
    const ControlInput in = sampleInput();
    auto allocator = makeAllocator("HillClimb");
    ControlOutput out;
    runControlStep(in, *allocator, out);

    ASSERT_EQ(out.alloc.size(), in.numParts);
    uint64_t total = 0;
    for (uint64_t a : out.alloc)
        total += a;
    EXPECT_LE(total, in.capacityLines);
    EXPECT_GT(total, 0u);
    // The raw (unweighted, unhulled) curves pass through for
    // configure() to size shadow partitions from.
    ASSERT_EQ(out.curves.size(), in.curves.size());
    EXPECT_EQ(out.curves[0].points().size(),
              in.curves[0].points().size());
}

TEST(ControlStep, UnmanagedHaircutShrinksTheAllocatedTotal)
{
    ControlInput in = sampleInput();
    auto allocator = makeAllocator("HillClimb");
    ControlOutput full, cut;
    runControlStep(in, *allocator, full);
    in.unmanagedHaircut = true;
    runControlStep(in, *allocator, cut);

    uint64_t full_total = 0, cut_total = 0;
    for (uint64_t a : full.alloc)
        full_total += a;
    for (uint64_t a : cut.alloc)
        cut_total += a;
    EXPECT_LE(cut_total, in.capacityLines * 9 / 10);
    EXPECT_LT(cut_total, full_total);
}

// --- The double-buffered plane. ---------------------------------------

TEST(ControlPlaneBuffers, ComputeStagesAndCommitSwaps)
{
    ControlPlane plane(makeAllocator("HillClimb"));
    ASSERT_TRUE(plane.hasAllocator());
    EXPECT_FALSE(plane.hasPending());
    EXPECT_EQ(plane.epochsComputed(), 0u);
    EXPECT_EQ(plane.epochsApplied(), 0u);

    const uint64_t e1 = plane.compute(sampleInput());
    EXPECT_EQ(e1, 1u);
    EXPECT_TRUE(plane.hasPending());
    EXPECT_EQ(plane.pending().epoch, 1u);
    EXPECT_EQ(plane.epochsComputed(), 1u);
    EXPECT_EQ(plane.epochsApplied(), 0u);

    const ControlOutput& applied = plane.commit();
    EXPECT_EQ(applied.epoch, 1u);
    EXPECT_FALSE(plane.hasPending());
    EXPECT_EQ(plane.epochsApplied(), 1u);
    EXPECT_EQ(plane.active().epoch, 1u);
}

TEST(ControlPlaneBuffers, LatestComputedDecisionWins)
{
    ControlPlane plane(makeAllocator("HillClimb"));
    plane.compute(sampleInput());
    plane.commit();

    // Two computes without an intervening commit: the second
    // overwrites the staging buffer; the active output is untouched.
    ControlInput in = sampleInput();
    plane.compute(in);
    in.intervalAccesses = {30'000, 10'000}; // Flip the weights.
    const uint64_t e3 = plane.compute(in);
    EXPECT_EQ(e3, 3u);
    EXPECT_EQ(plane.active().epoch, 1u);
    EXPECT_EQ(plane.commit().epoch, 3u);
    EXPECT_EQ(plane.epochsComputed(), 3u);
    EXPECT_EQ(plane.epochsApplied(), 2u);
}

TEST(ControlPlaneDeathTest, MisuseIsActionable)
{
    ControlPlane empty;
    EXPECT_FALSE(empty.hasAllocator());
    EXPECT_EXIT(empty.compute(sampleInput()),
                ::testing::ExitedWithCode(1), "needs an allocator");

    TalusCache cache(cacheConfig());
    EXPECT_EXIT(cache.applyReconfigure(), ::testing::ExitedWithCode(1),
                "no prepared configuration");
    EXPECT_EXIT(cache.applyReconfigureAtEpoch(1000),
                ::testing::ExitedWithCode(1),
                "no prepared configuration");
    TalusCache cache2(cacheConfig());
    cache2.prepareReconfigure();
    EXPECT_EXIT(cache2.applyReconfigureAtEpoch(0),
                ::testing::ExitedWithCode(1), "epochLen");
}

// --- The facade's staged path. ----------------------------------------

TEST(ControlPlaneFacade, ReconfigureEqualsPreparePlusApply)
{
    TalusCache sync(cacheConfig());
    TalusCache staged(cacheConfig());
    const std::vector<Addr> addrs = trace(40'000, 7);

    for (size_t i = 0; i < addrs.size(); ++i) {
        const PartId part = i & 1;
        sync.access(addrs[i], part);
        staged.access(addrs[i], part);
        if ((i + 1) % 10'000 == 0) {
            sync.reconfigure();
            staged.prepareReconfigure();
            EXPECT_TRUE(staged.hasPendingControl());
            staged.applyReconfigure();
        }
    }
    expectSameState(staged, sync);
    EXPECT_EQ(staged.controlPlane().epochsApplied(),
              sync.controlPlane().epochsApplied());
}

TEST(ControlPlaneFacade, DeferredApplicationFiresExactlyAtTheEpoch)
{
    TalusCache cache(cacheConfig());
    const std::vector<Addr> addrs = trace(25'000, 11);

    // Warm up past one reconfiguration so rho is meaningful.
    cache.accessBatch(Span<const Addr>(addrs.data(), 10'000), 0);
    cache.reconfigure();
    EXPECT_EQ(cache.reconfigurations(), 1u);

    cache.prepareReconfigure();
    cache.applyReconfigureAtEpoch(4096);
    // accessCount is 10'000, so the next epoch boundary is 12'288.
    EXPECT_EQ(cache.pendingApplyAt(), 12'288u);
    EXPECT_TRUE(cache.hasPendingControl());

    // Nothing applies until the boundary...
    uint64_t count = cache.accessCount();
    size_t i = 10'000;
    while (count + 1 < 12'288) {
        cache.access(addrs[i++], 0);
        count++;
        EXPECT_EQ(cache.reconfigurations(), 1u);
    }
    // ...and the boundary access applies it.
    cache.access(addrs[i++], 0);
    EXPECT_EQ(cache.reconfigurations(), 2u);
    EXPECT_FALSE(cache.hasPendingControl());
    EXPECT_EQ(cache.pendingApplyAt(), 0u);
    EXPECT_EQ(cache.accessCount(), 12'288u);
}

TEST(ControlPlaneFacade, DeferredApplicationIsBlockSizeInvariant)
{
    // Same trace, same control schedule, three different batch
    // blockings (including one big batch spanning the boundary):
    // identical final state.
    const std::vector<Addr> addrs = trace(30'000, 13);
    const std::vector<size_t> blockings = {1, 997, 30'000};

    std::vector<std::unique_ptr<TalusCache>> caches;
    for (size_t b = 0; b < blockings.size(); ++b) {
        auto cache = std::make_unique<TalusCache>(cacheConfig());
        // Prepare on untouched monitors, then defer: the apply point
        // (epoch 8192) lands mid-stream however the batches split.
        cache->prepareReconfigure();
        cache->applyReconfigureAtEpoch(8192);
        const size_t block = blockings[b];
        for (size_t off = 0; off < addrs.size(); off += block) {
            const size_t n = std::min(block, addrs.size() - off);
            cache->accessBatch(Span<const Addr>(addrs.data() + off, n),
                               0);
        }
        caches.push_back(std::move(cache));
    }
    for (size_t b = 1; b < caches.size(); ++b)
        expectSameState(*caches[b], *caches[0]);
    EXPECT_EQ(caches[0]->reconfigurations(), 1u);
}

TEST(ControlPlaneFacade, AutoReconfigStillFiresWithDeferredPending)
{
    // A scheduled apply and the automatic interval landing on the
    // same stream: the deferred (older) configuration applies first,
    // then the interval fires as usual — reconfigurations counts
    // both.
    TalusCache cache(cacheConfig(10'000));
    const std::vector<Addr> addrs = trace(20'000, 17);
    cache.accessBatch(Span<const Addr>(addrs.data(), 5'000), 0);
    cache.prepareReconfigure(); // Restarts the interval clock too.
    cache.applyReconfigureAtEpoch(7'000);
    EXPECT_EQ(cache.pendingApplyAt(), 7'000u);

    cache.accessBatch(Span<const Addr>(addrs.data() + 5'000, 15'000),
                      0);
    // Deferred apply at 7'000 plus the automatic fire 10'000 accesses
    // after the prepare (at count 15'000).
    EXPECT_EQ(cache.reconfigurations(), 2u);
    EXPECT_EQ(cache.accessCount(), 20'000u);
}

TEST(ControlPlaneFacade, FullReconfigureBeforeTheEpochCancelsSchedule)
{
    // Latest decision wins: a full reconfiguration running before the
    // scheduled boundary (here the automatic interval) supersedes the
    // stale scheduled application — it is canceled, not applied late.
    TalusCache cache(cacheConfig(10'000));
    const std::vector<Addr> addrs = trace(25'000, 23);
    cache.accessBatch(Span<const Addr>(addrs.data(), 5'000), 0);
    cache.prepareReconfigure(); // Interval clock restarts here.
    cache.applyReconfigureAtEpoch(20'000);
    EXPECT_EQ(cache.pendingApplyAt(), 20'000u);

    // The automatic fire at count 15'000 lands first and wins.
    cache.accessBatch(Span<const Addr>(addrs.data() + 5'000, 20'000),
                      0);
    EXPECT_EQ(cache.reconfigurations(), 2u); // 15'000 and 25'000.
    EXPECT_EQ(cache.pendingApplyAt(), 0u);
    EXPECT_FALSE(cache.hasPendingControl());
}

// --- Unified miss-ratio accounting (stats vs missRatio windows). ------

TEST(ControlPlaneFacade, MissRatioAndStatsShareResetWindows)
{
    TalusCache cache(cacheConfig());
    const std::vector<Addr> addrs = trace(30'000, 19);

    cache.accessBatch(Span<const Addr>(addrs.data(), 10'000), 0);
    cache.accessBatch(Span<const Addr>(addrs.data() + 10'000, 5'000),
                      1);
    cache.resetStats();
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);

    cache.accessBatch(Span<const Addr>(addrs.data() + 15'000, 15'000),
                      1);
    uint64_t accesses = 0, misses = 0;
    for (uint32_t p = 0; p < cache.numParts(); ++p) {
        accesses += cache.stats(p).accesses;
        misses += cache.stats(p).misses;
    }
    EXPECT_EQ(accesses, 15'000u);
    EXPECT_DOUBLE_EQ(cache.missRatio(),
                     static_cast<double>(misses) /
                         static_cast<double>(accesses));
}

} // namespace
} // namespace talus
