/**
 * @file
 * Tests for the TalusCache facade (src/api/): configuration
 * validation with actionable errors, the self-managed
 * monitor -> hull -> allocate -> configure loop (manual and
 * automatic), external configuration via applyCurves, and per
 * partition stats.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "api/talus.h"
#include "util/rng.h"
#include "workload/cyclic_scan.h"

namespace talus {
namespace {

/** A small always-valid baseline config the cases perturb. */
TalusCache::Config
baseConfig()
{
    TalusCache::Config cfg;
    cfg.llcLines = 1024;
    cfg.ways = 16;
    cfg.scheme = SchemeKind::Ideal;
    cfg.policyName = "LRU";
    cfg.numParts = 1;
    cfg.seed = 7;
    return cfg;
}

/** The ConfigError message for @p cfg; "" if construction succeeds. */
std::string
errorOf(const TalusCache::Config& cfg)
{
    try {
        TalusCache cache(cfg);
    } catch (const ConfigError& e) {
        return e.what();
    }
    return "";
}

// ------------------------------------------------------- validation

TEST(TalusCacheConfig, DefaultAndBaseConfigsAreValid)
{
    EXPECT_EQ(TalusCache::Config{}.validate(), "");
    EXPECT_EQ(baseConfig().validate(), "");
}

TEST(TalusCacheConfig, ValidateNamesTheBadFieldActionably)
{
    TalusCache::Config cfg = baseConfig();
    cfg.llcLines = 0;
    EXPECT_NE(cfg.validate().find("llcLines"), std::string::npos);

    cfg = baseConfig();
    cfg.ways = 0;
    EXPECT_NE(cfg.validate().find("ways"), std::string::npos);

    cfg = baseConfig();
    cfg.ways = 4096; // > llcLines.
    EXPECT_NE(cfg.validate().find("exceeds llcLines"),
              std::string::npos);

    cfg = baseConfig();
    cfg.numParts = 0;
    EXPECT_NE(cfg.validate().find("numParts"), std::string::npos);

    cfg = baseConfig();
    cfg.margin = std::nan("");
    EXPECT_NE(cfg.validate().find("margin"), std::string::npos);

    cfg = baseConfig();
    cfg.margin = 1.5;
    EXPECT_NE(cfg.validate().find("margin"), std::string::npos);

    cfg = baseConfig();
    cfg.routerBits = 0;
    EXPECT_NE(cfg.validate().find("routerBits"), std::string::npos);

    cfg = baseConfig();
    cfg.umonCoverage = 0;
    EXPECT_NE(cfg.validate().find("umonCoverage"), std::string::npos);
}

TEST(TalusCacheConfig, UnknownNamesListTheKnownOnes)
{
    TalusCache::Config cfg = baseConfig();
    cfg.policyName = "NotAPolicy";
    std::string err = cfg.validate();
    EXPECT_NE(err.find("NotAPolicy"), std::string::npos);
    EXPECT_NE(err.find("LRU"), std::string::npos); // Lists known names.

    cfg = baseConfig();
    cfg.allocatorName = "NotAnAllocator";
    err = cfg.validate();
    EXPECT_NE(err.find("NotAnAllocator"), std::string::npos);
    EXPECT_NE(err.find("HillClimb"), std::string::npos);
}

TEST(TalusCacheConfig, CrossFieldRulesAreChecked)
{
    // Ideal partitioning models exact LRU stacks only.
    TalusCache::Config cfg = baseConfig();
    cfg.policyName = "SRRIP";
    EXPECT_NE(cfg.validate().find("Ideal"), std::string::npos);

    // Talus over an unpartitioned cache has no shadow partitions.
    cfg = baseConfig();
    cfg.scheme = SchemeKind::Unpartitioned;
    EXPECT_NE(cfg.validate().find("talus=false"), std::string::npos);

    // An allocator has nothing to apply to an unpartitioned cache.
    cfg = baseConfig();
    cfg.talus = false;
    cfg.scheme = SchemeKind::Unpartitioned;
    cfg.allocatorName = "HillClimb";
    EXPECT_NE(cfg.validate().find("unpartitioned"), std::string::npos);

    // Automatic reconfiguration needs an allocator to run.
    cfg = baseConfig();
    cfg.allocatorName = "";
    cfg.reconfigInterval = 1000;
    EXPECT_NE(cfg.validate().find("allocator"), std::string::npos);

    // The reconfiguration loop reads the built-in monitors.
    cfg = baseConfig();
    cfg.monitoring = false;
    cfg.allocatorName = "HillClimb";
    EXPECT_NE(cfg.validate().find("monitoring"), std::string::npos);

    // Way partitioning: 2*numParts shadow partitions need that many
    // ways; caught at validation, not by a scheme assert.
    cfg = baseConfig();
    cfg.scheme = SchemeKind::Way;
    cfg.ways = 8;
    cfg.numParts = 8; // 16 physical partitions > 8 ways.
    EXPECT_NE(cfg.validate().find("ways"), std::string::npos);

    // Set partitioning: physical partitions need that many sets.
    cfg = baseConfig();
    cfg.scheme = SchemeKind::Set;
    cfg.llcLines = 64;
    cfg.ways = 32; // 2 sets, but 2*numParts = 4 physical partitions.
    cfg.numParts = 2;
    EXPECT_NE(cfg.validate().find("sets"), std::string::npos);
}

TEST(TalusCacheDeathTest, CurvesFatalWhenMonitoringDisabled)
{
    TalusCache::Config cfg = baseConfig();
    cfg.monitoring = false;
    cfg.allocatorName = "";
    TalusCache cache(cfg);
    EXPECT_DEATH((void)cache.curves(), "monitoring");
}

TEST(TalusCacheConfig, ConstructorThrowsConfigErrorWithTheMessage)
{
    TalusCache::Config cfg = baseConfig();
    cfg.ways = 0;
    EXPECT_THROW(TalusCache cache(cfg), ConfigError);
    const std::string err = errorOf(cfg);
    EXPECT_NE(err.find("TalusCache::Config"), std::string::npos);
    EXPECT_NE(err.find("ways"), std::string::npos);
    // ConfigError is an invalid_argument, catchable generically.
    EXPECT_THROW(TalusCache cache(cfg), std::invalid_argument);
}

// ------------------------------------------------- basic operation

TEST(TalusCache, AccessesHitAfterWarmupOnSmallWorkingSet)
{
    TalusCache::Config cfg = baseConfig();
    cfg.allocatorName = "";
    TalusCache cache(cfg);
    // 256 distinct lines in a 1024-line cache: everything fits.
    for (int round = 0; round < 4; ++round)
        for (Addr a = 0; a < 256; ++a)
            cache.access(a, 0);
    cache.resetStats();
    for (Addr a = 0; a < 256; ++a)
        EXPECT_TRUE(cache.access(a, 0));
    EXPECT_DOUBLE_EQ(cache.missRatio(), 0.0);
    EXPECT_EQ(cache.stats(0).accesses, 256u);
    EXPECT_EQ(cache.stats(0).misses, 0u);
}

TEST(TalusCache, ApplyCurvesConfiguresShadowPartitions)
{
    TalusCache::Config cfg = baseConfig();
    cfg.llcLines = 512;
    cfg.allocatorName = "";
    cfg.margin = 0.0;
    cfg.routerBits = 16;
    TalusCache cache(cfg);

    // Cliff at 400 lines; at 300 Talus splits alpha=0 / beta=400.
    const MissCurve cliff({{0, 1.0}, {100, 0.9}, {200, 0.9},
                           {300, 0.9}, {400, 0.1}, {512, 0.1}});
    cache.applyCurves({cliff}, {300});

    const TalusCache::PartStats s = cache.stats(0);
    ASSERT_FALSE(s.shadow.degenerate);
    EXPECT_DOUBLE_EQ(s.shadow.alpha, 0.0);
    EXPECT_DOUBLE_EQ(s.shadow.beta, 400.0);
    EXPECT_NEAR(s.shadow.rho, 0.25, 1e-9);
    EXPECT_NEAR(s.rho, 0.25, 1e-3);
    EXPECT_EQ(s.targetLines, 300u);
}

TEST(TalusCacheDeathTest, ApplyCurvesRejectsWrongCounts)
{
    TalusCache::Config cfg = baseConfig();
    cfg.allocatorName = "";
    TalusCache cache(cfg);
    const MissCurve flat({{0.0, 1.0}});
    EXPECT_DEATH(cache.applyCurves({flat, flat}, {512}), "expected 1");
}

TEST(TalusCacheDeathTest, ReconfigureWithoutAllocatorIsFatal)
{
    TalusCache::Config cfg = baseConfig();
    cfg.allocatorName = "";
    TalusCache cache(cfg);
    EXPECT_DEATH(cache.reconfigure(), "allocator");
}

// ------------------------------------- the self-managed Talus loop

TEST(TalusCache, ManualReconfigureRunsTheLoop)
{
    TalusCache::Config cfg = baseConfig();
    cfg.allocatorName = "HillClimb";
    TalusCache cache(cfg);
    CyclicScan scan(2048);
    for (int i = 0; i < 50000; ++i)
        cache.access(scan.next(), 0);
    EXPECT_EQ(cache.reconfigurations(), 0u);
    cache.reconfigure();
    EXPECT_EQ(cache.reconfigurations(), 1u);
    // The monitored curve is live and non-trivial after the interval.
    const MissCurve curve = cache.curve(0);
    EXPECT_GT(curve.numPoints(), 2u);
    EXPECT_GT(curve.at(0.0), curve.at(curve.maxSize()) - 1e-12);
}

TEST(TalusCache, AutoReconfigureFiresEveryInterval)
{
    TalusCache::Config cfg = baseConfig();
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 10'000;
    TalusCache cache(cfg);
    Rng rng(11);
    for (int i = 0; i < 35'000; ++i)
        cache.access(rng.below(4096), 0);
    EXPECT_EQ(cache.reconfigurations(), 3u);
}

TEST(TalusCache, SelfManagedLoopRemovesTheScanCliff)
{
    // The paper's headline property, end to end through the facade:
    // a cyclic scan over W lines on a W/2-line LLC misses ~always
    // under plain LRU; Talus with its own monitors and allocator must
    // land near the convex hull (~0.5 miss ratio + margins/noise).
    const uint64_t w = 2048;
    TalusCache::Config cfg = baseConfig();
    cfg.llcLines = w / 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 8192;
    cfg.umonCoverage = 4; // Monitors see past the cliff at W.
    TalusCache cache(cfg);

    CyclicScan scan(w);
    for (uint64_t i = 0; i < w * 40; ++i)
        cache.access(scan.next(), 0);
    EXPECT_GT(cache.reconfigurations(), 4u);

    cache.resetStats();
    for (uint64_t i = 0; i < w * 40; ++i)
        cache.access(scan.next(), 0);
    const double talus_ratio = cache.stats(0).missRatio();

    // Plain LRU baseline on the same scan.
    TalusCache::Config plain_cfg = baseConfig();
    plain_cfg.llcLines = w / 2;
    plain_cfg.talus = false;
    plain_cfg.scheme = SchemeKind::Unpartitioned;
    plain_cfg.allocatorName = "";
    TalusCache plain(plain_cfg);
    CyclicScan plain_scan(w);
    for (uint64_t i = 0; i < w * 10; ++i)
        plain.access(plain_scan.next(), 0);
    plain.resetStats();
    for (uint64_t i = 0; i < w * 20; ++i)
        plain.access(plain_scan.next(), 0);

    EXPECT_GT(plain.missRatio(), 0.95); // LRU thrashes the scan.
    EXPECT_LT(talus_ratio, 0.75);       // Talus traces the hull.
    EXPECT_FALSE(cache.stats(0).shadow.degenerate);
}

// ----------------------------------------------- stats and curves

TEST(TalusCache, PerPartitionStatsAreIsolated)
{
    TalusCache::Config cfg = baseConfig();
    cfg.numParts = 2;
    cfg.allocatorName = "";
    TalusCache cache(cfg);

    for (Addr a = 0; a < 3000; ++a)
        cache.access(a % 700, 0);
    for (Addr a = 0; a < 1000; ++a)
        cache.access((1ull << 30) + (a % 100), 1);

    EXPECT_EQ(cache.stats(0).accesses, 3000u);
    EXPECT_EQ(cache.stats(1).accesses, 1000u);
    EXPECT_GT(cache.stats(0).misses, 0u);
    const double ratio0 = cache.stats(0).missRatio();
    EXPECT_GE(ratio0, 0.0);
    EXPECT_LE(ratio0, 1.0);

    const auto curves = cache.curves();
    ASSERT_EQ(curves.size(), 2u);
    for (const MissCurve& c : curves)
        EXPECT_GT(c.numPoints(), 0u);
}

TEST(TalusCache, TargetsNeverExceedCapacityAcrossReconfigs)
{
    TalusCache::Config cfg = baseConfig();
    cfg.numParts = 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 5000;
    TalusCache cache(cfg);

    Rng rng(5);
    for (int i = 0; i < 60'000; ++i) {
        cache.access(rng.below(900), 0);
        cache.access((1ull << 30) + rng.below(3000), 1);
    }
    EXPECT_GT(cache.reconfigurations(), 10u);
    const uint64_t total =
        cache.stats(0).targetLines + cache.stats(1).targetLines;
    EXPECT_LE(total, cache.capacityLines());
}

TEST(TalusCache, DeterministicForSameConfig)
{
    auto run = [] {
        TalusCache::Config cfg = baseConfig();
        cfg.allocatorName = "HillClimb";
        cfg.reconfigInterval = 4000;
        TalusCache cache(cfg);
        CyclicScan scan(1500);
        for (int i = 0; i < 30'000; ++i)
            cache.access(scan.next(), 0);
        return cache.stats(0);
    };
    const TalusCache::PartStats a = run();
    const TalusCache::PartStats b = run();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.targetLines, b.targetLines);
    EXPECT_DOUBLE_EQ(a.rho, b.rho);
}

TEST(TalusCache, NonTalusModeAllocatesPlainPartitions)
{
    TalusCache::Config cfg = baseConfig();
    cfg.scheme = SchemeKind::Vantage;
    cfg.policyName = "LRU";
    cfg.talus = false;
    cfg.numParts = 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 5000;
    TalusCache cache(cfg);
    EXPECT_EQ(cache.controller(), nullptr);

    Rng rng(9);
    for (int i = 0; i < 40'000; ++i) {
        cache.access(rng.below(600), 0);
        cache.access((1ull << 30) + rng.below(600), 1);
    }
    EXPECT_GT(cache.reconfigurations(), 5u);
    EXPECT_EQ(cache.stats(0).accesses, 40'000u);
    EXPECT_GT(cache.stats(0).targetLines + cache.stats(1).targetLines,
              0u);
}

} // namespace
} // namespace talus
