/**
 * @file
 * Shared helpers for the Talus test suite.
 */

#ifndef TALUS_TESTS_TEST_UTIL_H
#define TALUS_TESTS_TEST_UTIL_H

#include <vector>

#include "util/rng.h"
#include "util/types.h"
#include "workload/access_stream.h"

namespace talus::test {

/** Materializes @p n accesses from a stream into a trace. */
inline std::vector<Addr>
collect(AccessStream& stream, uint64_t n)
{
    std::vector<Addr> trace;
    trace.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        trace.push_back(stream.next());
    return trace;
}

/** A random trace over @p distinct addresses. */
inline std::vector<Addr>
randomTrace(uint64_t n, uint64_t distinct, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> trace;
    trace.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        trace.push_back(rng.below(distinct));
    return trace;
}

/** A cyclic scan trace of @p n accesses over @p lines lines. */
inline std::vector<Addr>
scanTrace(uint64_t n, uint64_t lines)
{
    std::vector<Addr> trace;
    trace.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        trace.push_back(i % lines);
    return trace;
}

} // namespace talus::test

#endif // TALUS_TESTS_TEST_UTIL_H
