/**
 * @file
 * Equivalence tests for the flat FullyAssocLru.
 *
 * The open-addressing + intrusive-list FullyAssocLru must be
 * indistinguishable from the textbook std::list + std::unordered_map
 * LRU it replaced: same hit/miss on every access, same size, same
 * residency, under adversarial traces — duplicate-heavy streams that
 * stress recency moves, capacity shrinks that evict from the LRU end
 * mid-trace, growth, and clear(). The reference implementation lives
 * here so the library itself carries only the fast one.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>
#include <vector>

#include "cache/fully_assoc_lru.h"
#include "util/rng.h"

namespace talus {
namespace {

/** The pre-PR list + hash-map LRU, kept as the behavioral oracle. */
class ReferenceLru
{
  public:
    explicit ReferenceLru(uint64_t capacity_lines)
        : capacity_(capacity_lines)
    {
    }

    bool access(Addr addr)
    {
        auto it = map_.find(addr);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            return true;
        }
        if (capacity_ == 0)
            return false;
        while (map_.size() >= capacity_)
            evictLru();
        lru_.push_front(addr);
        map_.emplace(addr, lru_.begin());
        return false;
    }

    bool contains(Addr addr) const
    {
        return map_.find(addr) != map_.end();
    }

    uint64_t size() const { return map_.size(); }

    void setCapacity(uint64_t capacity_lines)
    {
        capacity_ = capacity_lines;
        while (map_.size() > capacity_)
            evictLru();
    }

    void clear()
    {
        lru_.clear();
        map_.clear();
    }

  private:
    void evictLru()
    {
        map_.erase(lru_.back());
        lru_.pop_back();
    }

    uint64_t capacity_;
    std::list<Addr> lru_;
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
};

/** Replays a trace through both models, asserting lockstep equality. */
void
expectLockstep(FullyAssocLru& fast, ReferenceLru& ref,
               const std::vector<Addr>& trace)
{
    for (size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(fast.access(trace[i]), ref.access(trace[i]))
            << "diverged at access " << i << " addr " << trace[i];
        ASSERT_EQ(fast.size(), ref.size()) << "size diverged at " << i;
    }
}

std::vector<Addr>
randomTrace(uint64_t accesses, uint64_t working_set, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> t(accesses);
    for (Addr& a : t)
        a = rng.below(working_set);
    return t;
}

TEST(FlatLruGolden, RandomTraceMatchesReference)
{
    FullyAssocLru fast(256);
    ReferenceLru ref(256);
    expectLockstep(fast, ref, randomTrace(100'000, 1024, 11));
}

TEST(FlatLruGolden, DuplicateHeavyTraceMatchesReference)
{
    // 90% of accesses hit a tiny hot set: stresses recency reordering
    // (moveToFront) far more than insertion/eviction.
    Rng rng(13);
    std::vector<Addr> trace;
    trace.reserve(100'000);
    for (int i = 0; i < 100'000; ++i) {
        trace.push_back(rng.below(10) < 9 ? rng.below(8)
                                          : 100 + rng.below(4096));
    }
    FullyAssocLru fast(128);
    ReferenceLru ref(128);
    expectLockstep(fast, ref, trace);
}

TEST(FlatLruGolden, CapacityShrinkMatchesReference)
{
    // Shrink while full, in steps, interleaved with traffic: the
    // shrink must evict exactly the same LRU-end lines in both.
    FullyAssocLru fast(512);
    ReferenceLru ref(512);
    Rng rng(17);
    for (uint64_t cap : {512u, 300u, 299u, 128u, 7u, 1u, 0u, 64u}) {
        fast.setCapacity(cap);
        ref.setCapacity(cap);
        ASSERT_EQ(fast.size(), ref.size()) << "after shrink to " << cap;
        expectLockstep(fast, ref, randomTrace(20'000, 2048, rng.next64()));
    }
}

TEST(FlatLruGolden, SequentialScanMatchesReference)
{
    // Cyclic scan one line larger than capacity: every access misses
    // under LRU (the classic cliff), maximizing evictions.
    std::vector<Addr> trace;
    for (int rep = 0; rep < 300; ++rep)
        for (Addr a = 0; a < 257; ++a)
            trace.push_back(a);
    FullyAssocLru fast(256);
    ReferenceLru ref(256);
    expectLockstep(fast, ref, trace);
}

TEST(FlatLruGolden, ResidencyMatchesReferenceAfterTraffic)
{
    FullyAssocLru fast(200);
    ReferenceLru ref(200);
    const std::vector<Addr> trace = randomTrace(50'000, 700, 23);
    expectLockstep(fast, ref, trace);
    for (Addr a = 0; a < 700; ++a)
        ASSERT_EQ(fast.contains(a), ref.contains(a)) << "addr " << a;
}

TEST(FlatLruGolden, ClearMatchesReference)
{
    FullyAssocLru fast(64);
    ReferenceLru ref(64);
    expectLockstep(fast, ref, randomTrace(10'000, 256, 29));
    fast.clear();
    ref.clear();
    EXPECT_EQ(fast.size(), 0u);
    expectLockstep(fast, ref, randomTrace(10'000, 256, 31));
}

TEST(FlatLruGolden, WideAddressSpaceMatchesReference)
{
    // Full-width addresses (per-app address-space bits set) exercise
    // the hash-and-probe path away from small dense integers.
    Rng rng(37);
    std::vector<Addr> trace;
    trace.reserve(60'000);
    for (int i = 0; i < 60'000; ++i)
        trace.push_back((1ull << 40) * (1 + rng.below(4)) +
                        rng.below(500));
    FullyAssocLru fast(333);
    ReferenceLru ref(333);
    expectLockstep(fast, ref, trace);
}

} // namespace
} // namespace talus
