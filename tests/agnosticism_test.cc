/**
 * @file
 * Tests for the paper's Sec. VII-B agnosticism claims and
 * Assumption 3 robustness: Talus keeps working under L2 filtering,
 * prefetching, multi-threaded data sharing, and across all
 * partitioning schemes (a test-suite twin of Fig. 8).
 */

#include <gtest/gtest.h>

#include "core/convex_hull.h"
#include "sim/single_app_sim.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/filtered_stream.h"
#include "workload/mix_stream.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

// ----------------------------------------------------- FilteredStream

TEST(Filtered, PassesOnlyMisses)
{
    // A working set that fits in the filter: after warmup nothing
    // escapes to the LLC.
    FilteredStream stream(std::make_unique<UniformRandom>(64, 0, 3),
                          256, 8);
    for (int i = 0; i < 64; ++i)
        stream.next(); // Cold misses pass while the filter warms.
    // From here on, inner accesses all hit the filter; next() would
    // block forever — so check the pass ratio trend instead using a
    // working set slightly larger than the filter.
    FilteredStream big(std::make_unique<UniformRandom>(512, 0, 3), 256,
                       8);
    for (int i = 0; i < 20000; ++i)
        big.next();
    // Roughly half the working set fits: pass ratio near 1 - 256/512.
    EXPECT_LT(big.passRatio(), 0.75);
    EXPECT_GT(big.passRatio(), 0.25);
}

TEST(Filtered, FilterPreservesScanCliff)
{
    // A scan bigger than the filter passes through entirely, so the
    // LLC still sees the cliff-generating pattern.
    FilteredStream stream(std::make_unique<CyclicScan>(2048), 256, 8);
    const MissCurve lru = measureLruCurve(stream, 60000, 4096, 128);
    EXPECT_GT(lru.at(1024), 0.9);
    EXPECT_LT(lru.at(3072), 0.1);
}

TEST(Filtered, TalusWorksOnFilteredStream)
{
    // End-to-end with L2 filtering in front of the LLC: the filtered
    // stream's hull is still traced by Talus (Assumption 3 holds on
    // the post-filter stream; that is the stream Talus samples).
    FilteredStream curve_stream(
        std::make_unique<CyclicScan>(2048), 256, 8);
    const MissCurve lru =
        measureLruCurve(curve_stream, 80000, 4096, 128);
    const ConvexHull hull(lru);

    FilteredStream run_stream(std::make_unique<CyclicScan>(2048), 256,
                              8);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = 80000;
    const MissCurve talus =
        sweepTalusCurve(run_stream, lru, {1024}, opts);
    EXPECT_NEAR(talus.at(1024), hull.at(1024), 0.1);
}

TEST(Filtered, DeterministicResetClone)
{
    FilteredStream stream(std::make_unique<CyclicScan>(512), 64, 8);
    auto first = test::collect(stream, 500);
    stream.reset();
    auto second = test::collect(stream, 500);
    EXPECT_EQ(first, second);
    auto cloned = stream.clone();
    auto third = test::collect(*cloned, 500);
    EXPECT_EQ(first, third);
}

// ----------------------------------------------- Multi-threaded sharing

/** k "threads" touching one shared working set plus private data. */
std::unique_ptr<AccessStream>
threadedApp(uint32_t threads, uint64_t shared_lines,
            uint64_t private_lines, uint64_t seed)
{
    std::vector<MixStream::Component> comps;
    for (uint32_t t = 0; t < threads; ++t) {
        // Shared component: SAME address space for every thread.
        comps.push_back({std::make_unique<ZipfStream>(
                             shared_lines, 0.7, /*addr_space=*/1,
                             seed + t),
                         1.0});
        // Private component per thread.
        comps.push_back({std::make_unique<CyclicScan>(
                             private_lines, /*addr_space=*/10 + t),
                         1.0});
    }
    return std::make_unique<MixStream>(std::move(comps), seed ^ 0xF00);
}

TEST(MultiThreaded, SharedDataStillYieldsConvexTalusCurve)
{
    // Sec. VII-B: with shared data served through one logical
    // partition, Talus's assumptions still hold — its curve stays
    // convex and traces the hull.
    auto curve_stream = threadedApp(4, 1024, 512, 11);
    const MissCurve lru =
        measureLruCurve(*curve_stream, 300000, 8192, 256);
    const ConvexHull hull(lru);

    auto run_stream = threadedApp(4, 1024, 512, 11);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = 150000;
    const std::vector<uint64_t> sizes{2048, 3072, 4096};
    const MissCurve talus =
        sweepTalusCurve(*run_stream, lru, sizes, opts);
    for (uint64_t s : sizes) {
        EXPECT_NEAR(talus.at(static_cast<double>(s)),
                    hull.at(static_cast<double>(s)), 0.1)
            << "s=" << s;
    }
}

// -------------------------------------- Scheme-parameterized hull test

class SchemeHullTest : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(SchemeHullTest, TalusLandsNearHullMidCliff)
{
    const uint64_t w = 2048;
    CyclicScan curve_stream(w);
    const MissCurve lru =
        measureLruCurve(curve_stream, w * 40, 2 * w, w / 32);
    const ConvexHull hull(lru);

    const uint64_t size = w / 2;
    CyclicScan run_stream(w);
    TalusSweepOptions opts;
    opts.scheme = GetParam();
    opts.ways = 64; // Tame per-set Poisson overflow of sampled scans.
    opts.measureAccesses = 150000;
    const MissCurve talus =
        sweepTalusCurve(run_stream, lru, {size}, opts);

    // Vantage pays its 10% unmanaged discount. Set partitioning is
    // the weakest at this (deliberately small) scale: the sampled
    // scan spreads over few sets and a cyclic set either fits or
    // thrashes entirely, amplifying Poisson spread — one reason the
    // paper evaluates Vantage/way/ideal and uses set partitioning
    // only for the conceptual example. The rest must be close to the
    // hull; all must massively beat raw LRU (~1.0).
    double budget = 0.1;
    if (GetParam() == SchemeKind::Vantage)
        budget = 0.15;
    if (GetParam() == SchemeKind::Set)
        budget = 0.25;
    EXPECT_NEAR(talus.at(static_cast<double>(size)),
                hull.at(static_cast<double>(size) *
                        schemeUsableFraction(GetParam())),
                budget);
    EXPECT_LT(talus.at(static_cast<double>(size)), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SchemeHullTest,
                         ::testing::Values(SchemeKind::Way,
                                           SchemeKind::Set,
                                           SchemeKind::Vantage,
                                           SchemeKind::Futility,
                                           SchemeKind::Ideal));

} // namespace
} // namespace talus
