/**
 * @file
 * Tests for the multiprogrammed engine: fixed-work accounting, the
 * reconfiguration loop, and the qualitative orderings the paper's
 * shared-cache experiments rest on.
 */

#include <gtest/gtest.h>

#include "sim/metrics.h"
#include "sim/multi_prog_sim.h"
#include "workload/spec_suite.h"

namespace talus {
namespace {

std::vector<const AppSpec*>
mix(const std::vector<std::string>& names)
{
    std::vector<const AppSpec*> apps;
    for (const auto& name : names)
        apps.push_back(&findApp(name));
    return apps;
}

MultiProgConfig
baseConfig(uint64_t llc_lines)
{
    MultiProgConfig cfg;
    cfg.llcLines = llc_lines;
    cfg.instrPerApp = 600'000;
    cfg.reconfigCycles = 300'000;
    return cfg;
}

TEST(MultiProg, CompletesAndAccountsFixedWork)
{
    const Scale scale(64);
    MultiProgConfig cfg = baseConfig(1024);
    cfg.scheme = SchemeKind::Unpartitioned;
    cfg.allocatorName = "";
    const auto result =
        runMultiProg(mix({"astar", "hmmer"}), cfg, scale);
    ASSERT_EQ(result.apps.size(), 2u);
    for (const auto& app : result.apps) {
        EXPECT_GT(app.ipc, 0.0);
        EXPECT_GT(app.cycles, 0.0);
        EXPECT_GE(app.mpki, 0.0);
        // IPC must equal fixed work / completion cycles.
        EXPECT_NEAR(app.ipc, 600000.0 / app.cycles, 1e-9);
        // IPC bounded by the core model's perfect-cache IPC.
        const CoreModel model(findApp(app.name));
        EXPECT_LE(app.ipc, model.ipcAt(0.0) * 1.001);
        EXPECT_GE(app.ipc, model.ipcAt(1.0) * 0.999);
    }
}

TEST(MultiProg, ReconfigurationsHappen)
{
    const Scale scale(64);
    MultiProgConfig cfg = baseConfig(1024);
    cfg.reconfigCycles = 120'000;
    cfg.useTalus = true;
    cfg.allocateOnHulls = true;
    cfg.allocatorName = "HillClimb";
    const auto result =
        runMultiProg(mix({"astar", "omnetpp"}), cfg, scale);
    EXPECT_GT(result.reconfigurations, 3u);
}

TEST(MultiProg, DeterministicForSameSeed)
{
    const Scale scale(64);
    MultiProgConfig cfg = baseConfig(512);
    cfg.scheme = SchemeKind::Vantage;
    cfg.allocatorName = "Lookahead";
    const auto a = runMultiProg(mix({"astar", "gcc"}), cfg, scale);
    const auto b = runMultiProg(mix({"astar", "gcc"}), cfg, scale);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (size_t i = 0; i < a.apps.size(); ++i)
        EXPECT_DOUBLE_EQ(a.apps[i].ipc, b.apps[i].ipc);
}

TEST(MultiProg, PartitioningIsolatesVictimFromThrasher)
{
    // A small-working-set app (astar: 2MB zipf) next to a thrasher
    // (milc: 16MB random). Unpartitioned LRU lets milc wreck astar;
    // Vantage + Lookahead protects it.
    const Scale scale(64);
    const auto apps = mix({"astar", "milc"});

    MultiProgConfig shared = baseConfig(256); // 4 paper-MB.
    shared.scheme = SchemeKind::Unpartitioned;
    shared.allocatorName = "";
    const auto base = runMultiProg(apps, shared, scale);

    MultiProgConfig part = baseConfig(256);
    part.scheme = SchemeKind::Vantage;
    part.allocatorName = "Lookahead";
    const auto partitioned = runMultiProg(apps, part, scale);

    // astar (index 0) must speed up under partitioning.
    EXPECT_GT(partitioned.apps[0].ipc, base.apps[0].ipc * 1.02);
}

TEST(MultiProg, TalusHillMatchesOrBeatsLruHillOnCliffApps)
{
    // Two omnetpp copies (cliff at 2MB) on a 2MB cache: plain LRU +
    // hill climbing is stuck on the plateau; Talus + hill climbing
    // should match or beat it on weighted speedup vs the shared-LRU
    // baseline.
    const Scale scale(128); // 2MB -> 256 lines.
    const auto apps = mix({"omnetpp", "omnetpp"});

    MultiProgConfig shared = baseConfig(256);
    shared.scheme = SchemeKind::Unpartitioned;
    shared.allocatorName = "";
    const auto base = runMultiProg(apps, shared, scale);

    MultiProgConfig lru_hill = baseConfig(256);
    lru_hill.scheme = SchemeKind::Vantage;
    lru_hill.allocatorName = "HillClimb";
    const auto lru = runMultiProg(apps, lru_hill, scale);

    MultiProgConfig talus_hill = baseConfig(256);
    talus_hill.scheme = SchemeKind::Vantage;
    talus_hill.useTalus = true;
    talus_hill.allocateOnHulls = true;
    talus_hill.allocatorName = "HillClimb";
    const auto talus = runMultiProg(apps, talus_hill, scale);

    const double ws_lru =
        weightedSpeedup(lru.ipcVector(), base.ipcVector());
    const double ws_talus =
        weightedSpeedup(talus.ipcVector(), base.ipcVector());
    EXPECT_GT(ws_talus, ws_lru - 0.03);
}

TEST(MultiProg, FairTalusIsFairOnHomogeneousCopies)
{
    // Fig. 13's qualitative claim: with equal (fair) allocations and
    // Talus, homogeneous copies run at nearly identical IPC.
    const Scale scale(64);
    const auto apps = mix({"omnetpp", "omnetpp", "omnetpp", "omnetpp"});
    MultiProgConfig cfg = baseConfig(512);
    cfg.useTalus = true;
    cfg.allocateOnHulls = true;
    cfg.allocatorName = "Fair";
    const auto result = runMultiProg(apps, cfg, scale);
    EXPECT_LT(ipcCoV(result.ipcVector()), 0.05);
}

TEST(MultiProg, TaDrripRunsEndToEnd)
{
    const Scale scale(64);
    MultiProgConfig cfg = baseConfig(512);
    cfg.scheme = SchemeKind::Unpartitioned;
    cfg.policyName = "TA-DRRIP";
    cfg.allocatorName = "";
    const auto result =
        runMultiProg(mix({"lbm", "astar"}), cfg, scale);
    EXPECT_EQ(result.apps.size(), 2u);
    for (const auto& app : result.apps)
        EXPECT_GT(app.ipc, 0.0);
}

} // namespace
} // namespace talus
