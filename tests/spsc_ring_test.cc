/**
 * @file
 * SpscRing: wrap-around correctness, full/empty boundary behavior,
 * and the producer/consumer memory-order contract (everything the
 * producer wrote before a push is visible to the consumer that pops
 * it). The `shard` label puts the two-thread stress tests under the
 * ThreadSanitizer CI job, which is what actually checks the
 * release/acquire publication.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "shard/spsc_ring.h"

namespace talus {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
    EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, StartsEmpty)
{
    SpscRing<int> ring(4);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
    int out = -1;
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_EQ(out, -1);
}

TEST(SpscRing, FullAndEmptyBoundaries)
{
    SpscRing<int> ring(4);
    // Fill to capacity; the next push must fail without clobbering.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i)) << "push " << i;
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.size(), 4u);

    // Drain fully, FIFO; the next pop must fail.
    int out = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(out)) << "pop " << i;
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(ring.tryPop(out));
    EXPECT_TRUE(ring.empty());

    // Full/empty cycles repeat cleanly (cursors keep counting up).
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.tryPush(cycle * 10 + i));
        EXPECT_FALSE(ring.tryPush(-1));
        for (int i = 0; i < 4; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            EXPECT_EQ(out, cycle * 10 + i);
        }
        EXPECT_FALSE(ring.tryPop(out));
    }
}

TEST(SpscRing, WrapAroundPreservesFifoOrder)
{
    // Capacity 4 with interleaved push/pop: the cursors lap the slot
    // array many times, so every masked index sees many generations.
    SpscRing<uint64_t> ring(4);
    uint64_t next_push = 0;
    uint64_t next_pop = 0;
    uint64_t out = 0;
    for (int round = 0; round < 1000; ++round) {
        const int pushes = 1 + (round % 3);
        for (int i = 0; i < pushes; ++i)
            if (ring.tryPush(next_push))
                next_push++;
        const int pops = 1 + ((round + 1) % 3);
        for (int i = 0; i < pops; ++i)
            if (ring.tryPop(out)) {
                ASSERT_EQ(out, next_pop) << "FIFO broken at " << round;
                next_pop++;
            }
    }
    while (ring.tryPop(out)) {
        ASSERT_EQ(out, next_pop);
        next_pop++;
    }
    EXPECT_EQ(next_pop, next_push);
    EXPECT_GT(next_push, 1000u); // Lapped the 4-slot array many times.
}

/** A payload wide enough that torn or unpublished writes would show:
 *  every field derives from seq, so the consumer can verify that the
 *  pop saw the producer's complete pre-push writes. */
struct WidePayload
{
    uint64_t seq = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    uint64_t c = 0;
};

TEST(SpscRing, ProducerConsumerStressPublishesPayloads)
{
    // Tiny ring + fast producer = constant full/empty boundary hits
    // and wrap-arounds under real concurrency. TSan checks the
    // memory-order contract; the field checks catch stale slots.
    constexpr uint64_t kItems = 200'000;
    SpscRing<WidePayload> ring(8);

    std::thread producer([&] {
        for (uint64_t seq = 0; seq < kItems;) {
            WidePayload p;
            p.seq = seq;
            p.a = seq * 3 + 1;
            p.b = ~seq;
            p.c = seq ^ 0xDEAD'BEEF'CAFE'F00Dull;
            if (ring.tryPush(p))
                seq++;
            else
                std::this_thread::yield();
        }
    });

    uint64_t expected = 0;
    WidePayload out;
    while (expected < kItems) {
        if (!ring.tryPop(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(out.seq, expected);
        ASSERT_EQ(out.a, expected * 3 + 1);
        ASSERT_EQ(out.b, ~expected);
        ASSERT_EQ(out.c, expected ^ 0xDEAD'BEEF'CAFE'F00Dull);
        expected++;
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, StressWithExternalBuffersPublishedThroughPush)
{
    // The engine's actual usage shape: descriptors point into buffers
    // the producer filled BEFORE pushing (scatter chunks). The
    // consumer must observe the buffer contents the producer wrote —
    // that is the release/acquire contract the dispatch path rides.
    constexpr int kBatches = 5'000;
    constexpr int kChunk = 16;
    struct Desc
    {
        const uint64_t* data;
        int n;
        uint64_t tag;
    };
    std::vector<uint64_t> buffers[2];
    buffers[0].resize(kChunk);
    buffers[1].resize(kChunk);
    SpscRing<Desc> ring(1); // Depth 1: strict ping-pong.
    std::atomic<uint64_t> consumed{0};

    std::thread consumer([&] {
        Desc d;
        for (int b = 0; b < kBatches;) {
            if (!ring.tryPop(d)) {
                std::this_thread::yield();
                continue;
            }
            uint64_t sum = 0;
            for (int i = 0; i < d.n; ++i)
                sum += d.data[i];
            // Sum of tag, tag+1, ..., over the chunk.
            const uint64_t want =
                static_cast<uint64_t>(d.n) * d.tag +
                static_cast<uint64_t>(d.n) * (d.n - 1) / 2;
            ASSERT_EQ(sum, want) << "batch " << b;
            consumed.fetch_add(1, std::memory_order_release);
            b++;
        }
    });

    for (int b = 0; b < kBatches; ++b) {
        std::vector<uint64_t>& buf = buffers[b & 1];
        const uint64_t tag = static_cast<uint64_t>(b) * 977;
        for (int i = 0; i < kChunk; ++i)
            buf[i] = tag + static_cast<uint64_t>(i);
        while (!ring.tryPush(Desc{buf.data(), kChunk, tag}))
            std::this_thread::yield();
        // Double-buffered: before reusing a buffer, wait until the
        // consumer finished the batch that borrowed it.
        while (consumed.load(std::memory_order_acquire) + 1 <
               static_cast<uint64_t>(b) + 1)
            std::this_thread::yield();
    }
    consumer.join();
}

} // namespace
} // namespace talus
