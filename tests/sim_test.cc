/**
 * @file
 * Tests for the simulation layer: scaling, the analytic core model,
 * metrics, single-app sweeps, and the experiment utilities.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/convex_hull.h"
#include "sim/core_model.h"
#include "sim/experiment_util.h"
#include "sim/metrics.h"
#include "sim/scale.h"
#include "sim/single_app_sim.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/spec_suite.h"
#include "workload/uniform_random.h"

namespace talus {
namespace {

// --------------------------------------------------------------- Scale

TEST(Scale, RoundTrip)
{
    Scale scale(1024);
    EXPECT_EQ(scale.lines(1.0), 1024u);
    EXPECT_EQ(scale.lines(0.5), 512u);
    EXPECT_EQ(scale.lines(32.0), 32768u);
    EXPECT_DOUBLE_EQ(scale.mb(2048), 2.0);
}

TEST(Scale, TinySizesClampToOneLine)
{
    Scale scale(16);
    EXPECT_EQ(scale.lines(0.001), 1u);
}

TEST(Scale, FullScaleConstant)
{
    // 1MB / 64B = 16384 lines.
    EXPECT_EQ(Scale::kFullLinesPerMb, 16384u);
}

// ----------------------------------------------------------- CoreModel

TEST(CoreModel, IpcDecreasesWithMissRatio)
{
    const CoreModel model(findApp("mcf"));
    double prev = 1e9;
    for (double mr = 0.0; mr <= 1.0; mr += 0.1) {
        const double ipc = model.ipcAt(mr);
        EXPECT_LT(ipc, prev);
        EXPECT_GT(ipc, 0.0);
        prev = ipc;
    }
}

TEST(CoreModel, PerfectCacheIpcBoundedByCpiBase)
{
    const AppSpec& app = findApp("libquantum");
    const CoreModel model(app);
    // With all hits, CPI = cpiBase + small L3 component.
    EXPECT_LT(model.ipcAt(0.0), 1.0 / app.cpiBase);
    EXPECT_GT(model.ipcAt(0.0), 0.5 / app.cpiBase);
}

TEST(CoreModel, CyclesPerAccessConsistentWithIpc)
{
    // Steady state: simulating K accesses at fixed miss ratio must
    // reproduce ipcAt().
    const AppSpec& app = findApp("omnetpp");
    const CoreModel model(app);
    const double mr = 0.3;
    double cycles = 0, instr = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool hit = (i % 10) >= 3; // 30% misses.
        cycles += model.cyclesPerAccess(hit);
        instr += model.instrPerAccess();
    }
    EXPECT_NEAR(instr / cycles, model.ipcAt(mr), 1e-3);
}

TEST(CoreModel, MlpSoftensMissPenalty)
{
    AppSpec low = findApp("omnetpp");
    AppSpec high = low;
    high.mlp = 4.0;
    const double ipc_low = CoreModel(low).ipcAt(0.5);
    const double ipc_high = CoreModel(high).ipcAt(0.5);
    EXPECT_GT(ipc_high, ipc_low);
}

// ------------------------------------------------------------- Metrics

TEST(Metrics, WeightedSpeedupBaselineIsOne)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(weightedSpeedup({2, 4}, {1, 2}), 2.0);
}

TEST(Metrics, HarmonicPunishesSlowdowns)
{
    // One app 2x faster, one 2x slower: weighted = 1.25 (looks fine),
    // harmonic = 0.8 (punished).
    const std::vector<double> ipc{2, 0.5}, base{1, 1};
    EXPECT_DOUBLE_EQ(weightedSpeedup(ipc, base), 1.25);
    EXPECT_DOUBLE_EQ(harmonicSpeedup(ipc, base), 0.8);
}

TEST(Metrics, CoVZeroWhenFair)
{
    EXPECT_DOUBLE_EQ(ipcCoV({1, 1, 1, 1}), 0.0);
    EXPECT_GT(ipcCoV({1, 1, 1, 0.1}), 0.3);
}

// --------------------------------------------------------------- Sweeps

TEST(Metrics, SingleAppDegeneratesToPlainSpeedup)
{
    EXPECT_DOUBLE_EQ(weightedSpeedup({2.0}, {1.0}), 2.0);
    EXPECT_DOUBLE_EQ(harmonicSpeedup({2.0}, {1.0}), 2.0);
    EXPECT_DOUBLE_EQ(ipcCoV({2.0}), 0.0);
}

TEST(Sweep, PolicyCurveShowsScanCliff)
{
    // High associativity keeps the set-assoc cliff sharp (with few
    // ways, Poisson imbalance across sets smears it — exactly the
    // "secondary factors" caveat of Assumption 2).
    CyclicScan scan(512);
    SweepOptions opts;
    opts.measureAccesses = 100000;
    opts.ways = 64;
    const MissCurve curve =
        sweepPolicyCurve(scan, {256, 448, 640, 1024}, opts);
    EXPECT_GT(curve.at(256), 0.9);
    EXPECT_GT(curve.at(448), 0.8); // Near-cliff still thrashing.
    EXPECT_LT(curve.at(640), 0.2);
    EXPECT_LT(curve.at(1024), 0.05);
}

TEST(Sweep, MattsonMatchesDirectLruSweep)
{
    // measureLruCurve (stack algorithm) must agree with trace-driven
    // per-size LRU simulation.
    UniformRandom direct_stream(800, 0, 33);
    SweepOptions opts;
    opts.measureAccesses = 200000;
    opts.ways = 64; // High assoc: close to the fully-assoc reference.
    const MissCurve direct =
        sweepPolicyCurve(direct_stream, {256, 512, 768}, opts);

    UniformRandom mattson_stream(800, 0, 33);
    const MissCurve exact =
        measureLruCurve(mattson_stream, 300000, 1024, 128);
    for (uint64_t s : {256u, 512u, 768u}) {
        EXPECT_NEAR(direct.at(static_cast<double>(s)),
                    exact.at(static_cast<double>(s)), 0.05)
            << "s=" << s;
    }
}

TEST(Sweep, TalusOnIdealTracksHull)
{
    const uint64_t w = 512;
    CyclicScan curve_stream(w);
    const MissCurve lru = measureLruCurve(curve_stream, w * 60, 1024, 32);
    const ConvexHull hull(lru);

    CyclicScan run_stream(w);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = 100000;
    const MissCurve talus =
        sweepTalusCurve(run_stream, lru, {128, 256, 384}, opts);
    for (uint64_t s : {128u, 256u, 384u}) {
        EXPECT_NEAR(talus.at(static_cast<double>(s)),
                    hull.at(static_cast<double>(s)), 0.1)
            << "s=" << s;
    }
}

TEST(Sweep, TalusOnVantageBeatsLruMidCliff)
{
    const uint64_t w = 1024;
    CyclicScan curve_stream(w);
    const MissCurve lru = measureLruCurve(curve_stream, w * 40, 2048, 64);

    CyclicScan run_stream(w);
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Vantage;
    opts.measureAccesses = 150000;
    const MissCurve talus = sweepTalusCurve(run_stream, lru, {512}, opts);
    // LRU at 512 thrashes (~1.0); Talus+V must be far better even
    // with the 10% unmanaged region.
    EXPECT_LT(talus.at(512), 0.75);
}

// ------------------------------------------------------ ExperimentUtil

TEST(ExperimentUtil, SizeGrid)
{
    Scale scale(1024);
    const auto sizes = sizeGridLines(scale, 4.0, 1.0);
    ASSERT_EQ(sizes.size(), 4u);
    EXPECT_EQ(sizes[0], 1024u);
    EXPECT_EQ(sizes[3], 4096u);
}

TEST(ExperimentUtil, ToMpkiScalesVertically)
{
    const MissCurve ratio({{0, 1.0}, {100, 0.5}});
    const MissCurve mpki = toMpki(ratio, 20.0);
    EXPECT_DOUBLE_EQ(mpki.at(0), 20.0);
    EXPECT_DOUBLE_EQ(mpki.at(100), 10.0);
}

TEST(ExperimentUtil, MixesAreValidAndSeeded)
{
    const auto mixes = sampleMixes(10, 8, 1);
    ASSERT_EQ(mixes.size(), 10u);
    for (const auto& mix : mixes) {
        EXPECT_EQ(mix.size(), 8u);
        std::set<std::string> unique(mix.begin(), mix.end());
        EXPECT_EQ(unique.size(), 8u); // No repeats within a mix.
        for (const auto& name : mix)
            EXPECT_NO_FATAL_FAILURE(findApp(name));
    }
    // Deterministic given the seed.
    EXPECT_EQ(sampleMixes(10, 8, 1), mixes);
    EXPECT_NE(sampleMixes(10, 8, 2), mixes);
}

} // namespace
} // namespace talus
