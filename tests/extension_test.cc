/**
 * @file
 * Tests for the extension features beyond the paper's core
 * evaluation: Futility Scaling partitioning (the paper's suggested
 * alternative to Vantage), SHiP replacement, the stream prefetcher
 * (Sec. VII-B agnosticism), plus regression tests for subtle
 * behaviours added during development (flat-hull degeneracy, UMON
 * geometry shrinking, way-budget apportionment, PDP initial dp).
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.h"
#include "core/convex_hull.h"
#include "core/talus_config.h"
#include "monitor/umon.h"
#include "partition/futility_scaling.h"
#include "partition/way_partition.h"
#include "policy/lru.h"
#include "policy/pdp.h"
#include "policy/policy_factory.h"
#include "policy/ship.h"
#include "sim/single_app_sim.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/prefetched_stream.h"
#include "workload/uniform_random.h"

namespace talus {
namespace {

// ------------------------------------------------------ FutilityScheme

TEST(Futility, ConvergesToAsymmetricTargets)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16; // 1024 lines.
    auto scheme = std::make_unique<FutilityScheme>(2);
    FutilityScheme* fs = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({768, 256});

    Rng rng(3);
    for (int i = 0; i < 400000; ++i) {
        cache.access(rng.below(4096), 0);
        cache.access((1ull << 30) + rng.below(4096), 1);
    }
    EXPECT_NEAR(static_cast<double>(fs->occupancy(0)), 768.0,
                768 * 0.12);
    EXPECT_NEAR(static_cast<double>(fs->occupancy(1)), 256.0,
                256 * 0.2);
}

TEST(Futility, WholeCacheIsManaged)
{
    // Unlike Vantage, targets may sum to the full capacity and the
    // partitions actually reach them.
    SetAssocCache::Config cfg;
    cfg.numSets = 32;
    cfg.numWays = 16; // 512 lines.
    auto scheme = std::make_unique<FutilityScheme>(2);
    FutilityScheme* fs = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({256, 256});
    Rng rng(5);
    for (int i = 0; i < 300000; ++i) {
        cache.access(rng.below(2048), 0);
        cache.access((1ull << 30) + rng.below(2048), 1);
    }
    EXPECT_GT(fs->occupancy(0) + fs->occupancy(1), 490u);
}

TEST(Futility, ScaleRisesForOverTargetPartition)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 16;
    cfg.numWays = 8;
    auto scheme = std::make_unique<FutilityScheme>(2);
    FutilityScheme* fs = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    cache.setTargets({32, 96});
    Rng rng(7);
    // Partition 0 wants far more than its 32-line target.
    for (int i = 0; i < 100000; ++i)
        cache.access(rng.below(512), 0);
    EXPECT_GT(fs->scaleOf(0), fs->scaleOf(1));
}

TEST(Futility, ZeroTargetPartitionIsReclaimed)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 16;
    cfg.numWays = 8;
    auto scheme = std::make_unique<FutilityScheme>(2);
    FutilityScheme* fs = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    // Fill as partition 0, then retarget everything to partition 1.
    cache.setTargets({128, 0});
    for (Addr a = 0; a < 128; ++a)
        cache.access(a, 0);
    cache.setTargets({0, 128});
    Rng rng(9);
    for (int i = 0; i < 50000; ++i)
        cache.access((1ull << 30) + rng.below(256), 1);
    EXPECT_LT(fs->occupancy(0), 8u);
}

TEST(Futility, TalusOnFutilityBeatsVantageMidCliff)
{
    // The paper's point: Futility Scaling has no unmanaged region, so
    // Talus can use the full allocation (usableFraction 1.0) and land
    // closer to the hull than Talus-on-Vantage.
    const uint64_t w = 2048;
    CyclicScan curve_stream(w);
    const MissCurve lru = measureLruCurve(curve_stream, w * 40, 2 * w,
                                          w / 32);
    const ConvexHull hull(lru);
    const uint64_t size = w / 2;

    auto sweep = [&](SchemeKind scheme) {
        CyclicScan stream(w);
        TalusSweepOptions opts;
        opts.scheme = scheme;
        opts.measureAccesses = 200000;
        return sweepTalusCurve(stream, lru, {size}, opts)
            .at(static_cast<double>(size));
    };
    const double futility = sweep(SchemeKind::Futility);
    const double vantage = sweep(SchemeKind::Vantage);
    const double promised = hull.at(static_cast<double>(size));
    EXPECT_LT(futility, vantage + 0.01);
    EXPECT_NEAR(futility, promised, 0.1);
}

TEST(Futility, SchemeUsableFractions)
{
    EXPECT_DOUBLE_EQ(schemeUsableFraction(SchemeKind::Vantage), 0.9);
    EXPECT_DOUBLE_EQ(schemeUsableFraction(SchemeKind::Futility), 1.0);
    EXPECT_DOUBLE_EQ(schemeUsableFraction(SchemeKind::Way), 1.0);
    EXPECT_DOUBLE_EQ(schemeUsableFraction(SchemeKind::Ideal), 1.0);
}

TEST(Futility, FactoryParsesAndBuilds)
{
    EXPECT_EQ(parseSchemeKind("Futility"), SchemeKind::Futility);
    auto cache =
        makePartitionedCache(SchemeKind::Futility, 512, 16, "LRU", 2, 3);
    EXPECT_STREQ(cache->schemeName(), "Futility");
    cache->setTargets({256, 128});
    for (Addr a = 0; a < 5000; ++a)
        cache->access(a % 300, a % 2);
    EXPECT_GT(cache->stats().totalHits(), 0u);
}

// --------------------------------------------------------------- SHiP

TEST(Ship, TrainsSignaturesDown)
{
    // A scanning region whose lines are never reused must drive its
    // SHCT counter to zero.
    ShipPolicy ship;
    ship.init(4, 4);
    SetAssocCache::Config cfg;
    cfg.numSets = 4;
    cfg.numWays = 4;
    SetAssocCache cache(cfg, std::make_unique<ShipPolicy>());
    for (Addr a = 0; a < 20000; ++a)
        cache.access(a % 4096); // Pure scan: no reuse within 16 lines.
    // Build a reference policy to inspect counters via the same config.
    // (Counter inspection on the cache's policy instance:)
    auto* policy = dynamic_cast<ShipPolicy*>(&cache.policy());
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->shctOf(100), 0u);
}

TEST(Ship, KeepsReusedSignaturesPositive)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 4;
    cfg.numWays = 4;
    SetAssocCache cache(cfg, std::make_unique<ShipPolicy>());
    Rng rng(3);
    for (int i = 0; i < 20000; ++i)
        cache.access(rng.below(8)); // Tiny hot set: constant reuse.
    auto* policy = dynamic_cast<ShipPolicy*>(&cache.policy());
    ASSERT_NE(policy, nullptr);
    EXPECT_GT(policy->shctOf(3), 0u);
}

TEST(Ship, ProtectsHotSetAgainstScan)
{
    // Mixed hot set + scan: SHiP should insert the scan's lines at
    // distant RRPV once trained, protecting the hot set better than
    // plain LRU.
    auto run = [&](const std::string& policy) {
        SetAssocCache::Config cfg;
        cfg.numSets = 16;
        cfg.numWays = 8;
        SetAssocCache cache(cfg, makePolicy(policy, 3));
        Rng rng(5);
        uint64_t hot_hits = 0;
        for (int i = 0; i < 200000; ++i) {
            cache.access((1u << 20) + (i % 4096)); // Scan region.
            hot_hits += cache.access(rng.below(64)); // Hot region.
        }
        return hot_hits;
    };
    EXPECT_GT(run("SHiP"), run("LRU") + 10000);
}

TEST(Ship, InFactoryList)
{
    const auto names = knownPolicies();
    EXPECT_NE(std::find(names.begin(), names.end(), "SHiP"),
              names.end());
    EXPECT_STREQ(makePolicy("SHiP")->name(), "SHiP");
}

// ----------------------------------------------------- PrefetchedStream

TEST(Prefetch, DetectsScansAndIssues)
{
    PrefetchedStream stream(std::make_unique<CyclicScan>(1000), {});
    for (int i = 0; i < 10000; ++i)
        stream.next();
    EXPECT_GT(stream.prefetchesIssued(), 1000u);
}

TEST(Prefetch, MostlyIdleOnRandomAccesses)
{
    PrefetchedStream stream(
        std::make_unique<UniformRandom>(4096, 0, 7), {});
    for (int i = 0; i < 10000; ++i)
        stream.next();
    EXPECT_LT(stream.prefetchesIssued(), 2000u);
}

TEST(Prefetch, DeterministicResetClone)
{
    PrefetchedStream stream(std::make_unique<CyclicScan>(128), {});
    auto first = test::collect(stream, 1000);
    stream.reset();
    auto second = test::collect(stream, 1000);
    EXPECT_EQ(first, second);
    auto cloned = stream.clone();
    auto third = test::collect(*cloned, 1000);
    EXPECT_EQ(first, third);
}

TEST(Prefetch, TalusStaysConvexWithPrefetching)
{
    // Sec. VII-B: prefetching changes the miss curve but none of
    // Talus's assumptions. The hull of the prefetched curve must be
    // convex and Talus (ideal) must land on it.
    PrefetchedStream curve_stream(std::make_unique<CyclicScan>(1024),
                                  {});
    const MissCurve lru =
        measureLruCurve(curve_stream, 80000, 2048, 64);
    const ConvexHull hull(lru);
    EXPECT_TRUE(hull.hull().isConvex(1e-9));

    PrefetchedStream run_stream(std::make_unique<CyclicScan>(1024), {});
    TalusSweepOptions opts;
    opts.scheme = SchemeKind::Ideal;
    opts.measureAccesses = 100000;
    const MissCurve talus =
        sweepTalusCurve(run_stream, lru, {512}, opts);
    EXPECT_NEAR(talus.at(512), hull.at(512), 0.1);
}

// ------------------------------------------------- Regression coverage

TEST(Regression, FlatHullSegmentIsDegenerate)
{
    // Past a cliff the hull is flat; splitting there would let the
    // margin push alpha back below the cliff. Must be degenerate.
    const MissCurve curve({{0, 1.0}, {100, 0.9}, {200, 0.05},
                           {300, 0.05}, {400, 0.0498}});
    const ConvexHull hull(curve);
    // The 200-400 hull segment drops by only 0.4% of m(alpha): flat.
    const TalusConfig cfg = computeTalusConfig(hull, 250, 0.05);
    EXPECT_TRUE(cfg.degenerate);
    EXPECT_DOUBLE_EQ(cfg.rho, 1.0);
}

TEST(Regression, SteepSegmentsStillSplit)
{
    const MissCurve curve({{0, 1.0}, {100, 0.9}, {200, 0.05},
                           {300, 0.05}});
    const ConvexHull hull(curve);
    const TalusConfig cfg = computeTalusConfig(hull, 150, 0.0);
    EXPECT_FALSE(cfg.degenerate);
}

TEST(Regression, UmonShrinksToModeledSize)
{
    // A monitor must never track more lines than it models.
    UMon::Config cfg;
    cfg.ways = 64;
    cfg.sets = 16; // 1024 array lines...
    cfg.modeledLines = 256; // ...modeling a 256-line cache.
    UMon umon(cfg);
    // Feed a 512-line scan: a 256-line LRU cache misses everything.
    for (Addr i = 0; i < 200000; ++i)
        umon.access(i % 512);
    EXPECT_GT(umon.curve().at(256), 0.95);
}

TEST(Regression, UmonTinyModeledCache)
{
    UMon::Config cfg;
    cfg.ways = 64;
    cfg.sets = 16;
    cfg.modeledLines = 8; // Smaller than the way count.
    UMon umon(cfg);
    for (Addr i = 0; i < 10000; ++i)
        umon.access(i % 4);
    EXPECT_LT(umon.curve().at(8), 0.1);
}

TEST(Regression, WayBudgetLeavesSpareWaysUnassigned)
{
    SetAssocCache::Config cfg;
    cfg.numSets = 64;
    cfg.numWays = 16; // 1024 lines.
    auto scheme = std::make_unique<WayPartition>(2);
    WayPartition* way = scheme.get();
    SetAssocCache cache(cfg, std::make_unique<LruPolicy>(),
                        std::move(scheme));
    // Targets cover only half the cache: ways must not be inflated.
    cache.setTargets({256, 256});
    EXPECT_EQ(way->ways(0), 4u);
    EXPECT_EQ(way->ways(1), 4u);
}

TEST(Regression, PdpInitialDpHonoured)
{
    PdpPolicy::Config cfg;
    cfg.initialDp = 42;
    PdpPolicy pdp(cfg);
    pdp.init(4, 4);
    EXPECT_EQ(pdp.protectingDistance(), 42u);
}

TEST(Regression, RouterRangeAt32Bits)
{
    // 1u << 32 was UB; the 64-bit range must make wide hashes usable.
    H3Hash hash(32, 3);
    EXPECT_EQ(hash.range(), 1ull << 32);
    int below_half = 0;
    for (Addr a = 0; a < 10000; ++a)
        below_half += hash.hashUnit(a) < 0.5;
    EXPECT_NEAR(below_half / 10000.0, 0.5, 0.05);
}

} // namespace
} // namespace talus
