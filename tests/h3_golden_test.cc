/**
 * @file
 * Golden-value tests for the table-driven H3 hash.
 *
 * H3Hash::hash() is a byte-sliced table evaluation of the bit-serial
 * H3 definition (one parity per output bit). Two guards keep it
 * honest: hardcoded golden values captured from the original
 * bit-serial implementation pin the function seed-for-seed across
 * refactors (sampling decisions, shadow routing, and UMON set
 * placement all depend on these exact bits), and a randomized sweep
 * checks the tables against the in-class bit-serial reference for
 * arbitrary seeds and widths.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/shadow_router.h"
#include "util/h3_hash.h"
#include "util/rng.h"

namespace talus {
namespace {

// Address probes used by the golden vectors: edge patterns plus
// typical per-app line addresses (kAddrSpaceShift region).
constexpr Addr kProbes[] = {
    0ull,
    1ull,
    0xFFFFFFFFFFFFFFFFull,
    0xDEADBEEFull,
    0x123456789ABCDEFull,
    1ull << 40,
    (1ull << 40) + 12345,
    0x5555555555555555ull,
};
constexpr size_t kNumProbes = sizeof(kProbes) / sizeof(kProbes[0]);

struct GoldenVector
{
    uint32_t bits;
    uint64_t seed;
    uint32_t expected[kNumProbes];
};

// Captured from the bit-serial implementation this PR replaced
// (seeds are the defaults used across the library: H3Hash default,
// perf_micro, UMon sample/set hashes, facade router derivation).
constexpr GoldenVector kGolden[] = {
    {8, 0x1905CAFEull,
     {0x0u, 0x5u, 0xC3u, 0xF5u, 0x27u, 0x5Du, 0x24u, 0x76u}},
    {8, 0x1ull,
     {0x0u, 0x99u, 0x11u, 0xEDu, 0x8u, 0xA7u, 0xBBu, 0xC0u}},
    {32, 0x707ull,
     {0x0u, 0xED354465u, 0x35DBDE43u, 0xA9C2E78Du, 0xCBA96B40u,
      0x8C099D96u, 0x3FC6BCD9u, 0x242313D3u}},
    {32, 0xBADC7D9ull,
     {0x0u, 0x573C91A4u, 0x846CD3B9u, 0xC5997542u, 0xFBD0A142u,
      0x7FB2C95Cu, 0xE4FD613u, 0x9F784792u}},
    {16, 0x2Aull,
     {0x0u, 0x4E8Cu, 0x2696u, 0x10A6u, 0x6EE0u, 0x1EAFu, 0xBA60u,
      0xD75Cu}},
    {1, 0x7ull, {0x0u, 0x0u, 0x0u, 0x1u, 0x1u, 0x0u, 0x0u, 0x0u}},
    {32, 0xC3Bull,
     {0x0u, 0x97612C6Fu, 0x4A3CBE0Fu, 0x58A3F5F9u, 0x618CAC71u,
      0x2EF2C21Du, 0x7032394Du, 0xA28E1A1Cu}},
};

TEST(H3Golden, MatchesPrePrBitSerialValues)
{
    for (const GoldenVector& g : kGolden) {
        H3Hash h(g.bits, g.seed);
        for (size_t i = 0; i < kNumProbes; ++i)
            EXPECT_EQ(h.hash(kProbes[i]), g.expected[i])
                << "bits=" << g.bits << " seed=" << g.seed
                << " addr=" << kProbes[i];
    }
}

TEST(H3Golden, TableMatchesBitSerialReferenceForRandomSeeds)
{
    Rng rng(0xF00D);
    for (int trial = 0; trial < 20; ++trial) {
        const uint32_t bits = 1 + static_cast<uint32_t>(rng.below(32));
        const uint64_t seed = rng.next64();
        H3Hash h(bits, seed);
        for (int i = 0; i < 2000; ++i) {
            const Addr a = rng.next64();
            ASSERT_EQ(h.hash(a), h.hashReference(a))
                << "bits=" << bits << " seed=" << seed << " addr=" << a;
        }
    }
}

TEST(H3Golden, SmallAddressFastPathIsBitExact)
{
    // hash() takes short-circuit paths for addr < 2^16 and < 2^32
    // (zero high bytes fold into a precomputed constant). Pin every
    // path — and the boundaries between them — to the bit-serial
    // reference.
    constexpr Addr kEdges[] = {
        0ull, 1ull, 0xFFull, 0x100ull, 0xFFFFull,          // 2-load path
        0x10000ull, 0xDEADBEEFull, 0xFFFFFFFFull,          // 4-load path
        0x100000000ull, 0x123456789ABCDEFull, ~0ull,       // 8-load path
    };
    Rng rng(0xB10C);
    for (int trial = 0; trial < 8; ++trial) {
        const uint32_t bits = 1 + static_cast<uint32_t>(rng.below(32));
        const uint64_t seed = rng.next64();
        H3Hash h(bits, seed);
        for (const Addr a : kEdges)
            ASSERT_EQ(h.hash(a), h.hashReference(a))
                << "bits=" << bits << " seed=" << seed << " addr=" << a;
        // Random draws confined to each path's range.
        for (int i = 0; i < 500; ++i) {
            const Addr small = rng.below(1ull << 16);
            const Addr mid = rng.below(1ull << 32);
            ASSERT_EQ(h.hash(small), h.hashReference(small));
            ASSERT_EQ(h.hash(mid), h.hashReference(mid));
        }
    }
}

TEST(H3Golden, HashBlockMatchesPerAddressCalls)
{
    // hashBlock is the batched-access fast path; it must be bit-exact
    // with per-address hash() calls for every length, including the
    // degenerate 0/1 blocks and odd tails that defeat unrolling.
    Rng rng(0x5EED);
    for (const uint64_t seed : {0x1905CAFEull, 0x707ull, 0xC3Bull}) {
        H3Hash h(32, seed);
        for (const size_t n : {size_t(0), size_t(1), size_t(2),
                               size_t(7), size_t(63), size_t(257)}) {
            std::vector<Addr> addrs(n);
            for (auto& a : addrs) {
                // Mix full-width and small addresses so the block
                // exercises all of hash()'s internal paths.
                a = (rng.below(3) == 0) ? rng.below(1ull << 16)
                                        : rng.next64();
            }
            std::vector<uint32_t> block(n, 0xA5A5A5A5u);
            h.hashBlock(Span<const Addr>(addrs.data(), n),
                        block.data());
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(block[i], h.hash(addrs[i]))
                    << "seed=" << seed << " n=" << n << " i=" << i;
        }
    }
}

TEST(H3Golden, HashUnitMatchesHashForWideHashes)
{
    H3Hash h(32, 0x707);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.next64();
        EXPECT_DOUBLE_EQ(h.hashUnit(a),
                         static_cast<double>(h.hash(a)) /
                             static_cast<double>(h.range()));
    }
}

TEST(H3Golden, ShadowRouterRoutingUnchanged)
{
    // The router's alpha/beta split is hash < limit; with the golden
    // seed the first probe values are pinned above, so spot-check the
    // routing decision itself for a mid-range rho.
    ShadowRouter router(8, 0x1905CAFE);
    router.setRho(0.5); // limit = 128
    EXPECT_TRUE(router.toAlpha(0));      // hash 0x00
    EXPECT_TRUE(router.toAlpha(1));      // hash 0x05
    EXPECT_FALSE(router.toAlpha(~0ull)); // hash 0xC3
    EXPECT_FALSE(router.toAlpha(0xDEADBEEF)); // hash 0xF5
}

} // namespace
} // namespace talus
