/**
 * @file
 * Link-time smoke test: instantiates one object from every src/
 * subsystem through its public factory so a missing translation unit
 * or broken factory registration fails fast, before the deeper
 * behavioral suites run.
 */

#include <gtest/gtest.h>

#include "alloc/allocator_factory.h"
#include "core/miss_curve.h"
#include "core/talus_config.h"
#include "monitor/umon.h"
#include "partition/partitioned_cache.h"
#include "policy/policy_factory.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

TEST(BuildSmoke, EveryKnownPolicyConstructs)
{
    const auto names = knownPolicies();
    ASSERT_FALSE(names.empty());
    for (const auto& name : names) {
        auto policy = makePolicy(name);
        ASSERT_NE(policy, nullptr) << name;
    }
}

TEST(BuildSmoke, EveryKnownAllocatorConstructs)
{
    const auto names = knownAllocators();
    ASSERT_FALSE(names.empty());
    for (const auto& name : names) {
        auto alloc = makeAllocator(name);
        ASSERT_NE(alloc, nullptr) << name;
    }
}

TEST(BuildSmoke, EveryPartitionSchemeConstructsAndAccepts)
{
    const SchemeKind kinds[] = {SchemeKind::Unpartitioned, SchemeKind::Way,
                                SchemeKind::Set,           SchemeKind::Vantage,
                                SchemeKind::Futility,      SchemeKind::Ideal};
    for (SchemeKind kind : kinds) {
        auto cache = makePartitionedCache(kind, /*capacity_lines=*/4096,
                                          /*num_ways=*/16, "LRU",
                                          /*num_parts=*/2);
        ASSERT_NE(cache, nullptr);
        EXPECT_EQ(cache->numPartitions(), 2u);
        // One access per partition exercises the victim-selection path.
        cache->access(0x1000, 0);
        cache->access(0x2000, 1);
    }
}

TEST(BuildSmoke, WorkloadStreamProducesAndClones)
{
    ZipfStream zipf(/*num_lines=*/1024, /*alpha=*/0.8);
    auto clone = zipf.clone();
    ASSERT_NE(clone, nullptr);
    EXPECT_EQ(zipf.next(), clone->next());
    EXPECT_STREQ(zipf.kind(), "zipf");
}

TEST(BuildSmoke, MonitorAndConfigConstruct)
{
    UMon umon(UMon::Config{});
    umon.access(0x40);
    TalusConfig config;
    (void)config;
    MissCurve curve(std::vector<CurvePoint>{{0.0, 4.0}, {64.0, 1.0}});
    EXPECT_EQ(curve.numPoints(), 2u);
}

} // namespace
} // namespace talus
