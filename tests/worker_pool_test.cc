/**
 * @file
 * WorkerPool: every task runs exactly once per batch, run() returns
 * only after all tasks finish, pools are reusable across many
 * batches (the straggler path), and threads == 0 runs inline in
 * index order. The TSan CI job runs these same tests to race-check
 * the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "shard/worker_pool.h"

namespace talus {
namespace {

class WorkerPoolEveryThreadCount
    : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(WorkerPoolEveryThreadCount, RunsEveryTaskExactlyOnce)
{
    WorkerPool pool(GetParam());
    for (uint32_t num_tasks : {0u, 1u, 2u, 7u, 64u}) {
        std::vector<std::atomic<uint32_t>> ran(num_tasks);
        for (auto& r : ran)
            r.store(0);
        pool.run(num_tasks,
                 [&](uint32_t t) { ran[t].fetch_add(1); });
        for (uint32_t t = 0; t < num_tasks; ++t)
            EXPECT_EQ(ran[t].load(), 1u) << "task " << t;
    }
}

TEST_P(WorkerPoolEveryThreadCount, RunReturnsAfterAllTasksFinished)
{
    WorkerPool pool(GetParam());
    constexpr uint32_t kTasks = 16;
    std::vector<uint64_t> out(kTasks, 0);
    pool.run(kTasks, [&](uint32_t t) {
        // Some spinning so tasks overlap when threaded.
        uint64_t acc = t;
        for (int i = 0; i < 1000; ++i)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        out[t] = acc;
    });
    // run() returned: every slot must be written (no task left
    // running). Values are deterministic per index.
    for (uint32_t t = 0; t < kTasks; ++t) {
        uint64_t want = t;
        for (int i = 0; i < 1000; ++i)
            want = want * 6364136223846793005ull + 1442695040888963407ull;
        EXPECT_EQ(out[t], want) << "task " << t;
    }
}

TEST_P(WorkerPoolEveryThreadCount, ManyConsecutiveBatches)
{
    // Back-to-back batches stress the batch-boundary logic (a worker
    // waking late from batch G must not corrupt batch G+1).
    WorkerPool pool(GetParam());
    constexpr uint32_t kTasks = 8;
    constexpr uint32_t kBatches = 500;
    std::vector<std::atomic<uint32_t>> counts(kTasks);
    for (auto& c : counts)
        c.store(0);
    for (uint32_t b = 0; b < kBatches; ++b)
        pool.run(kTasks, [&](uint32_t t) { counts[t].fetch_add(1); });
    for (uint32_t t = 0; t < kTasks; ++t)
        EXPECT_EQ(counts[t].load(), kBatches) << "task " << t;
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, WorkerPoolEveryThreadCount,
                         ::testing::Values(0u, 1u, 2u, 4u, 8u));

TEST(WorkerPool, InlineModeRunsInIndexOrderOnCallerThread)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.threadCount(), 0u);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<uint32_t> order;
    pool.run(5, [&](uint32_t t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(t);
    });
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, MoreThreadsThanTasks)
{
    WorkerPool pool(8);
    EXPECT_EQ(pool.threadCount(), 8u);
    std::atomic<uint32_t> ran{0};
    pool.run(2, [&](uint32_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 2u);
}

TEST(WorkerPool, StragglerQuiescenceStress)
{
    // The bug class this targets: a worker still draining batch G's
    // task counter while the caller has already started batch G+1.
    // Mix task counts (including counts below, equal to, and above
    // the thread count), vary per-task work so some workers straggle,
    // and occasionally let the pool go fully idle so the next run()
    // has to wake parked threads. Each batch checksums into its own
    // slot, so cross-batch corruption shows up as a wrong sum.
    for (uint32_t threads : {1u, 2u, 3u, 5u}) {
        WorkerPool pool(threads);
        constexpr uint32_t kBatches = 300;
        for (uint32_t b = 0; b < kBatches; ++b) {
            const uint32_t num_tasks = 1 + (b * 7 + threads) % 13;
            std::vector<std::atomic<uint64_t>> sums(num_tasks);
            for (auto& s : sums)
                s.store(0);
            pool.run(num_tasks, [&](uint32_t t) {
                // Straggler: task 0 of every 8th batch spins longer.
                uint64_t acc = b * 1000 + t;
                const int spins =
                    (t == 0 && b % 8 == 0) ? 20'000 : 100;
                for (int i = 0; i < spins; ++i)
                    acc = acc * 2862933555777941757ull + 3037000493ull;
                sums[t].fetch_add(b * 1000 + t);
            });
            for (uint32_t t = 0; t < num_tasks; ++t)
                ASSERT_EQ(sums[t].load(), b * 1000 + t)
                    << "threads=" << threads << " batch=" << b
                    << " task=" << t;
            // Let workers park occasionally so run() exercises the
            // wake-from-idle path, not just the hot handoff.
            if (b % 64 == 63)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
        }
    }
}

TEST(WorkerPoolDeathTest, RunIsNotReentrant)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // threads == 0 keeps the death test fork()-safe (no pool threads
    // in the parent snapshot) while still exercising the guard: the
    // inline path holds the running flag while executing tasks.
    WorkerPool pool(0);
    EXPECT_DEATH(
        pool.run(1, [&](uint32_t) { pool.run(1, [](uint32_t) {}); }),
        "not reentrant");
}

TEST(WorkerPool, DestructionWithIdleWorkersIsClean)
{
    // Construct, run once, destroy — and construct-destroy with no
    // run at all; both must join without hanging.
    {
        WorkerPool pool(4);
        std::atomic<uint32_t> ran{0};
        pool.run(4, [&](uint32_t) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 4u);
    }
    {
        WorkerPool pool(3);
    }
}

} // namespace
} // namespace talus
