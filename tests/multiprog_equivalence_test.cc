/**
 * @file
 * Same-results regression guard for the TalusCache facade refactor.
 *
 * runMultiProg() used to wire monitors, the TalusController, and the
 * allocator by hand; it now drives everything through the facade.
 * This suite keeps a faithful replica of the original hand-wired loop
 * (construction order, seed derivations, reconfiguration flow) and
 * checks that the facade-driven engine reproduces its per-app IPC and
 * MPKI exactly for a fixed seed, in every mode the engine supports
 * (Talus, plain partitioned + allocator, unpartitioned baseline).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "alloc/allocator_factory.h"
#include "alloc/fair_alloc.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "sim/multi_prog_sim.h"
#include "workload/spec_suite.h"

namespace talus {
namespace {

/** Per-app dynamic state of the reference engine. */
struct RefAppState
{
    std::unique_ptr<AccessStream> stream;
    CoreModel model;
    double cycles = 0;
    double instr = 0;
    uint64_t intervalAccesses = 0;
    uint64_t measuredAccesses = 0;
    uint64_t measuredMisses = 0;
    bool done = false;
    double doneCycles = 0;
};

/**
 * The pre-facade runMultiProg, verbatim: hand-wired monitors,
 * controller, and allocator. Kept as the reference the facade must
 * match bit-for-bit.
 */
MultiProgResult
runMultiProgReference(const std::vector<const AppSpec*>& apps,
                      const MultiProgConfig& cfg, const Scale& scale)
{
    const uint32_t n = static_cast<uint32_t>(apps.size());

    std::vector<RefAppState> state;
    state.reserve(n);
    std::vector<CombinedUMon> monitors;
    monitors.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        state.push_back(RefAppState{
            apps[i]->buildStream(scale.linesPerMb(), i + 1,
                                 cfg.seed + 131 * i),
            CoreModel(*apps[i], cfg.coreParams)});

        CombinedUMon::Config mc;
        mc.llcLines = cfg.llcLines;
        mc.coverage = cfg.umonCoverage;
        mc.seed = cfg.seed ^ (0x1111ull * (i + 1));
        monitors.emplace_back(mc);
    }

    std::unique_ptr<TalusController> talus_ctl;
    std::unique_ptr<PartitionedCacheBase> plain;
    if (cfg.useTalus) {
        auto phys = makePartitionedCache(cfg.scheme, cfg.llcLines,
                                         cfg.ways, cfg.policyName,
                                         2 * n, cfg.seed);
        TalusController::Config tc;
        tc.numLogicalParts = n;
        tc.margin = cfg.margin;
        tc.routerBits = cfg.routerBits;
        tc.usableFraction = schemeUsableFraction(cfg.scheme);
        tc.recomputeFromCoarsened = cfg.scheme == SchemeKind::Way ||
                                    cfg.scheme == SchemeKind::Set;
        tc.seed = cfg.seed ^ 0xC11;
        talus_ctl =
            std::make_unique<TalusController>(std::move(phys), tc);

        std::vector<MissCurve> flat(n, MissCurve({{0.0, 1.0}}));
        FairAllocator fair;
        talus_ctl->configure(flat,
                             fair.allocate(flat, cfg.llcLines, 1));
    } else {
        plain = makePartitionedCache(cfg.scheme, cfg.llcLines, cfg.ways,
                                     cfg.policyName, n, cfg.seed);
    }

    std::unique_ptr<Allocator> allocator;
    if (!cfg.allocatorName.empty())
        allocator = makeAllocator(cfg.allocatorName);

    const uint64_t granule = std::max<uint64_t>(1, cfg.llcLines / 64);
    const double instr_target = static_cast<double>(cfg.instrPerApp);

    MultiProgResult result;
    result.apps.resize(n);
    uint32_t remaining = n;
    double next_reconfig = cfg.reconfigCycles;

    while (remaining > 0) {
        uint32_t a = 0;
        double min_cycles = std::numeric_limits<double>::infinity();
        for (uint32_t i = 0; i < n; ++i) {
            if (state[i].cycles < min_cycles) {
                min_cycles = state[i].cycles;
                a = i;
            }
        }

        RefAppState& s = state[a];
        const Addr addr = s.stream->next();
        monitors[a].access(addr);
        const bool hit = cfg.useTalus ? talus_ctl->access(addr, a)
                                      : plain->access(addr, a);
        s.cycles += s.model.cyclesPerAccess(hit);
        s.instr += s.model.instrPerAccess();
        s.intervalAccesses++;

        if (!s.done) {
            s.measuredAccesses++;
            if (!hit)
                s.measuredMisses++;
            if (s.instr >= instr_target) {
                s.done = true;
                s.doneCycles = s.cycles;
                remaining--;
            }
        }

        if (allocator != nullptr && min_cycles >= next_reconfig) {
            next_reconfig += cfg.reconfigCycles;
            result.reconfigurations++;

            std::vector<MissCurve> curves;
            std::vector<MissCurve> alloc_curves;
            curves.reserve(n);
            alloc_curves.reserve(n);
            for (uint32_t i = 0; i < n; ++i) {
                MissCurve c = monitors[i].curve();
                alloc_curves.push_back(c.scaled(
                    1.0,
                    static_cast<double>(state[i].intervalAccesses) +
                        1.0));
                curves.push_back(std::move(c));
                state[i].intervalAccesses = 0;
            }

            if (cfg.allocateOnHulls)
                alloc_curves =
                    TalusController::convexHulls(alloc_curves);

            const uint64_t usable =
                (!cfg.useTalus && cfg.scheme == SchemeKind::Vantage)
                    ? cfg.llcLines * 9 / 10
                    : cfg.llcLines;
            const std::vector<uint64_t> alloc =
                allocator->allocate(alloc_curves, usable, granule);

            if (cfg.useTalus) {
                talus_ctl->configure(curves, alloc);
            } else if (cfg.scheme != SchemeKind::Unpartitioned) {
                plain->setTargets(alloc);
            }

            for (auto& mon : monitors)
                mon.decay();
            if (cfg.useTalus)
                talus_ctl->nextInterval();
            else
                plain->nextInterval();
        }
    }

    for (uint32_t i = 0; i < n; ++i) {
        AppRunResult& r = result.apps[i];
        const RefAppState& s = state[i];
        r.name = apps[i]->name;
        r.cycles = s.doneCycles;
        r.ipc = instr_target / s.doneCycles;
        r.missRatio = s.measuredAccesses > 0
                          ? static_cast<double>(s.measuredMisses) /
                                static_cast<double>(s.measuredAccesses)
                          : 0.0;
        r.mpki = static_cast<double>(s.measuredMisses) /
                 (instr_target / 1000.0);
    }
    return result;
}

std::vector<const AppSpec*>
mix(const std::vector<std::string>& names)
{
    std::vector<const AppSpec*> apps;
    for (const auto& name : names)
        apps.push_back(&findApp(name));
    return apps;
}

void
expectSameResults(const MultiProgResult& facade,
                  const MultiProgResult& ref)
{
    EXPECT_EQ(facade.reconfigurations, ref.reconfigurations);
    ASSERT_EQ(facade.apps.size(), ref.apps.size());
    for (size_t i = 0; i < facade.apps.size(); ++i) {
        EXPECT_EQ(facade.apps[i].name, ref.apps[i].name);
        EXPECT_DOUBLE_EQ(facade.apps[i].ipc, ref.apps[i].ipc) << i;
        EXPECT_DOUBLE_EQ(facade.apps[i].mpki, ref.apps[i].mpki) << i;
        EXPECT_DOUBLE_EQ(facade.apps[i].missRatio,
                         ref.apps[i].missRatio)
            << i;
        EXPECT_DOUBLE_EQ(facade.apps[i].cycles, ref.apps[i].cycles)
            << i;
    }
}

TEST(MultiProgEquivalence, TalusModeMatchesHandWiredPath)
{
    const Scale scale(64);
    MultiProgConfig cfg;
    cfg.llcLines = 1024; // Divisible by ways: no set rounding.
    cfg.ways = 32;
    cfg.scheme = SchemeKind::Vantage;
    cfg.useTalus = true;
    cfg.allocateOnHulls = true;
    cfg.allocatorName = "HillClimb";
    cfg.instrPerApp = 400'000;
    cfg.reconfigCycles = 150'000;
    cfg.seed = 123;
    const auto apps = mix({"astar", "omnetpp"});
    expectSameResults(runMultiProg(apps, cfg, scale),
                      runMultiProgReference(apps, cfg, scale));
}

TEST(MultiProgEquivalence, PlainPartitionedModeMatchesHandWiredPath)
{
    const Scale scale(64);
    MultiProgConfig cfg;
    cfg.llcLines = 512;
    cfg.ways = 32;
    cfg.scheme = SchemeKind::Vantage;
    cfg.useTalus = false;
    cfg.allocatorName = "Lookahead";
    cfg.instrPerApp = 300'000;
    cfg.reconfigCycles = 120'000;
    cfg.seed = 77;
    const auto apps = mix({"astar", "gcc"});
    expectSameResults(runMultiProg(apps, cfg, scale),
                      runMultiProgReference(apps, cfg, scale));
}

TEST(MultiProgEquivalence, UnpartitionedBaselineMatchesHandWiredPath)
{
    const Scale scale(64);
    MultiProgConfig cfg;
    cfg.llcLines = 512;
    cfg.ways = 32;
    cfg.scheme = SchemeKind::Unpartitioned;
    cfg.useTalus = false;
    cfg.allocatorName = "";
    cfg.instrPerApp = 300'000;
    cfg.reconfigCycles = 120'000;
    cfg.seed = 9;
    const auto apps = mix({"milc", "hmmer"});
    expectSameResults(runMultiProg(apps, cfg, scale),
                      runMultiProgReference(apps, cfg, scale));
}

} // namespace
} // namespace talus
