/**
 * @file
 * Tests for the optimal-bypassing analysis (Sec. V-C, Corollary 8):
 * bypassing can match but never beat the convex hull Talus traces.
 */

#include <gtest/gtest.h>

#include "core/bypass_analysis.h"
#include "core/convex_hull.h"
#include "util/rng.h"

namespace talus {
namespace {

MissCurve
exampleCurve()
{
    return MissCurve({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                      {5, 3}, {6, 3}, {8, 3}, {10, 3}});
}

TEST(Bypass, FormulaMatchesHandComputation)
{
    // rho=0.8 at s=4: 0.8*m(5) + 0.2*m(0) = 0.8*3 + 0.2*24 = 7.2.
    const MissCurve curve = exampleCurve();
    EXPECT_NEAR(bypassMisses(curve, 4.0, 0.8), 7.2, 1e-9);
    // rho=1: no bypassing.
    EXPECT_NEAR(bypassMisses(curve, 4.0, 1.0), curve.at(4.0), 1e-9);
}

TEST(Bypass, OptimalAtFourMbMatchesPaperFigure5)
{
    // Fig. 5: optimal bypassing at 4MB gives roughly 8 MPKI (exactly
    // 7.2 on the idealized curve: keep 80% at 5MB) — better than
    // LRU's 12 but worse than Talus's 6.
    const MissCurve curve = exampleCurve();
    const BypassChoice choice = optimalBypass(curve, 4.0);
    EXPECT_NEAR(choice.emulated, 5.0, 1e-9);
    EXPECT_NEAR(choice.rho, 0.8, 1e-9);
    EXPECT_NEAR(choice.misses, 7.2, 1e-9);
    EXPECT_LT(choice.misses, curve.at(4.0));      // Beats LRU.
    const ConvexHull hull(curve);
    EXPECT_GT(choice.misses, hull.at(4.0));       // Loses to Talus.
    EXPECT_NEAR(choice.keptPart + choice.bypassPart, choice.misses,
                1e-12);
}

TEST(Bypass, NeverBeatsConvexHull)
{
    // Corollary 8, on the example curve at every size.
    const MissCurve curve = exampleCurve();
    const ConvexHull hull(curve);
    for (double s = 0.0; s <= 10.0; s += 0.1) {
        const BypassChoice choice = optimalBypass(curve, s);
        EXPECT_GE(choice.misses, hull.at(s) - 1e-9) << "s=" << s;
        EXPECT_LE(choice.misses, curve.at(s) + 1e-9) << "s=" << s;
    }
}

TEST(Bypass, RandomCurvesNeverBeatHull)
{
    Rng rng(53);
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<CurvePoint> pts;
        double value = 40.0 + static_cast<double>(rng.below(40));
        const int n = 4 + static_cast<int>(rng.below(16));
        for (int i = 0; i < n; ++i) {
            pts.push_back({static_cast<double>(i * 2), value});
            if (rng.chance(0.6))
                value -= static_cast<double>(rng.below(15));
            if (value < 0)
                value = 0;
        }
        const MissCurve curve(pts);
        const ConvexHull hull(curve);
        for (int k = 0; k < 8; ++k) {
            const double s = rng.unit() * curve.maxSize();
            EXPECT_GE(optimalBypass(curve, s).misses,
                      hull.at(s) - 1e-9);
        }
    }
}

TEST(Bypass, CurveHelperMatchesPointQueries)
{
    const MissCurve curve = exampleCurve();
    const MissCurve bypass_curve = optimalBypassCurve(curve);
    for (const CurvePoint& p : curve.points()) {
        EXPECT_NEAR(bypass_curve.at(p.size),
                    optimalBypass(curve, p.size).misses, 1e-9);
    }
}

TEST(Bypass, NoBenefitOnConvexCurves)
{
    // On an already-convex curve, bypassing cannot improve anything:
    // the best choice is rho = 1.
    const MissCurve convex({{0, 16}, {2, 8}, {4, 4}, {6, 2.5}, {8, 2}});
    for (double s : {1.0, 3.0, 5.0, 7.0}) {
        const BypassChoice choice = optimalBypass(convex, s);
        EXPECT_NEAR(choice.misses, convex.at(s), 1e-9) << "s=" << s;
    }
}

} // namespace
} // namespace talus
