/**
 * @file
 * Tests for MissCurve and ConvexHull, including the paper's Fig. 3
 * example curve and randomized hull properties.
 */

#include <gtest/gtest.h>

#include "core/convex_hull.h"
#include "core/miss_curve.h"
#include "util/rng.h"

namespace talus {
namespace {

/** The Sec. III example: cliff at 5MB (sizes in MB, MPKI values). */
MissCurve
exampleCurve()
{
    return MissCurve({{0, 24}, {1, 18}, {2, 12}, {3, 12}, {4, 12},
                      {5, 3}, {6, 3}, {8, 3}, {10, 3}});
}

TEST(MissCurve, SortsAndDeduplicates)
{
    MissCurve c({{4, 1}, {0, 10}, {2, 5}, {2, 7}});
    EXPECT_EQ(c.numPoints(), 3u);
    EXPECT_DOUBLE_EQ(c.point(0).size, 0);
    EXPECT_DOUBLE_EQ(c.point(1).size, 2);
    EXPECT_DOUBLE_EQ(c.point(1).misses, 5); // Min of duplicates.
}

TEST(MissCurve, LinearInterpolation)
{
    MissCurve c({{0, 10}, {10, 0}});
    EXPECT_DOUBLE_EQ(c.at(5), 5.0);
    EXPECT_DOUBLE_EQ(c.at(2.5), 7.5);
}

TEST(MissCurve, ClampsOutsideRange)
{
    MissCurve c({{2, 8}, {6, 4}});
    EXPECT_DOUBLE_EQ(c.at(0), 8.0);
    EXPECT_DOUBLE_EQ(c.at(100), 4.0);
}

TEST(MissCurve, VectorConstructor)
{
    MissCurve c(std::vector<double>{9, 6, 3}, 128.0);
    EXPECT_EQ(c.numPoints(), 3u);
    EXPECT_DOUBLE_EQ(c.at(128), 6.0);
    EXPECT_DOUBLE_EQ(c.at(64), 7.5);
}

TEST(MissCurve, ConvexityChecks)
{
    EXPECT_TRUE(MissCurve({{0, 10}, {1, 5}, {2, 2}, {3, 1}}).isConvex());
    // Cliff: plateau then drop = non-convex.
    EXPECT_FALSE(exampleCurve().isConvex());
    EXPECT_TRUE(exampleCurve().isNonIncreasing());
    EXPECT_FALSE(MissCurve({{0, 5}, {1, 7}}).isNonIncreasing());
}

TEST(MissCurve, ScaledScalesBothAxes)
{
    MissCurve c({{0, 10}, {4, 2}});
    MissCurve s = c.scaled(2.0, 0.5);
    EXPECT_DOUBLE_EQ(s.maxSize(), 8.0);
    EXPECT_DOUBLE_EQ(s.at(0), 5.0);
    EXPECT_DOUBLE_EQ(s.at(8), 1.0);
}

TEST(MissCurve, MonotoneClamped)
{
    MissCurve noisy({{0, 10}, {1, 4}, {2, 6}, {3, 3}});
    MissCurve clamped = noisy.monotoneClamped();
    EXPECT_TRUE(clamped.isNonIncreasing());
    EXPECT_DOUBLE_EQ(clamped.at(2), 4.0);
}

// ----------------------------------------------------------- ConvexHull

TEST(MissCurve, DefaultConstructedIsEmpty)
{
    MissCurve curve;
    EXPECT_EQ(curve.numPoints(), 0u);
    EXPECT_TRUE(curve.points().empty());
}

TEST(MissCurve, SinglePointClampsEverywhere)
{
    MissCurve curve({{4.0, 7.0}});
    EXPECT_DOUBLE_EQ(curve.minSize(), 4.0);
    EXPECT_DOUBLE_EQ(curve.maxSize(), 4.0);
    EXPECT_DOUBLE_EQ(curve.at(0.0), 7.0);
    EXPECT_DOUBLE_EQ(curve.at(4.0), 7.0);
    EXPECT_DOUBLE_EQ(curve.at(100.0), 7.0);
    EXPECT_TRUE(curve.isNonIncreasing());
    EXPECT_TRUE(curve.isConvex());
}

TEST(Hull, ExampleCurveHull)
{
    // The Fig. 3 hull bridges the plateau: vertices (0,24), (2,12),
    // (5,3), (10,3).
    const ConvexHull hull(exampleCurve());
    const auto& pts = hull.hull().points();
    ASSERT_EQ(pts.size(), 4u);
    EXPECT_DOUBLE_EQ(pts[0].size, 0);
    EXPECT_DOUBLE_EQ(pts[1].size, 2);
    EXPECT_DOUBLE_EQ(pts[2].size, 5);
    EXPECT_DOUBLE_EQ(pts[3].size, 10);
    // At 4MB the hull reads 6 MPKI — the paper's worked example.
    EXPECT_NEAR(hull.at(4.0), 6.0, 1e-9);
}

TEST(Hull, SegmentForBracketsSize)
{
    const ConvexHull hull(exampleCurve());
    const auto seg = hull.segmentFor(4.0);
    EXPECT_FALSE(seg.degenerate);
    EXPECT_DOUBLE_EQ(seg.alpha.size, 2.0);
    EXPECT_DOUBLE_EQ(seg.beta.size, 5.0);
}

TEST(Hull, SegmentDegenerateOnVertexAndOutside)
{
    const ConvexHull hull(exampleCurve());
    EXPECT_TRUE(hull.segmentFor(2.0).degenerate);
    EXPECT_TRUE(hull.segmentFor(0.0).degenerate);
    EXPECT_TRUE(hull.segmentFor(10.0).degenerate);
    EXPECT_TRUE(hull.segmentFor(50.0).degenerate);
}

TEST(Hull, SinglePointCurve)
{
    const ConvexHull hull(MissCurve({{5, 2}}));
    EXPECT_EQ(hull.hull().numPoints(), 1u);
    EXPECT_TRUE(hull.segmentFor(3).degenerate);
    EXPECT_TRUE(hull.segmentFor(7).degenerate);
}

TEST(Hull, IdempotentOnConvexCurves)
{
    const MissCurve convex({{0, 16}, {1, 8}, {2, 4}, {3, 2}, {4, 1.5}});
    const ConvexHull hull(convex);
    EXPECT_EQ(hull.hull().numPoints(), convex.numPoints());
    for (size_t i = 0; i < convex.numPoints(); ++i)
        EXPECT_DOUBLE_EQ(hull.hull().point(i).misses,
                         convex.point(i).misses);
}

TEST(Hull, DropsCollinearMiddlePoints)
{
    const ConvexHull hull(MissCurve({{0, 9}, {1, 6}, {2, 3}, {3, 0}}));
    EXPECT_EQ(hull.hull().numPoints(), 2u);
}

TEST(Hull, RandomCurvesProperties)
{
    // Property test: for random non-increasing curves, the hull is
    // convex, lies at or below the curve, and shares the endpoints.
    Rng rng(31);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<CurvePoint> pts;
        double value = 100.0 + static_cast<double>(rng.below(100));
        const int n = 3 + static_cast<int>(rng.below(30));
        for (int i = 0; i < n; ++i) {
            pts.push_back({static_cast<double>(i), value});
            value -= static_cast<double>(rng.below(20));
            if (value < 0)
                value = 0;
        }
        const MissCurve curve(pts);
        const ConvexHull hull(curve);

        EXPECT_TRUE(hull.hull().isConvex(1e-7)) << "trial " << trial;
        for (const CurvePoint& p : curve.points())
            EXPECT_LE(hull.at(p.size), p.misses + 1e-9);
        EXPECT_DOUBLE_EQ(hull.hull().point(0).misses,
                         curve.point(0).misses);
        EXPECT_DOUBLE_EQ(hull.hull().points().back().misses,
                         curve.points().back().misses);

        // Idempotence: hull of hull == hull.
        const ConvexHull hull2(hull.hull());
        EXPECT_EQ(hull2.hull().numPoints(), hull.hull().numPoints());
    }
}

} // namespace
} // namespace talus
