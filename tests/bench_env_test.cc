/**
 * @file
 * Tests for the shared bench command line (BenchEnv::init): value
 * flags override environment defaults, --help exits cleanly, and
 * unrecognized `--` flags are an error instead of being silently
 * ignored.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment_util.h"
#include "sim/serving_harness.h"
#include "trace/trace_file.h"

namespace talus {
namespace {

/** Runs BenchEnv::init over a fake argv. */
BenchEnv
initWith(std::vector<const char*> args)
{
    args.insert(args.begin(), "bench_test");
    return BenchEnv::init(static_cast<int>(args.size()),
                          const_cast<char**>(args.data()));
}

TEST(BenchEnv, DefaultsWithoutFlags)
{
    const BenchEnv env = initWith({});
    EXPECT_FALSE(env.csv);
    EXPECT_GT(env.instrPerApp, 0u);
    EXPECT_GT(env.mixes, 0u);
    EXPECT_GT(env.measureAccesses, 0u);
}

TEST(BenchEnv, ValueFlagsOverrideDefaults)
{
    const BenchEnv env = initWith({"--csv", "--scale=128", "--instr=5000",
                                   "--mixes=3", "--accesses=777",
                                   "--seed=42", "--shards=8",
                                   "--threads=2", "--reconfig=25000"});
    EXPECT_TRUE(env.csv);
    EXPECT_EQ(env.scale.linesPerMb(), 128u);
    EXPECT_EQ(env.instrPerApp, 5000u);
    EXPECT_EQ(env.mixes, 3u);
    EXPECT_EQ(env.measureAccesses, 777u);
    EXPECT_EQ(env.seed, 42u);
    EXPECT_EQ(env.shards, 8u);
    EXPECT_EQ(env.threads, 2u);
    EXPECT_EQ(env.reconfig, 25000u);
}

TEST(BenchEnv, ShardKnobsDefaultToZero)
{
    // 0 means "bench default" (shards, reconfig) / inline execution
    // (threads).
    const BenchEnv env = initWith({});
    EXPECT_EQ(env.shards, 0u);
    EXPECT_EQ(env.threads, 0u);
    EXPECT_EQ(env.reconfig, 0u);
}

TEST(BenchEnv, FullSelectsPaperScaleUnlessOverridden)
{
    EXPECT_EQ(initWith({"--full"}).scale.linesPerMb(),
              Scale::kFullLinesPerMb);
    // An explicit --scale wins over --full.
    EXPECT_EQ(initWith({"--full", "--scale=256"}).scale.linesPerMb(),
              256u);
    // --full also lengthens the default run.
    EXPECT_GT(initWith({"--full"}).instrPerApp,
              initWith({}).instrPerApp);
}

TEST(BenchEnv, PositionalArgumentsAreLeftAlone)
{
    const BenchEnv env = initWith({"omnetpp", "8"});
    EXPECT_FALSE(env.csv);
}

TEST(BenchEnvDeathTest, HelpPrintsUsageAndExitsZero)
{
    EXPECT_EXIT(initWith({"--help"}), ::testing::ExitedWithCode(0),
                "");
    EXPECT_EXIT(initWith({"-h"}), ::testing::ExitedWithCode(0), "");
}

TEST(BenchEnvDeathTest, UnknownFlagFailsWithUsage)
{
    EXPECT_EXIT(initWith({"--not-a-flag"}),
                ::testing::ExitedWithCode(1), "unrecognized flag");
    EXPECT_EXIT(initWith({"--cvs"}), ::testing::ExitedWithCode(1),
                "unrecognized flag");
}

TEST(BenchEnvDeathTest, MalformedValueFailsWithUsage)
{
    EXPECT_EXIT(initWith({"--seed=abc"}), ::testing::ExitedWithCode(1),
                "unsigned integer");
    EXPECT_EXIT(initWith({"--scale=0"}), ::testing::ExitedWithCode(1),
                "--scale must be >= 1");
    // strtoull would happily wrap negatives to 2^64-n; reject them.
    EXPECT_EXIT(initWith({"--seed=-1"}), ::testing::ExitedWithCode(1),
                "unsigned integer");
    EXPECT_EXIT(initWith({"--instr=99999999999999999999999"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
    // --mixes is stored in 32 bits; an out-of-range value must not
    // silently truncate to 0 mixes.
    EXPECT_EXIT(initWith({"--mixes=4294967296"}),
                ::testing::ExitedWithCode(1), "32 bits");
    // The shard knobs keep the same failure behavior: malformed or
    // out-of-range values are usage errors, not silent truncations.
    EXPECT_EXIT(initWith({"--shards=abc"}), ::testing::ExitedWithCode(1),
                "unsigned integer");
    EXPECT_EXIT(initWith({"--shards=2000"}),
                ::testing::ExitedWithCode(1), "must be <= 1024");
    EXPECT_EXIT(initWith({"--threads=-2"}), ::testing::ExitedWithCode(1),
                "unsigned integer");
    EXPECT_EXIT(initWith({"--threads=2000"}),
                ::testing::ExitedWithCode(1), "must be <= 1024");
    // The control-plane frequency knob shares the validation pattern:
    // malformed or negative values are usage errors.
    EXPECT_EXIT(initWith({"--reconfig=abc"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(initWith({"--reconfig=-5"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
}

TEST(BenchEnvDeathTest, EnvVarShardKnobsAreRangeCheckedToo)
{
    // The TALUS_* env path must hit the same range checks as the
    // flags — a negative TALUS_SHARDS must not wrap to 4 billion
    // shards.
    ::setenv("TALUS_SHARDS", "-1", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "TALUS_SHARDS must be >= 0");
    ::unsetenv("TALUS_SHARDS");

    ::setenv("TALUS_THREADS", "2000", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "must be <= 1024");
    // Flags win over env vars, so an explicit --threads sidesteps
    // the out-of-range env value.
    EXPECT_EQ(initWith({"--threads=3"}).threads, 3u);
    ::unsetenv("TALUS_THREADS");

    // TALUS_RECONFIG follows the same rules: negatives are usage
    // errors, valid values land in env.reconfig, flags win.
    ::setenv("TALUS_RECONFIG", "-1", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "TALUS_RECONFIG must be >= 0");
    ::setenv("TALUS_RECONFIG", "12345", 1);
    EXPECT_EQ(initWith({}).reconfig, 12345u);
    EXPECT_EQ(initWith({"--reconfig=99"}).reconfig, 99u);
    ::unsetenv("TALUS_RECONFIG");
}

TEST(BenchEnv, MonitorSampleDefaultsToOne)
{
    // 1 = monitor every access, the exact-curve default. The figure
    // binaries (fig08/09/12/13) consume env.monitorSample directly,
    // so this pins them at period 1 unless the user asks otherwise.
    EXPECT_EQ(initWith({}).monitorSample, 1u);
    EXPECT_FALSE(initWith({}).monitorSampleSet);
}

TEST(BenchEnv, MonitorSampleOrGivesServingBinariesTheirOwnDefault)
{
    // Serving binaries default to sampled monitoring (period 8, the
    // throughput-first setting) via monitorSampleOr(); an explicit
    // --monitor-sample — including =1, the exact-curve opt-out —
    // always wins. Figure binaries read env.monitorSample directly
    // and are untouched by the serving default.
    EXPECT_EQ(kServingMonitorSamplePeriod, 8u);
    const BenchEnv dflt = initWith({});
    EXPECT_EQ(dflt.monitorSampleOr(kServingMonitorSamplePeriod), 8u);
    EXPECT_EQ(dflt.monitorSample, 1u); // The figure-binary view.

    const BenchEnv opt_out = initWith({"--monitor-sample=1"});
    EXPECT_TRUE(opt_out.monitorSampleSet);
    EXPECT_EQ(opt_out.monitorSampleOr(kServingMonitorSamplePeriod),
              1u);

    EXPECT_EQ(initWith({"--monitor-sample=32"})
                  .monitorSampleOr(kServingMonitorSamplePeriod),
              32u);

    // The env-var spelling counts as explicit too.
    ::setenv("TALUS_MONITOR_SAMPLE", "1", 1);
    EXPECT_EQ(initWith({}).monitorSampleOr(kServingMonitorSamplePeriod),
              1u);
    ::unsetenv("TALUS_MONITOR_SAMPLE");
}

TEST(BenchEnv, MonitorSampleFlagAndEnvVar)
{
    EXPECT_EQ(initWith({"--monitor-sample=64"}).monitorSample, 64u);

    ::setenv("TALUS_MONITOR_SAMPLE", "16", 1);
    EXPECT_EQ(initWith({}).monitorSample, 16u);
    // Flags win over env vars, as for every other knob.
    EXPECT_EQ(initWith({"--monitor-sample=4"}).monitorSample, 4u);
    ::unsetenv("TALUS_MONITOR_SAMPLE");
}

TEST(BenchEnvDeathTest, MonitorSampleRejectsZeroAndGarbage)
{
    // Period 0 is meaningless: the floor is 1, not 0 as for the
    // shard knobs.
    EXPECT_EXIT(initWith({"--monitor-sample=0"}),
                ::testing::ExitedWithCode(1), "must be in \\[1,");
    EXPECT_EXIT(initWith({"--monitor-sample=abc"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(initWith({"--monitor-sample=-3"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
    // The period is stored in 32 bits; out-of-range must not
    // silently truncate.
    EXPECT_EXIT(initWith({"--monitor-sample=4294967296"}),
                ::testing::ExitedWithCode(1), "must be in \\[1,");

    // The env path hits the same checks: zero and negatives are
    // usage errors, not wraparounds.
    ::setenv("TALUS_MONITOR_SAMPLE", "0", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "TALUS_MONITOR_SAMPLE must be >= 1");
    ::setenv("TALUS_MONITOR_SAMPLE", "-1", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "TALUS_MONITOR_SAMPLE must be >= 1");
    ::unsetenv("TALUS_MONITOR_SAMPLE");
}

TEST(BenchEnv, PipelineDefaultsOnAndFlagAndEnvToggleIt)
{
    // Pipelined dispatch is the production default; 0 selects the
    // serial scatter-then-wait path for A/B comparison.
    EXPECT_TRUE(initWith({}).pipeline);
    EXPECT_FALSE(initWith({"--pipeline=0"}).pipeline);
    EXPECT_TRUE(initWith({"--pipeline=1"}).pipeline);

    ::setenv("TALUS_PIPELINE", "0", 1);
    EXPECT_FALSE(initWith({}).pipeline);
    // Flags win over env vars, as for every other knob.
    EXPECT_TRUE(initWith({"--pipeline=1"}).pipeline);
    ::unsetenv("TALUS_PIPELINE");
}

TEST(BenchEnvDeathTest, PipelineRejectsNonBooleanValues)
{
    // Validated like the shard knobs: malformed, negative, or
    // out-of-range values are usage errors, not silent truths.
    EXPECT_EXIT(initWith({"--pipeline=2"}),
                ::testing::ExitedWithCode(1), "must be 0 or 1");
    EXPECT_EXIT(initWith({"--pipeline=abc"}),
                ::testing::ExitedWithCode(1), "unsigned integer");
    EXPECT_EXIT(initWith({"--pipeline=-1"}),
                ::testing::ExitedWithCode(1), "unsigned integer");

    // The env path hits the same checks — a negative TALUS_PIPELINE
    // must not wrap into "enabled".
    ::setenv("TALUS_PIPELINE", "-1", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "TALUS_PIPELINE must be 0 or 1");
    ::setenv("TALUS_PIPELINE", "7", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "must be 0 or 1");
    ::unsetenv("TALUS_PIPELINE");
}

/** Writes a small valid binary trace and returns its path. */
std::string
writeValidTrace(const std::string& name)
{
    const std::string path = ::testing::TempDir() + name;
    TraceWriter writer(path);
    for (Addr a = 0; a < 16; ++a)
        writer.append(a * 64);
    writer.close();
    return path;
}

TEST(BenchEnv, TraceDefaultsToEmpty)
{
    EXPECT_TRUE(initWith({}).tracePath.empty());
}

TEST(BenchEnv, TraceFlagAcceptsValidFiles)
{
    // Binary format.
    const std::string bin = writeValidTrace("bench_env_ok.trace");
    EXPECT_EQ(initWith({("--trace=" + bin).c_str()}).tracePath, bin);

    // CSV format, via the same flag (sniffed by content).
    const std::string csv = ::testing::TempDir() + "bench_env_ok.csv";
    {
        CsvTraceWriter writer(csv);
        writer.append(1);
        writer.append(2);
        writer.close();
    }
    EXPECT_EQ(initWith({("--trace=" + csv).c_str()}).tracePath, csv);
}

TEST(BenchEnv, TraceEnvVarProvidesDefaultAndFlagWins)
{
    const std::string env_trace =
        writeValidTrace("bench_env_env.trace");
    const std::string flag_trace =
        writeValidTrace("bench_env_flag.trace");
    ::setenv("TALUS_TRACE", env_trace.c_str(), 1);
    EXPECT_EQ(initWith({}).tracePath, env_trace);
    EXPECT_EQ(initWith({("--trace=" + flag_trace).c_str()}).tracePath,
              flag_trace);
    ::unsetenv("TALUS_TRACE");
}

TEST(BenchEnvDeathTest, TraceFlagValidatesTheFile)
{
    // An empty value is a usage error, like --trace alone would be.
    EXPECT_EXIT(initWith({"--trace="}), ::testing::ExitedWithCode(1),
                "needs a file path");

    // A missing file fails at init, not minutes into a replay.
    EXPECT_EXIT(initWith({"--trace=/nonexistent/no.trace"}),
                ::testing::ExitedWithCode(1), "--trace/TALUS_TRACE");

    // A corrupt binary trace (truncated record region) is rejected
    // with the validator's message.
    const std::string path =
        ::testing::TempDir() + "bench_env_corrupt.trace";
    {
        TraceWriter writer(path);
        for (Addr a = 0; a < 8; ++a)
            writer.append(a);
        writer.close();
    }
    {
        std::FILE* f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        // Claim more records than the file holds.
        ASSERT_EQ(std::fseek(f, 8, SEEK_SET), 0);
        const unsigned char big[8] = {0xFF, 0xFF, 0, 0, 0, 0, 0, 0};
        ASSERT_EQ(std::fwrite(big, 1, 8, f), 8u);
        std::fclose(f);
    }
    EXPECT_EXIT(initWith({("--trace=" + path).c_str()}),
                ::testing::ExitedWithCode(1), "--trace/TALUS_TRACE");
}

TEST(BenchEnvDeathTest, TraceEnvVarIsValidatedToo)
{
    // The TALUS_TRACE path hits the same validation as the flag.
    ::setenv("TALUS_TRACE", "/nonexistent/no.trace", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "--trace/TALUS_TRACE");
    // ...and a valid --trace flag sidesteps the broken env value.
    const std::string good = writeValidTrace("bench_env_good.trace");
    EXPECT_EQ(initWith({("--trace=" + good).c_str()}).tracePath, good);
    ::unsetenv("TALUS_TRACE");
}

TEST(BenchEnv, MetricsDefaultsToOff)
{
    const BenchEnv env = initWith({});
    EXPECT_TRUE(env.metricsPath.empty());
    EXPECT_FALSE(env.metricsWanted());
}

TEST(BenchEnv, MetricsFlagAndEnvVarWithFlagPrecedence)
{
    const std::string flag_path =
        ::testing::TempDir() + "bench_env_flag.prom";
    const std::string env_path =
        ::testing::TempDir() + "bench_env_env.prom";

    const BenchEnv from_flag =
        initWith({("--metrics=" + flag_path).c_str()});
    EXPECT_EQ(from_flag.metricsPath, flag_path);
    EXPECT_TRUE(from_flag.metricsWanted());

    ::setenv("TALUS_METRICS", env_path.c_str(), 1);
    EXPECT_EQ(initWith({}).metricsPath, env_path);
    // Flags win over env vars, as for every other knob.
    EXPECT_EQ(initWith({("--metrics=" + flag_path).c_str()}).metricsPath,
              flag_path);
    ::unsetenv("TALUS_METRICS");
}

TEST(BenchEnvDeathTest, MetricsFlagValidatesWritability)
{
    // An empty value is a usage error, like --trace.
    EXPECT_EXIT(initWith({"--metrics="}), ::testing::ExitedWithCode(1),
                "needs a file path");

    // An unwritable dump path fails at init, not after the run has
    // been paid for — and the message names both spellings.
    EXPECT_EXIT(initWith({"--metrics=/nonexistent-dir/out.prom"}),
                ::testing::ExitedWithCode(1),
                "--metrics/TALUS_METRICS");

    // The env path hits the same check.
    ::setenv("TALUS_METRICS", "/nonexistent-dir/out.prom", 1);
    EXPECT_EXIT(initWith({}), ::testing::ExitedWithCode(1),
                "--metrics/TALUS_METRICS");
    ::unsetenv("TALUS_METRICS");
}

} // namespace
} // namespace talus
