/**
 * @file
 * Tests for the workload generators and the synthetic SPEC suite:
 * determinism, reset/clone semantics, and — crucially — that each
 * generator produces the LRU miss-curve shape it is documented to
 * produce (cliffs for scans, ramps for random, convex tails for
 * Zipf).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cache/fully_assoc_lru.h"
#include "monitor/mattson_curve.h"
#include "monitor/stack_distance.h"
#include "tests/test_util.h"
#include "workload/cyclic_scan.h"
#include "workload/filtered_stream.h"
#include "workload/mix_stream.h"
#include "workload/phase_stream.h"
#include "workload/prefetched_stream.h"
#include "workload/scenarios.h"
#include "workload/spec_suite.h"
#include "workload/stack_dist_stream.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace talus {
namespace {

template <typename Stream>
void
expectDeterministicAndResettable(Stream& s)
{
    auto first = test::collect(s, 1000);
    s.reset();
    auto second = test::collect(s, 1000);
    EXPECT_EQ(first, second);

    auto cloned = s.clone();
    auto third = test::collect(*cloned, 1000);
    EXPECT_EQ(first, third);
}

/**
 * nextBlock's contract: the exact sequence n calls to next() produce.
 * The sims replay exclusively through nextBlock, so an override that
 * drifts from next() would silently change every figure — pin the
 * overriding streams (UniformRandom, ZipfStream) and one default-
 * implementation stream against a fresh clone driven via next().
 */
template <typename Stream>
void
expectBlockMatchesSerial(Stream& s)
{
    auto serial = s.clone();
    std::vector<Addr> expect;
    for (int i = 0; i < 3000; ++i)
        expect.push_back(serial->next());

    // Uneven block sizes so block boundaries land mid-sequence.
    std::vector<Addr> got(3000);
    uint64_t off = 0;
    for (uint64_t n : {1ull, 7ull, 256ull, 1000ull, 1736ull}) {
        s.nextBlock(got.data() + off, n);
        off += n;
    }
    EXPECT_EQ(got, expect);
}

TEST(UniformRandom, NextBlockMatchesNext)
{
    UniformRandom s(1000, 2, 99);
    expectBlockMatchesSerial(s);
}

TEST(Zipf, NextBlockMatchesNext)
{
    ZipfStream pow2(1024, 0.8, 1, 7);
    expectBlockMatchesSerial(pow2);
    ZipfStream odd(1000, 0.8, 1, 7); // Non-pow2: no rank scramble.
    expectBlockMatchesSerial(odd);
}

TEST(Mix, NextBlockMatchesNext)
{
    // MixStream inherits the default nextBlock; covers the base-class
    // loop (and, transitively, its component streams).
    std::vector<MixStream::Component> parts;
    parts.push_back({std::make_unique<UniformRandom>(500, 1, 3), 0.5});
    parts.push_back({std::make_unique<ZipfStream>(512, 0.8, 2, 5), 0.5});
    MixStream s(std::move(parts), 11);
    expectBlockMatchesSerial(s);
}

TEST(CyclicScan, DeterministicResetClone)
{
    CyclicScan s(100, 1);
    expectDeterministicAndResettable(s);
}

TEST(CyclicScan, VisitsAllLinesInOrder)
{
    CyclicScan s(5);
    std::vector<Addr> expect{0, 1, 2, 3, 4, 0, 1};
    for (Addr e : expect)
        EXPECT_EQ(s.next(), e);
}

TEST(CyclicScan, LruCliffAtWorkingSet)
{
    // The defining property: zero hits below W, all hits at >= W.
    const uint64_t w = 128;
    CyclicScan s(w);
    FullyAssocLru small(w - 1), fit(w);
    for (uint64_t i = 0; i < w * 20; ++i) {
        const Addr a = s.next();
        small.access(a);
        fit.access(a);
    }
    EXPECT_EQ(small.hits(), 0u);
    EXPECT_EQ(fit.hits(), fit.accesses() - w);
}

TEST(UniformRandom, DeterministicResetClone)
{
    UniformRandom s(1000, 2, 99);
    expectDeterministicAndResettable(s);
}

TEST(UniformRandom, StaysInWorkingSetAndCoversIt)
{
    UniformRandom s(64, 0, 7);
    std::set<Addr> seen;
    for (int i = 0; i < 10000; ++i) {
        const Addr a = s.next();
        EXPECT_LT(a, 64u);
        seen.insert(a);
    }
    EXPECT_EQ(seen.size(), 64u);
}

TEST(UniformRandom, LruMissRatioLinearInSize)
{
    // Hit rate at size s is ~ s/W for uniform random accesses.
    const uint64_t w = 512;
    for (double frac : {0.25, 0.5, 0.75}) {
        UniformRandom s(w, 0, 21);
        FullyAssocLru cache(static_cast<uint64_t>(frac * w));
        for (int i = 0; i < 200000; ++i)
            cache.access(s.next());
        const double hit_rate = static_cast<double>(cache.hits()) /
                                static_cast<double>(cache.accesses());
        EXPECT_NEAR(hit_rate, frac, 0.05) << "frac=" << frac;
    }
}

TEST(Zipf, DeterministicResetClone)
{
    ZipfStream s(500, 0.8, 1, 5);
    expectDeterministicAndResettable(s);
}

TEST(Zipf, SkewMeansHotItemsDominate)
{
    ZipfStream s(1024, 1.0, 0, 3);
    std::map<Addr, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[s.next()]++;
    // The hottest line should get far more than uniform share.
    int max_count = 0;
    for (const auto& [addr, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 20 * n / 1024);
}

TEST(Zipf, ConvexLruMissCurve)
{
    ZipfStream s(2048, 0.9, 0, 9);
    MattsonCurve mattson(2048);
    for (int i = 0; i < 400000; ++i)
        mattson.access(s.next());
    const MissCurve curve = mattson.curve(256);
    EXPECT_TRUE(curve.isNonIncreasing(0.01));
    EXPECT_TRUE(curve.isConvex(0.05));
}

TEST(StackDist, MatchesRequestedProfile)
{
    // Ask for 60% of accesses at distance 10, 40% cold; verify the
    // measured stack distances reproduce it.
    StackDistStream s({{10, 0.6}}, 0.4, 0, 13);
    StackDistanceCounter counter;
    uint64_t at_ten = 0, cold = 0, n = 50000;
    for (uint64_t i = 0; i < n; ++i) {
        const uint64_t d = counter.access(s.next());
        if (d == StackDistanceCounter::kCold)
            cold++;
        else if (d == 10)
            at_ten++;
    }
    EXPECT_NEAR(static_cast<double>(at_ten) / n, 0.6, 0.05);
    EXPECT_NEAR(static_cast<double>(cold) / n, 0.4, 0.05);
}

TEST(StackDist, DeterministicResetClone)
{
    StackDistStream s({{4, 0.5}, {16, 0.2}}, 0.3, 0, 17);
    expectDeterministicAndResettable(s);
}

TEST(Mix, WeightsRespected)
{
    // Two disjoint address spaces; component weights 3:1.
    std::vector<MixStream::Component> comps;
    comps.push_back({std::make_unique<CyclicScan>(100, 1), 3.0});
    comps.push_back({std::make_unique<CyclicScan>(100, 2), 1.0});
    MixStream mix(std::move(comps), 23);
    uint64_t first = 0, n = 40000;
    for (uint64_t i = 0; i < n; ++i)
        first += (mix.next() >> kAddrSpaceShift) == 1;
    EXPECT_NEAR(static_cast<double>(first) / n, 0.75, 0.02);
}

TEST(Mix, DeterministicResetClone)
{
    std::vector<MixStream::Component> comps;
    comps.push_back({std::make_unique<UniformRandom>(50, 1, 3), 1.0});
    comps.push_back({std::make_unique<ZipfStream>(50, 0.8, 2, 4), 1.0});
    MixStream mix(std::move(comps), 29);
    expectDeterministicAndResettable(mix);
}

// ----------------------------------------------------------- AppSpec

TEST(Filtered, ScanPassesThroughSmallFilter)
{
    // A cyclic scan thrashes a too-small private LRU filter, so
    // nearly every access misses there and reaches the LLC stream.
    FilteredStream s(std::make_unique<CyclicScan>(1024), 64);
    for (int i = 0; i < 4096; ++i)
        s.next();
    EXPECT_GT(s.passRatio(), 0.95);
}

TEST(Filtered, AbsorbsTemporalLocality)
{
    // Uniform random over 512 lines against a 256-line filter: about
    // half the accesses hit the private cache and are filtered out.
    FilteredStream s(std::make_unique<UniformRandom>(512, 0, 5), 256);
    for (int i = 0; i < 20000; ++i)
        s.next();
    EXPECT_LT(s.passRatio(), 0.7);
    EXPECT_GT(s.passRatio(), 0.3);
}

TEST(Filtered, DeterministicResetClone)
{
    FilteredStream s(std::make_unique<UniformRandom>(512, 1, 42), 128);
    expectDeterministicAndResettable(s);
}

TEST(Prefetched, SequentialStreamTriggersPrefetches)
{
    PrefetchedStream s(std::make_unique<CyclicScan>(4096));
    for (int i = 0; i < 10000; ++i)
        s.next();
    EXPECT_GT(s.prefetchesIssued(), 0u);
}

TEST(Prefetched, RandomStreamRarelyTriggers)
{
    // No sequential streams to train on: far fewer prefetches than
    // the scan case relative to demand accesses.
    PrefetchedStream s(std::make_unique<UniformRandom>(1 << 20, 0, 9));
    for (int i = 0; i < 10000; ++i)
        s.next();
    EXPECT_LT(s.prefetchesIssued(), 1000u);
}

TEST(Prefetched, DeterministicResetClone)
{
    PrefetchedStream s(std::make_unique<CyclicScan>(512));
    expectDeterministicAndResettable(s);
}

TEST(AppSpec, ComponentsUseDisjointSubspaces)
{
    const AppSpec& app = findApp("omnetpp"); // scan + zipf.
    auto stream = app.buildStream(128, 1, 5);
    std::set<uint64_t> spaces;
    for (int i = 0; i < 10000; ++i)
        spaces.insert(stream->next() >> kAddrSpaceShift);
    EXPECT_GE(spaces.size(), 2u);
}

TEST(AppSpec, FootprintIsLargestComponent)
{
    EXPECT_DOUBLE_EQ(findApp("libquantum").footprintMb(), 32.0);
    EXPECT_DOUBLE_EQ(findApp("omnetpp").footprintMb(), 8.0);
}

TEST(AppSpec, InstrPerAccessFromApki)
{
    EXPECT_NEAR(findApp("libquantum").instrPerAccess(), 1000.0 / 33.0,
                1e-9);
}

TEST(SpecSuite, HasAllDocumentedApps)
{
    const auto names = allAppNames();
    EXPECT_GE(names.size(), 22u);
    for (const char* required :
         {"libquantum", "omnetpp", "xalancbmk", "mcf", "perlbench",
          "cactusADM", "lbm", "GemsFDTD", "gobmk", "povray", "tonto"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), required),
                  names.end())
            << required;
    }
}

TEST(SpecSuite, MemIntensivePoolHas18UniqueApps)
{
    const auto pool = memIntensiveAppNames();
    EXPECT_EQ(pool.size(), 18u);
    std::set<std::string> unique(pool.begin(), pool.end());
    EXPECT_EQ(unique.size(), 18u);
    for (const std::string& name : pool)
        EXPECT_NO_FATAL_FAILURE(findApp(name));
}

TEST(SpecSuite, LibquantumHasTheFig1Cliff)
{
    // LRU on libquantum (scaled): flat high MPKI below the 32MB
    // cliff, near zero above it. Use a tiny scale for test speed.
    const uint64_t lines_per_mb = 16; // 32MB -> 512 lines.
    const AppSpec& app = findApp("libquantum");
    auto stream = app.buildStream(lines_per_mb, 0, 7);

    MattsonCurve mattson(1024);
    for (int i = 0; i < 200000; ++i)
        mattson.access(stream->next());
    const MissCurve curve = mattson.curve(64);
    EXPECT_GT(curve.at(256), 0.9); // Plateau at ~full miss ratio.
    EXPECT_GT(curve.at(448), 0.9);
    EXPECT_LT(curve.at(576), 0.1); // Past the cliff.
}

TEST(SpecSuite, OmnetppCliffAtTwoMb)
{
    // The 2MB scan (128 lines at this scale) creates a cliff. In the
    // mixed stream the scan's effective LRU stack distance is its
    // working set plus the zipf lines touched per lap, so the drop
    // sits a bit beyond 128 lines — bracket it generously.
    const uint64_t lines_per_mb = 64; // 2MB -> 128 lines.
    const AppSpec& app = findApp("omnetpp");
    auto stream = app.buildStream(lines_per_mb, 0, 9);
    MattsonCurve mattson(1024);
    for (int i = 0; i < 300000; ++i)
        mattson.access(stream->next());
    const MissCurve curve = mattson.curve(32);
    const double before = curve.at(64);
    const double after = curve.at(384);
    EXPECT_GT(before - after, 0.3);
    EXPECT_FALSE(curve.isConvex(0.001)); // The cliff is visible.
}

TEST(SpecSuite, BuildsEveryAppStream)
{
    for (const AppSpec& app : specSuite()) {
        auto stream = app.buildStream(32, 3, 11);
        ASSERT_NE(stream, nullptr) << app.name;
        for (int i = 0; i < 1000; ++i)
            stream->next();
    }
}

// ------------------------------------------------------- PhaseStream

/** A 3-phase composition with short phases for boundary tests. */
std::unique_ptr<PhaseStream>
smallPhaseStream()
{
    std::vector<PhaseStream::Phase> phases;
    phases.push_back(
        {"a", std::make_unique<CyclicScan>(16, 0), 100});
    phases.push_back(
        {"b", std::make_unique<UniformRandom>(64, 1, 7), 50});
    phases.push_back(
        {"c", std::make_unique<ZipfStream>(128, 0.9, 2, 9), 75});
    return std::make_unique<PhaseStream>(std::move(phases));
}

TEST(PhaseStream, DeterministicAndResettable)
{
    auto s = smallPhaseStream();
    expectDeterministicAndResettable(*s);
}

TEST(PhaseStream, NextBlockMatchesNext)
{
    // 3000 accesses cross every phase boundary many times (lap = 225).
    auto s = smallPhaseStream();
    expectBlockMatchesSerial(*s);
}

TEST(PhaseStream, ScheduleAccounting)
{
    auto s = smallPhaseStream();
    EXPECT_EQ(s->numPhases(), 3u);
    EXPECT_EQ(s->scheduleAccesses(), 225u);
    EXPECT_EQ(s->phaseLabel(1), "b");
    EXPECT_EQ(s->phaseAccesses(2), 75u);

    // phaseAt maps an absolute access number into the cycle.
    EXPECT_EQ(s->phaseAt(0), 0u);
    EXPECT_EQ(s->phaseAt(99), 0u);
    EXPECT_EQ(s->phaseAt(100), 1u);
    EXPECT_EQ(s->phaseAt(149), 1u);
    EXPECT_EQ(s->phaseAt(150), 2u);
    EXPECT_EQ(s->phaseAt(225), 0u); // Second lap.
    EXPECT_EQ(s->phaseAt(225 + 160), 2u);

    // currentPhase advances with consumption.
    EXPECT_EQ(s->currentPhase(), 0u);
    test::collect(*s, 100);
    EXPECT_EQ(s->currentPhase(), 1u);
    test::collect(*s, 125);
    EXPECT_EQ(s->currentPhase(), 0u); // Wrapped to the next lap.
}

TEST(PhaseStream, PhaseBoundariesSwitchAddressSpaces)
{
    // Each child above lives in its own address space, so the serving
    // phase is directly observable on the produced addresses.
    auto s = smallPhaseStream();
    const auto trace = test::collect(*s, 225);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(trace[i] >> kAddrSpaceShift, 0u) << i;
    for (int i = 100; i < 150; ++i)
        EXPECT_EQ(trace[i] >> kAddrSpaceShift, 1u) << i;
    for (int i = 150; i < 225; ++i)
        EXPECT_EQ(trace[i] >> kAddrSpaceShift, 2u) << i;
}

TEST(PhaseStream, ChildrenContinueAcrossLaps)
{
    // A returning phase resumes its child where it left off (no reset
    // between laps): the scan child must continue its sweep, not
    // restart from line 0.
    std::vector<PhaseStream::Phase> phases;
    phases.push_back({"scan", std::make_unique<CyclicScan>(64, 0), 10});
    phases.push_back(
        {"other", std::make_unique<UniformRandom>(8, 1, 3), 5});
    PhaseStream s(std::move(phases));

    const auto lap1 = test::collect(s, 15);
    const auto lap2 = test::collect(s, 15);
    // Second lap's scan continues at line 10.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(lap2[i], static_cast<Addr>(10 + i)) << i;
}

// -------------------------------------------------- scenario factories

TEST(Scenarios, AllFactoriesAreDeterministicAndResettable)
{
    DiurnalSpec d;
    d.dayLines = 512;
    d.nightLines = 64;
    auto diurnal = makeDiurnalStream(d);
    expectDeterministicAndResettable(*diurnal);

    FlashCrowdSpec f;
    f.baseLines = 512;
    auto crowd = makeFlashCrowdStream(f);
    expectDeterministicAndResettable(*crowd);

    ScanStormSpec s;
    s.baseLines = 256;
    s.scanLines = 512;
    auto storm = makeScanStormStream(s);
    expectDeterministicAndResettable(*storm);

    TenantChurnSpec t;
    t.tenantLines = 256;
    auto churn = makeTenantChurnStream(t);
    expectDeterministicAndResettable(*churn);
}

TEST(Scenarios, AllFactoriesNextBlockMatchesNext)
{
    DiurnalSpec d;
    d.dayLines = 512;
    d.nightLines = 64;
    d.phaseAccesses = 700; // Short phases: boundaries land mid-block.
    auto diurnal = makeDiurnalStream(d);
    expectBlockMatchesSerial(*diurnal);

    FlashCrowdSpec f;
    f.baseLines = 512;
    f.quietAccesses = 600;
    f.crowdAccesses = 400;
    auto crowd = makeFlashCrowdStream(f);
    expectBlockMatchesSerial(*crowd);

    ScanStormSpec s;
    s.baseLines = 256;
    s.scanLines = 512;
    s.calmAccesses = 500;
    s.stormAccesses = 300;
    auto storm = makeScanStormStream(s);
    expectBlockMatchesSerial(*storm);

    TenantChurnSpec t;
    t.tenantLines = 256;
    t.phaseAccesses = 450;
    auto churn = makeTenantChurnStream(t);
    expectBlockMatchesSerial(*churn);
}

TEST(Scenarios, SeedsChangeTheStream)
{
    ScanStormSpec a, b;
    a.baseLines = b.baseLines = 256;
    a.scanLines = b.scanLines = 512;
    b.seed = a.seed + 1;
    auto sa = makeScanStormStream(a);
    auto sb = makeScanStormStream(b);
    EXPECT_NE(test::collect(*sa, 2000), test::collect(*sb, 2000));
}

TEST(Scenarios, PhaseLabelsTellTheStory)
{
    DiurnalSpec d;
    auto diurnal = makeDiurnalStream(d);
    ASSERT_EQ(diurnal->numPhases(), 2u);
    EXPECT_EQ(diurnal->phaseLabel(0), "day");
    EXPECT_EQ(diurnal->phaseLabel(1), "night");

    FlashCrowdSpec f;
    auto crowd = makeFlashCrowdStream(f);
    ASSERT_EQ(crowd->numPhases(), 3u);
    EXPECT_EQ(crowd->phaseLabel(1), "crowd");

    ScanStormSpec s;
    auto storm = makeScanStormStream(s);
    ASSERT_EQ(storm->numPhases(), 3u);
    EXPECT_EQ(storm->phaseLabel(1), "storm");

    TenantChurnSpec t;
    auto churn = makeTenantChurnStream(t);
    ASSERT_EQ(churn->numPhases(), 3u);
    EXPECT_EQ(churn->phaseLabel(0), "tenants-AB");
}

} // namespace
} // namespace talus
