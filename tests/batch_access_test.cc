/**
 * @file
 * TalusCache::accessBatch must be bit-exact with the serial access()
 * loop: same hits, same monitor state, same automatic reconfiguration
 * points (even when an interval boundary lands mid-batch), and the
 * same final configuration — batching is purely a dispatch-hoisting
 * optimization, never a behavioral knob.
 */

#include <gtest/gtest.h>

#include <vector>

#include "api/talus.h"
#include "util/rng.h"

namespace talus {
namespace {

std::vector<Addr>
randomAddrs(uint64_t n, uint64_t working_set, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs(n);
    for (Addr& a : addrs)
        a = rng.below(working_set);
    return addrs;
}

/** Drives one cache serially, one batched, and diffs every stat. */
void
expectBatchMatchesSerial(const TalusCache::Config& cfg,
                         const std::vector<Addr>& addrs,
                         size_t batch_size)
{
    TalusCache serial(cfg);
    TalusCache batched(cfg);

    uint64_t serial_hits = 0;
    for (Addr a : addrs)
        serial_hits += serial.access(a, 0);

    uint64_t batched_hits = 0;
    for (size_t off = 0; off < addrs.size(); off += batch_size) {
        const size_t n = std::min(batch_size, addrs.size() - off);
        batched_hits += batched.accessBatch(
            Span<const Addr>(addrs.data() + off, n), 0);
    }

    EXPECT_EQ(batched_hits, serial_hits);
    EXPECT_EQ(batched.reconfigurations(), serial.reconfigurations());
    EXPECT_DOUBLE_EQ(batched.missRatio(), serial.missRatio());

    const TalusCache::PartStats bs = batched.stats(0);
    const TalusCache::PartStats ss = serial.stats(0);
    EXPECT_EQ(bs.accesses, ss.accesses);
    EXPECT_EQ(bs.misses, ss.misses);
    EXPECT_EQ(bs.targetLines, ss.targetLines);
    EXPECT_DOUBLE_EQ(bs.rho, ss.rho);

    if (cfg.monitoring) {
        const MissCurve bc = batched.curve(0);
        const MissCurve sc = serial.curve(0);
        ASSERT_EQ(bc.points().size(), sc.points().size());
        for (size_t i = 0; i < bc.points().size(); ++i) {
            EXPECT_DOUBLE_EQ(bc.points()[i].size, sc.points()[i].size);
            EXPECT_DOUBLE_EQ(bc.points()[i].misses,
                             sc.points()[i].misses);
        }
    }
}

TEST(BatchAccess, MatchesSerialWithoutReconfiguration)
{
    TalusCache::Config cfg;
    cfg.llcLines = 4096;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "";
    cfg.seed = 5;
    expectBatchMatchesSerial(cfg, randomAddrs(60'000, 8192, 41), 1000);
}

TEST(BatchAccess, MatchesSerialAcrossAutoReconfigBoundaries)
{
    // reconfigInterval deliberately not a divisor of the batch size,
    // so automatic reconfigurations fire mid-batch; the batched path
    // must split at exactly the same access counts.
    TalusCache::Config cfg;
    cfg.llcLines = 4096;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 7'777;
    cfg.seed = 5;
    expectBatchMatchesSerial(cfg, randomAddrs(60'000, 8192, 43), 4096);
}

TEST(BatchAccess, MatchesSerialForPlainPartitionedBaseline)
{
    TalusCache::Config cfg;
    cfg.llcLines = 4096;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.talus = false;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 9'999;
    cfg.seed = 7;
    expectBatchMatchesSerial(cfg, randomAddrs(40'000, 8192, 47), 512);
}

TEST(BatchAccess, OddBatchSizesAndEmptySpansAreSafe)
{
    TalusCache::Config cfg;
    cfg.llcLines = 1024;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "";
    TalusCache cache(cfg);

    EXPECT_EQ(cache.accessBatch(Span<const Addr>(), 0), 0u);
    expectBatchMatchesSerial(cfg, randomAddrs(10'000, 2048, 53), 1);
    expectBatchMatchesSerial(cfg, randomAddrs(10'000, 2048, 59), 3);
}

/** Addresses where odd entries collide with their predecessor in the
 *  32-bit tag fingerprint (low32 ^ high32) while remaining distinct
 *  tags: flipping bit 0 and bit 32 together preserves the fold. */
std::vector<Addr>
fingerprintCollidingAddrs(uint64_t n, uint64_t working_set,
                          uint64_t seed)
{
    std::vector<Addr> addrs = randomAddrs(n, working_set, seed);
    for (size_t i = 1; i < addrs.size(); i += 2)
        addrs[i] = addrs[i - 1] ^ 0x1'0000'0001ull;
    return addrs;
}

TEST(BatchAccess, FingerprintProbeMatchesFullTagProbeInLockstep)
{
    // The single-access fast path resolves hits through the set
    // layout's 32-bit fingerprint mirror before verifying the full
    // tag; the batched fused kernel still probes full 64-bit tags —
    // the pre-SoA probe. Driving both one address at a time pins the
    // fingerprint layout to the full-tag probe result at every single
    // access, not just in aggregate — on a trace engineered so half
    // the addresses share a fingerprint with a distinct neighbor tag
    // (a collision may cost a verify, never a different answer).
    TalusCache::Config cfg;
    cfg.llcLines = 1024;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "";
    cfg.seed = 13;

    TalusCache fp_path(cfg);   // access(): fingerprint probe.
    TalusCache full_path(cfg); // accessBatch: full-tag probe.
    const std::vector<Addr> addrs =
        fingerprintCollidingAddrs(30'000, 2048, 71);
    for (size_t i = 0; i < addrs.size(); ++i) {
        const bool hit = fp_path.access(addrs[i], 0);
        const uint64_t batch_hit = full_path.accessBatch(
            Span<const Addr>(&addrs[i], 1), 0);
        ASSERT_EQ(batch_hit, hit ? 1u : 0u)
            << "probe divergence at access " << i << " (addr 0x"
            << std::hex << addrs[i] << ")";
    }
    EXPECT_EQ(fp_path.stats(0).misses, full_path.stats(0).misses);
}

TEST(BatchAccess, FingerprintCollisionsNeverChangeBatchResults)
{
    // The same collision-heavy trace through the standard
    // serial-vs-batched diff, with auto-reconfig boundaries landing
    // mid-batch: monitors, curves, and reconfiguration points must
    // all survive constant fingerprint-verify rejections.
    TalusCache::Config cfg;
    cfg.llcLines = 4096;
    cfg.ways = 16;
    cfg.numParts = 1;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 7'777;
    cfg.seed = 13;
    expectBatchMatchesSerial(
        cfg, fingerprintCollidingAddrs(60'000, 8192, 73), 4096);
}

TEST(BatchAccess, MultiplePartitionsInterleaved)
{
    // Batches alternate between logical partitions; totals must match
    // the serially interleaved run access-for-access.
    TalusCache::Config cfg;
    cfg.llcLines = 8192;
    cfg.ways = 32;
    cfg.numParts = 2;
    cfg.allocatorName = "HillClimb";
    cfg.reconfigInterval = 5'001;
    cfg.seed = 11;

    const std::vector<Addr> a0 = randomAddrs(30'000, 4096, 61);
    std::vector<Addr> a1 = randomAddrs(30'000, 4096, 67);
    for (Addr& a : a1)
        a += 1ull << 40;

    TalusCache serial(cfg);
    TalusCache batched(cfg);
    constexpr size_t kChunk = 750;
    uint64_t serial_hits = 0;
    uint64_t batched_hits = 0;
    for (size_t off = 0; off < a0.size(); off += kChunk) {
        for (size_t i = off; i < off + kChunk; ++i)
            serial_hits += serial.access(a0[i], 0);
        for (size_t i = off; i < off + kChunk; ++i)
            serial_hits += serial.access(a1[i], 1);
        batched_hits += batched.accessBatch(
            Span<const Addr>(a0.data() + off, kChunk), 0);
        batched_hits += batched.accessBatch(
            Span<const Addr>(a1.data() + off, kChunk), 1);
    }

    EXPECT_EQ(batched_hits, serial_hits);
    EXPECT_EQ(batched.reconfigurations(), serial.reconfigurations());
    for (PartId p = 0; p < 2; ++p) {
        EXPECT_EQ(batched.stats(p).misses, serial.stats(p).misses);
        EXPECT_EQ(batched.stats(p).targetLines,
                  serial.stats(p).targetLines);
    }
}

} // namespace
} // namespace talus
