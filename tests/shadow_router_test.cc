/**
 * @file
 * Tests for the ShadowRouter (H3 + limit register sampling function).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/shadow_router.h"

namespace talus {
namespace {

TEST(ShadowRouter, RhoOneRoutesEverythingToAlpha)
{
    ShadowRouter router(8, 1);
    router.setRho(1.0);
    for (Addr a = 0; a < 10000; ++a)
        EXPECT_TRUE(router.toAlpha(a));
}

TEST(ShadowRouter, RhoZeroRoutesEverythingToBeta)
{
    ShadowRouter router(8, 2);
    router.setRho(0.0);
    for (Addr a = 0; a < 10000; ++a)
        EXPECT_FALSE(router.toAlpha(a));
}

TEST(ShadowRouter, RoutedFractionTracksRho)
{
    for (double rho : {0.1, 0.25, 0.333, 0.5, 0.75, 0.9}) {
        ShadowRouter router(8, 3);
        router.setRho(rho);
        uint64_t to_alpha = 0;
        const uint64_t n = 100000;
        for (Addr a = 0; a < n; ++a)
            to_alpha += router.toAlpha(a);
        EXPECT_NEAR(static_cast<double>(to_alpha) / n,
                    router.effectiveRho(), 0.02)
            << "rho=" << rho;
    }
}

TEST(ShadowRouter, QuantizationBoundedByHalfStep)
{
    // 8-bit limit register: effective rho within 1/512 of requested.
    ShadowRouter router(8, 4);
    for (double rho = 0.0; rho <= 1.0; rho += 0.01)
    {
        router.setRho(rho);
        EXPECT_NEAR(router.effectiveRho(), rho, 1.0 / 512.0 + 1e-12);
    }
}

TEST(ShadowRouter, WiderLimitReducesQuantization)
{
    ShadowRouter narrow(4, 5), wide(16, 5);
    narrow.setRho(0.3);
    wide.setRho(0.3);
    EXPECT_LE(std::abs(wide.effectiveRho() - 0.3),
              std::abs(narrow.effectiveRho() - 0.3) + 1e-12);
}

TEST(ShadowRouter, EffectiveRhoIsQuantizedToLimitRegister)
{
    ShadowRouter router(8);
    router.setRho(0.3);
    // round(0.3 * 256) = 77: the limit register quantizes rho.
    EXPECT_EQ(router.limit(), 77u);
    EXPECT_DOUBLE_EQ(router.effectiveRho(), 77.0 / 256.0);
}

TEST(ShadowRouter, OutOfRangeRhoClampsToLimitRegisterRange)
{
    // Upstream sizing math can overshoot [0,1] by rounding; the limit
    // register saturates instead of faulting.
    ShadowRouter router(8);
    router.setRho(1.5);
    EXPECT_DOUBLE_EQ(router.effectiveRho(), 1.0);
    router.setRho(-0.1);
    EXPECT_DOUBLE_EQ(router.effectiveRho(), 0.0);
    router.setRho(1e12);
    EXPECT_DOUBLE_EQ(router.effectiveRho(), 1.0);
}

TEST(ShadowRouterDeathTest, NaNRhoIsFatal)
{
    ShadowRouter router(8);
    EXPECT_DEATH(router.setRho(std::nan("")), "NaN");
}

TEST(ShadowRouter, RoutingIsStablePerAddress)
{
    // The same address must always route the same way for a fixed
    // configuration — otherwise lines would be duplicated across
    // shadow partitions.
    ShadowRouter router(8, 6);
    router.setRho(0.4);
    for (Addr a = 0; a < 1000; ++a) {
        const bool first = router.toAlpha(a);
        for (int i = 0; i < 5; ++i)
            EXPECT_EQ(router.toAlpha(a), first);
    }
}

TEST(ShadowRouter, SeedsGiveIndependentFunctions)
{
    ShadowRouter a(8, 100), b(8, 200);
    a.setRho(0.5);
    b.setRho(0.5);
    uint64_t agree = 0;
    const uint64_t n = 10000;
    for (Addr x = 0; x < n; ++x)
        agree += (a.toAlpha(x) == b.toAlpha(x));
    // Independent 50/50 functions agree about half the time.
    EXPECT_NEAR(static_cast<double>(agree) / n, 0.5, 0.05);
}

} // namespace
} // namespace talus
