/**
 * @file
 * ShardRouter: seeded, deterministic address -> shard mapping.
 *
 * A serving deployment scales Talus horizontally by hash-partitioning
 * the key space into independent shards, each running its own
 * self-managing TalusCache (the paper's cheap-deployability pitch,
 * Fig. 7, applied per shard). The router is the only piece the shards
 * share, so it must be stateless, seeded, and bit-stable: the same
 * (seed, numShards) must route the same address to the same shard on
 * every run, which is what makes sharded execution reproducible and
 * lets tests replay one shard's sub-stream through a stand-alone
 * TalusCache.
 *
 * Routing reuses the H3 family (util/h3_hash.h) that Talus already
 * specifies for its sampling hardware: a full-width 32-bit H3 hash is
 * reduced to [0, numShards) with a multiply-shift, so shard counts
 * need not be powers of two and no modulo sits on the hot path.
 */

#ifndef TALUS_SHARD_SHARD_ROUTER_H
#define TALUS_SHARD_SHARD_ROUTER_H

#include <cstdint>
#include <vector>

#include "util/h3_hash.h"
#include "util/span.h"
#include "util/types.h"

namespace talus {

/** Deterministic H3-based address -> shard mapping. */
class ShardRouter
{
  public:
    /**
     * Builds a router over @p num_shards shards.
     *
     * @param num_shards Number of shards (>= 1).
     * @param seed Seed for the H3 masks; same seed, same mapping.
     */
    explicit ShardRouter(uint32_t num_shards, uint64_t seed = 0x5A4D);

    /** The shard @p addr belongs to, in [0, numShards()). */
    uint32_t route(Addr addr) const
    {
        if (numShards_ == 1)
            return 0;
        // Multiply-shift reduction of the 32-bit H3 output: cheaper
        // than modulo and works for any shard count.
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(hash_.hash(addr)) * numShards_) >>
            32);
    }

    /**
     * Splits @p addrs into per-shard buffers, preserving the original
     * order within each shard — shard s receives exactly the
     * sub-stream of addresses that route(addr) == s, in stream order.
     * Reuses @p per_shard's element capacity across calls; the outer
     * vector is resized to numShards().
     */
    void scatter(Span<const Addr> addrs,
                 std::vector<std::vector<Addr>>& per_shard) const;

    /** Convenience allocating form of scatter(). */
    std::vector<std::vector<Addr>> scatter(Span<const Addr> addrs) const;

    /** Number of shards routed across. */
    uint32_t numShards() const { return numShards_; }

    /** The seed the H3 masks were built from. */
    uint64_t seed() const { return seed_; }

  private:
    uint32_t numShards_;
    uint64_t seed_;
    H3Hash hash_; //!< 32 output bits; reduced by multiply-shift.
};

} // namespace talus

#endif // TALUS_SHARD_SHARD_ROUTER_H
