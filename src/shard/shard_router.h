/**
 * @file
 * ShardRouter: seeded, deterministic address -> shard mapping.
 *
 * A serving deployment scales Talus horizontally by hash-partitioning
 * the key space into independent shards, each running its own
 * self-managing TalusCache (the paper's cheap-deployability pitch,
 * Fig. 7, applied per shard). The router is the only piece the shards
 * share, so it must be stateless, seeded, and bit-stable: the same
 * (seed, numShards) must route the same address to the same shard on
 * every run, which is what makes sharded execution reproducible and
 * lets tests replay one shard's sub-stream through a stand-alone
 * TalusCache.
 *
 * Routing reuses the H3 family (util/h3_hash.h) that Talus already
 * specifies for its sampling hardware: a full-width 32-bit H3 hash is
 * reduced to [0, numShards) with a multiply-shift, so shard counts
 * need not be powers of two and no modulo sits on the hot path.
 */

#ifndef TALUS_SHARD_SHARD_ROUTER_H
#define TALUS_SHARD_SHARD_ROUTER_H

#include <cstdint>
#include <vector>

#include "util/h3_hash.h"
#include "util/span.h"
#include "util/types.h"

namespace talus {

/**
 * Reusable output of a flat count-then-offset scatter: every
 * sub-stream lives in ONE contiguous buffer, grouped by shard, with a
 * prefix-sum offset table — no nested vector-of-vectors, so a batch
 * in the steady state allocates nothing (all buffers only ever grow)
 * and shard sub-streams are handed to workers as (pointer, count)
 * views into the flat buffer.
 */
class ScatterPlan
{
  public:
    /** Shards the last scatter was split across. */
    uint32_t numShards() const
    {
        return static_cast<uint32_t>(counts_.size());
    }

    /** Addresses routed to @p shard in the last scatter. */
    uint64_t count(uint32_t shard) const { return counts_[shard]; }

    /** Base of @p shard's sub-stream (stream order preserved). */
    const Addr* shardData(uint32_t shard) const
    {
        return buf_.data() + offsets_[shard];
    }

    /** @p shard's sub-stream as a span. */
    Span<const Addr> shardSpan(uint32_t shard) const
    {
        return Span<const Addr>(shardData(shard), count(shard));
    }

    /** Total addresses in the last scatter. */
    uint64_t total() const { return buf_.size(); }

  private:
    friend class ShardRouter;

    std::vector<Addr> buf_;         //!< All addresses, grouped by shard.
    std::vector<uint64_t> counts_;  //!< [shard] sub-stream length.
    std::vector<uint64_t> offsets_; //!< [shard] start index into buf_.
    std::vector<uint64_t> cursors_; //!< Pass-2 write cursors.
    std::vector<uint32_t> routes_;  //!< [i] cached route of addrs[i],
                                    //!< so pass 2 never re-hashes.
};

/** Deterministic H3-based address -> shard mapping. */
class ShardRouter
{
  public:
    /**
     * Builds a router over @p num_shards shards.
     *
     * @param num_shards Number of shards (>= 1).
     * @param seed Seed for the H3 masks; same seed, same mapping.
     */
    explicit ShardRouter(uint32_t num_shards, uint64_t seed = 0x5A4D);

    /** The shard @p addr belongs to, in [0, numShards()). */
    uint32_t route(Addr addr) const
    {
        if (numShards_ == 1)
            return 0;
        // Multiply-shift reduction of the 32-bit H3 output: cheaper
        // than modulo and works for any shard count.
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(hash_.hash(addr)) * numShards_) >>
            32);
    }

    /**
     * Flat count-then-offset scatter — the serving hot path. Pass 1
     * routes every address once (caching the route) and counts per
     * shard; pass 2 places each address at its shard's cursor in one
     * contiguous buffer. Stream order is preserved within each shard,
     * exactly like the nested scatter(). @p plan's buffers are reused
     * across calls, so the steady state allocates nothing.
     */
    void scatterFlat(Span<const Addr> addrs, ScatterPlan& plan) const;

    /**
     * Nested-buffer scatter, preserving the original order within
     * each shard — shard s receives exactly the sub-stream of
     * addresses with route(addr) == s, in stream order. Reuses
     * @p per_shard's buckets (the outer vector is resized only when
     * the shard count changed), so it is allocation-free in steady
     * state; new code on the hot path should still prefer
     * scatterFlat(), which keeps all sub-streams in one buffer.
     */
    void scatter(Span<const Addr> addrs,
                 std::vector<std::vector<Addr>>& per_shard) const;

    /** Number of shards routed across. */
    uint32_t numShards() const { return numShards_; }

    /** The seed the H3 masks were built from. */
    uint64_t seed() const { return seed_; }

  private:
    uint32_t numShards_;
    uint64_t seed_;
    H3Hash hash_; //!< 32 output bits; reduced by multiply-shift.
};

} // namespace talus

#endif // TALUS_SHARD_SHARD_ROUTER_H
