#include "shard/shard_workers.h"

#include <algorithm>
#include <utility>

#include "obs/registry.h"
#include "util/log.h"

namespace talus {

namespace {

// One spin iteration's "do nothing, politely": on x86 PAUSE backs off
// the core's speculation and frees the sibling hyperthread; elsewhere
// the closest equivalent (or nothing — the loop itself is the wait).
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#endif
}

// Empty polls before a worker stops spinning and starts yielding
// (~a microsecond of PAUSE loops: long enough to bridge the gap
// between back-to-back batches, short enough not to burn a core), and
// yields before it parks on its condition variable. The caller's
// completion wait uses the same spin budget but never parks — the
// next thing it does is return to the producer loop anyway.
constexpr int kSpinPolls = 4096;
constexpr int kYieldPolls = 64;

} // namespace

PinnedWorkers::PinnedWorkers(uint32_t threads, uint32_t num_shards,
                             Executor exec, MetricRegistry* metrics,
                             const std::string& metricsScope)
    : exec_(std::move(exec))
{
    talus_assert(exec_ != nullptr, "PinnedWorkers needs an executor");
    if (threads == 0)
        return;
    // A ring holds at most one dispatch's worth of its owner's shard
    // fan-in (wait() drains fully before the next dispatchAsync may
    // submit); doubled as cheap headroom so the overflow assert below
    // stays a programming-error trap rather than a tight capacity
    // proof.
    const uint32_t fan_in = (num_shards + threads - 1) / threads;
    workers_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t)
        workers_.push_back(
            std::make_unique<Worker>(2 * (fan_in > 0 ? fan_in : 1)));
    touched_.assign(threads, 0);
    // Resolve metric handles before any worker thread exists, so the
    // threads only ever see fully initialized (or all-null) pointers.
    if (metrics != nullptr) {
        for (uint32_t t = 0; t < threads; ++t) {
            const std::string labels =
                joinLabels(metricsScope, labelPair("worker", t));
            workers_[t]->parks =
                &metrics->counter("talus_worker_parks_total", labels);
            workers_[t]->wakes =
                &metrics->counter("talus_worker_wakes_total", labels);
            workers_[t]->ringDepthHwm =
                &metrics->gauge("talus_worker_ring_depth_hwm", labels);
        }
    }
    threads_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t)
        threads_.emplace_back([this, t] { workerLoop(*workers_[t]); });
}

PinnedWorkers::~PinnedWorkers()
{
    stop_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
        std::lock_guard<std::mutex> lock(w->mu);
        w->cv.notify_one();
    }
    for (std::thread& t : threads_)
        t.join();
}

void
PinnedWorkers::dispatchAsync(const ShardTask* tasks, uint32_t count)
{
    if (count == 0)
        return;
    if (threads_.empty()) {
        // Inline mode: submission order on the caller's thread — the
        // bit-exactness reference.
        for (uint32_t i = 0; i < count; ++i)
            exec_(tasks[i]);
        return;
    }

    const bool was_dispatching =
        dispatching_.exchange(true, std::memory_order_acquire);
    talus_assert(!was_dispatching,
                 "PinnedWorkers dispatch is not reentrant: wait() "
                 "before the next dispatchAsync(), and dispatch from "
                 "one thread only");

    pending_.store(count, std::memory_order_relaxed);
    std::fill(touched_.begin(), touched_.end(), uint8_t{0});
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t w = ownerOf(tasks[i].shard);
        // Cannot fail: rings are sized for the per-worker shard
        // fan-in and dispatch() drains fully before returning.
        const bool pushed = workers_[w]->ring.tryPush(tasks[i]);
        talus_assert(pushed, "SPSC ring overflow on worker ", w,
                     " — overlapping dispatch()?");
        touched_[w] = 1;
        if (workers_[w]->ringDepthHwm != nullptr) {
            // Racy-snapshot depth right after our own push: an upper
            // bound on queueing the consumer hasn't drained yet. The
            // producer alone tracks the high-water mark.
            const uint64_t depth = workers_[w]->ring.size();
            if (depth > workers_[w]->hwm) {
                workers_[w]->hwm = depth;
                workers_[w]->ringDepthHwm->set(
                    static_cast<double>(depth));
            }
        }
    }

    // Wake only workers that both got work and actually parked. The
    // seq_cst fence pairs with the one in workerLoop(): either we see
    // parked == true here (and notify under the mutex), or the worker
    // sees our pushes in its post-flag recheck — a push can never
    // slip between its last look at the ring and its sleep.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (uint32_t w = 0; w < workers_.size(); ++w) {
        if (touched_[w] &&
            workers_[w]->parked.load(std::memory_order_relaxed)) {
            {
                std::lock_guard<std::mutex> lock(workers_[w]->mu);
                workers_[w]->cv.notify_one();
            }
            if (workers_[w]->wakes != nullptr)
                workers_[w]->wakes->inc();
        }
    }
}

void
PinnedWorkers::wait()
{
    if (threads_.empty())
        return;
    // Completion wait: spin, then yield (on oversubscribed hosts the
    // yields are what let the workers run at all). The acquire pairs
    // with each worker's release fetch_sub, so every task's writes —
    // per-shard hit slots, cache state — are visible on return.
    int idle = 0;
    while (pending_.load(std::memory_order_acquire) != 0) {
        if (++idle < kSpinPolls)
            cpuRelax();
        else
            std::this_thread::yield();
    }
    dispatching_.store(false, std::memory_order_release);
}

void
PinnedWorkers::workerLoop(Worker& w)
{
    ShardTask task;
    int idle = 0;
    while (true) {
        if (w.ring.tryPop(task)) {
            idle = 0;
            exec_(task);
            pending_.fetch_sub(1, std::memory_order_release);
            continue;
        }
        if (stop_.load(std::memory_order_acquire))
            return;
        ++idle;
        if (idle < kSpinPolls) {
            cpuRelax();
        } else if (idle < kSpinPolls + kYieldPolls) {
            std::this_thread::yield();
        } else {
            // Park. Flag first, fence, then one last ring check: the
            // producer's fence-then-flag-read (dispatch()) guarantees
            // that if it skipped the notify, our recheck sees its
            // push.
            w.parked.store(true, std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_seq_cst);
            if (w.ring.empty() &&
                !stop_.load(std::memory_order_acquire)) {
                if (w.parks != nullptr)
                    w.parks->inc();
                std::unique_lock<std::mutex> lock(w.mu);
                w.cv.wait(lock, [this, &w] {
                    return stop_.load(std::memory_order_acquire) ||
                           !w.ring.empty();
                });
            }
            w.parked.store(false, std::memory_order_relaxed);
            idle = 0;
        }
    }
}

} // namespace talus
