/**
 * @file
 * WorkerPool: a fixed pool of std::threads executing indexed tasks.
 *
 * The sharded serving engine dispatches one task per shard per batch;
 * tasks are fully independent (each touches exactly one shard's
 * TalusCache), so the pool needs no work stealing or futures — just
 * "run fn(0..numTasks-1), each exactly once, then return". Worker
 * threads are started once and reused across run() calls, so the
 * per-batch cost is one wakeup, not a thread spawn.
 *
 * threads == 0 runs every task inline on the caller's thread in index
 * order — the deterministic-debugging mode, and the reference the
 * multi-threaded modes must match bit-for-bit (shards being
 * independent, execution order cannot change any shard's results).
 */

#ifndef TALUS_SHARD_WORKER_POOL_H
#define TALUS_SHARD_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace talus {

/** A fixed std::thread pool running indexed task batches. */
class WorkerPool
{
  public:
    /**
     * Starts @p threads worker threads. 0 means no threads: run()
     * executes tasks inline on the calling thread.
     */
    explicit WorkerPool(uint32_t threads);

    /** Stops and joins the workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /**
     * Executes fn(0), fn(1), ..., fn(num_tasks - 1), each exactly
     * once, and returns when all have finished. With worker threads,
     * tasks are claimed dynamically (any worker may run any index);
     * with threads == 0 they run inline in index order. Not
     * reentrant: one run() at a time, from one thread — concurrent or
     * nested calls (including fn itself calling run()) trap on a
     * talus_assert instead of silently corrupting batch state.
     */
    void run(uint32_t num_tasks, const std::function<void(uint32_t)>& fn);

    /** Number of worker threads (0 = inline execution). */
    uint32_t threadCount() const
    {
        return static_cast<uint32_t>(workers_.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;

    // Batch state, guarded by mu_ except where noted. A batch is
    // published by bumping generation_; workers claim task indices
    // from nextTask_ (atomic, lock-free on the claim path) and run()
    // returns once every task finished AND every woken worker has
    // left the claim loop — the second condition keeps a stale worker
    // from racing a later batch's nextTask_ reset.
    std::mutex mu_;
    std::condition_variable wake_;    //!< run() -> workers.
    std::condition_variable done_;    //!< last worker -> run().
    const std::function<void(uint32_t)>* job_ = nullptr;
    uint32_t numTasks_ = 0;
    uint64_t generation_ = 0;
    uint32_t activeWorkers_ = 0;
    bool stop_ = false;
    std::atomic<uint32_t> nextTask_{0};
    std::atomic<uint32_t> tasksDone_{0};
    /** Reentrancy trap: set for the duration of every run() call
     *  (inline mode included) so a concurrent or nested run() —
     *  which the batch state cannot survive — fails loudly. */
    std::atomic<bool> running_{false};
};

} // namespace talus

#endif // TALUS_SHARD_WORKER_POOL_H
