#include "shard/shard_router.h"

#include "util/log.h"

namespace talus {

ShardRouter::ShardRouter(uint32_t num_shards, uint64_t seed)
    : numShards_(num_shards), seed_(seed), hash_(32, seed)
{
    talus_assert(num_shards >= 1, "a router needs at least one shard");
}

void
ShardRouter::scatter(Span<const Addr> addrs,
                     std::vector<std::vector<Addr>>& per_shard) const
{
    per_shard.resize(numShards_);
    for (std::vector<Addr>& bucket : per_shard)
        bucket.clear();
    for (Addr addr : addrs)
        per_shard[route(addr)].push_back(addr);
}

std::vector<std::vector<Addr>>
ShardRouter::scatter(Span<const Addr> addrs) const
{
    std::vector<std::vector<Addr>> per_shard;
    scatter(addrs, per_shard);
    return per_shard;
}

} // namespace talus
