#include "shard/shard_router.h"

#include "util/log.h"

namespace talus {

ShardRouter::ShardRouter(uint32_t num_shards, uint64_t seed)
    : numShards_(num_shards), seed_(seed), hash_(32, seed)
{
    talus_assert(num_shards >= 1, "a router needs at least one shard");
}

void
ShardRouter::scatterFlat(Span<const Addr> addrs, ScatterPlan& plan) const
{
    const size_t n = addrs.size();
    // Pass 1: route once per address (cache the result — H3 plus the
    // multiply-shift is the expensive part) and count per shard.
    plan.counts_.assign(numShards_, 0);
    plan.routes_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const uint32_t s = route(addrs[i]);
        plan.routes_[i] = s;
        plan.counts_[s]++;
    }
    // Prefix-sum the counts into per-shard base offsets.
    plan.offsets_.resize(numShards_);
    plan.cursors_.resize(numShards_);
    uint64_t off = 0;
    for (uint32_t s = 0; s < numShards_; ++s) {
        plan.offsets_[s] = off;
        plan.cursors_[s] = off;
        off += plan.counts_[s];
    }
    // Pass 2: place each address at its shard's cursor. Ascending i
    // keeps stream order within every shard.
    plan.buf_.resize(n);
    for (size_t i = 0; i < n; ++i)
        plan.buf_[plan.cursors_[plan.routes_[i]]++] = addrs[i];
}

void
ShardRouter::scatter(Span<const Addr> addrs,
                     std::vector<std::vector<Addr>>& per_shard) const
{
    // Resize only on shard-count changes so a reused @p per_shard
    // keeps every bucket's capacity across batches.
    if (per_shard.size() != numShards_)
        per_shard.resize(numShards_);
    for (std::vector<Addr>& bucket : per_shard)
        bucket.clear();
    for (Addr addr : addrs)
        per_shard[route(addr)].push_back(addr);
}

} // namespace talus
