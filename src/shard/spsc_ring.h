/**
 * @file
 * SpscRing: a bounded single-producer single-consumer ring buffer.
 *
 * The serving engine's dispatch fabric: the batch-submitting thread
 * (the single producer) feeds work descriptors to each persistent
 * shard-pinned worker (the single consumer of its own ring), so a
 * batch costs one ring push per shard instead of a mutex-guarded
 * generation handshake. With exactly one thread on each side, the
 * ring needs no locks and no CAS loops — just two monotonically
 * increasing cursors with release/acquire publication:
 *
 *  - the producer writes the slot, then release-stores tail_: the
 *    consumer's acquire-load of tail_ makes the slot contents (and
 *    everything the producer wrote before the push, e.g. the scatter
 *    buffers a descriptor points into) visible;
 *  - the consumer reads the slot, then release-stores head_: the
 *    producer's acquire-load of head_ proves the slot is free to
 *    overwrite.
 *
 * Cursors are 64-bit and never wrap in practice (2^64 pushes); the
 * slot index is cursor & mask, so capacity must be a power of two
 * (the constructor rounds up). Each side keeps a cached copy of the
 * other side's cursor and only re-reads the shared atomic when the
 * cache says full/empty, which keeps steady-state pushes and pops
 * free of cross-core coherence traffic. head_ and tail_ live on
 * separate cache lines for the same reason.
 *
 * Contract: exactly one producer thread may call tryPush() and
 * exactly one consumer thread may call tryPop(); empty() is safe from
 * either side (it is exact on the consumer side, a racy snapshot
 * elsewhere). tests/spsc_ring_test.cc stress-checks the wrap-around
 * and full/empty boundaries under ThreadSanitizer.
 */

#ifndef TALUS_SHARD_SPSC_RING_H
#define TALUS_SHARD_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/log.h"

namespace talus {

/** Bounded lock-free SPSC ring buffer of trivially copyable work
 *  items. */
template <typename T>
class SpscRing
{
  public:
    /**
     * Builds a ring holding at least @p min_capacity items (rounded
     * up to the next power of two for mask indexing).
     */
    explicit SpscRing(uint32_t min_capacity)
    {
        talus_assert(min_capacity >= 1,
                     "an SPSC ring needs at least one slot");
        size_t cap = 1;
        while (cap < min_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /**
     * Producer side: enqueues @p value unless the ring is full.
     * Returns true on success. Publishes with release semantics, so
     * everything the producer wrote before the push is visible to the
     * consumer that pops it.
     */
    bool tryPush(const T& value)
    {
        const uint64_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - headCache_ == slots_.size()) {
            headCache_ = head_.load(std::memory_order_acquire);
            if (tail - headCache_ == slots_.size())
                return false; // Genuinely full.
        }
        slots_[tail & mask_] = value;
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side: dequeues into @p out unless the ring is empty.
     * Returns true on success.
     */
    bool tryPop(T& out)
    {
        const uint64_t head = head_.load(std::memory_order_relaxed);
        if (head == tailCache_) {
            tailCache_ = tail_.load(std::memory_order_acquire);
            if (head == tailCache_)
                return false; // Genuinely empty.
        }
        out = slots_[head & mask_];
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * True when no item is ready. Exact from the consumer thread;
     * from any other thread it is a racy (but safely loaded)
     * snapshot — good enough for "should I wake the consumer?"
     * heuristics.
     */
    bool empty() const
    {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }

    /** Slots in the ring (the rounded-up power of two). */
    size_t capacity() const { return slots_.size(); }

    /** Items currently queued (racy snapshot off the hot path). */
    size_t size() const
    {
        const uint64_t head = head_.load(std::memory_order_acquire);
        const uint64_t tail = tail_.load(std::memory_order_acquire);
        return static_cast<size_t>(tail - head);
    }

  private:
    std::vector<T> slots_;
    size_t mask_ = 0;

    // Producer-owned line: the producer's cursor plus its cached view
    // of the consumer's cursor (refreshed only when the ring looks
    // full). alignas keeps the two sides off each other's cache line.
    alignas(64) std::atomic<uint64_t> tail_{0};
    uint64_t headCache_ = 0;

    // Consumer-owned line, mirror-image of the above.
    alignas(64) std::atomic<uint64_t> head_{0};
    uint64_t tailCache_ = 0;
};

} // namespace talus

#endif // TALUS_SHARD_SPSC_RING_H
