/**
 * @file
 * PinnedWorkers: persistent shard-pinned worker threads fed through
 * bounded SPSC rings — the serving engine's data-path dispatcher.
 *
 * WorkerPool (shard/worker_pool.h) dispatches a batch by locking a
 * mutex, bumping a generation, waking every worker, and waiting for
 * straggler quiescence; per batch that handshake (plus a
 * std::function rebuild) costs on the order of the work itself, which
 * is why threaded sharding used to scale *negatively*. This
 * dispatcher inverts the model, the way production cache servers do
 * (Apache Traffic Server pins continuations to persistent per-core
 * event threads rather than re-forming a thread team per request):
 *
 *  - Each worker thread permanently owns a fixed subset of shards
 *    (shard s belongs to worker s % threads). Only that thread ever
 *    touches those shards' caches on the data path, so per-shard
 *    state needs no locking and outputs can go to per-shard slots
 *    with no cross-worker write contention.
 *  - Work arrives as plain ShardTask descriptors through a per-worker
 *    SPSC ring (shard/spsc_ring.h): dispatching a batch is one ring
 *    push per non-empty shard plus one atomic pending-counter, no
 *    mutex on the submit path.
 *  - Idle workers poll: spin briefly, then yield, then park on a
 *    condition variable. The producer touches a worker's parking
 *    mutex only when that worker has actually parked — in the steady
 *    state (batches arriving back-to-back) workers are still polling
 *    when the next descriptor lands and dispatch is wakeup-free.
 *
 * Determinism: pinning fixes which thread runs each shard, and each
 * ring preserves FIFO order, so per-shard execution order is exactly
 * submission order. Shards share no state, so results are bit-exact
 * with inline execution (threads == 0) for any thread count.
 */

#ifndef TALUS_SHARD_SHARD_WORKERS_H
#define TALUS_SHARD_SHARD_WORKERS_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "shard/spsc_ring.h"
#include "util/types.h"

namespace talus {

class Counter;
class Gauge;
class MetricRegistry;

/** One unit of data-path work: a shard plus its sub-batch. */
struct ShardTask
{
    uint32_t shard = 0;         //!< Target shard index.
    const Addr* data = nullptr; //!< Sub-batch base. Borrowed: must stay
                                //!< valid until dispatch() returns.
    uint64_t count = 0;         //!< Addresses in the sub-batch.
    PartId part = 0;            //!< Logical partition of the batch.
};

/** Persistent shard-pinned workers fed by per-worker SPSC rings. */
class PinnedWorkers
{
  public:
    /** Executes one ShardTask; runs on the shard's owning worker
     *  thread (or the caller's thread when threads == 0). */
    using Executor = std::function<void(const ShardTask&)>;

    /**
     * Starts @p threads persistent workers, each owning the shards
     * s in [0, num_shards) with s % threads == its index. threads == 0
     * starts none: dispatch() runs every task inline, in submission
     * order, on the calling thread — the deterministic-debugging mode
     * the threaded modes must match bit-for-bit.
     *
     * @p exec is fixed for the lifetime of the pool (one indirect
     * call per task; never rebuilt per batch).
     *
     * @p metrics (optional) publishes per-worker dispatch health —
     * ring depth high-water marks, park and wake counts, labeled
     * `worker="t"` under @p metricsScope — into the registry. Null
     * (the default) compiles the hooks down to never-taken null
     * checks off the ring hot path.
     */
    PinnedWorkers(uint32_t threads, uint32_t num_shards, Executor exec,
                  MetricRegistry* metrics = nullptr,
                  const std::string& metricsScope = "");

    /** Unparks and joins the workers. */
    ~PinnedWorkers();

    PinnedWorkers(const PinnedWorkers&) = delete;
    PinnedWorkers& operator=(const PinnedWorkers&) = delete;

    /**
     * Runs tasks[0..count) — each on its shard's owning worker, FIFO
     * per shard — and returns once every task finished (with release/
     * acquire publication, so the caller sees all worker writes).
     * Tasks for distinct shards owned by the same worker run in
     * submission order. Not reentrant: one dispatch() at a time, from
     * one thread (enforced by a talus_assert).
     */
    void dispatch(const ShardTask* tasks, uint32_t count)
    {
        dispatchAsync(tasks, count);
        wait();
    }

    /**
     * Submission half of dispatch(): pushes every task to its owning
     * worker's ring, wakes parked workers, and returns WITHOUT
     * waiting for completion — the producer can overlap its own work
     * (scattering the next block) with the drain. With threads == 0
     * the tasks run inline here, so async and sync modes stay
     * bit-exact.
     *
     * Exactly one async dispatch may be outstanding: call wait()
     * before the next dispatchAsync() (enforced by the same
     * reentrancy trap dispatch() uses). The task descriptors and the
     * sub-batches they point at must stay valid until wait() returns.
     */
    void dispatchAsync(const ShardTask* tasks, uint32_t count);

    /**
     * Completion half of dispatch(): returns once every task of the
     * outstanding dispatchAsync() finished, with the same release/
     * acquire publication dispatch() provides. No-op when nothing is
     * outstanding (or threads == 0).
     */
    void wait();

    /** Worker threads (0 = inline execution). */
    uint32_t threadCount() const
    {
        return static_cast<uint32_t>(threads_.size());
    }

    /** The worker thread owning @p shard (threads > 0 only). */
    uint32_t ownerOf(uint32_t shard) const
    {
        return shard % static_cast<uint32_t>(workers_.size());
    }

  private:
    /** Per-worker state: its task ring and its parking gear. */
    struct Worker
    {
        explicit Worker(uint32_t ring_capacity) : ring(ring_capacity) {}

        SpscRing<ShardTask> ring;
        // Metric handles (null when metrics are off). parks is bumped
        // by the worker thread, wakes by the producer, and the ring
        // depth high-water mark by the producer alone (hwm is plain:
        // producer-only state).
        Counter* parks = nullptr;
        Counter* wakes = nullptr;
        Gauge* ringDepthHwm = nullptr;
        uint64_t hwm = 0;
        /** True while the worker sleeps on cv (set by the worker
         *  before its final empty-ring recheck; the seq_cst fences in
         *  workerLoop()/dispatch() make flag and ring visible in a
         *  consistent order, so a push is never silently missed). */
        std::atomic<bool> parked{false};
        std::mutex mu;
        std::condition_variable cv;
    };

    void workerLoop(Worker& w);

    Executor exec_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::vector<uint8_t> touched_; //!< Dispatch scratch: workers fed
                                   //!< this batch (caller-owned).
    std::atomic<uint64_t> pending_{0}; //!< Tasks in flight.
    std::atomic<bool> stop_{false};
    std::atomic<bool> dispatching_{false}; //!< Reentrancy trap.
};

} // namespace talus

#endif // TALUS_SHARD_SHARD_WORKERS_H
