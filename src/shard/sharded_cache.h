/**
 * @file
 * ShardedTalusCache: N independent TalusCache shards behind one
 * access/accessBatch/stats/reconfigure surface.
 *
 * This is the serving-engine layer: a ShardRouter hash-partitions the
 * address space across numShards fully independent TalusCache
 * instances (each with its own monitors, allocator, and
 * reconfiguration loop — miss curves stay per shard, via
 * shardCurve()), and batches execute scatter-dispatch-gather: the
 * batch is split into per-shard sub-streams in stream order (a flat
 * count-then-offset scatter into one reused buffer), each shard's
 * sub-stream is driven through TalusCache::accessBatch, and the hit
 * counts are summed from cache-line-padded per-shard slots.
 *
 * With Config::threads > 0 the data path runs on persistent
 * shard-pinned workers (shard/shard_workers.h): each worker owns a
 * fixed subset of shards and is fed ShardTask descriptors through a
 * bounded SPSC ring, so a batch costs one ring push per non-empty
 * shard — no mutex, and no wakeup when batches arrive back-to-back.
 * The control plane (reconfigureAll / reconfigureAllAtEpoch) keeps
 * dispatching on the generic WorkerPool: control steps are rare and
 * heavyweight, so handshake cost is irrelevant there, and the pool's
 * dynamic claiming load-balances the uneven per-shard compute.
 *
 * Determinism invariant — the subsystem's test anchor: because shards
 * share no state, every shard's hit/miss sequence, monitor state, and
 * reconfiguration schedule are bit-exact regardless of thread count,
 * and identical to a stand-alone TalusCache built from
 * shardConfig(cfg, s) fed the router's sub-stream for shard s.
 * Config::threads trades wall-clock for nothing else; threads == 0
 * runs inline for deterministic single-threaded debugging.
 */

#ifndef TALUS_SHARD_SHARDED_CACHE_H
#define TALUS_SHARD_SHARDED_CACHE_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/talus_cache.h"
#include "shard/shard_router.h"
#include "shard/shard_workers.h"
#include "shard/worker_pool.h"
#include "util/span.h"

namespace talus {

/** N independent TalusCache shards behind the TalusCache surface. */
class ShardedTalusCache
{
  public:
    /**
     * Upper bound on numShards (and therefore on useful worker
     * threads). Generous for a single process — horizontal scale
     * beyond this is a multi-process concern — while keeping an
     * absurd shard count an actionable ConfigError instead of an
     * out-of-memory crash. BenchEnv's --shards/--threads flags
     * enforce the same bound.
     */
    static constexpr uint32_t kMaxShards = 1024;

    /**
     * Addresses per pipelined dispatch block (Config::
     * pipelineDispatch): large enough that per-block dispatch costs
     * amortize (one ring push per non-empty shard per block), small
     * enough that two in-flight blocks' scatter buffers stay
     * cache-resident. Batches no longer than one block run the
     * unpipelined path — there is nothing to overlap.
     */
    static constexpr uint64_t kPipelineBlock = 4096;

    /** Shard-layer configuration wrapping one per-shard Config. */
    struct Config
    {
        /**
         * Per-shard cache configuration. llcLines is per shard, so
         * total capacity is numShards * shard.llcLines; shard s runs
         * with a seed derived from shard.seed and s (see
         * shardConfig()) so shards sample independently.
         */
        TalusCache::Config shard;
        uint32_t numShards = 4; //!< Independent shards (>= 1).
        uint32_t threads = 0;   //!< Worker threads; 0 = inline
                                //!< (deterministic debugging).
        std::optional<uint64_t> routerSeed; //!< Address->shard H3
                                            //!< seed; unset derives
                                            //!< it from shard.seed.

        /**
         * Pipeline batch dispatch (threads > 0 only): accessBatch
         * splits large batches into kPipelineBlock-address blocks and
         * scatters block k+1 into a second ScatterPlan while the
         * pinned workers drain block k, overlapping the producer's
         * routing pass with the workers' cache compute. Bit-exact
         * with the unpipelined path for any thread count (per-shard
         * sub-stream order is preserved across blocks, and
         * TalusCache::accessBatch is bit-exact under any blocking).
         * Off = one scatter + one dispatch per batch, the PR 9
         * behaviour, kept as a knob for A/B measurement
         * (BenchEnv --pipeline / TALUS_PIPELINE).
         */
        bool pipelineDispatch = true;

        /**
         * Validates the configuration (including the embedded
         * per-shard Config). Returns "" when valid, otherwise an
         * actionable message.
         */
        std::string validate() const;
    };

    /**
     * Builds the router, the N shards, and the worker pool.
     *
     * @throws ConfigError if @p config fails Config::validate().
     */
    explicit ShardedTalusCache(const Config& config);

    /**
     * The exact TalusCache::Config shard @p shard runs with: the
     * embedded per-shard Config with a shard-specific seed. Exposed
     * so tests (and offline tools) can hand-build a bit-identical
     * stand-alone replica of any shard.
     */
    static TalusCache::Config shardConfig(const Config& config,
                                          uint32_t shard);

    /** Routes @p addr to its shard and accesses it; true on hit. */
    bool access(Addr addr, PartId part = 0);

    /**
     * Scatter-dispatch-gather batch execution: splits @p addrs into
     * per-shard sub-streams (flat count-then-offset scatter,
     * preserving stream order within each shard), drives every
     * non-empty shard's sub-stream through TalusCache::accessBatch —
     * on that shard's pinned worker when Config::threads > 0 — and
     * returns the total hit count. Steady state allocates nothing.
     * With Config::pipelineDispatch and threads > 0, batches longer
     * than kPipelineBlock run double-buffered: the caller scatters
     * block k+1 while the workers drain block k. Bit-exact with
     * routing each address through access() serially, for any thread
     * count and either pipeline setting.
     */
    uint64_t accessBatch(Span<const Addr> addrs, PartId part = 0);

    /**
     * Runs one synchronous reconfiguration on every shard,
     * dispatching the per-shard control steps (snapshot + pure
     * ControlStep + apply) concurrently on the worker pool when
     * Config::threads > 0. Shards share no state, so the result is
     * bit-exact with reconfiguring each shard serially.
     */
    void reconfigureAll();

    /**
     * Epoch-deferred reconfiguration: computes every shard's control
     * step concurrently now (ending each shard's monitoring
     * interval), but leaves the data path untouched — each shard
     * applies its new configuration in-stream when its own access
     * count reaches the next multiple of @p epochLen (see
     * TalusCache::applyReconfigureAtEpoch). Batches keep flowing
     * between compute and apply; the application point is a fixed
     * per-shard access count, so the result is bit-exact for any
     * thread count and any batch blocking.
     */
    void reconfigureAllAtEpoch(uint64_t epochLen);

    /** Alias of reconfigureAll(), kept for the TalusCache-shaped
     *  surface. */
    void reconfigure();

    /**
     * Aggregate snapshot of logical partition @p part across all
     * shards: accesses, misses, and targetLines are sums; rho is the
     * access-weighted mean of the shard rhos (1.0 before any access).
     * The shadow configuration is a per-shard concept and is left
     * default — read it via shardStats().
     */
    TalusCache::PartStats stats(PartId part) const;

    /** Snapshot of partition @p part on shard @p shard alone. */
    TalusCache::PartStats shardStats(uint32_t shard, PartId part) const;

    /** Monitored miss curve of partition @p part on shard @p shard. */
    MissCurve shardCurve(uint32_t shard, PartId part) const;

    /** Miss ratio across all shards and partitions. */
    double missRatio() const;

    /** Clears every shard's access/miss counters (not monitors). */
    void resetStats();

    /** Number of shards. */
    uint32_t numShards() const { return cfg_.numShards; }

    /** Logical partitions per shard (the caller-visible PartId
     *  space; every shard has the same partitions). */
    uint32_t numParts() const { return cfg_.shard.numParts; }

    /** Worker threads driving batches (0 = inline). */
    uint32_t threads() const { return workers_.threadCount(); }

    /** Total capacity in lines, summed over shards. */
    uint64_t capacityLines() const;

    /** Reconfigurations run so far, summed over shards. */
    uint64_t reconfigurations() const;

    /** The address->shard router. */
    const ShardRouter& router() const { return router_; }

    /** Direct access to shard @p shard, for tests and diagnostics. */
    TalusCache& shard(uint32_t shard);
    const TalusCache& shard(uint32_t shard) const;

    /** The validated configuration this engine was built from. */
    const Config& config() const { return cfg_; }

  private:
    /**
     * One shard's per-batch hit count, padded to a cache line: the
     * slots are written concurrently by different workers every
     * batch, so adjacent uint64_t entries would false-share one line
     * and ping it between cores on every sub-batch completion.
     */
    struct alignas(64) PaddedHits
    {
        uint64_t value = 0;
    };

    /** Scatters @p addrs and rebuilds @p tasks with one ShardTask per
     *  non-empty shard (empty shards are skipped — bit-exact, since
     *  an empty sub-batch is a no-op). */
    void buildTasks(Span<const Addr> addrs, PartId part,
                    ScatterPlan& plan, std::vector<ShardTask>& tasks);

    /** Sums the hit slots of exactly the shards @p tasks touched.
     *  Must run after the dispatch that produced them completed and
     *  before the next dispatch overwrites the slots. */
    uint64_t gatherHits(const std::vector<ShardTask>& tasks) const;

    Config cfg_;
    ShardRouter router_;
    std::vector<std::unique_ptr<TalusCache>> shards_;
    WorkerPool pool_; //!< Control-plane dispatch only (reconfigure*).
    // Scatter/dispatch/gather scratch, reused across accessBatch
    // calls so the steady state allocates nothing. accessBatch is
    // single-caller (like TalusCache, the engine is externally
    // synchronized). Two plan/task pairs so the pipelined path can
    // scatter block k+1 while the workers still read block k's plan;
    // the unpipelined path only ever uses index 0.
    ScatterPlan plans_[2];
    std::vector<ShardTask> tasks_[2];
    std::vector<PaddedHits> shardHits_;
    // Data-path workers. Declared last: its destructor joins the
    // worker threads, which must happen while shards_ and the scratch
    // buffers above are still alive.
    PinnedWorkers workers_;
};

} // namespace talus

#endif // TALUS_SHARD_SHARDED_CACHE_H
