#include "shard/sharded_cache.h"

#include <algorithm>
#include <sstream>

#include "obs/registry.h"
#include "util/log.h"

namespace talus {

namespace {

// Shard-seed derivation: odd multiplier so consecutive shards get
// well-separated seeds; XOR keeps shard 0 distinct from the base.
constexpr uint64_t kShardSeedSalt = 0x9E37'79B9'7F4A'7C15ull;

// Router-seed derivation when Config::routerSeed is unset. Distinct
// from every per-shard seed so the router never reuses a shard's H3
// masks (routing and intra-shard sampling must stay independent).
constexpr uint64_t kRouterSeedSalt = 0x5A4D'0C11ull;

// The registry the engine's shards and workers publish into when
// metrics are on: the config's registry, or the process-global one.
MetricRegistry*
resolveRegistry(const TalusCache::Config& shard)
{
    if (!shard.metricsEnabled)
        return nullptr;
    return shard.metrics != nullptr ? shard.metrics
                                    : &globalMetricRegistry();
}

// Validation gate for the member-initializer list: the router and
// worker pool are constructed before the constructor body runs, so
// an invalid config must throw before either sees it.
const ShardedTalusCache::Config&
validated(const ShardedTalusCache::Config& config)
{
    const std::string err = config.validate();
    if (!err.empty())
        throw ConfigError("ShardedTalusCache::Config: " + err);
    return config;
}

} // namespace

std::string
ShardedTalusCache::Config::validate() const
{
    std::ostringstream err;
    if (numShards < 1 || numShards > kMaxShards)
        err << "numShards must be in [1, " << kMaxShards << "] (got "
            << numShards << ")";
    else if (threads > kMaxShards)
        err << "threads must be <= " << kMaxShards << " (got "
            << threads << "); a batch has at most numShards <= "
            << kMaxShards << " independent tasks, so more workers "
            << "can never help";
    else {
        const std::string shard_err = shard.validate();
        if (!shard_err.empty())
            err << "per-shard config: " << shard_err;
    }
    return err.str();
}

TalusCache::Config
ShardedTalusCache::shardConfig(const Config& config, uint32_t shard)
{
    TalusCache::Config cfg = config.shard;
    cfg.seed = config.shard.seed ^ (kShardSeedSalt * (shard + 1));
    // An explicit per-shard routerSeed is kept as-is: shards are
    // independent caches, so sharing the sampling seed is harmless.
    // Each shard publishes its metrics under a shard="s" label (on
    // top of any caller scope), so per-shard series stay distinct in
    // a shared registry.
    if (cfg.metricsEnabled)
        cfg.metricsScope = joinLabels(config.shard.metricsScope,
                                      labelPair("shard", shard));
    return cfg;
}

ShardedTalusCache::ShardedTalusCache(const Config& config)
    : cfg_(validated(config)),
      router_(cfg_.numShards,
              cfg_.routerSeed.value_or(cfg_.shard.seed ^
                                       kRouterSeedSalt)),
      pool_(cfg_.threads),
      // The executor runs on the shard's pinned worker thread; each
      // shard writes only its own padded hit slot, so per-batch
      // outputs never contend for a cache line.
      workers_(
          cfg_.threads, cfg_.numShards,
          [this](const ShardTask& t) {
              shardHits_[t.shard].value = shards_[t.shard]->accessBatch(
                  Span<const Addr>(t.data, t.count), t.part);
          },
          resolveRegistry(cfg_.shard), cfg_.shard.metricsScope)
{
    shards_.reserve(cfg_.numShards);
    for (uint32_t s = 0; s < cfg_.numShards; ++s)
        shards_.push_back(
            std::make_unique<TalusCache>(shardConfig(cfg_, s)));
    tasks_[0].reserve(cfg_.numShards);
    tasks_[1].reserve(cfg_.numShards);
    shardHits_.resize(cfg_.numShards);
}

bool
ShardedTalusCache::access(Addr addr, PartId part)
{
    return shards_[router_.route(addr)]->access(addr, part);
}

void
ShardedTalusCache::buildTasks(Span<const Addr> addrs, PartId part,
                              ScatterPlan& plan,
                              std::vector<ShardTask>& tasks)
{
    // Flat scatter, then one ShardTask per non-empty shard. Skipping
    // empty shards is bit-exact (TalusCache::accessBatch on an empty
    // span is a no-op) and matters on skewed traces, where small
    // batches leave most shards without work.
    router_.scatterFlat(addrs, plan);
    tasks.clear();
    for (uint32_t s = 0; s < cfg_.numShards; ++s) {
        const uint64_t n = plan.count(s);
        if (n != 0)
            tasks.push_back(ShardTask{s, plan.shardData(s), n, part});
    }
}

uint64_t
ShardedTalusCache::gatherHits(const std::vector<ShardTask>& tasks) const
{
    uint64_t hits = 0;
    for (const ShardTask& t : tasks)
        hits += shardHits_[t.shard].value;
    return hits;
}

uint64_t
ShardedTalusCache::accessBatch(Span<const Addr> addrs, PartId part)
{
    if (addrs.empty())
        return 0;
    const uint64_t n = addrs.size();
    if (workers_.threadCount() == 0 || !cfg_.pipelineDispatch ||
        n <= kPipelineBlock) {
        // Unpipelined: one scatter, one blocking dispatch. Also the
        // path for single-block batches, where there is nothing to
        // overlap and the extra wait()/gather bookkeeping would be
        // pure overhead.
        buildTasks(addrs, part, plans_[0], tasks_[0]);
        workers_.dispatch(tasks_[0].data(),
                          static_cast<uint32_t>(tasks_[0].size()));
        return gatherHits(tasks_[0]);
    }

    // Pipelined: while the pinned workers drain block k (submitted
    // with dispatchAsync), the caller scatters block k+1 into the
    // spare plan. Each shard still receives its full sub-stream in
    // stream order — blocks are dispatched in order and wait() fully
    // drains one block before the next is submitted — and chunking a
    // TalusCache batch is bit-exact by that class's contract, so the
    // result matches the unpipelined path bit-for-bit for any thread
    // count. Block k's hit slots are gathered after its wait() and
    // before block k+1's dispatch can overwrite them.
    uint64_t hits = 0;
    uint32_t cur = 0;
    buildTasks(Span<const Addr>(addrs.data(), kPipelineBlock), part,
               plans_[cur], tasks_[cur]);
    workers_.dispatchAsync(tasks_[cur].data(),
                           static_cast<uint32_t>(tasks_[cur].size()));
    uint64_t off = kPipelineBlock;
    while (off < n) {
        const uint64_t len = std::min(kPipelineBlock, n - off);
        const uint32_t nxt = cur ^ 1u;
        buildTasks(Span<const Addr>(addrs.data() + off, len), part,
                   plans_[nxt], tasks_[nxt]);
        workers_.wait();
        hits += gatherHits(tasks_[cur]);
        workers_.dispatchAsync(
            tasks_[nxt].data(),
            static_cast<uint32_t>(tasks_[nxt].size()));
        cur = nxt;
        off += len;
    }
    workers_.wait();
    hits += gatherHits(tasks_[cur]);
    return hits;
}

void
ShardedTalusCache::reconfigureAll()
{
    // One control step per shard, claimed dynamically by the
    // WorkerPool. Control stays on the generic pool (not the pinned
    // data-path workers): steps are rare and heavyweight, so the
    // pool's handshake cost is irrelevant and its dynamic claiming
    // load-balances the uneven per-shard compute. Each task touches
    // only its own shard's monitors, control plane, and cache, and
    // the caller serializes against accessBatch, so the steps are
    // race-free by construction.
    pool_.run(cfg_.numShards,
              [this](uint32_t s) { shards_[s]->reconfigure(); });
}

void
ShardedTalusCache::reconfigureAllAtEpoch(uint64_t epochLen)
{
    pool_.run(cfg_.numShards, [this, epochLen](uint32_t s) {
        shards_[s]->prepareReconfigure();
        shards_[s]->applyReconfigureAtEpoch(epochLen);
    });
}

void
ShardedTalusCache::reconfigure()
{
    reconfigureAll();
}

TalusCache::PartStats
ShardedTalusCache::stats(PartId part) const
{
    TalusCache::PartStats agg;
    double rho_weighted = 0.0;
    for (const auto& shard : shards_) {
        const TalusCache::PartStats s = shard->stats(part);
        agg.accesses += s.accesses;
        agg.misses += s.misses;
        agg.targetLines += s.targetLines;
        rho_weighted += s.rho * static_cast<double>(s.accesses);
    }
    agg.rho = agg.accesses > 0
                  ? rho_weighted / static_cast<double>(agg.accesses)
                  : 1.0;
    return agg;
}

TalusCache::PartStats
ShardedTalusCache::shardStats(uint32_t shard, PartId part) const
{
    talus_assert(shard < shards_.size(), "bad shard ", shard);
    return shards_[shard]->stats(part);
}

MissCurve
ShardedTalusCache::shardCurve(uint32_t shard, PartId part) const
{
    talus_assert(shard < shards_.size(), "bad shard ", shard);
    return shards_[shard]->curve(part);
}

double
ShardedTalusCache::missRatio() const
{
    // Aggregate the same PartStats snapshots stats() serves (which in
    // turn aggregate each shard's stats()), instead of reaching into
    // raw CacheStats: missRatio(), stats(), and shardStats() now all
    // describe the same resetStats() window by construction.
    uint64_t accesses = 0;
    uint64_t misses = 0;
    for (PartId p = 0; p < cfg_.shard.numParts; ++p) {
        const TalusCache::PartStats s = stats(p);
        accesses += s.accesses;
        misses += s.misses;
    }
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
}

void
ShardedTalusCache::resetStats()
{
    for (auto& shard : shards_)
        shard->resetStats();
}

uint64_t
ShardedTalusCache::capacityLines() const
{
    uint64_t lines = 0;
    for (const auto& shard : shards_)
        lines += shard->capacityLines();
    return lines;
}

uint64_t
ShardedTalusCache::reconfigurations() const
{
    uint64_t total = 0;
    for (const auto& shard : shards_)
        total += shard->reconfigurations();
    return total;
}

TalusCache&
ShardedTalusCache::shard(uint32_t shard)
{
    talus_assert(shard < shards_.size(), "bad shard ", shard);
    return *shards_[shard];
}

const TalusCache&
ShardedTalusCache::shard(uint32_t shard) const
{
    talus_assert(shard < shards_.size(), "bad shard ", shard);
    return *shards_[shard];
}

} // namespace talus
