#include "shard/worker_pool.h"

#include "util/log.h"

namespace talus {

namespace {

/** Clears the reentrancy flag on every exit path of run(). */
struct RunningGuard
{
    std::atomic<bool>& flag;
    ~RunningGuard() { flag.store(false, std::memory_order_release); }
};

} // namespace

WorkerPool::WorkerPool(uint32_t threads)
{
    workers_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
WorkerPool::run(uint32_t num_tasks, const std::function<void(uint32_t)>& fn)
{
    if (num_tasks == 0)
        return;
    // The header's "not reentrant" contract, enforced: a second run()
    // racing this one — from another thread, or from fn itself —
    // would reset nextTask_/tasksDone_ under a live batch.
    const bool was_running =
        running_.exchange(true, std::memory_order_acquire);
    talus_assert(!was_running,
                 "WorkerPool::run() is not reentrant: one run() at a "
                 "time, from one thread");
    RunningGuard guard{running_};
    if (workers_.empty()) {
        for (uint32_t t = 0; t < num_tasks; ++t)
            fn(t);
        return;
    }

    std::unique_lock<std::mutex> lock(mu_);
    // A worker that slept through the previous batch may wake late and
    // briefly enter the claim loop (where it claims nothing, because
    // nextTask_ is exhausted). Publishing a new batch — which resets
    // nextTask_ — while such a straggler is mid-claim would hand it a
    // task index with a stale job pointer, so wait for quiescence
    // before touching the batch state.
    done_.wait(lock, [this] { return activeWorkers_ == 0; });

    job_ = &fn;
    numTasks_ = num_tasks;
    nextTask_.store(0, std::memory_order_relaxed);
    tasksDone_.store(0, std::memory_order_relaxed);
    generation_++;
    lock.unlock();
    wake_.notify_all();

    lock.lock();
    done_.wait(lock, [this, num_tasks] {
        return tasksDone_.load(std::memory_order_acquire) == num_tasks &&
               activeWorkers_ == 0;
    });
    job_ = nullptr;
}

void
WorkerPool::workerLoop()
{
    uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
        wake_.wait(lock, [this, seen_generation] {
            return stop_ || generation_ != seen_generation;
        });
        if (stop_)
            return;
        seen_generation = generation_;
        const std::function<void(uint32_t)>* job = job_;
        const uint32_t num_tasks = numTasks_;
        activeWorkers_++;
        lock.unlock();

        // Claim-and-run until the batch is exhausted. A straggler that
        // wakes after its batch completed (job may even be null again)
        // finds nextTask_ >= num_tasks and claims nothing.
        while (true) {
            const uint32_t task =
                nextTask_.fetch_add(1, std::memory_order_relaxed);
            if (task >= num_tasks)
                break;
            (*job)(task);
            tasksDone_.fetch_add(1, std::memory_order_release);
        }

        lock.lock();
        activeWorkers_--;
        // active == 0 implies every claimed task finished, so this
        // covers both the batch-done and straggler-quiesced waits.
        if (activeWorkers_ == 0)
            done_.notify_all();
    }
}

} // namespace talus
