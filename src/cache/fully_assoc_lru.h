/**
 * @file
 * Exact fully-associative LRU cache.
 *
 * Used for (i) the paper's "idealized partitioning on a fully-
 * associative cache" configuration (Talus+I/LRU, Fig. 8), where each
 * partition is one of these with an exact line-granularity capacity,
 * and (ii) as a reference model in tests.
 *
 * Capacity can be changed at runtime; shrinking evicts from the LRU
 * end, which is exactly how an idealized repartitioning behaves.
 *
 * Storage is flat and allocation-free per access: one open-addressing
 * table (linear probing, backward-shift deletion) whose 16-byte slots
 * carry the address plus intrusive doubly-linked LRU links (slot
 * indices, not pointers). A hit is one probe — the entry found IS the
 * list node, so recency updates are plain stores to neighbor slots —
 * where the previous std::list + std::unordered_map representation
 * chased a map bucket, a map node, and heap-allocated list nodes.
 */

#ifndef TALUS_CACHE_FULLY_ASSOC_LRU_H
#define TALUS_CACHE_FULLY_ASSOC_LRU_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace talus {

/** An exact, resizable, fully-associative LRU cache of line addresses. */
class FullyAssocLru
{
  public:
    /** Creates a cache holding up to @p capacity_lines lines. */
    explicit FullyAssocLru(uint64_t capacity_lines = 0);

    /**
     * Performs one access; inserts on miss (evicting the LRU line if
     * at capacity). Accesses with zero capacity always miss and do
     * not insert.
     *
     * @return true on hit.
     */
    bool access(Addr addr);

    /** True if @p addr is resident (no side effects). */
    bool contains(Addr addr) const;

    /** Current number of resident lines. */
    uint64_t size() const { return size_; }

    /** Capacity in lines. */
    uint64_t capacity() const { return capacity_; }

    /**
     * Changes the capacity; shrinking evicts least-recently-used
     * lines immediately.
     */
    void setCapacity(uint64_t capacity_lines);

    /** Evicts everything. */
    void clear();

    /** Hits observed since construction or reset. */
    uint64_t hits() const { return hits_; }

    /** Accesses observed since construction or reset. */
    uint64_t accesses() const { return accesses_; }

    /** Resets statistics (contents are kept). */
    void resetStats();

  private:
    /**
     * One table slot: a resident line and its LRU list links (slot
     * indices). prev is kNil for the MRU entry, kEmpty for a free
     * slot; next is kNil for the LRU entry. 16 bytes, so probing
     * walks 4 slots per cache line and never leaves the table.
     */
    struct Entry
    {
        Addr addr;
        uint32_t prev;
        uint32_t next;
    };

    static constexpr uint32_t kNil = 0xFFFFFFFFu;   //!< List end.
    static constexpr uint32_t kEmpty = 0xFFFFFFFEu; //!< Free slot.

    uint32_t homeSlot(Addr addr) const;
    uint32_t findSlot(Addr addr) const; //!< Slot of addr, or the empty
                                        //!< slot where probing stopped.
    void moveToFront(uint32_t slot);
    void evictLru();
    void tableErase(uint32_t slot);     //!< Backward-shift deletion.
    void moveEntry(uint32_t from, uint32_t to);
    void growTable();

    uint64_t capacity_;
    uint64_t size_ = 0;
    uint64_t hits_ = 0;
    uint64_t accesses_ = 0;

    uint32_t head_ = kNil; //!< MRU slot.
    uint32_t tail_ = kNil; //!< LRU slot.

    std::vector<Entry> table_; //!< Open addressing, linear probing.
    uint32_t tableMask_ = 0;   //!< table_.size() - 1 (power of two).
};

} // namespace talus

#endif // TALUS_CACHE_FULLY_ASSOC_LRU_H
