/**
 * @file
 * Exact fully-associative LRU cache.
 *
 * Used for (i) the paper's "idealized partitioning on a fully-
 * associative cache" configuration (Talus+I/LRU, Fig. 8), where each
 * partition is one of these with an exact line-granularity capacity,
 * and (ii) as a reference model in tests.
 *
 * Capacity can be changed at runtime; shrinking evicts from the LRU
 * end, which is exactly how an idealized repartitioning behaves.
 */

#ifndef TALUS_CACHE_FULLY_ASSOC_LRU_H
#define TALUS_CACHE_FULLY_ASSOC_LRU_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "util/types.h"

namespace talus {

/** An exact, resizable, fully-associative LRU cache of line addresses. */
class FullyAssocLru
{
  public:
    /** Creates a cache holding up to @p capacity_lines lines. */
    explicit FullyAssocLru(uint64_t capacity_lines = 0);

    /**
     * Performs one access; inserts on miss (evicting the LRU line if
     * at capacity). Accesses with zero capacity always miss and do
     * not insert.
     *
     * @return true on hit.
     */
    bool access(Addr addr);

    /** True if @p addr is resident (no side effects). */
    bool contains(Addr addr) const;

    /** Current number of resident lines. */
    uint64_t size() const { return map_.size(); }

    /** Capacity in lines. */
    uint64_t capacity() const { return capacity_; }

    /**
     * Changes the capacity; shrinking evicts least-recently-used
     * lines immediately.
     */
    void setCapacity(uint64_t capacity_lines);

    /** Evicts everything. */
    void clear();

    /** Hits observed since construction or reset. */
    uint64_t hits() const { return hits_; }

    /** Accesses observed since construction or reset. */
    uint64_t accesses() const { return accesses_; }

    /** Resets statistics (contents are kept). */
    void resetStats();

  private:
    void evictLru();

    uint64_t capacity_;
    uint64_t hits_ = 0;
    uint64_t accesses_ = 0;
    std::list<Addr> lru_; //!< Front = MRU, back = LRU.
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
};

} // namespace talus

#endif // TALUS_CACHE_FULLY_ASSOC_LRU_H
