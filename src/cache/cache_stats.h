/**
 * @file
 * Per-partition access/hit/miss accounting for caches.
 *
 * Stats are kept per logical requester (PartId) so the multiprogram
 * engine can compute per-app MPKI, and cumulative counters can be
 * snapshotted to measure per-interval deltas during reconfiguration.
 */

#ifndef TALUS_CACHE_CACHE_STATS_H
#define TALUS_CACHE_CACHE_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/types.h"

namespace talus {

/** Cumulative cache statistics, tracked per partition id. */
class CacheStats
{
  public:
    /** Records one access by @p part; @p hit tells hit vs miss. */
    void record(PartId part, bool hit);

    /** Records an insertion that was bypassed (e.g., by PDP). */
    void recordBypass() { bypasses_++; }

    /** Records an eviction of a valid line. */
    void recordEviction() { evictions_++; }

    /** Folds @p n evictions accumulated by a batch kernel. */
    void addEvictions(uint64_t n) { evictions_ += n; }

    /**
     * Grows the per-partition counters to @p n slots up front, so a
     * batch kernel can record through raw pointers without the
     * per-access resize check. Counters for untouched slots stay 0,
     * exactly as the lazy path reports for never-seen partitions.
     */
    void ensureParts(size_t n)
    {
        if (n > accesses_.size()) {
            accesses_.resize(n, 0);
            hits_.resize(n, 0);
        }
    }

    /** Raw counter arrays for batch kernels; valid for the slots
     *  covered by the latest ensureParts() and invalidated by it. */
    uint64_t* accessesRaw() { return accesses_.data(); }
    uint64_t* hitsRaw() { return hits_.data(); }

    /** Accesses by partition @p part (0 if never seen). */
    uint64_t accesses(PartId part) const;

    /** Hits by partition @p part. */
    uint64_t hits(PartId part) const;

    /** Misses by partition @p part. */
    uint64_t misses(PartId part) const { return accesses(part) - hits(part); }

    /** Total accesses across partitions. */
    uint64_t totalAccesses() const;

    /** Total hits across partitions. */
    uint64_t totalHits() const;

    /** Total misses across partitions. */
    uint64_t totalMisses() const { return totalAccesses() - totalHits(); }

    /** Total bypassed insertions. */
    uint64_t bypasses() const { return bypasses_; }

    /** Total evictions. */
    uint64_t evictions() const { return evictions_; }

    /** Number of partition slots currently tracked. */
    size_t numParts() const { return accesses_.size(); }

    /** Resets all counters to zero. */
    void reset();

  private:
    void ensure(PartId part);

    std::vector<uint64_t> accesses_;
    std::vector<uint64_t> hits_;
    uint64_t bypasses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace talus

#endif // TALUS_CACHE_CACHE_STATS_H
