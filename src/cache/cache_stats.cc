#include "cache/cache_stats.h"

#include "util/log.h"

namespace talus {

void
CacheStats::ensure(PartId part)
{
    talus_assert(part != kNoPart, "stats for the unmanaged sentinel");
    if (part >= accesses_.size()) {
        accesses_.resize(part + 1, 0);
        hits_.resize(part + 1, 0);
    }
}

void
CacheStats::record(PartId part, bool hit)
{
    ensure(part);
    accesses_[part]++;
    if (hit)
        hits_[part]++;
}

uint64_t
CacheStats::accesses(PartId part) const
{
    return part < accesses_.size() ? accesses_[part] : 0;
}

uint64_t
CacheStats::hits(PartId part) const
{
    return part < hits_.size() ? hits_[part] : 0;
}

uint64_t
CacheStats::totalAccesses() const
{
    uint64_t total = 0;
    for (uint64_t a : accesses_)
        total += a;
    return total;
}

uint64_t
CacheStats::totalHits() const
{
    uint64_t total = 0;
    for (uint64_t h : hits_)
        total += h;
    return total;
}

void
CacheStats::reset()
{
    accesses_.assign(accesses_.size(), 0);
    hits_.assign(hits_.size(), 0);
    bypasses_ = 0;
    evictions_ = 0;
}

} // namespace talus
