/**
 * @file
 * Set-associative cache model with pluggable replacement policy and
 * partitioning scheme.
 *
 * This is the workhorse substrate: the LLC in every experiment is an
 * instance of this class (possibly wrapped by partition/ and core/
 * layers). The model is trace-driven and tracks tags only — there is
 * no data array, since Talus and all evaluated policies depend only on
 * hit/miss behaviour.
 *
 * Geometry notes:
 *  - Lines are identified by flat index `set * numWays + way`.
 *  - Set indices are computed by hashing the line address ("hashed
 *    cache", which the paper's Assumption 3 relies on); tests can
 *    disable hashing for determinism.
 */

#ifndef TALUS_CACHE_SET_ASSOC_CACHE_H
#define TALUS_CACHE_SET_ASSOC_CACHE_H

#include <memory>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/repl_policy.h"
#include "cache/scheme.h"
#include "util/aligned.h"
#include "util/types.h"

namespace talus {

/** A trace-driven set-associative cache. */
class SetAssocCache
{
  public:
    /** Geometry and behaviour configuration. */
    struct Config
    {
        uint32_t numSets = 1024;     //!< Number of sets (any positive value).
        uint32_t numWays = 16;       //!< Associativity; at most kMaxWays.
        /**
         * Hash addresses to sets instead of bit selection. Bit
         * selection (the default, as in real LLC indexing) maps
         * sequential scans perfectly evenly across sets, which keeps
         * cliffs as sharp as the paper's zsim curves; hashing spreads
         * pathological strides but Poisson-smears scans.
         */
        bool hashSetIndex = false;
        uint64_t hashSeed = 0xC0FFEE; //!< Seed for the set-index hash.
    };

    /** Maximum supported associativity. */
    static constexpr uint32_t kMaxWays = 256;

    /**
     * Tag stored by invalid lines. The cache maintains the invariant
     * "valid_[line] == 0 implies tags_[line] == kInvalidTag", which
     * lets batch kernels probe and find invalid ways with a single
     * scan of the tag array. Accesses to this address are rejected
     * (it is not a representable line address: it would alias the
     * sentinel once inserted).
     */
    static constexpr Addr kInvalidTag = ~0ull;

    /**
     * Builds a cache.
     *
     * @param config Geometry.
     * @param policy Replacement policy (required, owned).
     * @param scheme Partitioning scheme (optional, owned); when null
     *               the cache is unpartitioned but still records
     *               per-PartId statistics.
     */
    SetAssocCache(const Config& config, std::unique_ptr<ReplPolicy> policy,
                  std::unique_ptr<PartitionScheme> scheme = nullptr);

    /**
     * Performs one access.
     *
     * @param addr Line address.
     * @param part Requesting partition (or app id when unpartitioned).
     * @return true on hit.
     */
    bool access(Addr addr, PartId part = 0);

    /** Looks up @p addr without side effects; returns line or -1. */
    int64_t probe(Addr addr, PartId part = 0) const;

    /** Number of sets. */
    uint32_t numSets() const { return numSets_; }

    /** Associativity. */
    uint32_t numWays() const { return numWays_; }

    /** Total lines (numSets * numWays). */
    uint32_t numLines() const { return numSets_ * numWays_; }

    /** True if @p line holds valid data. */
    bool lineValid(uint32_t line) const { return valid_[line] != 0; }

    /** Tag (line address) stored in @p line; undefined if invalid. */
    Addr lineTag(uint32_t line) const { return tags_[line]; }

    /** Partition owning @p line (kNoPart = unmanaged). */
    PartId linePart(uint32_t line) const { return parts_[line]; }

    /** Re-tags @p line to partition @p part (Vantage demote/promote). */
    void setLinePart(uint32_t line, PartId part)
    {
        parts_[line] = part;
        mutationEpoch_++;
    }

    /**
     * Counter bumped by every mutation that goes through the generic
     * access()/invalidate paths. Batch kernels that mirror line state
     * (e.g. per-set occupancy masks) compare it against the value at
     * their last rebuild: equal means no one else touched the arrays.
     * Kernels writing through lineArrays() must NOT bump it — their
     * mirrors already reflect those writes.
     */
    uint64_t mutationEpoch() const { return mutationEpoch_; }

    /**
     * Mutable raw view over the line arrays for fused batch kernels
     * (SchemePartitionedCache). A kernel using it must preserve the
     * same invariants access() does: valid lines carry their tag and
     * owning partition, and every scheme/policy counter it bypasses
     * is updated inline. Pointers are stable for the cache's lifetime.
     */
    struct LineArrays
    {
        Addr* tags;
        uint8_t* valid;
        PartId* parts;
    };
    LineArrays lineArrays()
    {
        return {tags_.data(), valid_.data(), parts_.data()};
    }

    /** True when set indices hash the address (vs bit selection). */
    bool hashSetIndex() const { return hashSetIndex_; }

    /** Seed of the set-index hash. */
    uint64_t hashSeed() const { return hashSeed_; }

    /** Invalidates one line, notifying the scheme. */
    void invalidateLine(uint32_t line);

    /** Invalidates the whole cache and resets policy state. */
    void invalidateAll();

    /** Default hashed set index over the full cache. */
    uint32_t defaultSetIndex(Addr addr) const;

    /** Counts valid lines owned by @p part (O(lines); for tests). */
    uint64_t countLines(PartId part) const;

    /** Forwards per-partition target sizes to the scheme. */
    void setTargets(const std::vector<uint64_t>& lines);

    /** Access statistics. */
    CacheStats& stats() { return stats_; }
    const CacheStats& stats() const { return stats_; }

    /** The replacement policy (never null). */
    ReplPolicy& policy() { return *policy_; }

    /** The partitioning scheme, or nullptr if unpartitioned. */
    PartitionScheme* scheme() { return scheme_.get(); }
    const PartitionScheme* scheme() const { return scheme_.get(); }

  private:
    uint32_t setIndexFor(Addr addr, PartId part) const;

    uint32_t numSets_;
    uint32_t numWays_;
    bool hashSetIndex_;
    uint64_t hashSeed_;

    // Cache-line-aligned so every per-set row starts on a line
    // boundary: the fused kernel's 128-byte tag/owner rows then touch
    // exactly two lines (see util/aligned.h).
    CacheAlignedVec<Addr> tags_;
    CacheAlignedVec<uint8_t> valid_;
    CacheAlignedVec<PartId> parts_;
    uint64_t mutationEpoch_ = 0;

    std::unique_ptr<ReplPolicy> policy_;
    std::unique_ptr<PartitionScheme> scheme_;
    CacheStats stats_;
};

} // namespace talus

#endif // TALUS_CACHE_SET_ASSOC_CACHE_H
