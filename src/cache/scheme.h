/**
 * @file
 * Abstract cache partitioning scheme interface.
 *
 * A PartitionScheme constrains where lines of each software partition
 * may live and which lines may be evicted on behalf of which
 * partition. Concrete schemes (way, set, Vantage, unpartitioned) live
 * in src/partition/. Like ReplPolicy, the interface lives in cache/
 * because SetAssocCache drives it.
 */

#ifndef TALUS_CACHE_SCHEME_H
#define TALUS_CACHE_SCHEME_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace talus {

class ReplPolicy;
class SetAssocCache;

/**
 * Partitioning scheme for a set-associative cache.
 *
 * The cache calls selectVictim() only when the target set has no
 * invalid way; the scheme picks among the set's valid lines, typically
 * by filtering candidates and delegating the final choice to the
 * replacement policy.
 */
class PartitionScheme
{
  public:
    virtual ~PartitionScheme() = default;

    /** Binds the scheme to its cache; called once at cache creation. */
    virtual void init(SetAssocCache* cache) = 0;

    /** Number of partitions this scheme is configured for. */
    virtual uint32_t numPartitions() const = 0;

    /**
     * Sets per-partition target sizes in lines. Schemes enforce these
     * as well as their mechanism allows (exactly for way partitioning
     * after coarsening; approximately for Vantage).
     */
    virtual void setTargets(const std::vector<uint64_t>& lines) = 0;

    /** Target size of partition @p part in lines, after coarsening. */
    virtual uint64_t target(PartId part) const = 0;

    /** Actual occupancy of partition @p part in lines, if tracked. */
    virtual uint64_t occupancy(PartId part) const = 0;

    /**
     * Maps an address accessed by @p part to a set index. The default
     * (whole-cache hashing) is overridden by set partitioning.
     */
    virtual uint32_t setIndex(Addr addr, PartId part) const;

    /**
     * Chooses a victim line in @p set for an insertion by @p part,
     * or kBypassLine if the partition cannot insert (e.g., zero ways).
     */
    virtual uint32_t selectVictim(uint32_t set, PartId part,
                                  ReplPolicy& policy) = 0;

    /** Notification: @p line was filled on behalf of @p part. */
    virtual void onInsert(uint32_t line, PartId part)
    {
        (void)line;
        (void)part;
    }

    /** Notification: valid @p line owned by @p owner was evicted. */
    virtual void onEvict(uint32_t line, PartId owner)
    {
        (void)line;
        (void)owner;
    }

    /** Notification: @p line owned by @p owner hit for @p part. */
    virtual void onHit(uint32_t line, PartId owner, PartId part)
    {
        (void)line;
        (void)owner;
        (void)part;
    }

    /** Human-readable scheme name, for bench output. */
    virtual const char* name() const = 0;

  protected:
    SetAssocCache* cache_ = nullptr;
};

} // namespace talus

#endif // TALUS_CACHE_SCHEME_H
