#include "cache/set_assoc_cache.h"

#include "util/bits.h"
#include "util/log.h"

namespace talus {

// Default scheme set-index: whole-cache hashing, same as an
// unpartitioned cache. Defined here (not in scheme.h) so the interface
// header stays free of SetAssocCache's definition.
uint32_t
PartitionScheme::setIndex(Addr addr, PartId part) const
{
    (void)part;
    talus_assert(cache_ != nullptr, "scheme used before init()");
    return cache_->defaultSetIndex(addr);
}

SetAssocCache::SetAssocCache(const Config& config,
                             std::unique_ptr<ReplPolicy> policy,
                             std::unique_ptr<PartitionScheme> scheme)
    : numSets_(config.numSets), numWays_(config.numWays),
      hashSetIndex_(config.hashSetIndex), hashSeed_(config.hashSeed),
      policy_(std::move(policy)), scheme_(std::move(scheme))
{
    talus_assert(numSets_ > 0, "cache needs at least one set");
    talus_assert(numWays_ > 0 && numWays_ <= kMaxWays,
                 "associativity must be in [1, ", kMaxWays, "], got ",
                 numWays_);
    talus_assert(policy_ != nullptr, "cache needs a replacement policy");

    const size_t lines = static_cast<size_t>(numSets_) * numWays_;
    tags_.assign(lines, kInvalidTag);
    valid_.assign(lines, 0);
    parts_.assign(lines, kNoPart);

    policy_->init(numSets_, numWays_);
    if (scheme_)
        scheme_->init(this);
}

uint32_t
SetAssocCache::defaultSetIndex(Addr addr) const
{
    uint64_t h = hashSetIndex_ ? mix64(addr ^ hashSeed_) : addr;
    if ((numSets_ & (numSets_ - 1)) == 0)
        return static_cast<uint32_t>(h & (numSets_ - 1));
    return static_cast<uint32_t>(h % numSets_);
}

uint32_t
SetAssocCache::setIndexFor(Addr addr, PartId part) const
{
    if (scheme_)
        return scheme_->setIndex(addr, part);
    return defaultSetIndex(addr);
}

bool
SetAssocCache::access(Addr addr, PartId part)
{
    talus_assert(addr != kInvalidTag,
                 "address aliases the invalid-tag sentinel");
    mutationEpoch_++;
    policy_->onAccess(addr, part);

    const uint32_t set = setIndexFor(addr, part);
    talus_assert(set < numSets_, "scheme produced bad set index ", set);
    const uint32_t base = set * numWays_;

    // Probe for a hit.
    for (uint32_t w = 0; w < numWays_; ++w) {
        const uint32_t line = base + w;
        if (valid_[line] && tags_[line] == addr) {
            stats_.record(part, true);
            policy_->onHit(line, addr, part);
            if (scheme_)
                scheme_->onHit(line, parts_[line], part);
            return true;
        }
    }

    // Miss.
    stats_.record(part, false);
    policy_->onMiss(addr, set, part);

    uint32_t victim = kBypassLine;
    if (scheme_) {
        // Schemes handle both invalid ways and valid victims so that
        // placement restrictions (e.g., way masks) are respected.
        victim = scheme_->selectVictim(set, part, *policy_);
    } else {
        // Unpartitioned: prefer an invalid way, else ask the policy.
        uint32_t cands[kMaxWays];
        uint32_t n = 0;
        for (uint32_t w = 0; w < numWays_; ++w) {
            const uint32_t line = base + w;
            if (!valid_[line]) {
                victim = line;
                break;
            }
            cands[n++] = line;
        }
        if (victim == kBypassLine && n > 0)
            victim = policy_->victim(cands, n);
    }

    if (victim == kBypassLine) {
        stats_.recordBypass();
        return false;
    }

    talus_assert(victim / numWays_ == set,
                 "victim line ", victim, " outside target set ", set);

    if (valid_[victim]) {
        stats_.recordEviction();
        if (scheme_)
            scheme_->onEvict(victim, parts_[victim]);
    }

    tags_[victim] = addr;
    valid_[victim] = 1;
    parts_[victim] = part;
    policy_->onInsert(victim, addr, part);
    if (scheme_)
        scheme_->onInsert(victim, part);
    return false;
}

int64_t
SetAssocCache::probe(Addr addr, PartId part) const
{
    const uint32_t set = setIndexFor(addr, part);
    const uint32_t base = set * numWays_;
    for (uint32_t w = 0; w < numWays_; ++w) {
        const uint32_t line = base + w;
        if (valid_[line] && tags_[line] == addr)
            return line;
    }
    return -1;
}

void
SetAssocCache::invalidateLine(uint32_t line)
{
    talus_assert(line < numLines(), "invalidateLine out of range");
    mutationEpoch_++;
    if (valid_[line]) {
        stats_.recordEviction();
        if (scheme_)
            scheme_->onEvict(line, parts_[line]);
        valid_[line] = 0;
        tags_[line] = kInvalidTag;
        parts_[line] = kNoPart;
    }
}

void
SetAssocCache::invalidateAll()
{
    mutationEpoch_++;
    for (uint32_t line = 0; line < numLines(); ++line) {
        if (valid_[line]) {
            if (scheme_)
                scheme_->onEvict(line, parts_[line]);
            valid_[line] = 0;
            tags_[line] = kInvalidTag;
            parts_[line] = kNoPart;
        }
    }
    policy_->init(numSets_, numWays_);
}

uint64_t
SetAssocCache::countLines(PartId part) const
{
    uint64_t count = 0;
    for (uint32_t line = 0; line < numLines(); ++line) {
        if (valid_[line] && parts_[line] == part)
            count++;
    }
    return count;
}

void
SetAssocCache::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(scheme_ != nullptr,
                 "setTargets on an unpartitioned cache");
    scheme_->setTargets(lines);
}

} // namespace talus
