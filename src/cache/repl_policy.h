/**
 * @file
 * Abstract replacement policy interface.
 *
 * A ReplPolicy owns per-line metadata for one SetAssocCache. Lines are
 * identified by a flat index `set * numWays + way`. The cache drives
 * the policy through the hooks below; concrete policies (LRU, RRIP
 * family, DIP, PDP, ...) live in src/policy/.
 *
 * The interface lives in cache/ (not policy/) because SetAssocCache
 * calls it; this keeps the library layering acyclic.
 */

#ifndef TALUS_CACHE_REPL_POLICY_H
#define TALUS_CACHE_REPL_POLICY_H

#include <cstdint>

#include "util/types.h"

namespace talus {

/** Returned by victim() to request that the insertion be dropped. */
constexpr uint32_t kBypassLine = ~0u;

/**
 * Replacement policy for a set-associative cache.
 *
 * Policies must be usable with any number of partitions; partition-
 * aware policies (e.g., TA-DRRIP) key their state on the PartId passed
 * to the hooks.
 */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /**
     * Binds the policy to a cache geometry and allocates state.
     * Called once by the owning cache before any other hook.
     */
    virtual void init(uint32_t num_sets, uint32_t num_ways) = 0;

    /** Observes every access (hit or miss), before resolution. */
    virtual void onAccess(Addr addr, PartId part)
    {
        (void)addr;
        (void)part;
    }

    /** Called when @p line hits on an access to @p addr. */
    virtual void onHit(uint32_t line, Addr addr, PartId part) = 0;

    /**
     * Called on a miss, before victim selection, with the set that
     * will receive the line. Set-dueling policies update their PSEL
     * counters here.
     */
    virtual void onMiss(Addr addr, uint32_t set, PartId part)
    {
        (void)addr;
        (void)set;
        (void)part;
    }

    /** Called when the new line is written into @p line. */
    virtual void onInsert(uint32_t line, Addr addr, PartId part) = 0;

    /**
     * Picks the victim among @p n candidate lines (all valid).
     * May return kBypassLine to drop the insertion instead (PDP).
     * May mutate internal state (e.g., RRIP aging).
     */
    virtual uint32_t victim(const uint32_t* cands, uint32_t n) = 0;

    /** Interval hook for policies with periodic recomputation (PDP). */
    virtual void nextInterval() {}

    /**
     * Per-line rank keys, when victim() is exactly "argmin of a
     * per-line key over the candidates, first minimum wins" (LRU:
     * timestamps). Schemes use this to fuse candidate collection and
     * victim selection into one pass — bit-exact with building the
     * candidate array in way order and calling victim(), because both
     * take the first strict minimum in the same order. Policies with
     * stateful victim selection (RRIP aging, PDP bypass) return
     * nullptr and keep the two-pass path.
     */
    virtual const uint64_t* rankKeys() const { return nullptr; }

    /** Human-readable policy name, for bench output. */
    virtual const char* name() const = 0;
};

} // namespace talus

#endif // TALUS_CACHE_REPL_POLICY_H
