#include "cache/fully_assoc_lru.h"

namespace talus {

FullyAssocLru::FullyAssocLru(uint64_t capacity_lines)
    : capacity_(capacity_lines)
{
}

bool
FullyAssocLru::access(Addr addr)
{
    accesses_++;
    auto it = map_.find(addr);
    if (it != map_.end()) {
        hits_++;
        lru_.splice(lru_.begin(), lru_, it->second);
        return true;
    }
    if (capacity_ == 0)
        return false;
    while (map_.size() >= capacity_)
        evictLru();
    lru_.push_front(addr);
    map_.emplace(addr, lru_.begin());
    return false;
}

bool
FullyAssocLru::contains(Addr addr) const
{
    return map_.find(addr) != map_.end();
}

void
FullyAssocLru::setCapacity(uint64_t capacity_lines)
{
    capacity_ = capacity_lines;
    while (map_.size() > capacity_)
        evictLru();
}

void
FullyAssocLru::clear()
{
    lru_.clear();
    map_.clear();
}

void
FullyAssocLru::resetStats()
{
    hits_ = 0;
    accesses_ = 0;
}

void
FullyAssocLru::evictLru()
{
    map_.erase(lru_.back());
    lru_.pop_back();
}

} // namespace talus
