#include "cache/fully_assoc_lru.h"

#include "util/bits.h"
#include "util/log.h"

namespace talus {

namespace {

constexpr uint32_t kMinTableSize = 16;

} // namespace

FullyAssocLru::FullyAssocLru(uint64_t capacity_lines)
    : capacity_(capacity_lines),
      table_(kMinTableSize, Entry{0, kEmpty, 0}),
      tableMask_(kMinTableSize - 1)
{
}

uint32_t
FullyAssocLru::homeSlot(Addr addr) const
{
    // Fibonacci hashing: one multiply spreads sequential and strided
    // line addresses across the power-of-two table.
    return static_cast<uint32_t>(
               (addr * 0x9E3779B97F4A7C15ull) >> 32) &
           tableMask_;
}

uint32_t
FullyAssocLru::findSlot(Addr addr) const
{
    uint32_t slot = homeSlot(addr);
    while (table_[slot].prev != kEmpty && table_[slot].addr != addr)
        slot = (slot + 1) & tableMask_;
    return slot;
}

bool
FullyAssocLru::access(Addr addr)
{
    accesses_++;
    // If this access misses, eviction will need the tail entry — the
    // coldest data in the structure. Start fetching it now so the
    // load overlaps the lookup probe.
    const bool at_capacity = size_ >= capacity_ && tail_ != kNil;
    if (at_capacity)
        prefetch(&table_[tail_]);
    const uint32_t slot = findSlot(addr);
    if (table_[slot].prev != kEmpty) {
        hits_++;
        moveToFront(slot);
        return true;
    }
    if (capacity_ == 0)
        return false;

    // Insert first, straight into the empty slot the lookup probe
    // already found, then trim to capacity: the new line is at MRU so
    // it can never be the one evicted, and reusing the probe avoids a
    // second walk of the cluster.
    table_[slot] = Entry{addr, kNil, head_};
    if (head_ != kNil)
        table_[head_].prev = slot;
    head_ = slot;
    if (tail_ == kNil)
        tail_ = slot;
    size_++;

    if (size_ * 4 > static_cast<uint64_t>(tableMask_ + 1) * 3)
        growTable();
    while (size_ > capacity_)
        evictLru();
    return false;
}

bool
FullyAssocLru::contains(Addr addr) const
{
    return table_[findSlot(addr)].prev != kEmpty;
}

void
FullyAssocLru::setCapacity(uint64_t capacity_lines)
{
    capacity_ = capacity_lines;
    while (size_ > capacity_)
        evictLru();
}

void
FullyAssocLru::clear()
{
    table_.assign(kMinTableSize, Entry{0, kEmpty, 0});
    tableMask_ = kMinTableSize - 1;
    head_ = tail_ = kNil;
    size_ = 0;
}

void
FullyAssocLru::resetStats()
{
    hits_ = 0;
    accesses_ = 0;
}

void
FullyAssocLru::moveToFront(uint32_t slot)
{
    if (head_ == slot)
        return;
    Entry& e = table_[slot];
    table_[e.prev].next = e.next; // Not MRU, so e.prev is a slot.
    if (e.next != kNil)
        table_[e.next].prev = e.prev;
    else
        tail_ = e.prev;
    e.prev = kNil;
    e.next = head_;
    table_[head_].prev = slot;
    head_ = slot;
}

void
FullyAssocLru::evictLru()
{
    talus_assert(tail_ != kNil, "evicting from an empty cache");
    const uint32_t slot = tail_;
    const uint32_t new_tail = table_[slot].prev;
    if (new_tail != kNil)
        table_[new_tail].next = kNil;
    else
        head_ = kNil;
    tail_ = new_tail;
    size_--;
    tableErase(slot);
}

void
FullyAssocLru::moveEntry(uint32_t from, uint32_t to)
{
    // Relocates an entry during backward-shift, repairing the list
    // links (and head/tail) that name its old slot.
    const Entry e = table_[from];
    table_[to] = e;
    table_[from].prev = kEmpty;
    if (e.prev != kNil)
        table_[e.prev].next = to;
    else
        head_ = to;
    if (e.next != kNil)
        table_[e.next].prev = to;
    else
        tail_ = to;
}

void
FullyAssocLru::tableErase(uint32_t slot)
{
    // Backward-shift deletion keeps linear probing tombstone-free:
    // walk the cluster after the hole and pull back any entry whose
    // home slot is outside the (hole, entry] probe interval.
    table_[slot].prev = kEmpty;
    uint32_t hole = slot;
    uint32_t i = slot;
    for (;;) {
        i = (i + 1) & tableMask_;
        if (table_[i].prev == kEmpty)
            return;
        const uint32_t home = homeSlot(table_[i].addr);
        const bool reachable =
            (i > hole) ? (home > hole && home <= i)
                       : (home > hole || home <= i);
        if (!reachable) {
            moveEntry(i, hole);
            hole = i;
        }
    }
}

void
FullyAssocLru::growTable()
{
    std::vector<Entry> old = std::move(table_);
    const uint32_t old_head = head_;
    const uint32_t new_size = static_cast<uint32_t>(old.size()) * 2;
    table_.assign(new_size, Entry{0, kEmpty, 0});
    tableMask_ = new_size - 1;

    // Walk the old list MRU->LRU and rebuild table and links together.
    head_ = tail_ = kNil;
    uint32_t prev_slot = kNil;
    for (uint32_t cur = old_head; cur != kNil; cur = old[cur].next) {
        const uint32_t slot = findSlot(old[cur].addr);
        table_[slot] = Entry{old[cur].addr, prev_slot, kNil};
        if (prev_slot != kNil)
            table_[prev_slot].next = slot;
        else
            head_ = slot;
        prev_slot = slot;
    }
    tail_ = prev_slot;
}

} // namespace talus
