#include "monitor/mattson_curve.h"

#include "util/log.h"

namespace talus {

MattsonCurve::MattsonCurve(uint64_t max_lines)
    : maxLines_(max_lines), hist_(max_lines, 0)
{
    talus_assert(max_lines >= 1, "need at least one line of range");
}

void
MattsonCurve::access(Addr addr)
{
    accesses_++;
    const uint64_t d = counter_.access(addr);
    if (d < maxLines_)
        hist_[d]++;
    else
        overflowOrCold_++; // Includes cold misses (d == kCold).
}

uint64_t
MattsonCurve::missesAt(uint64_t size) const
{
    talus_assert(size <= maxLines_, "size ", size, " beyond histogram (",
                 maxLines_, ")");
    // An access with stack distance d hits iff d < size.
    uint64_t hits = 0;
    for (uint64_t d = 0; d < size; ++d)
        hits += hist_[d];
    return accesses_ - hits;
}

MissCurve
MattsonCurve::curve(uint64_t step) const
{
    talus_assert(step >= 1, "step must be >= 1");
    std::vector<CurvePoint> pts;
    const double total =
        accesses_ > 0 ? static_cast<double>(accesses_) : 1.0;

    uint64_t hits = 0;
    uint64_t d = 0;
    for (uint64_t size = 0; size <= maxLines_; size += step) {
        // Accumulate hits for distances in [previous size, size).
        for (; d < size && d < maxLines_; ++d)
            hits += hist_[d];
        pts.push_back({static_cast<double>(size),
                       static_cast<double>(accesses_ - hits) / total});
        if (size == maxLines_)
            break;
        if (size + step > maxLines_ && size != maxLines_) {
            // Always include the final point at maxLines_.
            for (; d < maxLines_; ++d)
                hits += hist_[d];
            pts.push_back({static_cast<double>(maxLines_),
                           static_cast<double>(accesses_ - hits) / total});
            break;
        }
    }
    return MissCurve(std::move(pts));
}

void
MattsonCurve::reset()
{
    counter_.reset();
    hist_.assign(hist_.size(), 0);
    overflowOrCold_ = 0;
    accesses_ = 0;
}

} // namespace talus
