#include "monitor/umon.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

UMon::UMon(const Config& config)
    : cfg_(config), hash_(32, config.seed)
{
    talus_assert(cfg_.ways >= 1, "UMON needs at least one way");
    talus_assert(cfg_.sets >= 1, "UMON needs at least one set");
    talus_assert(cfg_.modeledLines >= 1, "UMON must model a real cache");

    // An unsampled monitor models exactly ways*sets lines, so when the
    // modeled cache is smaller than the configured array the array
    // must shrink to match — otherwise the monitor would report the
    // behaviour of a larger cache than it claims to model.
    if (cfg_.modeledLines < static_cast<uint64_t>(cfg_.ways) * cfg_.sets) {
        if (cfg_.modeledLines < cfg_.ways) {
            cfg_.ways = static_cast<uint32_t>(cfg_.modeledLines);
            cfg_.sets = 1;
        } else {
            cfg_.sets = static_cast<uint32_t>(
                std::max<uint64_t>(1, cfg_.modeledLines / cfg_.ways));
        }
    }

    const uint64_t monitor_lines =
        static_cast<uint64_t>(cfg_.ways) * cfg_.sets;
    sampleThreshold_ =
        cfg_.modeledLines <= monitor_lines
            ? 1.0
            : static_cast<double>(monitor_lines) /
                  static_cast<double>(cfg_.modeledLines);
    // hash/2^32 < threshold  <=>  hash < threshold*2^32: scaling by a
    // power of two is exact, so the prescaled compare samples the
    // exact same addresses as the hashUnit() form did.
    sampleLimit_ =
        sampleThreshold_ * static_cast<double>(hash_.range());
    sampleLimitInt_ =
        static_cast<uint64_t>(std::ceil(sampleLimit_));
    setsArePow2_ = (cfg_.sets & (cfg_.sets - 1)) == 0;
    setMask_ = cfg_.sets - 1;
    tags_.assign(monitor_lines, kInvalidTag);
    wayHits_.assign(cfg_.ways, 0);
}

void
UMon::accessSampled(Addr addr, uint32_t h)
{
    sampled_++;

    const uint32_t set = setsArePow2_ ? (h & setMask_) : (h % cfg_.sets);
    Addr* way0 = &tags_[static_cast<size_t>(set) * cfg_.ways];

    // Find the address's LRU stack position, if resident.
    uint32_t pos = cfg_.ways;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        if (way0[w] == addr) {
            pos = w;
            break;
        }
    }

    if (pos < cfg_.ways) {
        // Hit at stack position pos: this access would hit in any
        // cache of > pos monitor-way-equivalents.
        wayHits_[pos]++;
        for (uint32_t w = pos; w > 0; --w)
            way0[w] = way0[w - 1];
        way0[0] = addr;
    } else {
        // Miss: insert at MRU, dropping the LRU tag.
        for (uint32_t w = cfg_.ways - 1; w > 0; --w)
            way0[w] = way0[w - 1];
        way0[0] = addr;
    }
}

MissCurve
UMon::curve() const
{
    const double granularity =
        static_cast<double>(cfg_.modeledLines) / cfg_.ways;
    const double total =
        sampled_ > 0 ? static_cast<double>(sampled_) : 1.0;

    std::vector<CurvePoint> pts;
    pts.reserve(cfg_.ways + 1);
    uint64_t hits = 0;
    pts.push_back({0.0, 1.0});
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        hits += wayHits_[w];
        pts.push_back({granularity * (w + 1),
                       static_cast<double>(sampled_ - hits) / total});
    }
    return MissCurve(std::move(pts));
}

void
UMon::decay()
{
    for (auto& h : wayHits_)
        h /= 2;
    sampled_ /= 2;
}

void
UMon::reset()
{
    tags_.assign(tags_.size(), kInvalidTag);
    wayHits_.assign(wayHits_.size(), 0);
    sampled_ = 0;
}

} // namespace talus
