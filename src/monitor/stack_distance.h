/**
 * @file
 * Exact LRU stack-distance computation in O(log n) per access.
 *
 * The LRU stack distance of an access is the number of distinct
 * other addresses touched since the previous access to the same
 * address; under fully-associative LRU, an access hits at cache size
 * s iff its stack distance is < s (Mattson's stack algorithm). This
 * is the idealized reference against which the UMON hardware model is
 * validated, and the fast path for exact LRU miss curves in benches.
 *
 * Implementation: classic time-stamp + Fenwick-tree trick. Each
 * address's most recent access time is marked in a Fenwick tree;
 * the distance is the count of marks after the address's previous
 * time. Time indices are compacted periodically so memory stays
 * proportional to the number of distinct addresses.
 */

#ifndef TALUS_MONITOR_STACK_DISTANCE_H
#define TALUS_MONITOR_STACK_DISTANCE_H

#include <cstdint>
#include <unordered_map>

#include "util/fenwick.h"
#include "util/types.h"

namespace talus {

/** Streams accesses, reporting each access's exact LRU stack distance. */
class StackDistanceCounter
{
  public:
    /** Distance reported for first-ever (cold) accesses. */
    static constexpr uint64_t kCold = ~0ull;

    StackDistanceCounter();

    /**
     * Records one access and returns its stack distance (0 for an
     * immediate re-access, kCold for a first access).
     */
    uint64_t access(Addr addr);

    /** Number of distinct addresses seen so far. */
    uint64_t distinctAddrs() const { return lastTime_.size(); }

    /** Clears all state. */
    void reset();

  private:
    void compact();

    Fenwick marks_;
    std::unordered_map<Addr, uint64_t> lastTime_;
    uint64_t now_ = 0;
};

} // namespace talus

#endif // TALUS_MONITOR_STACK_DISTANCE_H
