#include "monitor/policy_monitor.h"

#include <algorithm>

#include "policy/policy_factory.h"
#include "util/log.h"

namespace talus {

PolicyMonitorArray::PolicyMonitorArray(const Config& config)
    : cfg_(config), sampleHash_(32, config.seed)
{
    talus_assert(!cfg_.modeledSizes.empty(),
                 "policy monitor needs target sizes");
    talus_assert(cfg_.ways >= 1 && cfg_.monitorLines >= cfg_.ways,
                 "monitor geometry invalid");

    uint64_t salt = 1;
    for (uint64_t size : cfg_.modeledSizes) {
        talus_assert(size >= 1, "modeled size must be >= 1 line");
        Monitor mon;
        mon.modeledLines = size;
        // Small targets use a truncated array with no sampling;
        // larger targets sample at monitorLines / size.
        const uint64_t eff_lines =
            std::min<uint64_t>(cfg_.monitorLines, size);
        const uint32_t ways =
            static_cast<uint32_t>(std::min<uint64_t>(cfg_.ways, eff_lines));
        mon.threshold =
            size <= eff_lines
                ? 1.0
                : static_cast<double>(eff_lines) / static_cast<double>(size);

        SetAssocCache::Config cc;
        cc.numWays = ways;
        cc.numSets = static_cast<uint32_t>(
            std::max<uint64_t>(1, eff_lines / ways));
        cc.hashSeed = cfg_.seed ^ (salt * 0x9E3779B97F4A7C15ull);
        mon.cache = std::make_unique<SetAssocCache>(
            cc, makePolicy(cfg_.policyName, cfg_.seed + salt));
        monitors_.push_back(std::move(mon));
        salt++;
    }
}

void
PolicyMonitorArray::access(Addr addr)
{
    // Each monitor samples its own slice; rates differ per modeled
    // size, so the same address may be sampled by several monitors.
    const double unit = sampleHash_.hashUnit(addr);
    for (Monitor& mon : monitors_) {
        if (unit < mon.threshold)
            mon.cache->access(addr, 0);
    }
}

MissCurve
PolicyMonitorArray::curve() const
{
    std::vector<CurvePoint> pts;
    pts.reserve(monitors_.size() + 1);
    pts.push_back({0.0, 1.0});
    for (const Monitor& mon : monitors_) {
        const auto& stats = mon.cache->stats();
        const uint64_t acc = stats.totalAccesses();
        const double ratio =
            acc > 0 ? static_cast<double>(stats.totalMisses()) /
                          static_cast<double>(acc)
                    : 1.0;
        pts.push_back({static_cast<double>(mon.modeledLines), ratio});
    }
    return MissCurve(std::move(pts)).monotoneClamped();
}

uint64_t
PolicyMonitorArray::stateBytes() const
{
    uint64_t lines = 0;
    for (const Monitor& mon : monitors_)
        lines += mon.cache->numLines();
    return lines * 4; // 32-bit tags.
}

void
PolicyMonitorArray::reset()
{
    for (Monitor& mon : monitors_) {
        mon.cache->invalidateAll();
        mon.cache->stats().reset();
    }
}

} // namespace talus
