/**
 * @file
 * Combined UMON with 4x LLC-size coverage (Sec. VI-C, "Miss curve
 * coverage").
 *
 * A conventional UMON only resolves the miss curve up to the LLC
 * size, so Talus could not trace convex hulls whose beta vertex lies
 * beyond it (e.g., libquantum's 32MB cliff seen from an 8MB LLC).
 * The paper adds a second monitor sampling at 1:16 of the primary's
 * rate: with only 16 ways it models 4x the LLC capacity at LLC/4
 * granularity. This class owns both monitors and merges their curves.
 */

#ifndef TALUS_MONITOR_COMBINED_UMON_H
#define TALUS_MONITOR_COMBINED_UMON_H

#include <vector>

#include "monitor/umon.h"
#include "util/span.h"

namespace talus {

/** Primary + low-rate-sampled UMON pair with merged miss curves. */
class CombinedUMon
{
  public:
    /** Configuration for the pair. */
    struct Config
    {
        uint64_t llcLines = 1 << 17; //!< LLC size the primary models.
        uint32_t primaryWays = 64;   //!< Primary monitor associativity.
        uint32_t sets = 16;          //!< Sets in both monitors.
        uint32_t sampledWays = 16;   //!< Secondary monitor ways.
        uint32_t coverage = 4;       //!< Secondary models coverage*LLC.
        uint64_t seed = 0x2B0B;
    };

    explicit CombinedUMon(const Config& config);

    /** Observes one access (both monitors sample internally). */
    void access(Addr addr);

    /**
     * Observes a whole block of accesses — bit-exact with calling
     * access() per address, but each monitor's H3 evaluations are
     * fused into one hashBlock over the block and unsampled addresses
     * are rejected by the prescaled-threshold compare without ever
     * entering the monitor call. The two monitors sample independent
     * slices, so running the primary over the block and then the
     * secondary reaches the same state as interleaving per address.
     *
     * The single-address case (the serial facade drives one-access
     * blocks per call) stays in the header: its steady-state cost is
     * the inlined H3 evaluations plus the sample compares, and only
     * the sampled minority pays the out-of-line tag-array walk.
     */
    void accessBlock(Span<const Addr> addrs)
    {
        if (addrs.size() == 1) {
            const Addr a = addrs.data()[0];
            const uint32_t hp = primary_.hashFn().hash(a);
            if (hp < primary_.sampleLimitInt())
                primary_.accessSampled(a, hp);
            if (cfg_.coverage > 1) {
                const uint32_t hs = secondary_.hashFn().hash(a);
                if (hs < secondary_.sampleLimitInt())
                    secondary_.accessSampled(a, hs);
            }
            return;
        }
        accessBlockMulti(addrs);
    }

    /**
     * Merged miss-ratio curve: primary points up to the LLC size,
     * secondary points beyond it, clamped to be non-increasing so
     * sampling noise cannot fabricate negative-utility regions.
     */
    MissCurve curve() const;

    /** Accesses sampled by the primary monitor. */
    uint64_t sampledAccesses() const { return primary_.sampledAccesses(); }

    /**
     * The control-plane snapshot hook: an immutable copy of the
     * merged curve at an interval boundary, from which
     * TalusCache::snapshotControl() builds each ControlInput.
     * Read-only — the monitor keeps accumulating; the cache's own
     * interval counters (not the monitor's sampled volume) provide
     * the curve weights.
     */
    MissCurve snapshot() const;

    /** Inter-interval decay of both monitors. */
    void decay();

    /** Clears both monitors. */
    void reset();

    /** Largest size the merged curve covers. */
    uint64_t coveredLines() const;

  private:
    /** The multi-address body of accessBlock: fused hashBlock per
     *  monitor plus a rejection loop over the block. */
    void accessBlockMulti(Span<const Addr> addrs);

    Config cfg_;
    UMon primary_;
    UMon secondary_;
    std::vector<uint32_t> hashScratch_; //!< accessBlock's hash buffer.
};

} // namespace talus

#endif // TALUS_MONITOR_COMBINED_UMON_H
