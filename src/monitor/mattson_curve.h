/**
 * @file
 * Exact LRU miss curves via Mattson's stack algorithm.
 *
 * One pass over an access stream yields the LRU miss count at *every*
 * cache size simultaneously (the stack property, Sec. II-C). This is
 * the idealized monitor: UMONs approximate it with sampling, and
 * tests validate them against this class.
 */

#ifndef TALUS_MONITOR_MATTSON_CURVE_H
#define TALUS_MONITOR_MATTSON_CURVE_H

#include <vector>

#include "core/miss_curve.h"
#include "monitor/stack_distance.h"
#include "util/types.h"

namespace talus {

/** Accumulates a stack-distance histogram into exact LRU miss curves. */
class MattsonCurve
{
  public:
    /**
     * @param max_lines Largest cache size of interest; distances
     *        beyond it are lumped together (they miss at all tracked
     *        sizes).
     */
    explicit MattsonCurve(uint64_t max_lines);

    /** Records one access. */
    void access(Addr addr);

    /** Total accesses recorded. */
    uint64_t accesses() const { return accesses_; }

    /** Exact LRU misses for a cache of @p size lines (size <= max). */
    uint64_t missesAt(uint64_t size) const;

    /**
     * Miss-ratio curve sampled every @p step lines from 0 to
     * max_lines inclusive. Values are misses/accesses in [0,1].
     */
    MissCurve curve(uint64_t step) const;

    /** Largest size the histogram resolves. */
    uint64_t maxLines() const { return maxLines_; }

    /** Clears all state. */
    void reset();

  private:
    uint64_t maxLines_;
    StackDistanceCounter counter_;
    std::vector<uint64_t> hist_; //!< hist_[d]: accesses at distance d.
    uint64_t overflowOrCold_ = 0;
    uint64_t accesses_ = 0;
};

} // namespace talus

#endif // TALUS_MONITOR_MATTSON_CURVE_H
