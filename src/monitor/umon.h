/**
 * @file
 * UMON — utility monitor hardware model (Qureshi & Patt, MICRO'06;
 * Sec. VI-C of the Talus paper).
 *
 * A UMON is a small LRU tag array that samples a pseudo-random subset
 * of the access stream (by address hash). Because LRU obeys the stack
 * property, per-way hit counters give the miss ratio of the modeled
 * cache at every way-granularity size with a single array. A monitor
 * of W ways and S sets sampling a 1-in-F slice of addresses models a
 * cache of W*S*F lines at points spaced S*F lines apart (Theorem 4).
 */

#ifndef TALUS_MONITOR_UMON_H
#define TALUS_MONITOR_UMON_H

#include <vector>

#include "core/miss_curve.h"
#include "util/h3_hash.h"
#include "util/types.h"

namespace talus {

/** One sampled LRU tag-array monitor. */
class UMon
{
  public:
    /** Monitor geometry and target. */
    struct Config
    {
        uint32_t ways = 64;          //!< Associativity (curve points).
        uint32_t sets = 16;          //!< Monitor sets (64x16 = 1K lines).
        uint64_t modeledLines = 1 << 17; //!< Cache size this UMON models.
        uint64_t seed = 0x0707;      //!< Sampling/set hash seed.
    };

    explicit UMon(const Config& config);

    /**
     * Observes one access; internally decides whether the address is
     * sampled (hash below the sampling threshold).
     */
    void access(Addr addr)
    {
        // Pseudo-random address sampling (Assumption 3): the sampled
        // stream is statistically self-similar, so the small array
        // models a proportionally larger cache (Theorem 4). One H3
        // evaluation drives both decisions: the magnitude compare
        // consumes the high bits, the set index the low bits.
        const uint32_t h = hash_.hash(addr);
        if (h >= sampleLimitInt_)
            return;
        accessSampled(addr, h);
    }

    /**
     * The hot-path split of access(): the caller already evaluated
     * @p h = hashFn().hash(addr) and checked h < sampleLimitInt()
     * (or the equivalent double compare against sampleLimit()), so
     * this only runs the tag-array update.
     */
    void accessSampled(Addr addr, uint32_t h);

    /** The prescaled sampling threshold access() compares hashes
     *  against (sampleThreshold * hash range). */
    double sampleLimit() const { return sampleLimit_; }

    /**
     * ceil(sampleLimit()): for any integer hash h,
     * (double)h < sampleLimit()  <=>  h < sampleLimitInt(). (When the
     * limit L is an integer the two compares agree directly; when it
     * is not, h < L <=> h <= floor(L) <=> h < ceil(L). The uint32 ->
     * double conversion is exact.) So the integer compare samples the
     * bit-identical address set while keeping the hot path free of
     * int->double conversions.
     */
    uint64_t sampleLimitInt() const { return sampleLimitInt_; }

    /** The sampling/set-index hash, for batched evaluation. */
    const H3Hash& hashFn() const { return hash_; }

    /** Accesses that passed the sampling filter. */
    uint64_t sampledAccesses() const { return sampled_; }

    /**
     * Miss-ratio curve: ways+1 points at sizes k * modeledLines/ways,
     * k = 0..ways, each the fraction of sampled accesses missing in a
     * cache of that size.
     */
    MissCurve curve() const;

    /** Halves all counters; called between reconfiguration intervals
     *  so the curve tracks the recent phase (Assumption 1). */
    void decay();

    /** Clears tags and counters. */
    void reset();

    /** Size modeled by this monitor, in lines. */
    uint64_t modeledLines() const { return cfg_.modeledLines; }

  private:
    Config cfg_;
    H3Hash hash_;
    double sampleThreshold_;
    // Sampling compares the hash's magnitude, set selection its low
    // bits: one H3 evaluation serves both. sampleLimit_ is the
    // threshold prescaled to the hash range; setMask_ replaces the
    // modulo when sets is a power of two (the common geometry).
    double sampleLimit_;
    uint64_t sampleLimitInt_ = 0; //!< ceil(sampleLimit_); see accessor.
    uint32_t setMask_ = 0;
    bool setsArePow2_ = false;

    // tags_[set*ways + pos], pos 0 = MRU. Invalid entries hold
    // kInvalidTag.
    std::vector<Addr> tags_;
    std::vector<uint64_t> wayHits_; //!< Hits at LRU stack position d.
    uint64_t sampled_ = 0;

    static constexpr Addr kInvalidTag = ~0ull;
};

} // namespace talus

#endif // TALUS_MONITOR_UMON_H
