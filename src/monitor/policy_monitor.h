/**
 * @file
 * Monitor arrays for non-stack replacement policies (Sec. VI-C,
 * "Other replacement policies").
 *
 * High-performance policies (SRRIP et al.) do not obey the stack
 * property, so one tag array cannot produce their whole miss curve.
 * The paper's workaround — admittedly impractical in hardware at
 * 256KB/core, which is exactly the point it makes — is one monitor
 * per curve point, each sampling at a different rate to model a
 * different cache size. This enables the policy-agnosticism
 * experiment (Talus on SRRIP, Fig. 9).
 */

#ifndef TALUS_MONITOR_POLICY_MONITOR_H
#define TALUS_MONITOR_POLICY_MONITOR_H

#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "core/miss_curve.h"
#include "util/h3_hash.h"

namespace talus {

/** An array of sampled monitors, one per modeled cache size. */
class PolicyMonitorArray
{
  public:
    /** Configuration. */
    struct Config
    {
        std::vector<uint64_t> modeledSizes; //!< Lines; one monitor each.
        uint32_t monitorLines = 1024;       //!< Tag-array size per monitor.
        uint32_t ways = 16;                 //!< Monitor associativity.
        std::string policyName = "SRRIP";   //!< Policy under monitoring.
        uint64_t seed = 0x901;
    };

    explicit PolicyMonitorArray(const Config& config);

    /** Observes one access (each monitor samples independently). */
    void access(Addr addr);

    /**
     * Miss-ratio curve: one point per modeled size (plus ratio 1 at
     * size 0), clamped non-increasing.
     */
    MissCurve curve() const;

    /** Total monitor tag state in bytes (32-bit tags), to report the
     *  overhead the paper calls impractical. */
    uint64_t stateBytes() const;

    /** Clears all monitors. */
    void reset();

  private:
    struct Monitor
    {
        uint64_t modeledLines;
        double threshold;
        std::unique_ptr<SetAssocCache> cache;
    };

    Config cfg_;
    H3Hash sampleHash_;
    std::vector<Monitor> monitors_;
};

} // namespace talus

#endif // TALUS_MONITOR_POLICY_MONITOR_H
