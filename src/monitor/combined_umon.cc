#include "monitor/combined_umon.h"

#include "util/log.h"

namespace talus {

namespace {

UMon::Config
primaryConfig(const CombinedUMon::Config& c)
{
    UMon::Config pc;
    pc.ways = c.primaryWays;
    pc.sets = c.sets;
    pc.modeledLines = c.llcLines;
    pc.seed = c.seed;
    return pc;
}

UMon::Config
secondaryConfig(const CombinedUMon::Config& c)
{
    UMon::Config sc;
    sc.ways = c.sampledWays;
    sc.sets = c.sets;
    sc.modeledLines = c.llcLines * c.coverage;
    // Same hash family, different seed: the secondary samples an
    // independent 1:16-rate slice.
    sc.seed = c.seed ^ 0x5A5A5A5A;
    return sc;
}

} // namespace

CombinedUMon::CombinedUMon(const Config& config)
    : cfg_(config), primary_(primaryConfig(config)),
      secondary_(secondaryConfig(config))
{
    talus_assert(cfg_.coverage >= 1, "coverage must be >= 1");
}

void
CombinedUMon::access(Addr addr)
{
    primary_.access(addr);
    if (cfg_.coverage > 1)
        secondary_.access(addr);
}

void
CombinedUMon::accessBlockMulti(Span<const Addr> addrs)
{
    const size_t n = addrs.size();
    if (n == 0)
        return;
    hashScratch_.resize(n);
    uint32_t* h = hashScratch_.data();

    // One fused hash pass per monitor, then a rejection loop that
    // only calls into the tag array for the sampled minority. The
    // integer compare is equivalent to the double compare
    // UMon::access used to run (see sampleLimitInt()), so the
    // sampled set is bit-identical.
    primary_.hashFn().hashBlock(addrs, h);
    const uint64_t primary_limit = primary_.sampleLimitInt();
    for (size_t i = 0; i < n; ++i) {
        if (h[i] < primary_limit)
            primary_.accessSampled(addrs[i], h[i]);
    }

    if (cfg_.coverage > 1) {
        secondary_.hashFn().hashBlock(addrs, h);
        const uint64_t secondary_limit = secondary_.sampleLimitInt();
        for (size_t i = 0; i < n; ++i) {
            if (h[i] < secondary_limit)
                secondary_.accessSampled(addrs[i], h[i]);
        }
    }
}

MissCurve
CombinedUMon::curve() const
{
    const MissCurve fine = primary_.curve();
    std::vector<CurvePoint> pts = fine.points();
    if (cfg_.coverage > 1) {
        const MissCurve coarse = secondary_.curve();
        for (const CurvePoint& p : coarse.points()) {
            if (p.size > static_cast<double>(cfg_.llcLines))
                pts.push_back(p);
        }
    }
    return MissCurve(std::move(pts)).monotoneClamped();
}

MissCurve
CombinedUMon::snapshot() const
{
    return curve();
}

void
CombinedUMon::decay()
{
    primary_.decay();
    secondary_.decay();
}

void
CombinedUMon::reset()
{
    primary_.reset();
    secondary_.reset();
}

uint64_t
CombinedUMon::coveredLines() const
{
    return cfg_.llcLines * (cfg_.coverage > 1 ? cfg_.coverage : 1);
}

} // namespace talus
