#include "monitor/stack_distance.h"

#include <algorithm>
#include <vector>

namespace talus {

namespace {
constexpr uint64_t kInitialCapacity = 1024;
} // namespace

StackDistanceCounter::StackDistanceCounter() : marks_(kInitialCapacity) {}

uint64_t
StackDistanceCounter::access(Addr addr)
{
    if (now_ >= marks_.size())
        compact();

    uint64_t distance = kCold;
    auto it = lastTime_.find(addr);
    if (it != lastTime_.end()) {
        const uint64_t prev = it->second;
        // Marks strictly after prev = distinct addresses since then.
        distance = static_cast<uint64_t>(
            marks_.rangeSum(prev + 1, now_));
        marks_.add(prev, -1);
        it->second = now_;
    } else {
        lastTime_.emplace(addr, now_);
    }
    marks_.add(now_, +1);
    now_++;
    return distance;
}

void
StackDistanceCounter::compact()
{
    // Remap active times to 0..k-1 preserving order, then double the
    // capacity headroom. Amortized O(log) per access overall.
    std::vector<std::pair<uint64_t, Addr>> active;
    active.reserve(lastTime_.size());
    for (const auto& [addr, t] : lastTime_)
        active.push_back({t, addr});
    std::sort(active.begin(), active.end());

    const uint64_t capacity =
        std::max<uint64_t>(kInitialCapacity, active.size() * 4);
    marks_ = Fenwick(capacity);
    uint64_t t = 0;
    for (const auto& [old_time, addr] : active) {
        (void)old_time;
        lastTime_[addr] = t;
        marks_.add(t, +1);
        t++;
    }
    now_ = t;
}

void
StackDistanceCounter::reset()
{
    marks_ = Fenwick(kInitialCapacity);
    lastTime_.clear();
    now_ = 0;
}

} // namespace talus
