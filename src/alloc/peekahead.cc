#include "alloc/peekahead.h"

#include <vector>

#include "util/log.h"

namespace talus {

namespace {

/** One partition's granule-sampled curve with hull-walk state. */
struct PartState
{
    std::vector<double> value; //!< Misses at k granules, k = 0..n.
    std::vector<uint32_t> nextVertex; //!< Next hull vertex after k.
    uint64_t pos = 0;          //!< Granules allocated so far.
};

/**
 * Computes next-hull-vertex indices with a right-to-left convex
 * stack: nextVertex[i] is the j > i maximizing average descent
 * (value[i] - value[j]) / (j - i).
 */
void
computeNextVertices(PartState& ps)
{
    const size_t n = ps.value.size();
    ps.nextVertex.assign(n, static_cast<uint32_t>(n - 1));
    // Stack of hull vertex indices, rightmost at the bottom. For each
    // point, pop vertices that are no longer on the hull when this
    // point is included (i.e., the slope to the vertex below the top
    // dominates the slope to the top).
    std::vector<uint32_t> stack;
    for (size_t i = n; i-- > 0;) {
        while (stack.size() >= 2) {
            const uint32_t a = stack.back();          // Nearer vertex.
            const uint32_t b = stack[stack.size() - 2]; // Farther.
            const double slope_a = (ps.value[i] - ps.value[a]) /
                                   static_cast<double>(a - i);
            const double slope_b = (ps.value[i] - ps.value[b]) /
                                   static_cast<double>(b - i);
            // Prefer the farther vertex on ties: one bigger step is
            // cheaper and matches Lookahead's plateau-crossing.
            if (slope_b >= slope_a)
                stack.pop_back();
            else
                break;
        }
        if (!stack.empty())
            ps.nextVertex[i] = stack.back();
        stack.push_back(static_cast<uint32_t>(i));
    }
}

} // namespace

std::vector<uint64_t>
PeekaheadAllocator::allocate(const std::vector<MissCurve>& curves,
                             uint64_t total, uint64_t granularity)
{
    talus_assert(!curves.empty(), "no partitions to allocate");
    talus_assert(granularity >= 1, "granularity must be >= 1");

    const uint64_t budget = total / granularity;
    std::vector<PartState> parts(curves.size());
    for (size_t p = 0; p < curves.size(); ++p) {
        PartState& ps = parts[p];
        ps.value.resize(budget + 1);
        for (uint64_t k = 0; k <= budget; ++k)
            ps.value[k] =
                curves[p].at(static_cast<double>(k * granularity));
        computeNextVertices(ps);
    }

    uint64_t remaining = budget;
    while (remaining > 0) {
        double best_mu = -1.0;
        size_t best_part = 0;
        uint64_t best_step = 1;
        for (size_t p = 0; p < parts.size(); ++p) {
            const PartState& ps = parts[p];
            if (ps.pos >= budget)
                continue;
            uint64_t target = ps.nextVertex[ps.pos];
            double mu;
            if (target - ps.pos <= remaining) {
                mu = (ps.value[ps.pos] - ps.value[target]) /
                     static_cast<double>(target - ps.pos);
            } else {
                // Budget window smaller than the next vertex: find
                // the windowed maximum directly (end-of-budget only).
                mu = -1.0;
                target = ps.pos;
                for (uint64_t k = 1; k <= remaining; ++k) {
                    const double m =
                        (ps.value[ps.pos] - ps.value[ps.pos + k]) /
                        static_cast<double>(k);
                    if (m > mu) {
                        mu = m;
                        target = ps.pos + k;
                    }
                }
            }
            if (mu > best_mu) {
                best_mu = mu;
                best_part = p;
                best_step = target - ps.pos;
            }
        }
        if (best_mu <= 0.0)
            break; // Nothing reduces misses; spread below.
        parts[best_part].pos += best_step;
        remaining -= best_step;
    }

    // Spread any zero-utility leftover round-robin (as Lookahead).
    size_t rr = 0;
    while (remaining > 0) {
        if (parts[rr % parts.size()].pos < budget) {
            parts[rr % parts.size()].pos++;
            remaining--;
        }
        rr++;
    }

    std::vector<uint64_t> alloc(curves.size());
    for (size_t p = 0; p < curves.size(); ++p)
        alloc[p] = parts[p].pos * granularity;
    return alloc;
}

} // namespace talus
