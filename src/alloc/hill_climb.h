/**
 * @file
 * Hill climbing: the trivial linear-time allocator.
 *
 * Grows allocations one granule at a time, always feeding the
 * partition with the largest marginal miss reduction. Optimal when
 * curves are convex (Sec. II-D); with cliffy LRU curves it gets stuck
 * in local optima — which is precisely the pathology Fig. 12 shows
 * and Talus removes.
 */

#ifndef TALUS_ALLOC_HILL_CLIMB_H
#define TALUS_ALLOC_HILL_CLIMB_H

#include "alloc/allocator.h"

namespace talus {

/** Greedy marginal-utility hill climbing. */
class HillClimbAllocator : public Allocator
{
  public:
    std::vector<uint64_t> allocate(const std::vector<MissCurve>& curves,
                                   uint64_t total,
                                   uint64_t granularity) override;
    const char* name() const override { return "HillClimb"; }
};

} // namespace talus

#endif // TALUS_ALLOC_HILL_CLIMB_H
