#include "alloc/fair_alloc.h"

#include "util/log.h"

namespace talus {

std::vector<uint64_t>
FairAllocator::allocate(const std::vector<MissCurve>& curves, uint64_t total,
                        uint64_t granularity)
{
    talus_assert(!curves.empty(), "no partitions to allocate");
    talus_assert(granularity >= 1, "granularity must be >= 1");

    const uint64_t n = curves.size();
    const uint64_t granules = total / granularity;
    std::vector<uint64_t> alloc(n, (granules / n) * granularity);
    for (uint64_t i = 0; i < granules % n; ++i)
        alloc[i] += granularity;
    return alloc;
}

} // namespace talus
