/**
 * @file
 * Peekahead: Lookahead in amortized linear time (Beckmann & Sanchez's
 * Jigsaw, PACT'13 — cited by the Talus paper as the way "equivalent
 * algorithms achieve linear-time common case performance").
 *
 * Lookahead's inner loop finds, for each partition, the extension
 * maximizing miss reduction *per granule*. That maximum is always
 * achieved at a vertex of the convex hull of the remaining curve: the
 * steepest average descent from point i is the slope to the next hull
 * vertex after i. Peekahead therefore precomputes, for every curve
 * point, its next hull vertex (one right-to-left stack pass), and the
 * allocation loop just walks vertices — O(points) total instead of
 * Lookahead's O(points^2).
 *
 * The only subtlety is the end of the budget: when fewer granules
 * remain than the distance to the next vertex, the windowed maximum
 * is recomputed directly (bounded by the leftover budget, so still
 * cheap).
 */

#ifndef TALUS_ALLOC_PEEKAHEAD_H
#define TALUS_ALLOC_PEEKAHEAD_H

#include "alloc/allocator.h"

namespace talus {

/** Linear-time Lookahead via next-hull-vertex precomputation. */
class PeekaheadAllocator : public Allocator
{
  public:
    std::vector<uint64_t> allocate(const std::vector<MissCurve>& curves,
                                   uint64_t total,
                                   uint64_t granularity) override;
    const char* name() const override { return "Peekahead"; }
};

} // namespace talus

#endif // TALUS_ALLOC_PEEKAHEAD_H
