/**
 * @file
 * Creates allocators by name ("HillClimb", "Lookahead", "Fair",
 * "DP-Optimal") for benches and parameterized tests.
 */

#ifndef TALUS_ALLOC_ALLOCATOR_FACTORY_H
#define TALUS_ALLOC_ALLOCATOR_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.h"

namespace talus {

/** Instantiates the allocator named @p name; fatal on unknown names. */
std::unique_ptr<Allocator> makeAllocator(const std::string& name);

/** Names accepted by makeAllocator(). */
std::vector<std::string> knownAllocators();

} // namespace talus

#endif // TALUS_ALLOC_ALLOCATOR_FACTORY_H
