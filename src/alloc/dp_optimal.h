/**
 * @file
 * Exact dynamic-programming allocation.
 *
 * Minimizes total misses exactly, in O(N * B^2) for B budget
 * granules. Too slow for runtime use at fine granularity (the point
 * the paper makes about optimal partitioning being NP-complete only
 * holds for *continuous/arbitrary* formulations; at fixed granularity
 * DP is exact but expensive) — we use it as the gold reference that
 * hill climbing must match on convex curves in tests and ablations.
 */

#ifndef TALUS_ALLOC_DP_OPTIMAL_H
#define TALUS_ALLOC_DP_OPTIMAL_H

#include "alloc/allocator.h"

namespace talus {

/** Exact DP allocator (reference implementation). */
class DpOptimalAllocator : public Allocator
{
  public:
    std::vector<uint64_t> allocate(const std::vector<MissCurve>& curves,
                                   uint64_t total,
                                   uint64_t granularity) override;
    const char* name() const override { return "DP-Optimal"; }
};

} // namespace talus

#endif // TALUS_ALLOC_DP_OPTIMAL_H
