/**
 * @file
 * Fair (equal) allocation. With convex curves and homogeneous
 * threads, equal allocations are simultaneously the most fair and the
 * maximum-utility choice (Sec. II-D); Fig. 13 runs this policy under
 * Talus and under plain LRU.
 */

#ifndef TALUS_ALLOC_FAIR_ALLOC_H
#define TALUS_ALLOC_FAIR_ALLOC_H

#include "alloc/allocator.h"

namespace talus {

/** Equal split, granularity-rounded, remainder round-robin. */
class FairAllocator : public Allocator
{
  public:
    std::vector<uint64_t> allocate(const std::vector<MissCurve>& curves,
                                   uint64_t total,
                                   uint64_t granularity) override;
    const char* name() const override { return "Fair"; }
};

} // namespace talus

#endif // TALUS_ALLOC_FAIR_ALLOC_H
