/**
 * @file
 * The Lookahead allocator (Qureshi & Patt's UCP, MICRO'06).
 *
 * Lookahead copes with non-convex curves by considering, for each
 * partition, the best miss reduction *per allocated granule* over
 * every possible extension — so it can "see across" a plateau to the
 * cliff beyond it. It is quadratic in the number of granules and
 * makes all-or-nothing allocations at cliffs, which is what costs it
 * fairness in Fig. 13.
 */

#ifndef TALUS_ALLOC_LOOKAHEAD_H
#define TALUS_ALLOC_LOOKAHEAD_H

#include "alloc/allocator.h"

namespace talus {

/** Quadratic Lookahead (UCP) allocation. */
class LookaheadAllocator : public Allocator
{
  public:
    std::vector<uint64_t> allocate(const std::vector<MissCurve>& curves,
                                   uint64_t total,
                                   uint64_t granularity) override;
    const char* name() const override { return "Lookahead"; }
};

} // namespace talus

#endif // TALUS_ALLOC_LOOKAHEAD_H
