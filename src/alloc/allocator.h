/**
 * @file
 * Cache-partitioning (capacity allocation) algorithms.
 *
 * An Allocator divides a cache of `total` lines among N partitions to
 * minimize total misses, given each partition's miss curve in
 * *commensurable* units (e.g., misses per interval — callers scale
 * miss ratios by access counts). The paper's central systems claim is
 * that once Talus guarantees convex curves, trivial hill climbing is
 * optimal, matching or beating the expensive Lookahead heuristic that
 * non-convex LRU curves otherwise require (Sec. VII-D).
 */

#ifndef TALUS_ALLOC_ALLOCATOR_H
#define TALUS_ALLOC_ALLOCATOR_H

#include <cstdint>
#include <vector>

#include "core/miss_curve.h"

namespace talus {

/** Abstract capacity allocator over miss curves. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Divides @p total lines among curves.size() partitions.
     *
     * @param curves Per-partition miss curves (misses vs lines).
     * @param total Lines to hand out (allocations sum to <= total,
     *        and to exactly total when granularity divides it).
     * @param granularity Allocation step in lines (>= 1).
     * @return One allocation per partition, in lines.
     */
    virtual std::vector<uint64_t>
    allocate(const std::vector<MissCurve>& curves, uint64_t total,
             uint64_t granularity) = 0;

    /** Algorithm name for bench output. */
    virtual const char* name() const = 0;
};

/** Total misses of an allocation under the given curves. */
double allocationCost(const std::vector<MissCurve>& curves,
                      const std::vector<uint64_t>& alloc);

} // namespace talus

#endif // TALUS_ALLOC_ALLOCATOR_H
