#include "alloc/allocator_factory.h"

#include "alloc/dp_optimal.h"
#include "alloc/fair_alloc.h"
#include "alloc/hill_climb.h"
#include "alloc/lookahead.h"
#include "alloc/peekahead.h"
#include "util/log.h"

namespace talus {

std::unique_ptr<Allocator>
makeAllocator(const std::string& name)
{
    if (name == "HillClimb")
        return std::make_unique<HillClimbAllocator>();
    if (name == "Lookahead")
        return std::make_unique<LookaheadAllocator>();
    if (name == "Fair")
        return std::make_unique<FairAllocator>();
    if (name == "Peekahead")
        return std::make_unique<PeekaheadAllocator>();
    if (name == "DP-Optimal")
        return std::make_unique<DpOptimalAllocator>();
    talus_fatal("unknown allocator: ", name);
}

std::vector<std::string>
knownAllocators()
{
    return {"HillClimb", "Lookahead", "Peekahead", "Fair", "DP-Optimal"};
}

} // namespace talus
