#include "alloc/dp_optimal.h"

#include <limits>

#include "util/log.h"

namespace talus {

std::vector<uint64_t>
DpOptimalAllocator::allocate(const std::vector<MissCurve>& curves,
                             uint64_t total, uint64_t granularity)
{
    talus_assert(!curves.empty(), "no partitions to allocate");
    talus_assert(granularity >= 1, "granularity must be >= 1");

    const size_t n = curves.size();
    const uint64_t budget = total / granularity; // In granules.
    const double inf = std::numeric_limits<double>::infinity();

    // dp[b] = min cost of the first i partitions using exactly b
    // granules; choice[i][b] = granules given to partition i.
    std::vector<double> dp(budget + 1, 0.0);
    std::vector<std::vector<uint32_t>> choice(
        n, std::vector<uint32_t>(budget + 1, 0));

    for (size_t i = 0; i < n; ++i) {
        std::vector<double> next(budget + 1, inf);
        for (uint64_t b = 0; b <= budget; ++b) {
            for (uint64_t x = 0; x <= b; ++x) {
                const double cost =
                    dp[b - x] +
                    curves[i].at(static_cast<double>(x * granularity));
                if (cost < next[b]) {
                    next[b] = cost;
                    choice[i][b] = static_cast<uint32_t>(x);
                }
            }
        }
        dp = std::move(next);
    }

    // Backtrack. Using exactly `budget` granules is always optimal
    // since curves are non-increasing (extra capacity never hurts).
    std::vector<uint64_t> alloc(n, 0);
    uint64_t b = budget;
    for (size_t i = n; i-- > 0;) {
        const uint64_t x = choice[i][b];
        alloc[i] = x * granularity;
        b -= x;
    }
    return alloc;
}

} // namespace talus
