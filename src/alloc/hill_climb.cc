#include "alloc/hill_climb.h"

#include "util/log.h"

namespace talus {

double
allocationCost(const std::vector<MissCurve>& curves,
               const std::vector<uint64_t>& alloc)
{
    talus_assert(curves.size() == alloc.size(), "size mismatch");
    double cost = 0;
    for (size_t i = 0; i < curves.size(); ++i)
        cost += curves[i].at(static_cast<double>(alloc[i]));
    return cost;
}

std::vector<uint64_t>
HillClimbAllocator::allocate(const std::vector<MissCurve>& curves,
                             uint64_t total, uint64_t granularity)
{
    talus_assert(!curves.empty(), "no partitions to allocate");
    talus_assert(granularity >= 1, "granularity must be >= 1");

    std::vector<uint64_t> alloc(curves.size(), 0);
    uint64_t remaining = total;
    while (remaining >= granularity) {
        // Give the next granule to the partition that benefits most;
        // break ties toward the least-allocated partition (a fair,
        // deterministic rule — and the reason hill climbing splits
        // budget across plateaus instead of luckily piling onto one
        // app's cliff).
        double best_gain = -1.0;
        size_t best = 0;
        for (size_t i = 0; i < curves.size(); ++i) {
            const double s = static_cast<double>(alloc[i]);
            const double gain =
                curves[i].at(s) -
                curves[i].at(s + static_cast<double>(granularity));
            if (gain > best_gain ||
                (gain == best_gain && alloc[i] < alloc[best])) {
                best_gain = gain;
                best = i;
            }
        }
        alloc[best] += granularity;
        remaining -= granularity;
    }
    return alloc;
}

} // namespace talus
