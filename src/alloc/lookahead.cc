#include "alloc/lookahead.h"

#include "util/log.h"

namespace talus {

std::vector<uint64_t>
LookaheadAllocator::allocate(const std::vector<MissCurve>& curves,
                             uint64_t total, uint64_t granularity)
{
    talus_assert(!curves.empty(), "no partitions to allocate");
    talus_assert(granularity >= 1, "granularity must be >= 1");

    std::vector<uint64_t> alloc(curves.size(), 0);
    uint64_t remaining = total / granularity; // In granules.

    while (remaining > 0) {
        // For each partition, find the extension (in granules)
        // maximizing miss reduction per granule ("max marginal
        // utility" with lookahead across plateaus).
        double best_mu = -1.0;
        size_t best_part = 0;
        uint64_t best_extend = 1;
        for (size_t i = 0; i < curves.size(); ++i) {
            const double base =
                curves[i].at(static_cast<double>(alloc[i]));
            for (uint64_t k = 1; k <= remaining; ++k) {
                const double s = static_cast<double>(
                    alloc[i] + k * granularity);
                const double mu =
                    (base - curves[i].at(s)) / static_cast<double>(k);
                if (mu > best_mu) {
                    best_mu = mu;
                    best_part = i;
                    best_extend = k;
                }
            }
        }
        if (best_mu <= 0.0) {
            // No extension reduces misses; spread the remainder evenly
            // (matches UCP's behaviour of handing out leftover ways).
            size_t i = 0;
            while (remaining > 0) {
                alloc[i % curves.size()] += granularity;
                remaining--;
                i++;
            }
            break;
        }
        alloc[best_part] += best_extend * granularity;
        remaining -= best_extend;
    }
    return alloc;
}

} // namespace talus
