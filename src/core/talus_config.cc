#include "core/talus_config.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

double
TalusConfig::predictedMisses(const MissCurve& curve) const
{
    if (degenerate)
        return curve.at(s1 + s2);
    const double s = s1 + s2;
    const double w_alpha = (beta - s) / (beta - alpha);
    const double w_beta = (s - alpha) / (beta - alpha);
    return w_alpha * curve.at(alpha) + w_beta * curve.at(beta);
}

TalusConfig
computeTalusConfig(const ConvexHull& hull, double s, double margin)
{
    talus_assert(s >= 0, "negative partition size");
    talus_assert(margin >= 0 && margin < 1, "margin must be in [0,1)");

    TalusConfig cfg;
    const ConvexHull::Segment seg = hull.segmentFor(s);

    // A (nearly) flat hull segment means interpolation cannot help:
    // m(alpha) == m(beta), so splitting buys nothing, while the safety
    // margin would shrink the effective alpha — potentially pushing it
    // back below a cliff the cache has already climbed. Treat shallow
    // segments (< 1% relative drop) as degenerate.
    const bool flat =
        !seg.degenerate &&
        (seg.alpha.misses - seg.beta.misses) <=
            0.01 * std::max(seg.alpha.misses, 1e-12);

    if (seg.degenerate || flat) {
        // On a hull vertex, outside the sampled range, or on a flat
        // segment: the underlying policy is already efficient at this
        // size; run a single partition.
        cfg.alpha = cfg.beta = s;
        cfg.rho = 1.0;
        cfg.s1 = s;
        cfg.s2 = 0;
        cfg.degenerate = true;
        return cfg;
    }

    const double alpha = seg.alpha.size;
    const double beta = seg.beta.size;
    talus_assert(alpha < s && s < beta,
                 "hull segment does not bracket size: ", alpha, " ", s, " ",
                 beta);

    // Lemma 5 / Theorem 6.
    const double rho = (beta - s) / (beta - alpha);
    cfg.alpha = alpha;
    cfg.beta = beta;
    cfg.s1 = rho * alpha;
    cfg.s2 = s - cfg.s1;
    cfg.degenerate = false;

    // Safety margin (Sec. VI-B): bump the *routed* rho, leaving the
    // physical sizes unchanged. The alpha partition then emulates
    // s1 / rho' < alpha and the beta partition s2 / (1 - rho') > beta,
    // keeping measurement noise from pushing beta back up the cliff.
    cfg.rho = std::min(1.0, rho * (1.0 + margin));
    return cfg;
}

double
interpolatedMisses(const ConvexHull& hull, double s)
{
    const ConvexHull::Segment seg = hull.segmentFor(s);
    if (seg.degenerate)
        return seg.alpha.misses;
    const double w_alpha =
        (seg.beta.size - s) / (seg.beta.size - seg.alpha.size);
    return w_alpha * seg.alpha.misses + (1.0 - w_alpha) * seg.beta.misses;
}

} // namespace talus
