/**
 * @file
 * Talus shadow-partition configuration (Sec. IV of the paper).
 *
 * Given a miss curve's convex hull and a total partition size s,
 * Theorem 6 picks the hull vertices alpha <= s < beta bracketing s and
 * Lemma 5 yields:
 *
 *     rho = (beta - s) / (beta - alpha)     (sampling rate into alpha)
 *     s1  = rho * alpha                     (alpha shadow partition)
 *     s2  = s - s1                          (beta shadow partition)
 *
 * so that a fraction rho of accesses behaves like a cache of size
 * alpha and the rest like a cache of size beta, interpolating the
 * hull:  m_shadow(s) = (beta-s)/(beta-alpha) m(alpha)
 *                    + (s-alpha)/(beta-alpha) m(beta).     (Eq. 5)
 *
 * Practical deviations from Assumptions 1-3 are absorbed by bumping
 * the routed rho by a safety margin (5% in the paper, Sec. VI-B),
 * which shrinks the effective alpha and grows the effective beta
 * without changing the physical sizes.
 */

#ifndef TALUS_CORE_TALUS_CONFIG_H
#define TALUS_CORE_TALUS_CONFIG_H

#include "core/convex_hull.h"

namespace talus {

/** A resolved shadow-partition configuration for one logical size. */
struct TalusConfig
{
    double alpha = 0;  //!< Emulated small cache size (hull vertex).
    double beta = 0;   //!< Emulated large cache size (hull vertex).
    double rho = 1.0;  //!< Fraction of accesses routed to alpha
                       //!< (includes the safety margin).
    double s1 = 0;     //!< Physical size of the alpha partition.
    double s2 = 0;     //!< Physical size of the beta partition.
    bool degenerate = true; //!< True: single partition, no split.

    /** Predicted miss metric of this configuration (Eq. 5). */
    double predictedMisses(const MissCurve& curve) const;
};

/**
 * Computes the Talus configuration for total size @p s.
 *
 * @param hull Convex hull of the underlying policy's miss curve.
 * @param s Total lines available to this logical partition.
 * @param margin Safety bump applied to rho (paper default 0.05).
 *
 * Sizes outside the hull's sampled range yield a degenerate
 * configuration (all capacity in one partition).
 */
TalusConfig computeTalusConfig(const ConvexHull& hull, double s,
                               double margin = 0.05);

/**
 * Eq. 5 evaluated directly: the linear interpolation of m between the
 * bracketing hull vertices at size @p s, i.e. the miss metric Talus
 * promises at @p s. Equivalent to hull.at(s); kept separate so tests
 * can check both derivations agree.
 */
double interpolatedMisses(const ConvexHull& hull, double s);

} // namespace talus

#endif // TALUS_CORE_TALUS_CONFIG_H
