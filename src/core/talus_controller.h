/**
 * @file
 * TalusController: the full Talus mechanism around a partitioned
 * cache (Fig. 7 of the paper).
 *
 * The controller owns a physical cache with 2N partitions for N
 * logical (software-visible) partitions: logical p maps to physical
 * 2p (the alpha shadow partition) and 2p+1 (beta). Accesses are
 * routed by per-logical-partition H3 sampling functions.
 *
 * Reconfiguration follows the paper's software flow:
 *  - pre-processing: convexHulls() turns monitored miss curves into
 *    hulls for the system's partitioning algorithm (which can then
 *    safely assume convexity);
 *  - the partitioning algorithm (alloc/) runs on the hulls, producing
 *    logical allocations — the controller does NOT choose them;
 *  - post-processing: configure() converts logical allocations into
 *    shadow partition sizes and sampling rates (Theorem 6 + the 5%
 *    safety margin), handles way-partitioning coarsening by
 *    recomputing rho from the achieved sizes (Sec. VI-B), and scales
 *    targets by the scheme's usable fraction (0.9 for Vantage).
 */

#ifndef TALUS_CORE_TALUS_CONTROLLER_H
#define TALUS_CORE_TALUS_CONTROLLER_H

#include <memory>
#include <vector>

#include "core/convex_hull.h"
#include "core/shadow_router.h"
#include "core/talus_config.h"
#include "partition/partitioned_cache.h"

namespace talus {

/** Talus wrapped around a physical partitioned cache. */
class TalusController
{
  public:
    /** Controller configuration. */
    struct Config
    {
        uint32_t numLogicalParts = 1; //!< Software-visible partitions.
        double margin = 0.05;         //!< Safety margin on rho.
        uint32_t routerBits = 8;      //!< Sampling hash/limit width.
        double usableFraction = 1.0;  //!< 0.9 under Vantage.
        bool recomputeFromCoarsened = false; //!< Way/set coarsening fix.
        uint64_t seed = 0x7A1C5;
    };

    /**
     * @param phys Physical cache; must expose 2 * numLogicalParts
     *        partitions.
     * @param config Controller configuration.
     */
    TalusController(std::unique_ptr<PartitionedCacheBase> phys,
                    const Config& config);

    /** Routes and performs one access for logical partition @p part. */
    bool access(Addr addr, PartId part);

    /**
     * Routes and performs a whole block of accesses for one logical
     * partition — bit-exact with calling access() per address. The
     * router's H3 is evaluated once over the block (hashBlock into a
     * reusable scratch buffer), the alpha/beta decisions become a
     * physical-partition array, and the physical cache consumes the
     * block through its batched entry point.
     *
     * @return Number of hits in the block.
     */
    uint64_t accessBlock(const Addr* addrs, uint64_t n, PartId part);

    /**
     * Pre-processing: convex hulls of monitored miss curves, in the
     * same order. Partitioning algorithms consume these.
     */
    static std::vector<MissCurve>
    convexHulls(const std::vector<MissCurve>& curves);

    /**
     * Post-processing: applies logical allocations.
     *
     * @param curves Monitored miss curves (one per logical partition,
     *        sizes in lines of the physical cache).
     * @param logical_alloc Lines allocated to each logical partition
     *        by the partitioning algorithm; the sum must not exceed
     *        capacity.
     */
    void configure(const std::vector<MissCurve>& curves,
                   const std::vector<uint64_t>& logical_alloc);

    /** Last applied shadow configuration of logical partition @p p. */
    const TalusConfig& configOf(PartId p) const;

    /** The sampling router of logical partition @p p — the flattened
     *  facade fast path routes inline against it. */
    const ShadowRouter& router(PartId p) const { return routers_[p]; }

    /** Effective (quantized) routing rate of partition @p p. */
    double routedRho(PartId p) const;

    /** Underlying physical cache. */
    PartitionedCacheBase& cache() { return *phys_; }
    const PartitionedCacheBase& cache() const { return *phys_; }

    /** Number of logical partitions. */
    uint32_t numLogicalParts() const { return cfg_.numLogicalParts; }

    /** Accesses by logical partition (alpha + beta shadows). */
    uint64_t logicalAccesses(PartId p) const;

    /** Misses by logical partition. */
    uint64_t logicalMisses(PartId p) const;

    /** Interval hook forwarded to the physical cache/policy. */
    void nextInterval() { phys_->nextInterval(); }

  private:
    Config cfg_;
    std::unique_ptr<PartitionedCacheBase> phys_;
    std::vector<ShadowRouter> routers_;
    std::vector<TalusConfig> shadowCfg_;
    std::vector<uint32_t> routeHash_;  //!< accessBlock hash scratch.
    std::vector<PartId> routeParts_;   //!< accessBlock routing scratch.
};

} // namespace talus

#endif // TALUS_CORE_TALUS_CONTROLLER_H
