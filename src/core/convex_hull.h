/**
 * @file
 * Lower convex hulls of miss curves.
 *
 * Talus traces the convex hull of the underlying policy's miss curve
 * (Theorem 6): the hull is both the performance Talus promises to the
 * partitioning algorithm (pre-processing, Fig. 7) and the source of
 * the (alpha, beta) interpolation anchors (post-processing). The hull
 * is computed in linear time with a single monotone pass (the
 * three-coins / Melkman-style algorithm the paper cites [31]).
 */

#ifndef TALUS_CORE_CONVEX_HULL_H
#define TALUS_CORE_CONVEX_HULL_H

#include "core/miss_curve.h"

namespace talus {

/** The lower convex hull of a miss curve. */
class ConvexHull
{
  public:
    /** Computes the hull of @p curve (at least one point). */
    explicit ConvexHull(const MissCurve& curve);

    /** Hull vertices as a (convex) miss curve. */
    const MissCurve& hull() const { return hull_; }

    /** Evaluates the hull at @p size (linear interpolation). */
    double at(double size) const { return hull_.at(size); }

    /** Hull segment bracketing a target size. */
    struct Segment
    {
        CurvePoint alpha; //!< Largest hull vertex with size <= s.
        CurvePoint beta;  //!< Smallest hull vertex with size > s.
        bool degenerate;  //!< True if s falls on a vertex or outside.
    };

    /**
     * Returns the hull vertices bracketing @p size (the paper's alpha
     * and beta, Theorem 6). If @p size coincides with a vertex or
     * lies outside the sampled range, the segment is degenerate with
     * alpha == beta == the clamped vertex.
     */
    Segment segmentFor(double size) const;

  private:
    MissCurve hull_;
};

} // namespace talus

#endif // TALUS_CORE_CONVEX_HULL_H
