#include "core/miss_curve.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

MissCurve::MissCurve(std::vector<CurvePoint> points)
{
    talus_assert(!points.empty(), "miss curve needs at least one point");
    std::stable_sort(points.begin(), points.end(),
                     [](const CurvePoint& a, const CurvePoint& b) {
                         return a.size < b.size;
                     });
    pts_.reserve(points.size());
    for (const CurvePoint& p : points) {
        talus_assert(p.size >= 0, "negative cache size in miss curve");
        talus_assert(std::isfinite(p.misses), "non-finite miss value");
        if (!pts_.empty() && pts_.back().size == p.size) {
            pts_.back().misses = std::min(pts_.back().misses, p.misses);
        } else {
            pts_.push_back(p);
        }
    }
}

MissCurve::MissCurve(const std::vector<double>& misses, double granularity)
{
    talus_assert(!misses.empty(), "miss curve needs at least one point");
    talus_assert(granularity > 0, "granularity must be positive");
    pts_.reserve(misses.size());
    for (size_t i = 0; i < misses.size(); ++i)
        pts_.push_back({static_cast<double>(i) * granularity, misses[i]});
}

double
MissCurve::minSize() const
{
    talus_assert(!pts_.empty(), "empty miss curve");
    return pts_.front().size;
}

double
MissCurve::maxSize() const
{
    talus_assert(!pts_.empty(), "empty miss curve");
    return pts_.back().size;
}

double
MissCurve::at(double size) const
{
    talus_assert(!pts_.empty(), "empty miss curve");
    if (size <= pts_.front().size)
        return pts_.front().misses;
    if (size >= pts_.back().size)
        return pts_.back().misses;
    // Binary search for the segment containing size.
    const auto it = std::lower_bound(
        pts_.begin(), pts_.end(), size,
        [](const CurvePoint& p, double s) { return p.size < s; });
    const CurvePoint& hi = *it;
    if (hi.size == size)
        return hi.misses;
    const CurvePoint& lo = *std::prev(it);
    const double frac = (size - lo.size) / (hi.size - lo.size);
    return lo.misses + frac * (hi.misses - lo.misses);
}

bool
MissCurve::isNonIncreasing(double tol) const
{
    for (size_t i = 1; i < pts_.size(); ++i) {
        if (pts_[i].misses > pts_[i - 1].misses + tol)
            return false;
    }
    return true;
}

bool
MissCurve::isConvex(double tol) const
{
    for (size_t i = 2; i < pts_.size(); ++i) {
        const CurvePoint& a = pts_[i - 2];
        const CurvePoint& b = pts_[i - 1];
        const CurvePoint& c = pts_[i];
        const double slope_ab = (b.misses - a.misses) / (b.size - a.size);
        const double slope_bc = (c.misses - b.misses) / (c.size - b.size);
        if (slope_bc < slope_ab - tol)
            return false;
    }
    return true;
}

MissCurve
MissCurve::scaled(double size_factor, double miss_factor) const
{
    std::vector<CurvePoint> pts = pts_;
    for (CurvePoint& p : pts) {
        p.size *= size_factor;
        p.misses *= miss_factor;
    }
    return MissCurve(std::move(pts));
}

MissCurve
MissCurve::monotoneClamped() const
{
    std::vector<CurvePoint> pts = pts_;
    for (size_t i = 1; i < pts.size(); ++i)
        pts[i].misses = std::min(pts[i].misses, pts[i - 1].misses);
    return MissCurve(std::move(pts));
}

} // namespace talus
