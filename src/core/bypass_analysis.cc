#include "core/bypass_analysis.h"

#include "util/log.h"

namespace talus {

double
bypassMisses(const MissCurve& curve, double s, double rho)
{
    talus_assert(rho > 0.0 && rho <= 1.0, "rho must be in (0,1]: ", rho);
    const double m0 = curve.at(0.0);
    return rho * curve.at(s / rho) + (1.0 - rho) * m0;
}

BypassChoice
optimalBypass(const MissCurve& curve, double s)
{
    talus_assert(s >= 0, "negative size");
    const double m0 = curve.at(0.0);

    // m_bypass(s, rho) with s0 = s/rho is a chord from (0, m(0)) to
    // (s0, m(s0)); over each linear curve segment the objective is
    // monotone in s0, so the optimum lies at a sampled vertex (or at
    // rho = 1 exactly).
    BypassChoice best;
    best.rho = 1.0;
    best.emulated = s;
    best.keptPart = curve.at(s);
    best.bypassPart = 0.0;
    best.misses = best.keptPart;

    for (const CurvePoint& p : curve.points()) {
        if (p.size <= s || p.size <= 0)
            continue;
        const double rho = s / p.size;
        const double kept = rho * p.misses;
        const double bypassed = (1.0 - rho) * m0;
        const double total = kept + bypassed;
        if (total < best.misses) {
            best.rho = rho;
            best.misses = total;
            best.emulated = p.size;
            best.keptPart = kept;
            best.bypassPart = bypassed;
        }
    }
    return best;
}

MissCurve
optimalBypassCurve(const MissCurve& curve)
{
    std::vector<CurvePoint> pts;
    pts.reserve(curve.numPoints());
    for (const CurvePoint& p : curve.points())
        pts.push_back({p.size, optimalBypass(curve, p.size).misses});
    return MissCurve(std::move(pts));
}

} // namespace talus
