#include "core/convex_hull.h"

#include <cmath>
#include <vector>

#include "util/log.h"

namespace talus {

namespace {

/** Cross product (A-O) x (B-O); > 0 means O->A->B turns left. */
double
cross(const CurvePoint& o, const CurvePoint& a, const CurvePoint& b)
{
    return (a.size - o.size) * (b.misses - o.misses) -
           (a.misses - o.misses) * (b.size - o.size);
}

} // namespace

ConvexHull::ConvexHull(const MissCurve& curve)
{
    const auto& pts = curve.points();
    talus_assert(!pts.empty(), "hull of empty curve");

    // Andrew's monotone chain, lower hull only: points arrive sorted
    // by size; pop while the last two plus the new point fail to make
    // a counter-clockwise turn. Collinear middle points are dropped.
    std::vector<CurvePoint> hull;
    hull.reserve(pts.size());
    for (const CurvePoint& p : pts) {
        while (hull.size() >= 2 &&
               cross(hull[hull.size() - 2], hull[hull.size() - 1], p) <= 0) {
            hull.pop_back();
        }
        hull.push_back(p);
    }
    hull_ = MissCurve(std::move(hull));
}

ConvexHull::Segment
ConvexHull::segmentFor(double size) const
{
    const auto& pts = hull_.points();
    Segment seg;

    if (size <= pts.front().size) {
        seg.alpha = seg.beta = pts.front();
        seg.degenerate = true;
        return seg;
    }
    if (size >= pts.back().size) {
        seg.alpha = seg.beta = pts.back();
        seg.degenerate = true;
        return seg;
    }
    for (size_t i = 1; i < pts.size(); ++i) {
        if (pts[i].size > size) {
            seg.alpha = pts[i - 1];
            seg.beta = pts[i];
            // Exactly on the alpha vertex: no interpolation needed.
            seg.degenerate = (pts[i - 1].size == size);
            return seg;
        }
        if (pts[i].size == size) {
            seg.alpha = seg.beta = pts[i];
            seg.degenerate = true;
            return seg;
        }
    }
    talus_panic("unreachable: segmentFor fell through");
}

} // namespace talus
