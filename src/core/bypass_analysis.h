/**
 * @file
 * Optimal bypassing analysis (Sec. V-C, Corollary 8).
 *
 * Bypassing a fraction 1-rho of accesses makes the remaining accesses
 * behave as a cache of size s/rho (Theorem 4), at the price of always
 * missing on the bypassed fraction:
 *
 *     m_bypass(s, rho) = rho * m(s/rho) + (1 - rho) * m(0)
 *
 * Corollary 8 shows this is a chord of the miss curve from (0, m(0))
 * to (s/rho, m(s/rho)), so no bypass scheme can beat the convex hull
 * that Talus traces. These helpers compute the optimal bypass rate
 * and its miss metric so benches can regenerate Figs. 5 and 6.
 */

#ifndef TALUS_CORE_BYPASS_ANALYSIS_H
#define TALUS_CORE_BYPASS_ANALYSIS_H

#include "core/miss_curve.h"

namespace talus {

/** Miss metric of bypassing with acceptance rate @p rho at size @p s. */
double bypassMisses(const MissCurve& curve, double s, double rho);

/** Result of optimizing the bypass rate at one size. */
struct BypassChoice
{
    double rho;        //!< Optimal acceptance rate (0 < rho <= 1).
    double misses;     //!< Miss metric achieved.
    double emulated;   //!< Size the non-bypassed stream emulates (s/rho).
    double bypassPart; //!< Contribution of bypassed accesses, (1-rho)m(0).
    double keptPart;   //!< Contribution of kept accesses, rho m(s/rho).
};

/**
 * Finds the acceptance rate minimizing bypassMisses at size @p s by
 * scanning all curve points s0 >= s as emulated sizes (the optimum is
 * always at a curve vertex) plus rho = 1.
 */
BypassChoice optimalBypass(const MissCurve& curve, double s);

/** The full optimal-bypassing curve, one point per curve sample. */
MissCurve optimalBypassCurve(const MissCurve& curve);

} // namespace talus

#endif // TALUS_CORE_BYPASS_ANALYSIS_H
