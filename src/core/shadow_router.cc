#include "core/shadow_router.h"

#include <cmath>

#include "util/log.h"

namespace talus {

ShadowRouter::ShadowRouter(uint32_t bits, uint64_t seed)
    : hash_(bits, seed), limit_(hash_.range())
{
}

void
ShadowRouter::setRho(double rho)
{
    talus_assert(rho >= 0.0 && rho <= 1.0, "rho out of [0,1]: ", rho);
    limit_ = static_cast<uint64_t>(
        std::llround(rho * static_cast<double>(hash_.range())));
}

double
ShadowRouter::effectiveRho() const
{
    return static_cast<double>(limit_) / static_cast<double>(hash_.range());
}

} // namespace talus
