#include "core/shadow_router.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

ShadowRouter::ShadowRouter(uint32_t bits, uint64_t seed)
    : hash_(bits, seed), limit_(hash_.range())
{
}

void
ShadowRouter::setRho(double rho)
{
    if (std::isnan(rho))
        talus_fatal("ShadowRouter::setRho: rho is NaN; the shadow "
                    "configuration that produced it is invalid (check "
                    "the miss curve for non-finite or zero-width hull "
                    "segments)");
    // Out-of-range values come from rounding in upstream sizing math;
    // the limit register saturates rather than faulting.
    limit_ = static_cast<uint64_t>(std::llround(
        std::clamp(rho, 0.0, 1.0) * static_cast<double>(hash_.range())));
}

double
ShadowRouter::effectiveRho() const
{
    return static_cast<double>(limit_) / static_cast<double>(hash_.range());
}

} // namespace talus
