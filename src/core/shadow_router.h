/**
 * @file
 * The Talus sampling function: routes each address to the alpha or
 * beta shadow partition of its logical partition.
 *
 * Hardware model (Sec. VI-B, Fig. 7b): an H3 hash of the line address
 * is compared against a limit register; below the limit goes to
 * alpha. The paper uses 8-bit hashes and limit registers, which
 * quantizes rho to 1/256 steps — the width is configurable so the
 * quantization ablation can measure its effect.
 */

#ifndef TALUS_CORE_SHADOW_ROUTER_H
#define TALUS_CORE_SHADOW_ROUTER_H

#include "util/h3_hash.h"
#include "util/types.h"

namespace talus {

/** H3 + limit-register router for one logical partition. */
class ShadowRouter
{
  public:
    /**
     * @param bits Hash/limit width in bits (paper: 8).
     * @param seed H3 seed; distinct per logical partition.
     */
    explicit ShadowRouter(uint32_t bits = 8, uint64_t seed = 0x70C4);

    /**
     * Sets the sampling rate; the limit register is round(rho*2^bits).
     * Values outside [0,1] are clamped (the limit register saturates);
     * NaN is a fatal configuration error.
     */
    void setRho(double rho);

    /** The quantized rate actually implemented by the limit register. */
    double effectiveRho() const;

    /** True if @p addr routes to the alpha shadow partition. */
    bool toAlpha(Addr addr) const { return hash_.hash(addr) < limit_; }

    /**
     * True when every address routes to alpha (rho saturated the
     * limit register at 2^bits, above any possible hash value — the
     * degenerate/unconfigured state every partition starts in). Lets
     * hot paths skip the H3 evaluation entirely: toAlpha() is
     * constant-true, so the shortcut is trivially bit-exact.
     */
    bool alwaysAlpha() const { return limit_ >= hash_.range(); }

    /** Raw limit register value, for the hardware-cost model. */
    uint64_t limit() const { return limit_; }

    /** The routing hash, for batched evaluation: comparing
     *  hashFn().hash(addr) < limit() is exactly toAlpha(). */
    const H3Hash& hashFn() const { return hash_; }

    /** Hash/limit width in bits. */
    uint32_t bits() const { return hash_.outBits(); }

  private:
    H3Hash hash_;
    uint64_t limit_;
};

} // namespace talus

#endif // TALUS_CORE_SHADOW_ROUTER_H
