#include "core/hardware_cost.h"

namespace talus {

HardwareCost
computeHardwareCost(const HardwareCostParams& p)
{
    HardwareCost cost;

    const uint64_t llc_lines = p.llcBytes / p.lineBytes;

    // Doubling partitions widens each line's partition-id by one bit.
    cost.tagExtensionBytes = llc_lines / 8;

    // 256 bits of Vantage bookkeeping per added (shadow) partition.
    cost.vantageStateBytes =
        static_cast<uint64_t>(p.cores) * p.vantageBitsPerPart / 8;

    // One sampling function (8-bit H3 + 8-bit limit) per logical
    // partition.
    cost.samplerBytes = static_cast<uint64_t>(p.cores) * p.samplerBits / 8;

    // Monitors: the conventional UMON is charged to the baseline
    // partitioning hardware; Talus adds the low-rate sampled monitor
    // (same sets, sampledUmonWays ways).
    const uint64_t tag_bytes = p.umonTagBits / 8;
    cost.baseMonitorBytes = static_cast<uint64_t>(p.cores) * p.umonLines *
                            tag_bytes;
    const uint64_t sampled_lines =
        static_cast<uint64_t>(p.umonLines) * p.sampledUmonWays / p.umonWays;
    cost.talusMonitorBytes =
        static_cast<uint64_t>(p.cores) * sampled_lines * tag_bytes;

    cost.talusTotalBytes = cost.tagExtensionBytes + cost.vantageStateBytes +
                           cost.samplerBytes + cost.talusMonitorBytes;
    cost.llcOverheadFraction =
        static_cast<double>(cost.talusTotalBytes) /
        static_cast<double>(p.llcBytes);
    return cost;
}

} // namespace talus
