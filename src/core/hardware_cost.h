/**
 * @file
 * Hardware overhead model (Sec. VI-D).
 *
 * Reproduces the paper's accounting of Talus's extra state on top of
 * an existing partitioned cache:
 *
 *  - doubling the number of partitions: +1 tag bit per LLC line (to
 *    widen the partition-id field) and 256 bits of Vantage state per
 *    added partition;
 *  - one sampling function per logical partition: an 8-bit H3 hash
 *    plus an 8-bit limit register;
 *  - monitors: a 64-way, 1K-line UMON per core (32-bit tags = 4KB)
 *    exists already for partitioning; Talus adds the 1:16-sampled
 *    16-way monitor (1KB) to cover 4x the LLC size.
 *
 * On the paper's 8-core, 8MB system this totals 24.2KB, 0.3% of LLC
 * capacity; the table2_overheads bench regenerates that arithmetic.
 */

#ifndef TALUS_CORE_HARDWARE_COST_H
#define TALUS_CORE_HARDWARE_COST_H

#include <cstdint>

namespace talus {

/** System parameters for the overhead model. */
struct HardwareCostParams
{
    uint32_t cores = 8;              //!< Cores = logical partitions.
    uint64_t llcBytes = 8ull << 20;  //!< LLC capacity in bytes.
    uint32_t lineBytes = 64;         //!< Cache line size.
    uint32_t umonWays = 64;          //!< Primary UMON associativity.
    uint32_t umonLines = 1024;       //!< Primary UMON lines.
    uint32_t umonTagBits = 32;       //!< Monitor tag width.
    uint32_t sampledUmonWays = 16;   //!< Talus's extra monitor ways.
    uint32_t vantageBitsPerPart = 256; //!< Per-partition Vantage state.
    uint32_t samplerBits = 16;       //!< H3 (8) + limit register (8).
};

/** Computed overhead breakdown, in bytes unless noted. */
struct HardwareCost
{
    uint64_t tagExtensionBytes;   //!< +1 partition-id bit per line.
    uint64_t vantageStateBytes;   //!< Extra partition state.
    uint64_t samplerBytes;        //!< Hash + limit registers.
    uint64_t baseMonitorBytes;    //!< Pre-existing UMONs (not Talus).
    uint64_t talusMonitorBytes;   //!< Talus's extra sampled monitors.
    uint64_t talusTotalBytes;     //!< Everything Talus adds.
    double llcOverheadFraction;   //!< talusTotalBytes / llcBytes.
};

/** Evaluates the overhead model for @p params. */
HardwareCost computeHardwareCost(const HardwareCostParams& params);

} // namespace talus

#endif // TALUS_CORE_HARDWARE_COST_H
