/**
 * @file
 * Miss curves: the central data structure of Talus.
 *
 * A miss curve m(s) maps cache size (in lines) to a miss metric
 * (miss ratio, MPKI, or raw misses — Talus's math is invariant to the
 * vertical unit). Curves are piecewise-linear over a set of sampled
 * points, matching what hardware monitors produce (Sec. VI-C).
 */

#ifndef TALUS_CORE_MISS_CURVE_H
#define TALUS_CORE_MISS_CURVE_H

#include <cstddef>
#include <vector>

namespace talus {

/** One sampled point of a miss curve. */
struct CurvePoint
{
    double size;   //!< Cache size in lines.
    double misses; //!< Miss metric at that size.
};

/** A piecewise-linear miss curve over sampled points. */
class MissCurve
{
  public:
    /** An empty curve; invalid until points are provided. */
    MissCurve() = default;

    /**
     * Builds a curve from points. Points are sorted by size; duplicate
     * sizes keep the smaller miss value. At least one point required.
     */
    explicit MissCurve(std::vector<CurvePoint> points);

    /**
     * Convenience: point i at size i * granularity with value
     * misses[i].
     */
    MissCurve(const std::vector<double>& misses, double granularity);

    /** Number of sampled points. */
    size_t numPoints() const { return pts_.size(); }

    /** The i-th point (sorted by size). */
    const CurvePoint& point(size_t i) const { return pts_[i]; }

    /** All points. */
    const std::vector<CurvePoint>& points() const { return pts_; }

    /** Smallest sampled size. */
    double minSize() const;

    /** Largest sampled size. */
    double maxSize() const;

    /**
     * Evaluates the curve at @p size with linear interpolation,
     * clamping to the first/last point outside the sampled range.
     */
    double at(double size) const;

    /** True if misses never increase with size (within @p tol). */
    bool isNonIncreasing(double tol = 1e-9) const;

    /**
     * True if the curve is convex (slope non-decreasing within
     * @p tol). Convex curves have no performance cliffs (Sec. II-D).
     */
    bool isConvex(double tol = 1e-9) const;

    /** Returns a copy with sizes and values scaled. */
    MissCurve scaled(double size_factor, double miss_factor) const;

    /**
     * Returns a copy clamped to be non-increasing (each value at most
     * the previous one). Used to tame monitor sampling noise.
     */
    MissCurve monotoneClamped() const;

  private:
    std::vector<CurvePoint> pts_;
};

} // namespace talus

#endif // TALUS_CORE_MISS_CURVE_H
