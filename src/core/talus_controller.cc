#include "core/talus_controller.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/log.h"

namespace talus {

TalusController::TalusController(std::unique_ptr<PartitionedCacheBase> phys,
                                 const Config& config)
    : cfg_(config), phys_(std::move(phys))
{
    talus_assert(cfg_.numLogicalParts >= 1, "need >= 1 logical partition");
    talus_assert(phys_ != nullptr, "controller needs a cache");
    talus_assert(phys_->numPartitions() == 2 * cfg_.numLogicalParts,
                 "physical cache must have 2x logical partitions (",
                 phys_->numPartitions(), " vs 2x", cfg_.numLogicalParts,
                 ")");
    talus_assert(cfg_.usableFraction > 0 && cfg_.usableFraction <= 1.0,
                 "usable fraction must be in (0,1]");

    routers_.reserve(cfg_.numLogicalParts);
    for (uint32_t p = 0; p < cfg_.numLogicalParts; ++p) {
        routers_.emplace_back(cfg_.routerBits,
                              cfg_.seed + 0x9E37 * (p + 1));
        routers_.back().setRho(1.0); // Everything to alpha until configured.
    }
    shadowCfg_.resize(cfg_.numLogicalParts);
}

bool
TalusController::access(Addr addr, PartId part)
{
    talus_assert(part < cfg_.numLogicalParts, "bad logical partition ",
                 part);
    const PartId phys_part =
        routers_[part].toAlpha(addr) ? 2 * part : 2 * part + 1;
    return phys_->access(addr, phys_part);
}

uint64_t
TalusController::accessBlock(const Addr* addrs, uint64_t n, PartId part)
{
    talus_assert(part < cfg_.numLogicalParts, "bad logical partition ",
                 part);
    if (n == 0)
        return 0;
    const ShadowRouter& router = routers_[part];
    if (router.alwaysAlpha()) {
        // Saturated limit register: every address goes to alpha, so
        // skip the hash pass and drive the uniform batched entry
        // (identical to a routed block whose partitions are all
        // alpha). Degenerate partitions — including every partition
        // before its first real configuration — take this path.
        return phys_->accessBatchUniform(addrs, n, 2 * part);
    }
    if (n == 1) {
        // Serial fast path: one hash, one routed access, no scratch.
        const PartId phys = router.toAlpha(addrs[0]) ? 2 * part
                                                     : 2 * part + 1;
        return phys_->accessBatchRouted(addrs, &phys, 1);
    }
    routeHash_.resize(n);
    routeParts_.resize(n);
    router.hashFn().hashBlock(Span<const Addr>(addrs, n),
                              routeHash_.data());
    const uint64_t limit = router.limit();
    const PartId alpha = 2 * part;
    const PartId beta = 2 * part + 1;
    for (uint64_t i = 0; i < n; ++i)
        routeParts_[i] = routeHash_[i] < limit ? alpha : beta;
    return phys_->accessBatchRouted(addrs, routeParts_.data(), n);
}

std::vector<MissCurve>
TalusController::convexHulls(const std::vector<MissCurve>& curves)
{
    std::vector<MissCurve> hulls;
    hulls.reserve(curves.size());
    for (const MissCurve& c : curves)
        hulls.push_back(ConvexHull(c).hull());
    return hulls;
}

void
TalusController::configure(const std::vector<MissCurve>& curves,
                           const std::vector<uint64_t>& logical_alloc)
{
    // User-facing configuration errors: fatal with actionable
    // messages, not asserts — a bad allocator or caller wiring must
    // not read as a library bug.
    if (curves.size() != cfg_.numLogicalParts)
        talus_fatal("TalusController::configure: expected ",
                    cfg_.numLogicalParts,
                    " miss curves (one per logical partition), got ",
                    curves.size());
    if (logical_alloc.size() != cfg_.numLogicalParts)
        talus_fatal("TalusController::configure: expected ",
                    cfg_.numLogicalParts,
                    " allocations (one per logical partition), got ",
                    logical_alloc.size());
    const uint64_t total = std::accumulate(logical_alloc.begin(),
                                           logical_alloc.end(), uint64_t{0});
    if (total > phys_->capacityLines())
        talus_fatal("TalusController::configure: allocations sum to ",
                    total, " lines and exceed capacity (",
                    phys_->capacityLines(),
                    " lines); the partitioning algorithm must allocate "
                    "at most the physical capacity (check allocator "
                    "granularity and set-rounding)");

    // Compute shadow partition sizes for every logical partition.
    std::vector<uint64_t> phys_targets(2 * cfg_.numLogicalParts, 0);
    for (uint32_t p = 0; p < cfg_.numLogicalParts; ++p) {
        const double usable =
            static_cast<double>(logical_alloc[p]) * cfg_.usableFraction;
        const ConvexHull hull(curves[p]);
        TalusConfig tc = computeTalusConfig(hull, usable, cfg_.margin);

        uint64_t s1 = static_cast<uint64_t>(std::llround(tc.s1));
        const uint64_t usable_lines =
            static_cast<uint64_t>(std::floor(usable));
        s1 = std::min(s1, usable_lines);
        phys_targets[2 * p] = s1;
        phys_targets[2 * p + 1] = usable_lines - s1;
        shadowCfg_[p] = tc;
    }

    phys_->setTargets(phys_targets);

    // Apply sampling rates, optionally recomputed from the coarsened
    // sizes the scheme actually achieved (way partitioning; Sec. VI-B:
    // rho = s1 / alpha).
    for (uint32_t p = 0; p < cfg_.numLogicalParts; ++p) {
        TalusConfig& tc = shadowCfg_[p];
        if (tc.degenerate) {
            routers_[p].setRho(1.0);
            tc.rho = 1.0;
            continue;
        }
        if (cfg_.recomputeFromCoarsened) {
            const double s1c =
                static_cast<double>(phys_->targetOf(2 * p));
            const double s2c =
                static_cast<double>(phys_->targetOf(2 * p + 1));
            if (s1c + s2c > 0 && tc.alpha > 0) {
                const double rho = std::clamp(s1c / tc.alpha, 0.0, 1.0);
                tc.s1 = s1c;
                tc.s2 = s2c;
                tc.rho = std::min(1.0, rho * (1.0 + cfg_.margin));
            }
        }
        routers_[p].setRho(tc.rho);
    }
}

const TalusConfig&
TalusController::configOf(PartId p) const
{
    talus_assert(p < shadowCfg_.size(), "bad logical partition ", p);
    return shadowCfg_[p];
}

double
TalusController::routedRho(PartId p) const
{
    talus_assert(p < routers_.size(), "bad logical partition ", p);
    return routers_[p].effectiveRho();
}

uint64_t
TalusController::logicalAccesses(PartId p) const
{
    const CacheStats& stats = phys_->stats();
    return stats.accesses(2 * p) + stats.accesses(2 * p + 1);
}

uint64_t
TalusController::logicalMisses(PartId p) const
{
    const CacheStats& stats = phys_->stats();
    return stats.misses(2 * p) + stats.misses(2 * p + 1);
}

} // namespace talus
