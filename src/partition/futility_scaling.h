/**
 * @file
 * Futility Scaling (Wang & Chen, MICRO'47) — fine-grained
 * partitioning without an unmanaged region.
 *
 * Each partition scales its lines' "futility" (eviction priority;
 * here, the line's age) by a per-partition factor, and the cache
 * evicts the candidate with the highest scaled futility. A feedback
 * controller nudges each factor up when the partition is over target
 * and down when under, so occupancies converge to the targets while
 * every line in the cache remains managed.
 *
 * The Talus paper singles this scheme out (Sec. VI-B): "Using Talus
 * with Futility Scaling would avoid this complication" — the
 * complication being Vantage's 10% unmanaged region, which forces
 * Talus to assume only 0.9s of usable capacity. With this scheme the
 * controller can use usableFraction = 1.0; the
 * ablation_futility_vs_vantage bench quantifies the difference.
 */

#ifndef TALUS_PARTITION_FUTILITY_SCALING_H
#define TALUS_PARTITION_FUTILITY_SCALING_H

#include <vector>

#include "cache/scheme.h"

namespace talus {

/** Futility-scaling partitioning with proportional feedback. */
class FutilityScheme : public PartitionScheme
{
  public:
    /** Tuning knobs. */
    struct Config
    {
        double gain = 0.3;        //!< Proportional feedback gain.
        double minScale = 1e-3;   //!< Scale factor clamp (low).
        double maxScale = 1e3;    //!< Scale factor clamp (high).
        uint64_t adjustEvery = 256; //!< Insertions between adjustments.
    };

    /** Constructs the scheme with default tuning. */
    explicit FutilityScheme(uint32_t num_parts);

    /** Constructs the scheme with explicit tuning. */
    FutilityScheme(uint32_t num_parts, const Config& config);

    void init(SetAssocCache* cache) override;
    uint32_t numPartitions() const override { return numParts_; }
    void setTargets(const std::vector<uint64_t>& lines) override;
    uint64_t target(PartId part) const override;
    uint64_t occupancy(PartId part) const override;
    uint32_t selectVictim(uint32_t set, PartId part,
                          ReplPolicy& policy) override;
    void onInsert(uint32_t line, PartId part) override;
    void onEvict(uint32_t line, PartId owner) override;
    void onHit(uint32_t line, PartId owner, PartId part) override;
    const char* name() const override { return "Futility"; }

    /** Current scaling factor of @p part, for tests/diagnostics. */
    double scaleOf(PartId part) const { return scale_[part]; }

  private:
    void adjustScales();

    uint32_t numParts_;
    Config cfg_;
    std::vector<uint64_t> targets_;
    std::vector<uint64_t> occ_;
    std::vector<double> scale_;
    std::vector<uint64_t> stamps_; //!< Per-line last-touch time.
    uint64_t clock_ = 0;
    uint64_t insertions_ = 0;
};

} // namespace talus

#endif // TALUS_PARTITION_FUTILITY_SCALING_H
