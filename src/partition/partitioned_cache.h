/**
 * @file
 * Uniform interface over partitioned caches.
 *
 * The Talus controller, the partitioning algorithms, and the
 * simulation engines all talk to a PartitionedCacheBase: a cache with
 * N software-visible partitions whose sizes can be re-targeted at
 * runtime. Two implementations exist:
 *
 *  - SchemePartitionedCache: a SetAssocCache plus a PartitionScheme
 *    (way / set / Vantage / unpartitioned).
 *  - IdealPartitionedCache (partition/ideal_partition.h): one exact
 *    fully-associative LRU per partition ("idealized partitioning",
 *    Talus+I in Fig. 8).
 */

#ifndef TALUS_PARTITION_PARTITIONED_CACHE_H
#define TALUS_PARTITION_PARTITIONED_CACHE_H

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_stats.h"
#include "cache/set_assoc_cache.h"
#include "util/types.h"

namespace talus {

class VantageScheme;
class LruPolicy;

/** Abstract partitioned cache with runtime-resizable partitions. */
class PartitionedCacheBase
{
  public:
    virtual ~PartitionedCacheBase() = default;

    /** One access by partition @p part; returns true on hit. */
    virtual bool access(Addr addr, PartId part) = 0;

    /**
     * A block of accesses with a per-address partition array (the
     * Talus controller's routed path). Bit-exact with calling
     * access() per element; implementations may fuse the per-access
     * virtual dispatch away. @return Number of hits.
     */
    virtual uint64_t accessBatchRouted(const Addr* addrs,
                                       const PartId* parts, uint64_t n)
    {
        uint64_t hits = 0;
        for (uint64_t i = 0; i < n; ++i)
            hits += access(addrs[i], parts[i]);
        return hits;
    }

    /**
     * A block of accesses all by partition @p part (the plain
     * facade path). Bit-exact with calling access() per element.
     * @return Number of hits.
     */
    virtual uint64_t accessBatchUniform(const Addr* addrs, uint64_t n,
                                        PartId part)
    {
        uint64_t hits = 0;
        for (uint64_t i = 0; i < n; ++i)
            hits += access(addrs[i], part);
        return hits;
    }

    /** Re-targets partition sizes (lines, one entry per partition). */
    virtual void setTargets(const std::vector<uint64_t>& lines) = 0;

    /** Number of software-visible partitions. */
    virtual uint32_t numPartitions() const = 0;

    /** Total capacity in lines. */
    virtual uint64_t capacityLines() const = 0;

    /** Actual lines held by @p part. */
    virtual uint64_t occupancy(PartId part) const = 0;

    /**
     * Effective (post-coarsening) target of @p part in lines. For way
     * partitioning this is the way-granular size, which Talus uses to
     * recompute its sampling rate (Sec. VI-B).
     */
    virtual uint64_t targetOf(PartId part) const = 0;

    /** Shared statistics (per-PartId). */
    virtual CacheStats& stats() = 0;
    virtual const CacheStats& stats() const = 0;

    /** Scheme name for reporting. */
    virtual const char* schemeName() const = 0;

    /** Periodic hook forwarded to policies that recompute state. */
    virtual void nextInterval() {}
};

/** A SetAssocCache driven through a PartitionScheme. */
class SchemePartitionedCache : public PartitionedCacheBase
{
  public:
    /**
     * @param config Cache geometry.
     * @param policy Replacement policy (owned).
     * @param scheme Partitioning scheme (owned, required).
     */
    SchemePartitionedCache(const SetAssocCache::Config& config,
                           std::unique_ptr<ReplPolicy> policy,
                           std::unique_ptr<PartitionScheme> scheme);

    bool access(Addr addr, PartId part) override;
    uint64_t accessBatchRouted(const Addr* addrs, const PartId* parts,
                               uint64_t n) override;
    uint64_t accessBatchUniform(const Addr* addrs, uint64_t n,
                                PartId part) override;
    void setTargets(const std::vector<uint64_t>& lines) override;
    uint32_t numPartitions() const override;
    uint64_t capacityLines() const override;
    uint64_t occupancy(PartId part) const override;
    uint64_t targetOf(PartId part) const override;
    CacheStats& stats() override { return cache_.stats(); }
    const CacheStats& stats() const override { return cache_.stats(); }
    const char* schemeName() const override;
    void nextInterval() override { cache_.policy().nextInterval(); }

    /** Underlying cache, for tests and monitors. */
    SetAssocCache& cache() { return cache_; }

    /** True when the fused Vantage+LRU batch kernel is active (the
     *  scheme is VantageScheme and the policy is exactly LRU). */
    bool fusedKernelActive() const { return fusedLru_ != nullptr; }

  private:
    /** The fused Vantage+LRU batch kernel: one devirtualized loop
     *  replicating access() exactly. @p route is per-address
     *  partitions or nullptr for uniform @p upart. */
    uint64_t fusedBatch(const Addr* addrs, const PartId* route,
                        uint64_t n, PartId upart);

    /** Rebuilds the per-set occupancy masks from the line arrays and
     *  records the cache's mutation epoch. Called lazily by
     *  fusedBatch when someone mutated lines behind its back. */
    void rebuildMasks();

    SetAssocCache cache_;
    VantageScheme* fusedVantage_ = nullptr; //!< Set iff kernel usable.
    LruPolicy* fusedLru_ = nullptr;         //!< Set iff kernel usable.

    /**
     * Per-set way bitmaps mirroring the line arrays, so the kernel's
     * victim scans only visit relevant ways (bit order == way order,
     * preserving the generic scan order exactly). unmanagedMask_[s]
     * has bit w set iff line s*ways+w is valid and unmanaged;
     * partMask_[s*nparts+p] iff it is valid and owned by p. Invalid
     * lines appear in neither. Valid only while maskEpoch_ matches
     * cache_.mutationEpoch().
     */
    std::vector<uint64_t> unmanagedMask_;
    std::vector<uint64_t> partMask_;
    uint64_t maskEpoch_ = ~0ull; //!< Forces the initial rebuild.
    std::vector<uint32_t> setScratch_; //!< Precomputed set indices.

    /**
     * Kernel context captured at rebuildMasks() time: every pointer
     * and geometry field fusedBatch needs, packed so a single-access
     * call reads one struct instead of chasing through four objects.
     * All pointers are stable between rebuilds — the paths that could
     * reseat them (generic access, invalidation, setTargets) bump the
     * mutation epoch or invalidate maskEpoch_ directly.
     */
    struct FusedCtx
    {
        Addr* tags;
        uint8_t* valid;
        PartId* lparts;
        uint64_t* stamps;
        uint64_t* clock;
        uint64_t* occ;
        const uint64_t* targets;
        uint64_t* unmanaged;
        uint64_t* umk;
        uint64_t* pmk;
        uint64_t* accRaw;
        uint64_t* hitRaw;
        uint64_t hashSeed;
        uint32_t ways;
        uint32_t sets;
        uint32_t setMask;
        uint32_t nparts;
        bool setsPow2;
        bool hashed;
    };
    FusedCtx ctx_{};
};

/** Which partitioned-cache construction to use. */
enum class SchemeKind
{
    Unpartitioned,
    Way,
    Set,
    Vantage,
    Futility,
    Ideal,
};

/** Parses a scheme name ("Unpartitioned", "Way", "Set", "Vantage",
 *  "Futility", "Ideal"); fatal on unknown names. */
SchemeKind parseSchemeKind(const std::string& name);

/**
 * The fraction of a partition's allocation Talus can actually rely on
 * under @p kind: 0.9 for Vantage (its unmanaged region gives no
 * capacity guarantees, Sec. VI-B), 1.0 for everything else —
 * including Futility Scaling, which is precisely why the paper
 * suggests it.
 */
double schemeUsableFraction(SchemeKind kind);

/**
 * Builds a partitioned cache.
 *
 * @param kind Scheme kind; Ideal requires policy_name == "LRU".
 * @param capacity_lines Total capacity in lines.
 * @param num_ways Associativity for scheme-based caches.
 * @param policy_name Replacement policy name (see policy_factory.h).
 * @param num_parts Number of software partitions.
 * @param seed Seed for stochastic policy/scheme components.
 */
std::unique_ptr<PartitionedCacheBase>
makePartitionedCache(SchemeKind kind, uint64_t capacity_lines,
                     uint32_t num_ways, const std::string& policy_name,
                     uint32_t num_parts, uint64_t seed = 0xCACE);

} // namespace talus

#endif // TALUS_PARTITION_PARTITIONED_CACHE_H
