/**
 * @file
 * Uniform interface over partitioned caches.
 *
 * The Talus controller, the partitioning algorithms, and the
 * simulation engines all talk to a PartitionedCacheBase: a cache with
 * N software-visible partitions whose sizes can be re-targeted at
 * runtime. Two implementations exist:
 *
 *  - SchemePartitionedCache: a SetAssocCache plus a PartitionScheme
 *    (way / set / Vantage / unpartitioned).
 *  - IdealPartitionedCache (partition/ideal_partition.h): one exact
 *    fully-associative LRU per partition ("idealized partitioning",
 *    Talus+I in Fig. 8).
 */

#ifndef TALUS_PARTITION_PARTITIONED_CACHE_H
#define TALUS_PARTITION_PARTITIONED_CACHE_H

#include <memory>
#include <string>
#include <vector>

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#include <immintrin.h>
#endif

#include "cache/cache_stats.h"
#include "cache/set_assoc_cache.h"
#include "util/aligned.h"
#include "util/bits.h"
#include "util/log.h"
#include "util/types.h"

namespace talus {

class VantageScheme;
class LruPolicy;

/** Abstract partitioned cache with runtime-resizable partitions. */
class PartitionedCacheBase
{
  public:
    virtual ~PartitionedCacheBase() = default;

    /** One access by partition @p part; returns true on hit. */
    virtual bool access(Addr addr, PartId part) = 0;

    /**
     * A block of accesses with a per-address partition array (the
     * Talus controller's routed path). Bit-exact with calling
     * access() per element; implementations may fuse the per-access
     * virtual dispatch away. @return Number of hits.
     */
    virtual uint64_t accessBatchRouted(const Addr* addrs,
                                       const PartId* parts, uint64_t n)
    {
        uint64_t hits = 0;
        for (uint64_t i = 0; i < n; ++i)
            hits += access(addrs[i], parts[i]);
        return hits;
    }

    /**
     * A block of accesses all by partition @p part (the plain
     * facade path). Bit-exact with calling access() per element.
     * @return Number of hits.
     */
    virtual uint64_t accessBatchUniform(const Addr* addrs, uint64_t n,
                                        PartId part)
    {
        uint64_t hits = 0;
        for (uint64_t i = 0; i < n; ++i)
            hits += access(addrs[i], part);
        return hits;
    }

    /** Re-targets partition sizes (lines, one entry per partition). */
    virtual void setTargets(const std::vector<uint64_t>& lines) = 0;

    /** Number of software-visible partitions. */
    virtual uint32_t numPartitions() const = 0;

    /** Total capacity in lines. */
    virtual uint64_t capacityLines() const = 0;

    /** Actual lines held by @p part. */
    virtual uint64_t occupancy(PartId part) const = 0;

    /**
     * Effective (post-coarsening) target of @p part in lines. For way
     * partitioning this is the way-granular size, which Talus uses to
     * recompute its sampling rate (Sec. VI-B).
     */
    virtual uint64_t targetOf(PartId part) const = 0;

    /** Shared statistics (per-PartId). */
    virtual CacheStats& stats() = 0;
    virtual const CacheStats& stats() const = 0;

    /** Scheme name for reporting. */
    virtual const char* schemeName() const = 0;

    /** Periodic hook forwarded to policies that recompute state. */
    virtual void nextInterval() {}
};

/**
 * 32-bit fold of a line address, used as a probe fingerprint by the
 * fused kernels: a whole 16-way row of fingerprints fits one cache
 * line, so the common probe touches half the lines the full tag row
 * would. Any fold works — a colliding fingerprint only costs a
 * verification load against the canonical tag, never correctness.
 */
inline uint32_t
tagFingerprint(Addr a)
{
    return static_cast<uint32_t>(a) ^ static_cast<uint32_t>(a >> 32);
}

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
#define TALUS_FUSED1_AVX2 1
#endif

#if TALUS_FUSED1_AVX2
/**
 * AVX2 specializations of the single-access kernel's two 16-way
 * loops. The serial facade inlines accessFused1 into plain-baseline
 * callers, where GCC's auto-vectorizer never fires (unlike the
 * target_clones'd batch kernel), so the hot row scans run ~64 scalar
 * ops each; these hand-written bodies do the same work in a handful
 * of vector ops behind one predictable cpu-support branch. Both are
 * bit-exact with the scalar loops: the probe is pure lane-wise
 * equality, and the argmin reduces unique keys, so the minimum is
 * order-independent.
 */
namespace fused1 {

/** True once at startup iff the host executes AVX2. */
inline const bool kHaveAvx2 = __builtin_cpu_supports("avx2");

/** 16-lane fingerprint-equality mask over one 64-byte row. */
__attribute__((target("avx2"))) inline uint64_t
probeRow16(const uint32_t* row, uint32_t fp)
{
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(fp));
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(row + 8));
    const uint32_t mlo = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lo, needle))));
    const uint32_t mhi = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(hi, needle))));
    return mlo | (mhi << 8);
}

/**
 * Way of the minimum packed key ((stamp << 6) | way, excluded ways
 * saturated to all-ones) over a 16-way stamp row. @p m != 0. AVX2 has
 * no unsigned 64-bit min, so lanes are compared with the sign bit
 * flipped (signed greater-than over biased values == unsigned).
 */
__attribute__((target("avx2"))) inline uint32_t
argminRow16(const uint64_t* srow, uint64_t m)
{
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i mv = _mm256_set1_epi64x(static_cast<long long>(m));
    const __m256i sgn = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    __m256i best = _mm256_set1_epi64x(-1);
    for (uint32_t g = 0; g < 4; ++g) {
        const __m256i widx = _mm256_setr_epi64x(
            g * 4, g * 4 + 1, g * 4 + 2, g * 4 + 3);
        // excl = (bit set ? 0 : ~0), as (bit & 1) - 1.
        const __m256i bit =
            _mm256_and_si256(_mm256_srlv_epi64(mv, widx), one);
        const __m256i excl = _mm256_sub_epi64(bit, one);
        const __m256i st = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(srow + g * 4));
        const __m256i key = _mm256_or_si256(
            _mm256_or_si256(_mm256_slli_epi64(st, 6), widx), excl);
        const __m256i gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(best, sgn), _mm256_xor_si256(key, sgn));
        best = _mm256_blendv_epi8(best, key, gt);
    }
    alignas(32) uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    uint64_t k = lanes[0];
    k = lanes[1] < k ? lanes[1] : k;
    k = lanes[2] < k ? lanes[2] : k;
    k = lanes[3] < k ? lanes[3] : k;
    return static_cast<uint32_t>(k & 63);
}

} // namespace fused1
#endif // TALUS_FUSED1_AVX2

/** A SetAssocCache driven through a PartitionScheme. */
class SchemePartitionedCache : public PartitionedCacheBase
{
  public:
    /**
     * @param config Cache geometry.
     * @param policy Replacement policy (owned).
     * @param scheme Partitioning scheme (owned, required).
     */
    SchemePartitionedCache(const SetAssocCache::Config& config,
                           std::unique_ptr<ReplPolicy> policy,
                           std::unique_ptr<PartitionScheme> scheme);

    bool access(Addr addr, PartId part) override;
    uint64_t accessBatchRouted(const Addr* addrs, const PartId* parts,
                               uint64_t n) override;
    uint64_t accessBatchUniform(const Addr* addrs, uint64_t n,
                                PartId part) override;
    void setTargets(const std::vector<uint64_t>& lines) override;
    uint32_t numPartitions() const override;
    uint64_t capacityLines() const override;
    uint64_t occupancy(PartId part) const override;
    uint64_t targetOf(PartId part) const override;
    CacheStats& stats() override { return cache_.stats(); }
    const CacheStats& stats() const override { return cache_.stats(); }
    const char* schemeName() const override;
    void nextInterval() override { cache_.policy().nextInterval(); }

    /** Underlying cache, for tests and monitors. */
    SetAssocCache& cache() { return cache_; }

    /** True when the fused Vantage+LRU batch kernel is active (the
     *  scheme is VantageScheme and the policy is exactly LRU). */
    bool fusedKernelActive() const { return fusedLru_ != nullptr; }

    /**
     * The single-access specialization of the fused kernel, header-
     * inline so the TalusCache facade's flattened serial path pays no
     * out-of-line call for a whole access (monitor sample + route +
     * this probe run straight-line in the caller). Bit-exact with
     * fusedBatch(&addr, nullptr, 1, part): the same operations in the
     * same order, minus the block-only machinery (set precompute,
     * prefetch lookahead) that is a no-op at n == 1.
     *
     * Ownership is derived from the per-set masks instead of the
     * lparts/valid arrays (the struct-of-arrays layout the kernel
     * maintains): a hit way is unmanaged iff its umk bit is set, a
     * victim's owner is implied by which mask selected it, and an
     * invalid-way victim needs no eviction bookkeeping at all. The
     * canonical arrays are still written on every mutation, so
     * external readers (the generic path, tests, invalidation) always
     * see the same state.
     *
     * Caller must check fusedKernelActive() first.
     *
     * always_inline because this is the whole point of the flattened
     * facade path: at ~150 statements GCC's inliner judges the body
     * too big and emits a call, which reintroduces exactly the
     * per-access call overhead the facade flattening removed.
     */
    __attribute__((always_inline)) inline bool
    accessFused1(Addr addr, PartId part)
    {
        if (maskEpoch_ != cache_.mutationEpoch())
            rebuildMasks();
        const FusedCtx& c = ctx_;
        const uint32_t ways = c.ways;
        const uint32_t nparts = c.nparts;
        talus_assert(part < nparts, "bad partition id ", part);
        talus_assert(addr != SetAssocCache::kInvalidTag,
                     "address aliases the invalid-tag sentinel");
        const uint64_t h = c.hashed ? mix64(addr ^ c.hashSeed) : addr;
        const uint32_t set =
            c.setsPow2 ? static_cast<uint32_t>(h & c.setMask)
                       : static_cast<uint32_t>(h % c.sets);
        const uint32_t base = set * ways;
        Addr* tags = c.tags;
        uint64_t* stamps = c.stamps;
        uint64_t* umk = c.umk;
        uint64_t* pmk = c.pmk;
        uint32_t* fpt = c.fpt;

        // Touch the stamp row and masks before the probe resolves:
        // every access writes a stamp (hit promotion or insert) and
        // reads the set's masks, but those loads sit behind the
        // hit/miss branch — hoisted prefetches overlap their latency
        // with the fingerprint probe instead of serializing after it.
        __builtin_prefetch(&stamps[base], 1);
        __builtin_prefetch(&stamps[base + ways - 1], 1);
        __builtin_prefetch(&umk[set], 1);
        __builtin_prefetch(&pmk[static_cast<size_t>(set) * nparts], 1);

        // Probe the 32-bit fingerprint row — one cache line covers all
        // 16 ways, where the full tag row needs two. A fingerprint
        // match is only a candidate: it is verified against the
        // canonical tag below, so fold collisions cost a verify, never
        // correctness. No fingerprint match is a definite miss (the
        // fold is a function of the address), in which case the full
        // tag row is never read at all.
        const uint32_t fp = tagFingerprint(addr);
        uint64_t m_fp = 0;
#if TALUS_FUSED1_AVX2
        if (ways == 16 && fused1::kHaveAvx2) {
            m_fp = fused1::probeRow16(fpt + base, fp);
        } else
#endif
        {
            for (uint32_t w = 0; w < ways; ++w) {
                m_fp |= static_cast<uint64_t>(fpt[base + w] == fp)
                        << w;
            }
        }
        uint64_t m_match = 0;
        while (m_fp != 0) {
            const uint32_t w =
                static_cast<uint32_t>(__builtin_ctzll(m_fp));
            if (tags[base + w] == addr) {
                m_match = 1ull << w;
                break; // Tags are unique per set; lowest way first.
            }
            m_fp &= m_fp - 1;
        }
        c.accRaw[part]++;

        // Same packed-key branchless argmin as fusedBatch (see the
        // kernel for the full rationale); m != 0 guaranteed.
        const auto argminStamp = [&](uint64_t m) -> uint32_t {
#if TALUS_FUSED1_AVX2
            if (ways == 16 && fused1::kHaveAvx2)
                return base + fused1::argminRow16(stamps + base, m);
#endif
            uint64_t best = ~0ull;
            if (ways == 16) {
                for (uint32_t w = 0; w < 16; ++w) {
                    const uint64_t excl = -(((m >> w) & 1) ^ 1ull);
                    const uint64_t key =
                        ((stamps[base + w] << 6) | w) | excl;
                    best = key < best ? key : best;
                }
            } else {
                for (uint32_t w = 0; w < ways; ++w) {
                    const uint64_t excl = -(((m >> w) & 1) ^ 1ull);
                    const uint64_t key =
                        ((stamps[base + w] << 6) | w) | excl;
                    best = key < best ? key : best;
                }
            }
            return base + static_cast<uint32_t>(best & 63);
        };

        const auto demote = [&](uint32_t inserted, PartId p) {
            if (c.occ[p] <= c.targets[p] || c.targets[p] == 0)
                return;
            const uint64_t m =
                pmk[static_cast<size_t>(set) * nparts + p] &
                ~(1ull << (inserted - base));
            if (m == 0)
                return;
            const uint32_t demoted = argminStamp(m);
            c.lparts[demoted] = kNoPart;
            c.occ[p]--;
            (*c.unmanaged)++;
            pmk[static_cast<size_t>(set) * nparts + p] &=
                ~(1ull << (demoted - base));
            umk[set] |= 1ull << (demoted - base);
        };

        if (m_match != 0) {
            const uint32_t hw =
                static_cast<uint32_t>(__builtin_ctzll(m_match));
            const uint32_t hit_line = base + hw;
            c.hitRaw[part]++;
            stamps[hit_line] = ++*c.clock;
            if ((umk[set] >> hw) & 1) {
                // Promotion — the hit way's umk bit says it was
                // unmanaged (masks track exactly valid+kNoPart).
                c.lparts[hit_line] = part;
                c.occ[part]++;
                if (*c.unmanaged > 0)
                    (*c.unmanaged)--;
                umk[set] &= ~(1ull << hw);
                pmk[static_cast<size_t>(set) * nparts + part] |= 1ull
                                                                 << hw;
                demote(hit_line, part);
            }
            return true;
        }

        // Miss: invalid way first (no eviction bookkeeping — an
        // invalid tag implies !valid), else unmanaged LRU (owner is
        // kNoPart by construction), else the LRU of the most
        // over-target partition present (owner == worst). The invalid
        // ways fall out of the masks the miss path loads anyway — the
        // masks cover exactly the valid lines (umk = valid+kNoPart,
        // pmk = valid+owner), so their complement over the way range
        // is precisely the invalid set, in way order. No tag scan.
        uint64_t m_valid = umk[set];
        for (uint32_t q = 0; q < nparts; ++q)
            m_valid |= pmk[static_cast<size_t>(set) * nparts + q];
        const uint64_t way_span =
            ways == 64 ? ~0ull : (1ull << ways) - 1;
        const uint64_t m_inval = ~m_valid & way_span;
        uint32_t victim;
        if (m_inval != 0) {
            victim =
                base + static_cast<uint32_t>(__builtin_ctzll(m_inval));
        } else {
            const uint64_t mu = umk[set];
            if (mu != 0) {
                // A one-bit mask needs no stamp scan — the argmin of a
                // singleton is its only member.
                victim = (mu & (mu - 1)) == 0
                             ? base + static_cast<uint32_t>(
                                          __builtin_ctzll(mu))
                             : argminStamp(mu);
                cache_.stats().addEvictions(1);
                if (*c.unmanaged > 0)
                    (*c.unmanaged)--;
                umk[set] &= ~(1ull << (victim - base));
            } else {
                // The rare set-conflict scan. The plain divide is the
                // generic path's exact computation (the batched
                // kernel's FMA-corrected reciprocal rounds
                // identically); once per conflict miss it costs less
                // than priming the reciprocal pipeline here would.
                PartId worst = kNoPart;
                double worst_ratio = -1.0;
                uint32_t worst_first = 64;
                for (uint32_t q = 0; q < nparts; ++q) {
                    const uint64_t mq =
                        pmk[static_cast<size_t>(set) * nparts + q];
                    if (mq == 0)
                        continue;
                    const double ratio =
                        c.targets[q] == 0
                            ? 1e18
                            : static_cast<double>(c.occ[q]) /
                                  static_cast<double>(c.targets[q]);
                    const uint32_t first =
                        static_cast<uint32_t>(__builtin_ctzll(mq));
                    if (ratio > worst_ratio ||
                        (ratio == worst_ratio &&
                         first < worst_first)) {
                        worst_ratio = ratio;
                        worst = q;
                        worst_first = first;
                    }
                }
                talus_assert(worst != kNoPart,
                             "set full of foreign lines");
                victim = argminStamp(
                    pmk[static_cast<size_t>(set) * nparts + worst]);
                cache_.stats().addEvictions(1);
                if (c.occ[worst] > 0)
                    c.occ[worst]--;
                pmk[static_cast<size_t>(set) * nparts + worst] &=
                    ~(1ull << (victim - base));
            }
        }
        tags[victim] = addr;
        fpt[victim] = fp;
        c.valid[victim] = 1;
        c.lparts[victim] = part;
        stamps[victim] = ++*c.clock;
        c.occ[part]++;
        pmk[static_cast<size_t>(set) * nparts + part] |=
            1ull << (victim - base);
        demote(victim, part);
        return false;
    }

  private:
    /** The fused Vantage+LRU batch kernel: one devirtualized loop
     *  replicating access() exactly. @p route is per-address
     *  partitions or nullptr for uniform @p upart. */
    uint64_t fusedBatch(const Addr* addrs, const PartId* route,
                        uint64_t n, PartId upart);

    /** Rebuilds the per-set occupancy masks from the line arrays and
     *  records the cache's mutation epoch. Called lazily by
     *  fusedBatch when someone mutated lines behind its back. */
    void rebuildMasks();

    SetAssocCache cache_;
    VantageScheme* fusedVantage_ = nullptr; //!< Set iff kernel usable.
    LruPolicy* fusedLru_ = nullptr;         //!< Set iff kernel usable.

    /**
     * Per-set way bitmaps mirroring the line arrays, so the kernel's
     * victim scans only visit relevant ways (bit order == way order,
     * preserving the generic scan order exactly). unmanagedMask_[s]
     * has bit w set iff line s*ways+w is valid and unmanaged;
     * partMask_[s*nparts+p] iff it is valid and owned by p. Invalid
     * lines appear in neither. Valid only while maskEpoch_ matches
     * cache_.mutationEpoch().
     */
    CacheAlignedVec<uint64_t> unmanagedMask_;
    CacheAlignedVec<uint64_t> partMask_;

    /**
     * Per-line tagFingerprint() mirror of the tag array (flat line
     * index, like tags). Probed by accessFused1 and kept in sync by
     * both kernels' insert paths; rebuilt with the masks whenever the
     * generic path mutates lines. Fingerprints of invalid lines are
     * the fold of kInvalidTag — harmless, since every fingerprint
     * match is verified against the canonical tag.
     */
    CacheAlignedVec<uint32_t> fpTags_;
    uint64_t maskEpoch_ = ~0ull; //!< Forces the initial rebuild.
    std::vector<uint32_t> setScratch_; //!< Precomputed set indices.

    /**
     * Per-partition reciprocals of the Vantage targets, refreshed by
     * rebuildMasks() (setTargets() invalidates maskEpoch_, so a stale
     * reciprocal can never be read). The kernel's worst-partition
     * scan divides occupancy by target per present partition per
     * set-conflict miss; with the reciprocal precomputed, the divide
     * becomes an FMA-corrected multiply (see fusedBatch) that yields
     * the exact same correctly-rounded quotient. Entries for
     * zero targets are never read (the scan's sentinel branch fires
     * first).
     */
    std::vector<double> recipTargets_;

    /**
     * Kernel context captured at rebuildMasks() time: every pointer
     * and geometry field fusedBatch needs, packed so a single-access
     * call reads one struct instead of chasing through four objects.
     * All pointers are stable between rebuilds — the paths that could
     * reseat them (generic access, invalidation, setTargets) bump the
     * mutation epoch or invalidate maskEpoch_ directly.
     */
    struct FusedCtx
    {
        Addr* tags;
        uint8_t* valid;
        PartId* lparts;
        uint64_t* stamps;
        uint64_t* clock;
        uint64_t* occ;
        const uint64_t* targets;
        const double* recipTargets;
        uint64_t* unmanaged;
        uint64_t* umk;
        uint64_t* pmk;
        uint32_t* fpt;
        uint64_t* accRaw;
        uint64_t* hitRaw;
        uint64_t hashSeed;
        uint32_t ways;
        uint32_t sets;
        uint32_t setMask;
        uint32_t nparts;
        bool setsPow2;
        bool hashed;
    };
    FusedCtx ctx_{};
};

/** Which partitioned-cache construction to use. */
enum class SchemeKind
{
    Unpartitioned,
    Way,
    Set,
    Vantage,
    Futility,
    Ideal,
};

/** Parses a scheme name ("Unpartitioned", "Way", "Set", "Vantage",
 *  "Futility", "Ideal"); fatal on unknown names. */
SchemeKind parseSchemeKind(const std::string& name);

/**
 * The fraction of a partition's allocation Talus can actually rely on
 * under @p kind: 0.9 for Vantage (its unmanaged region gives no
 * capacity guarantees, Sec. VI-B), 1.0 for everything else —
 * including Futility Scaling, which is precisely why the paper
 * suggests it.
 */
double schemeUsableFraction(SchemeKind kind);

/**
 * Builds a partitioned cache.
 *
 * @param kind Scheme kind; Ideal requires policy_name == "LRU".
 * @param capacity_lines Total capacity in lines.
 * @param num_ways Associativity for scheme-based caches.
 * @param policy_name Replacement policy name (see policy_factory.h).
 * @param num_parts Number of software partitions.
 * @param seed Seed for stochastic policy/scheme components.
 */
std::unique_ptr<PartitionedCacheBase>
makePartitionedCache(SchemeKind kind, uint64_t capacity_lines,
                     uint32_t num_ways, const std::string& policy_name,
                     uint32_t num_parts, uint64_t seed = 0xCACE);

} // namespace talus

#endif // TALUS_PARTITION_PARTITIONED_CACHE_H
