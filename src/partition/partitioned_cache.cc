#include "partition/partitioned_cache.h"

#include "partition/futility_scaling.h"
#include "partition/ideal_partition.h"
#include "partition/set_partition.h"
#include "partition/unpartitioned.h"
#include "partition/vantage.h"
#include "partition/way_partition.h"
#include "policy/policy_factory.h"
#include "util/log.h"

namespace talus {

SchemePartitionedCache::SchemePartitionedCache(
    const SetAssocCache::Config& config, std::unique_ptr<ReplPolicy> policy,
    std::unique_ptr<PartitionScheme> scheme)
    : cache_(config, std::move(policy), std::move(scheme))
{
    talus_assert(cache_.scheme() != nullptr,
                 "SchemePartitionedCache requires a scheme");
}

bool
SchemePartitionedCache::access(Addr addr, PartId part)
{
    return cache_.access(addr, part);
}

void
SchemePartitionedCache::setTargets(const std::vector<uint64_t>& lines)
{
    cache_.setTargets(lines);
}

uint32_t
SchemePartitionedCache::numPartitions() const
{
    return cache_.scheme()->numPartitions();
}

uint64_t
SchemePartitionedCache::capacityLines() const
{
    return cache_.numLines();
}

uint64_t
SchemePartitionedCache::occupancy(PartId part) const
{
    return cache_.scheme()->occupancy(part);
}

uint64_t
SchemePartitionedCache::targetOf(PartId part) const
{
    return cache_.scheme()->target(part);
}

const char*
SchemePartitionedCache::schemeName() const
{
    return cache_.scheme()->name();
}

SchemeKind
parseSchemeKind(const std::string& name)
{
    if (name == "Unpartitioned")
        return SchemeKind::Unpartitioned;
    if (name == "Way")
        return SchemeKind::Way;
    if (name == "Set")
        return SchemeKind::Set;
    if (name == "Vantage")
        return SchemeKind::Vantage;
    if (name == "Futility")
        return SchemeKind::Futility;
    if (name == "Ideal")
        return SchemeKind::Ideal;
    talus_fatal("unknown partitioning scheme: ", name);
}

double
schemeUsableFraction(SchemeKind kind)
{
    return kind == SchemeKind::Vantage ? 0.9 : 1.0;
}

std::unique_ptr<PartitionedCacheBase>
makePartitionedCache(SchemeKind kind, uint64_t capacity_lines,
                     uint32_t num_ways, const std::string& policy_name,
                     uint32_t num_parts, uint64_t seed)
{
    if (kind == SchemeKind::Ideal) {
        talus_assert(policy_name == "LRU",
                     "idealized partitioning models exact LRU only");
        return std::make_unique<IdealPartitionedCache>(capacity_lines,
                                                       num_parts);
    }

    talus_assert(num_ways > 0 && capacity_lines >= num_ways,
                 "capacity must be at least one set");
    SetAssocCache::Config config;
    config.numWays = num_ways;
    config.numSets = static_cast<uint32_t>(capacity_lines / num_ways);
    config.hashSeed = seed ^ 0x5E7;

    std::unique_ptr<PartitionScheme> scheme;
    switch (kind) {
      case SchemeKind::Unpartitioned:
        scheme = std::make_unique<UnpartitionedScheme>(num_parts);
        break;
      case SchemeKind::Way:
        scheme = std::make_unique<WayPartition>(num_parts);
        break;
      case SchemeKind::Set:
        scheme = std::make_unique<SetPartition>(num_parts, seed ^ 0xA11);
        break;
      case SchemeKind::Vantage:
        scheme = std::make_unique<VantageScheme>(num_parts);
        break;
      case SchemeKind::Futility:
        scheme = std::make_unique<FutilityScheme>(num_parts);
        break;
      case SchemeKind::Ideal:
        break; // Handled above.
    }
    return std::make_unique<SchemePartitionedCache>(
        config, makePolicy(policy_name, seed), std::move(scheme));
}

} // namespace talus
