#include "partition/partitioned_cache.h"

#include <typeinfo>

#include "partition/futility_scaling.h"
#include "partition/ideal_partition.h"
#include "partition/set_partition.h"
#include "partition/unpartitioned.h"
#include "partition/vantage.h"
#include "partition/way_partition.h"
#include "policy/lru.h"
#include "policy/policy_factory.h"
#include "util/bits.h"
#include "util/log.h"

namespace talus {

SchemePartitionedCache::SchemePartitionedCache(
    const SetAssocCache::Config& config, std::unique_ptr<ReplPolicy> policy,
    std::unique_ptr<PartitionScheme> scheme)
    : cache_(config, std::move(policy), std::move(scheme))
{
    talus_assert(cache_.scheme() != nullptr,
                 "SchemePartitionedCache requires a scheme");
    // The fused batch kernel replicates the exact per-access semantics
    // of VantageScheme over plain LRU, so it is only safe when the
    // scheme is VantageScheme (which keeps the default whole-cache set
    // index) and the policy is exactly LruPolicy — a derived policy
    // could override hooks the kernel bypasses.
    // The kernel's way scans build 64-bit match masks, so it also
    // requires associativity <= 64 (every real configuration).
    fusedVantage_ = dynamic_cast<VantageScheme*>(cache_.scheme());
    if (fusedVantage_ != nullptr && cache_.numWays() <= 64 &&
        typeid(cache_.policy()) == typeid(LruPolicy))
        fusedLru_ = static_cast<LruPolicy*>(&cache_.policy());
}

bool
SchemePartitionedCache::access(Addr addr, PartId part)
{
    // Route through the fused kernel when active so the serial path
    // shares its cost profile and the occupancy masks stay in sync
    // without a rebuild.
    if (fusedLru_ != nullptr)
        return accessFused1(addr, part);
    return cache_.access(addr, part);
}

uint64_t
SchemePartitionedCache::accessBatchRouted(const Addr* addrs,
                                          const PartId* parts, uint64_t n)
{
    if (fusedLru_ != nullptr)
        return fusedBatch(addrs, parts, n, 0);
    uint64_t hits = 0;
    for (uint64_t i = 0; i < n; ++i)
        hits += cache_.access(addrs[i], parts[i]);
    return hits;
}

uint64_t
SchemePartitionedCache::accessBatchUniform(const Addr* addrs, uint64_t n,
                                           PartId part)
{
    if (fusedLru_ != nullptr)
        return fusedBatch(addrs, nullptr, n, part);
    uint64_t hits = 0;
    for (uint64_t i = 0; i < n; ++i)
        hits += cache_.access(addrs[i], part);
    return hits;
}

void
SchemePartitionedCache::rebuildMasks()
{
    const uint32_t ways = cache_.numWays();
    const uint32_t sets = cache_.numSets();
    const uint32_t nparts = fusedVantage_->numPartitions();
    const SetAssocCache::LineArrays la = cache_.lineArrays();
    unmanagedMask_.assign(sets, 0);
    partMask_.assign(static_cast<size_t>(sets) * nparts, 0);
    const size_t lines = static_cast<size_t>(sets) * ways;
    fpTags_.resize(lines);
    for (size_t l = 0; l < lines; ++l)
        fpTags_[l] = tagFingerprint(la.tags[l]);
    for (uint32_t s = 0; s < sets; ++s) {
        for (uint32_t w = 0; w < ways; ++w) {
            const uint32_t line = s * ways + w;
            if (!la.valid[line])
                continue;
            const PartId p = la.parts[line];
            if (p == kNoPart)
                unmanagedMask_[s] |= 1ull << w;
            else
                partMask_[static_cast<size_t>(s) * nparts + p] |= 1ull
                                                                  << w;
        }
    }

    CacheStats& st = cache_.stats();
    st.ensureParts(nparts);
    const VantageScheme::Books bk = fusedVantage_->books();
    ctx_.tags = la.tags;
    ctx_.valid = la.valid;
    ctx_.lparts = la.parts;
    ctx_.stamps = fusedLru_->stampsRaw();
    ctx_.clock = fusedLru_->clockRaw();
    recipTargets_.assign(nparts, 0.0);
    for (uint32_t p = 0; p < nparts; ++p)
        if (bk.targets[p] != 0)
            recipTargets_[p] =
                1.0 / static_cast<double>(bk.targets[p]);
    ctx_.occ = bk.occ;
    ctx_.targets = bk.targets;
    ctx_.recipTargets = recipTargets_.data();
    ctx_.unmanaged = bk.unmanaged;
    ctx_.umk = unmanagedMask_.data();
    ctx_.pmk = partMask_.data();
    ctx_.fpt = fpTags_.data();
    ctx_.accRaw = st.accessesRaw();
    ctx_.hitRaw = st.hitsRaw();
    ctx_.hashSeed = cache_.hashSeed();
    ctx_.ways = ways;
    ctx_.sets = sets;
    ctx_.setMask = sets - 1;
    ctx_.nparts = nparts;
    ctx_.setsPow2 = (sets & (sets - 1)) == 0;
    ctx_.hashed = cache_.hashSetIndex();
    maskEpoch_ = cache_.mutationEpoch();
}

// Dispatch to an AVX2 build of the kernel on hardware that has it:
// the way scans and set-index precompute vectorize well past SSE2,
// and integer SIMD plus scalar-identical double math keep the result
// bit-exact across clones.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
__attribute__((target_clones("default", "arch=x86-64-v3")))
#endif
uint64_t
SchemePartitionedCache::fusedBatch(const Addr* addrs, const PartId* route,
                                   uint64_t n, PartId upart)
{
    // One devirtualized loop replicating SetAssocCache::access over
    // VantageScheme + LruPolicy, in the exact operation order of the
    // generic path (probe -> stats -> stamp -> promote/victim ->
    // evict bookkeeping -> insert -> demote). Every counter the
    // generic path's virtual hooks would touch is updated inline, so
    // the final state after any prefix of the block is bit-identical
    // — tests/multiprog_equivalence_test.cc holds the generic path up
    // against this one access by access.
    if (maskEpoch_ != cache_.mutationEpoch())
        rebuildMasks();
    const FusedCtx& c = ctx_;
    const uint32_t ways = c.ways;
    const uint32_t sets = c.sets;
    const bool sets_pow2 = c.setsPow2;
    const uint32_t set_mask = c.setMask;
    const bool hashed = c.hashed;
    const uint64_t hash_seed = c.hashSeed;
    Addr* tags = c.tags;
    uint8_t* valid = c.valid;
    PartId* lparts = c.lparts;
    uint64_t* stamps = c.stamps;
    uint64_t* clock = c.clock;
    uint64_t clk = *clock;
    const VantageScheme::Books bk = {c.occ, c.targets, c.unmanaged};
    const double* recip = c.recipTargets;
    const uint32_t nparts = c.nparts;
    uint64_t* acc_raw = c.accRaw;
    uint64_t* hit_raw = c.hitRaw;
    uint64_t* umk = c.umk;
    uint64_t* pmk = c.pmk;
    uint64_t hits = 0;
    uint64_t evictions = 0;

    // Branchless LRU argmin over the ways selected by mask @p m in the
    // set at @p sb (set * ways). The LRU clock stamps every touch with
    // a fresh ++clk, so stamps are unique and the minimum needs no
    // way-order tie-break: packing (stamp << 6) | way turns the walk
    // into a pure min-reduction the compiler vectorizes, instead of a
    // loop-carried ctz chain. Excluded ways get a sentinel above any
    // real key (stamps stay far below 2^57 for any feasible run).
    // Callers guarantee m != 0. The ways==16 specialization exists
    // because a constant trip count is what actually unlocks the
    // vectorizer; the generic loop is the same code with a runtime
    // bound.
    const auto argminStamp = [&](uint32_t sb, uint64_t m) -> uint32_t {
        uint64_t best = ~0ull;
        if (ways == 16) {
            for (uint32_t w = 0; w < 16; ++w) {
                const uint64_t excl =
                    -(((m >> w) & 1) ^ 1ull); // all-ones if excluded
                const uint64_t key =
                    ((stamps[sb + w] << 6) | w) | excl;
                best = key < best ? key : best;
            }
        } else {
            for (uint32_t w = 0; w < ways; ++w) {
                const uint64_t excl = -(((m >> w) & 1) ^ 1ull);
                const uint64_t key =
                    ((stamps[sb + w] << 6) | w) | excl;
                best = key < best ? key : best;
            }
        }
        return sb + static_cast<uint32_t>(best & 63);
    };

    // demoteIfOverTarget with the LRU argmin fused in (unique stamps
    // make the mask-restricted minimum == LruPolicy::victim over
    // way-ordered candidates).
    const auto demote = [&](uint32_t inserted, PartId p) {
        if (bk.occ[p] <= bk.targets[p] || bk.targets[p] == 0)
            return;
        const uint32_t dset = inserted / ways;
        const uint32_t set_base = dset * ways;
        // Walk only p's ways, minus the just-inserted line.
        const uint64_t m = pmk[static_cast<size_t>(dset) * nparts + p] &
                           ~(1ull << (inserted - set_base));
        if (m == 0)
            return; // Cannot demote within this set; converges later.
        const uint32_t demoted = argminStamp(set_base, m);
        lparts[demoted] = kNoPart;
        bk.occ[p]--;
        (*bk.unmanaged)++;
        pmk[static_cast<size_t>(dset) * nparts + p] &=
            ~(1ull << (demoted - set_base));
        umk[dset] |= 1ull << (demoted - set_base);
    };

    const auto setOf = [&](Addr addr) -> uint32_t {
        const uint64_t h = hashed ? mix64(addr ^ hash_seed) : addr;
        return sets_pow2 ? static_cast<uint32_t>(h & set_mask)
                         : static_cast<uint32_t>(h % sets);
    };

    // For real blocks, precompute all set indices in one tight pass;
    // the lookahead then prefetches upcoming tag/stamp/mask rows while
    // earlier accesses resolve. Single-access blocks skip both.
    constexpr uint64_t kPf = 8;
    uint32_t* setv = nullptr;
    if (n >= kPf) {
        if (setScratch_.size() < n)
            setScratch_.resize(n);
        setv = setScratch_.data();
        for (uint64_t i = 0; i < n; ++i)
            setv[i] = setOf(addrs[i]);
    }

    for (uint64_t i = 0; i < n; ++i) {
        if (setv != nullptr && i + kPf < n) {
            const uint32_t ps = setv[i + kPf];
            const uint32_t pf = ps * ways;
            __builtin_prefetch(&tags[pf], 0);
            __builtin_prefetch(&tags[pf + ways - 1], 0);
            __builtin_prefetch(&stamps[pf], 1);
            __builtin_prefetch(&stamps[pf + ways - 1], 1);
            __builtin_prefetch(&lparts[pf], 1);
            __builtin_prefetch(&umk[ps], 1);
            __builtin_prefetch(&pmk[static_cast<size_t>(ps) * nparts], 1);
        }
        const Addr addr = addrs[i];
        const PartId part = route != nullptr ? route[i] : upart;
        talus_assert(part < nparts, "bad partition id ", part);
        talus_assert(addr != SetAssocCache::kInvalidTag,
                     "address aliases the invalid-tag sentinel");
        const uint32_t set = setv != nullptr ? setv[i] : setOf(addr);
        const uint32_t base = set * ways;

        // One branchless pass over the tag row finds both the hit way
        // and the invalid ways (invalid lines hold kInvalidTag; the
        // sentinel can't match a real address). Lowest set bit =
        // first way in way order, exactly the generic scan order.
        uint64_t m_match = 0;
        uint64_t m_inval = 0;
        for (uint32_t w = 0; w < ways; ++w) {
            const Addr t = tags[base + w];
            m_match |= static_cast<uint64_t>(t == addr) << w;
            m_inval |= static_cast<uint64_t>(
                           t == SetAssocCache::kInvalidTag)
                       << w;
        }
        acc_raw[part]++;

        if (m_match != 0) {
            const uint32_t hit_line =
                base + static_cast<uint32_t>(__builtin_ctzll(m_match));
            hit_raw[part]++;
            stamps[hit_line] = ++clk;
            if ((umk[set] >> (hit_line - base)) & 1) {
                // Promotion: an unmanaged line that hits rejoins the
                // accessing partition, rebalancing immediately. The
                // umk bit is exactly "valid and owner == kNoPart"
                // (hit lines are always valid), so the masks answer
                // the ownership question without touching lparts.
                lparts[hit_line] = part;
                bk.occ[part]++;
                if (*bk.unmanaged > 0)
                    (*bk.unmanaged)--;
                umk[set] &= ~(1ull << (hit_line - base));
                pmk[static_cast<size_t>(set) * nparts + part] |=
                    1ull << (hit_line - base);
                demote(hit_line, part);
            }
            hits++;
            continue;
        }

        // Miss: invalid way first, else unmanaged LRU, else the LRU
        // of the most over-target partition in the set. The victim's
        // owner is implied by which mask selected it (invalid ways
        // need no eviction bookkeeping at all; umk means kNoPart, a
        // partition mask means that partition), so the eviction
        // accounting runs in the selection branch without loading
        // valid[] or lparts[].
        uint32_t victim = kBypassLine;
        if (m_inval != 0) {
            victim =
                base + static_cast<uint32_t>(__builtin_ctzll(m_inval));
        } else {
            const uint64_t mu = umk[set];
            if (mu != 0) {
                victim = argminStamp(base, mu);
                evictions++;
                if (*bk.unmanaged > 0)
                    (*bk.unmanaged)--;
                umk[set] &= ~(1ull << (victim - base));
            } else {
                // The generic path walks ways in order and keeps the
                // first strictly-greater ratio, i.e. among the parts
                // tied at the maximum ratio it picks the one whose
                // first way in this set is earliest. Iterating parts
                // with that explicit tie-break is equivalent and
                // touches each present part once instead of each way.
                PartId worst = kNoPart;
                double worst_ratio = -1.0;
                uint32_t worst_first = 64;
                for (uint32_t q = 0; q < nparts; ++q) {
                    const uint64_t mq =
                        pmk[static_cast<size_t>(set) * nparts + q];
                    if (mq == 0)
                        continue;
                    // occ/target via the precomputed reciprocal with
                    // one FMA correction step (Markstein): with
                    // r = RN(1/t), q0 = RN(occ*r) and the residual
                    // e = RN(occ - t*q0) computed exactly by the FMA,
                    // q0 + e*r rounds to RN(occ/t) for all finite
                    // inputs — so the scan's comparisons (including
                    // the occ == target ties this workload hits
                    // constantly) are bit-identical to the divide the
                    // generic path performs.
                    double ratio;
                    if (bk.targets[q] == 0) {
                        ratio = 1e18;
                    } else {
                        const double occd =
                            static_cast<double>(bk.occ[q]);
                        const double t =
                            static_cast<double>(bk.targets[q]);
                        const double r = recip[q];
                        const double q0 = occd * r;
                        const double e = __builtin_fma(-t, q0, occd);
                        ratio = __builtin_fma(e, r, q0);
                    }
                    const uint32_t first =
                        static_cast<uint32_t>(__builtin_ctzll(mq));
                    if (ratio > worst_ratio ||
                        (ratio == worst_ratio && first < worst_first)) {
                        worst_ratio = ratio;
                        worst = q;
                        worst_first = first;
                    }
                }
                talus_assert(worst != kNoPart,
                             "set full of foreign lines");
                victim = argminStamp(
                    base,
                    pmk[static_cast<size_t>(set) * nparts + worst]);
                evictions++;
                if (bk.occ[worst] > 0)
                    bk.occ[worst]--;
                pmk[static_cast<size_t>(set) * nparts + worst] &=
                    ~(1ull << (victim - base));
            }
        }

        const uint64_t vbit = 1ull << (victim - base);
        tags[victim] = addr;
        c.fpt[victim] = tagFingerprint(addr);
        valid[victim] = 1;
        lparts[victim] = part;
        stamps[victim] = ++clk;
        bk.occ[part]++;
        pmk[static_cast<size_t>(set) * nparts + part] |= vbit;
        demote(victim, part);
    }
    *clock = clk;
    cache_.stats().addEvictions(evictions);
    return hits;
}

void
SchemePartitionedCache::setTargets(const std::vector<uint64_t>& lines)
{
    cache_.setTargets(lines);
    // The scheme may reseat its target storage; recapture the kernel
    // context (and masks) before the next fused block.
    maskEpoch_ = ~0ull;
}

uint32_t
SchemePartitionedCache::numPartitions() const
{
    return cache_.scheme()->numPartitions();
}

uint64_t
SchemePartitionedCache::capacityLines() const
{
    return cache_.numLines();
}

uint64_t
SchemePartitionedCache::occupancy(PartId part) const
{
    return cache_.scheme()->occupancy(part);
}

uint64_t
SchemePartitionedCache::targetOf(PartId part) const
{
    return cache_.scheme()->target(part);
}

const char*
SchemePartitionedCache::schemeName() const
{
    return cache_.scheme()->name();
}

SchemeKind
parseSchemeKind(const std::string& name)
{
    if (name == "Unpartitioned")
        return SchemeKind::Unpartitioned;
    if (name == "Way")
        return SchemeKind::Way;
    if (name == "Set")
        return SchemeKind::Set;
    if (name == "Vantage")
        return SchemeKind::Vantage;
    if (name == "Futility")
        return SchemeKind::Futility;
    if (name == "Ideal")
        return SchemeKind::Ideal;
    talus_fatal("unknown partitioning scheme: ", name);
}

double
schemeUsableFraction(SchemeKind kind)
{
    return kind == SchemeKind::Vantage ? 0.9 : 1.0;
}

std::unique_ptr<PartitionedCacheBase>
makePartitionedCache(SchemeKind kind, uint64_t capacity_lines,
                     uint32_t num_ways, const std::string& policy_name,
                     uint32_t num_parts, uint64_t seed)
{
    if (kind == SchemeKind::Ideal) {
        talus_assert(policy_name == "LRU",
                     "idealized partitioning models exact LRU only");
        return std::make_unique<IdealPartitionedCache>(capacity_lines,
                                                       num_parts);
    }

    talus_assert(num_ways > 0 && capacity_lines >= num_ways,
                 "capacity must be at least one set");
    SetAssocCache::Config config;
    config.numWays = num_ways;
    config.numSets = static_cast<uint32_t>(capacity_lines / num_ways);
    config.hashSeed = seed ^ 0x5E7;

    std::unique_ptr<PartitionScheme> scheme;
    switch (kind) {
      case SchemeKind::Unpartitioned:
        scheme = std::make_unique<UnpartitionedScheme>(num_parts);
        break;
      case SchemeKind::Way:
        scheme = std::make_unique<WayPartition>(num_parts);
        break;
      case SchemeKind::Set:
        scheme = std::make_unique<SetPartition>(num_parts, seed ^ 0xA11);
        break;
      case SchemeKind::Vantage:
        scheme = std::make_unique<VantageScheme>(num_parts);
        break;
      case SchemeKind::Futility:
        scheme = std::make_unique<FutilityScheme>(num_parts);
        break;
      case SchemeKind::Ideal:
        break; // Handled above.
    }
    return std::make_unique<SchemePartitionedCache>(
        config, makePolicy(policy_name, seed), std::move(scheme));
}

} // namespace talus
