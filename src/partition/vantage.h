/**
 * @file
 * Vantage-style fine-grained partitioning (Sanchez & Kozyrakis,
 * ISCA'11), at the fidelity Talus requires.
 *
 * Real Vantage partitions ~90% of a highly-associative cache (the
 * "managed region") at line granularity, keeps per-partition sizes
 * near their targets by demoting lines of over-target partitions into
 * the remaining "unmanaged region", and evicts only from the
 * unmanaged region. We reproduce exactly that structure:
 *
 *  - lines are tagged with their partition (or unmanaged);
 *  - per-partition occupancy counters track actual sizes;
 *  - insertions that push a partition over target demote its
 *    replacement-policy victim (within the insertion set) to the
 *    unmanaged region;
 *  - evictions prefer unmanaged lines, then lines of the most
 *    over-target partition;
 *  - unmanaged lines that hit are promoted back into the accessing
 *    partition.
 *
 * What we do not model is Vantage's feedback machinery (coarse-grain
 * timestamps, setpoint-controlled apertures); our demotions are exact
 * rather than probabilistic. Talus needs only Assumption 2 (miss rate
 * is a function of partition size), which this scheme enforces more
 * strictly than real Vantage. The 10%-unmanaged capacity penalty the
 * paper reports for Talus+V (Fig. 8) comes from the caller sizing
 * targets to 90% of capacity, as TalusController does.
 */

#ifndef TALUS_PARTITION_VANTAGE_H
#define TALUS_PARTITION_VANTAGE_H

#include <vector>

#include "cache/scheme.h"

namespace talus {

/** Fine-grained, Vantage-style partitioning with an unmanaged region. */
class VantageScheme : public PartitionScheme
{
  public:
    /** @param num_parts Number of managed partitions. */
    explicit VantageScheme(uint32_t num_parts);

    void init(SetAssocCache* cache) override;
    uint32_t numPartitions() const override { return numParts_; }

    /**
     * Sets line-granularity targets. The sum may be below capacity;
     * leftover capacity becomes the unmanaged region. Callers wanting
     * the paper's configuration pass targets summing to 90% of
     * capacity.
     */
    void setTargets(const std::vector<uint64_t>& lines) override;

    uint64_t target(PartId part) const override;
    uint64_t occupancy(PartId part) const override;
    uint32_t selectVictim(uint32_t set, PartId part,
                          ReplPolicy& policy) override;
    void onInsert(uint32_t line, PartId part) override;
    void onEvict(uint32_t line, PartId owner) override;
    void onHit(uint32_t line, PartId owner, PartId part) override;
    const char* name() const override { return "Vantage"; }

    /** Current number of unmanaged (demoted) valid lines. */
    uint64_t unmanagedLines() const { return unmanaged_; }

    /**
     * Raw bookkeeping view for the fused Vantage+LRU batch kernel
     * (SchemePartitionedCache), which replicates
     * onInsert/onEvict/onHit/selectVictim inline. Pointers are
     * invalidated by setTargets().
     */
    struct Books
    {
        uint64_t* occ;
        const uint64_t* targets;
        uint64_t* unmanaged;
    };
    Books books() { return {occ_.data(), targets_.data(), &unmanaged_}; }

  private:
    void demoteIfOverTarget(uint32_t inserted_line, PartId part);

    /** Victim among the lines of the most over-target partition in
     *  the set; @p keys is the policy's rank keys or nullptr. */
    uint32_t victimOfWorstPart(uint32_t base, uint32_t ways,
                               const uint64_t* keys, ReplPolicy& policy);

    uint32_t numParts_;
    std::vector<uint64_t> targets_;
    std::vector<uint64_t> occ_;
    uint64_t unmanaged_ = 0;
};

} // namespace talus

#endif // TALUS_PARTITION_VANTAGE_H
