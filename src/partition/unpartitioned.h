/**
 * @file
 * The no-op partitioning scheme: a shared cache where PartIds are
 * tracked for statistics but place no constraints on placement or
 * eviction. This is the paper's "unpartitioned LRU" baseline and the
 * substrate for thread-aware policies like TA-DRRIP (which partition
 * implicitly through their insertion policy, not through the scheme).
 */

#ifndef TALUS_PARTITION_UNPARTITIONED_H
#define TALUS_PARTITION_UNPARTITIONED_H

#include <vector>

#include "cache/scheme.h"

namespace talus {

/** Scheme that enforces nothing; all partitions share all lines. */
class UnpartitionedScheme : public PartitionScheme
{
  public:
    /** @param num_parts Number of requester ids (stats only). */
    explicit UnpartitionedScheme(uint32_t num_parts = 1);

    void init(SetAssocCache* cache) override;
    uint32_t numPartitions() const override { return numParts_; }
    void setTargets(const std::vector<uint64_t>& lines) override;
    uint64_t target(PartId part) const override;
    uint64_t occupancy(PartId part) const override;
    uint32_t selectVictim(uint32_t set, PartId part,
                          ReplPolicy& policy) override;
    void onInsert(uint32_t line, PartId part) override;
    void onEvict(uint32_t line, PartId owner) override;
    const char* name() const override { return "Unpartitioned"; }

  private:
    uint32_t numParts_;
    std::vector<uint64_t> occ_;
};

} // namespace talus

#endif // TALUS_PARTITION_UNPARTITIONED_H
