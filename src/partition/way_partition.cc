#include "partition/way_partition.h"

#include <algorithm>
#include <numeric>

#include "cache/set_assoc_cache.h"
#include "util/log.h"

namespace talus {

WayPartition::WayPartition(uint32_t num_parts)
    : numParts_(num_parts), wayStart_(num_parts, 0), wayCount_(num_parts, 0),
      occ_(num_parts, 0)
{
    talus_assert(num_parts >= 1, "need at least one partition");
}

void
WayPartition::init(SetAssocCache* cache)
{
    cache_ = cache;
    talus_assert(numParts_ <= cache->numWays(),
                 "more partitions (", numParts_, ") than ways (",
                 cache->numWays(), ")");
    // Default: equal split.
    std::vector<uint64_t> equal(numParts_,
                                cache->numLines() / numParts_);
    setTargets(equal);
}

void
WayPartition::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(lines.size() == numParts_, "expected ", numParts_,
                 " targets, got ", lines.size());
    const uint32_t ways = cache_->numWays();
    const uint32_t sets = cache_->numSets();
    const uint64_t total = std::accumulate(lines.begin(), lines.end(),
                                           uint64_t{0});
    talus_assert(total <= static_cast<uint64_t>(ways) * sets,
                 "targets (", total, " lines) exceed capacity");

    // Largest-remainder apportionment of ways. Only round(total/sets)
    // ways are handed out: if the targets cover less than the cache,
    // the leftover ways stay unassigned rather than silently inflating
    // partitions beyond what the allocator asked for.
    const uint32_t way_budget = static_cast<uint32_t>(std::min<uint64_t>(
        ways, (total + sets - 1) / sets));
    std::vector<double> exact(numParts_);
    std::vector<uint32_t> floor_ways(numParts_);
    uint32_t assigned = 0;
    for (uint32_t p = 0; p < numParts_; ++p) {
        exact[p] = static_cast<double>(lines[p]) / sets;
        floor_ways[p] = static_cast<uint32_t>(exact[p]);
        assigned += floor_ways[p];
    }
    // Hand remaining budgeted ways to the largest fractional
    // remainders.
    std::vector<uint32_t> order(numParts_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return (exact[a] - floor_ways[a]) > (exact[b] - floor_ways[b]);
    });
    uint32_t spare = way_budget > assigned ? way_budget - assigned : 0;
    for (uint32_t i = 0; i < numParts_ && spare > 0; ++i) {
        floor_ways[order[i]]++;
        spare--;
    }
    // If still spare (all remainders zero), give to the largest target.
    while (spare > 0) {
        const auto max_it = std::max_element(lines.begin(), lines.end());
        floor_ways[static_cast<uint32_t>(max_it - lines.begin())]++;
        spare--;
    }

    uint32_t start = 0;
    for (uint32_t p = 0; p < numParts_; ++p) {
        wayStart_[p] = start;
        wayCount_[p] = floor_ways[p];
        start += floor_ways[p];
    }
    talus_assert(start <= ways, "way apportionment overflow");
}

uint64_t
WayPartition::target(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return static_cast<uint64_t>(wayCount_[part]) * cache_->numSets();
}

uint64_t
WayPartition::occupancy(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return occ_[part];
}

uint32_t
WayPartition::selectVictim(uint32_t set, PartId part, ReplPolicy& policy)
{
    talus_assert(part < numParts_, "bad partition id ", part);
    if (wayCount_[part] == 0)
        return kBypassLine; // No ways: cannot insert.

    const uint32_t ways = cache_->numWays();
    const uint32_t base = set * ways;
    uint32_t cands[SetAssocCache::kMaxWays];
    uint32_t n = 0;
    for (uint32_t w = wayStart_[part];
         w < wayStart_[part] + wayCount_[part]; ++w) {
        const uint32_t line = base + w;
        if (!cache_->lineValid(line))
            return line;
        cands[n++] = line;
    }
    return policy.victim(cands, n);
}

void
WayPartition::onInsert(uint32_t line, PartId part)
{
    (void)line;
    occ_[part]++;
}

void
WayPartition::onEvict(uint32_t line, PartId owner)
{
    (void)line;
    if (owner < numParts_ && occ_[owner] > 0)
        occ_[owner]--;
}

} // namespace talus
