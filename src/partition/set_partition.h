/**
 * @file
 * Set partitioning (page coloring in software, or reconfigurable
 * caches in hardware): each partition owns a contiguous range of sets,
 * and a partition's accesses are hashed only across its own sets.
 * This is the mechanism used in the paper's worked example (Fig. 2),
 * where the 4MB Talus cache is split by sets at a 1:2 ratio.
 *
 * After re-targeting, lines stranded in sets now owned by another
 * partition are reclaimed lazily: they are eviction candidates for the
 * new owner and can no longer hit (their owner hashes elsewhere).
 */

#ifndef TALUS_PARTITION_SET_PARTITION_H
#define TALUS_PARTITION_SET_PARTITION_H

#include <vector>

#include "cache/scheme.h"

namespace talus {

/** Set partitioning with largest-remainder coarsening to whole sets. */
class SetPartition : public PartitionScheme
{
  public:
    /**
     * @param num_parts Number of partitions.
     * @param hash_seed Seed for the per-partition set hash.
     */
    explicit SetPartition(uint32_t num_parts, uint64_t hash_seed = 0x5E75);

    void init(SetAssocCache* cache) override;
    uint32_t numPartitions() const override { return numParts_; }
    void setTargets(const std::vector<uint64_t>& lines) override;

    /** Coarsened target: sets(part) * numWays lines. */
    uint64_t target(PartId part) const override;

    uint64_t occupancy(PartId part) const override;
    uint32_t setIndex(Addr addr, PartId part) const override;
    uint32_t selectVictim(uint32_t set, PartId part,
                          ReplPolicy& policy) override;
    void onInsert(uint32_t line, PartId part) override;
    void onEvict(uint32_t line, PartId owner) override;
    const char* name() const override { return "Set"; }

    /** Sets currently assigned to @p part. */
    uint32_t sets(PartId part) const { return setCount_[part]; }

  private:
    uint32_t numParts_;
    uint64_t hashSeed_;
    std::vector<uint32_t> setStart_;
    std::vector<uint32_t> setCount_;
    std::vector<uint64_t> occ_;
};

} // namespace talus

#endif // TALUS_PARTITION_SET_PARTITION_H
