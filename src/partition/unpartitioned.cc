#include "partition/unpartitioned.h"

#include "cache/set_assoc_cache.h"
#include "util/log.h"

namespace talus {

UnpartitionedScheme::UnpartitionedScheme(uint32_t num_parts)
    : numParts_(num_parts), occ_(num_parts, 0)
{
    talus_assert(num_parts >= 1, "need at least one requester id");
}

void
UnpartitionedScheme::init(SetAssocCache* cache)
{
    cache_ = cache;
}

void
UnpartitionedScheme::setTargets(const std::vector<uint64_t>& lines)
{
    // Targets are meaningless without enforcement; accept silently so
    // baselines can share driver code with partitioned configurations.
    (void)lines;
}

uint64_t
UnpartitionedScheme::target(PartId part) const
{
    (void)part;
    return cache_ ? cache_->numLines() : 0;
}

uint64_t
UnpartitionedScheme::occupancy(PartId part) const
{
    return part < occ_.size() ? occ_[part] : 0;
}

uint32_t
UnpartitionedScheme::selectVictim(uint32_t set, PartId part,
                                  ReplPolicy& policy)
{
    (void)part;
    const uint32_t ways = cache_->numWays();
    const uint32_t base = set * ways;
    uint32_t cands[SetAssocCache::kMaxWays];
    uint32_t n = 0;
    for (uint32_t w = 0; w < ways; ++w) {
        const uint32_t line = base + w;
        if (!cache_->lineValid(line))
            return line;
        cands[n++] = line;
    }
    return policy.victim(cands, n);
}

void
UnpartitionedScheme::onInsert(uint32_t line, PartId part)
{
    (void)line;
    if (part < occ_.size())
        occ_[part]++;
}

void
UnpartitionedScheme::onEvict(uint32_t line, PartId owner)
{
    (void)line;
    if (owner < occ_.size() && occ_[owner] > 0)
        occ_[owner]--;
}

} // namespace talus
