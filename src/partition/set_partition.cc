#include "partition/set_partition.h"

#include <algorithm>
#include <numeric>

#include "cache/set_assoc_cache.h"
#include "util/bits.h"
#include "util/log.h"

namespace talus {

SetPartition::SetPartition(uint32_t num_parts, uint64_t hash_seed)
    : numParts_(num_parts), hashSeed_(hash_seed), setStart_(num_parts, 0),
      setCount_(num_parts, 0), occ_(num_parts, 0)
{
    talus_assert(num_parts >= 1, "need at least one partition");
}

void
SetPartition::init(SetAssocCache* cache)
{
    cache_ = cache;
    talus_assert(numParts_ <= cache->numSets(),
                 "more partitions (", numParts_, ") than sets (",
                 cache->numSets(), ")");
    std::vector<uint64_t> equal(numParts_, cache->numLines() / numParts_);
    setTargets(equal);
}

void
SetPartition::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(lines.size() == numParts_, "expected ", numParts_,
                 " targets, got ", lines.size());
    const uint32_t sets = cache_->numSets();
    const uint32_t ways = cache_->numWays();
    const uint64_t total = std::accumulate(lines.begin(), lines.end(),
                                           uint64_t{0});
    talus_assert(total <= static_cast<uint64_t>(sets) * ways,
                 "targets (", total, " lines) exceed capacity");

    // Largest-remainder apportionment of sets, bounded by the sets
    // the targets actually cover (leftover sets stay unassigned; see
    // way_partition.cc for the rationale).
    const uint32_t set_budget = static_cast<uint32_t>(std::min<uint64_t>(
        sets, (total + ways - 1) / ways));
    std::vector<double> exact(numParts_);
    std::vector<uint32_t> floor_sets(numParts_);
    uint32_t assigned = 0;
    for (uint32_t p = 0; p < numParts_; ++p) {
        exact[p] = static_cast<double>(lines[p]) / ways;
        floor_sets[p] = static_cast<uint32_t>(exact[p]);
        assigned += floor_sets[p];
    }
    std::vector<uint32_t> order(numParts_);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return (exact[a] - floor_sets[a]) > (exact[b] - floor_sets[b]);
    });
    uint32_t spare = set_budget > assigned ? set_budget - assigned : 0;
    for (uint32_t i = 0; i < numParts_ && spare > 0; ++i) {
        floor_sets[order[i]]++;
        spare--;
    }
    while (spare > 0) {
        const auto max_it = std::max_element(lines.begin(), lines.end());
        floor_sets[static_cast<uint32_t>(max_it - lines.begin())]++;
        spare--;
    }

    uint32_t start = 0;
    for (uint32_t p = 0; p < numParts_; ++p) {
        setStart_[p] = start;
        setCount_[p] = floor_sets[p];
        start += floor_sets[p];
    }
    talus_assert(start <= sets, "set apportionment overflow");
}

uint64_t
SetPartition::target(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return static_cast<uint64_t>(setCount_[part]) * cache_->numWays();
}

uint64_t
SetPartition::occupancy(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return occ_[part];
}

uint32_t
SetPartition::setIndex(Addr addr, PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    if (setCount_[part] == 0)
        return 0; // Never hits; selectVictim() will bypass.
    const uint64_t h = mix64(addr ^ hashSeed_);
    return setStart_[part] +
           static_cast<uint32_t>(h % setCount_[part]);
}

uint32_t
SetPartition::selectVictim(uint32_t set, PartId part, ReplPolicy& policy)
{
    if (setCount_[part] == 0)
        return kBypassLine;

    const uint32_t ways = cache_->numWays();
    const uint32_t base = set * ways;
    uint32_t cands[SetAssocCache::kMaxWays];
    uint32_t n = 0;
    for (uint32_t w = 0; w < ways; ++w) {
        const uint32_t line = base + w;
        if (!cache_->lineValid(line))
            return line;
        cands[n++] = line;
    }
    return policy.victim(cands, n);
}

void
SetPartition::onInsert(uint32_t line, PartId part)
{
    (void)line;
    occ_[part]++;
}

void
SetPartition::onEvict(uint32_t line, PartId owner)
{
    (void)line;
    if (owner < numParts_ && occ_[owner] > 0)
        occ_[owner]--;
}

} // namespace talus
