/**
 * @file
 * Way partitioning (Albonesi, MICRO'99; Chiou et al., DAC'00): each
 * partition owns a contiguous range of ways in every set. Simple and
 * common in real hardware, but coarse-grained: allocations are
 * multiples of numSets lines, and small way counts hurt associativity
 * — exactly the Assumption 2 violation the paper works around by
 * recomputing Talus's sampling rate from the coarsened sizes
 * (Sec. VI-B, "Talus on way partitioning").
 */

#ifndef TALUS_PARTITION_WAY_PARTITION_H
#define TALUS_PARTITION_WAY_PARTITION_H

#include <vector>

#include "cache/scheme.h"

namespace talus {

/** Way partitioning with largest-remainder coarsening of targets. */
class WayPartition : public PartitionScheme
{
  public:
    /** @param num_parts Number of partitions. */
    explicit WayPartition(uint32_t num_parts);

    void init(SetAssocCache* cache) override;
    uint32_t numPartitions() const override { return numParts_; }

    /**
     * Converts per-partition line targets to way counts using the
     * largest-remainder method so counts sum exactly to numWays.
     * Partitions with a nonzero target receive at least one way when
     * possible.
     */
    void setTargets(const std::vector<uint64_t>& lines) override;

    /** Coarsened target: ways(part) * numSets lines. */
    uint64_t target(PartId part) const override;

    uint64_t occupancy(PartId part) const override;
    uint32_t selectVictim(uint32_t set, PartId part,
                          ReplPolicy& policy) override;
    void onInsert(uint32_t line, PartId part) override;
    void onEvict(uint32_t line, PartId owner) override;
    const char* name() const override { return "Way"; }

    /** Ways currently assigned to @p part. */
    uint32_t ways(PartId part) const { return wayCount_[part]; }

  private:
    uint32_t numParts_;
    std::vector<uint32_t> wayStart_;
    std::vector<uint32_t> wayCount_;
    std::vector<uint64_t> occ_;
};

} // namespace talus

#endif // TALUS_PARTITION_WAY_PARTITION_H
