#include "partition/vantage.h"

#include <numeric>

#include "cache/set_assoc_cache.h"
#include "util/log.h"

namespace talus {

VantageScheme::VantageScheme(uint32_t num_parts)
    : numParts_(num_parts), targets_(num_parts, 0), occ_(num_parts, 0)
{
    talus_assert(num_parts >= 1, "need at least one partition");
}

void
VantageScheme::init(SetAssocCache* cache)
{
    cache_ = cache;
    // Default: equal targets over 90% of capacity (paper default).
    std::vector<uint64_t> equal(
        numParts_, cache->numLines() * 9 / 10 / numParts_);
    setTargets(equal);
}

void
VantageScheme::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(lines.size() == numParts_, "expected ", numParts_,
                 " targets, got ", lines.size());
    const uint64_t total = std::accumulate(lines.begin(), lines.end(),
                                           uint64_t{0});
    talus_assert(total <= cache_->numLines(),
                 "targets (", total, " lines) exceed capacity (",
                 cache_->numLines(), ")");
    targets_ = lines;
}

uint64_t
VantageScheme::target(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return targets_[part];
}

uint64_t
VantageScheme::occupancy(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return occ_[part];
}

uint32_t
VantageScheme::selectVictim(uint32_t set, PartId part, ReplPolicy& policy)
{
    (void)part;
    const uint32_t ways = cache_->numWays();
    const uint32_t base = set * ways;

    // Rank-key fusion: when the policy's victim() is a pure argmin
    // (LRU), collect-then-call collapses into one pass. Both forms
    // take the first strict minimum in way order, so the choice is
    // bit-identical.
    const uint64_t* keys = policy.rankKeys();
    if (keys != nullptr) {
        uint32_t best = kBypassLine;
        uint64_t best_key = ~0ull;
        for (uint32_t w = 0; w < ways; ++w) {
            const uint32_t line = base + w;
            if (!cache_->lineValid(line))
                return line;
            if (cache_->linePart(line) == kNoPart &&
                keys[line] < best_key) {
                best_key = keys[line];
                best = line;
            }
        }
        if (best != kBypassLine)
            return best;
        return victimOfWorstPart(base, ways, keys, policy);
    }

    uint32_t unmanaged_cands[SetAssocCache::kMaxWays];
    uint32_t n_unmanaged = 0;
    for (uint32_t w = 0; w < ways; ++w) {
        const uint32_t line = base + w;
        if (!cache_->lineValid(line))
            return line;
        if (cache_->linePart(line) == kNoPart)
            unmanaged_cands[n_unmanaged++] = line;
    }

    // Vantage evicts from the unmanaged region when possible.
    if (n_unmanaged > 0)
        return policy.victim(unmanaged_cands, n_unmanaged);

    return victimOfWorstPart(base, ways, nullptr, policy);
}

uint32_t
VantageScheme::victimOfWorstPart(uint32_t base, uint32_t ways,
                                 const uint64_t* keys, ReplPolicy& policy)
{

    // Otherwise demote-and-evict from the most over-target partition
    // present in this set.
    PartId worst = kNoPart;
    double worst_ratio = -1.0;
    for (uint32_t w = 0; w < ways; ++w) {
        const PartId q = cache_->linePart(base + w);
        if (q == kNoPart || q >= numParts_)
            continue;
        const double ratio =
            targets_[q] == 0
                ? 1e18
                : static_cast<double>(occ_[q]) /
                      static_cast<double>(targets_[q]);
        if (ratio > worst_ratio) {
            worst_ratio = ratio;
            worst = q;
        }
    }
    talus_assert(worst != kNoPart, "set full of foreign lines");

    if (keys != nullptr) {
        uint32_t best = kBypassLine;
        uint64_t best_key = ~0ull;
        for (uint32_t w = 0; w < ways; ++w) {
            const uint32_t line = base + w;
            if (cache_->linePart(line) == worst && keys[line] < best_key) {
                best_key = keys[line];
                best = line;
            }
        }
        return best;
    }

    uint32_t cands[SetAssocCache::kMaxWays];
    uint32_t n = 0;
    for (uint32_t w = 0; w < ways; ++w) {
        const uint32_t line = base + w;
        if (cache_->linePart(line) == worst)
            cands[n++] = line;
    }
    return policy.victim(cands, n);
}

void
VantageScheme::demoteIfOverTarget(uint32_t inserted_line, PartId part)
{
    if (occ_[part] <= targets_[part] || targets_[part] == 0)
        return;
    // Demote this partition's policy victim within the inserted set
    // (excluding the just-inserted line) into the unmanaged region.
    const uint32_t ways = cache_->numWays();
    const uint32_t base = (inserted_line / ways) * ways;
    uint32_t demoted = kBypassLine;
    const uint64_t* keys = cache_->policy().rankKeys();
    if (keys != nullptr) {
        uint64_t best_key = ~0ull;
        for (uint32_t w = 0; w < ways; ++w) {
            const uint32_t line = base + w;
            if (line != inserted_line && cache_->lineValid(line) &&
                cache_->linePart(line) == part && keys[line] < best_key) {
                best_key = keys[line];
                demoted = line;
            }
        }
        if (demoted == kBypassLine)
            return; // Cannot demote within this set; converges later.
    } else {
        uint32_t cands[SetAssocCache::kMaxWays];
        uint32_t n = 0;
        for (uint32_t w = 0; w < ways; ++w) {
            const uint32_t line = base + w;
            if (line != inserted_line && cache_->lineValid(line) &&
                cache_->linePart(line) == part) {
                cands[n++] = line;
            }
        }
        if (n == 0)
            return; // Cannot demote within this set; converges later.
        demoted = cache_->policy().victim(cands, n);
    }
    cache_->setLinePart(demoted, kNoPart);
    occ_[part]--;
    unmanaged_++;
}

void
VantageScheme::onInsert(uint32_t line, PartId part)
{
    talus_assert(part < numParts_, "bad partition id ", part);
    occ_[part]++;
    demoteIfOverTarget(line, part);
}

void
VantageScheme::onEvict(uint32_t line, PartId owner)
{
    (void)line;
    if (owner == kNoPart) {
        if (unmanaged_ > 0)
            unmanaged_--;
    } else if (owner < numParts_ && occ_[owner] > 0) {
        occ_[owner]--;
    }
}

void
VantageScheme::onHit(uint32_t line, PartId owner, PartId part)
{
    // Promotion: an unmanaged line that hits rejoins the accessing
    // partition. Balance the books immediately by demoting the
    // partition's policy victim in the same set if the promotion
    // pushed it over target — otherwise promotion-heavy phases would
    // inflate partitions far beyond their allocations.
    if (owner == kNoPart && part < numParts_) {
        cache_->setLinePart(line, part);
        occ_[part]++;
        if (unmanaged_ > 0)
            unmanaged_--;
        demoteIfOverTarget(line, part);
    }
}

} // namespace talus
