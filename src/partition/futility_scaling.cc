#include "partition/futility_scaling.h"

#include <algorithm>
#include <numeric>

#include "cache/set_assoc_cache.h"
#include "util/log.h"

namespace talus {

FutilityScheme::FutilityScheme(uint32_t num_parts)
    : FutilityScheme(num_parts, Config{})
{
}

FutilityScheme::FutilityScheme(uint32_t num_parts, const Config& config)
    : numParts_(num_parts), cfg_(config), targets_(num_parts, 0),
      occ_(num_parts, 0), scale_(num_parts, 1.0)
{
    talus_assert(num_parts >= 1, "need at least one partition");
    talus_assert(cfg_.gain > 0 && cfg_.gain < 1, "gain in (0,1)");
}

void
FutilityScheme::init(SetAssocCache* cache)
{
    cache_ = cache;
    stamps_.assign(cache->numLines(), 0);
    std::vector<uint64_t> equal(numParts_,
                                cache->numLines() / numParts_);
    setTargets(equal);
}

void
FutilityScheme::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(lines.size() == numParts_, "expected ", numParts_,
                 " targets, got ", lines.size());
    const uint64_t total =
        std::accumulate(lines.begin(), lines.end(), uint64_t{0});
    talus_assert(total <= cache_->numLines(),
                 "targets (", total, " lines) exceed capacity (",
                 cache_->numLines(), ")");
    targets_ = lines;
}

uint64_t
FutilityScheme::target(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return targets_[part];
}

uint64_t
FutilityScheme::occupancy(PartId part) const
{
    talus_assert(part < numParts_, "bad partition id ", part);
    return occ_[part];
}

uint32_t
FutilityScheme::selectVictim(uint32_t set, PartId part, ReplPolicy& policy)
{
    (void)part;
    (void)policy;
    const uint32_t ways = cache_->numWays();
    const uint32_t base = set * ways;

    // Highest scaled futility (age x partition scale) wins. Lines of
    // partitions whose target is zero are always maximally futile.
    uint32_t victim = kBypassLine;
    double worst = -1.0;
    for (uint32_t w = 0; w < ways; ++w) {
        const uint32_t line = base + w;
        if (!cache_->lineValid(line))
            return line;
        const PartId owner = cache_->linePart(line);
        const double age =
            static_cast<double>(clock_ - stamps_[line]) + 1.0;
        double futility;
        if (owner >= numParts_) {
            futility = 1e30; // Foreign/stale line: reclaim first.
        } else if (targets_[owner] == 0) {
            futility = 1e24;
        } else {
            futility = age * scale_[owner];
        }
        if (futility > worst) {
            worst = futility;
            victim = line;
        }
    }
    return victim;
}

void
FutilityScheme::adjustScales()
{
    // Proportional feedback: over-target partitions become more
    // futile (evicted more), under-target ones less.
    for (uint32_t p = 0; p < numParts_; ++p) {
        if (targets_[p] == 0)
            continue;
        const double err =
            (static_cast<double>(occ_[p]) -
             static_cast<double>(targets_[p])) /
            static_cast<double>(targets_[p]);
        scale_[p] = std::clamp(scale_[p] * (1.0 + cfg_.gain * err),
                               cfg_.minScale, cfg_.maxScale);
    }
}

void
FutilityScheme::onInsert(uint32_t line, PartId part)
{
    talus_assert(part < numParts_, "bad partition id ", part);
    clock_++;
    stamps_[line] = clock_;
    occ_[part]++;
    if (++insertions_ % cfg_.adjustEvery == 0)
        adjustScales();
}

void
FutilityScheme::onEvict(uint32_t line, PartId owner)
{
    (void)line;
    if (owner < numParts_ && occ_[owner] > 0)
        occ_[owner]--;
}

void
FutilityScheme::onHit(uint32_t line, PartId owner, PartId part)
{
    (void)owner;
    (void)part;
    clock_++;
    stamps_[line] = clock_;
}

} // namespace talus
