/**
 * @file
 * Idealized partitioning: one exact fully-associative LRU per
 * partition ("Talus+I" in Fig. 8). Split out of partitioned_cache.h
 * so the declaration lives next to its implementation
 * (ideal_partition.cc).
 */

#ifndef TALUS_PARTITION_IDEAL_PARTITION_H
#define TALUS_PARTITION_IDEAL_PARTITION_H

#include <vector>

#include "cache/cache_stats.h"
#include "cache/fully_assoc_lru.h"
#include "partition/partitioned_cache.h"
#include "util/types.h"

namespace talus {

/** Idealized partitioning: exact fully-associative LRU per partition. */
class IdealPartitionedCache : public PartitionedCacheBase
{
  public:
    /**
     * @param capacity_lines Total capacity; initial targets are equal.
     * @param num_parts Number of partitions.
     */
    IdealPartitionedCache(uint64_t capacity_lines, uint32_t num_parts);

    bool access(Addr addr, PartId part) override;
    void setTargets(const std::vector<uint64_t>& lines) override;
    uint32_t numPartitions() const override;
    uint64_t capacityLines() const override { return capacity_; }
    uint64_t occupancy(PartId part) const override;
    uint64_t targetOf(PartId part) const override;
    CacheStats& stats() override { return stats_; }
    const CacheStats& stats() const override { return stats_; }
    const char* schemeName() const override { return "Ideal"; }

  private:
    uint64_t capacity_;
    std::vector<FullyAssocLru> parts_;
    CacheStats stats_;
};

} // namespace talus

#endif // TALUS_PARTITION_IDEAL_PARTITION_H
