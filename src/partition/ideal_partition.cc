/**
 * @file
 * IdealPartitionedCache implementation: per-partition exact LRU.
 */

#include "partition/ideal_partition.h"

#include <numeric>

#include "util/log.h"

namespace talus {

IdealPartitionedCache::IdealPartitionedCache(uint64_t capacity_lines,
                                             uint32_t num_parts)
    : capacity_(capacity_lines)
{
    talus_assert(num_parts >= 1, "need at least one partition");
    parts_.resize(num_parts);
    std::vector<uint64_t> equal(num_parts, capacity_lines / num_parts);
    setTargets(equal);
}

bool
IdealPartitionedCache::access(Addr addr, PartId part)
{
    talus_assert(part < parts_.size(), "bad partition id ", part);
    const bool hit = parts_[part].access(addr);
    stats_.record(part, hit);
    return hit;
}

void
IdealPartitionedCache::setTargets(const std::vector<uint64_t>& lines)
{
    talus_assert(lines.size() == parts_.size(), "expected ", parts_.size(),
                 " targets, got ", lines.size());
    const uint64_t total = std::accumulate(lines.begin(), lines.end(),
                                           uint64_t{0});
    talus_assert(total <= capacity_, "targets (", total,
                 " lines) exceed capacity (", capacity_, ")");
    for (size_t p = 0; p < parts_.size(); ++p)
        parts_[p].setCapacity(lines[p]);
}

uint32_t
IdealPartitionedCache::numPartitions() const
{
    return static_cast<uint32_t>(parts_.size());
}

uint64_t
IdealPartitionedCache::occupancy(PartId part) const
{
    talus_assert(part < parts_.size(), "bad partition id ", part);
    return parts_[part].size();
}

uint64_t
IdealPartitionedCache::targetOf(PartId part) const
{
    talus_assert(part < parts_.size(), "bad partition id ", part);
    return parts_[part].capacity();
}

} // namespace talus
