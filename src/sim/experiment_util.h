/**
 * @file
 * Shared plumbing for the benchmark harness: environment knobs, size
 * grids in paper-MB, miss-ratio-to-MPKI conversion, and random mix
 * sampling for the Fig. 12 methodology.
 */

#ifndef TALUS_SIM_EXPERIMENT_UTIL_H
#define TALUS_SIM_EXPERIMENT_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/miss_curve.h"
#include "sim/scale.h"

namespace talus {

/** Environment/CLI configuration common to all bench binaries. */
struct BenchEnv
{
    Scale scale{Scale::kDefaultLinesPerMb};
    bool csv = false;            //!< --csv flag: emit CSV not tables.
    uint64_t instrPerApp = 0;    //!< Fixed work (TALUS_INSTR).
    uint32_t mixes = 0;          //!< Fig. 12 mix count (TALUS_MIXES).
    uint64_t measureAccesses = 0; //!< Sweep measurement (TALUS_ACCESSES).
    uint64_t seed = 0;           //!< Global seed (TALUS_SEED).
    uint32_t shards = 0;         //!< Shard count for sharded benches
                                 //!< (TALUS_SHARDS); 0 = bench default
                                 //!< (typically a sweep).
    uint32_t threads = 0;        //!< Worker threads for sharded
                                 //!< benches (TALUS_THREADS); 0 =
                                 //!< inline execution.
    uint64_t reconfig = 0;       //!< Accesses between control-plane
                                 //!< reconfigurations
                                 //!< (TALUS_RECONFIG); 0 = bench
                                 //!< default.
    std::string tracePath;       //!< Trace file to replay instead of
                                 //!< a synthetic workload
                                 //!< (TALUS_TRACE); "" = none.
    uint32_t monitorSample = 1;  //!< Monitor every Nth access
                                 //!< (TALUS_MONITOR_SAMPLE); 1 =
                                 //!< every access, the exact-curve
                                 //!< default. Maps to
                                 //!< Config::monitorSamplePeriod.
    bool monitorSampleSet = false; //!< True when --monitor-sample or
                                   //!< TALUS_MONITOR_SAMPLE was given
                                   //!< explicitly; lets binaries with
                                   //!< a non-1 default (see
                                   //!< monitorSampleOr()) still honor
                                   //!< an explicit --monitor-sample=1.
    bool pipeline = true;        //!< Double-buffered pipelined batch
                                 //!< dispatch in the sharded engine
                                 //!< (--pipeline=0|1 /
                                 //!< TALUS_PIPELINE). Maps to
                                 //!< ShardedTalusCache::Config::
                                 //!< pipelineDispatch; default on,
                                 //!< 0 = the serial scatter-then-wait
                                 //!< dispatch, kept for A/B runs.
    std::string metricsPath;     //!< Dump a global-registry metrics
                                 //!< snapshot here at process exit
                                 //!< (TALUS_METRICS); "" = no dump.
                                 //!< `.json`/`.jsonl` paths get JSON
                                 //!< lines, anything else Prometheus
                                 //!< text. Binaries should also set
                                 //!< Config::metricsEnabled from
                                 //!< metricsWanted().

    /** True when --metrics/TALUS_METRICS asked for a dump: the knob
     *  binaries map to TalusCache::Config::metricsEnabled. */
    bool metricsWanted() const { return !metricsPath.empty(); }

    /**
     * The monitor sampling period a binary with default
     * @p binary_default should run at: the explicit
     * --monitor-sample/TALUS_MONITOR_SAMPLE value when one was given,
     * @p binary_default otherwise. Figure binaries use
     * env.monitorSample directly (default 1, exact curves); serving
     * binaries pass kServingMonitorSamplePeriod here so they default
     * to sampled monitoring while --monitor-sample=1 still opts back
     * into exact curves.
     */
    uint32_t monitorSampleOr(uint32_t binary_default) const
    {
        return monitorSampleSet ? monitorSample : binary_default;
    }

    /**
     * Parses the common bench command line over environment-variable
     * defaults (flags win over env vars). Accepted flags: --csv,
     * --full, --scale=N, --instr=N, --mixes=N, --accesses=N, --seed=N,
     * --shards=N, --threads=N, --reconfig=N, --pipeline=0|1,
     * --trace=PATH, and --help/-h (prints usage() and exits 0). Any other `--` argument
     * is an error: usage goes to stderr and the process exits 1.
     * --trace/TALUS_TRACE is validated like the shard knobs: a
     * missing, unreadable, or corrupt trace file is a usage error
     * (the validateTraceFile() message is printed), so replay runs
     * fail before any simulation starts. --metrics/TALUS_METRICS is
     * validated the same way (an unwritable path fails here, not
     * after the run) and additionally installs a process-exit hook
     * that dumps a snapshot of the global MetricRegistry to the
     * path, so every bench/example exports its metrics without
     * per-binary wiring. Non-flag positional arguments are left for
     * the binary to interpret.
     */
    static BenchEnv init(int argc, char** argv);

    /** The usage text printed by --help and on flag errors. */
    static const char* usage();
};

/**
 * An evenly spaced size grid from @p step_mb to @p max_mb inclusive
 * (paper-MB), converted to lines. Never includes size 0.
 */
std::vector<uint64_t> sizeGridLines(const Scale& scale, double max_mb,
                                    double step_mb);

/** Converts a miss-ratio curve to MPKI given the app's APKI. */
MissCurve toMpki(const MissCurve& ratio_curve, double apki);

/**
 * Samples @p num_mixes random app mixes of @p apps_per_mix names from
 * the memory-intensive pool (with repetition across mixes, without
 * repetition within a mix when the pool allows).
 */
std::vector<std::vector<std::string>>
sampleMixes(uint32_t num_mixes, uint32_t apps_per_mix, uint64_t seed);

} // namespace talus

#endif // TALUS_SIM_EXPERIMENT_UTIL_H
