#include "sim/metrics.h"

#include "util/log.h"
#include "util/stats.h"

namespace talus {

double
weightedSpeedup(const std::vector<double>& ipc,
                const std::vector<double>& ipc_base)
{
    talus_assert(!ipc.empty() && ipc.size() == ipc_base.size(),
                 "speedup input size mismatch");
    double sum = 0;
    for (size_t i = 0; i < ipc.size(); ++i) {
        talus_assert(ipc_base[i] > 0, "baseline IPC must be > 0");
        sum += ipc[i] / ipc_base[i];
    }
    return sum / static_cast<double>(ipc.size());
}

double
harmonicSpeedup(const std::vector<double>& ipc,
                const std::vector<double>& ipc_base)
{
    talus_assert(!ipc.empty() && ipc.size() == ipc_base.size(),
                 "speedup input size mismatch");
    double denom = 0;
    for (size_t i = 0; i < ipc.size(); ++i) {
        talus_assert(ipc[i] > 0, "IPC must be > 0");
        denom += ipc_base[i] / ipc[i];
    }
    return static_cast<double>(ipc.size()) / denom;
}

double
ipcCoV(const std::vector<double>& ipc)
{
    return coeffOfVariation(ipc);
}

} // namespace talus
