#include "sim/scale.h"

#include <cmath>

#include "util/env.h"
#include "util/log.h"

namespace talus {

Scale::Scale(uint64_t lines_per_mb) : linesPerMb_(lines_per_mb)
{
    talus_assert(lines_per_mb >= 1, "scale must be >= 1 line per MB");
}

Scale
Scale::fromEnv()
{
    if (envFlag("TALUS_FULL"))
        return Scale(kFullLinesPerMb);
    const int64_t lines =
        envInt("TALUS_SCALE", static_cast<int64_t>(kDefaultLinesPerMb));
    talus_assert(lines >= 1, "TALUS_SCALE must be >= 1");
    return Scale(static_cast<uint64_t>(lines));
}

uint64_t
Scale::lines(double mb) const
{
    const double exact = mb * static_cast<double>(linesPerMb_);
    const uint64_t rounded = static_cast<uint64_t>(std::llround(exact));
    return rounded >= 1 ? rounded : 1;
}

double
Scale::mb(uint64_t lines_count) const
{
    return static_cast<double>(lines_count) /
           static_cast<double>(linesPerMb_);
}

} // namespace talus
