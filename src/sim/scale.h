/**
 * @file
 * Size scaling between "paper MB" and simulated cache lines.
 *
 * The paper's experiments run caches from 128KB to 72MB. Simulating
 * those sizes cycle-by-cycle for every figure would make the bench
 * suite take hours, so by default 1 paper-MB maps to 1024 lines (64KB
 * real) — a 16x downscale of both cache sizes and working sets, which
 * preserves every working-set:cache-size ratio and hence the miss
 * curve shapes (see DESIGN.md §1). `TALUS_SCALE` overrides the
 * lines-per-MB factor; `TALUS_FULL=1` selects the paper's true scale
 * (16384 lines per MB).
 */

#ifndef TALUS_SIM_SCALE_H
#define TALUS_SIM_SCALE_H

#include <cstdint>

namespace talus {

/** Converts paper-MB labels to simulated lines and back. */
class Scale
{
  public:
    /** Paper-true scale: 1MB of 64B lines. */
    static constexpr uint64_t kFullLinesPerMb = 16384;

    /** Default downscale used by benches and examples. */
    static constexpr uint64_t kDefaultLinesPerMb = 1024;

    explicit Scale(uint64_t lines_per_mb = kDefaultLinesPerMb);

    /** Builds from TALUS_SCALE / TALUS_FULL environment knobs. */
    static Scale fromEnv();

    /** Lines for @p mb paper-MB (at least 1). */
    uint64_t lines(double mb) const;

    /** Paper-MB label for @p lines lines. */
    double mb(uint64_t lines) const;

    /** The scale factor itself. */
    uint64_t linesPerMb() const { return linesPerMb_; }

  private:
    uint64_t linesPerMb_;
};

} // namespace talus

#endif // TALUS_SIM_SCALE_H
