#include "sim/serving_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/registry.h"
#include "util/log.h"

namespace talus {

namespace {

using Clock = std::chrono::steady_clock;

double
toSeconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

uint64_t
toNanos(Clock::duration d)
{
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
    return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

/** Summarizes a nanosecond-granularity latency histogram in seconds
 *  (see the LatencyStats resolution contract). */
LatencyStats
summarizeHistogram(const Histogram& h)
{
    LatencyStats stats;
    const HistogramData d = h.snapshot(1e-9);
    if (d.count == 0)
        return stats;
    stats.p50 = d.quantile(0.50);
    stats.p95 = d.quantile(0.95);
    stats.p99 = d.quantile(0.99);
    stats.mean = d.mean();
    stats.max = d.maxValue();
    return stats;
}

/** Registry handles for one driver run; all null when
 *  ServingOptions::metrics is unset. */
struct ServingObs
{
    Counter* accesses = nullptr;
    Counter* hits = nullptr;
    Counter* batches = nullptr;
    Counter* lateBatches = nullptr;
    Histogram* latency = nullptr;

    ServingObs(const ServingOptions& opts, const char* loop)
    {
        if (opts.metrics == nullptr)
            return;
        MetricRegistry& reg = *opts.metrics;
        const std::string labels = joinLabels(
            opts.metricsScope, std::string("loop=\"") + loop + "\"");
        accesses =
            &reg.counter("talus_serving_accesses_total", labels);
        hits = &reg.counter("talus_serving_hits_total", labels);
        batches = &reg.counter("talus_serving_batches_total", labels);
        lateBatches =
            &reg.counter("talus_serving_late_batches_total", labels);
        latency = &reg.histogram("talus_serving_batch_seconds", labels,
                                 1e-9);
    }

    /** Publishes one finished run's window totals. */
    void publish(const ServingResult& r) const
    {
        if (accesses == nullptr)
            return;
        accesses->inc(r.accesses);
        hits->inc(r.hits);
        batches->inc(r.batches);
        lateBatches->inc(r.lateBatches);
    }
};

/** Nearest-rank percentile of an ascending-sorted sample vector. */
double
percentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t n = sorted.size();
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    const size_t idx = rank > 0 ? rank - 1 : 0;
    return sorted[std::min(idx, n - 1)];
}

} // namespace

LatencyStats
summarizeLatencies(std::vector<double>& samples_seconds)
{
    LatencyStats stats;
    if (samples_seconds.empty())
        return stats;
    std::sort(samples_seconds.begin(), samples_seconds.end());
    stats.p50 = percentile(samples_seconds, 0.50);
    stats.p95 = percentile(samples_seconds, 0.95);
    stats.p99 = percentile(samples_seconds, 0.99);
    stats.max = samples_seconds.back();
    double sum = 0.0;
    for (double s : samples_seconds)
        sum += s;
    stats.mean = sum / static_cast<double>(samples_seconds.size());
    return stats;
}

ServingResult
runClosedLoop(ShardedTalusCache& cache, AccessStream& stream,
              const ServingOptions& opts)
{
    talus_assert(opts.batchSize >= 1, "batchSize must be >= 1");
    std::vector<Addr> block(opts.batchSize);

    // Warmup batches: executed, not measured.
    for (uint64_t b = 0; b < opts.warmupBatches; ++b) {
        stream.nextBlock(block.data(), opts.batchSize);
        cache.accessBatch(Span<const Addr>(block.data(), opts.batchSize),
                          opts.part);
    }

    ServingResult result;
    const ServingObs obs(opts, "closed");
    Histogram latency; // Nanosecond service times, O(1) per batch.

    const Clock::time_point start = Clock::now();
    uint64_t left = opts.accesses;
    while (left > 0) {
        const uint64_t n = std::min<uint64_t>(opts.batchSize, left);
        stream.nextBlock(block.data(), n);
        const Clock::time_point t0 = Clock::now();
        result.hits += cache.accessBatch(
            Span<const Addr>(block.data(), n), opts.part);
        const uint64_t ns = toNanos(Clock::now() - t0);
        latency.record(ns);
        if (obs.latency != nullptr)
            obs.latency->record(ns);
        left -= n;
        result.batches++;
    }
    result.seconds = toSeconds(Clock::now() - start);
    result.accesses = opts.accesses;
    result.latency = summarizeHistogram(latency);
    obs.publish(result);
    return result;
}

ServingResult
runOpenLoop(ShardedTalusCache& cache, AccessStream& stream,
            const ServingOptions& opts)
{
    talus_assert(opts.batchSize >= 1, "batchSize must be >= 1");
    talus_assert(opts.offeredRate > 0.0,
                 "open-loop serving needs offeredRate > 0 (got ",
                 opts.offeredRate, ")");
    std::vector<Addr> block(opts.batchSize);

    for (uint64_t b = 0; b < opts.warmupBatches; ++b) {
        stream.nextBlock(block.data(), opts.batchSize);
        cache.accessBatch(Span<const Addr>(block.data(), opts.batchSize),
                          opts.part);
    }

    ServingResult result;
    result.offeredRate = opts.offeredRate;
    const ServingObs obs(opts, "open");
    Histogram latency; // Nanosecond sojourn times, O(1) per batch —
                       // long overloaded runs no longer grow a
                       // sample vector while falling behind.

    // Fixed inter-arrival schedule: batch k arrives at
    // start + k * interval, independent of completions — arrivals
    // never wait for the server, so queueing delay lands in the
    // samples instead of being silently omitted.
    const Clock::duration interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                static_cast<double>(opts.batchSize) /
                opts.offeredRate));

    const Clock::time_point start = Clock::now();
    uint64_t left = opts.accesses;
    for (uint64_t k = 0; left > 0; ++k) {
        const uint64_t n = std::min<uint64_t>(opts.batchSize, left);
        // Generate before arrival: the workload generator is the
        // client, not part of the measured service path.
        stream.nextBlock(block.data(), n);
        const Clock::time_point arrival = start + interval * k;
        Clock::time_point now = Clock::now();
        if (now < arrival) {
            // Sleep out the bulk of the wait, spin the last stretch
            // (sleep_for routinely overshoots by tens of µs, which
            // would smear the schedule at high offered rates).
            constexpr auto kSpinWindow =
                std::chrono::microseconds(100);
            if (arrival - now > kSpinWindow)
                std::this_thread::sleep_for(arrival - now - kSpinWindow);
            while ((now = Clock::now()) < arrival) {
            }
        } else {
            result.lateBatches++;
        }
        result.hits += cache.accessBatch(
            Span<const Addr>(block.data(), n), opts.part);
        const uint64_t ns = toNanos(Clock::now() - arrival);
        latency.record(ns);
        if (obs.latency != nullptr)
            obs.latency->record(ns);
        left -= n;
        result.batches++;
    }
    result.seconds = toSeconds(Clock::now() - start);
    result.accesses = opts.accesses;
    result.latency = summarizeHistogram(latency);
    obs.publish(result);
    return result;
}

} // namespace talus
