#include "sim/serving_harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/log.h"

namespace talus {

namespace {

using Clock = std::chrono::steady_clock;

double
toSeconds(Clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

/** Nearest-rank percentile of an ascending-sorted sample vector. */
double
percentile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const size_t n = sorted.size();
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    const size_t idx = rank > 0 ? rank - 1 : 0;
    return sorted[std::min(idx, n - 1)];
}

/** Batches needed to cover @p accesses at @p batch_size each. */
uint64_t
batchCount(uint64_t accesses, uint64_t batch_size)
{
    return (accesses + batch_size - 1) / batch_size;
}

} // namespace

LatencyStats
summarizeLatencies(std::vector<double>& samples_seconds)
{
    LatencyStats stats;
    if (samples_seconds.empty())
        return stats;
    std::sort(samples_seconds.begin(), samples_seconds.end());
    stats.p50 = percentile(samples_seconds, 0.50);
    stats.p95 = percentile(samples_seconds, 0.95);
    stats.p99 = percentile(samples_seconds, 0.99);
    stats.max = samples_seconds.back();
    double sum = 0.0;
    for (double s : samples_seconds)
        sum += s;
    stats.mean = sum / static_cast<double>(samples_seconds.size());
    return stats;
}

ServingResult
runClosedLoop(ShardedTalusCache& cache, AccessStream& stream,
              const ServingOptions& opts)
{
    talus_assert(opts.batchSize >= 1, "batchSize must be >= 1");
    std::vector<Addr> block(opts.batchSize);

    // Warmup batches: executed, not measured.
    for (uint64_t b = 0; b < opts.warmupBatches; ++b) {
        stream.nextBlock(block.data(), opts.batchSize);
        cache.accessBatch(Span<const Addr>(block.data(), opts.batchSize),
                          opts.part);
    }

    ServingResult result;
    const uint64_t batches = batchCount(opts.accesses, opts.batchSize);
    std::vector<double> samples;
    samples.reserve(batches);

    const Clock::time_point start = Clock::now();
    uint64_t left = opts.accesses;
    while (left > 0) {
        const uint64_t n = std::min<uint64_t>(opts.batchSize, left);
        stream.nextBlock(block.data(), n);
        const Clock::time_point t0 = Clock::now();
        result.hits += cache.accessBatch(
            Span<const Addr>(block.data(), n), opts.part);
        samples.push_back(toSeconds(Clock::now() - t0));
        left -= n;
        result.batches++;
    }
    result.seconds = toSeconds(Clock::now() - start);
    result.accesses = opts.accesses;
    result.latency = summarizeLatencies(samples);
    return result;
}

ServingResult
runOpenLoop(ShardedTalusCache& cache, AccessStream& stream,
            const ServingOptions& opts)
{
    talus_assert(opts.batchSize >= 1, "batchSize must be >= 1");
    talus_assert(opts.offeredRate > 0.0,
                 "open-loop serving needs offeredRate > 0 (got ",
                 opts.offeredRate, ")");
    std::vector<Addr> block(opts.batchSize);

    for (uint64_t b = 0; b < opts.warmupBatches; ++b) {
        stream.nextBlock(block.data(), opts.batchSize);
        cache.accessBatch(Span<const Addr>(block.data(), opts.batchSize),
                          opts.part);
    }

    ServingResult result;
    result.offeredRate = opts.offeredRate;
    const uint64_t batches = batchCount(opts.accesses, opts.batchSize);
    std::vector<double> samples;
    samples.reserve(batches);

    // Fixed inter-arrival schedule: batch k arrives at
    // start + k * interval, independent of completions — arrivals
    // never wait for the server, so queueing delay lands in the
    // samples instead of being silently omitted.
    const Clock::duration interval =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(
                static_cast<double>(opts.batchSize) /
                opts.offeredRate));

    const Clock::time_point start = Clock::now();
    uint64_t left = opts.accesses;
    for (uint64_t k = 0; left > 0; ++k) {
        const uint64_t n = std::min<uint64_t>(opts.batchSize, left);
        // Generate before arrival: the workload generator is the
        // client, not part of the measured service path.
        stream.nextBlock(block.data(), n);
        const Clock::time_point arrival = start + interval * k;
        Clock::time_point now = Clock::now();
        if (now < arrival) {
            // Sleep out the bulk of the wait, spin the last stretch
            // (sleep_for routinely overshoots by tens of µs, which
            // would smear the schedule at high offered rates).
            constexpr auto kSpinWindow =
                std::chrono::microseconds(100);
            if (arrival - now > kSpinWindow)
                std::this_thread::sleep_for(arrival - now - kSpinWindow);
            while ((now = Clock::now()) < arrival) {
            }
        } else {
            result.lateBatches++;
        }
        result.hits += cache.accessBatch(
            Span<const Addr>(block.data(), n), opts.part);
        samples.push_back(toSeconds(Clock::now() - arrival));
        left -= n;
        result.batches++;
    }
    result.seconds = toSeconds(Clock::now() - start);
    result.accesses = opts.accesses;
    result.latency = summarizeLatencies(samples);
    return result;
}

} // namespace talus
