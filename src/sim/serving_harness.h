/**
 * @file
 * Serving harness: closed- and open-loop load drivers with per-batch
 * latency percentiles.
 *
 * Aggregate throughput alone hides what a serving system's users
 * actually feel, which is why production cache load tools (Apache
 * Traffic Server's jtest and http_load are the exemplars) report
 * latency distributions under a controlled offered load. This
 * harness drives an AccessStream workload through a
 * ShardedTalusCache in batches and measures both, two ways:
 *
 *  - Closed loop (runClosedLoop): the next batch is submitted the
 *    moment the previous one completes — one outstanding request,
 *    zero think time. Measures peak sustainable throughput; the
 *    latency samples are pure service times.
 *
 *  - Open loop (runOpenLoop): batches *arrive* on a fixed schedule
 *    (ServingOptions::offeredRate accesses/second, one batch every
 *    batchSize/offeredRate seconds) regardless of completion, as
 *    independent clients would. Each sample is the batch's sojourn
 *    time — completion minus scheduled arrival — so when the engine
 *    falls behind, queueing delay shows up in the tail percentiles
 *    instead of silently stretching the run. This is the
 *    coordinated-omission-free measurement closed loops cannot give.
 *
 * Latency is wall-clock around the accessBatch call only; workload
 * generation (AccessStream::nextBlock) happens before a batch is
 * considered arrived. Throughput is accesses over the whole measured
 * window. Results are deterministic in hits/misses for any thread
 * count (the engine's bit-exactness guarantee); the timing numbers
 * are whatever the host delivers.
 */

#ifndef TALUS_SIM_SERVING_HARNESS_H
#define TALUS_SIM_SERVING_HARNESS_H

#include <cstdint>
#include <string>
#include <vector>

#include "shard/sharded_cache.h"
#include "sim/run_stats.h"
#include "util/types.h"
#include "workload/access_stream.h"

namespace talus {

/**
 * Default TalusCache::Config::monitorSamplePeriod for serving-shaped
 * binaries (examples/serving_bench and anything else driving this
 * harness for throughput). Serving cares about items/s, and sampled
 * monitoring at period 8 recovers most of the monitor's hot-path cost
 * while leaving the control plane statistically sound curves (the
 * ROADMAP's sampled-monitoring lever). Figure binaries stay at
 * period 1 — exact curves are the point there — which is also
 * BenchEnv's default; serving binaries opt into this constant via
 * BenchEnv::monitorSampleOr(), so --monitor-sample=1 restores exact
 * monitoring.
 */
inline constexpr uint32_t kServingMonitorSamplePeriod = 8;

/** Knobs for one serving-harness run. */
struct ServingOptions
{
    uint64_t accesses = 1'000'000; //!< Measured accesses (post-warmup).
    uint64_t batchSize = 4096;     //!< Addresses per batch.
    PartId part = 0;               //!< Logical partition to serve as.

    /**
     * Open loop only: offered load in accesses/second; batches are
     * scheduled every batchSize/offeredRate seconds. Must be > 0 for
     * runOpenLoop; ignored by runClosedLoop.
     */
    double offeredRate = 0.0;

    /**
     * Batches executed before the measured window (cache and monitor
     * warmup). They consume stream addresses but contribute nothing
     * to the reported counts, times, or percentiles.
     */
    uint64_t warmupBatches = 0;

    /**
     * Optional registry to publish serving metrics into: window
     * counters (talus_serving_accesses_total / hits_total /
     * batches_total / late_batches_total) and the per-batch latency
     * histogram (talus_serving_batch_seconds), labeled loop="closed"
     * or loop="open" under @p metricsScope. Cumulative across runs
     * sharing the registry. Null = no publishing.
     */
    MetricRegistry* metrics = nullptr;
    std::string metricsScope; //!< Extra label pairs, e.g. `rate="0.5"`.
};

/**
 * Per-batch latency distribution, in seconds. Derived from a
 * log2-bucketed obs Histogram recorded at nanosecond granularity, so
 * the percentiles carry the histogram's documented resolution: exact
 * below 32 ns, within 1/32 (~3.1%) above the true sample elsewhere
 * (mean and max are exact). The harness holds one fixed-size
 * histogram instead of every sample, so arbitrarily long open-loop
 * runs take O(1) memory and no end-of-run sort.
 */
struct LatencyStats
{
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    double max = 0.0;
};

/** What one serving-harness run measured. */
struct ServingResult
{
    uint64_t accesses = 0; //!< Addresses served in the window.
    uint64_t hits = 0;     //!< Hits across all shards.
    uint64_t batches = 0;  //!< Batches in the window.
    double seconds = 0.0;  //!< Measured-window wall time.
    double offeredRate = 0.0; //!< Accesses/s offered (0 = closed loop).
    /** Batches whose service started after their scheduled arrival
     *  (open loop only): the engine was behind schedule. */
    uint64_t lateBatches = 0;
    LatencyStats latency; //!< Per-batch service (closed) or sojourn
                          //!< (open) times.

    /** Misses / accesses; 0 before any access. */
    double missRatio() const { return runMissRatio(accesses, hits); }

    /** Achieved throughput; 0 when the window was too fast to time. */
    double accessesPerSecond() const
    {
        return runAccessesPerSecond(accesses, seconds);
    }
};

/**
 * Closed-loop driver: back-to-back batches, one outstanding request.
 * The stream is consumed (not reset).
 */
ServingResult runClosedLoop(ShardedTalusCache& cache,
                            AccessStream& stream,
                            const ServingOptions& opts);

/**
 * Open-loop driver: batches arrive every batchSize/offeredRate
 * seconds from run start; latency samples are sojourn times
 * (completion minus scheduled arrival). Fatal if opts.offeredRate
 * is not positive. The stream is consumed (not reset).
 */
ServingResult runOpenLoop(ShardedTalusCache& cache,
                          AccessStream& stream,
                          const ServingOptions& opts);

/**
 * Percentiles of @p samples_seconds (sorted in place; empty input
 * yields all-zero stats). Percentile q is the ceil(q*n)-th smallest
 * sample — the nearest-rank definition load tools report. The
 * drivers no longer use this O(n log n) path (they summarize a
 * histogram); it remains as the exact-sort oracle the histogram
 * summaries are tested against, and for callers with their own
 * sample vectors.
 */
LatencyStats summarizeLatencies(std::vector<double>& samples_seconds);

} // namespace talus

#endif // TALUS_SIM_SERVING_HARNESS_H
