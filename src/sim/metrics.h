/**
 * @file
 * Multiprogram performance metrics from the paper's methodology
 * (Sec. VII-A): weighted speedup (throughput + fairness), harmonic
 * speedup (fairness-emphasizing), and the coefficient of variation of
 * per-core IPC (Fig. 13's unfairness measure).
 */

#ifndef TALUS_SIM_METRICS_H
#define TALUS_SIM_METRICS_H

#include <vector>

namespace talus {

/**
 * Weighted speedup: (sum_i IPC_i / IPC_base_i) / N. Equals 1.0 when
 * performance matches the baseline.
 */
double weightedSpeedup(const std::vector<double>& ipc,
                       const std::vector<double>& ipc_base);

/**
 * Harmonic speedup: N / sum_i (IPC_base_i / IPC_i) — the harmonic
 * mean of per-app speedups, which punishes slowing any app down.
 */
double harmonicSpeedup(const std::vector<double>& ipc,
                       const std::vector<double>& ipc_base);

/** Coefficient of variation of per-core IPCs (0 = perfectly fair). */
double ipcCoV(const std::vector<double>& ipc);

} // namespace talus

#endif // TALUS_SIM_METRICS_H
