/**
 * @file
 * Sharded trace replay: the driver that feeds AccessStream workloads
 * into the sharded serving engine (shard/sharded_cache.h).
 *
 * The replay loop is the bulk-serving shape the ROADMAP asks new
 * scenarios to build on: blocks of addresses are pulled from the
 * stream with AccessStream::nextBlock (one virtual dispatch per
 * block) and pushed through ShardedTalusCache::accessBatch, which
 * scatters each block into per-shard buffers and runs the shards in
 * parallel. Timing wraps only the replay loop, so the result doubles
 * as a shard-scaling throughput measurement for the README table and
 * the sharded example.
 */

#ifndef TALUS_SIM_SHARDED_REPLAY_H
#define TALUS_SIM_SHARDED_REPLAY_H

#include <cstdint>

#include "shard/sharded_cache.h"
#include "sim/run_stats.h"
#include "util/types.h"
#include "workload/access_stream.h"

namespace talus {

/** Knobs for one sharded replay run. */
struct ShardedReplayOptions
{
    uint64_t accesses = 1'000'000; //!< Total addresses to replay.
    uint64_t blockSize = 4096;     //!< Addresses per accessBatch call.
    PartId part = 0;               //!< Logical partition to replay as.

    /**
     * Blocks between explicit control-plane sweeps; 0 = never (the
     * shards' own Config::reconfigInterval still applies). Each sweep
     * calls ShardedTalusCache::reconfigureAll() — or, when
     * applyEpochLen > 0, reconfigureAllAtEpoch(applyEpochLen), so the
     * compute runs between blocks but every shard applies its new
     * configuration at its next fixed access-count epoch boundary.
     */
    uint64_t reconfigEveryBlocks = 0;
    uint64_t applyEpochLen = 0; //!< 0 = synchronous application.
};

/** What one sharded replay run measured. */
struct ShardedReplayResult
{
    uint64_t accesses = 0; //!< Addresses replayed.
    uint64_t hits = 0;     //!< Hits across all shards.
    double seconds = 0.0;  //!< Wall time of the replay loop only.

    /** Misses / accesses; 0 before any access. */
    double missRatio() const { return runMissRatio(accesses, hits); }

    /** Replay throughput; 0 when the loop was too fast to time. */
    double accessesPerSecond() const
    {
        return runAccessesPerSecond(accesses, seconds);
    }
};

/**
 * Replays @p opts.accesses addresses from @p stream through
 * @p cache in blocks of @p opts.blockSize. The stream is consumed
 * (not reset), so callers control warmup by replaying twice.
 */
ShardedReplayResult runShardedReplay(ShardedTalusCache& cache,
                                     AccessStream& stream,
                                     const ShardedReplayOptions& opts);

} // namespace talus

#endif // TALUS_SIM_SHARDED_REPLAY_H
