#include "sim/core_model.h"

#include "util/log.h"

namespace talus {

CoreModel::CoreModel(const AppSpec& app, const CoreModelParams& params)
    : apki_(app.apki), cpiBase_(app.cpiBase),
      instrPerAccess_(app.instrPerAccess()),
      gapCycles_(app.instrPerAccess() * app.cpiBase),
      hitCost_(params.l3HitCycles / app.mlp),
      missCost_(params.memCycles / app.mlp)
{
    talus_assert(app.apki > 0, "APKI must be > 0 for ", app.name);
    talus_assert(app.cpiBase > 0, "base CPI must be > 0 for ", app.name);
    talus_assert(app.mlp > 0, "MLP must be > 0 for ", app.name);
}

double
CoreModel::ipcAt(double miss_ratio) const
{
    talus_assert(miss_ratio >= 0.0 && miss_ratio <= 1.0,
                 "miss ratio out of [0,1]: ", miss_ratio);
    const double access_cost =
        (1.0 - miss_ratio) * hitCost_ + miss_ratio * missCost_;
    const double cpi = cpiBase_ + access_cost * apki_ / 1000.0;
    return 1.0 / cpi;
}

double
CoreModel::ipcAtMpki(double mpki) const
{
    return ipcAt(mpki / apki_);
}

} // namespace talus
