/**
 * @file
 * Single-application simulation: miss-ratio curves over cache-size
 * sweeps, with or without Talus, for the MPKI-vs-size figures
 * (Figs. 1, 3, 8, 9, 10).
 *
 * All curves here are in miss-ratio units (misses / LLC accesses);
 * multiply by the app's APKI to get MPKI (experiment_util.h).
 */

#ifndef TALUS_SIM_SINGLE_APP_SIM_H
#define TALUS_SIM_SINGLE_APP_SIM_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/miss_curve.h"
#include "partition/partitioned_cache.h"
#include "workload/access_stream.h"

namespace talus {

/** Common knobs for size sweeps. */
struct SweepOptions
{
    uint32_t ways = 32;              //!< LLC associativity (Table I).
    uint64_t warmupAccesses = 0;     //!< 0 = auto (2x size + 64K).
    uint64_t measureAccesses = 500'000;
    std::string policyName = "LRU";
    uint64_t seed = 0xBEEF;
};

/**
 * Trace-driven sweep of a replacement policy over @p sizes (lines):
 * one fresh unpartitioned cache per size, warmup then measure.
 * Returns miss-ratio points at each size plus (0, 1).
 */
MissCurve sweepPolicyCurve(AccessStream& stream,
                           const std::vector<uint64_t>& sizes,
                           const SweepOptions& opts);

/** Talus sweep knobs. */
struct TalusSweepOptions : SweepOptions
{
    SchemeKind scheme = SchemeKind::Vantage;
    double margin = 0.05;       //!< Safety margin on rho.
    uint32_t routerBits = 8;    //!< Sampling function width.
};

/**
 * Trace-driven sweep of Talus wrapped around scheme/policy: for each
 * size, a fresh single-partition TalusCache facade is configured from
 * @p input_curve (the underlying policy's monitored miss curve, via
 * TalusCache::applyCurves) and driven through warmup + measurement.
 */
MissCurve sweepTalusCurve(AccessStream& stream, const MissCurve& input_curve,
                          const std::vector<uint64_t>& sizes,
                          const TalusSweepOptions& opts);

/**
 * Exact LRU miss-ratio curve via Mattson's stack algorithm: one pass
 * of @p accesses accesses, curve sampled every @p step lines up to
 * @p max_lines.
 */
MissCurve measureLruCurve(AccessStream& stream, uint64_t accesses,
                          uint64_t max_lines, uint64_t step);

} // namespace talus

#endif // TALUS_SIM_SINGLE_APP_SIM_H
