/**
 * @file
 * Analytic core model — the substitution for the paper's zsim OOO
 * cores (Table I; see DESIGN.md §1).
 *
 * Each app retires instructions at its base CPI and pays, per LLC
 * access, the L3 hit latency (20 cycles) or memory latency (200
 * cycles) divided by its memory-level-parallelism factor. This
 * preserves the property the paper's IPC results rest on: IPC is a
 * decreasing, affine function of miss ratio, with app-specific
 * sensitivity. It also reproduces the co-run "vicious cycle" of
 * Sec. VII-D (an app that misses more advances more slowly, touching
 * the cache less per unit time).
 */

#ifndef TALUS_SIM_CORE_MODEL_H
#define TALUS_SIM_CORE_MODEL_H

#include "workload/app_spec.h"

namespace talus {

/** Latency parameters shared by all cores (Table I). */
struct CoreModelParams
{
    double l3HitCycles = 20.0;  //!< LLC hit latency.
    double memCycles = 200.0;   //!< Main memory latency.
};

/** Per-app analytic timing model. */
class CoreModel
{
  public:
    CoreModel(const AppSpec& app, const CoreModelParams& params = {});

    /**
     * Cycles consumed by one LLC access plus the instructions leading
     * up to it (1000/APKI instructions at the base CPI, plus the
     * MLP-discounted access latency).
     */
    double cyclesPerAccess(bool hit) const
    {
        return gapCycles_ + (hit ? hitCost_ : missCost_);
    }

    /** Instructions represented by one LLC access. */
    double instrPerAccess() const { return instrPerAccess_; }

    /** Steady-state analytic IPC at a given LLC miss ratio. */
    double ipcAt(double miss_ratio) const;

    /** Steady-state analytic IPC at a given MPKI. */
    double ipcAtMpki(double mpki) const;

  private:
    double apki_;
    double cpiBase_;
    double instrPerAccess_;
    double gapCycles_;  //!< instrPerAccess * cpiBase.
    double hitCost_;    //!< l3HitCycles / mlp.
    double missCost_;   //!< memCycles / mlp.
};

} // namespace talus

#endif // TALUS_SIM_CORE_MODEL_H
