/**
 * @file
 * Shared result arithmetic for the sim drivers: miss ratio and
 * throughput from raw (accesses, hits, seconds) counters.
 *
 * Every driver result struct (sim/sharded_replay.h's
 * ShardedReplayResult, sim/serving_harness.h's ServingResult) exposes
 * the same two derived quantities; keeping the formulas here — one
 * header-inline definition each — pins the conventions in one place:
 * hits never exceed accesses, an empty window reports ratio 0 (not
 * NaN), and an untimeably fast window reports throughput 0.
 */

#ifndef TALUS_SIM_RUN_STATS_H
#define TALUS_SIM_RUN_STATS_H

#include <cstdint>

namespace talus {

/** Misses / accesses; 0 before any access. */
inline double
runMissRatio(uint64_t accesses, uint64_t hits)
{
    return accesses > 0 ? static_cast<double>(accesses - hits) /
                              static_cast<double>(accesses)
                        : 0.0;
}

/** Accesses / wall seconds; 0 when the window was too fast to time. */
inline double
runAccessesPerSecond(uint64_t accesses, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(accesses) / seconds
                         : 0.0;
}

} // namespace talus

#endif // TALUS_SIM_RUN_STATS_H
