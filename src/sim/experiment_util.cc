#include "sim/experiment_util.h"

#include <algorithm>
#include <cstring>

#include "util/env.h"
#include "util/log.h"
#include "util/rng.h"
#include "workload/spec_suite.h"

namespace talus {

BenchEnv
BenchEnv::init(int argc, char** argv)
{
    BenchEnv env;
    env.scale = Scale::fromEnv();
    const bool full = envFlag("TALUS_FULL");
    env.instrPerApp = static_cast<uint64_t>(
        envInt("TALUS_INSTR", full ? 50'000'000 : 4'000'000));
    env.mixes =
        static_cast<uint32_t>(envInt("TALUS_MIXES", full ? 100 : 24));
    env.measureAccesses = static_cast<uint64_t>(
        envInt("TALUS_ACCESSES", full ? 4'000'000 : 400'000));
    env.seed = static_cast<uint64_t>(envInt("TALUS_SEED", 20150207));
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0)
            env.csv = true;
    }
    return env;
}

std::vector<uint64_t>
sizeGridLines(const Scale& scale, double max_mb, double step_mb)
{
    talus_assert(max_mb > 0 && step_mb > 0, "bad size grid");
    std::vector<uint64_t> sizes;
    for (double mb = step_mb; mb <= max_mb * (1 + 1e-9); mb += step_mb)
        sizes.push_back(scale.lines(mb));
    // Guard against rounding-induced duplicates at coarse scales.
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

MissCurve
toMpki(const MissCurve& ratio_curve, double apki)
{
    talus_assert(apki > 0, "APKI must be > 0");
    return ratio_curve.scaled(1.0, apki);
}

std::vector<std::vector<std::string>>
sampleMixes(uint32_t num_mixes, uint32_t apps_per_mix, uint64_t seed)
{
    const std::vector<std::string> pool = memIntensiveAppNames();
    talus_assert(apps_per_mix >= 1, "mixes need at least one app");

    Rng rng(seed);
    std::vector<std::vector<std::string>> mixes;
    mixes.reserve(num_mixes);
    for (uint32_t m = 0; m < num_mixes; ++m) {
        // Sample without replacement when possible (Fisher-Yates
        // prefix); fall back to replacement if the mix is larger than
        // the pool.
        std::vector<std::string> mix;
        if (apps_per_mix <= pool.size()) {
            std::vector<std::string> shuffled = pool;
            for (size_t i = 0; i < apps_per_mix; ++i) {
                const size_t j =
                    i + rng.below(shuffled.size() - i);
                std::swap(shuffled[i], shuffled[j]);
                mix.push_back(shuffled[i]);
            }
        } else {
            for (uint32_t i = 0; i < apps_per_mix; ++i)
                mix.push_back(pool[rng.below(pool.size())]);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace talus
