#include "sim/experiment_util.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <string>

#include "obs/exporters.h"
#include "obs/registry.h"
#include "shard/sharded_cache.h"
#include "trace/trace_file.h"
#include "util/env.h"
#include "util/log.h"
#include "util/rng.h"
#include "workload/spec_suite.h"

namespace talus {

namespace {

/**
 * If @p arg is "--<name>=<value>", parses the value into @p out and
 * returns true. A malformed value is a usage error: exits 1.
 */
bool
matchValueFlag(const char* binary, const std::string& arg,
               const char* name, std::optional<uint64_t>* out)
{
    const std::string prefix = std::string("--") + name + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    const std::string value = arg.substr(prefix.size());
    // strtoull alone would accept (and wrap) negative values; demand
    // pure digits so "-5" is an error, not 2^64-5.
    errno = 0;
    char* end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos ||
        end == nullptr || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr,
                     "%s: flag %s needs an unsigned integer, got "
                     "'%s'\n\n%s",
                     binary, (std::string("--") + name).c_str(),
                     value.c_str(), BenchEnv::usage());
        std::exit(1);
    }
    *out = static_cast<uint64_t>(parsed);
    return true;
}

// Where the process-exit metrics dump goes. File-static (not a
// BenchEnv member) because std::atexit handlers take no arguments;
// init() sets it and registers dumpMetricsAtExit() exactly once.
std::string&
metricsDumpPath()
{
    static std::string path;
    return path;
}

void
dumpMetricsAtExit()
{
    const std::string err = writeMetricsFile(
        globalMetricRegistry().snapshot(), metricsDumpPath());
    if (!err.empty())
        std::fprintf(stderr, "--metrics/TALUS_METRICS dump failed: %s\n",
                     err.c_str());
}

} // namespace

const char*
BenchEnv::usage()
{
    return
        "usage: <bench> [--csv] [--full] [--scale=N] [--instr=N]\n"
        "               [--mixes=N] [--accesses=N] [--seed=N]\n"
        "               [--shards=N] [--threads=N] [--reconfig=N]\n"
        "               [--pipeline=0|1] [--monitor-sample=N]\n"
        "               [--trace=PATH] [--metrics=PATH]\n"
        "\n"
        "  --csv         emit CSV instead of aligned tables\n"
        "  --full        paper-true scale and run lengths (slow);\n"
        "                same as TALUS_FULL=1\n"
        "  --scale=N     cache lines per paper-MB (default 1024;\n"
        "                TALUS_SCALE)\n"
        "  --instr=N     fixed work per app in instructions\n"
        "                (TALUS_INSTR)\n"
        "  --mixes=N     random mixes for the multiprogram figures\n"
        "                (TALUS_MIXES)\n"
        "  --accesses=N  measured accesses per sweep point\n"
        "                (TALUS_ACCESSES)\n"
        "  --seed=N      global seed (TALUS_SEED)\n"
        "  --shards=N    shard count for sharded benches\n"
        "                (TALUS_SHARDS; 0 = bench default)\n"
        "  --threads=N   worker threads for sharded benches\n"
        "                (TALUS_THREADS; 0 = inline)\n"
        "  --reconfig=N  accesses between control-plane\n"
        "                reconfigurations (TALUS_RECONFIG;\n"
        "                0 = bench default)\n"
        "  --pipeline=0|1  double-buffered pipelined batch dispatch\n"
        "                in the sharded engine (TALUS_PIPELINE;\n"
        "                default 1 = on, 0 = serial dispatch for\n"
        "                A/B comparison)\n"
        "  --monitor-sample=N  monitor every Nth access\n"
        "                (TALUS_MONITOR_SAMPLE; default 1 =\n"
        "                every access, the exact-curve setting;\n"
        "                serving binaries default to 8 instead —\n"
        "                pass --monitor-sample=1 there for exact\n"
        "                curves)\n"
        "  --trace=PATH  replay the trace file at PATH (binary or\n"
        "                CSV; see tools/trace_convert) instead of a\n"
        "                synthetic workload (TALUS_TRACE)\n"
        "  --metrics=PATH  dump a metrics-registry snapshot to PATH\n"
        "                at exit (TALUS_METRICS): Prometheus text\n"
        "                format, or JSON lines for .json/.jsonl\n"
        "                paths; also enables cache metrics in\n"
        "                binaries that honor metricsWanted()\n"
        "  --help, -h    this text\n"
        "\n"
        "Environment variables provide the same knobs; flags win.\n";
}

BenchEnv
BenchEnv::init(int argc, char** argv)
{
    const char* binary = argc > 0 ? argv[0] : "bench";
    BenchEnv env;
    bool full = envFlag("TALUS_FULL");
    std::optional<uint64_t> scale_f, instr_f, mixes_f, accesses_f,
        seed_f, shards_f, threads_f, reconfig_f, pipeline_f,
        monitor_sample_f;
    std::optional<std::string> trace_f, metrics_f;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", usage());
            std::exit(0);
        } else if (arg == "--csv") {
            env.csv = true;
        } else if (arg == "--full") {
            full = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_f = arg.substr(std::string("--trace=").size());
            if (trace_f->empty()) {
                std::fprintf(stderr,
                             "%s: flag --trace needs a file path\n\n%s",
                             binary, usage());
                std::exit(1);
            }
        } else if (arg.rfind("--metrics=", 0) == 0) {
            metrics_f = arg.substr(std::string("--metrics=").size());
            if (metrics_f->empty()) {
                std::fprintf(stderr,
                             "%s: flag --metrics needs a file path\n\n"
                             "%s",
                             binary, usage());
                std::exit(1);
            }
        } else if (matchValueFlag(binary, arg, "scale", &scale_f) ||
                   matchValueFlag(binary, arg, "instr", &instr_f) ||
                   matchValueFlag(binary, arg, "mixes", &mixes_f) ||
                   matchValueFlag(binary, arg, "accesses",
                                  &accesses_f) ||
                   matchValueFlag(binary, arg, "seed", &seed_f) ||
                   matchValueFlag(binary, arg, "shards", &shards_f) ||
                   matchValueFlag(binary, arg, "threads",
                                  &threads_f) ||
                   matchValueFlag(binary, arg, "reconfig",
                                  &reconfig_f) ||
                   matchValueFlag(binary, arg, "pipeline",
                                  &pipeline_f) ||
                   matchValueFlag(binary, arg, "monitor-sample",
                                  &monitor_sample_f)) {
            // Parsed into its optional above.
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "%s: unrecognized flag '%s'\n\n%s",
                         binary, arg.c_str(), usage());
            std::exit(1);
        }
        // Non-flag positional arguments are the binary's business.
    }

    if (scale_f.has_value()) {
        if (*scale_f < 1) {
            std::fprintf(stderr, "%s: --scale must be >= 1\n\n%s",
                         binary, usage());
            std::exit(1);
        }
        env.scale = Scale(*scale_f);
    } else {
        env.scale = full ? Scale(Scale::kFullLinesPerMb)
                         : Scale::fromEnv();
    }
    env.instrPerApp = instr_f.value_or(static_cast<uint64_t>(
        envInt("TALUS_INSTR", full ? 50'000'000 : 4'000'000)));
    if (mixes_f.has_value() &&
        *mixes_f > std::numeric_limits<uint32_t>::max()) {
        std::fprintf(stderr, "%s: --mixes must fit 32 bits\n\n%s",
                     binary, usage());
        std::exit(1);
    }
    env.mixes = static_cast<uint32_t>(mixes_f.value_or(
        static_cast<uint64_t>(envInt("TALUS_MIXES", full ? 100 : 24))));
    env.measureAccesses = accesses_f.value_or(static_cast<uint64_t>(
        envInt("TALUS_ACCESSES", full ? 4'000'000 : 400'000)));
    env.seed = seed_f.value_or(
        static_cast<uint64_t>(envInt("TALUS_SEED", 20150207)));
    // Shard-layer and control-plane knobs are range-checked — from
    // the flag OR the env var — here, so they fail as usage errors,
    // not as cache ConfigErrors (or integer wraparounds) later.
    // Flags win; a negative env value must not wrap to a huge count.
    const auto rangedKnob = [&](const std::optional<uint64_t>& flag,
                                const char* env_name, uint64_t max,
                                const char* range_msg) -> uint64_t {
        uint64_t value;
        if (flag.has_value()) {
            value = *flag;
        } else {
            const int64_t raw = envInt(env_name, 0);
            if (raw < 0) {
                std::fprintf(stderr, "%s: %s must be >= 0\n\n%s",
                             binary, env_name, usage());
                std::exit(1);
            }
            value = static_cast<uint64_t>(raw);
        }
        if (value > max) {
            std::fprintf(stderr, "%s: %s\n\n%s", binary, range_msg,
                         usage());
            std::exit(1);
        }
        return value;
    };
    // The shard knobs share the 32-bit ranges of their consumers
    // (ShardedTalusCache::Config).
    env.shards = static_cast<uint32_t>(
        rangedKnob(shards_f, "TALUS_SHARDS",
                   ShardedTalusCache::kMaxShards,
                   "--shards/TALUS_SHARDS must be <= 1024"));
    env.threads = static_cast<uint32_t>(
        rangedKnob(threads_f, "TALUS_THREADS",
                   ShardedTalusCache::kMaxShards,
                   "--threads/TALUS_THREADS must be <= 1024"));
    // The control-plane frequency knob is a full-width access count
    // with no upper bound.
    env.reconfig =
        rangedKnob(reconfig_f, "TALUS_RECONFIG",
                   std::numeric_limits<uint64_t>::max(), "unreachable");
    // The pipeline knob is boolean but validated like the shard
    // knobs — from the flag OR the env var, flags winning — and
    // anything other than 0 or 1 is a usage error (a typo like
    // --pipeline=10 must not silently toggle anything). Its default
    // is 1: pipelined dispatch is the production configuration, 0 is
    // the serial-dispatch A/B reference.
    {
        uint64_t value;
        if (pipeline_f.has_value()) {
            value = *pipeline_f;
        } else {
            const int64_t raw = envInt("TALUS_PIPELINE", 1);
            if (raw < 0) {
                std::fprintf(stderr,
                             "%s: TALUS_PIPELINE must be 0 or 1\n\n%s",
                             binary, usage());
                std::exit(1);
            }
            value = static_cast<uint64_t>(raw);
        }
        if (value > 1) {
            std::fprintf(stderr,
                         "%s: --pipeline/TALUS_PIPELINE must be 0 or "
                         "1\n\n%s",
                         binary, usage());
            std::exit(1);
        }
        env.pipeline = value != 0;
    }
    // The sampling period is validated like the shard knobs, but its
    // floor is 1, not 0: period 0 is meaningless (Config::validate
    // would also reject it, but catching it here makes it a usage
    // error with the flag name, not a ConfigError mid-construction).
    {
        uint64_t value;
        if (monitor_sample_f.has_value()) {
            value = *monitor_sample_f;
        } else {
            const int64_t raw = envInt("TALUS_MONITOR_SAMPLE", 1);
            if (raw < 1) {
                std::fprintf(stderr,
                             "%s: TALUS_MONITOR_SAMPLE must be >= 1\n"
                             "\n%s",
                             binary, usage());
                std::exit(1);
            }
            value = static_cast<uint64_t>(raw);
        }
        if (value < 1 ||
            value > std::numeric_limits<uint32_t>::max()) {
            std::fprintf(stderr,
                         "%s: --monitor-sample/TALUS_MONITOR_SAMPLE "
                         "must be in [1, 2^32-1]\n\n%s",
                         binary, usage());
            std::exit(1);
        }
        env.monitorSample = static_cast<uint32_t>(value);
        // Record explicitness so serving binaries (default period 8
        // via monitorSampleOr()) can still honor an explicit
        // --monitor-sample=1 opt-out back to exact curves.
        env.monitorSampleSet =
            monitor_sample_f.has_value() ||
            std::getenv("TALUS_MONITOR_SAMPLE") != nullptr;
    }
    // The trace knob is validated like the shard knobs — from the
    // flag OR the env var — so a missing or corrupt trace file is a
    // usage error here, not a mid-run fatal after minutes of warmup.
    {
        const char* env_trace = std::getenv("TALUS_TRACE");
        env.tracePath = trace_f.has_value()
                            ? *trace_f
                            : (env_trace != nullptr ? env_trace : "");
        if (!env.tracePath.empty()) {
            const std::string error = validateTraceFile(env.tracePath);
            if (!error.empty()) {
                std::fprintf(stderr, "%s: --trace/TALUS_TRACE: %s\n\n%s",
                             binary, error.c_str(), usage());
                std::exit(1);
            }
        }
    }
    // The metrics knob is validated eagerly too: an unwritable dump
    // path fails as a usage error before the run, not after the
    // measurement has been paid for. A successful check also installs
    // the process-exit dump hook (once), so every binary that calls
    // init() exports its global-registry snapshot with no further
    // wiring.
    {
        const char* env_metrics = std::getenv("TALUS_METRICS");
        env.metricsPath =
            metrics_f.has_value()
                ? *metrics_f
                : (env_metrics != nullptr ? env_metrics : "");
        if (!env.metricsPath.empty()) {
            std::FILE* f = std::fopen(env.metricsPath.c_str(), "ab");
            if (f == nullptr) {
                std::fprintf(stderr,
                             "%s: --metrics/TALUS_METRICS: cannot open "
                             "'%s' for writing: %s\n\n%s",
                             binary, env.metricsPath.c_str(),
                             std::strerror(errno), usage());
                std::exit(1);
            }
            std::fclose(f);
            const bool first = metricsDumpPath().empty();
            metricsDumpPath() = env.metricsPath;
            if (first) {
                // Exit-time teardown runs in reverse registration
                // order, so the registry singleton must be
                // constructed (registering its destructor) BEFORE
                // the dump handler: destroyed after the dump reads
                // it, not before.
                (void)globalMetricRegistry();
                std::atexit(dumpMetricsAtExit);
            }
        }
    }
    return env;
}

std::vector<uint64_t>
sizeGridLines(const Scale& scale, double max_mb, double step_mb)
{
    talus_assert(max_mb > 0 && step_mb > 0, "bad size grid");
    std::vector<uint64_t> sizes;
    for (double mb = step_mb; mb <= max_mb * (1 + 1e-9); mb += step_mb)
        sizes.push_back(scale.lines(mb));
    // Guard against rounding-induced duplicates at coarse scales.
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    return sizes;
}

MissCurve
toMpki(const MissCurve& ratio_curve, double apki)
{
    talus_assert(apki > 0, "APKI must be > 0");
    return ratio_curve.scaled(1.0, apki);
}

std::vector<std::vector<std::string>>
sampleMixes(uint32_t num_mixes, uint32_t apps_per_mix, uint64_t seed)
{
    const std::vector<std::string> pool = memIntensiveAppNames();
    talus_assert(apps_per_mix >= 1, "mixes need at least one app");

    Rng rng(seed);
    std::vector<std::vector<std::string>> mixes;
    mixes.reserve(num_mixes);
    for (uint32_t m = 0; m < num_mixes; ++m) {
        // Sample without replacement when possible (Fisher-Yates
        // prefix); fall back to replacement if the mix is larger than
        // the pool.
        std::vector<std::string> mix;
        if (apps_per_mix <= pool.size()) {
            std::vector<std::string> shuffled = pool;
            for (size_t i = 0; i < apps_per_mix; ++i) {
                const size_t j =
                    i + rng.below(shuffled.size() - i);
                std::swap(shuffled[i], shuffled[j]);
                mix.push_back(shuffled[i]);
            }
        } else {
            for (uint32_t i = 0; i < apps_per_mix; ++i)
                mix.push_back(pool[rng.below(pool.size())]);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

} // namespace talus
