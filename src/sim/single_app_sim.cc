#include "sim/single_app_sim.h"

#include <algorithm>
#include <vector>

#include "api/talus_cache.h"
#include "monitor/mattson_curve.h"
#include "policy/policy_factory.h"
#include "util/log.h"

namespace talus {

namespace {

uint64_t
autoWarmup(uint64_t size_lines, uint64_t configured)
{
    if (configured > 0)
        return configured;
    return 2 * size_lines + 65536;
}

/** Addresses generated per block in the replay loops. */
constexpr uint64_t kReplayBlock = 4096;

/**
 * Runs warmup + measurement through a block functor
 * (const Addr*, uint64_t count): addresses are generated a block at a
 * time (one virtual nextBlock per block instead of one next() per
 * access) and handed to the cache in a tight loop.
 */
template <typename BatchFn>
double
measureMissRatio(AccessStream& stream, uint64_t warmup, uint64_t measure,
                 BatchFn&& do_batch, CacheStats& stats)
{
    stream.reset();
    std::vector<Addr> block(kReplayBlock);
    for (uint64_t left = warmup; left > 0;) {
        const uint64_t n = std::min<uint64_t>(kReplayBlock, left);
        stream.nextBlock(block.data(), n);
        do_batch(block.data(), n);
        left -= n;
    }
    stats.reset();
    for (uint64_t left = measure; left > 0;) {
        const uint64_t n = std::min<uint64_t>(kReplayBlock, left);
        stream.nextBlock(block.data(), n);
        do_batch(block.data(), n);
        left -= n;
    }
    const uint64_t accesses = stats.totalAccesses();
    talus_assert(accesses > 0, "no accesses measured");
    return static_cast<double>(stats.totalMisses()) /
           static_cast<double>(accesses);
}

} // namespace

MissCurve
sweepPolicyCurve(AccessStream& stream, const std::vector<uint64_t>& sizes,
                 const SweepOptions& opts)
{
    talus_assert(!sizes.empty(), "sweep needs sizes");
    std::vector<CurvePoint> pts;
    pts.push_back({0.0, 1.0});

    for (uint64_t size : sizes) {
        talus_assert(size >= 1, "sweep size must be >= 1 line");
        const uint32_t ways =
            static_cast<uint32_t>(std::min<uint64_t>(opts.ways, size));
        SetAssocCache::Config cfg;
        cfg.numWays = ways;
        cfg.numSets = static_cast<uint32_t>(std::max<uint64_t>(
            1, size / ways));
        cfg.hashSeed = opts.seed ^ 0x11;
        SetAssocCache cache(cfg, makePolicy(opts.policyName, opts.seed));

        const double ratio = measureMissRatio(
            stream, autoWarmup(size, opts.warmupAccesses),
            opts.measureAccesses,
            [&](const Addr* addrs, uint64_t n) {
                for (uint64_t i = 0; i < n; ++i)
                    cache.access(addrs[i], 0);
            },
            cache.stats());
        pts.push_back({static_cast<double>(cfg.numSets) * ways, ratio});
    }
    return MissCurve(std::move(pts));
}

MissCurve
sweepTalusCurve(AccessStream& stream, const MissCurve& input_curve,
                const std::vector<uint64_t>& sizes,
                const TalusSweepOptions& opts)
{
    talus_assert(!sizes.empty(), "sweep needs sizes");
    std::vector<CurvePoint> pts;
    pts.push_back({0.0, input_curve.at(0.0)});

    for (uint64_t size : sizes) {
        talus_assert(size >= 1, "sweep size must be >= 1 line");

        // One fresh single-partition facade per size; the curve is
        // supplied by the caller, so no allocator/monitor loop runs.
        TalusCache::Config cc;
        cc.llcLines = size;
        cc.ways =
            static_cast<uint32_t>(std::min<uint64_t>(opts.ways, size));
        cc.policyName = opts.policyName;
        cc.scheme = opts.scheme;
        cc.numParts = 1;
        cc.margin = opts.margin;
        cc.routerBits = opts.routerBits;
        cc.allocatorName = "";
        cc.monitoring = false; // The curve is measured by the caller.
        cc.seed = opts.seed;
        cc.routerSeed = opts.seed ^ 0x7;

        std::unique_ptr<TalusCache> talus_cache;
        try {
            talus_cache = std::make_unique<TalusCache>(cc);
        } catch (const ConfigError& e) {
            talus_fatal(e.what());
        }

        // The cache rounds capacity down to whole sets; allocate what
        // actually exists.
        talus_cache->applyCurves({input_curve},
                                 {talus_cache->capacityLines()});

        const double ratio = measureMissRatio(
            stream, autoWarmup(size, opts.warmupAccesses),
            opts.measureAccesses,
            [&](const Addr* addrs, uint64_t n) {
                talus_cache->accessBatch(Span<const Addr>(addrs, n), 0);
            },
            talus_cache->cache().stats());
        pts.push_back({static_cast<double>(size), ratio});
    }
    return MissCurve(std::move(pts));
}

MissCurve
measureLruCurve(AccessStream& stream, uint64_t accesses, uint64_t max_lines,
                uint64_t step)
{
    talus_assert(accesses > 0, "need accesses to measure");
    MattsonCurve mattson(max_lines);
    stream.reset();
    std::vector<Addr> block(kReplayBlock);
    for (uint64_t left = accesses; left > 0;) {
        const uint64_t n = std::min<uint64_t>(kReplayBlock, left);
        stream.nextBlock(block.data(), n);
        for (uint64_t i = 0; i < n; ++i)
            mattson.access(block[i]);
        left -= n;
    }
    return mattson.curve(step);
}

} // namespace talus
