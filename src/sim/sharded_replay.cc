#include "sim/sharded_replay.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/log.h"

namespace talus {

ShardedReplayResult
runShardedReplay(ShardedTalusCache& cache, AccessStream& stream,
                 const ShardedReplayOptions& opts)
{
    talus_assert(opts.blockSize >= 1, "blockSize must be >= 1");
    std::vector<Addr> block(
        std::min<uint64_t>(opts.blockSize, opts.accesses));

    ShardedReplayResult result;
    const auto start = std::chrono::steady_clock::now();
    uint64_t left = opts.accesses;
    while (left > 0) {
        const uint64_t n = std::min<uint64_t>(opts.blockSize, left);
        stream.nextBlock(block.data(), n);
        result.hits +=
            cache.accessBatch(Span<const Addr>(block.data(), n),
                              opts.part);
        left -= n;
    }
    const auto end = std::chrono::steady_clock::now();
    result.accesses = opts.accesses;
    result.seconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace talus
