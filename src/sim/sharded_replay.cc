#include "sim/sharded_replay.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "util/log.h"

namespace talus {

ShardedReplayResult
runShardedReplay(ShardedTalusCache& cache, AccessStream& stream,
                 const ShardedReplayOptions& opts)
{
    talus_assert(opts.blockSize >= 1, "blockSize must be >= 1");
    std::vector<Addr> block(
        std::min<uint64_t>(opts.blockSize, opts.accesses));

    ShardedReplayResult result;
    const auto start = std::chrono::steady_clock::now();
    uint64_t left = opts.accesses;
    uint64_t blocks = 0;
    while (left > 0) {
        const uint64_t n = std::min<uint64_t>(opts.blockSize, left);
        stream.nextBlock(block.data(), n);
        result.hits +=
            cache.accessBatch(Span<const Addr>(block.data(), n),
                              opts.part);
        left -= n;
        blocks++;
        // Explicit control-plane sweeps run between blocks — the
        // serving shape: compute concurrently across shards, apply
        // either now or at each shard's next epoch boundary.
        if (opts.reconfigEveryBlocks > 0 &&
            blocks % opts.reconfigEveryBlocks == 0) {
            if (opts.applyEpochLen > 0)
                cache.reconfigureAllAtEpoch(opts.applyEpochLen);
            else
                cache.reconfigureAll();
        }
    }
    const auto end = std::chrono::steady_clock::now();
    result.accesses = opts.accesses;
    result.seconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

} // namespace talus
