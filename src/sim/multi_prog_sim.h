/**
 * @file
 * Multiprogrammed simulation with the paper's fixed-work methodology
 * (Sec. VII-A) and runtime reconfiguration loop (Fig. 7).
 *
 * N apps share one LLC, modeled by the TalusCache facade (api/): the
 * facade owns the per-app UMONs, the TalusController (or the plain
 * partitioning scheme), and the allocator. Apps advance
 * access-by-access in cycle order under the analytic core model, so
 * faster apps touch the cache more often — capturing contention and
 * the "vicious cycle" unfairness of Sec. VII-D. Every reconfiguration
 * interval (in modeled cycles, so the engine fires it rather than the
 * facade's access-count trigger) the facade reads each app's UMON
 * curve, (for Talus) computes convex hulls, runs the configured
 * allocator, and applies the result.
 *
 * Fixed work: every app runs until all have retired `instrPerApp`
 * instructions; per-app IPC/MPKI count only each app's first
 * `instrPerApp` instructions, but finished apps keep running so
 * contention persists.
 */

#ifndef TALUS_SIM_MULTI_PROG_SIM_H
#define TALUS_SIM_MULTI_PROG_SIM_H

#include <string>
#include <vector>

#include "partition/partitioned_cache.h"
#include "sim/core_model.h"
#include "sim/scale.h"
#include "workload/app_spec.h"

namespace talus {

/** Configuration of one multiprogrammed run. */
struct MultiProgConfig
{
    uint64_t llcLines = 8192;       //!< Shared LLC capacity.
    uint32_t ways = 32;             //!< LLC associativity (Table I).
    std::string policyName = "LRU"; //!< Replacement policy.
    SchemeKind scheme = SchemeKind::Vantage; //!< Partitioning scheme.
    bool useTalus = false;          //!< Talus shadow partitions on/off.
    std::string allocatorName = "HillClimb"; //!< "" = no reconfiguration.
    bool allocateOnHulls = false;   //!< Pre-process curves to hulls.
    uint64_t instrPerApp = 4'000'000; //!< Fixed work per app.
    double reconfigCycles = 2'000'000; //!< Reconfiguration interval.
    double margin = 0.05;           //!< Talus safety margin.
    uint32_t routerBits = 8;        //!< Talus sampling width.
    uint32_t umonCoverage = 4;      //!< Monitor coverage multiple.
    uint32_t monitorSamplePeriod = 1; //!< Feed the monitors every Nth
                                      //!< access (1 = every access).
    uint64_t seed = 42;
    CoreModelParams coreParams;
};

/** Per-app outcome of a run. */
struct AppRunResult
{
    std::string name;   //!< App name.
    double ipc;         //!< Over the app's fixed work.
    double cycles;      //!< Cycles to finish the fixed work.
    double mpki;        //!< Misses per kilo-instruction (fixed work).
    double missRatio;   //!< Misses / accesses (fixed work).
};

/** Outcome of one multiprogrammed run. */
struct MultiProgResult
{
    std::vector<AppRunResult> apps;
    uint64_t reconfigurations = 0;

    /** Per-app IPC vector, for the metrics helpers. */
    std::vector<double> ipcVector() const;
};

/**
 * Runs one multiprogrammed experiment.
 *
 * @param apps The co-scheduled applications (size = core count).
 * @param cfg Run configuration.
 * @param scale Paper-MB scaling for the apps' working sets.
 */
MultiProgResult runMultiProg(const std::vector<const AppSpec*>& apps,
                             const MultiProgConfig& cfg, const Scale& scale);

} // namespace talus

#endif // TALUS_SIM_MULTI_PROG_SIM_H
