#include "sim/multi_prog_sim.h"

#include <algorithm>
#include <limits>

#include "alloc/allocator_factory.h"
#include "alloc/fair_alloc.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "util/log.h"

namespace talus {

std::vector<double>
MultiProgResult::ipcVector() const
{
    std::vector<double> v;
    v.reserve(apps.size());
    for (const AppRunResult& a : apps)
        v.push_back(a.ipc);
    return v;
}

namespace {

/** Per-app dynamic state during a run. */
struct AppState
{
    std::unique_ptr<AccessStream> stream;
    CoreModel model;
    double cycles = 0;
    double instr = 0;
    uint64_t intervalAccesses = 0;
    uint64_t measuredAccesses = 0;
    uint64_t measuredMisses = 0;
    bool done = false;
    double doneCycles = 0;
};

} // namespace

MultiProgResult
runMultiProg(const std::vector<const AppSpec*>& apps,
             const MultiProgConfig& cfg, const Scale& scale)
{
    const uint32_t n = static_cast<uint32_t>(apps.size());
    talus_assert(n >= 1, "need at least one app");
    talus_assert(cfg.instrPerApp > 0, "fixed work must be > 0");

    // --- Build per-app state (streams, core models, monitors). ---
    std::vector<AppState> state;
    state.reserve(n);
    std::vector<CombinedUMon> monitors;
    monitors.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        state.push_back(AppState{
            apps[i]->buildStream(scale.linesPerMb(), i + 1,
                                 cfg.seed + 131 * i),
            CoreModel(*apps[i], cfg.coreParams)});

        CombinedUMon::Config mc;
        mc.llcLines = cfg.llcLines;
        mc.coverage = cfg.umonCoverage;
        mc.seed = cfg.seed ^ (0x1111ull * (i + 1));
        monitors.emplace_back(mc);
    }

    // --- Build the cache stack. ---
    std::unique_ptr<TalusController> talus_ctl;
    std::unique_ptr<PartitionedCacheBase> plain;
    if (cfg.useTalus) {
        auto phys = makePartitionedCache(cfg.scheme, cfg.llcLines, cfg.ways,
                                         cfg.policyName, 2 * n, cfg.seed);
        TalusController::Config tc;
        tc.numLogicalParts = n;
        tc.margin = cfg.margin;
        tc.routerBits = cfg.routerBits;
        tc.usableFraction = schemeUsableFraction(cfg.scheme);
        tc.recomputeFromCoarsened = cfg.scheme == SchemeKind::Way ||
                                    cfg.scheme == SchemeKind::Set;
        tc.seed = cfg.seed ^ 0xC11;
        talus_ctl =
            std::make_unique<TalusController>(std::move(phys), tc);

        // Start from a fair split; single-point curves make every
        // logical partition degenerate (rho = 1) until monitors warm.
        std::vector<MissCurve> flat(n, MissCurve({{0.0, 1.0}}));
        FairAllocator fair;
        talus_ctl->configure(
            flat, fair.allocate(flat, cfg.llcLines, 1));
    } else {
        plain = makePartitionedCache(cfg.scheme, cfg.llcLines, cfg.ways,
                                     cfg.policyName, n, cfg.seed);
    }

    std::unique_ptr<Allocator> allocator;
    if (!cfg.allocatorName.empty())
        allocator = makeAllocator(cfg.allocatorName);

    const uint64_t granule = std::max<uint64_t>(1, cfg.llcLines / 64);
    const double instr_target = static_cast<double>(cfg.instrPerApp);

    MultiProgResult result;
    result.apps.resize(n);
    uint32_t remaining = n;
    double next_reconfig = cfg.reconfigCycles;

    // --- Main interleaved loop: always advance the app that is ---
    // --- earliest in (modeled) time.                            ---
    while (remaining > 0) {
        uint32_t a = 0;
        double min_cycles = std::numeric_limits<double>::infinity();
        for (uint32_t i = 0; i < n; ++i) {
            if (state[i].cycles < min_cycles) {
                min_cycles = state[i].cycles;
                a = i;
            }
        }

        AppState& s = state[a];
        const Addr addr = s.stream->next();
        monitors[a].access(addr);
        const bool hit = cfg.useTalus ? talus_ctl->access(addr, a)
                                      : plain->access(addr, a);
        s.cycles += s.model.cyclesPerAccess(hit);
        s.instr += s.model.instrPerAccess();
        s.intervalAccesses++;

        if (!s.done) {
            s.measuredAccesses++;
            if (!hit)
                s.measuredMisses++;
            if (s.instr >= instr_target) {
                s.done = true;
                s.doneCycles = s.cycles;
                remaining--;
            }
        }

        // --- Periodic reconfiguration (Fig. 7 software flow). ---
        if (allocator != nullptr && min_cycles >= next_reconfig) {
            next_reconfig += cfg.reconfigCycles;
            result.reconfigurations++;

            std::vector<MissCurve> curves;
            std::vector<MissCurve> alloc_curves;
            curves.reserve(n);
            alloc_curves.reserve(n);
            for (uint32_t i = 0; i < n; ++i) {
                MissCurve c = monitors[i].curve();
                // Weight each app's curve by its interval access
                // volume so the allocator compares misses, not ratios.
                alloc_curves.push_back(c.scaled(
                    1.0,
                    static_cast<double>(state[i].intervalAccesses) + 1.0));
                curves.push_back(std::move(c));
                state[i].intervalAccesses = 0;
            }

            // Pre-processing: Talus promises the convex hulls.
            if (cfg.allocateOnHulls)
                alloc_curves = TalusController::convexHulls(alloc_curves);

            const uint64_t usable =
                (!cfg.useTalus && cfg.scheme == SchemeKind::Vantage)
                    ? cfg.llcLines * 9 / 10
                    : cfg.llcLines;
            const std::vector<uint64_t> alloc =
                allocator->allocate(alloc_curves, usable, granule);

            if (cfg.useTalus) {
                talus_ctl->configure(curves, alloc);
            } else if (cfg.scheme != SchemeKind::Unpartitioned) {
                plain->setTargets(alloc);
            }

            for (auto& mon : monitors)
                mon.decay();
            if (cfg.useTalus)
                talus_ctl->nextInterval();
            else
                plain->nextInterval();
        }
    }

    // --- Collect per-app results over their fixed work. ---
    for (uint32_t i = 0; i < n; ++i) {
        AppRunResult& r = result.apps[i];
        const AppState& s = state[i];
        r.name = apps[i]->name;
        r.cycles = s.doneCycles;
        r.ipc = instr_target / s.doneCycles;
        r.missRatio = s.measuredAccesses > 0
                          ? static_cast<double>(s.measuredMisses) /
                                static_cast<double>(s.measuredAccesses)
                          : 0.0;
        r.mpki = static_cast<double>(s.measuredMisses) /
                 (instr_target / 1000.0);
    }
    return result;
}

} // namespace talus
