#include "sim/multi_prog_sim.h"

#include <array>
#include <limits>
#include <memory>

#include "api/talus_cache.h"
#include "util/log.h"

namespace talus {

std::vector<double>
MultiProgResult::ipcVector() const
{
    std::vector<double> v;
    v.reserve(apps.size());
    for (const AppRunResult& a : apps)
        v.push_back(a.ipc);
    return v;
}

namespace {

/** Addresses pre-generated per app between refills. */
constexpr uint64_t kAddrBuf = 256;

/** Per-app dynamic state during a run. */
struct AppState
{
    std::unique_ptr<AccessStream> stream;
    CoreModel model;
    double cycles = 0;
    double instr = 0;
    uint64_t measuredAccesses = 0;
    uint64_t measuredMisses = 0;
    bool done = false;
    double doneCycles = 0;

    // Address buffer: the interleaved loop consumes one address per
    // turn in cycle order, but generates them a block at a time so
    // the virtual stream dispatch is paid once per kAddrBuf accesses.
    std::array<Addr, kAddrBuf> buf{};
    uint64_t bufPos = kAddrBuf;

    Addr nextAddr()
    {
        if (bufPos == kAddrBuf) {
            stream->nextBlock(buf.data(), kAddrBuf);
            bufPos = 0;
        }
        return buf[bufPos++];
    }
};

/** Maps a MultiProgConfig onto the facade's configuration. */
TalusCache::Config
facadeConfig(const MultiProgConfig& cfg, uint32_t n)
{
    TalusCache::Config cc;
    cc.llcLines = cfg.llcLines;
    cc.ways = cfg.ways;
    cc.policyName = cfg.policyName;
    cc.scheme = cfg.scheme;
    cc.numParts = n;
    cc.talus = cfg.useTalus;
    cc.margin = cfg.margin;
    cc.routerBits = cfg.routerBits;
    cc.umonCoverage = cfg.umonCoverage;
    cc.monitorSamplePeriod = cfg.monitorSamplePeriod;
    cc.allocatorName = cfg.allocatorName;
    cc.allocateOnHulls = cfg.allocateOnHulls;
    // Reconfiguration is driven by modeled cycles below, not by the
    // facade's access-count interval.
    cc.reconfigInterval = 0;
    cc.seed = cfg.seed;
    return cc;
}

} // namespace

MultiProgResult
runMultiProg(const std::vector<const AppSpec*>& apps,
             const MultiProgConfig& cfg, const Scale& scale)
{
    const uint32_t n = static_cast<uint32_t>(apps.size());
    talus_assert(n >= 1, "need at least one app");
    talus_assert(cfg.instrPerApp > 0, "fixed work must be > 0");

    // --- Build per-app state (streams, core models). ---
    std::vector<AppState> state;
    state.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        state.push_back(AppState{
            apps[i]->buildStream(scale.linesPerMb(), i + 1,
                                 cfg.seed + 131 * i),
            CoreModel(*apps[i], cfg.coreParams)});
    }

    // --- The shared LLC: the facade owns monitors, the Talus ---
    // --- controller (or the plain scheme), and the allocator. ---
    std::unique_ptr<TalusCache> llc;
    try {
        llc = std::make_unique<TalusCache>(facadeConfig(cfg, n));
    } catch (const ConfigError& e) {
        talus_fatal(e.what());
    }

    const double instr_target = static_cast<double>(cfg.instrPerApp);

    MultiProgResult result;
    result.apps.resize(n);
    uint32_t remaining = n;
    double next_reconfig = cfg.reconfigCycles;

    // --- Main interleaved loop: always advance the app that is ---
    // --- earliest in (modeled) time.                            ---
    while (remaining > 0) {
        uint32_t a = 0;
        double min_cycles = std::numeric_limits<double>::infinity();
        for (uint32_t i = 0; i < n; ++i) {
            if (state[i].cycles < min_cycles) {
                min_cycles = state[i].cycles;
                a = i;
            }
        }

        AppState& s = state[a];
        const bool hit = llc->access(s.nextAddr(), a);
        s.cycles += s.model.cyclesPerAccess(hit);
        s.instr += s.model.instrPerAccess();

        if (!s.done) {
            s.measuredAccesses++;
            if (!hit)
                s.measuredMisses++;
            if (s.instr >= instr_target) {
                s.done = true;
                s.doneCycles = s.cycles;
                remaining--;
            }
        }

        // --- Periodic reconfiguration (Fig. 7 software flow). ---
        if (llc->hasAllocator() && min_cycles >= next_reconfig) {
            next_reconfig += cfg.reconfigCycles;
            llc->reconfigure();
        }
    }
    result.reconfigurations = llc->reconfigurations();

    // --- Collect per-app results over their fixed work. ---
    for (uint32_t i = 0; i < n; ++i) {
        AppRunResult& r = result.apps[i];
        const AppState& s = state[i];
        r.name = apps[i]->name;
        r.cycles = s.doneCycles;
        r.ipc = instr_target / s.doneCycles;
        r.missRatio = s.measuredAccesses > 0
                          ? static_cast<double>(s.measuredMisses) /
                                static_cast<double>(s.measuredAccesses)
                          : 0.0;
        r.mpki = static_cast<double>(s.measuredMisses) /
                 (instr_target / 1000.0);
    }
    return result;
}

} // namespace talus
