/**
 * @file
 * The error type thrown by the public API when a configuration fails
 * validation.
 *
 * The library's internals use talus_assert/talus_fatal (util/log.h),
 * which terminate the process — appropriate for simulation drivers,
 * hostile to a component embedded in a larger system. The API layer
 * instead rejects bad configurations by throwing ConfigError with an
 * actionable message, so callers can catch, report, and retry.
 */

#ifndef TALUS_API_CONFIG_ERROR_H
#define TALUS_API_CONFIG_ERROR_H

#include <stdexcept>
#include <string>

namespace talus {

/** Thrown by TalusCache when a Config fails validation. */
class ConfigError : public std::invalid_argument
{
  public:
    explicit ConfigError(const std::string& what)
        : std::invalid_argument(what)
    {
    }
};

} // namespace talus

#endif // TALUS_API_CONFIG_ERROR_H
