/**
 * @file
 * TalusCache: the single self-managing entry point to the library.
 *
 * The paper's pitch is that Talus is simple to deploy (Fig. 7):
 * utility monitors feed miss curves to convex hulls, hulls feed the
 * partitioning algorithm, and the controller turns allocations into
 * shadow-partition sizes and sampling rates. TalusCache owns that
 * whole loop. One validated Config builds the partitioned cache, the
 * TalusController, one CombinedUMon per logical partition, and the
 * allocator; callers then just:
 *
 *     TalusCache::Config cfg;
 *     cfg.llcLines = 8192;
 *     cfg.numParts = 2;
 *     cfg.reconfigInterval = 100'000;   // accesses between reconfigs
 *     TalusCache cache(cfg);            // throws ConfigError if invalid
 *     bool hit = cache.access(addr, part);
 *     auto s = cache.stats(part);       // misses, rho, shadow sizes
 *
 * reconfigure() runs one iteration of the paper's software flow
 * (monitor curves -> hulls -> allocate -> configure) and also fires
 * automatically every Config::reconfigInterval accesses. Since the
 * control-plane extraction it is a thin synchronous wrapper over two
 * stages the cache also exposes separately:
 *
 *  - prepareReconfigure() snapshots the monitors into an immutable
 *    ControlInput and runs the pure ControlStep (hulls + allocation)
 *    on the cache's ControlPlane, staging a new configuration
 *    without touching the data path;
 *  - applyReconfigure() commits the staged configuration now, or
 *    applyReconfigureAtEpoch(n) defers it to the next access-count
 *    epoch boundary (a fixed access count — deterministic, never
 *    wall clock), where access()/accessBatch() apply it in-stream.
 *
 * Callers with externally measured curves (sweeps, offline studies)
 * can bypass the built-in monitors/allocator with applyCurves().
 *
 * Invalid configurations are rejected at construction with an
 * actionable ConfigError instead of an assert, so embedding systems
 * can surface the message to their operators.
 */

#ifndef TALUS_API_TALUS_CACHE_H
#define TALUS_API_TALUS_CACHE_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/config_error.h"
#include "control/control_plane.h"
#include "core/talus_controller.h"
#include "monitor/combined_umon.h"
#include "partition/partitioned_cache.h"
#include "util/span.h"

namespace talus {

class MetricRegistry;

/** A partitioned cache that runs the Talus loop on itself. */
class TalusCache
{
  public:
    /** Everything needed to build a self-managing cache. */
    struct Config
    {
        // --- Geometry -------------------------------------------------
        uint64_t llcLines = 8192;       //!< Total capacity in lines.
        uint32_t ways = 32;             //!< Associativity (Table I: 32).
        std::string policyName = "LRU"; //!< Replacement policy name.
        SchemeKind scheme = SchemeKind::Vantage; //!< Partitioning scheme.
        uint32_t numParts = 1;          //!< Logical (caller-visible)
                                        //!< partitions.

        // --- Mechanism ------------------------------------------------
        bool talus = true;     //!< false: plain partitioned cache (no
                               //!< shadow partitions), for baselines.
        double margin = 0.05;  //!< Safety margin on rho (Sec. VI-B).
        uint32_t routerBits = 8; //!< Sampling hash/limit width.

        // --- Monitoring -----------------------------------------------
        bool monitoring = true;    //!< false: no UMONs (external curves
                                   //!< only, via applyCurves).
        uint32_t umonCoverage = 4; //!< UMON models coverage*LLC lines.
        /**
         * Monitor every Nth access instead of every access (systematic
         * 1-in-N decimation per partition, deterministic). 1 (the
         * default) feeds the monitors every access — today's behavior,
         * bit-exact with pre-knob builds. N > 1 trades monitor fidelity
         * for speed: the UMONs already subsample by address hash
         * (Assumption 3), and for an address stream whose statistics
         * are stationary across the interval a 1-in-N time slice has
         * the same expected miss curve — only the per-interval sample
         * count (and thus the curve's variance) shrinks by N. Expect
         * curve noise to grow roughly as sqrt(N); keep
         * reconfigInterval large enough that each interval still
         * samples thousands of accesses per partition.
         */
        uint32_t monitorSamplePeriod = 1;

        // --- Allocation / reconfiguration -----------------------------
        std::string allocatorName = "HillClimb"; //!< "" = external
                                                 //!< applyCurves() only.
        bool allocateOnHulls = true; //!< Allocate on convex hulls
                                     //!< (the Talus promise).
        uint64_t reconfigInterval = 0; //!< Accesses between automatic
                                       //!< reconfigs; 0 = manual only.
        uint64_t seed = 42;
        std::optional<uint64_t> routerSeed; //!< Shadow-router H3 seed;
                                            //!< unset derives it from
                                            //!< `seed`.

        // --- Observability --------------------------------------------
        /**
         * true: publish per-partition hit/miss/eviction/occupancy
         * counters, monitor sample counts, and control-plane timing/
         * staleness metrics into a MetricRegistry. false (the
         * default): zero metrics work — the data path is bit- and
         * instruction-identical to pre-observability builds (one
         * never-taken null check per batch).
         */
        bool metricsEnabled = false;
        /** Registry to publish into; null with metricsEnabled uses
         *  the process-global registry (globalMetricRegistry()). */
        MetricRegistry* metrics = nullptr;
        /** Rendered label pairs prepended to every metric this cache
         *  publishes, e.g. `shard="3"` (ShardedTalusCache sets it per
         *  shard). "" = no extra labels. */
        std::string metricsScope;

        /**
         * Validates the configuration. Returns "" when valid,
         * otherwise an actionable error message naming the bad field
         * and the accepted values.
         */
        std::string validate() const;
    };

    /** A snapshot of one logical partition's state. */
    struct PartStats
    {
        uint64_t accesses = 0;    //!< Accesses by this partition.
        uint64_t misses = 0;      //!< Misses by this partition.
        uint64_t targetLines = 0; //!< Current allocation (both shadow
                                  //!< partitions under Talus).
        double rho = 1.0;         //!< Routed sampling rate (Talus).
        TalusConfig shadow;       //!< Shadow configuration (Talus).

        /** Misses / accesses; 0 before any access. */
        double missRatio() const
        {
            return accesses > 0 ? static_cast<double>(misses) /
                                      static_cast<double>(accesses)
                                : 0.0;
        }
    };

    /**
     * Builds the cache, controller, monitors, and allocator.
     *
     * @throws ConfigError if @p config fails Config::validate().
     */
    explicit TalusCache(const Config& config);

    ~TalusCache(); //!< Out-of-line: Obs is incomplete here.
    TalusCache(TalusCache&&) = default;
    TalusCache& operator=(TalusCache&&) = default;

    /**
     * One access by logical partition @p part; returns true on hit.
     * Fires reconfigure() automatically every Config::reconfigInterval
     * accesses (when an allocator is configured).
     *
     * The common configuration (Talus over the fused Vantage+LRU
     * kernel, metrics off) takes the flattened fast path: monitor
     * sample, shadow route, and the single-access kernel probe run
     * straight-line here with zero out-of-line calls — the monitor's
     * H3 + integer sample compare, the router's limit compare (or the
     * saturated-limit shortcut), and accessFused1() are all header-
     * inline. Bit-exact with the generic accessBatch() block-of-one
     * path: the same operations in the same order, including the
     * deferred-apply and automatic-reconfiguration checks after the
     * access. Every other configuration (plain caches, non-LRU
     * policies, metrics on) delegates to accessBatch() as before.
     */
    bool access(Addr addr, PartId part = 0)
    {
        if (fast_ == nullptr)
            return accessBatch(Span<const Addr>(&addr, 1), part) != 0;
        talus_assert(part < cfg_.numParts, "bad logical partition ",
                     part);
        if (cfg_.monitoring) {
            if (cfg_.monitorSamplePeriod == 1) {
                monitors_[part].accessBlock(
                    Span<const Addr>(&addr, 1));
            } else {
                // The single-access form of feedMonitor's systematic
                // 1-in-N decimation: sample at phase 0, advance the
                // phase modulo the period.
                uint32_t phase = monPhase_[part];
                if (phase == 0)
                    monitors_[part].accessBlock(
                        Span<const Addr>(&addr, 1));
                monPhase_[part] =
                    ++phase == cfg_.monitorSamplePeriod ? 0 : phase;
            }
        }
        const ShadowRouter& rt = ctl_->router(part);
        const PartId phys = rt.alwaysAlpha() || rt.toAlpha(addr)
                                ? 2 * part
                                : 2 * part + 1;
        const bool hit = fast_->accessFused1(addr, phys);
        intervalAccesses_[part]++;
        sinceReconfig_++;
        accessCount_++;
        if (applyAt_ != 0 && accessCount_ >= applyAt_)
            applyReconfigure();
        if (cfg_.reconfigInterval > 0 &&
            sinceReconfig_ >= cfg_.reconfigInterval)
            reconfigure();
        return hit;
    }

    /**
     * Drives a whole block of addresses through the cache for one
     * logical partition — bit-exact with per-access semantics
     * (monitors observe every address, automatic reconfigurations and
     * epoch-deferred applications fire at the same access counts),
     * but structured as two passes per chunk: a monitor pass (fused
     * H3 hashing + early sampling rejection over the whole chunk)
     * followed by an access pass (router hashes evaluated in a block,
     * then the partitioned cache's batched entry point — a
     * devirtualized fused kernel under Vantage+LRU). Monitors and the
     * cache share no state within a chunk, and chunks split exactly
     * at reconfiguration/epoch boundaries, so every observation point
     * sees bit-identical state. This is the fast path the
     * trace-replay sims and the sharded engine use.
     *
     * @return Number of hits in the block.
     */
    uint64_t accessBatch(Span<const Addr> addrs, PartId part = 0);

    /**
     * One iteration of the paper's reconfiguration flow (Fig. 7):
     * read each partition's monitored miss curve, weight it by the
     * interval's access volume, (optionally) take convex hulls, run
     * the allocator, and apply the result — shadow sizes + sampling
     * rates under Talus, plain partition targets otherwise. Monitors
     * decay and the policy interval hook fires afterwards.
     *
     * A thin synchronous wrapper: prepareReconfigure() followed by
     * applyReconfigure(). Fatal if the Config named no allocator.
     */
    void reconfigure();

    /**
     * The off-hot-path compute stage alone: ends the monitoring
     * interval (snapshots per-partition curves and interval access
     * volumes into an immutable ControlInput, resets the interval
     * counters, decays the monitors) and runs the pure ControlStep on
     * the cache's ControlPlane, staging a new configuration. The data
     * path is untouched until applyReconfigure() or the scheduled
     * epoch boundary; preparing again before then overwrites the
     * staged configuration (the latest decision wins).
     *
     * Because this only reads this cache's monitors and writes this
     * cache's control plane, prepare stages for *different* caches
     * (e.g. shards) can safely run concurrently.
     *
     * Fatal if the Config named no allocator.
     */
    void prepareReconfigure();

    /**
     * Commits the staged configuration to the data path now: shadow
     * sizes + sampling rates under Talus, plain partition targets
     * otherwise, then the policy interval hook. Cancels any scheduled
     * epoch-deferred application. Fatal when nothing is staged.
     */
    void applyReconfigure();

    /**
     * Defers the staged configuration to the next epoch boundary:
     * the first access at which accessCount() reaches a non-zero
     * multiple of @p epochLen strictly greater than the current
     * count. access()/accessBatch() apply it in-stream at exactly
     * that boundary (batches chunk there, so the application point is
     * bit-exact for any block size). Deterministic by construction:
     * the boundary is a fixed access count, never wall clock. If the
     * automatic reconfigInterval fires at the same access, the
     * deferred (older) configuration is applied first.
     *
     * Latest decision wins: any full reconfiguration that runs
     * *before* the boundary — a manual reconfigure() or the
     * automatic reconfigInterval firing — supersedes the schedule
     * (the newer configuration is applied and the stale scheduled
     * application is canceled). Callers mixing the deferred API with
     * reconfigInterval > 0 should pick epoch lengths shorter than
     * the interval, or drive control entirely explicitly.
     *
     * Fatal when nothing is staged or @p epochLen is 0.
     */
    void applyReconfigureAtEpoch(uint64_t epochLen);

    /** True when a prepared configuration awaits application. */
    bool hasPendingControl() const { return plane_.hasPending(); }

    /** Access count at which a scheduled deferred application fires;
     *  0 when none is scheduled. */
    uint64_t pendingApplyAt() const { return applyAt_; }

    /** Total accesses this cache ever served (all partitions). */
    uint64_t accessCount() const { return accessCount_; }

    /** The control plane: allocator + staged/active control outputs
     *  and their epoch tags. */
    const ControlPlane& controlPlane() const { return plane_; }

    /**
     * Applies externally computed miss curves and logical allocations
     * directly, bypassing the built-in monitors and allocator. For
     * sweeps and offline studies where the curve is already known.
     */
    void applyCurves(const std::vector<MissCurve>& curves,
                     const std::vector<uint64_t>& logical_alloc);

    /** Snapshot of logical partition @p part. */
    PartStats stats(PartId part) const;

    /** Monitored miss curves, one per logical partition. Fatal when
     *  Config::monitoring is off. */
    std::vector<MissCurve> curves() const;

    /** Monitored miss curve of partition @p part. Fatal when
     *  Config::monitoring is off. */
    MissCurve curve(PartId part) const;

    /** Miss ratio across all partitions since the last resetStats(). */
    double missRatio() const;

    /** Clears the cache's access/miss counters (not the monitors). */
    void resetStats();

    /** Number of logical partitions. */
    uint32_t numParts() const { return cfg_.numParts; }

    /** Actual capacity in lines (may round down to whole sets). */
    uint64_t capacityLines() const;

    /** Reconfigurations run so far (manual + automatic). */
    uint64_t reconfigurations() const { return reconfigurations_; }

    /** True if an allocator was configured (reconfigure() is legal). */
    bool hasAllocator() const { return plane_.hasAllocator(); }

    /** The validated configuration this cache was built from. */
    const Config& config() const { return cfg_; }

    /** Underlying physical cache, for monitors and tests. */
    PartitionedCacheBase& cache();
    const PartitionedCacheBase& cache() const;

    /** The Talus controller; nullptr when Config::talus is false. */
    const TalusController* controller() const { return ctl_.get(); }

  private:
    /** Batch chunk bound: caps the monitor/router scratch buffers and
     *  keeps each pass L1/L2-resident. */
    static constexpr uint64_t kAccessBlock = 4096;

    /** Ends the monitoring interval and packages the control input. */
    ControlInput snapshotControl();

    /** Metric handles + control-age state; allocated only when
     *  Config::metricsEnabled (see talus_cache.cc). */
    struct Obs;

    /** Publishes one finished batch/chunk: per-partition counters,
     *  eviction delta, occupancy, and the staleness gauge. Called
     *  only when obs_ is non-null. */
    void obsOnBatch(PartId part, uint64_t n, uint64_t hits);

    /** Publishes one committed configuration: apply age, allocation
     *  delta, hull vertices, and per-partition targets/rho. */
    void obsOnApply(const ControlOutput& out);

    /** Feeds one chunk to @p part's monitor, applying the 1-in-N
     *  decimation of Config::monitorSamplePeriod. */
    void feedMonitor(PartId part, const Addr* addrs, uint64_t n);

    /** Pushes one committed control output onto the data path. */
    void applyControl(const ControlOutput& out);

    Config cfg_;
    std::vector<CombinedUMon> monitors_;
    /**
     * Set iff the flattened serial fast path applies: Talus mode over
     * a SchemePartitionedCache whose fused Vantage+LRU kernel is
     * active, with metrics off. Points into ctl_'s physical cache
     * (stable across moves — the controller owns it by unique_ptr);
     * null routes access() through the generic accessBatch() path.
     */
    SchemePartitionedCache* fast_ = nullptr;
    std::unique_ptr<TalusController> ctl_;        //!< Talus mode.
    std::unique_ptr<PartitionedCacheBase> plain_; //!< Baseline mode.
    ControlPlane plane_; //!< Allocator + staged/active control state.
    uint64_t granule_ = 1;
    // Per-partition hot metadata in struct-of-arrays layout: the batch
    // loop touches exactly one slot of each per chunk.
    std::vector<uint64_t> intervalAccesses_;
    std::vector<uint32_t> monPhase_; //!< Decimation phase per partition.
    std::vector<Addr> monScratch_;   //!< Decimated-address gather buffer.
    uint64_t sinceReconfig_ = 0;
    uint64_t reconfigurations_ = 0;
    uint64_t accessCount_ = 0; //!< Lifetime accesses (epoch clock).
    uint64_t applyAt_ = 0; //!< Access count of the scheduled deferred
                           //!< application; 0 = none scheduled.
    std::unique_ptr<Obs> obs_; //!< Null when metrics are off: the
                               //!< off-switch is a null check.
};

} // namespace talus

#endif // TALUS_API_TALUS_CACHE_H
