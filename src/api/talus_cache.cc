#include "api/talus_cache.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "alloc/allocator_factory.h"
#include "alloc/fair_alloc.h"
#include "policy/policy_factory.h"
#include "util/log.h"

namespace talus {

namespace {

std::string
joinNames(const std::vector<std::string>& names)
{
    std::ostringstream oss;
    for (size_t i = 0; i < names.size(); ++i)
        oss << (i ? ", " : "") << '"' << names[i] << '"';
    return oss.str();
}

bool
knownName(const std::vector<std::string>& names, const std::string& name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

std::string
TalusCache::Config::validate() const
{
    // Talus doubles every logical partition into alpha/beta shadows.
    const uint64_t phys_parts =
        talus ? 2ull * numParts : static_cast<uint64_t>(numParts);
    std::ostringstream err;
    if (llcLines < 1)
        err << "llcLines must be >= 1 (got " << llcLines << ")";
    else if (ways < 1)
        err << "ways must be >= 1 (got " << ways << ")";
    else if (ways > llcLines)
        err << "ways (" << ways << ") exceeds llcLines (" << llcLines
            << "); shrink the associativity or grow the cache";
    else if (numParts < 1)
        err << "numParts must be >= 1 (got " << numParts << ")";
    else if (!knownName(knownPolicies(), policyName))
        err << "unknown policyName \"" << policyName << "\"; known: "
            << joinNames(knownPolicies());
    else if (scheme == SchemeKind::Ideal && policyName != "LRU")
        err << "Ideal partitioning models exact per-partition LRU "
               "stacks; use policyName=\"LRU\" or pick another scheme";
    else if (talus && scheme == SchemeKind::Unpartitioned)
        err << "Talus needs a partitioning scheme to size its shadow "
               "partitions; pick Way/Set/Vantage/Futility/Ideal, or "
               "set talus=false for an unpartitioned baseline";
    else if (scheme == SchemeKind::Unpartitioned &&
             !allocatorName.empty())
        err << "an unpartitioned cache has no partition targets for "
               "the allocator to set; drop allocatorName (use \"\") "
               "or pick a partitioning scheme";
    else if (scheme == SchemeKind::Way && phys_parts > ways)
        err << "way partitioning assigns whole ways: " << phys_parts
            << " physical partitions"
            << (talus ? " (2 shadows per logical partition)" : "")
            << " need at least that many ways (got " << ways
            << "); grow ways or shrink numParts";
    else if (scheme == SchemeKind::Set && phys_parts > llcLines / ways)
        err << "set partitioning assigns whole sets: " << phys_parts
            << " physical partitions"
            << (talus ? " (2 shadows per logical partition)" : "")
            << " need at least that many sets (got " << llcLines / ways
            << "); grow llcLines or shrink numParts";
    else if (std::isnan(margin) || margin < 0.0 || margin >= 1.0)
        err << "margin must be in [0,1) (got " << margin
            << "); the paper uses 0.05";
    else if (routerBits < 1 || routerBits > 32)
        err << "routerBits must be in [1,32] (got " << routerBits
            << "); the paper uses 8";
    else if (umonCoverage < 1)
        err << "umonCoverage must be >= 1 (got " << umonCoverage
            << "); the paper uses 4";
    else if (monitorSamplePeriod < 1)
        err << "monitorSamplePeriod must be >= 1 (got "
            << monitorSamplePeriod
            << "); 1 monitors every access, N monitors every Nth";
    else if (!allocatorName.empty() &&
             !knownName(knownAllocators(), allocatorName))
        err << "unknown allocatorName \"" << allocatorName
            << "\"; known: " << joinNames(knownAllocators())
            << " (or \"\" to configure externally via applyCurves)";
    else if (reconfigInterval > 0 && allocatorName.empty())
        err << "reconfigInterval (" << reconfigInterval
            << " accesses) needs an allocator; set allocatorName or "
               "use reconfigInterval=0 with applyCurves()";
    else if (!monitoring && !allocatorName.empty())
        err << "the reconfiguration loop reads the built-in monitors; "
               "keep monitoring=true, or set allocatorName=\"\" and "
               "configure externally via applyCurves()";
    return err.str();
}

TalusCache::TalusCache(const Config& config) : cfg_(config)
{
    const std::string err = cfg_.validate();
    if (!err.empty())
        throw ConfigError("TalusCache::Config: " + err);

    if (cfg_.monitoring) {
        monitors_.reserve(cfg_.numParts);
        for (uint32_t p = 0; p < cfg_.numParts; ++p) {
            CombinedUMon::Config mc;
            mc.llcLines = cfg_.llcLines;
            mc.coverage = cfg_.umonCoverage;
            mc.seed = cfg_.seed ^ (0x1111ull * (p + 1));
            monitors_.emplace_back(mc);
        }
    }

    if (cfg_.talus) {
        auto phys = makePartitionedCache(cfg_.scheme, cfg_.llcLines,
                                         cfg_.ways, cfg_.policyName,
                                         2 * cfg_.numParts, cfg_.seed);
        TalusController::Config tc;
        tc.numLogicalParts = cfg_.numParts;
        tc.margin = cfg_.margin;
        tc.routerBits = cfg_.routerBits;
        tc.usableFraction = schemeUsableFraction(cfg_.scheme);
        tc.recomputeFromCoarsened = cfg_.scheme == SchemeKind::Way ||
                                    cfg_.scheme == SchemeKind::Set;
        tc.seed = cfg_.routerSeed.value_or(cfg_.seed ^ 0xC11);
        ctl_ = std::make_unique<TalusController>(std::move(phys), tc);

        // Start from a fair split; single-point curves make every
        // logical partition degenerate (rho = 1) until monitors warm
        // or the caller applies real curves.
        std::vector<MissCurve> flat(cfg_.numParts,
                                    MissCurve({{0.0, 1.0}}));
        FairAllocator fair;
        ctl_->configure(
            flat, fair.allocate(flat, ctl_->cache().capacityLines(), 1));
    } else {
        plain_ = makePartitionedCache(cfg_.scheme, cfg_.llcLines,
                                      cfg_.ways, cfg_.policyName,
                                      cfg_.numParts, cfg_.seed);
    }

    if (!cfg_.allocatorName.empty())
        plane_ = ControlPlane(makeAllocator(cfg_.allocatorName));
    granule_ = std::max<uint64_t>(1, cfg_.llcLines / 64);
    intervalAccesses_.assign(cfg_.numParts, 0);
    monPhase_.assign(cfg_.numParts, 0);
}

void
TalusCache::feedMonitor(PartId part, const Addr* addrs, uint64_t n)
{
    CombinedUMon& mon = monitors_[part];
    if (cfg_.monitorSamplePeriod == 1) {
        mon.accessBlock(Span<const Addr>(addrs, n));
        return;
    }
    // Systematic 1-in-N decimation: the partition's phase counter
    // picks every Nth access regardless of chunking, so batch and
    // serial drives observe the identical sub-stream.
    const uint32_t period = cfg_.monitorSamplePeriod;
    uint32_t phase = monPhase_[part];
    monScratch_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        if (phase == 0)
            monScratch_.push_back(addrs[i]);
        if (++phase == period)
            phase = 0;
    }
    monPhase_[part] = phase;
    mon.accessBlock(Span<const Addr>(monScratch_.data(),
                                     monScratch_.size()));
}

uint64_t
TalusCache::accessBatch(Span<const Addr> addrs, PartId part)
{
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    if (addrs.size() == 1) {
        // The serial facade (access() delegates blocks of one here).
        // A single access never spans a chunk boundary — the loop
        // below would compute chunk == 1 — so skip the carving and
        // run the same operations straight-line.
        const Addr* p = addrs.data();
        if (cfg_.monitoring)
            feedMonitor(part, p, 1);
        const uint64_t hit =
            cfg_.talus ? ctl_->accessBlock(p, 1, part)
                       : plain_->accessBatchUniform(p, 1, part);
        intervalAccesses_[part]++;
        sinceReconfig_++;
        accessCount_++;
        if (applyAt_ != 0 && accessCount_ >= applyAt_)
            applyReconfigure();
        if (cfg_.reconfigInterval > 0 &&
            sinceReconfig_ >= cfg_.reconfigInterval)
            reconfigure();
        return hit;
    }
    uint64_t hits = 0;
    const Addr* p = addrs.data();
    uint64_t left = addrs.size();
    while (left > 0) {
        // Stop each chunk exactly where the serial path would fire an
        // automatic reconfiguration or a scheduled epoch-deferred
        // application, so batching cannot slide either point. The
        // kAccessBlock cap bounds the monitor/router scratch buffers.
        uint64_t chunk = std::min<uint64_t>(left, kAccessBlock);
        if (cfg_.reconfigInterval > 0)
            chunk = std::min<uint64_t>(
                chunk, cfg_.reconfigInterval - sinceReconfig_);
        if (applyAt_ != 0)
            chunk = std::min<uint64_t>(chunk, applyAt_ - accessCount_);
        // Monitor pass, then access pass. The monitors never read the
        // cache and the cache never reads the monitors during
        // accesses, so splitting the passes reaches the same state as
        // interleaving per address — and each pass runs branch-light
        // over a block the hash kernels can pipeline.
        if (cfg_.monitoring)
            feedMonitor(part, p, chunk);
        hits += cfg_.talus
                    ? ctl_->accessBlock(p, chunk, part)
                    : plain_->accessBatchUniform(p, chunk, part);
        intervalAccesses_[part] += chunk;
        sinceReconfig_ += chunk;
        accessCount_ += chunk;
        p += chunk;
        left -= chunk;
        // The deferred (older) configuration applies before any
        // automatic reconfiguration landing on the same access.
        if (applyAt_ != 0 && accessCount_ >= applyAt_)
            applyReconfigure();
        if (cfg_.reconfigInterval > 0 &&
            sinceReconfig_ >= cfg_.reconfigInterval)
            reconfigure();
    }
    return hits;
}

void
TalusCache::reconfigure()
{
    prepareReconfigure();
    applyReconfigure();
}

ControlInput
TalusCache::snapshotControl()
{
    ControlInput in;
    in.numParts = cfg_.numParts;
    in.llcLines = cfg_.llcLines;
    in.capacityLines = cache().capacityLines();
    in.granule = granule_;
    in.allocateOnHulls = cfg_.allocateOnHulls;
    in.unmanagedHaircut =
        !cfg_.talus && cfg_.scheme == SchemeKind::Vantage;
    in.curves.reserve(cfg_.numParts);
    in.intervalAccesses.reserve(cfg_.numParts);
    for (uint32_t p = 0; p < cfg_.numParts; ++p) {
        in.curves.push_back(monitors_[p].snapshot());
        in.intervalAccesses.push_back(intervalAccesses_[p]);
        intervalAccesses_[p] = 0;
    }
    // The snapshot ends the monitoring interval: the automatic-
    // reconfiguration clock restarts and the monitors age, whether
    // the computed configuration is applied now or at a later epoch.
    sinceReconfig_ = 0;
    for (auto& mon : monitors_)
        mon.decay();
    return in;
}

void
TalusCache::prepareReconfigure()
{
    if (!plane_.hasAllocator())
        talus_fatal("TalusCache::reconfigure() needs an allocator; set "
                    "Config::allocatorName (one of ",
                    joinNames(knownAllocators()),
                    ") or apply externally computed configurations "
                    "with applyCurves()");
    plane_.compute(snapshotControl());
}

void
TalusCache::applyReconfigure()
{
    if (!plane_.hasPending())
        talus_fatal("TalusCache::applyReconfigure(): no prepared "
                    "configuration is staged; call "
                    "prepareReconfigure() first");
    applyControl(plane_.commit());
}

void
TalusCache::applyReconfigureAtEpoch(uint64_t epochLen)
{
    if (!plane_.hasPending())
        talus_fatal("TalusCache::applyReconfigureAtEpoch(): no "
                    "prepared configuration is staged; call "
                    "prepareReconfigure() first");
    if (epochLen == 0)
        talus_fatal("TalusCache::applyReconfigureAtEpoch(): epochLen "
                    "must be >= 1 access (the application epoch is a "
                    "fixed access count)");
    applyAt_ = (accessCount_ / epochLen + 1) * epochLen;
}

void
TalusCache::applyControl(const ControlOutput& out)
{
    applyAt_ = 0;
    reconfigurations_++;
    if (cfg_.talus)
        ctl_->configure(out.curves, out.alloc);
    else if (cfg_.scheme != SchemeKind::Unpartitioned)
        plain_->setTargets(out.alloc);
    cache().nextInterval();
}

void
TalusCache::applyCurves(const std::vector<MissCurve>& curves,
                        const std::vector<uint64_t>& logical_alloc)
{
    if (curves.size() != cfg_.numParts ||
        logical_alloc.size() != cfg_.numParts)
        talus_fatal("TalusCache::applyCurves: expected ", cfg_.numParts,
                    " curves and allocations (one per logical "
                    "partition), got ",
                    curves.size(), " curves and ", logical_alloc.size(),
                    " allocations");
    if (cfg_.talus)
        ctl_->configure(curves, logical_alloc);
    else if (cfg_.scheme != SchemeKind::Unpartitioned)
        plain_->setTargets(logical_alloc);
}

TalusCache::PartStats
TalusCache::stats(PartId part) const
{
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    PartStats s;
    if (cfg_.talus) {
        s.accesses = ctl_->logicalAccesses(part);
        s.misses = ctl_->logicalMisses(part);
        const PartitionedCacheBase& c = ctl_->cache();
        s.targetLines = c.targetOf(2 * part) + c.targetOf(2 * part + 1);
        s.rho = ctl_->routedRho(part);
        s.shadow = ctl_->configOf(part);
    } else {
        const CacheStats& cs = plain_->stats();
        s.accesses = cs.accesses(part);
        s.misses = cs.misses(part);
        s.targetLines = plain_->targetOf(part);
    }
    return s;
}

std::vector<MissCurve>
TalusCache::curves() const
{
    if (!cfg_.monitoring)
        talus_fatal("TalusCache::curves(): monitoring is disabled in "
                    "this Config; enable Config::monitoring to read "
                    "monitored miss curves");
    std::vector<MissCurve> out;
    out.reserve(monitors_.size());
    for (const CombinedUMon& mon : monitors_)
        out.push_back(mon.curve());
    return out;
}

MissCurve
TalusCache::curve(PartId part) const
{
    if (!cfg_.monitoring)
        talus_fatal("TalusCache::curve(): monitoring is disabled in "
                    "this Config; enable Config::monitoring to read "
                    "monitored miss curves");
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    return monitors_[part].curve();
}

double
TalusCache::missRatio() const
{
    // Aggregate the same per-partition PartStats snapshots stats()
    // serves, so missRatio() and stats() always describe the same
    // resetStats() window — ShardedTalusCache::missRatio() mirrors
    // this exactly one level up.
    uint64_t accesses = 0;
    uint64_t misses = 0;
    for (uint32_t p = 0; p < cfg_.numParts; ++p) {
        const PartStats s = stats(p);
        accesses += s.accesses;
        misses += s.misses;
    }
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
}

void
TalusCache::resetStats()
{
    cache().stats().reset();
}

uint64_t
TalusCache::capacityLines() const
{
    return cache().capacityLines();
}

PartitionedCacheBase&
TalusCache::cache()
{
    return cfg_.talus ? ctl_->cache() : *plain_;
}

const PartitionedCacheBase&
TalusCache::cache() const
{
    return cfg_.talus ? ctl_->cache() : *plain_;
}

} // namespace talus
