#include "api/talus_cache.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "alloc/allocator_factory.h"
#include "alloc/fair_alloc.h"
#include "obs/registry.h"
#include "policy/policy_factory.h"
#include "util/log.h"

namespace talus {

/**
 * Metric handles + control-age bookkeeping, allocated only when
 * Config::metricsEnabled. Handles are resolved once here (the only
 * registry interaction, under its registration mutex); the data path
 * then only bumps relaxed atomics through them — once per batch, from
 * totals the batch loop already computed.
 */
struct TalusCache::Obs
{
    struct PartMetrics
    {
        Counter* accesses = nullptr;
        Counter* hits = nullptr;
        Counter* misses = nullptr;
        Counter* monSamples = nullptr;
        Gauge* occupancy = nullptr;
        Gauge* targetLines = nullptr;
        Gauge* rho = nullptr;
    };

    std::vector<PartMetrics> parts;
    Counter* batches = nullptr;
    Counter* evictions = nullptr;
    Counter* reconfigs = nullptr;
    Histogram* computeSeconds = nullptr; //!< Records ns, reports s.
    Gauge* hullVertices = nullptr;
    Gauge* allocDelta = nullptr;
    Gauge* applyAge = nullptr;
    Gauge* staleness = nullptr;

    /** cache().stats().evictions() at the last batch hook: the raw
     *  counter is lifetime-cumulative (and resetStats() rewinds it),
     *  so the exported counter advances by per-batch deltas. */
    uint64_t lastEvictions = 0;
    /** accessCount_ when the pending configuration was snapshotted. */
    uint64_t pendingSnapshotAccess = 0;
    /** accessCount_ when the *active* configuration was snapshotted
     *  (0 until the first apply: the constructor's fair split is as
     *  old as the cache). Staleness = accessCount_ - this. */
    uint64_t activeSnapshotAccess = 0;
    /** Allocation last applied, for the reallocation-magnitude
     *  gauge. */
    std::vector<uint64_t> lastAlloc;
};

namespace {

std::string
joinNames(const std::vector<std::string>& names)
{
    std::ostringstream oss;
    for (size_t i = 0; i < names.size(); ++i)
        oss << (i ? ", " : "") << '"' << names[i] << '"';
    return oss.str();
}

bool
knownName(const std::vector<std::string>& names, const std::string& name)
{
    return std::find(names.begin(), names.end(), name) != names.end();
}

} // namespace

std::string
TalusCache::Config::validate() const
{
    // Talus doubles every logical partition into alpha/beta shadows.
    const uint64_t phys_parts =
        talus ? 2ull * numParts : static_cast<uint64_t>(numParts);
    std::ostringstream err;
    if (llcLines < 1)
        err << "llcLines must be >= 1 (got " << llcLines << ")";
    else if (ways < 1)
        err << "ways must be >= 1 (got " << ways << ")";
    else if (ways > llcLines)
        err << "ways (" << ways << ") exceeds llcLines (" << llcLines
            << "); shrink the associativity or grow the cache";
    else if (numParts < 1)
        err << "numParts must be >= 1 (got " << numParts << ")";
    else if (!knownName(knownPolicies(), policyName))
        err << "unknown policyName \"" << policyName << "\"; known: "
            << joinNames(knownPolicies());
    else if (scheme == SchemeKind::Ideal && policyName != "LRU")
        err << "Ideal partitioning models exact per-partition LRU "
               "stacks; use policyName=\"LRU\" or pick another scheme";
    else if (talus && scheme == SchemeKind::Unpartitioned)
        err << "Talus needs a partitioning scheme to size its shadow "
               "partitions; pick Way/Set/Vantage/Futility/Ideal, or "
               "set talus=false for an unpartitioned baseline";
    else if (scheme == SchemeKind::Unpartitioned &&
             !allocatorName.empty())
        err << "an unpartitioned cache has no partition targets for "
               "the allocator to set; drop allocatorName (use \"\") "
               "or pick a partitioning scheme";
    else if (scheme == SchemeKind::Way && phys_parts > ways)
        err << "way partitioning assigns whole ways: " << phys_parts
            << " physical partitions"
            << (talus ? " (2 shadows per logical partition)" : "")
            << " need at least that many ways (got " << ways
            << "); grow ways or shrink numParts";
    else if (scheme == SchemeKind::Set && phys_parts > llcLines / ways)
        err << "set partitioning assigns whole sets: " << phys_parts
            << " physical partitions"
            << (talus ? " (2 shadows per logical partition)" : "")
            << " need at least that many sets (got " << llcLines / ways
            << "); grow llcLines or shrink numParts";
    else if (std::isnan(margin) || margin < 0.0 || margin >= 1.0)
        err << "margin must be in [0,1) (got " << margin
            << "); the paper uses 0.05";
    else if (routerBits < 1 || routerBits > 32)
        err << "routerBits must be in [1,32] (got " << routerBits
            << "); the paper uses 8";
    else if (umonCoverage < 1)
        err << "umonCoverage must be >= 1 (got " << umonCoverage
            << "); the paper uses 4";
    else if (monitorSamplePeriod < 1)
        err << "monitorSamplePeriod must be >= 1 (got "
            << monitorSamplePeriod
            << "); 1 monitors every access, N monitors every Nth";
    else if (!allocatorName.empty() &&
             !knownName(knownAllocators(), allocatorName))
        err << "unknown allocatorName \"" << allocatorName
            << "\"; known: " << joinNames(knownAllocators())
            << " (or \"\" to configure externally via applyCurves)";
    else if (reconfigInterval > 0 && allocatorName.empty())
        err << "reconfigInterval (" << reconfigInterval
            << " accesses) needs an allocator; set allocatorName or "
               "use reconfigInterval=0 with applyCurves()";
    else if (!monitoring && !allocatorName.empty())
        err << "the reconfiguration loop reads the built-in monitors; "
               "keep monitoring=true, or set allocatorName=\"\" and "
               "configure externally via applyCurves()";
    return err.str();
}

TalusCache::TalusCache(const Config& config) : cfg_(config)
{
    const std::string err = cfg_.validate();
    if (!err.empty())
        throw ConfigError("TalusCache::Config: " + err);

    if (cfg_.monitoring) {
        monitors_.reserve(cfg_.numParts);
        for (uint32_t p = 0; p < cfg_.numParts; ++p) {
            CombinedUMon::Config mc;
            mc.llcLines = cfg_.llcLines;
            mc.coverage = cfg_.umonCoverage;
            mc.seed = cfg_.seed ^ (0x1111ull * (p + 1));
            monitors_.emplace_back(mc);
        }
    }

    if (cfg_.talus) {
        auto phys = makePartitionedCache(cfg_.scheme, cfg_.llcLines,
                                         cfg_.ways, cfg_.policyName,
                                         2 * cfg_.numParts, cfg_.seed);
        TalusController::Config tc;
        tc.numLogicalParts = cfg_.numParts;
        tc.margin = cfg_.margin;
        tc.routerBits = cfg_.routerBits;
        tc.usableFraction = schemeUsableFraction(cfg_.scheme);
        tc.recomputeFromCoarsened = cfg_.scheme == SchemeKind::Way ||
                                    cfg_.scheme == SchemeKind::Set;
        tc.seed = cfg_.routerSeed.value_or(cfg_.seed ^ 0xC11);
        ctl_ = std::make_unique<TalusController>(std::move(phys), tc);

        // Start from a fair split; single-point curves make every
        // logical partition degenerate (rho = 1) until monitors warm
        // or the caller applies real curves.
        std::vector<MissCurve> flat(cfg_.numParts,
                                    MissCurve({{0.0, 1.0}}));
        FairAllocator fair;
        ctl_->configure(
            flat, fair.allocate(flat, ctl_->cache().capacityLines(), 1));

        // Arm the flattened serial fast path (see access()) when the
        // physical cache runs the fused kernel and metrics are off.
        if (!cfg_.metricsEnabled) {
            auto* sc =
                dynamic_cast<SchemePartitionedCache*>(&ctl_->cache());
            if (sc != nullptr && sc->fusedKernelActive())
                fast_ = sc;
        }
    } else {
        plain_ = makePartitionedCache(cfg_.scheme, cfg_.llcLines,
                                      cfg_.ways, cfg_.policyName,
                                      cfg_.numParts, cfg_.seed);
    }

    if (!cfg_.allocatorName.empty())
        plane_ = ControlPlane(makeAllocator(cfg_.allocatorName));
    granule_ = std::max<uint64_t>(1, cfg_.llcLines / 64);
    intervalAccesses_.assign(cfg_.numParts, 0);
    monPhase_.assign(cfg_.numParts, 0);

    if (cfg_.metricsEnabled) {
        obs_ = std::make_unique<Obs>();
        Obs& o = *obs_;
        MetricRegistry& reg = cfg_.metrics != nullptr
                                  ? *cfg_.metrics
                                  : globalMetricRegistry();
        const std::string& scope = cfg_.metricsScope;
        o.parts.resize(cfg_.numParts);
        for (uint32_t p = 0; p < cfg_.numParts; ++p) {
            const std::string labels =
                joinLabels(scope, labelPair("part", p));
            Obs::PartMetrics& pm = o.parts[p];
            pm.accesses =
                &reg.counter("talus_cache_accesses_total", labels);
            pm.hits = &reg.counter("talus_cache_hits_total", labels);
            pm.misses =
                &reg.counter("talus_cache_misses_total", labels);
            pm.monSamples =
                &reg.counter("talus_monitor_samples_total", labels);
            pm.occupancy =
                &reg.gauge("talus_cache_occupancy_lines", labels);
            pm.targetLines =
                &reg.gauge("talus_cache_target_lines", labels);
            pm.rho = &reg.gauge("talus_cache_rho", labels);
        }
        o.batches = &reg.counter("talus_cache_batches_total", scope);
        o.evictions =
            &reg.counter("talus_cache_evictions_total", scope);
        o.reconfigs =
            &reg.counter("talus_control_reconfigurations_total", scope);
        o.computeSeconds = &reg.histogram(
            "talus_control_compute_seconds", scope, 1e-9);
        o.hullVertices =
            &reg.gauge("talus_control_hull_vertices", scope);
        o.allocDelta =
            &reg.gauge("talus_control_alloc_delta_lines", scope);
        o.applyAge =
            &reg.gauge("talus_control_apply_age_accesses", scope);
        o.staleness = &reg.gauge(
            "talus_control_config_staleness_accesses", scope);
    }
}

TalusCache::~TalusCache() = default;

void
TalusCache::feedMonitor(PartId part, const Addr* addrs, uint64_t n)
{
    CombinedUMon& mon = monitors_[part];
    if (cfg_.monitorSamplePeriod == 1) {
        if (obs_)
            obs_->parts[part].monSamples->inc(n);
        mon.accessBlock(Span<const Addr>(addrs, n));
        return;
    }
    // Systematic 1-in-N decimation: the partition's phase counter
    // picks every Nth access regardless of chunking, so batch and
    // serial drives observe the identical sub-stream.
    const uint32_t period = cfg_.monitorSamplePeriod;
    uint32_t phase = monPhase_[part];
    monScratch_.clear();
    for (uint64_t i = 0; i < n; ++i) {
        if (phase == 0)
            monScratch_.push_back(addrs[i]);
        if (++phase == period)
            phase = 0;
    }
    monPhase_[part] = phase;
    if (obs_)
        obs_->parts[part].monSamples->inc(monScratch_.size());
    mon.accessBlock(Span<const Addr>(monScratch_.data(),
                                     monScratch_.size()));
}

uint64_t
TalusCache::accessBatch(Span<const Addr> addrs, PartId part)
{
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    if (addrs.size() == 1) {
        // The serial facade (access() delegates blocks of one here).
        // A single access never spans a chunk boundary — the loop
        // below would compute chunk == 1 — so skip the carving and
        // run the same operations straight-line.
        const Addr* p = addrs.data();
        if (cfg_.monitoring)
            feedMonitor(part, p, 1);
        const uint64_t hit =
            cfg_.talus ? ctl_->accessBlock(p, 1, part)
                       : plain_->accessBatchUniform(p, 1, part);
        intervalAccesses_[part]++;
        sinceReconfig_++;
        accessCount_++;
        if (obs_)
            obsOnBatch(part, 1, hit);
        if (applyAt_ != 0 && accessCount_ >= applyAt_)
            applyReconfigure();
        if (cfg_.reconfigInterval > 0 &&
            sinceReconfig_ >= cfg_.reconfigInterval)
            reconfigure();
        return hit;
    }
    uint64_t hits = 0;
    const Addr* p = addrs.data();
    uint64_t left = addrs.size();
    while (left > 0) {
        // Stop each chunk exactly where the serial path would fire an
        // automatic reconfiguration or a scheduled epoch-deferred
        // application, so batching cannot slide either point. The
        // kAccessBlock cap bounds the monitor/router scratch buffers.
        uint64_t chunk = std::min<uint64_t>(left, kAccessBlock);
        if (cfg_.reconfigInterval > 0)
            chunk = std::min<uint64_t>(
                chunk, cfg_.reconfigInterval - sinceReconfig_);
        if (applyAt_ != 0)
            chunk = std::min<uint64_t>(chunk, applyAt_ - accessCount_);
        // Monitor pass, then access pass. The monitors never read the
        // cache and the cache never reads the monitors during
        // accesses, so splitting the passes reaches the same state as
        // interleaving per address — and each pass runs branch-light
        // over a block the hash kernels can pipeline.
        if (cfg_.monitoring)
            feedMonitor(part, p, chunk);
        const uint64_t chunk_hits =
            cfg_.talus ? ctl_->accessBlock(p, chunk, part)
                       : plain_->accessBatchUniform(p, chunk, part);
        hits += chunk_hits;
        intervalAccesses_[part] += chunk;
        sinceReconfig_ += chunk;
        accessCount_ += chunk;
        p += chunk;
        left -= chunk;
        if (obs_)
            obsOnBatch(part, chunk, chunk_hits);
        // The deferred (older) configuration applies before any
        // automatic reconfiguration landing on the same access.
        if (applyAt_ != 0 && accessCount_ >= applyAt_)
            applyReconfigure();
        if (cfg_.reconfigInterval > 0 &&
            sinceReconfig_ >= cfg_.reconfigInterval)
            reconfigure();
    }
    return hits;
}

void
TalusCache::reconfigure()
{
    prepareReconfigure();
    applyReconfigure();
}

ControlInput
TalusCache::snapshotControl()
{
    ControlInput in;
    in.numParts = cfg_.numParts;
    in.llcLines = cfg_.llcLines;
    in.capacityLines = cache().capacityLines();
    in.granule = granule_;
    in.allocateOnHulls = cfg_.allocateOnHulls;
    in.unmanagedHaircut =
        !cfg_.talus && cfg_.scheme == SchemeKind::Vantage;
    in.curves.reserve(cfg_.numParts);
    in.intervalAccesses.reserve(cfg_.numParts);
    for (uint32_t p = 0; p < cfg_.numParts; ++p) {
        in.curves.push_back(monitors_[p].snapshot());
        in.intervalAccesses.push_back(intervalAccesses_[p]);
        intervalAccesses_[p] = 0;
    }
    // The snapshot ends the monitoring interval: the automatic-
    // reconfiguration clock restarts and the monitors age, whether
    // the computed configuration is applied now or at a later epoch.
    sinceReconfig_ = 0;
    for (auto& mon : monitors_)
        mon.decay();
    return in;
}

void
TalusCache::prepareReconfigure()
{
    if (!plane_.hasAllocator())
        talus_fatal("TalusCache::reconfigure() needs an allocator; set "
                    "Config::allocatorName (one of ",
                    joinNames(knownAllocators()),
                    ") or apply externally computed configurations "
                    "with applyCurves()");
    if (obs_ == nullptr) {
        plane_.compute(snapshotControl());
        return;
    }
    // Instrumented prepare: remember the snapshot's access count (the
    // config-staleness clock starts here) and time the pure compute
    // stage. The clock reads bracket only plane_.compute(), so the
    // histogram measures exactly what a background control thread
    // would pay per step.
    const ControlInput in = snapshotControl();
    obs_->pendingSnapshotAccess = accessCount_;
    const auto t0 = std::chrono::steady_clock::now();
    plane_.compute(in);
    const auto t1 = std::chrono::steady_clock::now();
    obs_->computeSeconds->record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    uint64_t vertices = 0;
    for (const uint32_t v : plane_.pending().allocCurvePoints)
        vertices += v;
    obs_->hullVertices->set(static_cast<double>(vertices));
}

void
TalusCache::applyReconfigure()
{
    if (!plane_.hasPending())
        talus_fatal("TalusCache::applyReconfigure(): no prepared "
                    "configuration is staged; call "
                    "prepareReconfigure() first");
    applyControl(plane_.commit());
}

void
TalusCache::applyReconfigureAtEpoch(uint64_t epochLen)
{
    if (!plane_.hasPending())
        talus_fatal("TalusCache::applyReconfigureAtEpoch(): no "
                    "prepared configuration is staged; call "
                    "prepareReconfigure() first");
    if (epochLen == 0)
        talus_fatal("TalusCache::applyReconfigureAtEpoch(): epochLen "
                    "must be >= 1 access (the application epoch is a "
                    "fixed access count)");
    applyAt_ = (accessCount_ / epochLen + 1) * epochLen;
}

void
TalusCache::applyControl(const ControlOutput& out)
{
    applyAt_ = 0;
    reconfigurations_++;
    if (cfg_.talus)
        ctl_->configure(out.curves, out.alloc);
    else if (cfg_.scheme != SchemeKind::Unpartitioned)
        plain_->setTargets(out.alloc);
    cache().nextInterval();
    if (obs_)
        obsOnApply(out);
}

void
TalusCache::obsOnBatch(PartId part, uint64_t n, uint64_t hits)
{
    Obs& o = *obs_;
    Obs::PartMetrics& pm = o.parts[part];
    pm.accesses->inc(n);
    pm.misses->inc(n - hits);
    pm.hits->inc(hits);
    o.batches->inc();
    // Evictions are tracked cache-wide by CacheStats; export the
    // per-batch delta. A backward jump means resetStats() rewound the
    // raw counter — re-baseline without regressing the exported
    // (monotone) counter.
    const uint64_t ev = cache().stats().evictions();
    if (ev >= o.lastEvictions)
        o.evictions->inc(ev - o.lastEvictions);
    o.lastEvictions = ev;
    pm.occupancy->set(static_cast<double>(
        cfg_.talus ? cache().occupancy(2 * part) +
                         cache().occupancy(2 * part + 1)
                   : cache().occupancy(part)));
    o.staleness->set(
        static_cast<double>(accessCount_ - o.activeSnapshotAccess));
}

void
TalusCache::obsOnApply(const ControlOutput& out)
{
    Obs& o = *obs_;
    o.reconfigs->inc();
    // Apply age: accesses served between this configuration's monitor
    // snapshot and its application — 0 for synchronous reconfigure(),
    // the deferred distance for applyReconfigureAtEpoch().
    o.applyAge->set(
        static_cast<double>(accessCount_ - o.pendingSnapshotAccess));
    o.activeSnapshotAccess = o.pendingSnapshotAccess;
    uint64_t delta = 0;
    if (o.lastAlloc.size() == out.alloc.size())
        for (size_t p = 0; p < out.alloc.size(); ++p)
            delta += out.alloc[p] > o.lastAlloc[p]
                         ? out.alloc[p] - o.lastAlloc[p]
                         : o.lastAlloc[p] - out.alloc[p];
    o.lastAlloc = out.alloc;
    o.allocDelta->set(static_cast<double>(delta));
    for (uint32_t p = 0; p < cfg_.numParts; ++p) {
        Obs::PartMetrics& pm = o.parts[p];
        if (cfg_.talus) {
            const PartitionedCacheBase& c = ctl_->cache();
            pm.targetLines->set(static_cast<double>(
                c.targetOf(2 * p) + c.targetOf(2 * p + 1)));
            pm.rho->set(ctl_->routedRho(p));
        } else if (cfg_.scheme != SchemeKind::Unpartitioned) {
            pm.targetLines->set(
                static_cast<double>(plain_->targetOf(p)));
        }
    }
}

void
TalusCache::applyCurves(const std::vector<MissCurve>& curves,
                        const std::vector<uint64_t>& logical_alloc)
{
    if (curves.size() != cfg_.numParts ||
        logical_alloc.size() != cfg_.numParts)
        talus_fatal("TalusCache::applyCurves: expected ", cfg_.numParts,
                    " curves and allocations (one per logical "
                    "partition), got ",
                    curves.size(), " curves and ", logical_alloc.size(),
                    " allocations");
    if (cfg_.talus)
        ctl_->configure(curves, logical_alloc);
    else if (cfg_.scheme != SchemeKind::Unpartitioned)
        plain_->setTargets(logical_alloc);
}

TalusCache::PartStats
TalusCache::stats(PartId part) const
{
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    PartStats s;
    if (cfg_.talus) {
        s.accesses = ctl_->logicalAccesses(part);
        s.misses = ctl_->logicalMisses(part);
        const PartitionedCacheBase& c = ctl_->cache();
        s.targetLines = c.targetOf(2 * part) + c.targetOf(2 * part + 1);
        s.rho = ctl_->routedRho(part);
        s.shadow = ctl_->configOf(part);
    } else {
        const CacheStats& cs = plain_->stats();
        s.accesses = cs.accesses(part);
        s.misses = cs.misses(part);
        s.targetLines = plain_->targetOf(part);
    }
    return s;
}

std::vector<MissCurve>
TalusCache::curves() const
{
    if (!cfg_.monitoring)
        talus_fatal("TalusCache::curves(): monitoring is disabled in "
                    "this Config; enable Config::monitoring to read "
                    "monitored miss curves");
    std::vector<MissCurve> out;
    out.reserve(monitors_.size());
    for (const CombinedUMon& mon : monitors_)
        out.push_back(mon.curve());
    return out;
}

MissCurve
TalusCache::curve(PartId part) const
{
    if (!cfg_.monitoring)
        talus_fatal("TalusCache::curve(): monitoring is disabled in "
                    "this Config; enable Config::monitoring to read "
                    "monitored miss curves");
    talus_assert(part < cfg_.numParts, "bad logical partition ", part);
    return monitors_[part].curve();
}

double
TalusCache::missRatio() const
{
    // Aggregate the same per-partition PartStats snapshots stats()
    // serves, so missRatio() and stats() always describe the same
    // resetStats() window — ShardedTalusCache::missRatio() mirrors
    // this exactly one level up.
    uint64_t accesses = 0;
    uint64_t misses = 0;
    for (uint32_t p = 0; p < cfg_.numParts; ++p) {
        const PartStats s = stats(p);
        accesses += s.accesses;
        misses += s.misses;
    }
    return accesses > 0 ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
}

void
TalusCache::resetStats()
{
    cache().stats().reset();
}

uint64_t
TalusCache::capacityLines() const
{
    return cache().capacityLines();
}

PartitionedCacheBase&
TalusCache::cache()
{
    return cfg_.talus ? ctl_->cache() : *plain_;
}

const PartitionedCacheBase&
TalusCache::cache() const
{
    return cfg_.talus ? ctl_->cache() : *plain_;
}

} // namespace talus
