/**
 * @file
 * Umbrella header for the public API: everything a TalusCache user
 * needs in one include.
 *
 *     #include "api/talus.h"
 *
 * pulls in the facade itself (api/talus_cache.h), the sharded
 * serving engine built on top of it (shard/sharded_cache.h), the
 * miss-curve and convex-hull types its methods speak, paper-MB
 * scaling, the synthetic workload suite used by the examples, and
 * the scenario zoo (trace replay, phase-change generators, the
 * analytical miss-curve oracle). Components embedding only the cache
 * can include api/talus_cache.h directly.
 */

#ifndef TALUS_API_TALUS_H
#define TALUS_API_TALUS_H

#include "api/config_error.h"
#include "api/talus_cache.h"
#include "core/convex_hull.h"
#include "core/miss_curve.h"
#include "model/analytical_lru.h"
#include "obs/exporters.h"
#include "obs/registry.h"
#include "shard/sharded_cache.h"
#include "sim/scale.h"
#include "trace/trace_stream.h"
#include "workload/scenarios.h"
#include "workload/spec_suite.h"

#endif // TALUS_API_TALUS_H
