/**
 * @file
 * The Talus control step: the pure, side-effect-free compute stage of
 * the paper's software control loop (Fig. 7).
 *
 * The paper's deployment pitch is that reconfiguration is cheap
 * because it runs rarely and *off the data path*: monitors produce
 * miss curves, curves become convex hulls, hulls feed the
 * partitioning algorithm, and only the resulting configuration ever
 * touches the cache. This header makes that separation structural:
 *
 *  - ControlInput is an immutable snapshot of everything one
 *    reconfiguration decision needs — per-partition monitor curves,
 *    interval access volumes, and the capacity/mechanism knobs.
 *  - ControlOutput is the decision — the curves to configure with and
 *    the logical allocation — tagged with the epoch it was computed
 *    for.
 *  - runControlStep() maps one to the other. It reads nothing but its
 *    arguments and writes nothing but its result, so control steps
 *    for independent caches (e.g. the shards of a ShardedTalusCache)
 *    can run concurrently on a worker pool.
 *
 * The math is the exact sequence TalusCache::reconfigure() ran
 * inline before the extraction: weight each partition's miss-ratio
 * curve by its interval access volume (so the allocator compares
 * misses, not ratios), optionally take convex hulls (the Talus
 * promise that makes hill climbing optimal), clamp capacity to what
 * physically exists, haircut the unmanaged region for plain Vantage,
 * and run the allocator.
 */

#ifndef TALUS_CONTROL_CONTROL_STEP_H
#define TALUS_CONTROL_CONTROL_STEP_H

#include <cstdint>
#include <vector>

#include "alloc/allocator.h"
#include "core/miss_curve.h"

namespace talus {

/**
 * An immutable snapshot of one cache's state at an interval boundary:
 * everything runControlStep() needs, and nothing it could mutate.
 */
struct ControlInput
{
    uint32_t numParts = 1;   //!< Logical partitions.
    uint64_t llcLines = 0;   //!< Configured capacity in lines.
    uint64_t capacityLines = 0; //!< Physical capacity (set-rounded).
    uint64_t granule = 1;    //!< Allocation granularity in lines.
    bool allocateOnHulls = true; //!< Allocate on convex hulls.
    bool unmanagedHaircut = false; //!< Plain Vantage: allocate only
                                   //!< the 90% managed region.
    std::vector<MissCurve> curves; //!< Monitored curves, one per part.
    std::vector<uint64_t> intervalAccesses; //!< Access volume per part
                                            //!< in the closed interval.
};

/**
 * One reconfiguration decision: the raw curves to configure shadow
 * partitions from and the logical allocation. The epoch tag is the
 * ControlPlane's alone to assign (monotonic over computed steps);
 * standalone runControlStep() calls leave it 0.
 */
struct ControlOutput
{
    uint64_t epoch = 0;            //!< ControlPlane-assigned tag.
    std::vector<MissCurve> curves; //!< Curves for configure().
    std::vector<uint64_t> alloc;   //!< Lines per logical partition.
    /** Points per partition in the curves the allocator saw — hull
     *  vertex counts when ControlInput::allocateOnHulls, raw monitor
     *  point counts otherwise. Diagnostic: how much structure each
     *  hull kept (observability reads it; apply ignores it). */
    std::vector<uint32_t> allocCurvePoints;
};

/**
 * The pure compute stage: snapshot in, decision out. Reads only
 * @p in, writes only @p out; @p allocator is the only collaborator
 * (allocators may keep tuning state, so each concurrently stepped
 * cache must own its own instance). @p out is an out-parameter so a
 * steady-state control plane can reuse its buffers allocation-free.
 */
void runControlStep(const ControlInput& in, Allocator& allocator,
                    ControlOutput& out);

} // namespace talus

#endif // TALUS_CONTROL_CONTROL_STEP_H
