/**
 * @file
 * ControlPlane: the off-hot-path owner of the Talus reconfiguration
 * loop's compute stage and its double-buffered output.
 *
 * One ControlPlane per self-managing cache. It owns the partitioning
 * allocator and a pair of ControlOutput buffers:
 *
 *  - compute(input) runs the pure ControlStep into the *staging*
 *    buffer and marks it pending. Computing again before the previous
 *    result was applied simply overwrites the staging buffer — the
 *    latest decision wins; the data path keeps reading the active
 *    configuration untouched.
 *  - commit() swaps staging and active and returns the newly active
 *    output for the cache to apply. The swap is an index flip plus
 *    vector moves — no reallocation in the steady state — so the
 *    apply stage stays cheap enough to run at an access boundary.
 *
 * Every computed output carries a monotonically increasing epoch tag;
 * epochsComputed()/epochsApplied() expose the plane's progress so
 * callers (and tests) can tell a stale pending decision from a fresh
 * one. The plane itself never touches a cache: snapshotting the input
 * and applying the committed output are the owning cache's job, which
 * is what keeps concurrent control steps for independent caches
 * (shards) trivially race-free.
 */

#ifndef TALUS_CONTROL_CONTROL_PLANE_H
#define TALUS_CONTROL_CONTROL_PLANE_H

#include <cstdint>
#include <memory>

#include "alloc/allocator.h"
#include "control/control_step.h"

namespace talus {

/** Compute-and-stage owner of one cache's reconfiguration decisions. */
class ControlPlane
{
  public:
    /** A plane with no allocator: compute() is illegal (fatal). */
    ControlPlane() = default;

    /** Takes ownership of @p allocator (may be null: no compute). */
    explicit ControlPlane(std::unique_ptr<Allocator> allocator)
        : allocator_(std::move(allocator))
    {
    }

    /** True when an allocator was configured (compute() is legal). */
    bool hasAllocator() const { return allocator_ != nullptr; }

    /** The owned allocator; null when none was configured. */
    const Allocator* allocator() const { return allocator_.get(); }

    /**
     * Runs the pure control step on @p input into the staging buffer
     * and marks it pending. Returns the epoch tag of the computed
     * output. Fatal when no allocator was configured.
     */
    uint64_t compute(const ControlInput& input);

    /** True when a computed output awaits commit(). */
    bool hasPending() const { return pending_; }

    /** The staged output awaiting commit. Fatal when none pending. */
    const ControlOutput& pending() const;

    /**
     * Swaps the pending output into the active slot and returns it.
     * Fatal when nothing is pending.
     */
    const ControlOutput& commit();

    /** The last committed output (empty before the first commit). */
    const ControlOutput& active() const { return buffers_[active_]; }

    /** Control steps computed so far (also the latest epoch tag). */
    uint64_t epochsComputed() const { return computed_; }

    /** Outputs committed (applied) so far. */
    uint64_t epochsApplied() const { return applied_; }

  private:
    std::unique_ptr<Allocator> allocator_;
    ControlOutput buffers_[2];
    uint32_t active_ = 0; //!< Index of the active (applied) buffer.
    bool pending_ = false;
    uint64_t computed_ = 0;
    uint64_t applied_ = 0;
};

} // namespace talus

#endif // TALUS_CONTROL_CONTROL_PLANE_H
