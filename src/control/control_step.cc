#include "control/control_step.h"

#include <algorithm>

#include "core/talus_controller.h"
#include "util/log.h"

namespace talus {

void
runControlStep(const ControlInput& in, Allocator& allocator,
               ControlOutput& out)
{
    talus_assert(in.numParts >= 1, "control step needs >= 1 partition");
    talus_assert(in.curves.size() == in.numParts,
                 "control input has ", in.curves.size(),
                 " curves for ", in.numParts, " partitions");
    talus_assert(in.intervalAccesses.size() == in.numParts,
                 "control input has ", in.intervalAccesses.size(),
                 " interval counters for ", in.numParts, " partitions");
    talus_assert(in.granule >= 1, "granule must be >= 1");

    // Weight each partition's miss-ratio curve by its interval access
    // volume so the allocator compares misses, not ratios; +1 keeps a
    // silent partition from degenerating to an all-zero curve.
    std::vector<MissCurve> alloc_curves;
    alloc_curves.reserve(in.numParts);
    for (uint32_t p = 0; p < in.numParts; ++p)
        alloc_curves.push_back(in.curves[p].scaled(
            1.0, static_cast<double>(in.intervalAccesses[p]) + 1.0));

    // Pre-processing: Talus promises the convex hulls.
    if (in.allocateOnHulls)
        alloc_curves = TalusController::convexHulls(alloc_curves);

    // The cache may round capacity down to whole sets; never hand the
    // allocator more lines than physically exist.
    const uint64_t cap =
        std::min<uint64_t>(in.llcLines, in.capacityLines);
    const uint64_t usable = in.unmanagedHaircut ? cap * 9 / 10 : cap;

    out.epoch = 0; // The ControlPlane stamps epochs; standalone
                   // steps carry no tag (and reused buffers none
                   // stale).
    out.allocCurvePoints.clear();
    out.allocCurvePoints.reserve(in.numParts);
    for (const MissCurve& c : alloc_curves)
        out.allocCurvePoints.push_back(
            static_cast<uint32_t>(c.numPoints()));
    out.alloc = allocator.allocate(alloc_curves, usable, in.granule);
    out.curves = in.curves;
}

} // namespace talus
