#include "control/control_plane.h"

#include "util/log.h"

namespace talus {

uint64_t
ControlPlane::compute(const ControlInput& input)
{
    if (allocator_ == nullptr)
        talus_fatal("ControlPlane::compute() needs an allocator; "
                    "construct the plane with one (e.g. via "
                    "makeAllocator) or configure the cache externally "
                    "with applyCurves()");
    ControlOutput& staging = buffers_[active_ ^ 1];
    runControlStep(input, *allocator_, staging);
    // Epoch tags are the plane's job: monotonic over computed steps.
    staging.epoch = ++computed_;
    pending_ = true;
    return staging.epoch;
}

const ControlOutput&
ControlPlane::pending() const
{
    talus_assert(pending_, "no pending control output");
    return buffers_[active_ ^ 1];
}

const ControlOutput&
ControlPlane::commit()
{
    talus_assert(pending_, "ControlPlane::commit() without a pending "
                           "output; call compute() first");
    active_ ^= 1;
    pending_ = false;
    applied_++;
    return buffers_[active_];
}

} // namespace talus
