/**
 * @file
 * Trace files: a compact binary access-trace format plus a CSV twin,
 * both streamed so multi-GB traces never fully materialize in memory.
 *
 * Binary format v1 (fixed little-endian, independent of host order):
 *
 *   bytes 0..7   magic "TALUSTR1"
 *   bytes 8..15  uint64 record count
 *   then count * 8-byte line addresses (util/types.h Addr), in
 *   stream order.
 *
 * The count is patched into the header when the writer closes, so
 * writing streams too; a file whose size is not exactly
 * 16 + 8*count is detected as truncated/corrupt at open.
 *
 * CSV format: one decimal line address per line, '\n'-terminated, no
 * header. Decimal uint64 is exact, so binary -> CSV -> binary is
 * byte-identical, and CSV -> binary -> CSV is byte-identical for
 * canonical CSV (what CsvTraceWriter emits).
 *
 * Readers share the TraceSource interface so TraceStream
 * (trace/trace_stream.h) can replay either format; openTraceSource()
 * sniffs the binary magic to pick one. validateTraceFile() is the
 * non-fatal front door for configuration surfaces (BenchEnv --trace=)
 * that must reject a missing or corrupt file with an actionable
 * message instead of dying mid-run.
 */

#ifndef TALUS_TRACE_TRACE_FILE_H
#define TALUS_TRACE_TRACE_FILE_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "util/types.h"

namespace talus {

/** Magic bytes opening every binary trace file. */
extern const char kTraceMagic[8]; // "TALUSTR1"

/** Bytes before the first record of a binary trace. */
constexpr uint64_t kTraceHeaderBytes = 16;

/** A streamed, rewindable source of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fills @p out with up to @p max records, returning how many were
     * produced; 0 means end of trace. Fatal on a malformed or
     * truncated file (open-time validation catches these for binary
     * traces; CSV parse errors can only surface while streaming).
     */
    virtual uint64_t read(Addr* out, uint64_t max) = 0;

    /** Restarts the source at the first record. */
    virtual void rewind() = 0;
};

/** Streamed binary trace writer. */
class TraceWriter
{
  public:
    /** Opens @p path for writing; fatal if it cannot be created. */
    explicit TraceWriter(const std::string& path);

    /** Closes the file (patching the header) if still open. */
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    /** Appends one record. */
    void append(Addr addr) { append(&addr, 1); }

    /** Appends @p n records from @p addrs. */
    void append(const Addr* addrs, uint64_t n);

    /** Records written so far. */
    uint64_t numRecords() const { return count_; }

    /**
     * Flushes, patches the record count into the header, and closes.
     * Idempotent; the destructor calls it. Fatal on I/O errors, so a
     * close that returns produced a valid file.
     */
    void close();

  private:
    std::string path_;
    std::FILE* file_ = nullptr;
    uint64_t count_ = 0;
};

/** Streamed binary trace reader. */
class TraceReader : public TraceSource
{
  public:
    /**
     * Opens and validates @p path: magic, and file size consistent
     * with the header's record count. Fatal on any mismatch — use
     * validateTraceFile() first where dying is not acceptable.
     */
    explicit TraceReader(const std::string& path);
    ~TraceReader() override;

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    /** Total records in the trace (from the validated header). */
    uint64_t numRecords() const { return count_; }

    uint64_t read(Addr* out, uint64_t max) override;
    void rewind() override;

  private:
    std::string path_;
    std::FILE* file_ = nullptr;
    uint64_t count_ = 0;
    uint64_t cursor_ = 0; //!< Records consumed since rewind.
};

/** Streamed CSV trace writer (canonical form: "<decimal>\n"). */
class CsvTraceWriter
{
  public:
    /** Opens @p path for writing; fatal if it cannot be created. */
    explicit CsvTraceWriter(const std::string& path);
    ~CsvTraceWriter();

    CsvTraceWriter(const CsvTraceWriter&) = delete;
    CsvTraceWriter& operator=(const CsvTraceWriter&) = delete;

    /** Appends one record. */
    void append(Addr addr) { append(&addr, 1); }

    /** Appends @p n records from @p addrs. */
    void append(const Addr* addrs, uint64_t n);

    /** Records written so far. */
    uint64_t numRecords() const { return count_; }

    /** Flushes and closes; idempotent; fatal on I/O errors. */
    void close();

  private:
    std::string path_;
    std::FILE* file_ = nullptr;
    uint64_t count_ = 0;
};

/** Streamed CSV trace reader. */
class CsvTraceReader : public TraceSource
{
  public:
    /** Opens @p path; fatal if it cannot be read. */
    explicit CsvTraceReader(const std::string& path);
    ~CsvTraceReader() override;

    CsvTraceReader(const CsvTraceReader&) = delete;
    CsvTraceReader& operator=(const CsvTraceReader&) = delete;

    /** Fatal on the first malformed line (reported with its number). */
    uint64_t read(Addr* out, uint64_t max) override;
    void rewind() override;

  private:
    std::string path_;
    std::FILE* file_ = nullptr;
    uint64_t line_ = 0; //!< Lines consumed since rewind (for errors).
};

/** True if @p path starts with the binary trace magic. */
bool isBinaryTraceFile(const std::string& path);

/**
 * Validates @p path as a trace file without dying: returns "" when
 * the file is a well-formed binary trace (magic + size check, O(1))
 * or a parseable CSV trace (every line checked, O(n)), otherwise an
 * actionable message naming the file and the defect.
 */
std::string validateTraceFile(const std::string& path);

/**
 * Opens @p path as a TraceSource, sniffing the format by magic.
 * Fatal on a missing or (for binary) corrupt file.
 */
std::unique_ptr<TraceSource> openTraceSource(const std::string& path);

/**
 * Converts a CSV trace to binary, streamed; returns records written.
 * Fatal on malformed input or I/O errors.
 */
uint64_t convertCsvToBinary(const std::string& csv_path,
                            const std::string& bin_path);

/**
 * Converts a binary trace to canonical CSV, streamed; returns records
 * written. Fatal on a corrupt input or I/O errors.
 */
uint64_t convertBinaryToCsv(const std::string& bin_path,
                            const std::string& csv_path);

} // namespace talus

#endif // TALUS_TRACE_TRACE_FILE_H
