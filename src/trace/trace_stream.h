/**
 * @file
 * TraceStream: replaying a recorded access trace as an AccessStream.
 *
 * This is the adapter that lets a production access log drive the
 * whole engine unchanged: anything that consumes an AccessStream —
 * sim/sharded_replay, sim/serving_harness, the examples — can replay
 * a trace file instead of a synthetic generator. The file is read
 * through a streamed TraceSource (trace/trace_file.h) into a bounded
 * refill buffer, so a multi-GB trace costs a fixed few hundred KB of
 * memory no matter how long the replay runs.
 *
 * AccessStream is an *infinite* sequence, so a finite trace wraps:
 * when the file is exhausted the source rewinds and replay continues
 * from the first record (wraps() counts the laps). reset() restarts
 * at the first record; clone() opens an independent handle on the
 * same file. Both formats (binary and canonical CSV) are accepted —
 * the format is sniffed by magic.
 */

#ifndef TALUS_TRACE_TRACE_STREAM_H
#define TALUS_TRACE_TRACE_STREAM_H

#include <string>
#include <vector>

#include "trace/trace_file.h"
#include "workload/access_stream.h"

namespace talus {

/** Replays a trace file as an infinite, wrapping AccessStream. */
class TraceStream : public AccessStream
{
  public:
    /**
     * Opens @p path (binary or CSV, sniffed). Fatal on a missing,
     * corrupt, or empty trace — an empty file cannot produce next().
     *
     * @param path Trace file to replay.
     * @param buffer_records Refill-buffer capacity in records.
     */
    explicit TraceStream(const std::string& path,
                         uint64_t buffer_records = 1 << 14);

    Addr next() override;
    void nextBlock(Addr* out, uint64_t n) override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "trace"; }

    /** The file being replayed. */
    const std::string& path() const { return path_; }

    /** Completed passes over the trace (0 until the first wrap). */
    uint64_t wraps() const { return wraps_; }

  private:
    /** Refills the buffer, wrapping at end of trace. */
    void refill();

    std::string path_;
    std::unique_ptr<TraceSource> source_;
    std::vector<Addr> buf_;
    uint64_t bufLen_ = 0; //!< Valid records in buf_.
    uint64_t bufPos_ = 0; //!< Next record to hand out.
    uint64_t wraps_ = 0;
};

} // namespace talus

#endif // TALUS_TRACE_TRACE_STREAM_H
