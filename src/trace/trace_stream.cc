#include "trace/trace_stream.h"

#include <algorithm>
#include <cstring>

#include "util/log.h"

namespace talus {

TraceStream::TraceStream(const std::string& path,
                         uint64_t buffer_records)
    : path_(path), source_(openTraceSource(path))
{
    talus_assert(buffer_records >= 1, "trace buffer needs capacity");
    buf_.resize(buffer_records);
    // Probe the first refill now so an empty trace fails at
    // construction, not on the millionth next().
    bufLen_ = source_->read(buf_.data(), buf_.size());
    if (bufLen_ == 0)
        talus_fatal("trace file '", path,
                    "' is empty: nothing to replay");
}

void
TraceStream::refill()
{
    bufLen_ = source_->read(buf_.data(), buf_.size());
    bufPos_ = 0;
    if (bufLen_ == 0) {
        // End of trace: wrap to the first record. The constructor
        // proved the trace is non-empty, so this refill succeeds.
        source_->rewind();
        wraps_++;
        bufLen_ = source_->read(buf_.data(), buf_.size());
        talus_assert(bufLen_ > 0, "trace emptied underneath us");
    }
}

Addr
TraceStream::next()
{
    if (bufPos_ == bufLen_)
        refill();
    return buf_[bufPos_++];
}

void
TraceStream::nextBlock(Addr* out, uint64_t n)
{
    uint64_t got = 0;
    while (got < n) {
        if (bufPos_ == bufLen_)
            refill();
        const uint64_t take = std::min(n - got, bufLen_ - bufPos_);
        std::memcpy(out + got, buf_.data() + bufPos_,
                    take * sizeof(Addr));
        bufPos_ += take;
        got += take;
    }
}

void
TraceStream::reset()
{
    source_->rewind();
    bufLen_ = source_->read(buf_.data(), buf_.size());
    bufPos_ = 0;
    wraps_ = 0;
}

std::unique_ptr<AccessStream>
TraceStream::clone() const
{
    return std::make_unique<TraceStream>(path_, buf_.size());
}

} // namespace talus
