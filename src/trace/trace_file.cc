#include "trace/trace_file.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <vector>

#include "util/log.h"

namespace talus {

const char kTraceMagic[8] = {'T', 'A', 'L', 'U', 'S', 'T', 'R', '1'};

namespace {

/** Records moved per fread/fwrite; 64K records = 512KB of I/O. */
constexpr uint64_t kIoChunkRecords = 1 << 16;

void
putLe64(uint8_t* b, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint64_t
getLe64(const uint8_t* b)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(b[i]) << (8 * i);
    return v;
}

/** File size in bytes, or -1 if @p path cannot be stat'ed. */
int64_t
fileBytes(const std::string& path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<int64_t>(st.st_size);
}

/**
 * Parses one CSV line as a decimal uint64. Returns false (with a
 * reason in @p error) on anything but pure digits; trailing '\n' and
 * '\r' are stripped first.
 */
bool
parseCsvLine(const char* line, Addr* out, std::string* error)
{
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r'))
        len--;
    if (len == 0) {
        *error = "empty line";
        return false;
    }
    uint64_t v = 0;
    for (size_t i = 0; i < len; ++i) {
        const char c = line[i];
        if (c < '0' || c > '9') {
            *error = std::string("non-digit character '") + c + "'";
            return false;
        }
        const uint64_t digit = static_cast<uint64_t>(c - '0');
        if (v > (~0ull - digit) / 10) {
            *error = "value exceeds 64 bits";
            return false;
        }
        v = v * 10 + digit;
    }
    *out = v;
    return true;
}

/** Longest line we accept: 20 digits + CRLF + NUL, rounded up. */
constexpr size_t kCsvLineBuf = 64;

} // namespace

// ------------------------------------------------------- TraceWriter

TraceWriter::TraceWriter(const std::string& path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        talus_fatal("cannot create trace file '", path,
                    "': ", std::strerror(errno));
    uint8_t header[kTraceHeaderBytes];
    std::memcpy(header, kTraceMagic, 8);
    putLe64(header + 8, 0); // Count patched in close().
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        talus_fatal("cannot write trace header to '", path, "'");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Addr* addrs, uint64_t n)
{
    talus_assert(file_ != nullptr, "append on a closed TraceWriter");
    // 64KB encode buffer on the stack: big enough to amortize fwrite,
    // small enough for any thread stack.
    uint8_t buf[1u << 16];
    const uint64_t per_chunk = sizeof(buf) / 8;
    for (uint64_t off = 0; off < n;) {
        const uint64_t take = std::min(per_chunk, n - off);
        for (uint64_t i = 0; i < take; ++i)
            putLe64(buf + 8 * i, addrs[off + i]);
        if (std::fwrite(buf, 8, take, file_) != take)
            talus_fatal("short write to trace file '", path_, "'");
        off += take;
    }
    count_ += n;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    uint8_t le[8];
    putLe64(le, count_);
    if (std::fseek(file_, 8, SEEK_SET) != 0 ||
        std::fwrite(le, 1, 8, file_) != 8 || std::fflush(file_) != 0)
        talus_fatal("cannot finalize trace file '", path_, "'");
    std::fclose(file_);
    file_ = nullptr;
}

// ------------------------------------------------------- TraceReader

TraceReader::TraceReader(const std::string& path) : path_(path)
{
    const std::string error = validateTraceFile(path);
    if (!error.empty())
        talus_fatal(error);
    if (!isBinaryTraceFile(path))
        talus_fatal("'", path,
                    "' is not a binary trace (no TALUSTR1 magic); "
                    "convert it with trace_convert first or open it "
                    "as CSV");
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        talus_fatal("cannot open trace file '", path,
                    "': ", std::strerror(errno));
    uint8_t header[kTraceHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header))
        talus_fatal("cannot read trace header from '", path, "'");
    count_ = getLe64(header + 8);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

uint64_t
TraceReader::read(Addr* out, uint64_t max)
{
    const uint64_t want = std::min(max, count_ - cursor_);
    uint8_t buf[1u << 16];
    const uint64_t per_chunk = sizeof(buf) / 8;
    uint64_t got = 0;
    while (got < want) {
        const uint64_t take = std::min(per_chunk, want - got);
        if (std::fread(buf, 8, take, file_) != take)
            talus_fatal("trace file '", path_,
                        "' truncated mid-read (changed since open?)");
        for (uint64_t i = 0; i < take; ++i)
            out[got + i] = getLe64(buf + 8 * i);
        got += take;
    }
    cursor_ += got;
    return got;
}

void
TraceReader::rewind()
{
    if (std::fseek(file_, static_cast<long>(kTraceHeaderBytes),
                   SEEK_SET) != 0)
        talus_fatal("cannot rewind trace file '", path_, "'");
    cursor_ = 0;
}

// ---------------------------------------------------- CsvTraceWriter

CsvTraceWriter::CsvTraceWriter(const std::string& path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "w");
    if (file_ == nullptr)
        talus_fatal("cannot create CSV trace file '", path,
                    "': ", std::strerror(errno));
}

CsvTraceWriter::~CsvTraceWriter()
{
    close();
}

void
CsvTraceWriter::append(const Addr* addrs, uint64_t n)
{
    talus_assert(file_ != nullptr, "append on a closed CsvTraceWriter");
    for (uint64_t i = 0; i < n; ++i) {
        if (std::fprintf(file_, "%llu\n",
                         static_cast<unsigned long long>(addrs[i])) < 0)
            talus_fatal("short write to CSV trace file '", path_, "'");
    }
    count_ += n;
}

void
CsvTraceWriter::close()
{
    if (file_ == nullptr)
        return;
    if (std::fflush(file_) != 0)
        talus_fatal("cannot finalize CSV trace file '", path_, "'");
    std::fclose(file_);
    file_ = nullptr;
}

// ---------------------------------------------------- CsvTraceReader

CsvTraceReader::CsvTraceReader(const std::string& path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "r");
    if (file_ == nullptr)
        talus_fatal("cannot open CSV trace file '", path,
                    "': ", std::strerror(errno));
}

CsvTraceReader::~CsvTraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

uint64_t
CsvTraceReader::read(Addr* out, uint64_t max)
{
    char line[kCsvLineBuf];
    uint64_t got = 0;
    while (got < max && std::fgets(line, sizeof(line), file_)) {
        line_++;
        std::string error;
        if (!parseCsvLine(line, &out[got], &error))
            talus_fatal("CSV trace '", path_, "' line ", line_, ": ",
                        error);
        got++;
    }
    return got;
}

void
CsvTraceReader::rewind()
{
    if (std::fseek(file_, 0, SEEK_SET) != 0)
        talus_fatal("cannot rewind CSV trace file '", path_, "'");
    line_ = 0;
}

// ------------------------------------------------- format utilities

bool
isBinaryTraceFile(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return false;
    char magic[8];
    const bool is_binary = std::fread(magic, 1, 8, f) == 8 &&
                           std::memcmp(magic, kTraceMagic, 8) == 0;
    std::fclose(f);
    return is_binary;
}

std::string
validateTraceFile(const std::string& path)
{
    const int64_t bytes = fileBytes(path);
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (bytes < 0 || f == nullptr) {
        if (f != nullptr)
            std::fclose(f);
        return "cannot open trace file '" + path +
               "': " + std::strerror(errno);
    }
    uint8_t header[kTraceHeaderBytes];
    const size_t head = std::fread(header, 1, sizeof(header), f);
    if (head >= 8 && std::memcmp(header, kTraceMagic, 8) == 0) {
        // Binary: the header count must match the file size exactly.
        std::fclose(f);
        if (head < kTraceHeaderBytes)
            return "trace file '" + path +
                   "' is corrupt: magic present but header truncated";
        const uint64_t count = getLe64(header + 8);
        const uint64_t expect = kTraceHeaderBytes + 8 * count;
        if (static_cast<uint64_t>(bytes) != expect)
            return "trace file '" + path + "' is corrupt: header says " +
                   std::to_string(count) + " records (" +
                   std::to_string(expect) + " bytes) but the file has " +
                   std::to_string(bytes) + " bytes";
        return "";
    }
    // CSV: every line must be a decimal uint64.
    if (std::fseek(f, 0, SEEK_SET) != 0) {
        std::fclose(f);
        return "cannot rewind trace file '" + path + "'";
    }
    char line[kCsvLineBuf];
    uint64_t line_no = 0;
    while (std::fgets(line, sizeof(line), f)) {
        line_no++;
        Addr addr;
        std::string error;
        if (!parseCsvLine(line, &addr, &error)) {
            std::fclose(f);
            return "trace file '" + path + "' is neither binary (no "
                   "TALUSTR1 magic) nor valid CSV: line " +
                   std::to_string(line_no) + ": " + error;
        }
    }
    std::fclose(f);
    return "";
}

std::unique_ptr<TraceSource>
openTraceSource(const std::string& path)
{
    if (isBinaryTraceFile(path))
        return std::make_unique<TraceReader>(path);
    return std::make_unique<CsvTraceReader>(path);
}

uint64_t
convertCsvToBinary(const std::string& csv_path,
                   const std::string& bin_path)
{
    CsvTraceReader in(csv_path);
    TraceWriter out(bin_path);
    std::vector<Addr> buf(kIoChunkRecords);
    uint64_t got;
    while ((got = in.read(buf.data(), buf.size())) > 0)
        out.append(buf.data(), got);
    out.close();
    return out.numRecords();
}

uint64_t
convertBinaryToCsv(const std::string& bin_path,
                   const std::string& csv_path)
{
    TraceReader in(bin_path);
    CsvTraceWriter out(csv_path);
    std::vector<Addr> buf(kIoChunkRecords);
    uint64_t got;
    while ((got = in.read(buf.data(), buf.size())) > 0)
        out.append(buf.data(), got);
    out.close();
    return out.numRecords();
}

} // namespace talus
