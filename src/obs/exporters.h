/**
 * @file
 * Exporters: MetricsSnapshot -> Prometheus text exposition format, or
 * JSON lines for offline diffing.
 *
 * The Prometheus writer emits the standard text format (one
 * `# TYPE` line per family, `name{labels} value` series lines;
 * histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
 * `_count`), so the output scrapes/ingests with stock tooling and is
 * validated in CI by tools/check_metrics.py. The JSON-lines writer
 * emits one self-contained object per metric — trivially diffable and
 * greppable, no parser state.
 */

#ifndef TALUS_OBS_EXPORTERS_H
#define TALUS_OBS_EXPORTERS_H

#include <string>

#include "obs/registry.h"

namespace talus {

/** Renders @p snapshot in Prometheus text exposition format. */
std::string toPrometheusText(const MetricsSnapshot& snapshot);

/** Renders @p snapshot as JSON lines (one object per metric). */
std::string toJsonLines(const MetricsSnapshot& snapshot);

/**
 * Writes @p snapshot to @p path, picking the format by extension:
 * `.jsonl`/`.json` get JSON lines, anything else the Prometheus text
 * format. Returns "" on success, otherwise an actionable error
 * message (the file may be partially written on I/O failure).
 */
std::string writeMetricsFile(const MetricsSnapshot& snapshot,
                             const std::string& path);

} // namespace talus

#endif // TALUS_OBS_EXPORTERS_H
