/**
 * @file
 * Lock-free metric primitives: Counter, Gauge, and a log2-bucketed
 * Histogram with O(1) record and bounded-error quantiles.
 *
 * These are the building blocks of the observability layer
 * (obs/registry.h). Design rules, in priority order:
 *
 *  - Recording must be cheap enough for the data path: every mutation
 *    is a relaxed atomic on a cache-line-padded slot — no locks, no
 *    allocation, no stronger ordering than the caller asked for.
 *    Instrumented code bumps counters once per *batch* with totals it
 *    already computed, so the steady-state cost is a handful of
 *    uncontended relaxed adds per few thousand accesses.
 *  - Reads (snapshots, quantiles) are wait-free with respect to
 *    writers: they observe each atomic individually, so a snapshot
 *    taken during concurrent recording is a valid *per-metric* value
 *    that may be mid-batch across metrics. Each counter is monotone
 *    under concurrent reads; cross-metric invariants (hits <=
 *    accesses) hold only at batch granularity.
 *  - Histogram buckets are log2 groups refined by kSubBits linear
 *    sub-buckets (HdrHistogram's layout): values below 2^kSubBits are
 *    exact, everything above lands in a bucket whose width is at most
 *    1/2^kSubBits of its lower bound, so quantiles carry a documented
 *    relative error of at most 1/32 (~3.1%) with kSubBits = 5 —
 *    plenty for latency percentiles, at 1920 buckets (~15 KB).
 */

#ifndef TALUS_OBS_METRICS_H
#define TALUS_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace talus {

/** A monotonically increasing counter (relaxed atomic, padded). */
class alignas(64) Counter
{
  public:
    /** Adds @p n (relaxed; safe from any thread). */
    void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }

    /** Current value (relaxed; monotone under concurrent inc()). */
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** A last-value-wins instantaneous measurement (relaxed, padded). */
class alignas(64) Gauge
{
  public:
    /** Publishes @p v (relaxed; safe from any thread). */
    void set(double v) { v_.store(v, std::memory_order_relaxed); }

    /** Last published value. */
    double value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** One histogram's decoded state: what a registry snapshot carries
 *  and what quantile estimation runs on. Bucket geometry is shared
 *  with the live Histogram (see Histogram::bucketUpperBound). */
struct HistogramData
{
    uint64_t count = 0; //!< Recorded values.
    uint64_t sum = 0;   //!< Sum of recorded values (raw units).
    uint64_t max = 0;   //!< Largest recorded value (exact, raw units).
    double scale = 1.0; //!< Raw-unit -> reported-unit factor (e.g.
                        //!< 1e-9 when recording nanoseconds and
                        //!< reporting seconds).
    /** Non-empty buckets only: (bucket index, count), ascending. */
    std::vector<std::pair<uint32_t, uint64_t>> buckets;

    /**
     * Nearest-rank quantile estimate in reported units: the upper
     * bound of the bucket holding the ceil(q*count)-th smallest
     * sample. Exact for raw values below 2^kSubBits; otherwise within
     * a factor of 1/2^kSubBits (3.125% with kSubBits = 5) above the
     * true sample. 0 when empty.
     */
    double quantile(double q) const;

    /** Mean of recorded values in reported units; 0 when empty. */
    double mean() const
    {
        return count > 0
                   ? scale * static_cast<double>(sum) /
                         static_cast<double>(count)
                   : 0.0;
    }

    /** Largest recorded value in reported units (exact). */
    double maxValue() const { return scale * static_cast<double>(max); }
};

/**
 * A fixed-footprint histogram over uint64 values with O(1) record.
 *
 * Record cost: one clz, three relaxed fetch_adds, and a relaxed
 * max update. Values below 2^kSubBits (32) get exact unit-width
 * buckets; larger values land in log2 groups split into 32 linear
 * sub-buckets, so every bucket's width is at most 1/32 of its lower
 * bound. Thread-safe for concurrent record() and snapshot().
 */
class Histogram
{
  public:
    /** Linear sub-bucket bits per log2 group; drives the error bound
     *  (quantiles are within 1/2^kSubBits of the true sample). */
    static constexpr uint32_t kSubBits = 5;
    static constexpr uint32_t kSubBuckets = 1u << kSubBits;
    /** Groups 1..(64-kSubBits) above the exact region + group 0 (the
     *  exact region) = 60 * 32 buckets covering all of uint64; the
     *  top value maps to group (63-kSubBits+1) = 59, sub 31. */
    static constexpr uint32_t kBuckets =
        (64 - kSubBits + 1) * kSubBuckets;

    Histogram() : buckets_(new std::atomic<uint64_t>[kBuckets])
    {
        for (uint32_t i = 0; i < kBuckets; ++i)
            buckets_[i].store(0, std::memory_order_relaxed);
    }

    /**
     * Records one value in raw units. Wait-free: relaxed atomics
     * only. Safe from any thread, including concurrently with
     * snapshot()/quantile().
     */
    void record(uint64_t v)
    {
        buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        uint64_t cur = max_.load(std::memory_order_relaxed);
        while (v > cur && !max_.compare_exchange_weak(
                              cur, v, std::memory_order_relaxed)) {
        }
    }

    /** Recorded values so far. */
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of recorded values (raw units). */
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Largest recorded value (raw units; 0 when empty). */
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }

    /** Decodes the current state (non-empty buckets only). A snapshot
     *  under concurrent record() is a valid point-in-time-per-bucket
     *  view; count/sum/buckets may differ by in-flight records. */
    HistogramData snapshot(double scale = 1.0) const;

    /** Nearest-rank quantile estimate in raw units (see
     *  HistogramData::quantile for the error bound). */
    double quantile(double q) const { return snapshot().quantile(q); }

    /** The bucket a raw value lands in. */
    static uint32_t bucketIndex(uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<uint32_t>(v);
        const uint32_t e = 63u - static_cast<uint32_t>(
                                     __builtin_clzll(v));
        const uint32_t group = e - kSubBits + 1;
        const uint32_t sub = static_cast<uint32_t>(
            (v >> (e - kSubBits)) & (kSubBuckets - 1));
        return group * kSubBuckets + sub;
    }

    /** Largest raw value mapping to bucket @p i (inclusive). */
    static uint64_t bucketUpperBound(uint32_t i)
    {
        if (i < kSubBuckets)
            return i;
        const uint32_t group = i / kSubBuckets;
        const uint32_t sub = i % kSubBuckets;
        return ((static_cast<uint64_t>(kSubBuckets) + sub + 1)
                << (group - 1)) -
               1;
    }

  private:
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
};

} // namespace talus

#endif // TALUS_OBS_METRICS_H
