#include "obs/registry.h"

#include <algorithm>

#include "util/log.h"

namespace talus {

namespace {

/** Map key: name and labels, separated by a byte no label can
 *  contain. */
std::string
entryKey(const std::string& name, const std::string& labels)
{
    std::string key;
    key.reserve(name.size() + 1 + labels.size());
    key += name;
    key += '\x01';
    key += labels;
    return key;
}

const char*
kindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

/** later - earlier for one histogram (bucket-wise). */
HistogramData
histogramDelta(const HistogramData& earlier, const HistogramData& later)
{
    HistogramData d;
    d.scale = later.scale;
    d.count = later.count - earlier.count;
    d.sum = later.sum - earlier.sum;
    d.max = later.max; // Max is lifetime; a windowed max would need
                       // its own reservoir.
    size_t i = 0;
    for (const auto& [idx, n] : later.buckets) {
        while (i < earlier.buckets.size() &&
               earlier.buckets[i].first < idx)
            ++i;
        const uint64_t before =
            (i < earlier.buckets.size() &&
             earlier.buckets[i].first == idx)
                ? earlier.buckets[i].second
                : 0;
        if (n > before)
            d.buckets.emplace_back(idx, n - before);
    }
    return d;
}

} // namespace

const MetricValue*
MetricsSnapshot::find(const std::string& name,
                      const std::string& labels) const
{
    for (const MetricValue& m : metrics)
        if (m.name == name && m.labels == labels)
            return &m;
    return nullptr;
}

uint64_t
MetricsSnapshot::counterTotal(const std::string& name,
                              const std::string& labelFilter) const
{
    uint64_t total = 0;
    for (const MetricValue& m : metrics)
        if (m.kind == MetricKind::Counter && m.name == name &&
            (labelFilter.empty() ||
             m.labels.find(labelFilter) != std::string::npos))
            total += m.counter;
    return total;
}

MetricsSnapshot
metricsDelta(const MetricsSnapshot& earlier, const MetricsSnapshot& later)
{
    talus_assert(later.epoch >= earlier.epoch,
                 "metricsDelta: later snapshot (epoch ", later.epoch,
                 ") predates earlier (epoch ", earlier.epoch, ")");
    MetricsSnapshot d;
    d.epoch = later.epoch;
    d.metrics.reserve(later.metrics.size());
    for (const MetricValue& m : later.metrics) {
        const MetricValue* before = earlier.find(m.name, m.labels);
        MetricValue out = m;
        if (before != nullptr) {
            switch (m.kind) {
            case MetricKind::Counter:
                out.counter = m.counter - before->counter;
                break;
            case MetricKind::Gauge:
                break; // Gauges are instantaneous: keep the later one.
            case MetricKind::Histogram:
                out.histogram =
                    histogramDelta(before->histogram, m.histogram);
                break;
            }
        }
        d.metrics.push_back(std::move(out));
    }
    return d;
}

std::string
labelPair(const std::string& key, uint64_t value)
{
    return key + "=\"" + std::to_string(value) + "\"";
}

std::string
labelPair(const std::string& key, const std::string& value)
{
    talus_assert(value.find('"') == std::string::npos &&
                     value.find('\\') == std::string::npos,
                 "label value must not need escaping: ", value);
    return key + "=\"" + value + "\"";
}

std::string
joinLabels(const std::string& a, const std::string& b)
{
    if (a.empty())
        return b;
    if (b.empty())
        return a;
    return a + "," + b;
}

MetricRegistry::Entry&
MetricRegistry::getOrCreate(const std::string& name,
                            const std::string& labels, MetricKind kind,
                            double scale)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::string key = entryKey(name, labels);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        Entry& e = *entries_[it->second];
        if (e.kind != kind)
            talus_fatal("MetricRegistry: \"", name, "\"{", labels,
                        "} already registered as ", kindName(e.kind),
                        ", requested as ", kindName(kind));
        return e;
    }
    auto e = std::make_unique<Entry>();
    e->name = name;
    e->labels = labels;
    e->kind = kind;
    e->scale = scale;
    switch (kind) {
    case MetricKind::Counter:
        e->counter = std::make_unique<Counter>();
        break;
    case MetricKind::Gauge:
        e->gauge = std::make_unique<Gauge>();
        break;
    case MetricKind::Histogram:
        e->histogram = std::make_unique<Histogram>();
        break;
    }
    index_.emplace(key, entries_.size());
    entries_.push_back(std::move(e));
    return *entries_.back();
}

Counter&
MetricRegistry::counter(const std::string& name,
                        const std::string& labels)
{
    return *getOrCreate(name, labels, MetricKind::Counter, 1.0).counter;
}

Gauge&
MetricRegistry::gauge(const std::string& name, const std::string& labels)
{
    return *getOrCreate(name, labels, MetricKind::Gauge, 1.0).gauge;
}

Histogram&
MetricRegistry::histogram(const std::string& name,
                          const std::string& labels, double scale)
{
    return *getOrCreate(name, labels, MetricKind::Histogram, scale)
                .histogram;
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot s;
    s.epoch = ++epoch_;
    s.metrics.reserve(entries_.size());
    for (const auto& e : entries_) {
        MetricValue m;
        m.name = e->name;
        m.labels = e->labels;
        m.kind = e->kind;
        switch (e->kind) {
        case MetricKind::Counter:
            m.counter = e->counter->value();
            break;
        case MetricKind::Gauge:
            m.gauge = e->gauge->value();
            break;
        case MetricKind::Histogram:
            m.histogram = e->histogram->snapshot(e->scale);
            break;
        }
        s.metrics.push_back(std::move(m));
    }
    return s;
}

size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

MetricRegistry&
globalMetricRegistry()
{
    static MetricRegistry registry;
    return registry;
}

} // namespace talus
