#include "obs/metrics.h"

#include <cmath>

namespace talus {

double
HistogramData::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest rank: the ceil(q*n)-th smallest sample (rank >= 1).
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (const auto& [idx, n] : buckets) {
        seen += n;
        if (seen >= rank) {
            // Report the bucket's inclusive upper bound, clamped to
            // the exact max for the last occupied bucket so q = 1
            // (and any quantile landing there) never overshoots the
            // largest recorded value.
            const uint64_t ub = Histogram::bucketUpperBound(idx);
            return scale *
                   static_cast<double>(ub < max ? ub : max);
        }
    }
    return scale * static_cast<double>(max);
}

HistogramData
Histogram::snapshot(double scale) const
{
    HistogramData d;
    d.scale = scale;
    d.count = count();
    d.sum = sum();
    d.max = max();
    for (uint32_t i = 0; i < kBuckets; ++i) {
        const uint64_t n = buckets_[i].load(std::memory_order_relaxed);
        if (n != 0)
            d.buckets.emplace_back(i, n);
    }
    return d;
}

} // namespace talus
