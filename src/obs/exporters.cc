#include "obs/exporters.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace talus {

namespace {

/** Full-precision shortest-round-trip-ish double formatting. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Series name with optional label block: name{labels} or name. */
std::string
series(const std::string& name, const std::string& labels)
{
    if (labels.empty())
        return name;
    return name + "{" + labels + "}";
}

const char*
typeName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "untyped";
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
toPrometheusText(const MetricsSnapshot& snapshot)
{
    // Prometheus requires every series of a family to be contiguous;
    // sort by (name, labels) and emit one TYPE line per family. The
    // sort is stable with respect to nothing the format cares about.
    std::vector<const MetricValue*> order;
    order.reserve(snapshot.metrics.size());
    for (const MetricValue& m : snapshot.metrics)
        order.push_back(&m);
    std::sort(order.begin(), order.end(),
              [](const MetricValue* a, const MetricValue* b) {
                  if (a->name != b->name)
                      return a->name < b->name;
                  return a->labels < b->labels;
              });

    std::ostringstream out;
    const std::string* prev_name = nullptr;
    for (const MetricValue* m : order) {
        if (prev_name == nullptr || *prev_name != m->name)
            out << "# TYPE " << m->name << ' ' << typeName(m->kind)
                << '\n';
        prev_name = &m->name;
        switch (m->kind) {
        case MetricKind::Counter:
            out << series(m->name, m->labels) << ' ' << m->counter
                << '\n';
            break;
        case MetricKind::Gauge:
            out << series(m->name, m->labels) << ' '
                << formatDouble(m->gauge) << '\n';
            break;
        case MetricKind::Histogram: {
            // Cumulative le-buckets over the non-empty buckets, then
            // the mandatory +Inf, _sum, and _count series. Emitting
            // only occupied buckets is valid: each le line states
            // "samples <= le", and cumulation makes the counts
            // monotone regardless of gaps.
            const HistogramData& h = m->histogram;
            uint64_t cum = 0;
            for (const auto& [idx, n] : h.buckets) {
                cum += n;
                const double le =
                    h.scale * static_cast<double>(
                                  Histogram::bucketUpperBound(idx));
                out << series(m->name + "_bucket",
                              joinLabels(m->labels,
                                         "le=\"" + formatDouble(le) +
                                             "\""))
                    << ' ' << cum << '\n';
            }
            out << series(m->name + "_bucket",
                          joinLabels(m->labels, "le=\"+Inf\""))
                << ' ' << h.count << '\n';
            out << series(m->name + "_sum", m->labels) << ' '
                << formatDouble(h.scale * static_cast<double>(h.sum))
                << '\n';
            out << series(m->name + "_count", m->labels) << ' '
                << h.count << '\n';
            break;
        }
        }
    }
    return out.str();
}

std::string
toJsonLines(const MetricsSnapshot& snapshot)
{
    std::ostringstream out;
    for (const MetricValue& m : snapshot.metrics) {
        out << "{\"name\":\"" << jsonEscape(m.name) << "\",\"labels\":\""
            << jsonEscape(m.labels) << "\",\"kind\":\""
            << typeName(m.kind) << "\"";
        switch (m.kind) {
        case MetricKind::Counter:
            out << ",\"value\":" << m.counter;
            break;
        case MetricKind::Gauge:
            out << ",\"value\":" << formatDouble(m.gauge);
            break;
        case MetricKind::Histogram: {
            const HistogramData& h = m.histogram;
            out << ",\"count\":" << h.count << ",\"sum\":" << h.sum
                << ",\"max\":" << h.max
                << ",\"scale\":" << formatDouble(h.scale)
                << ",\"buckets\":[";
            // Raw per-bucket (upper bound, count) pairs — the
            // diff-friendly non-cumulative form.
            bool first = true;
            for (const auto& [idx, n] : h.buckets) {
                if (!first)
                    out << ',';
                first = false;
                out << '[' << Histogram::bucketUpperBound(idx) << ','
                    << n << ']';
            }
            out << ']';
            break;
        }
        }
        out << "}\n";
    }
    return out.str();
}

std::string
writeMetricsFile(const MetricsSnapshot& snapshot,
                 const std::string& path)
{
    const bool json =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    const bool jsonl =
        path.size() >= 6 &&
        path.compare(path.size() - 6, 6, ".jsonl") == 0;
    const std::string text = (json || jsonl) ? toJsonLines(snapshot)
                                             : toPrometheusText(snapshot);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return "cannot open metrics file '" + path +
               "': " + std::strerror(errno);
    const size_t written = std::fwrite(text.data(), 1, text.size(), f);
    const int close_err = std::fclose(f);
    if (written != text.size() || close_err != 0)
        return "short write to metrics file '" + path + "'";
    return "";
}

} // namespace talus
