/**
 * @file
 * MetricRegistry: named, labeled metric families with epoch-tagged
 * snapshot/delta semantics.
 *
 * A registry maps (name, labels) pairs to Counter/Gauge/Histogram
 * instances with stable addresses: registration (get-or-create)
 * takes a mutex once per metric, after which the returned reference
 * is valid for the registry's lifetime and recording through it is
 * lock-free. Instrumented subsystems resolve their handles at
 * construction time and never touch the registry on the data path.
 *
 * snapshot() reads every metric and stamps the result with a
 * monotonically increasing epoch. Individual values are relaxed
 * atomic reads, so a snapshot taken under concurrent recording is
 * exact per metric and at-most-one-batch-stale across metrics;
 * consecutive snapshots of the same registry always see each counter
 * monotone. metricsDelta(earlier, later) subtracts counters and
 * histograms (gauges keep the later value), which is how windowed
 * rates (e.g. per-interval miss ratios) are derived without resetting
 * anything.
 *
 * Metric naming follows Prometheus conventions: snake_case names,
 * counters suffixed _total, labels as a pre-rendered
 * `key="value",key2="value2"` string (see joinLabels). The exporters
 * (obs/exporters.h) rely on those conventions.
 */

#ifndef TALUS_OBS_REGISTRY_H
#define TALUS_OBS_REGISTRY_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace talus {

/** What a registry entry is; fixed at first registration. */
enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** One metric's identity and value inside a MetricsSnapshot. */
struct MetricValue
{
    std::string name;   //!< Metric family name (snake_case).
    std::string labels; //!< Rendered label pairs; "" = unlabeled.
    MetricKind kind = MetricKind::Counter;
    uint64_t counter = 0;    //!< Kind Counter.
    double gauge = 0.0;      //!< Kind Gauge.
    HistogramData histogram; //!< Kind Histogram.
};

/** An epoch-tagged point-in-time view of one registry. */
struct MetricsSnapshot
{
    uint64_t epoch = 0; //!< Monotone per registry; later > earlier.
    std::vector<MetricValue> metrics; //!< Registration order.

    /** The metric with exactly @p name and @p labels; nullptr when
     *  absent. */
    const MetricValue* find(const std::string& name,
                            const std::string& labels = "") const;

    /**
     * Sum of every counter named @p name whose label string contains
     * @p labelFilter as a substring ("" = all label sets) — the
     * cross-partition / cross-shard rollup helper.
     */
    uint64_t counterTotal(const std::string& name,
                          const std::string& labelFilter = "") const;
};

/**
 * The change between two snapshots of the *same* registry: counters
 * and histograms subtract (later - earlier), gauges keep the later
 * value. Metrics absent from @p earlier (registered in between) count
 * from zero. Fatal when @p later predates @p earlier.
 */
MetricsSnapshot metricsDelta(const MetricsSnapshot& earlier,
                             const MetricsSnapshot& later);

/** Renders one label pair, e.g. labelPair("shard", 3) ->
 *  `shard="3"`. */
std::string labelPair(const std::string& key, uint64_t value);

/** Renders one string-valued label pair, e.g.
 *  labelPair("engine", "talus") -> `engine="talus"`. The value must
 *  not contain `"` or `\` (exporter escaping is not applied here). */
std::string labelPair(const std::string& key,
                      const std::string& value);

/** Joins two rendered label strings with a comma, skipping empties. */
std::string joinLabels(const std::string& a, const std::string& b);

/** Named, labeled metrics with stable addresses. */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry&) = delete;
    MetricRegistry& operator=(const MetricRegistry&) = delete;

    /**
     * The counter (name, labels), created on first use. The reference
     * stays valid for the registry's lifetime; recording through it
     * is lock-free. Fatal if (name, labels) already exists with a
     * different kind.
     */
    Counter& counter(const std::string& name,
                     const std::string& labels = "");

    /** The gauge (name, labels), created on first use. */
    Gauge& gauge(const std::string& name,
                 const std::string& labels = "");

    /**
     * The histogram (name, labels), created on first use. @p scale
     * converts raw recorded units to reported units at snapshot time
     * (e.g. 1e-9 to record nanoseconds and report seconds); it is
     * fixed at creation.
     */
    Histogram& histogram(const std::string& name,
                         const std::string& labels = "",
                         double scale = 1.0);

    /** Reads every metric and stamps a fresh epoch. */
    MetricsSnapshot snapshot() const;

    /** Registered metrics (all kinds, all label sets). */
    size_t size() const;

  private:
    struct Entry
    {
        std::string name;
        std::string labels;
        MetricKind kind = MetricKind::Counter;
        double scale = 1.0;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry& getOrCreate(const std::string& name,
                       const std::string& labels, MetricKind kind,
                       double scale);

    mutable std::mutex mu_; //!< Guards registration and iteration;
                            //!< never taken on the record path.
    std::vector<std::unique_ptr<Entry>> entries_;
    std::unordered_map<std::string, size_t> index_; //!< key -> entry.
    mutable uint64_t epoch_ = 0;
};

/**
 * The process-wide default registry. Instrumented subsystems publish
 * here when their config enables metrics without naming a registry;
 * BenchEnv's --metrics=PATH dump exports it at process exit.
 */
MetricRegistry& globalMetricRegistry();

} // namespace talus

#endif // TALUS_OBS_REGISTRY_H
