/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (workload generators, random replacement,
 * Vantage tie-breaking, mix sampling) draw from this generator so that
 * every experiment is reproducible from its seed. The implementation
 * is xoshiro256** seeded via splitmix64; it is much faster than
 * std::mt19937_64 and has no measurable bias for our purposes.
 */

#ifndef TALUS_UTIL_RNG_H
#define TALUS_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace talus {

/** A small, fast, seedable random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(uint64_t seed = 0xDEADBEEF);

    /** Returns the next 64 random bits. */
    uint64_t next64();

    /** Returns a uniform integer in [0, bound); bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** Returns a uniform double in [0, 1). */
    double unit();

    /** Returns true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /** Reseeds the generator, restarting its sequence. */
    void seed(uint64_t seed);

  private:
    std::array<uint64_t, 4> s_;
};

} // namespace talus

#endif // TALUS_UTIL_RNG_H
