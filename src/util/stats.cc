#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

double
sum(const std::vector<double>& xs)
{
    double total = 0;
    for (double x : xs)
        total += x;
    return total;
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    return sum(xs) / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : xs) {
        talus_assert(x > 0, "geomean requires positive inputs, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double sq = 0;
    for (double x : xs)
        sq += (x - m) * (x - m);
    return std::sqrt(sq / static_cast<double>(xs.size()));
}

double
coeffOfVariation(const std::vector<double>& xs)
{
    const double m = mean(xs);
    if (m == 0.0)
        return 0.0;
    return stddev(xs) / m;
}

double
quantile(std::vector<double> xs, double q)
{
    talus_assert(!xs.empty(), "quantile of empty vector");
    talus_assert(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]: ", q);
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace talus
