/**
 * @file
 * Minimal read-only span: a (pointer, length) view over contiguous
 * addresses. C++17 stand-in for std::span<const T>, used by the
 * batched access API so callers can pass vectors, arrays, or raw
 * buffers without copying.
 */

#ifndef TALUS_UTIL_SPAN_H
#define TALUS_UTIL_SPAN_H

#include <array>
#include <cstddef>
#include <type_traits>
#include <vector>

namespace talus {

/** A non-owning view of @p size contiguous const elements. */
template <typename T>
class Span
{
  public:
    // Containers hold non-const elements even when the view adds
    // const (Span<const T> over a std::vector<T>), so the converting
    // constructors strip the view's const to name the element type.
    using Elem = std::remove_const_t<T>;

    constexpr Span() = default;

    constexpr Span(const T* data, size_t size) : data_(data), size_(size)
    {
    }

    Span(const std::vector<Elem>& v) : data_(v.data()), size_(v.size())
    {
    }

    template <size_t N>
    constexpr Span(const std::array<Elem, N>& a)
        : data_(a.data()), size_(N)
    {
    }

    template <size_t N>
    constexpr Span(const Elem (&a)[N]) : data_(a), size_(N)
    {
    }

    constexpr const T* data() const { return data_; }
    constexpr size_t size() const { return size_; }
    constexpr bool empty() const { return size_ == 0; }
    constexpr const T& operator[](size_t i) const { return data_[i]; }
    constexpr const T* begin() const { return data_; }
    constexpr const T* end() const { return data_ + size_; }

    /** The subview [offset, offset+count). */
    constexpr Span subspan(size_t offset, size_t count) const
    {
        return Span(data_ + offset, count);
    }

  private:
    const T* data_ = nullptr;
    size_t size_ = 0;
};

} // namespace talus

#endif // TALUS_UTIL_SPAN_H
