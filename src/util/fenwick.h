/**
 * @file
 * Fenwick (binary indexed) tree over 64-bit counts.
 *
 * Used by the stack-distance counter (monitor/stack_distance.h) to
 * compute LRU stack distances in O(log n) per access, which makes
 * exact Mattson miss curves cheap enough to use in tests and benches.
 */

#ifndef TALUS_UTIL_FENWICK_H
#define TALUS_UTIL_FENWICK_H

#include <cstdint>
#include <vector>

#include "util/log.h"

namespace talus {

/** A Fenwick tree supporting point update and prefix sum. */
class Fenwick
{
  public:
    /** Creates a tree over positions [0, n). */
    explicit Fenwick(size_t n = 0) : tree_(n + 1, 0) {}

    /** Number of positions. */
    size_t size() const { return tree_.size() - 1; }

    /** Grows the tree to cover [0, n), preserving contents. */
    void
    resize(size_t n)
    {
        if (n + 1 > tree_.size()) {
            // Rebuild: Fenwick internal nodes depend on size, so we
            // re-add the old point values into a fresh tree.
            std::vector<int64_t> vals(size());
            for (size_t i = 0; i < vals.size(); ++i)
                vals[i] = rangeSum(i, i + 1);
            tree_.assign(n + 1, 0);
            for (size_t i = 0; i < vals.size(); ++i) {
                if (vals[i] != 0)
                    add(i, vals[i]);
            }
        }
    }

    /** Adds @p delta at position @p i. */
    void
    add(size_t i, int64_t delta)
    {
        talus_assert(i < size(), "Fenwick::add out of range: ", i);
        for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1))
            tree_[j] += delta;
    }

    /** Returns the sum over [0, i). */
    int64_t
    prefixSum(size_t i) const
    {
        talus_assert(i <= size(), "Fenwick::prefixSum out of range: ", i);
        int64_t sum = 0;
        for (size_t j = i; j > 0; j -= j & (~j + 1))
            sum += tree_[j];
        return sum;
    }

    /** Returns the sum over [lo, hi). */
    int64_t
    rangeSum(size_t lo, size_t hi) const
    {
        return prefixSum(hi) - prefixSum(lo);
    }

  private:
    std::vector<int64_t> tree_;
};

} // namespace talus

#endif // TALUS_UTIL_FENWICK_H
