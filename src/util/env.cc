#include "util/env.h"

#include <cstdlib>

namespace talus {

int64_t
envInt(const std::string& name, int64_t def)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return def;
    char* end = nullptr;
    const long long v = std::strtoll(raw, &end, 10);
    if (end == raw)
        return def;
    return static_cast<int64_t>(v);
}

double
envDouble(const std::string& name, double def)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return def;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw)
        return def;
    return v;
}

bool
envFlag(const std::string& name)
{
    const char* raw = std::getenv(name.c_str());
    return raw != nullptr && *raw != '\0' && std::string(raw) != "0";
}

} // namespace talus
