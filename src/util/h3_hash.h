/**
 * @file
 * H3 universal hashing (Carter & Wegman, STOC'77).
 *
 * H3 is the hash family Talus specifies for its hardware sampling
 * function (Sec. VI-B of the paper): each output bit is the parity of
 * the input ANDed with a random mask. It is cheap in hardware (one XOR
 * tree per output bit) and gives pairwise-independent outputs, which is
 * what Assumption 3 (statistically self-similar sampled streams) needs.
 */

#ifndef TALUS_UTIL_H3_HASH_H
#define TALUS_UTIL_H3_HASH_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/span.h"
#include "util/types.h"

namespace talus {

/**
 * An H3 hash function from 64-bit inputs to up to 32 output bits.
 *
 * The function is fully determined by its seed, so reconfigurations
 * and repeated runs are reproducible.
 *
 * Evaluation is table-driven: the input is sliced into 8 bytes and
 * each byte indexes a precomputed 256-entry table of partial parities,
 * so a hash is 8 loads and 7 XORs instead of 32 mask-and-popcount
 * steps. The tables are built from the same seeded masks as the
 * bit-serial definition, so outputs are bit-exact for a given seed
 * (hashReference() keeps the definitional form for tests).
 */
class H3Hash
{
  public:
    /**
     * Builds an H3 function.
     *
     * @param out_bits Number of output bits (1..32).
     * @param seed Seed for the random bit masks.
     */
    explicit H3Hash(uint32_t out_bits = 8, uint64_t seed = 0x1905'CAFE);

    /**
     * Hashes a line address to out_bits bits.
     *
     * Zero bytes contribute table_[b][0], a constant XOR'd once at
     * construction — so small addresses (the common case in traces)
     * take 2 or 4 table loads instead of 8, behind branches that
     * predict perfectly on typical streams. Bit-exact with the full
     * evaluation for every input.
     */
    uint32_t hash(Addr addr) const
    {
        const uint32_t low = table_[0][addr & 0xFF] ^
                             table_[1][(addr >> 8) & 0xFF];
        if ((addr >> 16) == 0)
            return low ^ hiZero16_;
        const uint32_t mid = table_[2][(addr >> 16) & 0xFF] ^
                             table_[3][(addr >> 24) & 0xFF];
        if ((addr >> 32) == 0)
            return low ^ mid ^ hiZero32_;
        return low ^ mid ^
               table_[4][(addr >> 32) & 0xFF] ^
               table_[5][(addr >> 40) & 0xFF] ^
               table_[6][(addr >> 48) & 0xFF] ^
               table_[7][(addr >> 56) & 0xFF];
    }

    /**
     * Hashes a whole block of addresses into @p out (which must hold
     * at least addrs.size() entries). Bit-exact with calling hash()
     * per element; the single tight loop over the byte-sliced tables
     * lets the compiler unroll and pipeline the table loads across
     * addresses, which a per-access call boundary defeats. This is
     * the batched-access fast path: one hashBlock feeds the router
     * and the monitors for an entire access block.
     */
    void hashBlock(Span<const Addr> addrs, uint32_t* out) const
    {
        const Addr* a = addrs.data();
        const size_t n = addrs.size();
        for (size_t i = 0; i < n; ++i)
            out[i] = hash(a[i]);
    }

    /** Hashes to a real number in [0, 1). */
    double hashUnit(Addr addr) const
    {
        return static_cast<double>(hash(addr)) /
               static_cast<double>(range());
    }

    /**
     * The definitional bit-serial evaluation (one parity per output
     * bit). Bit-exact with hash(); kept as the reference the golden
     * tests pin the tables against.
     */
    uint32_t hashReference(Addr addr) const;

    /** Number of output bits. */
    uint32_t outBits() const { return outBits_; }

    /** Largest hash value + 1 (i.e., 2^outBits). 64-bit so that
     *  outBits == 32 does not overflow. */
    uint64_t range() const { return 1ull << outBits_; }

  private:
    uint32_t outBits_;
    std::array<uint64_t, 32> masks_;
    // table_[b][v]: XOR-parity contribution of input byte b holding
    // value v, one bit per output bit. Value-initialized so that the
    // v == 0 entries (never written by the fill loop) are zero.
    std::array<std::array<uint32_t, 256>, 8> table_{};
    uint32_t hiZero16_ = 0; //!< XOR of table_[2..7][0].
    uint32_t hiZero32_ = 0; //!< XOR of table_[4..7][0].
};

} // namespace talus

#endif // TALUS_UTIL_H3_HASH_H
