/**
 * @file
 * H3 universal hashing (Carter & Wegman, STOC'77).
 *
 * H3 is the hash family Talus specifies for its hardware sampling
 * function (Sec. VI-B of the paper): each output bit is the parity of
 * the input ANDed with a random mask. It is cheap in hardware (one XOR
 * tree per output bit) and gives pairwise-independent outputs, which is
 * what Assumption 3 (statistically self-similar sampled streams) needs.
 */

#ifndef TALUS_UTIL_H3_HASH_H
#define TALUS_UTIL_H3_HASH_H

#include <array>
#include <cstdint>

#include "util/types.h"

namespace talus {

/**
 * An H3 hash function from 64-bit inputs to up to 32 output bits.
 *
 * The function is fully determined by its seed, so reconfigurations
 * and repeated runs are reproducible.
 */
class H3Hash
{
  public:
    /**
     * Builds an H3 function.
     *
     * @param out_bits Number of output bits (1..32).
     * @param seed Seed for the random bit masks.
     */
    explicit H3Hash(uint32_t out_bits = 8, uint64_t seed = 0x1905'CAFE);

    /** Hashes a line address to out_bits bits. */
    uint32_t hash(Addr addr) const;

    /** Hashes to a real number in [0, 1). */
    double hashUnit(Addr addr) const;

    /** Number of output bits. */
    uint32_t outBits() const { return outBits_; }

    /** Largest hash value + 1 (i.e., 2^outBits). 64-bit so that
     *  outBits == 32 does not overflow. */
    uint64_t range() const { return 1ull << outBits_; }

  private:
    uint32_t outBits_;
    std::array<uint64_t, 32> masks_;
};

} // namespace talus

#endif // TALUS_UTIL_H3_HASH_H
