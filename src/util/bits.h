/**
 * @file
 * Small bit-mixing helpers shared across the library.
 */

#ifndef TALUS_UTIL_BITS_H
#define TALUS_UTIL_BITS_H

#include <cstdint>

namespace talus {

/**
 * splitmix64-style 64-bit finalizer. Used wherever a cheap, high-
 * quality, stateless hash of an address is needed (set indexing,
 * leader-set selection, workload scrambling). Not used for Talus's
 * sampling function itself — that is H3Hash, as in the paper.
 */
inline uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

/** Number of set bits in @p x (C++17 stand-in for std::popcount). */
inline uint32_t
popcount64(uint64_t x)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<uint32_t>(__builtin_popcountll(x));
#else
    uint32_t count = 0;
    while (x != 0) {
        x &= x - 1;
        ++count;
    }
    return count;
#endif
}

/** Low-@p n-bit mask; defined for the full n in [0, 64] range, where
 *  a plain `(1 << n) - 1` would shift out of range at n == 64. */
inline uint64_t
maskLow(uint32_t n)
{
    return n >= 64 ? ~0ull : (1ull << n) - 1;
}

/** Hints the CPU to start loading @p p; no-op where unsupported. Used
 *  on hot paths to overlap independent cold-memory fetches. */
inline void
prefetch(const void* p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
}

} // namespace talus

#endif // TALUS_UTIL_BITS_H
