/**
 * @file
 * Small bit-mixing helpers shared across the library.
 */

#ifndef TALUS_UTIL_BITS_H
#define TALUS_UTIL_BITS_H

#include <cstdint>

namespace talus {

/**
 * splitmix64-style 64-bit finalizer. Used wherever a cheap, high-
 * quality, stateless hash of an address is needed (set indexing,
 * leader-set selection, workload scrambling). Not used for Talus's
 * sampling function itself — that is H3Hash, as in the paper.
 */
inline uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

} // namespace talus

#endif // TALUS_UTIL_BITS_H
