/**
 * @file
 * Common scalar types used throughout the Talus library.
 *
 * All caches operate at cache-line granularity: an Addr is a 64-bit
 * *line* address (i.e., the byte address divided by the line size).
 * Sizes and capacities are expressed in lines unless a function says
 * otherwise; sim/scale.h converts paper-equivalent MB to lines.
 */

#ifndef TALUS_UTIL_TYPES_H
#define TALUS_UTIL_TYPES_H

#include <cstdint>

namespace talus {

/** A 64-bit cache-line address. */
using Addr = uint64_t;

/** Cycle counts from the analytic core model. */
using Cycles = uint64_t;

/** Partition identifiers within a partitioned cache. */
using PartId = uint32_t;

/** Sentinel partition id meaning "no partition / unmanaged". */
constexpr PartId kNoPart = ~0u;

/** Cache line size in bytes; used only for reporting real sizes. */
constexpr uint64_t kLineBytes = 64;

} // namespace talus

#endif // TALUS_UTIL_TYPES_H
