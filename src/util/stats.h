/**
 * @file
 * Small statistics helpers shared by the simulation engines and the
 * benchmark harness: means, geometric means, coefficient of variation,
 * and quantiles. All functions take plain vectors so they are easy to
 * test and reuse.
 */

#ifndef TALUS_UTIL_STATS_H
#define TALUS_UTIL_STATS_H

#include <vector>

namespace talus {

/** Arithmetic mean; returns 0 for an empty vector. */
double mean(const std::vector<double>& xs);

/** Geometric mean; all inputs must be > 0. Returns 0 for empty input. */
double geomean(const std::vector<double>& xs);

/** Population standard deviation; returns 0 for fewer than 2 values. */
double stddev(const std::vector<double>& xs);

/**
 * Coefficient of variation: stddev / mean. Used by the paper's fairness
 * metric (CoV of per-core IPC; Fig. 13). Returns 0 if mean is 0.
 */
double coeffOfVariation(const std::vector<double>& xs);

/**
 * The q-quantile (q in [0,1]) with linear interpolation between order
 * statistics. Fatal on empty input.
 */
double quantile(std::vector<double> xs, double q);

/** Sum of all values; 0 for empty input. */
double sum(const std::vector<double>& xs);

} // namespace talus

#endif // TALUS_UTIL_STATS_H
