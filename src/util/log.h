/**
 * @file
 * Error and status reporting, following gem5's panic()/fatal() split:
 *
 *  - panic():  a library bug — a condition that should never happen
 *              regardless of user input. Aborts (may dump core).
 *  - fatal():  a user error (bad configuration, invalid arguments).
 *              Exits with status 1.
 *  - warn():   something works but is suspicious or approximate.
 *  - inform(): status messages.
 */

#ifndef TALUS_UTIL_LOG_H
#define TALUS_UTIL_LOG_H

#include <sstream>
#include <string>

namespace talus {

namespace detail {

/** Formats the variadic arguments into one string via operator<<. */
template <typename... Args>
std::string
format(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace detail

/** Aborts with a message; use for internal invariant violations. */
#define talus_panic(...) \
    ::talus::detail::panicImpl(__FILE__, __LINE__, ::talus::detail::format(__VA_ARGS__))

/** Exits with an error message; use for invalid user configuration. */
#define talus_fatal(...) \
    ::talus::detail::fatalImpl(__FILE__, __LINE__, ::talus::detail::format(__VA_ARGS__))

/** Prints a warning to stderr; execution continues. */
#define talus_warn(...) \
    ::talus::detail::warnImpl(::talus::detail::format(__VA_ARGS__))

/** Prints an informational message to stderr. */
#define talus_inform(...) \
    ::talus::detail::informImpl(::talus::detail::format(__VA_ARGS__))

/** Panics if @p cond is false; cheap enough to keep in release builds. */
#define talus_assert(cond, ...)                                               \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::talus::detail::panicImpl(__FILE__, __LINE__,                    \
                std::string("assertion failed: " #cond " ") +                 \
                ::talus::detail::format(__VA_ARGS__));                        \
        }                                                                     \
    } while (0)

} // namespace talus

#endif // TALUS_UTIL_LOG_H
