#include "util/rng.h"

namespace talus {

namespace {

/** splitmix64 step, used to expand the seed into generator state. */
uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t x = seed_value;
    for (auto& word : s_)
        word = splitmix64(x);
    // All-zero state is invalid for xoshiro; splitmix64 makes this
    // astronomically unlikely, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next64()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    // Lemire's multiply-shift range reduction; bias is negligible for
    // the bounds used here (all far below 2^64).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next64()) * bound) >> 64);
}

double
Rng::unit()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return unit() < p;
}

} // namespace talus
