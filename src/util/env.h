/**
 * @file
 * Environment-variable configuration knobs shared by benches and
 * examples. These let one command line (running every binary under
 * build/bench in sequence) run the whole evaluation at a fast default
 * scale, while `TALUS_FULL=1` or explicit knobs reproduce paper-scale
 * runs.
 */

#ifndef TALUS_UTIL_ENV_H
#define TALUS_UTIL_ENV_H

#include <cstdint>
#include <string>

namespace talus {

/** Reads an integer env var, returning @p def if unset or malformed. */
int64_t envInt(const std::string& name, int64_t def);

/** Reads a double env var, returning @p def if unset or malformed. */
double envDouble(const std::string& name, double def);

/** True if the env var is set to a non-empty, non-"0" value. */
bool envFlag(const std::string& name);

} // namespace talus

#endif // TALUS_UTIL_ENV_H
