/**
 * @file
 * Console table and CSV output for the benchmark harness.
 *
 * Every bench binary prints the rows/series the paper's figures and
 * tables report; Table gives aligned, human-readable output and an
 * optional CSV dump so results can be plotted directly.
 */

#ifndef TALUS_UTIL_TABLE_H
#define TALUS_UTIL_TABLE_H

#include <string>
#include <vector>

namespace talus {

/** A simple column-aligned table with a title and a header row. */
class Table
{
  public:
    /** Creates a table titled @p title with the given column names. */
    Table(std::string title, std::vector<std::string> columns);

    /** Appends a row; must have exactly as many cells as columns. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p precision decimals. */
    void addRow(const std::vector<double>& cells, int precision = 3);

    /** Renders as an aligned text table. */
    std::string toString() const;

    /** Renders as CSV (header + rows, comma separated). */
    std::string toCsv() const;

    /** Prints to stdout; CSV if @p as_csv, aligned text otherwise. */
    void print(bool as_csv = false) const;

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with @p precision decimal places. */
std::string fmtDouble(double v, int precision = 3);

} // namespace talus

#endif // TALUS_UTIL_TABLE_H
