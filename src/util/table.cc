#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/log.h"

namespace talus {

std::string
fmtDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns))
{
    talus_assert(!columns_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    talus_assert(cells.size() == columns_.size(),
                 "row has ", cells.size(), " cells, table has ",
                 columns_.size(), " columns");
    rows_.push_back(std::move(cells));
}

void
Table::addRow(const std::vector<double>& cells, int precision)
{
    std::vector<std::string> str_cells;
    str_cells.reserve(cells.size());
    for (double c : cells)
        str_cells.push_back(fmtDouble(c, precision));
    addRow(std::move(str_cells));
}

std::string
Table::toString() const
{
    std::vector<size_t> widths(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream oss;
    oss << "== " << title_ << " ==\n";
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            oss << (c == 0 ? "" : "  ");
            // Right-align for numeric-looking alignment.
            oss.width(static_cast<std::streamsize>(widths[c]));
            oss << cells[c];
        }
        oss << "\n";
    };
    emit_row(columns_);
    for (const auto& row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            oss << (c == 0 ? "" : ",") << cells[c];
        oss << "\n";
    };
    emit_row(columns_);
    for (const auto& row : rows_)
        emit_row(row);
    return oss.str();
}

void
Table::print(bool as_csv) const
{
    std::fputs((as_csv ? toCsv() : toString()).c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace talus
