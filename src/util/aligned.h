/**
 * @file
 * Cache-line-aligned vector storage for hot per-set arrays.
 *
 * The fused kernel walks per-set rows (16 ways x 8 bytes = 128 bytes
 * for tags and LRU stamps). malloc only guarantees 16-byte alignment,
 * so a 128-byte row generally straddles *three* cache lines instead
 * of two — one avoidable line fill on every probe and every argmin.
 * Allocating the backing stores at 64-byte alignment makes each row
 * start on a line boundary, so a 128-byte row touches exactly two
 * lines (and a 64-byte row, e.g. the per-set owner words, exactly
 * one). Pure layout: contents and iteration order are untouched, so
 * the change is bit-exact by construction.
 */

#ifndef TALUS_UTIL_ALIGNED_H
#define TALUS_UTIL_ALIGNED_H

#include <cstddef>
#include <new>
#include <vector>

namespace talus {

/** Minimal C++17 allocator with a fixed over-alignment. */
template <typename T, std::size_t Align = 64>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "alignment must be a power of two >= alignof(T)");
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    T* allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t(Align)));
    }

    void deallocate(T* p, std::size_t n) noexcept
    {
        ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    template <typename U>
    bool operator==(const AlignedAllocator<U, Align>&) const noexcept
    {
        return true;
    }
    template <typename U>
    bool operator!=(const AlignedAllocator<U, Align>&) const noexcept
    {
        return false;
    }
};

/** A std::vector whose backing store starts on a cache line. */
template <typename T>
using CacheAlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

} // namespace talus

#endif // TALUS_UTIL_ALIGNED_H
